package ckdsim_test

import (
	"fmt"

	"repro/pkg/ckdsim"
)

// Example demonstrates the paper's Figure 1 flow: the receiver creates a
// handle over its buffer with an out-of-band pattern and a callback, the
// sender associates its local buffer and puts — no synchronization, no
// scheduler on the receive path.
func Example() {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 2, ckdsim.Options{Checked: true})
	const oob = 0x7FF8_0000_0000_0001 // NaN payload: never valid data

	recv := sys.Machine().AllocRegion(1, 64, false)
	send := sys.Machine().AllocRegion(0, 64, false)
	send.Bytes()[0] = 42

	h, _ := sys.CkDirect().CreateHandle(1, recv, oob, func(ctx *ckdsim.Ctx) {
		fmt.Printf("received %d at t=%v\n", recv.Bytes()[0], ctx.Now())
	})
	_ = sys.CkDirect().AssocLocal(h, 0, send)
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		_ = sys.CkDirect().Put(h)
	})
	sys.Run()
	// Output:
	// received 42 at t=7.426us
}

// ExampleArray shows the message-driven side: a chare array, an entry
// method, a broadcast and a reduction.
func ExampleArray() {
	sys := ckdsim.NewSystem(ckdsim.SurveyorBGP(), 4, ckdsim.Options{})
	workers := sys.RTS().NewArray("workers", ckdsim.RRMap(4))
	for i := 0; i < 8; i++ {
		workers.Insert(ckdsim.Idx1(i), nil)
	}
	workers.SetReductionClient(ckdsim.Sum, func(ctx *ckdsim.Ctx, vals []float64) {
		fmt.Printf("sum of squares 0..7 = %v\n", vals[0])
	})
	square := workers.EntryMethod("square", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {
		i := float64(ctx.Index()[0])
		ctx.Charge(5 * ckdsim.Microsecond) // the modelled compute
		ctx.Contribute(i * i)
	})
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		ctx.Broadcast(workers, square, &ckdsim.Message{Size: 8})
	})
	sys.Run()
	// Output:
	// sum of squares 0..7 = 140
}

// ExampleManager_ReadyMark shows the §5.2 windowing pattern: mark the
// channel as consumed immediately, pay polling cost only when the phase
// that uses it begins.
func ExampleManager_ReadyMark() {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 2, ckdsim.Options{Checked: true})
	const oob = 0x7FF8_0000_0000_0002
	recv := sys.Machine().AllocRegion(1, 32, false)
	send := sys.Machine().AllocRegion(0, 32, false)
	send.Bytes()[0] = 7

	mgr := sys.CkDirect()
	h, _ := mgr.CreateHandle(1, recv, oob, func(ctx *ckdsim.Ctx) {})
	_ = mgr.AssocLocal(h, 0, send)
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) { _ = mgr.Put(h) })
	sys.Run()

	mgr.ReadyMark(h) // buffer released; channel NOT polled
	fmt.Println("polled while marked:", mgr.PolledOn(1))
	mgr.ReadyPollQ(h) // phase boundary: resume polling
	fmt.Println("polled after PollQ:", mgr.PolledOn(1))
	// Output:
	// polled while marked: 0
	// polled after PollQ: 1
}
