// Package ckdsim is the public face of the CkDirect reproduction: a
// message-driven runtime (chares, entry methods, reductions) with the
// CkDirect one-sided channel extension, running on simulated machines
// calibrated against the paper's two evaluation platforms.
//
// The quickest way in:
//
//	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 4, ckdsim.Options{Checked: true})
//	recv := sys.Machine().AllocRegion(1, 64, false)
//	h, _ := sys.CkDirect().CreateHandle(1, recv, oob, func(ctx *ckdsim.Ctx) { ... })
//	...
//	sys.Run()
//
// See examples/ for complete programs.
package ckdsim

import (
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Re-exported core types. These are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Engine is the discrete-event engine driving a simulation.
	Engine = sim.Engine
	// Machine is the simulated hardware: PEs, nodes, topology.
	Machine = machine.Machine
	// Region is network-addressable memory on a PE.
	Region = machine.Region
	// Platform bundles the calibrated cost model of one evaluation
	// machine.
	Platform = netmodel.Platform
	// RTS is the message-driven runtime.
	RTS = charm.RTS
	// Array is a chare array.
	Array = charm.Array
	// Section is a fixed subset of an array with its own multicast and
	// reduction machinery.
	Section = charm.Section
	// Index addresses an element of a chare array.
	Index = charm.Index
	// EP identifies a registered entry method.
	EP = charm.EP
	// Ctx is the execution context passed to entry methods and CkDirect
	// callbacks.
	Ctx = charm.Ctx
	// Message is a two-sided message.
	Message = charm.Message
	// Options configures runtime checking, payload handling and the
	// execution backend.
	Options = charm.Options
	// Backend selects how programs execute: simulated virtual time or
	// real goroutine-per-PE execution.
	Backend = charm.Backend
	// Manager owns CkDirect state for a runtime.
	Manager = ckdirect.Manager
	// Handle is one CkDirect channel.
	Handle = ckdirect.Handle
	// Recorder accumulates instrumentation.
	Recorder = trace.Recorder
	// ReduceOp selects a reduction combiner.
	ReduceOp = charm.ReduceOp
)

// Re-exported constants and helpers.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Reduction operations.
const (
	Sum  = charm.Sum
	Min  = charm.Min
	Max  = charm.Max
	Prod = charm.Prod
)

// Execution backends.
const (
	SimBackend  = charm.SimBackend
	RealBackend = charm.RealBackend
)

// ParseBackend maps "sim" / "real" to a Backend (flag plumbing).
var ParseBackend = charm.ParseBackend

// Index constructors.
var (
	Idx1 = charm.Idx1
	Idx2 = charm.Idx2
	Idx3 = charm.Idx3
	Idx4 = charm.Idx4
)

// Array maps.
var (
	BlockMap1D = charm.BlockMap1D
	RRMap      = charm.RRMap
)

// Microseconds converts µs to Time.
func Microseconds(us float64) Time { return sim.Microseconds(us) }

// AbeIB returns the NCSA Abe (Infiniband) platform model.
func AbeIB() *Platform { return netmodel.AbeIB }

// SurveyorBGP returns the ANL Surveyor (Blue Gene/P) platform model.
func SurveyorBGP() *Platform { return netmodel.SurveyorBGP }

// Platforms returns all calibrated platforms by name.
func Platforms() map[string]*Platform { return netmodel.Platforms }

// System bundles everything one simulation needs: engine, machine,
// network, runtime, CkDirect manager and recorder.
type System struct {
	engine   *Engine
	machine  *Machine
	rts      *RTS
	ckd      *Manager
	recorder *Recorder
}

// NewSystem builds a ready-to-use simulation on the given platform with
// the given number of processing elements.
func NewSystem(plat *Platform, pes int, opts Options) *System {
	eng := sim.NewEngine()
	mach, net := plat.BuildMachine(eng, pes)
	rec := trace.NewRecorder()
	rts := charm.NewRTS(eng, mach, net, plat, rec, opts)
	return &System{
		engine:   eng,
		machine:  mach,
		rts:      rts,
		ckd:      ckdirect.NewManager(rts),
		recorder: rec,
	}
}

// Engine returns the event engine.
func (s *System) Engine() *Engine { return s.engine }

// Machine returns the simulated machine.
func (s *System) Machine() *Machine { return s.machine }

// RTS returns the message-driven runtime.
func (s *System) RTS() *RTS { return s.rts }

// CkDirect returns the one-sided channel manager.
func (s *System) CkDirect() *Manager { return s.ckd }

// Recorder returns the instrumentation recorder.
func (s *System) Recorder() *Recorder { return s.recorder }

// Run drives the program to completion and returns the final time:
// virtual time on the sim backend, wall-clock elapsed on the real one.
func (s *System) Run() Time { return s.rts.Run() }

// Errors returns contract violations recorded in checked mode.
func (s *System) Errors() []error { return s.rts.Errors() }
