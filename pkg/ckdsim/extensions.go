package ckdsim

import (
	"repro/internal/ckdirect"
)

// Re-exported extension types (the paper's §6 future-work features, all
// implemented: strided layouts, multicast channels, reduction channels,
// the get-model alternative, and the channel learner).
type (
	// StridedLayout describes a strided put destination (count blocks of
	// BlockLen bytes, Stride apart).
	StridedLayout = ckdirect.StridedLayout
	// StridedHandle is a channel with a strided destination.
	StridedHandle = ckdirect.StridedHandle
	// MulticastHandle fans one source buffer out to several receivers.
	MulticastHandle = ckdirect.MulticastHandle
	// MulticastMember describes one receiver of a multicast channel.
	MulticastMember = ckdirect.MulticastMember
	// ReduceChannel combines one-sided contributions from N producers.
	ReduceChannel = ckdirect.ReduceChannel
	// GetHandle is the receiver-initiated (get) alternative the paper
	// argued against — provided for comparison.
	GetHandle = ckdirect.GetHandle
	// Learner observes message traffic and suggests persistent channels.
	Learner = ckdirect.Learner
	// Suggestion is one candidate channel from the Learner.
	Suggestion = ckdirect.Suggestion
)

// NewLearner attaches a channel learner to the system's runtime.
func (s *System) NewLearner() *Learner {
	return ckdirect.NewLearner(s.ckd)
}
