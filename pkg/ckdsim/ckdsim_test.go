package ckdsim_test

import (
	"testing"

	"repro/pkg/ckdsim"
)

// TestPublicAPIRoundTrip exercises the facade end to end: build a system,
// set up a channel, put, observe the callback, check bookkeeping.
func TestPublicAPIRoundTrip(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 4, ckdsim.Options{Checked: true})
	const oob = 0xFFF0123456789ABC

	recv := sys.Machine().AllocRegion(1, 128, false)
	send := sys.Machine().AllocRegion(0, 128, false)
	for i := range send.Bytes() {
		send.Bytes()[i] = byte(i)
	}

	var fired ckdsim.Time = -1
	h, err := sys.CkDirect().CreateHandle(1, recv, oob, func(ctx *ckdsim.Ctx) {
		fired = ctx.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CkDirect().AssocLocal(h, 0, send); err != nil {
		t.Fatal(err)
	}
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		if err := sys.CkDirect().Put(h); err != nil {
			t.Error(err)
		}
	})
	end := sys.Run()
	if fired < 0 || end < fired {
		t.Fatalf("callback at %v, run ended %v", fired, end)
	}
	if recv.Bytes()[100] != 100 {
		t.Fatal("payload not delivered")
	}
	if len(sys.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", sys.Errors())
	}
}

func TestPublicArraysAndReductions(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.SurveyorBGP(), 4, ckdsim.Options{})
	arr := sys.RTS().NewArray("workers", ckdsim.RRMap(4))
	for i := 0; i < 10; i++ {
		arr.Insert(ckdsim.Idx1(i), nil)
	}
	total := 0.0
	arr.SetReductionClient(ckdsim.Sum, func(ctx *ckdsim.Ctx, vals []float64) {
		total = vals[0]
	})
	ep := arr.EntryMethod("go", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {
		ctx.Charge(10 * ckdsim.Microsecond)
		ctx.Contribute(float64(ctx.Index()[0]))
	})
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		ctx.Broadcast(arr, ep, &ckdsim.Message{Size: 8})
	})
	sys.Run()
	if total != 45 {
		t.Fatalf("reduction = %v, want 45", total)
	}
}

func TestPlatformsExposed(t *testing.T) {
	ps := ckdsim.Platforms()
	if len(ps) < 2 {
		t.Fatalf("%d platforms", len(ps))
	}
	if ckdsim.AbeIB().Name != "abe-infiniband" {
		t.Fatal("AbeIB misnamed")
	}
	if ckdsim.SurveyorBGP().CkdRecvIsCallback != true {
		t.Fatal("BGP should use callback delivery")
	}
}
