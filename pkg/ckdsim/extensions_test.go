package ckdsim_test

import (
	"testing"

	"repro/pkg/ckdsim"
)

const oob = 0xFFF0AAAA5555AAAA

func TestPublicStridedPut(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 2, ckdsim.Options{Checked: true})
	mgr, mach := sys.CkDirect(), sys.Machine()

	matrix := mach.AllocRegion(1, 8*8*8, false) // 8x8 float64
	layout := ckdsim.StridedLayout{Offset: 0, BlockLen: 16, Stride: 64, Count: 8}
	fired := false
	sh, err := mgr.CreateStridedHandle(1, matrix, layout, oob, func(ctx *ckdsim.Ctx) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	src := mach.AllocRegion(0, layout.TotalBytes(), false)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i + 1)
	}
	if err := mgr.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		if err := mgr.PutStrided(sh); err != nil {
			t.Error(err)
		}
	})
	sys.Run()
	if !fired {
		t.Fatal("callback never fired")
	}
	// First block landed at row 0, second at row 1 (stride 64).
	if matrix.Bytes()[0] != 1 || matrix.Bytes()[64] != 17 {
		t.Fatal("strided placement wrong through the public API")
	}
	if len(sys.Errors()) != 0 {
		t.Fatalf("errors: %v", sys.Errors())
	}
}

func TestPublicMulticastAndReduce(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.SurveyorBGP(), 4, ckdsim.Options{Checked: true})
	mgr, mach := sys.CkDirect(), sys.Machine()

	// Multicast 0 -> {1,2}.
	src := mach.AllocRegion(0, 64, false)
	arrived := 0
	mh, err := mgr.CreateMulticast(0, src, oob, []ckdsim.MulticastMember{
		{PE: 1, Buf: mach.AllocRegion(1, 64, false), Callback: func(*ckdsim.Ctx) { arrived++ }},
		{PE: 2, Buf: mach.AllocRegion(2, 64, false), Callback: func(*ckdsim.Ctx) { arrived++ }},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reduce {0,1} -> 3.
	var total float64
	rc, err := mgr.CreateReduceChannel(3, 2, 1, ckdsim.Sum, oob,
		func(ctx *ckdsim.Ctx, vals []float64) { total = vals[0] })
	if err != nil {
		t.Fatal(err)
	}
	contribs := []*ckdsim.Region{mach.AllocRegion(0, 8, false), mach.AllocRegion(1, 8, false)}
	for i, c := range contribs {
		if err := mgr.AssocLocal(rc.SlotHandle(i), i, c); err != nil {
			t.Fatal(err)
		}
	}

	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		if err := mgr.MulticastPut(mh, nil); err != nil {
			t.Error(err)
		}
		for i, c := range contribs {
			if err := mgr.Contribute(rc, i, c, []float64{float64(i + 5)}); err != nil {
				t.Error(err)
			}
		}
	})
	sys.Run()
	if arrived != 2 {
		t.Fatalf("multicast arrived %d, want 2", arrived)
	}
	if total != 11 {
		t.Fatalf("reduce total %v, want 11", total)
	}
}

func TestPublicLearner(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 2, ckdsim.Options{})
	learner := sys.NewLearner()
	arr := sys.RTS().NewArray("flows", ckdsim.BlockMap1D(2, 2))
	arr.Insert(ckdsim.Idx1(0), nil)
	arr.Insert(ckdsim.Idx1(1), nil)
	ep := arr.EntryMethod("e", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {})
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		for i := 0; i < 4; i++ {
			ctx.Send(arr, ckdsim.Idx1(1), ep, &ckdsim.Message{Size: 8192})
		}
	})
	sys.Run()
	sug := learner.Advise()
	if len(sug) != 1 || sug[0].Size != 8192 {
		t.Fatalf("suggestions %+v", sug)
	}
}

func TestPublicSection(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 3, ckdsim.Options{})
	arr := sys.RTS().NewArray("a", ckdsim.RRMap(3))
	type obj struct{ got int }
	for i := 0; i < 9; i++ {
		arr.Insert(ckdsim.Idx1(i), &obj{})
	}
	sec := arr.NewSection("thirds", []ckdsim.Index{ckdsim.Idx1(0), ckdsim.Idx1(3), ckdsim.Idx1(6)})
	var total float64
	sec.SetReductionClient(ckdsim.Sum, func(ctx *ckdsim.Ctx, vals []float64) { total = vals[0] })
	ep := arr.EntryMethod("p", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {
		ctx.Obj().(*obj).got++
		sec.ContributeFrom(ctx.Index(), float64(ctx.Index()[0]))
	})
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		ctx.MulticastSection(sec, ep, &ckdsim.Message{Size: 8})
	})
	sys.Run()
	if total != 9 {
		t.Fatalf("section reduction = %v, want 9", total)
	}
	if arr.Obj(ckdsim.Idx1(1)).(*obj).got != 0 {
		t.Fatal("non-member received section multicast")
	}
}

func TestPublicQuiescence(t *testing.T) {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 2, ckdsim.Options{})
	ep := sys.RTS().RegisterPEHandler(func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {})
	fired := false
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		ctx.SendPE(1, ep, &ckdsim.Message{Size: 64})
		sys.RTS().OnQuiescence(func() { fired = true })
	})
	sys.Run()
	if !fired {
		t.Fatal("quiescence not detected through the public API")
	}
}
