// Command fem runs the supplementary unstructured-mesh FEM study (the
// paper's §1 application class): an explicit solver whose partition
// boundaries produce an irregular, static communication graph.
//
//	fem -platform abe -pes 32 -mesh 2048x2048 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps/fem"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 16, "processing elements")
		mesh        = flag.String("mesh", "512x512", "quad grid NXxNY (2*NX*NY triangles)")
		vr          = flag.Int("vr", 2, "mesh partitions per PE")
		iters       = flag.Int("iters", 3, "measured iterations")
		warmup      = flag.Int("warmup", 1, "warmup iterations")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		compare     = flag.Bool("compare", false, "run both modes and report the improvement")
		validate    = flag.Bool("validate", false, "move real vertex data and verify against the serial reference (small meshes)")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory); net hosts the pingpong/stencil workloads")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
	)
	flag.Parse()

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fatal(fmt.Errorf("unknown platform %q", *platName))
	}
	parts := strings.Split(*mesh, "x")
	if len(parts) != 2 {
		fatal(fmt.Errorf("mesh %q not NXxNY", *mesh))
	}
	nx, err1 := strconv.Atoi(parts[0])
	ny, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || nx <= 0 || ny <= 0 {
		fatal(fmt.Errorf("bad mesh %q", *mesh))
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be == charm.NetBackend {
		fatal(fmt.Errorf("the distributed net backend hosts the pingpong and stencil workloads; run this study with -backend=sim or -backend=real (see DESIGN.md §8)"))
	}
	if be == charm.RealBackend && (*faultSpec != "" || *noise || *reliable || *watchdog != "off") {
		fatal(fmt.Errorf("-faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)"))
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}
	cfg := fem.Config{
		Platform: plat,
		PEs:      *pes, Virtualization: *vr,
		NX: nx, NY: ny,
		Iters: *iters, Warmup: *warmup,
		Validate: *validate,
		Backend:  be,
		Chaos:    sc,
	}
	if *compare {
		msg, ckd, pct := fem.Improvement(cfg)
		fmt.Printf("fem %s (%d triangles) on %d PEs of %s, %d partitions (%dx%d)\n",
			*mesh, 2*nx*ny, *pes, plat.Name, msg.Parts, msg.PartGrid[0], msg.PartGrid[1])
		fmt.Printf("  msg: %v per iteration\n", msg.IterTime)
		fmt.Printf("  ckd: %v per iteration (%d channels)\n", ckd.IterTime, ckd.Channels)
		fmt.Printf("  improvement: %.2f%%\n", pct)
		reportErrors("fem", append(msg.Errors, ckd.Errors...))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = fem.Msg
	case "ckd":
		cfg.Mode = fem.Ckd
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	res := fem.Run(cfg)
	fmt.Printf("fem %s, mode %v, %d PEs: %v per iteration (%d partitions, %d channels)\n",
		*mesh, cfg.Mode, *pes, res.IterTime, res.Parts, res.Channels)
	if *validate {
		fmt.Printf("  residual %.6g, shared-vertex consistency: %v\n", res.Residual, res.SharedConsistent)
	}
	reportErrors("fem", res.Errors)
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero.
func reportErrors(prog string, errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "%s: runtime violation: %v\n", prog, e)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fem:", err)
	os.Exit(2)
}
