// Command fem runs the supplementary unstructured-mesh FEM study (the
// paper's §1 application class): an explicit solver whose partition
// boundaries produce an irregular, static communication graph.
//
//	fem -platform abe -pes 32 -mesh 2048x2048 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps/fem"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 16, "processing elements")
		mesh        = flag.String("mesh", "512x512", "quad grid NXxNY (2*NX*NY triangles)")
		vr          = flag.Int("vr", 2, "mesh partitions per PE")
		iters       = flag.Int("iters", 3, "measured iterations")
		warmup      = flag.Int("warmup", 1, "warmup iterations")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		compare     = flag.Bool("compare", false, "run both modes and report the improvement")
		validate    = flag.Bool("validate", false, "move real vertex data and verify against the serial reference (small meshes)")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		ckptEvery   = flag.Int("ckpt.every", 0, "checkpoint every N reduction barriers, 0 disables (net backend only)")
		ckptDir     = flag.String("ckpt.dir", "", "checkpoint directory, shared by every rank (net backend only)")
		killSpec    = flag.String("chaos.kill", "", `kill -9 a worker rank mid-run: "RANK@STEP" (net backend only; the world recovers and reruns)`)
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fatal(fmt.Errorf("unknown platform %q", *platName))
	}
	parts := strings.Split(*mesh, "x")
	if len(parts) != 2 {
		fatal(fmt.Errorf("mesh %q not NXxNY", *mesh))
	}
	nx, err1 := strconv.Atoi(parts[0])
	ny, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || nx <= 0 || ny <= 0 {
		fatal(fmt.Errorf("bad mesh %q", *mesh))
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be != charm.SimBackend && (*faultSpec != "" || *noise || *reliable || *watchdog != "off") {
		fatal(fmt.Errorf("-faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)"))
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}
	kill, err := chaos.ParseKill(*killSpec)
	if err != nil {
		fatal(err)
	}
	if (*ckptEvery > 0) != (*ckptDir != "") {
		fatal(fmt.Errorf("-ckpt.every and -ckpt.dir go together (got every=%d, dir=%q)", *ckptEvery, *ckptDir))
	}
	recovery := *ckptEvery > 0 || kill != nil
	if recovery {
		if be != charm.NetBackend {
			fatal(fmt.Errorf("-ckpt.* and -chaos.kill exercise rank-death recovery and need -backend=net"))
		}
		if *compare {
			fatal(fmt.Errorf("-compare reruns both modes on one mesh and cannot combine with recovery flags (pick one -mode)"))
		}
		// Keep every rank's listener open past bootstrap so Rejoin can
		// rebuild the mesh around a respawned rank.
		netCfg.Recover = true
	}
	var node *netrt.Node
	if be == charm.NetBackend {
		if node, err = netrt.Start(*netCfg); err != nil {
			fatal(err)
		}
	}
	// Worker ranks compute and validate their hosted parts; the report
	// (and the exit status of the whole world) belongs to rank 0.
	quiet := node != nil && node.IsWorker()
	cfg := fem.Config{
		Platform: plat,
		PEs:      *pes, Virtualization: *vr,
		NX: nx, NY: ny,
		Iters: *iters, Warmup: *warmup,
		Validate: *validate,
		Backend:  be,
		Net:      node,
		Chaos:    sc,
		Kill:     kill,
	}
	if *ckptEvery > 0 {
		cfg.Ckpt = &charm.CkptOptions{Dir: *ckptDir, Every: *ckptEvery}
	}
	if *compare {
		msg, ckd, pct := fem.Improvement(cfg)
		if !quiet {
			fmt.Printf("fem %s (%d triangles) on %d PEs of %s, %d partitions (%dx%d)\n",
				*mesh, 2*nx*ny, *pes, plat.Name, msg.Parts, msg.PartGrid[0], msg.PartGrid[1])
			fmt.Printf("  msg: %v per iteration\n", msg.IterTime)
			fmt.Printf("  ckd: %v per iteration (%d channels)\n", ckd.IterTime, ckd.Channels)
			fmt.Printf("  improvement: %.2f%%\n", pct)
		}
		reportErrors("fem", closeNode(node, append(msg.Errors, ckd.Errors...)))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = fem.Msg
	case "ckd":
		cfg.Mode = fem.Ckd
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	var res fem.Result
	if recovery {
		// Every rank's driver retries through the same recovery loop: on
		// a recoverable rank death the mesh rebuilds (respawning the
		// victim), and the re-run resumes from the newest committed
		// checkpoint — or from scratch when none was taken.
		res.Errors = charm.RunWithRecovery(node, charm.DefaultRecoveryAttempts, func() []error {
			res = fem.Run(cfg)
			return res.Errors
		})
	} else {
		res = fem.Run(cfg)
	}
	if !quiet {
		fmt.Printf("fem %s, mode %v, %d PEs: %v per iteration (%d partitions, %d channels)\n",
			*mesh, cfg.Mode, *pes, res.IterTime, res.Parts, res.Channels)
		if *validate {
			// Under net each rank validates only the parts it hosts
			// against the shared serial reference.
			fmt.Printf("  residual %.6g, shared-vertex consistency: %v\n", res.Residual, res.SharedConsistent)
		}
	}
	reportErrors("fem", closeNode(node, res.Errors))
}

// closeNode tears the net-backend mesh down (reaping self-spawned
// workers) and folds any teardown failure — e.g. a worker whose local
// validation exited non-zero — into the run's error list.
func closeNode(node *netrt.Node, errs []error) []error {
	if node == nil {
		return errs
	}
	if err := node.Close(); err != nil {
		errs = append(errs, err)
	}
	return errs
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero.
func reportErrors(prog string, errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "%s: runtime violation: %v\n", prog, e)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fem:", err)
	os.Exit(2)
}
