package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// client wraps the daemon's HTTP API for the submit and bench modes.
type client struct {
	base string
	hc   *http.Client
}

func newClient(addr string, timeout time.Duration) *client {
	return &client{base: "http://" + addr, hc: &http.Client{Timeout: timeout}}
}

// submit posts one spec. It retries 429 rejections with a small
// backoff — overload is the daemon shedding load, not a failure.
func (c *client) submit(spec []byte, retries int) (serve.Job, error) {
	var job serve.Job
	for attempt := 0; ; attempt++ {
		resp, err := c.hc.Post(c.base+"/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return job, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return job, json.Unmarshal(body, &job)
		case http.StatusTooManyRequests:
			if attempt >= retries {
				return job, fmt.Errorf("still overloaded after %d retries: %s", retries, body)
			}
			time.Sleep(time.Duration(20*(attempt+1)) * time.Millisecond)
		default:
			return job, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, body)
		}
	}
}

// wait long-polls one job to completion.
func (c *client) wait(id int64, timeout time.Duration) (serve.Job, error) {
	deadline := time.Now().Add(timeout)
	var job serve.Job
	for {
		left := time.Until(deadline)
		if left <= 0 {
			return job, fmt.Errorf("job %d did not finish within %v", id, timeout)
		}
		poll := 30 * time.Second
		if left < poll {
			poll = left
		}
		resp, err := c.hc.Get(fmt.Sprintf("%s/jobs/%d/wait?timeout=%s", c.base, id, poll))
		if err != nil {
			return job, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return job, json.Unmarshal(body, &job)
		case http.StatusAccepted:
			continue // still running; poll again
		default:
			return job, fmt.Errorf("wait: HTTP %d: %s", resp.StatusCode, body)
		}
	}
}

// submitMain is `ckserve submit`: one job, wait, print the result.
func submitMain(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8097", "daemon address")
	spec := fs.String("spec", `{"kind":"pingpong"}`, "job spec JSON")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall wait budget")
	noWait := fs.Bool("nowait", false, "submit only; do not wait for completion")
	fs.Parse(args)

	c := newClient(*addr, time.Minute)
	job, err := c.submit([]byte(*spec), 10)
	if err != nil {
		fatal(err)
	}
	if !*noWait {
		if job, err = c.wait(job.ID, *timeout); err != nil {
			fatal(err)
		}
	}
	out, _ := json.MarshalIndent(job, "", "  ")
	fmt.Println(string(out))
	if !*noWait && job.State != serve.StateDone {
		os.Exit(1)
	}
}

// benchMain is `ckserve bench`: hammer the daemon with concurrent
// submissions and report jobs/sec.
func benchMain(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8097", "daemon address")
	spec := fs.String("spec", `{"kind":"pingpong","iters":50}`, "job spec JSON")
	n := fs.Int("n", 50, "total jobs")
	conc := fs.Int("c", 4, "concurrent submitters")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall budget")
	jsonOut := fs.Bool("json", false, "print a JSON report instead of text")
	fs.Parse(args)

	c := newClient(*addr, time.Minute)
	var failed int64
	latencies := make([]float64, *n)
	ids := make(chan int, *n)
	for i := 0; i < *n; i++ {
		ids <- i
	}
	close(ids)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				jobStart := time.Now()
				job, err := c.submit([]byte(*spec), 50)
				if err == nil {
					job, err = c.wait(job.ID, *timeout)
				}
				latencies[i] = float64(time.Since(jobStart)) / float64(time.Millisecond)
				if err != nil || job.State != serve.StateDone {
					atomic.AddInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	report := map[string]any{
		"jobs":        *n,
		"concurrency": *conc,
		"failed":      failed,
		"elapsed_ms":  float64(elapsed) / float64(time.Millisecond),
		"jobs_per_s":  float64(*n) / elapsed.Seconds(),
		"lat_ms_p50":  pct(0.50),
		"lat_ms_p90":  pct(0.90),
		"lat_ms_max":  latencies[len(latencies)-1],
	}
	if *jsonOut {
		out, _ := json.MarshalIndent(report, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Printf("ckserve bench: %d jobs x%d concurrent in %v = %.1f jobs/s (p50 %.1fms, p90 %.1fms, max %.1fms, %d failed)\n",
			*n, *conc, elapsed.Round(time.Millisecond), report["jobs_per_s"],
			report["lat_ms_p50"], report["lat_ms_p90"], report["lat_ms_max"], failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
