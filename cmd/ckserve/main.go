// Command ckserve is the long-lived job-serving daemon: it boots the
// mesh once (-backend=real or net), keeps peers dialed and pools warm,
// and serves a stream of jobs over a local HTTP/JSON API instead of
// paying the boot cost per run.
//
//	ckserve -backend=net -net.world=3 -addr 127.0.0.1:8097
//	ckserve submit -addr 127.0.0.1:8097 -spec '{"kind":"stencil","validate":true}'
//	ckserve bench  -addr 127.0.0.1:8097 -n 100 -c 8
//
// Under the net backend every rank runs the same binary (self-spawn
// does this automatically): rank 0 owns the HTTP API and the job
// queue, worker ranks follow the job announcements. A worker rank
// kill -9'd mid-job is respawned and the job retried — the daemon
// survives.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/serve"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			benchMain(os.Args[2:])
			return
		case "submit":
			submitMain(os.Args[2:])
			return
		}
	}
	daemonMain()
}

func daemonMain() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8097", "HTTP listen address (rank 0 only)")
		platName    = flag.String("platform", "abe", "abe | bgp (modelled CPU-cost platform)")
		backendName = flag.String("backend", "real", "real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		queueDepth  = flag.Int("queue", 16, "admission queue depth; submissions beyond it get 429")
		attempts    = flag.Int("attempts", charm.DefaultRecoveryAttempts, "per-job recovery attempts after a rank death (net)")
		parallel    = flag.Int("parallel", 1, "concurrent jobs (real backend only; net runs one at a time)")
		reportWait  = flag.Duration("report.wait", 60*time.Second, "how long rank 0 waits for worker job reports")
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	plat, err := platform(*platName)
	if err != nil {
		fatal(err)
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be == charm.SimBackend {
		fatal(fmt.Errorf("ckserve serves the live backends; run -backend=real or -backend=net (sim runs are one-shot cmds)"))
	}

	env := serve.Env{Backend: be, Platform: plat}
	var node *netrt.Node
	if be == charm.NetBackend {
		// A serving mesh must be able to outlive any single job: keep
		// listeners open past bootstrap so Rejoin can rebuild around a
		// respawned rank.
		netCfg.Recover = true
		if node, err = netrt.Start(*netCfg); err != nil {
			fatal(err)
		}
		env.Net = node
	}

	if node != nil && node.IsWorker() {
		// Worker rank: no HTTP, just follow the job announcements until
		// rank 0 says shutdown.
		if err := serve.Follow(env, *attempts); err != nil {
			fmt.Fprintln(os.Stderr, "ckserve worker:", err)
			node.Close()
			os.Exit(1)
		}
		node.Close()
		return
	}

	srv, err := serve.New(serve.Options{
		Env:        env,
		QueueDepth: *queueDepth,
		Attempts:   *attempts,
		ReportWait: *reportWait,
		Parallel:   *parallel,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	world := 1
	if node != nil {
		world = node.World()
	}
	fmt.Printf("ckserve listening on http://%s (backend %s, world %d, kinds %v)\n",
		ln.Addr(), be, world, serve.Kinds())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("ckserve: shutting down")
	httpSrv.Close()
	srv.Close()
	serve.AnnounceShutdown(env)
	if node != nil {
		if err := node.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ckserve:", err)
			os.Exit(1)
		}
	}
}

func platform(name string) (*netmodel.Platform, error) {
	switch name {
	case "abe", "ib":
		return netmodel.AbeIB, nil
	case "bgp":
		return netmodel.SurveyorBGP, nil
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ckserve:", err)
	os.Exit(2)
}
