// Command ckbench regenerates the paper's evaluation artifacts: every
// table and figure of "CkDirect: Unsynchronized One-Sided Communication
// in a Message-Driven Paradigm" (ICPP 2009), plus the ablations described
// in DESIGN.md.
//
// Usage:
//
//	ckbench -list
//	ckbench -exp table1            # one experiment, quick scale
//	ckbench -exp all -scale paper  # full published configurations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.String("scale", "quick", "quick | paper")
		format  = flag.String("format", "text", "text | csv")
		list    = flag.Bool("list", false, "list experiments and exit")
		timings = flag.Bool("timings", false, "print wall-clock time per experiment")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "ckbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Description)
		}
		return
	}
	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var todo []bench.Experiment
	if *expID == "all" {
		todo = bench.All()
	} else {
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ckbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		tables := e.Run(sc)
		for _, t := range tables {
			if *format == "csv" {
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.Format())
			}
		}
		if *timings {
			fmt.Printf("  [%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
