// Command ckbench regenerates the paper's evaluation artifacts: every
// table and figure of "CkDirect: Unsynchronized One-Sided Communication
// in a Message-Driven Paradigm" (ICPP 2009), plus the ablations described
// in DESIGN.md and the real-execution hardware experiment.
//
// Usage:
//
//	ckbench -list
//	ckbench -exp table1            # one experiment, quick scale
//	ckbench -exp all -scale paper  # full published configurations
//	ckbench -exp realhw -json      # wall-clock run, archived as BENCH_realhw.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
)

// jsonReport is the archived form of a ckbench run: the tables plus
// enough host metadata to interpret wall-clock numbers later.
type jsonReport struct {
	Experiment string         `json:"experiment"`
	Scale      string         `json:"scale"`
	GoVersion  string         `json:"go_version"`
	OS         string         `json:"os"`
	Arch       string         `json:"arch"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Generated  string         `json:"generated"`
	Tables     []*bench.Table `json:"tables"`
}

func main() {
	var (
		expID      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale      = flag.String("scale", "quick", "quick | paper")
		format     = flag.String("format", "text", "text | csv")
		jsonOut    = flag.Bool("json", false, "also write results to BENCH_<exp>.json")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		list       = flag.Bool("list", false, "list experiments and exit")
		timings    = flag.Bool("timings", false, "print wall-clock time per experiment")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "ckbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Description)
		}
		return
	}
	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var todo []bench.Experiment
	if *expID == "all" {
		todo = bench.All()
	} else {
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ckbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var archive []*bench.Table
	for _, e := range todo {
		start := time.Now()
		tables := e.Run(sc)
		archive = append(archive, tables...)
		for _, t := range tables {
			if *format == "csv" {
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.Format())
			}
		}
		if *timings {
			fmt.Printf("  [%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *jsonOut {
		name := fmt.Sprintf("BENCH_%s.json", *expID)
		report := jsonReport{
			Experiment: *expID,
			Scale:      *scale,
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Tables:     archive,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d tables)\n", name, len(archive))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ckbench:", err)
	os.Exit(2)
}
