// Command cktrace runs an application with the Projections-style
// timeline recorder attached and reports per-PE utilization plus the
// heaviest spans — or writes the raw Chrome trace-event JSON for
// chrome://tracing / Perfetto.
//
//	cktrace -app stencil -pes 8 -mode ckd
//	cktrace -app fem -pes 16 -mode msg -out trace.json
//	cktrace -app stencil -backend real -mode ckd
//
// Under -backend=real the timeline recorder (which replays virtual
// time) is unavailable; instead the run reports the live runtime's
// trace counters, including the allocator and pool pressure counters
// (mem.*, pool.*) described in DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/apps/fem"
	"repro/internal/apps/matmul"
	"repro/internal/apps/openatom"
	"repro/internal/apps/stencil"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/lb"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		appName     = flag.String("app", "stencil", "stencil | matmul | openatom | fem")
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 8, "processing elements")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		out         = flag.String("out", "", "write Chrome trace JSON here instead of the summary")
		backendName = flag.String("backend", "sim", "sim (timeline + spans) | real (wall clock, counter summary)")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		lbEvery     = flag.Int("lb.every", 0, "run a load-balancing round every N barriers (stencil only; 0 disables)")
		lbStrategy  = flag.String("lb.strategy", "greedy", "rebalancing strategy: greedy | none")
		skew        = flag.Float64("skew", 0, "artificial imbalance: the first half of the chare array wastes this many times extra compute (stencil only)")
	)
	flag.Parse()

	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	switch be {
	case charm.SimBackend:
	case charm.RealBackend:
		// The timeline recorder replays virtual time; on the live backend
		// cktrace reports the runtime's trace counters instead.
		if *out != "" {
			fatal(fmt.Errorf("-out (Chrome trace JSON) needs the sim backend's virtual timeline"))
		}
		if *faultSpec != "" || *noise || *reliable || *watchdog != "off" {
			fatal(fmt.Errorf("chaos scenarios (faults, noise, reliability, watchdog) are sim-only"))
		}
	default:
		fatal(fmt.Errorf("the net backend is multi-process; run the apps directly (e.g. stencil -backend=net) and read the counters from each rank's report"))
	}

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fatal(fmt.Errorf("unknown platform %q", *platName))
	}
	ckd := *modeName == "ckd"
	if !ckd && *modeName != "msg" {
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	if (*lbEvery > 0 || *skew > 0) && *appName != "stencil" {
		fatal(fmt.Errorf("-lb.every/-skew trace the stencil workload only"))
	}
	if *lbEvery > 0 {
		if s, err := lb.ParseStrategy(*lbStrategy); err != nil {
			fatal(err)
		} else if s == nil {
			fatal(fmt.Errorf("-lb.every needs a strategy (try -lb.strategy=greedy)"))
		}
	}

	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}

	var tl *trace.Timeline
	if be == charm.SimBackend {
		tl = trace.NewTimeline(0)
	}
	var total sim.Time
	var errs []error
	var counters map[string]int64
	switch *appName {
	case "stencil":
		mode := stencil.Msg
		if ckd {
			mode = stencil.Ckd
		}
		res := stencil.Run(stencil.Config{
			Platform: plat, Mode: mode, PEs: *pes, Virtualization: 4,
			NX: 128, NY: 128, NZ: 64, Iters: 3, Warmup: 1,
			Backend: be, Timeline: tl, Chaos: sc,
			LBEvery: *lbEvery, LBStrategy: *lbStrategy,
			Skew: *skew,
		})
		total = res.IterTime * sim.Time(res.Iters)
		errs, counters = res.Errors, res.Counters
	case "matmul":
		mode := matmul.Msg
		if ckd {
			mode = matmul.Ckd
		}
		res := matmul.Run(matmul.Config{
			Platform: plat, Mode: mode, PEs: *pes, N: 512,
			Iters: 2, Warmup: 1, Backend: be, Timeline: tl, Chaos: sc,
		})
		total = res.IterTime * sim.Time(res.Iters)
		errs, counters = res.Errors, res.Counters
	case "openatom":
		mode := openatom.Msg
		if ckd {
			mode = openatom.Ckd
		}
		res := openatom.Run(openatom.Config{
			Platform: plat, Mode: mode, PEs: *pes,
			NStates: 32, NPlanes: 4, Grain: 8, Points: 256,
			Steps: 2, Warmup: 1, Backend: be, Timeline: tl, Chaos: sc,
		})
		total = res.StepTime * sim.Time(res.Steps)
		errs, counters = res.Errors, res.Counters
	case "fem":
		mode := fem.Msg
		if ckd {
			mode = fem.Ckd
		}
		res := fem.Run(fem.Config{
			Platform: plat, Mode: mode, PEs: *pes, Virtualization: 2,
			NX: 128, NY: 128, Iters: 3, Warmup: 1,
			Backend: be, Timeline: tl, Chaos: sc,
		})
		total = res.IterTime * sim.Time(res.Iters)
		errs, counters = res.Errors, res.Counters
	default:
		fatal(fmt.Errorf("unknown app %q", *appName))
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "cktrace: runtime violation: %v\n", e)
	}
	defer func() {
		if len(errs) > 0 {
			os.Exit(1)
		}
	}()

	if be == charm.RealBackend {
		fmt.Printf("%s on %d PEs (%s parameters), mode %s, real backend: measured window %v\n",
			*appName, *pes, plat.Name, *modeName, total)
		printCounters(counters)
		return
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tl.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d spans to %s\n", len(tl.Spans()), *out)
		return
	}

	// Summary: horizon, per-PE utilization, heaviest spans.
	spans := tl.Spans()
	var horizon sim.Time
	for _, s := range spans {
		if s.End > horizon {
			horizon = s.End
		}
	}
	fmt.Printf("%s on %d PEs of %s, mode %s: %d spans, horizon %v (measured window %v)\n",
		*appName, *pes, plat.Name, *modeName, len(spans), horizon, total)
	fmt.Println("\nPE utilization over the whole run:")
	for pe := 0; pe < *pes; pe++ {
		u := tl.Utilization(pe, horizon)
		bar := int(u * 40)
		fmt.Printf("  PE %3d  %6.1f%%  %s\n", pe, u*100, barString(bar))
	}
	sort.Slice(spans, func(i, j int) bool {
		return spans[i].End-spans[i].Start > spans[j].End-spans[j].Start
	})
	fmt.Println("\nheaviest spans:")
	for i := 0; i < 5 && i < len(spans); i++ {
		s := spans[i]
		fmt.Printf("  PE %3d  %-10s %v  [%v .. %v]\n", s.PE, s.Name, s.End-s.Start, s.Start, s.End)
	}
}

// printCounters reports the run's trace counters, leading with the
// memory-discipline groups (mem.* allocator/GC pressure, pool.* buffer
// pool traffic — DESIGN.md §9) and then everything else that fired.
func printCounters(counters map[string]int64) {
	group := func(title, prefix string) {
		var keys []string
		for k := range counters {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return
		}
		sort.Strings(keys)
		fmt.Printf("\n%s:\n", title)
		for _, k := range keys {
			fmt.Printf("  %-18s %12d\n", k, counters[k])
		}
	}
	group("allocator / GC (whole run)", "mem.")
	group("buffer pool", "pool.")
	if gets, misses := counters["pool.gets"], counters["pool.misses"]; gets > 0 {
		fmt.Printf("  %-18s %11.1f%%\n", "hit rate", 100*float64(gets-misses)/float64(gets))
	}
	group("load balancing", "lb.")
	var rest []string
	for k := range counters {
		if !strings.HasPrefix(k, "mem.") && !strings.HasPrefix(k, "pool.") &&
			!strings.HasPrefix(k, "lb.") && counters[k] != 0 {
			rest = append(rest, k)
		}
	}
	if len(rest) > 0 {
		sort.Strings(rest)
		fmt.Println("\nother counters:")
		for _, k := range rest {
			fmt.Printf("  %-18s %12d\n", k, counters[k])
		}
	}
}

func barString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cktrace:", err)
	os.Exit(2)
}
