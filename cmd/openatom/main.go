// Command openatom runs the §5 production-code proxy: the OpenAtom
// PairCalculator phase with message or CkDirect point transfers.
//
//	openatom -platform abe -pes 256 -cores-per-node 2 -scope pc-only -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/openatom"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 64, "processing elements")
		cores       = flag.Int("cores-per-node", 0, "override cores per node (paper's Abe study: 2)")
		nstates     = flag.Int("states", 256, "electronic states")
		nplanes     = flag.Int("planes", 16, "planes per state")
		grain       = flag.Int("grain", 64, "PairCalculator state-block size")
		points      = flag.Int("points", 4096, "complex coefficients per (state, plane)")
		fftWeight   = flag.Float64("fft-weight", 24, "relative weight of the non-PC phase")
		steps       = flag.Int("steps", 2, "measured time steps")
		warmup      = flag.Int("warmup", 1, "warmup steps")
		scopeName   = flag.String("scope", "full", "full | pc-only")
		modeName    = flag.String("mode", "ckd", "msg | ckd | ckd-naive")
		compare     = flag.Bool("compare", false, "run msg and ckd and report the improvement")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		ckptEvery   = flag.Int("ckpt.every", 0, "checkpoint every N reduction barriers (openatom does not checkpoint; rejected)")
		ckptDir     = flag.String("ckpt.dir", "", "checkpoint directory (openatom does not checkpoint; rejected)")
		killSpec    = flag.String("chaos.kill", "", `kill -9 a worker rank mid-run: "RANK@STEP" (needs checkpointing; rejected)`)
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	if *ckptEvery != 0 || *ckptDir != "" || *killSpec != "" {
		fatal(fmt.Errorf("-ckpt.every/-ckpt.dir/-chaos.kill exercise checkpoint-based rank-death recovery, which the openatom proxy does not implement; use pingpong, stencil, matmul or fem (see DESIGN.md §10)"))
	}

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fatal(fmt.Errorf("unknown platform %q", *platName))
	}
	var scope openatom.Scope
	switch *scopeName {
	case "full":
		scope = openatom.FullStep
	case "pc-only", "pc":
		scope = openatom.PCOnly
	default:
		fatal(fmt.Errorf("unknown scope %q", *scopeName))
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be != charm.SimBackend && (*faultSpec != "" || *noise || *reliable || *watchdog != "off") {
		fatal(fmt.Errorf("-faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)"))
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}
	var node *netrt.Node
	if be == charm.NetBackend {
		if node, err = netrt.Start(*netCfg); err != nil {
			fatal(err)
		}
	}
	// Worker ranks compute their hosted elements; the report (and the
	// exit status of the whole world) belongs to rank 0.
	quiet := node != nil && node.IsWorker()
	cfg := openatom.Config{
		Platform: plat,
		Scope:    scope,
		PEs:      *pes, CoresPerNode: *cores,
		NStates: *nstates, NPlanes: *nplanes, Grain: *grain, Points: *points,
		FFTWeight: *fftWeight,
		Steps:     *steps, Warmup: *warmup,
		Backend: be,
		Net:     node,
		Chaos:   sc,
	}
	if *compare {
		msg, ckd, pct := openatom.Improvement(cfg)
		if !quiet {
			fmt.Printf("openatom proxy on %d PEs of %s, scope %v (%d CkDirect channels)\n",
				*pes, plat.Name, scope, ckd.Channels)
			fmt.Printf("  msg: %v per step\n", msg.StepTime)
			fmt.Printf("  ckd: %v per step\n", ckd.StepTime)
			fmt.Printf("  improvement: %.2f%%\n", pct)
		}
		reportErrors(closeNode(node, append(msg.Errors, ckd.Errors...)))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = openatom.Msg
	case "ckd":
		cfg.Mode = openatom.Ckd
	case "ckd-naive":
		cfg.Mode = openatom.CkdNaive
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	res := openatom.Run(cfg)
	if !quiet {
		fmt.Printf("openatom proxy, mode %v, scope %v, %d PEs: %v per step (%d channels)\n",
			cfg.Mode, scope, *pes, res.StepTime, res.Channels)
	}
	reportErrors(closeNode(node, res.Errors))
}

// closeNode tears the net-backend mesh down (reaping self-spawned
// workers) and folds any teardown failure into the run's error list.
func closeNode(node *netrt.Node, errs []error) []error {
	if node == nil {
		return errs
	}
	if err := node.Close(); err != nil {
		errs = append(errs, err)
	}
	return errs
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero.
func reportErrors(errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "openatom: runtime violation: %v\n", e)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "openatom:", err)
	os.Exit(2)
}
