// Command stencil runs the §4.1 halo-exchange study: 3-D Jacobi with
// message-based or CkDirect halo exchange, or both side by side.
//
//	stencil -platform bgp -pes 256 -domain 1024x1024x512 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps/stencil"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/lb"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/trace"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 64, "processing elements")
		domain      = flag.String("domain", "1024x1024x512", "global domain NXxNYxNZ")
		vr          = flag.Int("vr", 8, "virtualization ratio (chares per PE)")
		iters       = flag.Int("iters", 3, "measured iterations")
		warmup      = flag.Int("warmup", 1, "warmup iterations")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		compare     = flag.Bool("compare", false, "run both modes and report the improvement")
		validate    = flag.Bool("validate", false, "move real data and check against the serial reference (small domains)")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		traceFile   = flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		lbEvery     = flag.Int("lb.every", 0, "run a load-balancing round every N reduction barriers, 0 disables")
		lbStrategy  = flag.String("lb.strategy", "greedy", "rebalancing strategy: greedy | none")
		skew        = flag.Float64("skew", 0, "artificial imbalance: the first half of the chare array wastes this many times extra compute")
		ckptEvery   = flag.Int("ckpt.every", 0, "checkpoint every N reduction barriers, 0 disables (net backend only)")
		ckptDir     = flag.String("ckpt.dir", "", "checkpoint directory, shared by every rank (net backend only)")
		killSpec    = flag.String("chaos.kill", "", `kill -9 a worker rank mid-run: "RANK@STEP" (net backend only; the world recovers and reruns)`)
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	plat, err := platform(*platName)
	if err != nil {
		fatal(err)
	}
	nx, ny, nz, err := parseDomain(*domain)
	if err != nil {
		fatal(err)
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be != charm.SimBackend {
		if *faultSpec != "" || *noise || *reliable || *watchdog != "off" {
			fatal(fmt.Errorf("-faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)"))
		}
		if *traceFile != "" {
			fatal(fmt.Errorf("-trace records the virtual timeline and is sim-only (drop it or use -backend=sim)"))
		}
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}
	kill, err := chaos.ParseKill(*killSpec)
	if err != nil {
		fatal(err)
	}
	if *lbEvery > 0 {
		s, err := lb.ParseStrategy(*lbStrategy)
		if err != nil {
			fatal(err)
		}
		if s == nil {
			fatal(fmt.Errorf("-lb.every needs a real -lb.strategy (got %q)", *lbStrategy))
		}
	}
	if (*ckptEvery > 0) != (*ckptDir != "") {
		fatal(fmt.Errorf("-ckpt.every and -ckpt.dir go together (got every=%d, dir=%q)", *ckptEvery, *ckptDir))
	}
	recovery := *ckptEvery > 0 || kill != nil
	if recovery {
		if be != charm.NetBackend {
			fatal(fmt.Errorf("-ckpt.* and -chaos.kill exercise rank-death recovery and need -backend=net"))
		}
		if *compare {
			fatal(fmt.Errorf("-compare reruns both modes on one mesh and cannot combine with recovery flags (pick one -mode)"))
		}
		// Keep every rank's listener open past bootstrap so Rejoin can
		// rebuild the mesh around a respawned rank.
		netCfg.Recover = true
	}
	var node *netrt.Node
	if be == charm.NetBackend {
		if node, err = netrt.Start(*netCfg); err != nil {
			fatal(err)
		}
	}
	// Worker ranks compute and validate their PE block; the report (and
	// the exit status of the whole world) belongs to rank 0.
	quiet := node != nil && node.IsWorker()
	cfg := stencil.Config{
		Platform: plat,
		PEs:      *pes, Virtualization: *vr,
		NX: nx, NY: ny, NZ: nz,
		Iters: *iters, Warmup: *warmup,
		Validate: *validate,
		Backend:  be,
		Net:      node,
		Chaos:    sc,
		Kill:     kill,
		LBEvery:  *lbEvery, LBStrategy: *lbStrategy,
		Skew: *skew,
	}
	if *ckptEvery > 0 {
		cfg.Ckpt = &charm.CkptOptions{Dir: *ckptDir, Every: *ckptEvery}
	}
	var tl *trace.Timeline
	if *traceFile != "" {
		tl = trace.NewTimeline(0)
		cfg.Timeline = tl
	}
	defer func() {
		if tl == nil {
			return
		}
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tl.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d spans to %s (open in chrome://tracing or Perfetto)\n",
			len(tl.Spans()), *traceFile)
	}()
	if *compare {
		msg, ckd, pct := stencil.Improvement(cfg)
		if !quiet {
			fmt.Printf("stencil %s on %d PEs of %s, chare grid %v (%d chares)\n",
				*domain, *pes, plat.Name, msg.ChareGrid, msg.Chares)
			fmt.Printf("  msg: %v per iteration\n", msg.IterTime)
			fmt.Printf("  ckd: %v per iteration\n", ckd.IterTime)
			fmt.Printf("  improvement: %.2f%%\n", pct)
		}
		printNetStats(node)
		reportErrors("stencil", closeNode(node, append(msg.Errors, ckd.Errors...)))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = stencil.Msg
	case "ckd":
		cfg.Mode = stencil.Ckd
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}
	var res stencil.Result
	if recovery {
		// Every rank's driver retries through the same recovery loop:
		// on a recoverable rank death the mesh rebuilds (respawning the
		// victim), and the re-run resumes from the newest committed
		// checkpoint — or from scratch when none was taken.
		res.Errors = charm.RunWithRecovery(node, charm.DefaultRecoveryAttempts, func() []error {
			res = stencil.Run(cfg)
			return res.Errors
		})
	} else {
		res = stencil.Run(cfg)
	}
	if !quiet {
		fmt.Printf("stencil %s, mode %v, %d PEs: %v per iteration (%d chares, grid %v)\n",
			*domain, cfg.Mode, *pes, res.IterTime, res.Chares, res.ChareGrid)
		if *validate {
			// Under net each rank validates and checksums only the block it
			// hosts, so rank 0's sum is a share of the global checksum, not
			// the whole of it; the residual crosses ranks via reductions and
			// matches the sim run exactly.
			label := "field checksum"
			if node != nil {
				label = fmt.Sprintf("rank %d field checksum share", node.Rank())
			}
			fmt.Printf("  residual %.6g, %s %.6f\n", res.Residual, label, res.FieldSum)
		}
		if *lbEvery > 0 {
			// The planner runs on PE 0, so these counters live on rank 0's
			// recorder; scripted runs (CI's lb-smoke job) grep this line to
			// prove the balancer actually moved something.
			fmt.Printf("  lb: %d rounds, %d migrations, %d straggler forwards\n",
				res.Counters[trace.CntLBRounds],
				res.Counters[trace.CntLBMigrations],
				res.Counters[trace.CntLBForwards])
		}
	}
	printNetStats(node)
	reportErrors("stencil", closeNode(node, res.Errors))
}

// printNetStats emits one machine-readable mesh-counter line per rank
// on stderr before teardown. Every rank prints (stderr is shared by
// self-spawned workers), so a script can sum conns_opened across the
// world — CI's scale-smoke job greps these lines to assert that a
// 16-rank stencil halo opens far fewer sockets than the N·(N−1) full
// mesh and that rank 0's termination probe fan-in respects the tree.
func printNetStats(node *netrt.Node) {
	if node == nil {
		return
	}
	s := node.Stats()
	fmt.Fprintf(os.Stderr,
		"stencil: net-stats rank=%d world=%d conns_opened=%d dialed=%d accepted=%d term_fanout=%d probe_rounds=%d probe_reports=%d dialreqs=%d\n",
		node.Rank(), node.World(), s.ConnsDialed+s.ConnsAccepted,
		s.ConnsDialed, s.ConnsAccepted, s.TermFanout,
		s.TermProbeRounds, s.TermProbeReports, s.DialReqs)
}

// closeNode tears the net-backend mesh down (reaping self-spawned
// workers) and folds any teardown failure — e.g. a worker whose local
// validation exited non-zero — into the run's error list.
func closeNode(node *netrt.Node, errs []error) []error {
	if node == nil {
		return errs
	}
	if err := node.Close(); err != nil {
		errs = append(errs, err)
	}
	return errs
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero, so scripted runs cannot mistake a
// broken simulation for a result.
func reportErrors(prog string, errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "%s: runtime violation: %v\n", prog, e)
	}
	os.Exit(1)
}

func platform(name string) (*netmodel.Platform, error) {
	switch name {
	case "abe", "ib":
		return netmodel.AbeIB, nil
	case "bgp":
		return netmodel.SurveyorBGP, nil
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}

func parseDomain(s string) (nx, ny, nz int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("domain %q not NXxNYxNZ", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		dims[i], err = strconv.Atoi(p)
		if err != nil || dims[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("bad dimension %q", p)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stencil:", err)
	os.Exit(2)
}
