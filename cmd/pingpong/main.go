// Command pingpong runs the §3 microbenchmark for one stack at one or
// more message sizes.
//
//	pingpong -platform abe -mode ckdirect -sizes 100,1000,100000 -iters 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps/pingpong"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		modeName    = flag.String("mode", "ckdirect", "charm-msg | ckdirect | mpi | mpi-put | mpi-alt")
		sizesArg    = flag.String("sizes", "100,1000,5000,10000,20000,30000,40000,70000,100000,500000", "comma-separated payload sizes in bytes")
		iters       = flag.Int("iters", 1000, "round trips to average over")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		killSpec    = flag.String("chaos.kill", "", `kill -9 a worker rank mid-run: "RANK@STEP" (net backend only; the benchmark recovers and restarts)`)
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	plat, err := platform(*platName)
	if err != nil {
		fatal(err)
	}
	mode, err := mode(*modeName)
	if err != nil {
		fatal(err)
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if be != charm.SimBackend {
		if *faultSpec != "" || *noise || *reliable || *watchdog != "off" {
			fatal(fmt.Errorf("-faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)"))
		}
		if mode != pingpong.CharmMsg && mode != pingpong.CkDirect {
			fatal(fmt.Errorf("mode %v models a foreign MPI stack and is sim-only (use charm-msg or ckdirect with -backend=%v)", mode, be))
		}
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fatal(err)
	}
	kill, err := chaos.ParseKill(*killSpec)
	if err != nil {
		fatal(err)
	}
	if kill != nil {
		if be != charm.NetBackend {
			fatal(fmt.Errorf("-chaos.kill exercises rank-death recovery and needs -backend=net"))
		}
		if strings.Contains(*sizesArg, ",") {
			fatal(fmt.Errorf("-chaos.kill fires once per process; run it with a single -sizes value"))
		}
		netCfg.Recover = true
	}
	var node *netrt.Node
	if be == charm.NetBackend {
		if node, err = netrt.Start(*netCfg); err != nil {
			fatal(err)
		}
	}
	// Worker ranks relay traffic and validate their side; the report
	// (and the exit status of the whole world) belongs to rank 0.
	quiet := node != nil && node.IsWorker()
	if !quiet {
		fmt.Printf("pingpong on %s, mode %v, %d iterations\n", plat.Name, mode, *iters)
		fmt.Printf("%12s %14s\n", "size (B)", "RTT (us)")
	}
	broken := false
	for _, field := range strings.Split(*sizesArg, ",") {
		size, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			fatal(fmt.Errorf("bad size %q: %v", field, err))
		}
		cfg := pingpong.Config{
			Platform: plat,
			Mode:     mode,
			Size:     size,
			Iters:    *iters,
			Virtual:  size > 65536,
			Backend:  be,
			Net:      node,
			Chaos:    sc,
			Kill:     kill,
		}
		var res pingpong.Result
		if kill != nil {
			// Pingpong takes no checkpoints: after the mesh rebuilds
			// around the respawned rank, the benchmark restarts from
			// iteration zero.
			res.Errors = charm.RunWithRecovery(node, charm.DefaultRecoveryAttempts, func() []error {
				res = pingpong.Run(cfg)
				return res.Errors
			})
		} else {
			res = pingpong.Run(cfg)
		}
		if !quiet {
			fmt.Printf("%12d %14.3f\n", size, res.RTTMicros())
		}
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "pingpong: size %d: runtime violation: %v\n", size, e)
			broken = true
		}
	}
	if node != nil {
		// Close reaps self-spawned workers; a worker that exited non-zero
		// (its local validation failed) must fail the launcher too.
		if err := node.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			broken = true
		}
	}
	if broken {
		os.Exit(1)
	}
}

func platform(name string) (*netmodel.Platform, error) {
	switch name {
	case "abe", "infiniband", "ib":
		return netmodel.AbeIB, nil
	case "bgp", "bluegene", "surveyor":
		return netmodel.SurveyorBGP, nil
	}
	return nil, fmt.Errorf("unknown platform %q (want abe|bgp)", name)
}

func mode(name string) (pingpong.Mode, error) {
	switch name {
	case "charm-msg", "msg":
		return pingpong.CharmMsg, nil
	case "ckdirect", "ckd":
		return pingpong.CkDirect, nil
	case "mpi":
		return pingpong.MPI, nil
	case "mpi-put":
		return pingpong.MPIPut, nil
	case "mpi-alt", "mpich-vmi":
		return pingpong.MPIAlt, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pingpong:", err)
	os.Exit(2)
}
