// Command matmul runs the §4.2 study: 3-D-decomposed parallel matrix
// multiplication with messages or CkDirect.
//
//	matmul -platform bgp -pes 4096 -n 2048 -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/matmul"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 64, "processing elements")
		n           = flag.Int("n", 2048, "matrix edge")
		iters       = flag.Int("iters", 2, "measured multiplies")
		warmup      = flag.Int("warmup", 1, "warmup multiplies")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		compare     = flag.Bool("compare", false, "run both modes and report the improvement")
		validate    = flag.Bool("validate", false, "move real matrices and verify the product (small n)")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory) | net (multiple OS processes over TCP)")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
		ckptEvery   = flag.Int("ckpt.every", 0, "checkpoint every N reduction barriers, 0 disables (net backend only)")
		ckptDir     = flag.String("ckpt.dir", "", "checkpoint directory, shared by every rank (net backend only)")
		killSpec    = flag.String("chaos.kill", "", `kill -9 a worker rank mid-run: "RANK@STEP" (net backend only; the world recovers and reruns)`)
	)
	netCfg := netrt.RegisterFlags()
	flag.Parse()

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fmt.Fprintf(os.Stderr, "matmul: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	if be != charm.SimBackend && (*faultSpec != "" || *noise || *reliable || *watchdog != "off") {
		fmt.Fprintln(os.Stderr, "matmul: -faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)")
		os.Exit(2)
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	kill, err := chaos.ParseKill(*killSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	if (*ckptEvery > 0) != (*ckptDir != "") {
		fmt.Fprintf(os.Stderr, "matmul: -ckpt.every and -ckpt.dir go together (got every=%d, dir=%q)\n", *ckptEvery, *ckptDir)
		os.Exit(2)
	}
	recovery := *ckptEvery > 0 || kill != nil
	if recovery {
		if be != charm.NetBackend {
			fmt.Fprintln(os.Stderr, "matmul: -ckpt.* and -chaos.kill exercise rank-death recovery and need -backend=net")
			os.Exit(2)
		}
		if *compare {
			fmt.Fprintln(os.Stderr, "matmul: -compare reruns both modes on one mesh and cannot combine with recovery flags (pick one -mode)")
			os.Exit(2)
		}
		netCfg.Recover = true
	}
	var node *netrt.Node
	if be == charm.NetBackend {
		if node, err = netrt.Start(*netCfg); err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(2)
		}
	}
	// Worker ranks compute and validate their hosted strips; the report
	// (and the exit status of the whole world) belongs to rank 0.
	quiet := node != nil && node.IsWorker()
	cfg := matmul.Config{
		Platform: plat,
		PEs:      *pes,
		N:        *n,
		Iters:    *iters, Warmup: *warmup,
		Validate: *validate,
		Backend:  be,
		Net:      node,
		Chaos:    sc,
		Kill:     kill,
	}
	if *ckptEvery > 0 {
		cfg.Ckpt = &charm.CkptOptions{Dir: *ckptDir, Every: *ckptEvery}
	}
	if *compare {
		msg, ckd, pct := matmul.Improvement(cfg)
		if !quiet {
			fmt.Printf("matmul %dx%d on %d PEs of %s (chare grid %dx%dx%d)\n",
				*n, *n, *pes, plat.Name, msg.Grid[0], msg.Grid[1], msg.Grid[2])
			fmt.Printf("  msg: %v per multiply\n", msg.IterTime)
			fmt.Printf("  ckd: %v per multiply\n", ckd.IterTime)
			fmt.Printf("  improvement: %.2f%%\n", pct)
			if *validate {
				fmt.Printf("  max error: msg %.2e, ckd %.2e\n", msg.MaxError, ckd.MaxError)
			}
		}
		reportErrors(closeNode(node, append(msg.Errors, ckd.Errors...)))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = matmul.Msg
	case "ckd":
		cfg.Mode = matmul.Ckd
	default:
		fmt.Fprintf(os.Stderr, "matmul: unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	var res matmul.Result
	if recovery {
		// Every rank's driver retries through the same recovery loop:
		// on a recoverable rank death the mesh rebuilds (respawning the
		// victim), and the re-run resumes from the newest committed
		// checkpoint — or from scratch when none was taken.
		res.Errors = charm.RunWithRecovery(node, charm.DefaultRecoveryAttempts, func() []error {
			res = matmul.Run(cfg)
			return res.Errors
		})
	} else {
		res = matmul.Run(cfg)
	}
	if !quiet {
		fmt.Printf("matmul %dx%d, mode %v, %d PEs: %v per multiply\n", *n, *n, cfg.Mode, *pes, res.IterTime)
		if *validate {
			fmt.Printf("  max error %.2e\n", res.MaxError)
		}
	}
	reportErrors(closeNode(node, res.Errors))
}

// closeNode tears the net-backend mesh down (reaping self-spawned
// workers) and folds any teardown failure — e.g. a worker whose local
// validation exited non-zero — into the run's error list.
func closeNode(node *netrt.Node, errs []error) []error {
	if node == nil {
		return errs
	}
	if err := node.Close(); err != nil {
		errs = append(errs, err)
	}
	return errs
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero.
func reportErrors(errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "matmul: runtime violation: %v\n", e)
	}
	os.Exit(1)
}
