// Command matmul runs the §4.2 study: 3-D-decomposed parallel matrix
// multiplication with messages or CkDirect.
//
//	matmul -platform bgp -pes 4096 -n 2048 -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/matmul"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
)

func main() {
	var (
		platName    = flag.String("platform", "abe", "abe | bgp")
		pes         = flag.Int("pes", 64, "processing elements")
		n           = flag.Int("n", 2048, "matrix edge")
		iters       = flag.Int("iters", 2, "measured multiplies")
		warmup      = flag.Int("warmup", 1, "warmup multiplies")
		modeName    = flag.String("mode", "ckd", "msg | ckd")
		compare     = flag.Bool("compare", false, "run both modes and report the improvement")
		validate    = flag.Bool("validate", false, "move real matrices and verify the product (small n)")
		backendName = flag.String("backend", "sim", "sim (modelled network) | real (goroutines + shared memory); net hosts the pingpong/stencil workloads")
		faultSpec   = flag.String("faults", "", `fault-plan spec, e.g. "drop:rate=0.01" (see internal/faults)`)
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for noise and fault randomness")
		noise       = flag.Bool("noise", false, "inject CPU-noise bursts")
		reliable    = flag.Bool("reliable", false, "enable ack/retransmit message reliability")
		watchdog    = flag.String("watchdog", "off", "CkDirect stall watchdog: off | report | recover")
	)
	flag.Parse()

	var plat *netmodel.Platform
	switch *platName {
	case "abe", "ib":
		plat = netmodel.AbeIB
	case "bgp":
		plat = netmodel.SurveyorBGP
	default:
		fmt.Fprintf(os.Stderr, "matmul: unknown platform %q\n", *platName)
		os.Exit(2)
	}
	be, err := charm.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	if be == charm.NetBackend {
		fmt.Fprintln(os.Stderr, "matmul: the distributed net backend hosts the pingpong and stencil workloads; run this study with -backend=sim or -backend=real (see DESIGN.md §8)")
		os.Exit(2)
	}
	if be == charm.RealBackend && (*faultSpec != "" || *noise || *reliable || *watchdog != "off") {
		fmt.Fprintln(os.Stderr, "matmul: -faults/-noise/-reliable/-watchdog model simulated failures and are sim-only (drop them or use -backend=sim)")
		os.Exit(2)
	}
	sc, err := chaos.Options{
		Seed: *faultSeed, Noise: *noise, Faults: *faultSpec,
		Reliable: *reliable, Watchdog: *watchdog,
	}.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	cfg := matmul.Config{
		Platform: plat,
		PEs:      *pes,
		N:        *n,
		Iters:    *iters, Warmup: *warmup,
		Validate: *validate,
		Backend:  be,
		Chaos:    sc,
	}
	if *compare {
		msg, ckd, pct := matmul.Improvement(cfg)
		fmt.Printf("matmul %dx%d on %d PEs of %s (chare grid %dx%dx%d)\n",
			*n, *n, *pes, plat.Name, msg.Grid[0], msg.Grid[1], msg.Grid[2])
		fmt.Printf("  msg: %v per multiply\n", msg.IterTime)
		fmt.Printf("  ckd: %v per multiply\n", ckd.IterTime)
		fmt.Printf("  improvement: %.2f%%\n", pct)
		if *validate {
			fmt.Printf("  max error: msg %.2e, ckd %.2e\n", msg.MaxError, ckd.MaxError)
		}
		reportErrors(append(msg.Errors, ckd.Errors...))
		return
	}
	switch *modeName {
	case "msg":
		cfg.Mode = matmul.Msg
	case "ckd":
		cfg.Mode = matmul.Ckd
	default:
		fmt.Fprintf(os.Stderr, "matmul: unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	res := matmul.Run(cfg)
	fmt.Printf("matmul %dx%d, mode %v, %d PEs: %v per multiply\n", *n, *n, cfg.Mode, *pes, res.IterTime)
	if *validate {
		fmt.Printf("  max error %.2e\n", res.MaxError)
	}
	reportErrors(res.Errors)
}

// reportErrors surfaces runtime contract violations and unrecovered
// faults on stderr and exits non-zero.
func reportErrors(errs []error) {
	if len(errs) == 0 {
		return
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "matmul: runtime violation: %v\n", e)
	}
	os.Exit(1)
}
