package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCountersAccumulate(t *testing.T) {
	r := NewRecorder()
	r.Incr("msgs", 1)
	r.Incr("msgs", 2)
	r.Incr("puts", 5)
	if r.Count("msgs") != 3 {
		t.Fatalf("msgs = %d, want 3", r.Count("msgs"))
	}
	if r.Count("puts") != 5 {
		t.Fatalf("puts = %d, want 5", r.Count("puts"))
	}
	if r.Count("absent") != 0 {
		t.Fatal("absent counter should read 0")
	}
}

func TestTimesAccumulate(t *testing.T) {
	r := NewRecorder()
	r.AddTime("sched", 2*sim.Microsecond)
	r.AddTime("sched", 3*sim.Microsecond)
	if r.Time("sched") != 5*sim.Microsecond {
		t.Fatalf("sched = %v, want 5us", r.Time("sched"))
	}
}

func TestDisabledRecorderDropsUpdates(t *testing.T) {
	r := NewRecorder()
	r.SetEnabled(false)
	r.Incr("x", 1)
	r.AddTime("y", 1)
	r.Observe("z", 1)
	if r.Count("x") != 0 || r.Time("y") != 0 || len(r.Series("z")) != 0 {
		t.Fatal("disabled recorder accumulated state")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Incr("x", 1)
	r.AddTime("y", 1)
	r.Observe("z", 1)
	if r.Count("x") != 0 || r.Time("y") != 0 || r.Series("z") != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Incr("a", 1)
	r.AddTime("b", 1)
	r.Observe("c", 1)
	r.Reset()
	if r.Count("a") != 0 || r.Time("b") != 0 || len(r.Series("c")) != 0 {
		t.Fatal("Reset did not clear state")
	}
	r.Incr("a", 2)
	if r.Count("a") != 2 {
		t.Fatal("recorder unusable after Reset")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := NewRecorder()
	s := r.Summarize("nothing")
	if s.N != 0 {
		t.Fatalf("N = %d, want 0", s.N)
	}
}

func TestSummarizeKnownSeries(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Observe("lat", float64(i))
	}
	s := r.Summarize("lat")
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 50.5", s.Mean)
	}
	if s.P50 != 50 {
		t.Fatalf("P50 = %v, want 50", s.P50)
	}
	if s.P99 != 99 {
		t.Fatalf("P99 = %v, want 99", s.P99)
	}
}

// TestSummarizePropertyBounds: for any series, Min <= P50 <= P90 <= P99 <=
// Max and Min <= Mean <= Max.
func TestSummarizePropertyBounds(t *testing.T) {
	prop := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Exclude NaN/Inf and magnitudes large enough for the sum to
			// overflow — those are not realistic latency samples.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range clean {
			r.Observe("s", v)
		}
		s := r.Summarize("s")
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDoesNotMutateSeries(t *testing.T) {
	r := NewRecorder()
	r.Observe("s", 3)
	r.Observe("s", 1)
	r.Observe("s", 2)
	r.Summarize("s")
	got := r.Series("s")
	if got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("series mutated: %v", got)
	}
}

func TestStringOutputSortedAndComplete(t *testing.T) {
	r := NewRecorder()
	r.Incr("zeta", 1)
	r.Incr("alpha", 2)
	r.AddTime("beta", sim.Microsecond)
	out := r.String()
	ia := strings.Index(out, "alpha")
	iz := strings.Index(out, "zeta")
	ib := strings.Index(out, "beta")
	if ia < 0 || iz < 0 || ib < 0 {
		t.Fatalf("missing entries in output:\n%s", out)
	}
	if ia > iz {
		t.Fatal("counters not sorted")
	}
}
