// Package trace provides lightweight counters, accumulators and phase
// timers for instrumenting simulations. The benchmark harness uses it to
// decompose iteration times into the cost components the paper discusses
// (header bytes, scheduling, rendezvous, polling), and tests use it to
// assert that specific code paths were exercised.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Canonical counter names shared between the fault-injection plane, the
// reliability layers and the tests that assert on them. Using constants
// keeps producers and consumers from drifting apart on spelling.
const (
	// Fault-injection plane (internal/faults).
	CntDropped    = "net.dropped"
	CntCorrupted  = "net.corrupted"
	CntDelayed    = "net.delayed"
	CntDuplicated = "net.duplicated"

	// Charm reliable-delivery protocol (internal/charm).
	CntRetransmits = "net.retransmits"
	CntAcks        = "net.acks"
	CntDupDiscards = "net.dup_discards"
	CntFailedMsgs  = "net.failed_msgs"

	// CkDirect stall watchdog (internal/ckdirect).
	CntCkdStalls   = "ckd.stalls"
	CntCkdLostPuts = "ckd.lost_puts"
	CntCkdReissues = "ckd.reissues"
	CntCkdDupPuts  = "ckd.dup_puts"

	// Memory discipline of the live backends (internal/charm records
	// these around real/net runs; never under sim, whose counter sets
	// must stay deterministic). Deltas over the run: heap allocations,
	// allocated bytes, GC pause time and cycles, plus the wire buffer
	// pool's activity (bufpool.Stats).
	CntMemAllocs    = "mem.allocs"
	CntMemBytes     = "mem.alloc_bytes"
	CntMemGCPauseNS = "mem.gc_pause_ns"
	CntMemGCs       = "mem.gcs"
	CntPoolGets     = "pool.gets"
	CntPoolPuts     = "pool.puts"
	CntPoolMisses   = "pool.misses"
	CntPoolOversize = "pool.oversize"

	// Load balancer (internal/lb). Migrations counts elements actually
	// moved, bytes the pupped state shipped, rounds the LB barriers run.
	// The spread counters record per-mille max/mean load imbalance as
	// observed at the decision point, before and after applying the plan
	// (predicted), so a bench or /metrics scrape can see what the
	// balancer thought it improved.
	CntLBRounds       = "lb.rounds"
	CntLBMigrations   = "lb.migrations"
	CntLBBytesMoved   = "lb.bytes_moved"
	CntLBForwards     = "lb.forwards"
	CntLBSpreadBefore = "lb.spread_before_permille"
	CntLBSpreadAfter  = "lb.spread_after_permille"
	CntLBRehomedRecv  = "lb.rehomed_recv_handles"
	CntLBRehomedSend  = "lb.rehomed_send_handles"

	// Mesh scaling (internal/netrt, recorded by the charm net backend at
	// the end of each run as the node's cumulative totals — they span
	// bootstrap as well as the run itself). ConnsOpened counts every TCP
	// socket this rank opened (dialed + accepted): under lazy dialing a
	// stencil's 4-neighbor halo stays O(N) per world, not the O(N²) of a
	// full mesh. DialReqs counts lower-rank dial requests relayed via
	// the coordinator. The term counters expose the k-ary termination
	// tree: probe rounds started by the root, and FReport frames
	// arriving at rank 0 (the root's fan-in — bounded by -net.termfanout
	// regardless of world size). The batching counters record the
	// per-peer adaptive writev window and eager-threshold adjustments,
	// and shm_coalesced the frames (FPut doorbells above all) staged
	// behind an in-flight shm ring write and flushed in one combined
	// pass.
	CntNetConnsOpened   = "net.conns_opened"
	CntNetConnsDialed   = "net.conns_dialed"
	CntNetConnsAccepted = "net.conns_accepted"
	CntNetDialReqs      = "net.dial_reqs"
	CntNetProbeRounds   = "net.term_probe_rounds"
	CntNetProbeReports  = "net.term_probe_reports"
	CntNetShmCoalesced  = "net.shm_coalesced"
	CntNetBatchGrows    = "net.batch_grows"
	CntNetBatchShrinks  = "net.batch_shrinks"
	CntNetEagerShrinks  = "net.eager_shrinks"
)

// Recorder accumulates named statistics. The zero value is not usable;
// call NewRecorder. A mutex makes it safe for concurrent use: under the
// real-execution backend every PE goroutine records into the same
// instance (the uncontended-lock cost is negligible next to what the
// counters instrument, and the simulator path is single-threaded anyway).
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	times    map[string]sim.Time
	series   map[string][]float64
	enabled  bool
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		counters: make(map[string]int64),
		times:    make(map[string]sim.Time),
		series:   make(map[string][]float64),
		enabled:  true,
	}
}

// SetEnabled toggles recording. A disabled recorder drops all updates,
// letting hot paths keep unconditional instrumentation calls.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Incr adds delta to the named counter.
func (r *Recorder) Incr(name string, delta int64) {
	if r == nil || !r.enabled {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Count returns the value of a counter (zero if never incremented).
func (r *Recorder) Count(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// AddTime accumulates virtual time into the named bucket. The benchmark
// harness divides these buckets by message counts to report per-operation
// cost components.
func (r *Recorder) AddTime(name string, d sim.Time) {
	if r == nil || !r.enabled {
		return
	}
	r.mu.Lock()
	r.times[name] += d
	r.mu.Unlock()
}

// Time returns the accumulated virtual time of a bucket.
func (r *Recorder) Time(name string) sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.times[name]
}

// Observe appends a sample to the named series.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil || !r.enabled {
		return
	}
	r.mu.Lock()
	r.series[name] = append(r.series[name], v)
	r.mu.Unlock()
}

// Series returns the raw samples of a series (nil if absent).
func (r *Recorder) Series(name string) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[name]
}

// Counters returns a snapshot copy of all counters. Determinism tests
// compare two runs' snapshots wholesale.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for n, v := range r.counters {
		out[n] = v
	}
	return out
}

// Reset clears all accumulated state but preserves the enabled flag.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]int64)
	r.times = make(map[string]sim.Time)
	r.series = make(map[string][]float64)
}

// Summary holds order statistics of a series.
type Summary struct {
	N              int
	Min, Max, Mean float64
	P50, P90, P99  float64
}

// Summarize computes order statistics for the named series. It returns a
// zero Summary when the series is empty.
func (r *Recorder) Summarize(name string) Summary {
	s := r.Series(name)
	if len(s) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(s))
	copy(sorted, s)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
	}
}

// String renders all counters and time buckets sorted by name, one per
// line — convenient for golden-ish debugging output.
func (r *Recorder) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "count %-32s %d\n", n, r.counters[n])
	}
	names = names[:0]
	for n := range r.times {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "time  %-32s %v\n", n, r.times[n])
	}
	return b.String()
}
