package trace

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/sim"
)

// Timeline records per-PE execution spans during a simulation — the
// moral equivalent of Charm++'s Projections logs. The runtime emits one
// span per scheduler dispatch (covering the dispatch overhead plus the
// handler's charged compute) and instant markers for notable events
// (sends, CkDirect detections). Spans export to the Chrome trace-event
// JSON format, viewable in chrome://tracing or Perfetto.
type Timeline struct {
	spans   []Span
	markers []Marker
	limit   int
}

// Span is one closed interval of PE activity.
type Span struct {
	PE    int
	Kind  string // "entry", "detect", ...
	Name  string
	Start sim.Time
	End   sim.Time
}

// Marker is an instant event.
type Marker struct {
	PE   int
	Name string
	At   sim.Time
}

// NewTimeline creates a recorder holding at most limit spans (0 means a
// generous default); recording stops silently at the cap so long runs
// cannot exhaust memory.
func NewTimeline(limit int) *Timeline {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Timeline{limit: limit}
}

// AddSpan records an activity interval.
func (tl *Timeline) AddSpan(pe int, kind, name string, start, end sim.Time) {
	if tl == nil || len(tl.spans) >= tl.limit {
		return
	}
	tl.spans = append(tl.spans, Span{PE: pe, Kind: kind, Name: name, Start: start, End: end})
}

// AddMarker records an instant event.
func (tl *Timeline) AddMarker(pe int, name string, at sim.Time) {
	if tl == nil || len(tl.markers) >= tl.limit {
		return
	}
	tl.markers = append(tl.markers, Marker{PE: pe, Name: name, At: at})
}

// Spans returns the recorded spans (not a copy).
func (tl *Timeline) Spans() []Span { return tl.spans }

// Markers returns the recorded markers (not a copy).
func (tl *Timeline) Markers() []Marker { return tl.markers }

// Utilization reports the fraction of [0, upto] that PE pe spent inside
// recorded spans (overlapping spans are merged).
func (tl *Timeline) Utilization(pe int, upto sim.Time) float64 {
	if upto <= 0 {
		return 0
	}
	var ivs []Span
	for _, s := range tl.spans {
		if s.PE == pe && s.Start < upto {
			end := s.End
			if end > upto {
				end = upto
			}
			ivs = append(ivs, Span{Start: s.Start, End: end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var busy, cursor sim.Time
	for _, s := range ivs {
		if s.Start > cursor {
			cursor = s.Start
		}
		if s.End > cursor {
			busy += s.End - cursor
			cursor = s.End
		}
	}
	return float64(busy) / float64(upto)
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace emits the timeline in Chrome trace-event JSON
// (chrome://tracing, Perfetto, speedscope all read it). PEs map to
// threads of a single process.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(tl.spans)+len(tl.markers))
	for _, s := range tl.spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.Start.Micros(),
			Dur:  (s.End - s.Start).Micros(),
			PID:  0,
			TID:  s.PE,
			Args: map[string]interface{}{"kind": s.Kind},
		})
	}
	for _, m := range tl.markers {
		events = append(events, chromeEvent{
			Name: m.Name,
			Ph:   "i",
			TS:   m.At.Micros(),
			PID:  0,
			TID:  m.PE,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": events})
}
