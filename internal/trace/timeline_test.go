package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTimelineSpansAndMarkers(t *testing.T) {
	tl := NewTimeline(0)
	tl.AddSpan(0, "entry", "work", 10, 20)
	tl.AddSpan(1, "detect", "poll", 5, 6)
	tl.AddMarker(0, "send", 12)
	if len(tl.Spans()) != 2 || len(tl.Markers()) != 1 {
		t.Fatalf("spans %d markers %d", len(tl.Spans()), len(tl.Markers()))
	}
}

func TestTimelineCap(t *testing.T) {
	tl := NewTimeline(3)
	for i := 0; i < 10; i++ {
		tl.AddSpan(0, "e", "w", sim.Time(i), sim.Time(i+1))
		tl.AddMarker(0, "m", sim.Time(i))
	}
	if len(tl.Spans()) != 3 || len(tl.Markers()) != 3 {
		t.Fatalf("cap not enforced: %d/%d", len(tl.Spans()), len(tl.Markers()))
	}
}

func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	tl.AddSpan(0, "e", "w", 0, 1)
	tl.AddMarker(0, "m", 0)
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	tl := NewTimeline(0)
	tl.AddSpan(0, "e", "a", 0, 50)
	tl.AddSpan(0, "e", "b", 25, 75) // overlaps a
	tl.AddSpan(0, "e", "c", 90, 100)
	tl.AddSpan(1, "e", "other-pe", 0, 100)
	got := tl.Utilization(0, 100)
	want := 0.85 // [0,75] + [90,100]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("utilization = %v, want %v", got, want)
	}
	if u := tl.Utilization(2, 100); u != 0 {
		t.Fatalf("idle PE utilization = %v", u)
	}
}

func TestUtilizationClampsToWindow(t *testing.T) {
	tl := NewTimeline(0)
	tl.AddSpan(0, "e", "a", 50, 500)
	if got := tl.Utilization(0, 100); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("clamped utilization = %v, want 0.5", got)
	}
}

func TestChromeTraceOutput(t *testing.T) {
	tl := NewTimeline(0)
	tl.AddSpan(3, "entry", "jacobi", 1000, 3500)
	tl.AddMarker(3, "put", 1500)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span.Name != "jacobi" || span.Ph != "X" || span.TS != 1.0 || span.Dur != 2.5 || span.TID != 3 {
		t.Fatalf("span event %+v", span)
	}
	if !strings.Contains(buf.String(), `"ph":"i"`) {
		t.Fatal("marker event missing")
	}
}
