package lb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/charm"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Balancer drives measurement-based load balancing for one run. It
// meters every element dispatch (it is the runtime's LoadMeter), and
// periodically — at a reduction barrier the application already runs —
// executes one balancing round:
//
//  1. The root reduction client, at a step where Due(step) is true,
//     calls Begin and broadcasts the balancing entry method instead of
//     the next iterate (the same pattern the checkpointer uses, so the
//     cut inherits its quiescence argument: every put of the step is
//     consumed, every channel re-armed, and no new app traffic can
//     start until the root resumes).
//  2. Every element's handler calls ElementBarrier. The last local
//     element to arrive gathers this rank's per-element loads from the
//     meter shards and ships them to the root (PE 0).
//  3. With all ranks' reports in, the root asks the Strategy for a
//     plan, broadcasts it (FLoc), and applies it like everyone else:
//     SPMD location bookkeeping for every move (charm.MoveElement),
//     packed element state shipped old host → new host (FMove), and
//     the application's OnMigrate hook rehoming the element's CkDirect
//     channels. A plan may arrive interleaved with the state it moves
//     (FMove and FLoc ride different connections), so early state
//     parks in a stash until the plan lands.
//  4. When a rank's moves are all applied — inbound state unpacked,
//     channel rehomes complete — it resets its meters and contributes
//     one extra reduction round for every element it now hosts. That
//     round completing at the root proves global completion; the root
//     calls Finish and resumes the application.
//
// Requirements: every rank must host at least one element of an
// attached array (true under the block maps this repository uses), and
// migrated chare objects must implement charm.Pupable.
type Balancer struct {
	rts  *charm.RTS
	nrt  *netrt.Runtime
	opts Options

	rank, world int

	arrays []*charm.Array
	byOrd  map[int]*charm.Array
	barEPs []charm.EP
	repEP  charm.EP

	shards []meterShard

	mu      sync.Mutex
	arrived int
	// Root-side round state.
	pending    bool
	reports    int
	loads      []ElementLoad
	rounds     int64
	migrations int64
	// Apply state (every rank).
	applied     bool
	outstanding int
	expect      map[[5]int]bool
	stash       map[[5]int][]byte
}

// Options configures a Balancer.
type Options struct {
	// Every runs a balancing round after every Every-th reduction
	// barrier (0 disables Due entirely).
	Every int
	// Strategy plans the migrations. Required.
	Strategy Strategy
	// Contrib is the value every element contributes to the balancing
	// round's extra reduction. Its width must be one the application's
	// reduction client tolerates (the client sees these values with
	// InBalance() true).
	Contrib []float64
	// OnMigrate, when set, is called on every rank for every applied
	// move, after the location bookkeeping: the application rehomes the
	// element's CkDirect channels (ckdirect.RehomeRecv/RehomeSend) and
	// any placement bookkeeping of its own, then calls done exactly
	// once (possibly asynchronously — rehomes chain through scheduler
	// tasks on live backends).
	OnMigrate func(array int, idx charm.Index, from, to int, done func())
}

type meterShard struct {
	mu sync.Mutex
	m  map[[5]int]*elemMeter
}

type elemMeter struct {
	busyNS int64
	msgs   int64
	bytes  int64
}

// New builds a Balancer and installs it as the runtime's load meter.
// Call during SPMD setup (it registers a PE handler; registration order
// must match across ranks), then Attach the arrays it balances.
func New(rts *charm.RTS, opts Options) (*Balancer, error) {
	if opts.Strategy == nil {
		return nil, fmt.Errorf("lb: nil strategy")
	}
	if len(opts.Contrib) == 0 {
		return nil, fmt.Errorf("lb: empty barrier contribution")
	}
	b := &Balancer{
		rts:    rts,
		nrt:    rts.NetRT(),
		opts:   opts,
		world:  1,
		byOrd:  make(map[int]*charm.Array),
		shards: make([]meterShard, rts.Machine().NumPEs()),
		expect: make(map[[5]int]bool),
		stash:  make(map[[5]int][]byte),
	}
	if b.nrt != nil {
		b.rank, b.world = b.nrt.Rank(), b.nrt.World()
	}
	b.repEP = rts.RegisterPEHandler(func(ctx *charm.Ctx, msg *charm.Message) {
		b.onReport(msg.Data)
	})
	if b.nrt != nil {
		ctl := b.nrt.Lo()
		b.nrt.SetLocSink(func(payload []byte) {
			data := append([]byte(nil), payload...)
			b.rts.EnqueueOn(ctl, func() { b.onPlanWire(data) })
		})
		b.nrt.SetMoveSink(func(array int64, payload []byte) {
			data := append([]byte(nil), payload...)
			b.rts.EnqueueOn(ctl, func() { b.onMove(int(array), data) })
		})
	}
	rts.SetLoadMeter(b)
	return b, nil
}

// Attach registers an array for balancing: its elements join the
// balancing barrier and may be migrated. Call once per array during
// setup, in SPMD-identical order.
func (b *Balancer) Attach(a *charm.Array) {
	ep := a.EntryMethod("lb.barrier", func(ctx *charm.Ctx, msg *charm.Message) {
		b.ElementBarrier(ctx)
	})
	b.arrays = append(b.arrays, a)
	b.barEPs = append(b.barEPs, ep)
	b.byOrd[a.Ord()] = a
}

// ElementRan implements charm.LoadMeter: it accrues one dispatch's cost
// against the element. Runs on the dispatching PE's goroutine; shards
// by PE so the common case locks an uncontended mutex.
func (b *Balancer) ElementRan(array int, idx charm.Index, pe int, busy sim.Time, msgBytes int) {
	s := &b.shards[pe]
	k := loadKey(array, idx)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[[5]int]*elemMeter)
	}
	e := s.m[k]
	if e == nil {
		e = &elemMeter{}
		s.m[k] = e
	}
	e.busyNS += int64(busy)
	e.msgs++
	e.bytes += int64(msgBytes)
	s.mu.Unlock()
}

// Account accrues busy time against an element from outside the
// dispatch path — CkDirect arrival callbacks are plain functions the
// meter never sees, so compute they trigger is charged explicitly.
func (b *Balancer) Account(array int, idx charm.Index, pe int, busy sim.Time) {
	b.ElementRan(array, idx, pe, busy, 0)
	// One spurious dispatch count per Account call is harmless — the
	// strategies read BusyNS — but keep msgs honest anyway.
	s := &b.shards[pe]
	s.mu.Lock()
	s.m[loadKey(array, idx)].msgs--
	s.mu.Unlock()
}

// Due reports whether a balancing round should run after completed
// barrier step (1-based).
func (b *Balancer) Due(step int) bool {
	return b.opts.Every > 0 && step > 0 && step%b.opts.Every == 0
}

// Begin starts a balancing round from the root reduction client: it
// marks the round pending and broadcasts the balancing entry method to
// every attached array. The caller must not broadcast its own iterate
// this step — the Balancer resumes it via Finish.
func (b *Balancer) Begin(ctx *charm.Ctx) {
	b.mu.Lock()
	b.pending = true
	b.reports = 0
	b.loads = b.loads[:0]
	b.rounds++
	b.mu.Unlock()
	if rec := b.rts.Recorder(); rec != nil {
		rec.Incr(trace.CntLBRounds, 1)
	}
	for i, a := range b.arrays {
		a.Broadcast(ctx.PE(), b.barEPs[i], &charm.Message{Size: 32})
	}
}

// InBalance reports whether the reduction that just completed at the
// root closed a balancing round (the root client checks it before
// interpreting the values).
func (b *Balancer) InBalance() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Finish closes the round at the root; the client resumes the
// application after it returns.
func (b *Balancer) Finish() {
	b.mu.Lock()
	b.pending = false
	b.mu.Unlock()
}

// Migrations returns how many element moves this process has planned
// (root) — the cumulative count across rounds.
func (b *Balancer) Migrations() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.migrations
}

// need counts the local elements a balancing barrier waits for,
// computed live (migration changes it between rounds).
func (b *Balancer) need() int {
	n := 0
	for _, a := range b.arrays {
		a.EachHosted(func(charm.Index, int) { n++ })
	}
	return n
}

// ElementBarrier records one element reaching the balancing cut. The
// last local element gathers this rank's load report and ships it to
// the root. (Elements do NOT contribute here — the round's reduction
// happens after the plan applies, from the post-migration placement.)
func (b *Balancer) ElementBarrier(ctx *charm.Ctx) {
	b.mu.Lock()
	b.arrived++
	last := b.arrived == b.need()
	if last {
		b.arrived = 0
	}
	b.mu.Unlock()
	if !last {
		return
	}
	data := b.encodeLoads(b.gatherLoads())
	b.rts.SendPE(ctx.PE(), 0, b.repEP, &charm.Message{Size: len(data), Data: data})
}

// gatherLoads snapshots this rank's per-element meters in the
// deterministic hosted-element order. Elements that never ran report
// zero load (they still exist for the strategy's bookkeeping).
func (b *Balancer) gatherLoads() []ElementLoad {
	var out []ElementLoad
	for _, a := range b.arrays {
		ord := a.Ord()
		a.EachHosted(func(idx charm.Index, pe int) {
			l := ElementLoad{Array: ord, Index: idx, PE: pe}
			s := &b.shards[pe]
			s.mu.Lock()
			if e := s.m[loadKey(ord, idx)]; e != nil {
				l.BusyNS, l.Msgs, l.Bytes = e.busyNS, e.msgs, e.bytes
			}
			s.mu.Unlock()
			out = append(out, l)
		})
	}
	return out
}

func (b *Balancer) encodeLoads(loads []ElementLoad) []byte {
	p := &charm.Packer{}
	n := len(loads)
	p.Int(&n)
	for i := range loads {
		l := &loads[i]
		p.Int(&l.Array)
		for d := 0; d < 4; d++ {
			p.Int(&l.Index[d])
		}
		p.Int(&l.PE)
		p.Int64(&l.BusyNS)
		p.Int64(&l.Msgs)
		p.Int64(&l.Bytes)
	}
	return p.Buf
}

func decodeLoads(data []byte) ([]ElementLoad, error) {
	u := &charm.Unpacker{Buf: data}
	var n int
	u.Int(&n)
	if err := u.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > len(data) {
		return nil, fmt.Errorf("lb: load report claims %d entries in %d bytes", n, len(data))
	}
	out := make([]ElementLoad, n)
	for i := range out {
		l := &out[i]
		u.Int(&l.Array)
		for d := 0; d < 4; d++ {
			u.Int(&l.Index[d])
		}
		u.Int(&l.PE)
		u.Int64(&l.BusyNS)
		u.Int64(&l.Msgs)
		u.Int64(&l.Bytes)
	}
	if err := u.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// onReport lands one rank's load report at the root (PE 0's scheduler,
// so reports serialize). The last report triggers planning.
func (b *Balancer) onReport(data []byte) {
	loads, err := decodeLoads(data)
	if err != nil {
		b.rts.ReportError(fmt.Errorf("lb: bad load report: %w", err))
		return
	}
	b.mu.Lock()
	b.loads = append(b.loads, loads...)
	b.reports++
	ready := b.reports == b.world
	b.mu.Unlock()
	if ready {
		b.plan()
	}
}

// plan asks the strategy for this round's moves, records the imbalance
// it saw, broadcasts the plan and applies it locally. Runs on the
// root's PE-0 scheduler task.
func (b *Balancer) plan() {
	b.mu.Lock()
	loads := b.loads
	b.mu.Unlock()
	// Report arrival order is rank-nondeterministic under net; restore a
	// canonical order so the plan is a pure function of the loads.
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Array != loads[j].Array {
			return loads[i].Array < loads[j].Array
		}
		return lessIndex(loads[i].Index, loads[j].Index)
	})
	pes := b.rts.Machine().NumPEs()
	moves := b.opts.Strategy.Plan(pes, loads)
	before, after := SpreadPermille(pes, loads, moves)
	if rec := b.rts.Recorder(); rec != nil {
		rec.Incr(trace.CntLBMigrations, int64(len(moves)))
		rec.Incr(trace.CntLBSpreadBefore, before)
		rec.Incr(trace.CntLBSpreadAfter, after)
	}
	b.mu.Lock()
	b.migrations += int64(len(moves))
	b.mu.Unlock()
	if b.nrt != nil && b.world > 1 {
		b.nrt.SendLoc(b.encodePlan(moves))
	}
	b.applyPlan(moves)
}

func (b *Balancer) encodePlan(moves []Move) []byte {
	p := &charm.Packer{}
	n := len(moves)
	p.Int(&n)
	for i := range moves {
		mv := &moves[i]
		p.Int(&mv.Array)
		for d := 0; d < 4; d++ {
			p.Int(&mv.Index[d])
		}
		p.Int(&mv.ToPE)
	}
	return p.Buf
}

// onPlanWire decodes an FLoc broadcast and applies it. Runs on the
// control PE's scheduler, serialized with onMove.
func (b *Balancer) onPlanWire(data []byte) {
	u := &charm.Unpacker{Buf: data}
	var n int
	u.Int(&n)
	if err := u.Err(); err != nil || n < 0 || n > len(data)+1 {
		b.rts.ReportError(fmt.Errorf("lb: bad plan broadcast (%d entries, err %v)", n, u.Err()))
		return
	}
	moves := make([]Move, n)
	for i := range moves {
		mv := &moves[i]
		u.Int(&mv.Array)
		for d := 0; d < 4; d++ {
			u.Int(&mv.Index[d])
		}
		u.Int(&mv.ToPE)
		mv.FromPE = -1 // recomputed at apply
	}
	if err := u.Err(); err != nil {
		b.rts.ReportError(fmt.Errorf("lb: bad plan broadcast: %w", err))
		return
	}
	b.applyPlan(moves)
}

// applyPlan executes this rank's share of a balancing plan: SPMD
// location bookkeeping for every move, outbound state packing, inbound
// state accounting (stash-aware), and the application's channel-rehome
// hook. Completion is a counter, not a wait — rehomes and inbound
// state resolve through scheduler tasks, and the last one to finish
// triggers finishApply.
func (b *Balancer) applyPlan(moves []Move) {
	b.mu.Lock()
	b.applied = true
	b.outstanding = 1
	b.mu.Unlock()
	for i := range moves {
		mv := &moves[i]
		a := b.byOrd[mv.Array]
		if a == nil {
			b.rts.ReportError(fmt.Errorf("lb: plan names unattached array %d", mv.Array))
			continue
		}
		from := a.CurrentPE(mv.Index)
		if from < 0 || from == mv.ToPE {
			continue
		}
		hostsFrom, hostsTo := b.rts.HostsPE(from), b.rts.HostsPE(mv.ToPE)
		if err := b.rts.MoveElement(mv.Array, mv.Index, mv.ToPE); err != nil {
			b.rts.ReportError(err)
			continue
		}
		k := loadKey(mv.Array, mv.Index)
		switch {
		case hostsFrom && !hostsTo:
			data, err := b.rts.PackElement(mv.Array, mv.Index)
			if err != nil {
				b.rts.ReportError(err)
				break
			}
			payload := b.encodeMove(mv.Index, data)
			b.nrt.SendMove(b.nrt.RankOf(mv.ToPE), int64(mv.Array), payload)
			if rec := b.rts.Recorder(); rec != nil {
				rec.Incr(trace.CntLBBytesMoved, int64(len(data)))
			}
		case hostsTo && !hostsFrom:
			b.mu.Lock()
			if data, ok := b.stash[k]; ok {
				delete(b.stash, k)
				b.mu.Unlock()
				if err := b.rts.UnpackElement(mv.Array, mv.Index, data); err != nil {
					b.rts.ReportError(err)
				}
			} else {
				b.expect[k] = true
				b.outstanding++
				b.mu.Unlock()
			}
		}
		if b.opts.OnMigrate != nil {
			b.mu.Lock()
			b.outstanding++
			b.mu.Unlock()
			b.opts.OnMigrate(mv.Array, mv.Index, from, mv.ToPE, b.moveDone)
		}
	}
	b.moveDone()
}

func (b *Balancer) encodeMove(idx charm.Index, state []byte) []byte {
	p := &charm.Packer{}
	for d := 0; d < 4; d++ {
		p.Int(&idx[d])
	}
	p.Buf = append(p.Buf, state...)
	return p.Buf
}

// onMove lands one migrated element's packed state. Runs on the
// control PE's scheduler. State may beat the plan here (FMove and FLoc
// ride different connections); it then parks in the stash until
// applyPlan claims it.
func (b *Balancer) onMove(array int, data []byte) {
	u := &charm.Unpacker{Buf: data}
	var idx charm.Index
	for d := 0; d < 4; d++ {
		u.Int(&idx[d])
	}
	if err := u.Err(); err != nil {
		b.rts.ReportError(fmt.Errorf("lb: bad migration payload: %w", err))
		return
	}
	state := data[len(data)-u.Rest():]
	k := loadKey(array, idx)
	b.mu.Lock()
	expected := b.applied && b.expect[k]
	if expected {
		delete(b.expect, k)
	} else {
		b.stash[k] = state
	}
	b.mu.Unlock()
	if !expected {
		return
	}
	if err := b.rts.UnpackElement(array, idx, state); err != nil {
		b.rts.ReportError(err)
	}
	b.moveDone()
}

// moveDone retires one unit of apply work; the last one finishes the
// round on this rank.
func (b *Balancer) moveDone() {
	b.mu.Lock()
	b.outstanding--
	fin := b.outstanding == 0
	if fin {
		b.applied = false
	}
	b.mu.Unlock()
	if fin {
		b.finishApply()
	}
}

// finishApply resets the meters for the next period and contributes
// the round's extra reduction for every element this rank now hosts —
// from each element's (possibly new) PE, so migrated elements exercise
// their home-forwarding path immediately.
func (b *Balancer) finishApply() {
	for pe := range b.shards {
		s := &b.shards[pe]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
	for _, a := range b.arrays {
		a := a
		a.EachHosted(func(idx charm.Index, pe int) {
			b.rts.EnqueueOn(pe, func() {
				a.ContributeFrom(idx, b.opts.Contrib...)
			})
		})
	}
}
