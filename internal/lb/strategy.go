// Package lb provides measurement-based dynamic load balancing for
// chare arrays: per-element load metering hooked into the runtime's
// dispatch path, a pluggable rebalancing strategy, and a barrier-driven
// migration protocol that rides the same reduction seam the
// checkpointer uses (Balancer, lb.go).
package lb

import (
	"fmt"
	"sort"

	"repro/internal/charm"
)

// ElementLoad is one element's measured load over the current LB
// period, as reported at the balancing barrier.
type ElementLoad struct {
	Array  int // array registration ordinal
	Index  charm.Index
	PE     int   // current placement
	BusyNS int64 // wall-clock (real/net) or virtual (sim) busy time
	Msgs   int64 // entry-method dispatches
	Bytes  int64 // message bytes delivered
}

// Move is one planned migration.
type Move struct {
	Array  int
	Index  charm.Index
	FromPE int
	ToPE   int
}

// Strategy plans migrations from a complete load picture. Plan must be
// deterministic in its inputs: every rank trusts the root's plan, and
// the simulator's counter determinism depends on it.
type Strategy interface {
	Name() string
	Plan(pes int, loads []ElementLoad) []Move
}

// Greedy moves the heaviest movable element off the most loaded PE onto
// the least loaded one, repeating while the maximum PE load exceeds the
// mean by more than Tol. Ties break deterministically (lowest PE,
// then lowest (array, index)), and an element moves at most once per
// round.
type Greedy struct {
	// Tol is the tolerated relative imbalance: rebalancing stops once
	// max <= mean*(1+Tol). Zero means the 0.10 default.
	Tol float64
}

// Name identifies the strategy in flags and logs.
func (g *Greedy) Name() string { return "greedy" }

// Plan implements Strategy.
func (g *Greedy) Plan(pes int, loads []ElementLoad) []Move {
	if pes <= 1 || len(loads) == 0 {
		return nil
	}
	tol := g.Tol
	if tol <= 0 {
		tol = 0.10
	}
	tot := make([]int64, pes)
	byPE := make([][]int, pes)
	var total int64
	for i, l := range loads {
		if l.PE < 0 || l.PE >= pes {
			continue
		}
		tot[l.PE] += l.BusyNS
		byPE[l.PE] = append(byPE[l.PE], i)
		total += l.BusyNS
	}
	if total == 0 {
		return nil
	}
	for pe := range byPE {
		idx := byPE[pe]
		sort.Slice(idx, func(x, y int) bool {
			a, b := loads[idx[x]], loads[idx[y]]
			if a.BusyNS != b.BusyNS {
				return a.BusyNS > b.BusyNS
			}
			if a.Array != b.Array {
				return a.Array < b.Array
			}
			return lessIndex(a.Index, b.Index)
		})
	}
	avg := float64(total) / float64(pes)
	moved := make(map[int]bool)
	var moves []Move
	for range loads {
		src := argExtreme(tot, true)
		if float64(tot[src]) <= avg*(1+tol) {
			break
		}
		dst := argExtreme(tot, false)
		if dst == src {
			break
		}
		pick := -1
		for _, i := range byPE[src] {
			if moved[i] || loads[i].BusyNS <= 0 {
				continue
			}
			// Only a move that strictly shrinks the pair's maximum helps;
			// the heaviest element that fits wins.
			if tot[dst]+loads[i].BusyNS < tot[src] {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		w := loads[pick].BusyNS
		moves = append(moves, Move{Array: loads[pick].Array, Index: loads[pick].Index, FromPE: src, ToPE: dst})
		moved[pick] = true
		tot[src] -= w
		tot[dst] += w
	}
	return moves
}

// argExtreme returns the index of the maximum (or minimum) entry,
// lowest index on ties.
func argExtreme(tot []int64, max bool) int {
	best := 0
	for i := 1; i < len(tot); i++ {
		if (max && tot[i] > tot[best]) || (!max && tot[i] < tot[best]) {
			best = i
		}
	}
	return best
}

func lessIndex(a, b charm.Index) bool {
	for d := 0; d < 4; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// SpreadPermille computes the max/mean per-PE load ratio in per-mille,
// before and after hypothetically applying moves — the imbalance the
// strategy saw and the one it predicts. Returns zeros when no load was
// measured.
func SpreadPermille(pes int, loads []ElementLoad, moves []Move) (before, after int64) {
	if pes <= 0 {
		return 0, 0
	}
	tot := make([]int64, pes)
	var total int64
	for _, l := range loads {
		if l.PE >= 0 && l.PE < pes {
			tot[l.PE] += l.BusyNS
			total += l.BusyNS
		}
	}
	if total == 0 {
		return 0, 0
	}
	mean := float64(total) / float64(pes)
	permille := func() int64 {
		return int64(float64(tot[argExtreme(tot, true)]) / mean * 1000)
	}
	before = permille()
	loc := make(map[[5]int]int, len(loads))
	for i, l := range loads {
		loc[loadKey(l.Array, l.Index)] = i
	}
	for _, mv := range moves {
		i, ok := loc[loadKey(mv.Array, mv.Index)]
		if !ok {
			continue
		}
		w := loads[i].BusyNS
		if mv.FromPE >= 0 && mv.FromPE < pes && mv.ToPE >= 0 && mv.ToPE < pes {
			tot[mv.FromPE] -= w
			tot[mv.ToPE] += w
		}
	}
	return before, permille()
}

func loadKey(array int, idx charm.Index) [5]int {
	return [5]int{array, idx[0], idx[1], idx[2], idx[3]}
}

// ParseStrategy maps a -lb.strategy flag value to a Strategy. Empty and
// "none" mean disabled (nil strategy).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "greedy":
		return &Greedy{}, nil
	}
	return nil, fmt.Errorf("lb: unknown strategy %q (have: greedy, none)", name)
}
