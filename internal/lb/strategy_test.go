package lb

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/charm"
)

func el(array, i, pe int, busy int64) ElementLoad {
	return ElementLoad{Array: array, Index: charm.Idx1(i), PE: pe, BusyNS: busy}
}

func TestGreedyMovesOffTheHotPE(t *testing.T) {
	g := &Greedy{}
	loads := []ElementLoad{
		el(0, 0, 0, 100), el(0, 1, 0, 90), el(0, 2, 0, 80),
		el(0, 3, 1, 10),
	}
	moves := g.Plan(2, loads)
	if len(moves) == 0 {
		t.Fatal("a 270-vs-10 split produced no moves")
	}
	seen := map[[5]int]bool{}
	for _, mv := range moves {
		if mv.FromPE != 0 || mv.ToPE != 1 {
			t.Fatalf("move %+v goes the wrong way", mv)
		}
		k := loadKey(mv.Array, mv.Index)
		if seen[k] {
			t.Fatalf("element %v moved twice in one round", mv.Index)
		}
		seen[k] = true
	}
	before, after := SpreadPermille(2, loads, moves)
	if after >= before {
		t.Fatalf("spread grew: before %d after %d", before, after)
	}
}

func TestGreedyLeavesBalanceAlone(t *testing.T) {
	g := &Greedy{}
	loads := []ElementLoad{
		el(0, 0, 0, 100), el(0, 1, 1, 100), el(0, 2, 2, 100), el(0, 3, 3, 100),
	}
	if moves := g.Plan(4, loads); len(moves) != 0 {
		t.Fatalf("balanced loads produced %d moves", len(moves))
	}
}

func TestGreedyDegenerateInputs(t *testing.T) {
	g := &Greedy{}
	if moves := g.Plan(1, []ElementLoad{el(0, 0, 0, 100)}); moves != nil {
		t.Fatal("single PE produced moves")
	}
	if moves := g.Plan(4, nil); moves != nil {
		t.Fatal("no loads produced moves")
	}
	zero := []ElementLoad{el(0, 0, 0, 0), el(0, 1, 1, 0)}
	if moves := g.Plan(2, zero); moves != nil {
		t.Fatal("zero total load produced moves")
	}
	// A lone monster element cannot be split: moving it just swaps the
	// imbalance, so the plan must be empty.
	lone := []ElementLoad{el(0, 0, 0, 1000), el(0, 1, 1, 1)}
	if moves := g.Plan(2, lone); len(moves) != 0 {
		t.Fatalf("unsplittable imbalance produced %v", moves)
	}
}

// TestGreedyIsDeterministic pins the SPMD requirement: the plan is a
// pure function of the (canonically ordered) loads.
func TestGreedyIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pes := 2 + rng.Intn(6)
		var loads []ElementLoad
		for i := 0; i < 4*pes; i++ {
			loads = append(loads, el(0, i, rng.Intn(pes), int64(rng.Intn(1000))))
		}
		a := (&Greedy{}).Plan(pes, loads)
		b := (&Greedy{}).Plan(pes, loads)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: identical inputs planned differently:\n%v\n%v", trial, a, b)
		}
	}
}

// TestGreedyNeverWorsensSpread is the strategy's safety property over
// random load pictures: whatever it plans, the predicted max/mean
// spread must not grow, no element moves twice, and every move starts
// at the element's reported PE.
func TestGreedyNeverWorsensSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		pes := 2 + rng.Intn(7)
		n := 1 + rng.Intn(5*pes)
		loads := make([]ElementLoad, n)
		loc := map[[5]int]int{}
		for i := range loads {
			loads[i] = el(0, i, rng.Intn(pes), int64(rng.Intn(5000)))
			loc[loadKey(0, charm.Idx1(i))] = i
		}
		moves := (&Greedy{}).Plan(pes, loads)
		seen := map[[5]int]bool{}
		for _, mv := range moves {
			k := loadKey(mv.Array, mv.Index)
			if seen[k] {
				t.Fatalf("trial %d: element %v moved twice", trial, mv.Index)
			}
			seen[k] = true
			i, ok := loc[k]
			if !ok {
				t.Fatalf("trial %d: move names unknown element %v", trial, mv.Index)
			}
			if loads[i].PE != mv.FromPE {
				t.Fatalf("trial %d: move says from %d, element lives on %d", trial, mv.FromPE, loads[i].PE)
			}
		}
		before, after := SpreadPermille(pes, loads, moves)
		if after > before {
			t.Fatalf("trial %d: plan worsened spread %d -> %d (moves %v)", trial, before, after, moves)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	if s, err := ParseStrategy("greedy"); err != nil || s == nil || s.Name() != "greedy" {
		t.Fatalf("greedy: %v %v", s, err)
	}
	for _, off := range []string{"", "none"} {
		if s, err := ParseStrategy(off); err != nil || s != nil {
			t.Fatalf("%q: %v %v", off, s, err)
		}
	}
	if _, err := ParseStrategy("psychic"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
