//go:build !race

package bufpool

// RaceEnabled reports whether this build carries the race detector.
const RaceEnabled = false

const raceEnabled = false
