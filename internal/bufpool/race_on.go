//go:build race

package bufpool

// RaceEnabled reports whether this build carries the race detector.
// Debug (leak/double-free) tracking defaults on in race builds, and
// allocation-count regression tests skip themselves — the detector's
// instrumentation changes both cost and alloc counts.
const RaceEnabled = true

const raceEnabled = true
