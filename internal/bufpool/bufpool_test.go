package bufpool

import (
	"math/rand"
	"sync"
	"testing"
)

func TestClasses(t *testing.T) {
	sizes := []int{0, 1, 63, 64, 65, 255, 256, 1024, 4096, 65536, 1 << 20}
	p := New()
	for _, n := range sizes {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) returned cap %d", n, cap(b))
		}
		if classForCap(cap(b)) < 0 {
			t.Fatalf("Get(%d) returned cap %d, not a class size", n, cap(b))
		}
		p.Put(b)
	}
}

func TestReuse(t *testing.T) {
	p := New()
	p.SetDebug(false) // exercise the non-debug path deterministically
	b := p.Get(100)
	b[0] = 0xAB
	p.Put(b)
	c := p.Get(200) // same class (256): should come back from the pool
	if &c[0] != &b[0] {
		// sync.Pool may theoretically miss, but single-goroutine
		// put-then-get hits the private slot; a miss here means Put
		// dropped the buffer.
		t.Fatalf("Put buffer was not reused")
	}
	p.Put(c)
	if s := p.Stats(); s.Gets != 2 || s.Puts != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 gets, 2 puts, 1 miss", s)
	}
}

func TestOversizeDropped(t *testing.T) {
	p := New()
	p.SetDebug(true)
	b := p.Get(maxClassSize + 1)
	if len(b) != maxClassSize+1 {
		t.Fatalf("oversize Get returned len %d", len(b))
	}
	if got := p.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d before Put, want 1", got)
	}
	p.Put(b)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after Put, want 0", got)
	}
	s := p.Stats()
	if s.Oversize != 1 {
		t.Fatalf("Oversize = %d, want 1", s.Oversize)
	}
	// The drop IS the shrink policy: the class chain must not serve the
	// oversize buffer back.
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestLeakDetector(t *testing.T) {
	p := New()
	p.SetDebug(true)
	a := p.Get(128)
	b := p.Get(4000)
	if got := p.Outstanding(); got != 2 {
		t.Fatalf("Outstanding = %d, want 2", got)
	}
	p.Put(a)
	if got := p.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d after one Put, want 1 (leak of b visible)", got)
	}
	p.Put(b)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after both Puts, want 0", got)
	}
}

func TestDoublePutPanics(t *testing.T) {
	p := New()
	p.SetDebug(true)
	b := p.Get(64)
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put did not panic")
		}
	}()
	p.Put(b)
}

func TestForeignPutPanics(t *testing.T) {
	p := New()
	p.SetDebug(true)
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a never-issued buffer did not panic in debug mode")
		}
	}()
	p.Put(make([]byte, 256))
}

// TestHammer drives concurrent Get/Put from many goroutines; its real
// teeth are under -race (CI's race job), where it also exercises the
// debug tracking paths.
func TestHammer(t *testing.T) {
	p := New()
	p.SetDebug(true)
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([][]byte, 0, 16)
			for i := 0; i < rounds; i++ {
				if len(held) > 0 && rng.Intn(3) == 0 {
					k := rng.Intn(len(held))
					p.Put(held[k])
					held[k] = held[len(held)-1]
					held = held[:len(held)-1]
					continue
				}
				n := 1 << uint(rng.Intn(18)) // 1B .. 128KiB
				b := p.Get(n)
				if len(b) != n {
					panic("bad len")
				}
				// Touch both ends so races on recycled memory are visible
				// to the detector.
				b[0] = byte(i)
				b[n-1] = byte(i)
				if len(held) < cap(held) {
					held = append(held, b)
				} else {
					p.Put(b)
				}
			}
			for _, b := range held {
				p.Put(b)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after drain, want 0", got)
	}
}

// TestGetPutZeroAlloc pins the steady-state cost of the pool itself: a
// warm Get/Put cycle must not allocate.
func TestGetPutZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	p := New()
	p.SetDebug(false)
	// Prime the class so the measured cycles hit the pool.
	for i := 0; i < 64; i++ {
		p.Put(p.Get(1024))
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := p.Get(1024)
		b[0] = 1
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkGetPut(b *testing.B) {
	p := New()
	p.SetDebug(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(4096)
		buf[0] = byte(i)
		p.Put(buf)
	}
}

func BenchmarkGetPutParallel(b *testing.B) {
	p := New()
	p.SetDebug(false)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			buf := p.Get(1024)
			buf[0] = byte(i)
			i++
			p.Put(buf)
		}
	})
}
