// Package bufpool is the memory-discipline layer for the real and net
// backends: a size-classed, sync.Pool-backed free list of byte buffers
// serving every hot-path allocation of the wire stack — frame encode,
// the per-peer batching writer, and the eager receive path. The paper's
// argument is that CkDirect wins by removing per-message costs; without
// this layer the Go allocator and GC quietly reintroduce them as the
// un-modelled "OS bottleneck" of §1.
//
// Ownership rule: a buffer obtained from Get is owned by exactly one
// party at a time and must be Put back by whoever holds it last. On the
// transmit path that is the peer writer (after the writev); on the
// receive path it is the connection reader (after dispatch returns).
// Any path that retains bytes beyond that point (buffered frames for a
// future run generation, decoded message payloads handed to user
// handlers) must copy out first — see DESIGN.md §9.
//
// Debug mode (enabled for every pool in -race builds, and explicitly by
// tests) tracks outstanding buffers so a leak is observable and a
// double Put panics at the second Put, not as corruption three frames
// later.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Size classes: powers of four from 64 B to 1 MiB. Get rounds up to the
// smallest class that fits, so a pooled buffer wastes at most 4x its
// payload; requests above maxClassSize fall through to the plain
// allocator and are dropped on Put — the pool never pins worst-case
// burst memory (see the shrink policy note on Put).
const (
	minClassSize = 64
	maxClassSize = 1 << 20
	numClasses   = 8 // 64, 256, 1Ki, 4Ki, 16Ki, 64Ki, 256Ki, 1Mi
)

// classSize returns the byte size of class c.
func classSize(c int) int { return minClassSize << (2 * uint(c)) }

// classFor returns the smallest class holding n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	for c := 0; c < numClasses; c++ {
		if n <= classSize(c) {
			return c
		}
	}
	return -1
}

// classForCap returns the class whose size is exactly c, or -1. Pooled
// buffers always carry their class size as capacity, so an exact match
// is both necessary and sufficient for safe reuse.
func classForCap(c int) int {
	if c < minClassSize || c > maxClassSize {
		return -1
	}
	for k := 0; k < numClasses; k++ {
		if c == classSize(k) {
			return k
		}
	}
	return -1
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	Gets     int64 // total Get calls
	Puts     int64 // total Put calls that recycled a buffer
	Misses   int64 // Gets that found an empty class and allocated
	Oversize int64 // Gets above the largest class (unpooled)
	Dropped  int64 // Puts of unpooled or foreign buffers (discarded)
}

// Pool is one size-classed buffer pool. The zero value is NOT ready;
// use New. Most code uses the package-level Default pool.
type Pool struct {
	classes [numClasses]sync.Pool

	gets, puts, misses, oversize, dropped atomic.Int64

	debug atomic.Bool
	mu    sync.Mutex
	live  map[unsafe.Pointer]int // outstanding buffers -> requested len
}

// New builds an empty pool.
func New() *Pool {
	p := &Pool{live: make(map[unsafe.Pointer]int)}
	if raceEnabled {
		p.debug.Store(true)
	}
	return p
}

// Default is the process-wide pool used by the netrt wire stack.
var Default = New()

// Get returns a buffer of length n (capacity the class size). The
// buffer contents are unspecified — callers append from [:0] or
// overwrite every byte. Buffers above the largest class are plain
// allocations the pool will not retain.
func (p *Pool) Get(n int) []byte {
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		p.oversize.Add(1)
		b := make([]byte, n)
		p.track(b, n)
		return b
	}
	var b []byte
	if v := p.classes[c].Get(); v != nil {
		b = unsafe.Slice(v.(*byte), classSize(c))[:n]
	} else {
		p.misses.Add(1)
		b = make([]byte, n, classSize(c))
	}
	p.track(b, n)
	return b
}

// Put returns a buffer to its size class. Only buffers whose capacity
// exactly matches a class are retained; anything else — oversize
// allocations from Get, foreign slices — is dropped to the GC. That
// drop IS the shrink policy: after a burst of giant frames the pool
// holds nothing above maxClassSize, so retained memory is bounded by
// (buffers in flight) x (largest class), not by the worst burst ever
// seen.
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	p.untrack(b)
	c := classForCap(cap(b))
	if c < 0 {
		p.dropped.Add(1)
		return
	}
	p.puts.Add(1)
	p.classes[c].Put(unsafe.SliceData(b))
}

// track records an outstanding buffer in debug mode.
func (p *Pool) track(b []byte, n int) {
	if !p.debug.Load() || cap(b) == 0 {
		return
	}
	ptr := unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
	p.mu.Lock()
	p.live[ptr] = n
	p.mu.Unlock()
}

// untrack validates a Put in debug mode: the buffer must be
// outstanding, so a second Put (or a Put of a slice never issued by
// this pool) panics at the offending call site.
func (p *Pool) untrack(b []byte) {
	if !p.debug.Load() {
		return
	}
	ptr := unsafe.Pointer(unsafe.SliceData(b))
	p.mu.Lock()
	_, ok := p.live[ptr]
	delete(p.live, ptr)
	p.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("bufpool: double Put (or Put of a foreign buffer) of %d-byte buffer", cap(b)))
	}
}

// SetDebug toggles leak/double-free tracking. Turning it off clears the
// outstanding set. Debug mode is on by default in -race builds.
func (p *Pool) SetDebug(on bool) {
	p.debug.Store(on)
	if !on {
		p.mu.Lock()
		clear(p.live)
		p.mu.Unlock()
	}
}

// Outstanding reports how many buffers are checked out (debug mode
// only; always 0 otherwise). A nonzero value once all traffic has
// drained is a leak.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

// Stats snapshots the activity counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:     p.gets.Load(),
		Puts:     p.puts.Load(),
		Misses:   p.misses.Load(),
		Oversize: p.oversize.Load(),
		Dropped:  p.dropped.Load(),
	}
}

// Get and Put on the Default pool.
func Get(n int) []byte { return Default.Get(n) }
func Put(b []byte)     { Default.Put(b) }
