package openatom

import (
	"math"
	"testing"

	"repro/internal/netmodel"
)

// small returns a validation-scale configuration.
func small(plat *netmodel.Platform, mode Mode, scope Scope) Config {
	return Config{
		Platform: plat,
		Mode:     mode,
		Scope:    scope,
		PEs:      8,
		NStates:  16, NPlanes: 2, Grain: 4, Points: 32,
		Steps: 2, Warmup: 1,
		Validate: true,
	}
}

// TestAllModesAgreeOnPhysics: the overlap reduction and the final
// coefficient checksum must be identical across transports — the CkDirect
// data path delivers exactly the same numbers.
func TestAllModesAgreeOnPhysics(t *testing.T) {
	for _, scope := range []Scope{FullStep, PCOnly} {
		base := Run(small(netmodel.AbeIB, Msg, scope))
		for _, mode := range []Mode{Ckd, CkdNaive} {
			got := Run(small(netmodel.AbeIB, mode, scope))
			if got.Overlap != base.Overlap {
				t.Errorf("%v/%v: overlap %g != msg %g", mode, scope, got.Overlap, base.Overlap)
			}
			if got.Checksum != base.Checksum {
				t.Errorf("%v/%v: checksum %g != msg %g", mode, scope, got.Checksum, base.Checksum)
			}
		}
	}
}

func TestOverlapIsNontrivial(t *testing.T) {
	res := Run(small(netmodel.AbeIB, Msg, PCOnly))
	if res.Overlap == 0 || math.IsNaN(res.Overlap) {
		t.Fatalf("overlap = %v", res.Overlap)
	}
	if res.Checksum == 0 || math.IsNaN(res.Checksum) {
		t.Fatalf("checksum = %v", res.Checksum)
	}
}

// TestChannelCount: the proxy creates (2*nblocks - 1) channels per GS
// element, the scaling the paper summarizes as "4 x nstates x nplanes"
// for its two-block decomposition.
func TestChannelCount(t *testing.T) {
	cfg := small(netmodel.AbeIB, Ckd, PCOnly)
	res := Run(cfg)
	nblocks := cfg.NStates / cfg.Grain
	want := cfg.NStates * cfg.NPlanes * (2*nblocks - 1)
	if res.Channels != want {
		t.Fatalf("channels = %d, want %d", res.Channels, want)
	}
}

// TestCkdBeatsMsgPCOnly: the PairCalculator-only study shows the largest
// CkDirect advantage (paper: up to 14% on Abe).
func TestCkdBeatsMsgPCOnly(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		cfg := Config{
			Platform: plat, Scope: PCOnly, PEs: 32,
			NStates: 64, NPlanes: 8, Grain: 16, Points: 512,
			Steps: 2, Warmup: 1,
		}
		msg, ckd, pct := Improvement(cfg)
		if ckd.StepTime >= msg.StepTime {
			t.Errorf("%s: ckd %v >= msg %v", plat.Name, ckd.StepTime, msg.StepTime)
		}
		if pct <= 0 || pct > 70 {
			t.Errorf("%s: improvement %.1f%% implausible", plat.Name, pct)
		}
	}
}

// TestFullStepGainSmallerThanPCOnly: with the other phases included, the
// relative gain shrinks (paper: ~4% full vs ~14% PC-only on Abe).
func TestFullStepGainSmallerThanPCOnly(t *testing.T) {
	base := Config{
		Platform: netmodel.AbeIB, PEs: 32, CoresPerNode: 2,
		NStates: 64, NPlanes: 8, Grain: 16, Points: 512,
		Steps: 2, Warmup: 1,
	}
	pcCfg := base
	pcCfg.Scope = PCOnly
	_, _, pcPct := Improvement(pcCfg)
	fullCfg := base
	fullCfg.Scope = FullStep
	_, _, fullPct := Improvement(fullCfg)
	if fullPct >= pcPct {
		t.Fatalf("full-step gain %.1f%% not smaller than PC-only %.1f%%", fullPct, pcPct)
	}
	if fullPct <= 0 {
		t.Fatalf("full-step gain %.1f%% not positive", fullPct)
	}
}

// TestNaivePollingPathology reproduces §5.2: with thousands of channels
// per processor and plain Ready after the multiply, the polling tax makes
// the CkDirect version *slower* than messages; ReadyMark/ReadyPollQ
// windowing restores the win.
func TestNaivePollingPathology(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB, Scope: FullStep, PEs: 16,
		NStates: 128, NPlanes: 8, Grain: 16, Points: 256,
		Steps: 2, Warmup: 1,
	}
	cfg.Mode = Msg
	msg := Run(cfg)
	cfg.Mode = CkdNaive
	naive := Run(cfg)
	cfg.Mode = Ckd
	opt := Run(cfg)

	if naive.StepTime <= msg.StepTime {
		t.Errorf("naive polling not pathological: naive %v <= msg %v", naive.StepTime, msg.StepTime)
	}
	if opt.StepTime >= msg.StepTime {
		t.Errorf("optimized ckdirect lost to messages: %v >= %v", opt.StepTime, msg.StepTime)
	}
	if opt.StepTime >= naive.StepTime {
		t.Errorf("windowing did not help: opt %v >= naive %v", opt.StepTime, naive.StepTime)
	}
}

// TestNoPollingPathologyOnBGP: Blue Gene/P detects completion via
// callbacks, so the naive pattern costs nothing there (Ready calls are
// no-ops, §2.2).
func TestNoPollingPathologyOnBGP(t *testing.T) {
	cfg := Config{
		Platform: netmodel.SurveyorBGP, Scope: FullStep, PEs: 16,
		NStates: 128, NPlanes: 8, Grain: 16, Points: 256,
		Steps: 2, Warmup: 1,
	}
	cfg.Mode = CkdNaive
	naive := Run(cfg)
	cfg.Mode = Ckd
	opt := Run(cfg)
	if naive.StepTime != opt.StepTime {
		t.Fatalf("BG/P: naive %v != optimized %v (Ready should be a no-op)", naive.StepTime, opt.StepTime)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB, Mode: Ckd, Scope: FullStep, PEs: 16,
		NStates: 32, NPlanes: 4, Grain: 8, Points: 128,
		Steps: 2, Warmup: 1,
	}
	a, b := Run(cfg), Run(cfg)
	if a.StepTime != b.StepTime || a.TotalEvents != b.TotalEvents {
		t.Fatalf("nondeterministic: %v vs %v", a.StepTime, b.StepTime)
	}
}

// TestVirtualMatchesValidateTiming.
func TestVirtualMatchesValidateTiming(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		v := small(netmodel.AbeIB, mode, FullStep)
		m := v
		m.Validate = false
		rv, rm := Run(v), Run(m)
		if rv.StepTime != rm.StepTime {
			t.Errorf("%v: validate %v != model %v", mode, rv.StepTime, rm.StepTime)
		}
	}
}

// TestCoresPerNodeOverride: the Abe OpenAtom study used 2 cores/node;
// fewer cores per node means more inter-node traffic and a different
// step time than the default 8.
func TestCoresPerNodeOverride(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB, Mode: Msg, Scope: PCOnly, PEs: 16,
		NStates: 32, NPlanes: 4, Grain: 8, Points: 256,
		Steps: 2, Warmup: 1,
	}
	def := Run(cfg)
	cfg.CoresPerNode = 2
	two := Run(cfg)
	if two.StepTime == def.StepTime {
		t.Fatal("cores-per-node override had no effect")
	}
	if two.StepTime < def.StepTime {
		t.Fatalf("2 cores/node should not be faster: %v < %v", two.StepTime, def.StepTime)
	}
}
