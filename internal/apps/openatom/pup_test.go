package openatom

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/charm"
)

// TestPupRoundTrip is the element-state property test for both chare
// kinds: packing, unpacking into a fresh element, and repacking must
// reproduce the bytes and the state exactly.
func TestPupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		gs := &gsChare{coeffs: make([]float64, rng.Intn(64))}
		for i := range gs.coeffs {
			gs.coeffs[i] = rng.NormFloat64()
		}
		pc := &pcChare{overlap: rng.NormFloat64()}

		var p charm.Packer
		gs.Pup(&p)
		pc.Pup(&p)

		gs2, pc2 := &gsChare{}, &pcChare{}
		u := &charm.Unpacker{Buf: p.Buf}
		gs2.Pup(u)
		pc2.Pup(u)
		if err := u.Err(); err != nil {
			t.Fatal(err)
		}
		if u.Rest() != 0 {
			t.Fatalf("trial %d: %d bytes left over", trial, u.Rest())
		}
		var p2 charm.Packer
		gs2.Pup(&p2)
		pc2.Pup(&p2)
		if !bytes.Equal(p.Buf, p2.Buf) {
			t.Fatalf("trial %d: repack differs", trial)
		}
		if pc2.overlap != pc.overlap {
			t.Fatalf("trial %d: overlap %v != %v", trial, pc2.overlap, pc.overlap)
		}
	}
}
