package openatom

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
)

// TestRealBackendMatchesSim: the PairCalculator pipeline — including the
// lambda feedback loop through the orthonormalization reduction — must
// produce bit-identical coefficients on both backends. This is the
// sharpest of the oracles: the reduction value feeds back into the next
// step's data, so any ordering leak in the deterministic reduction fold
// compounds across steps.
func TestRealBackendMatchesSim(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd, CkdNaive} {
		cfg := Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			Scope:    FullStep,
			PEs:      4,
			NStates:  16,
			NPlanes:  2,
			Grain:    4,
			Points:   32,
			Steps:    2,
			Warmup:   1,
			Validate: true,
		}
		simRes := Run(cfg)
		cfg.Backend = charm.RealBackend
		realRes := Run(cfg)

		if len(realRes.Errors) > 0 {
			t.Fatalf("%v: real backend errors: %v", mode, realRes.Errors)
		}
		if simRes.Overlap != realRes.Overlap {
			t.Errorf("%v: overlap differs: sim %v real %v", mode, simRes.Overlap, realRes.Overlap)
		}
		if simRes.Checksum != realRes.Checksum {
			t.Errorf("%v: checksum differs: sim %v real %v", mode, simRes.Checksum, realRes.Checksum)
		}
	}
}

// TestRealBackendPCOnly exercises the PC-only scope (the §5.2 arm
// broadcast path) on the real backend.
func TestRealBackendPCOnly(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     Ckd,
		Scope:    PCOnly,
		PEs:      2,
		NStates:  8,
		NPlanes:  2,
		Grain:    4,
		Points:   16,
		Steps:    2,
		Validate: true,
		Backend:  charm.RealBackend,
	}
	res := Run(cfg)
	if len(res.Errors) > 0 {
		t.Fatalf("real backend errors: %v", res.Errors)
	}
	if res.Checksum == 0 {
		t.Fatal("validate-mode checksum unexpectedly zero")
	}
}
