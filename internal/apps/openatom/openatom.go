// Package openatom implements a proxy for the paper's production study
// (§5): the OpenAtom Car-Parrinello code's PairCalculator phase, which is
// the part the authors accelerated with CkDirect.
//
// The proxy reproduces the structure that makes the study interesting:
//
//   - GS(s, p): a 2-D chare array of electronic states decomposed into
//     planes; each element owns a vector of complex plane-wave
//     coefficients.
//   - PC(b1, b2, p): PairCalculator chares, one per ordered pair of state
//     blocks per plane. Each PC assembles the coefficient vectors of the
//     states in its two blocks, multiplies them into an overlap block
//     (DGEMM), and contributes to the orthonormalization reduction.
//   - The GS→PC point transfer — repeated every step, fixed size, fixed
//     partners, sender and receiver always on the same iteration — is the
//     communication that CkDirect replaces (§5.1). A CkDirect callback
//     counts arrived states and enqueues the multiply as a Charm++ entry
//     method once all have landed, exactly as described in the paper.
//   - The backward path (corrected data PC→GS) and all other phases stay
//     on regular messages in every variant, as in the paper.
//
// Variants: Msg (baseline), Ckd (ReadyMark after the multiply +
// ReadyPollQ at the end of the phase before the PairCalculator — the
// §5.2 fix), and CkdNaive (plain Ready right after the multiply, which
// leaves thousands of handles in the polling queues across unrelated
// phases — the pathology that initially made CkDirect *slower* than
// messaging).
//
// Scope: FullStep simulates a whole time step including a non-PC phase
// (an FFT/transpose proxy); PCOnly disables everything except the
// PairCalculator phases while retaining all PC-related communication,
// matching the paper's "PC" curves in Figures 4 and 5.
package openatom

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the GS→PC transport.
type Mode int

// Transport variants.
const (
	Msg Mode = iota
	Ckd
	CkdNaive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Msg:
		return "msg"
	case Ckd:
		return "ckd"
	case CkdNaive:
		return "ckd-naive"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Scope selects full-step or PairCalculator-only simulation.
type Scope int

// Scopes.
const (
	FullStep Scope = iota
	PCOnly
)

// String names the scope.
func (s Scope) String() string {
	if s == FullStep {
		return "full"
	}
	return "pc-only"
}

// Config parameterizes an OpenAtom proxy run.
type Config struct {
	Platform *netmodel.Platform
	Mode     Mode
	Scope    Scope
	PEs      int
	// CoresPerNode overrides the platform node width (the paper's Abe
	// runs used 2 cores per node to isolate network effects). 0 keeps
	// the platform default.
	CoresPerNode int

	// NStates is the number of electronic states (paper benchmark: 1024;
	// proxy default 128). NPlanes decomposes each state. Grain is the
	// state-block edge of the PairCalculator decomposition. Points is
	// the number of complex coefficients per (state, plane).
	NStates, NPlanes, Grain, Points int

	// FFTWeight scales the non-PairCalculator phase's compute so the
	// full-step/PC-only balance matches the production code's profile
	// (the paper: the PC phases dominate, yet full-step gains are ~3x
	// smaller than PC-only gains because the rest of the step dilutes
	// them). Default 12.
	FFTWeight float64

	Steps, Warmup int
	Validate      bool
	// Backend selects simulated virtual time (default), real
	// goroutine-per-PE execution, or distributed multi-process execution,
	// both with wall-clock timing. The real and net backends always
	// allocate real payload buffers.
	Backend charm.Backend
	// Net is the started netrt node (required under the net backend).
	Net *netrt.Node
	// Timeline, when set, records Projections-style execution spans.
	Timeline *trace.Timeline
	// Chaos, when set, runs the configuration under adversity (CPU noise,
	// network faults, recovery machinery). Contract violations then land
	// in Result.Errors instead of panicking.
	Chaos *chaos.Scenario
}

func (c *Config) fillDefaults() {
	if c.NStates == 0 {
		c.NStates = 128
	}
	if c.NPlanes == 0 {
		c.NPlanes = 8
	}
	if c.Grain == 0 {
		c.Grain = c.NStates / 4
	}
	if c.Points == 0 {
		c.Points = 512
	}
	if c.Steps == 0 {
		c.Steps = 2
	}
	if c.FFTWeight == 0 {
		c.FFTWeight = 12
	}
	if c.NStates%c.Grain != 0 {
		panic(fmt.Sprintf("openatom: NStates %d not divisible by Grain %d", c.NStates, c.Grain))
	}
}

// Result reports the measured step time and validation data.
type Result struct {
	Config
	StepTime sim.Time
	Overlap  float64 // last step's global overlap reduction value
	// Checksum sums the final GS coefficients this process hosts
	// (validate mode); under sim and real that is every element.
	Checksum float64
	// Field holds one coefficient sum per (state, plane) element in
	// linearized order, NaN for elements this process does not host
	// (validate mode) — the cross-rank comparison vector.
	Field       []float64
	Channels    int // CkDirect channels created (0 for Msg)
	TotalEvents uint64
	// Errors holds runtime contract violations and unrecovered faults
	// (chaos runs only; fault-free runs panic instead).
	Errors []error
	// Counters is the final trace-counter snapshot.
	Counters map[string]int64
}

// Improvement runs baseline and CkDirect variants and returns the
// percentage step-time improvement (Figures 4 and 5).
func Improvement(cfg Config) (msg, ckd Result, pct float64) {
	cfg.Mode = Msg
	msg = Run(cfg)
	cfg.Mode = Ckd
	ckd = Run(cfg)
	pct = (1 - float64(ckd.StepTime)/float64(msg.StepTime)) * 100
	return
}

// testPostBuild, when set (tests), runs after the arrays and channels are
// built and before the simulation starts — used to attach observers like
// the CkDirect channel learner.
var testPostBuild func(rts *charm.RTS)

// Run executes one configuration.
func Run(cfg Config) Result {
	cfg.fillDefaults()
	if cfg.PEs <= 0 {
		panic("openatom: PEs must be positive")
	}
	if cfg.Backend != charm.SimBackend {
		if cfg.Chaos != nil {
			panic("openatom: chaos scenarios are sim-only")
		}
		if cfg.Timeline != nil {
			panic("openatom: timeline recording is sim-only")
		}
	}
	if cfg.Backend == charm.NetBackend && cfg.Net == nil {
		panic("openatom: net backend needs Config.Net (a started netrt node)")
	}
	eng := sim.NewEngine()
	plat := cfg.Platform
	cores := plat.CoresPerNode
	if cfg.CoresPerNode > 0 {
		cores = cfg.CoresPerNode
	}
	mach, net := buildMachine(eng, plat, cfg.PEs, cores)
	rts := charm.NewRTS(eng, mach, net, plat, trace.NewRecorder(),
		charm.Options{
			Checked:         true,
			VirtualPayloads: !cfg.Validate && cfg.Backend == charm.SimBackend,
			Backend:         cfg.Backend,
			Net:             cfg.Net,
		})

	if cfg.Timeline != nil {
		rts.SetTimeline(cfg.Timeline)
	}
	a := &app{cfg: cfg, rts: rts}
	if cfg.Mode != Msg {
		a.mgr = ckdirect.NewManager(rts)
	}
	cfg.Chaos.Apply(rts, a.mgr)
	a.build()
	if testPostBuild != nil {
		testPostBuild(rts)
	}
	a.start()
	rts.Run()
	errs := rts.Errors()
	if len(errs) > 0 && cfg.Chaos == nil && cfg.Backend != charm.NetBackend {
		// Under net, failures (including a dead peer's NetError) return
		// through Result.Errors — the launcher decides, not a panic.
		panic(fmt.Sprintf("openatom: runtime contract violation: %v", errs[0]))
	}
	if cfg.Backend == charm.NetBackend && !rts.HostsPE(0) {
		// A worker process: step times and the overlap live on PE 0's
		// rank. Report what this rank knows — its hosted elements'
		// coefficient sums (the rest NaN).
		res := Result{
			Config: cfg, Channels: a.channels,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
		if cfg.Validate && len(errs) == 0 {
			res.Field = a.gather()
			res.Checksum = a.checksum()
		}
		return res
	}
	want := cfg.Warmup + cfg.Steps + 1
	if len(a.stepTimes) < want {
		if len(errs) == 0 {
			if cfg.Chaos == nil {
				panic(fmt.Sprintf("openatom: only %d/%d steps completed", len(a.stepTimes), want))
			}
			errs = []error{chaos.StallError(rts.Recorder().Counters(),
				fmt.Sprintf("%d/%d steps", len(a.stepTimes), want))}
		}
		return Result{
			Config: cfg,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
	}
	measured := a.stepTimes[cfg.Warmup+cfg.Steps] - a.stepTimes[cfg.Warmup]
	res := Result{
		Config:      cfg,
		StepTime:    measured / sim.Time(cfg.Steps),
		Overlap:     a.lastOverlap,
		Checksum:    a.checksum(),
		Channels:    a.channels,
		TotalEvents: rts.Executed(),
		Errors:      errs,
		Counters:    rts.Recorder().Counters(),
	}
	if cfg.Validate {
		res.Field = a.gather()
	}
	return res
}

func buildMachine(eng *sim.Engine, plat *netmodel.Platform, pes, cores int) (*machine.Machine, *netmodel.Net) {
	nodes := (pes + cores - 1) / cores
	m := machine.New(eng, machine.Config{
		PEs:          pes,
		CoresPerNode: cores,
		Topology:     plat.TopologyFor(nodes),
	})
	return m, netmodel.NewNet(eng, m, plat.PerHopUS, plat.IntraNodeFactor)
}
