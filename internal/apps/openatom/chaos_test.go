package openatom

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/netmodel"
)

// chaosRun executes a validate-mode PairCalculator phase under adversity.
// OpenAtom is the heaviest CkDirect user in the repo (hundreds of
// channels, ReadyMark/ReadyPollQ split across phases), so it exercises
// the watchdog's interaction with deferred detection.
func chaosRun(t *testing.T, sc *chaos.Scenario, mode Mode) Result {
	t.Helper()
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		Scope:    PCOnly,
		PEs:      8,
		NStates:  16, NPlanes: 2, Grain: 4, Points: 32,
		Steps: 2, Warmup: 1,
		Validate: true,
		Chaos:    sc,
	})
	if sc != nil && len(res.Errors) > 0 {
		t.Fatalf("mode %v: chaos run failed to recover: %v", mode, res.Errors[0])
	}
	return res
}

// TestChaosFaultsDoNotChangeChecksum drops 1% of all transfers under CPU
// noise with recovery on; the coefficient checksum must match the quiet
// baseline exactly in both transports.
func TestChaosFaultsDoNotChangeChecksum(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, nil, Msg)
	for seed := uint64(1); seed <= 3; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, chaos.Hostile(seed, 0.01), mode)
			if got.Checksum != base.Checksum {
				t.Fatalf("seed %d mode %v: faults changed the checksum (%g != %g)",
					seed, mode, got.Checksum, base.Checksum)
			}
			if got.Overlap != base.Overlap {
				t.Fatalf("seed %d mode %v: faults changed the overlap reduction (%g != %g)",
					seed, mode, got.Overlap, base.Overlap)
			}
		}
	}
}

func TestChaosNoiseDoesNotChangeChecksum(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, nil, Msg)
	for seed := uint64(1); seed <= 3; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, chaos.NoiseOnly(seed), mode)
			if got.Checksum != base.Checksum {
				t.Fatalf("seed %d mode %v: noise changed the checksum (%g != %g)",
					seed, mode, got.Checksum, base.Checksum)
			}
		}
	}
}
