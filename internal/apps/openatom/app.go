package openatom

import (
	"encoding/binary"
	"math"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/machine"
	"repro/internal/sim"
)

const oobPattern uint64 = 0x7FF8A70A70A70001

// Step driver phases for the GS-array reduction client.
const (
	phaseA    = iota // FFT/transpose proxy finished -> start PC phase
	phaseStep        // backward path finished -> step boundary
)

type app struct {
	cfg Config
	rts *charm.RTS
	mgr *ckdirect.Manager

	gs, pc  *charm.Array
	nblocks int

	// GS entry points.
	phaseAEP, ringEP, sendPtsEP, backEP charm.EP
	// PC entry points.
	pointsEP, armEP, correctionEP charm.EP

	stepTimes   []sim.Time
	lastOverlap float64
	channels    int
	totalSteps  int
	phase       int
	lambda      float64
}

type gsChare struct {
	app  *app
	s, p int
	pe   int

	coeffs  []float64 // 2*Points reals (validate mode)
	sendBuf []byte
	sendReg *machine.Region
	out     []*ckdirect.Handle // one per destination PC

	ringGot int
	backGot int
}

// Pup checkpoints the GS element's state: the coefficient vector. The
// send staging buffer is re-encoded each step, and the phase counters
// are zero at every step boundary.
func (g *gsChare) Pup(p charm.Puper) {
	p.Float64s(&g.coeffs)
}

type pcChare struct {
	app       *app
	b1, b2, p int
	pe        int

	expected int
	got      int
	// Per-state staging: left[i] receives block-b1 state i's vector,
	// right[j] block b2's. On the diagonal the same arrival serves both.
	left, right [][]byte
	in          []*ckdirect.Handle

	overlap float64
}

// Pup checkpoints the PairCalculator's state: its overlap partial. The
// per-state staging slices are re-filled by the next step's arrivals,
// and expected/got are zero at every step boundary.
func (c *pcChare) Pup(p charm.Puper) {
	p.Float64(&c.overlap)
}

func (a *app) transferBytes() int { return a.cfg.Points * 16 }

func (a *app) build() {
	cfg := &a.cfg
	a.nblocks = cfg.NStates / cfg.Grain
	a.totalSteps = cfg.Warmup + cfg.Steps + 1
	a.lambda = 1

	totalGS := cfg.NStates * cfg.NPlanes
	a.gs = a.rts.NewArray("gs", func(ix charm.Index) int {
		lin := ix[0]*cfg.NPlanes + ix[1]
		return lin * cfg.PEs / totalGS
	})
	totalPC := a.nblocks * a.nblocks * cfg.NPlanes
	a.pc = a.rts.NewArray("pc", func(ix charm.Index) int {
		lin := (ix[0]*a.nblocks+ix[1])*cfg.NPlanes + ix[2]
		return lin * cfg.PEs / totalPC
	})

	for s := 0; s < cfg.NStates; s++ {
		for p := 0; p < cfg.NPlanes; p++ {
			g := &gsChare{app: a, s: s, p: p}
			g.pe = a.gs.PEOf(charm.Idx2(s, p))
			if cfg.Validate {
				g.coeffs = make([]float64, 2*cfg.Points)
				for i := range g.coeffs {
					g.coeffs[i] = seedCoeff(s, p, i)
				}
			}
			if cfg.Validate || cfg.Backend != charm.SimBackend {
				// The live backends move actual bytes even in model mode,
				// so the send buffer must exist.
				g.sendBuf = make([]byte, a.transferBytes())
			}
			a.gs.Insert(charm.Idx2(s, p), g)
		}
	}
	for b1 := 0; b1 < a.nblocks; b1++ {
		for b2 := 0; b2 < a.nblocks; b2++ {
			for p := 0; p < cfg.NPlanes; p++ {
				c := &pcChare{app: a, b1: b1, b2: b2, p: p}
				c.pe = a.pc.PEOf(charm.Idx3(b1, b2, p))
				c.expected = 2 * cfg.Grain
				if b1 == b2 {
					c.expected = cfg.Grain
				}
				c.left = make([][]byte, cfg.Grain)
				c.right = make([][]byte, cfg.Grain)
				a.pc.Insert(charm.Idx3(b1, b2, p), c)
			}
		}
	}

	a.registerGSEntries()
	a.registerPCEntries()
	if cfg.Mode != Msg {
		a.buildChannels()
	}
}

// destinations lists the PCs a GS state feeds: every PC whose left block
// is the state's block, plus every PC whose right block is (excluding the
// diagonal double-count).
func (a *app) destinations(s, p int) []charm.Index {
	bs := s / a.cfg.Grain
	var out []charm.Index
	for b2 := 0; b2 < a.nblocks; b2++ {
		out = append(out, charm.Idx3(bs, b2, p))
	}
	for b1 := 0; b1 < a.nblocks; b1++ {
		if b1 != bs {
			out = append(out, charm.Idx3(b1, bs, p))
		}
	}
	return out
}

func (a *app) registerGSEntries() {
	a.phaseAEP = a.gs.EntryMethod("phaseA", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*gsChare).phaseA(ctx)
	})
	a.ringEP = a.gs.EntryMethod("ring", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*gsChare).onRing(ctx)
	})
	a.sendPtsEP = a.gs.EntryMethod("sendPoints", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*gsChare).sendPoints(ctx)
	})
	a.backEP = a.gs.EntryMethod("back", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*gsChare).onBack(ctx, msg)
	})
	a.gs.SetReductionClient(charm.Sum, func(ctx *charm.Ctx, vals []float64) {
		a.onGSBarrier(ctx)
	})
}

func (a *app) registerPCEntries() {
	a.pointsEP = a.pc.EntryMethod("points", func(ctx *charm.Ctx, msg *charm.Message) {
		c := ctx.Obj().(*pcChare)
		c.onPoints(ctx, msg.Tag, msg.Data)
	})
	a.armEP = a.pc.EntryMethod("arm", func(ctx *charm.Ctx, msg *charm.Message) {
		c := ctx.Obj().(*pcChare)
		for _, h := range c.in {
			// On the very first step the handles are still armed from
			// creation, and a fast put may already have fired a callback
			// before this broadcast was dispatched; only handles the
			// application has released (or that never fired) resume
			// polling here.
			if h.State() != ckdirect.Fired {
				a.mgr.ReadyPollQ(h)
			}
		}
	})
	a.correctionEP = a.pc.EntryMethod("correction", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*pcChare).onCorrection(ctx, msg.Val)
	})
	a.pc.SetReductionClient(charm.Sum, func(ctx *charm.Ctx, vals []float64) {
		a.onOrtho(ctx, vals[0])
	})
}

// buildChannels creates one CkDirect channel per (GS element, destination
// PC): the PC owns the receive buffer for that state's vector; the GS
// element's single send buffer is associated with all its channels.
func (a *app) buildChannels() {
	mach := a.rts.Machine()
	cfg := &a.cfg
	virtual := !cfg.Validate && cfg.Backend == charm.SimBackend
	bytes := a.transferBytes()

	for s := 0; s < cfg.NStates; s++ {
		for p := 0; p < cfg.NPlanes; p++ {
			g := a.gs.Obj(charm.Idx2(s, p)).(*gsChare)
			if virtual {
				g.sendReg = mach.AllocRegion(g.pe, bytes, true)
			} else {
				g.sendReg = mach.WrapRegion(g.pe, g.sendBuf)
			}
			for _, dst := range a.destinations(s, p) {
				c := a.pc.Obj(dst).(*pcChare)
				var reg *machine.Region
				var backing []byte
				if virtual {
					reg = mach.AllocRegion(c.pe, bytes, true)
				} else {
					backing = make([]byte, bytes)
					reg = mach.WrapRegion(c.pe, backing)
				}
				cc, ss := c, s
				h, err := a.mgr.CreateHandle(c.pe, reg, oobPattern, func(ctx *charm.Ctx) {
					cc.onArrival(ctx, ss, backing)
				})
				if err != nil {
					panic(err)
				}
				c.slotFor(s, backing)
				c.in = append(c.in, h)
				if err := a.mgr.AssocLocal(h, g.pe, g.sendReg); err != nil {
					panic(err)
				}
				g.out = append(g.out, h)
				a.channels++
			}
		}
	}
}

// slotFor records where state s's vector lands in this PC's assembly.
func (c *pcChare) slotFor(s int, backing []byte) {
	g := c.app.cfg.Grain
	if s/g == c.b1 {
		c.left[s%g] = backing
	}
	if s/g == c.b2 {
		c.right[s%g] = backing
	}
}

func (a *app) start() {
	a.rts.StartAt(0, func(ctx *charm.Ctx) {
		a.beginStep(ctx)
	})
}

// beginStep launches one time step.
func (a *app) beginStep(ctx *charm.Ctx) {
	if a.cfg.Scope == FullStep {
		a.phase = phaseA
		ctx.Broadcast(a.gs, a.phaseAEP, &charm.Message{Size: 8})
		return
	}
	a.beginPCPhase(ctx)
}

// beginPCPhase is "the end of the phase prior to the PairCalculator": in
// the optimized variant the PC handles resume polling here (§5.2), then
// the GS elements ship their points.
func (a *app) beginPCPhase(ctx *charm.Ctx) {
	a.phase = phaseStep
	if a.cfg.Mode == Ckd && a.mgr.UsesPolling() {
		// Resume polling the PC channels only where polling exists; on
		// simulated Blue Gene/P the Ready calls have no effect (§2.2), so
		// the arm phase is skipped entirely. The real backend always polls
		// — the sentinel is its delivery mechanism — so it always arms.
		ctx.Broadcast(a.pc, a.armEP, &charm.Message{Size: 8})
	}
	ctx.Broadcast(a.gs, a.sendPtsEP, &charm.Message{Size: 8})
}

// onGSBarrier dispatches on the driver phase: the GS array's reduction is
// used both as the phase-A barrier and as the step barrier.
func (a *app) onGSBarrier(ctx *charm.Ctx) {
	switch a.phase {
	case phaseA:
		a.beginPCPhase(ctx)
	case phaseStep:
		a.stepTimes = append(a.stepTimes, ctx.Now())
		if len(a.stepTimes) < a.totalSteps {
			a.beginStep(ctx)
		}
	}
}

// ---- GS behaviour ----

// phaseA is the non-PairCalculator work proxy: FFT-like compute plus a
// plane-transpose message exchange.
func (g *gsChare) phaseA(ctx *charm.Ctx) {
	a := g.app
	n := float64(2 * a.cfg.Points)
	fftFlops := a.cfg.FFTWeight * 5 * n * math.Log2(n)
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * fftFlops))
	for _, dp := range []int{1, a.cfg.NPlanes - 1} {
		ctx.Send(a.gs, charm.Idx2(g.s, (g.p+dp)%a.cfg.NPlanes), a.ringEP, &charm.Message{
			Size: a.transferBytes(),
		})
	}
}

func (g *gsChare) onRing(ctx *charm.Ctx) {
	a := g.app
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.CopyPerByteNS * float64(a.transferBytes())))
	g.ringGot++
	if g.ringGot == 2 {
		g.ringGot = 0
		a.gs.ContributeFrom(charm.Idx2(g.s, g.p), 0)
	}
}

// sendPoints ships this element's coefficient vector to every
// PairCalculator that needs it — by message, or by one put per channel
// from the single associated send buffer.
func (g *gsChare) sendPoints(ctx *charm.Ctx) {
	a := g.app
	if a.cfg.Validate {
		encodeCoeffs(g.coeffs, g.sendBuf)
	}
	if a.cfg.Mode == Msg {
		for _, dst := range a.destinations(g.s, g.p) {
			ctx.Send(a.pc, dst, a.pointsEP, &charm.Message{
				Size: a.transferBytes(),
				Data: g.sendBuf,
				Tag:  g.s,
			})
		}
		return
	}
	for _, h := range g.out {
		if err := a.mgr.Put(h); err != nil {
			panic(err)
		}
	}
}

// onBack receives the corrected data returning from a PairCalculator.
func (g *gsChare) onBack(ctx *charm.Ctx, msg *charm.Message) {
	a := g.app
	g.backGot++
	if g.backGot == a.nblocks {
		g.backGot = 0
		// Apply the orthonormality correction to the local coefficients.
		ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * float64(2*a.cfg.Points)))
		if a.cfg.Validate {
			for i := range g.coeffs {
				g.coeffs[i] *= msg.Val
			}
		}
		a.gs.ContributeFrom(charm.Idx2(g.s, g.p), 0)
	}
}

// ---- PC behaviour ----

// onPoints is the message-transport arrival entry.
func (c *pcChare) onPoints(ctx *charm.Ctx, s int, data []byte) {
	a := c.app
	// The message version copies the points into the contiguous DGEMM
	// operand buffer (§5.1: "copies the points into a contiguous data
	// buffer and increments a counter").
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.CopyPerByteNS * float64(a.transferBytes())))
	if a.cfg.Validate {
		buf := make([]byte, len(data))
		copy(buf, data)
		c.slotFor(s, buf)
	}
	c.bump(ctx)
}

// onArrival is the CkDirect callback: a plain function call that only
// counts; no copy, no scheduler (§5.1).
func (c *pcChare) onArrival(ctx *charm.Ctx, s int, backing []byte) {
	c.bump(ctx)
}

func (c *pcChare) bump(ctx *charm.Ctx) {
	a := c.app
	c.got++
	if c.got < c.expected {
		return
	}
	c.got = 0
	// The multiply runs as an enqueued entry method (one scheduler
	// dispatch), exactly as the paper describes for the callback path;
	// for the message transport this is the natural continuation of the
	// final arrival entry.
	if a.cfg.Mode == Msg {
		c.multiply(ctx)
		return
	}
	ctx.EnqueueLocal(func(ctx *charm.Ctx) { c.multiply(ctx) })
}

func (c *pcChare) multiply(ctx *charm.Ctx) {
	a := c.app
	g := a.cfg.Grain
	flops := 2 * float64(g) * float64(g) * float64(2*a.cfg.Points)
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * flops))
	if a.cfg.Validate {
		// Σ_ij L_i·R_j == (Σ_i L_i)·(Σ_j R_j): the overlap-sum invariant
		// lets validation avoid the full O(g²·points) loop.
		sumL := sumVectors(c.left, 2*a.cfg.Points)
		sumR := sumVectors(c.right, 2*a.cfg.Points)
		c.overlap = dot(sumL, sumR)
	}
	// "After the multiply is complete, the CkDirect_Ready function is
	// called to prepare for the next iteration" (§5.1). Re-arming any
	// earlier would stamp the out-of-band NaN into live operand buffers.
	switch a.cfg.Mode {
	case CkdNaive:
		// Pathological pattern: resume polling immediately, keeping the
		// handles in the queue across every later phase (§5.2).
		for _, h := range c.in {
			a.mgr.Ready(h)
		}
	case Ckd:
		// Optimized pattern: mark now, poll again only when the next PC
		// phase begins.
		for _, h := range c.in {
			a.mgr.ReadyMark(h)
		}
	}
	a.pc.ContributeFrom(charm.Idx3(c.b1, c.b2, c.p), c.overlap)
}

// onOrtho runs on the PC reduction root: the orthonormalization solve
// proxy, then the correction broadcast.
func (a *app) onOrtho(ctx *charm.Ctx, total float64) {
	a.lastOverlap = total
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * float64(a.cfg.NStates) * float64(a.cfg.NStates)))
	scale := float64(a.cfg.NStates * a.cfg.NStates * a.cfg.Points)
	a.lambda = 1 / math.Sqrt(1+math.Abs(total)/scale*1e-3)
	ctx.Broadcast(a.pc, a.correctionEP, &charm.Message{Size: 16, Val: a.lambda})
}

// onCorrection applies the correction on a PC and returns the updated
// data to the left-block GS elements (regular messages in every variant,
// as in the paper).
func (c *pcChare) onCorrection(ctx *charm.Ctx, lambda float64) {
	a := c.app
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * float64(a.cfg.Grain) * float64(2*a.cfg.Points)))
	for i := 0; i < a.cfg.Grain; i++ {
		s := c.b1*a.cfg.Grain + i
		ctx.Send(a.gs, charm.Idx2(s, c.p), a.backEP, &charm.Message{
			Size: a.transferBytes(),
			Val:  lambda,
		})
	}
}

// checksum sums the GS coefficients this process hosts (validate mode).
// Under sim and real that is the whole array; under net each rank's
// non-hosted mirrors never execute and keep their seed values.
func (a *app) checksum() float64 {
	if !a.cfg.Validate {
		return 0
	}
	s := 0.0
	for st := 0; st < a.cfg.NStates; st++ {
		for p := 0; p < a.cfg.NPlanes; p++ {
			g := a.gs.Obj(charm.Idx2(st, p)).(*gsChare)
			if !a.rts.HostsPE(g.pe) {
				continue
			}
			for _, v := range g.coeffs {
				s += v
			}
		}
	}
	return s
}

// gather returns one coefficient sum per (state, plane) element in
// linearized order, NaN for elements this process does not host — the
// vector the cross-backend and cross-rank oracles compare bit for bit.
func (a *app) gather() []float64 {
	out := make([]float64, a.cfg.NStates*a.cfg.NPlanes)
	for st := 0; st < a.cfg.NStates; st++ {
		for p := 0; p < a.cfg.NPlanes; p++ {
			g := a.gs.Obj(charm.Idx2(st, p)).(*gsChare)
			lin := st*a.cfg.NPlanes + p
			if !a.rts.HostsPE(g.pe) {
				out[lin] = math.NaN()
				continue
			}
			s := 0.0
			for _, v := range g.coeffs {
				s += v
			}
			out[lin] = s
		}
	}
	return out
}

func seedCoeff(s, p, i int) float64 {
	return float64((s*131+p*17+i*7)%211)/211 - 0.5
}

func encodeCoeffs(coeffs []float64, out []byte) {
	for i, v := range coeffs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
}

func decodeAt(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func sumVectors(vecs [][]byte, n int) []float64 {
	out := make([]float64, n)
	for _, v := range vecs {
		for i := 0; i < n; i++ {
			out[i] += decodeAt(v, i)
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
