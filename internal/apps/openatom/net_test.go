package openatom

import (
	"math"
	"sync"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// netOracleConfig is the validated configuration the distributed
// equivalence test shares with the simulator oracle.
func netOracleConfig(mode Mode) Config {
	return Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		Scope:    FullStep,
		PEs:      4,
		NStates:  16,
		NPlanes:  2,
		Grain:    4,
		Points:   32,
		Steps:    2,
		Warmup:   1,
		Validate: true,
	}
}

// runNetWorld executes one configuration on every rank of an in-process
// world concurrently and returns the per-rank results.
func runNetWorld(t *testing.T, nodes []*netrt.Node, cfg Config) []Result {
	t.Helper()
	results := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = Run(c)
		}()
	}
	wg.Wait()
	return results
}

// TestNetBackendMatchesSim is the production-proxy distributed oracle:
// the same validated configuration on a live two-rank socket mesh —
// GS→PC point transfers over the wire, the lambda feedback through the
// orthonormalization reduction spanning ranks — must produce, element
// for element, the bit-identical coefficient sums the simulator
// produces. Each rank reports only its hosted elements (the rest NaN),
// and the union of the ranks must cover the whole GS array.
func TestNetBackendMatchesSim(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := netOracleConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.NetBackend
		results := runNetWorld(t, nodes, cfg)

		covered := make(map[int]bool)
		for rank, res := range results {
			if len(res.Errors) > 0 {
				t.Fatalf("%v rank %d: %v", mode, rank, res.Errors)
			}
			if len(res.Field) != len(simRes.Field) {
				t.Fatalf("%v rank %d: field size %d, sim %d", mode, rank, len(res.Field), len(simRes.Field))
			}
			for i, v := range res.Field {
				if math.IsNaN(v) {
					continue // not hosted by this rank
				}
				covered[i] = true
				if v != simRes.Field[i] {
					t.Fatalf("%v rank %d: element %d differs: net %v sim %v",
						mode, rank, i, v, simRes.Field[i])
				}
			}
		}
		if len(covered) != len(simRes.Field) {
			t.Errorf("%v: ranks covered %d of %d elements", mode, len(covered), len(simRes.Field))
		}
		// The overlap reduction value lives on rank 0 and must match too.
		if results[0].Overlap != simRes.Overlap {
			t.Errorf("%v: overlap differs: net %v sim %v", mode, results[0].Overlap, simRes.Overlap)
		}
	}
}
