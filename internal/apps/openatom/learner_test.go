package openatom

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/netmodel"
)

// TestLearnerDiscoversPairCalculatorFlows runs the message-based OpenAtom
// proxy under the CkDirect channel learner and checks that it discovers
// exactly the communication the paper chose to optimize: the GS→PC point
// transfers — stable size, stable partners, repeated every step — and
// none of the phase-A / backward / control traffic whose sizes or value
// make poor channels.
func TestLearnerDiscoversPairCalculatorFlows(t *testing.T) {
	var learner *ckdirect.Learner
	testPostBuild = func(rts *charm.RTS) {
		// The learner needs a manager even on a message-mode run.
		learner = ckdirect.NewLearner(ckdirect.NewManager(rts))
	}
	defer func() { testPostBuild = nil }()

	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     Msg,
		Scope:    PCOnly,
		PEs:      8,
		NStates:  16, NPlanes: 2, Grain: 4, Points: 512,
		Steps: 4, Warmup: 1,
	}
	Run(cfg)
	if learner == nil {
		t.Fatal("hook never ran")
	}
	sug := learner.Advise()
	if len(sug) == 0 {
		t.Fatal("learner found no channel-worthy flows in an iterative code")
	}
	pcFlows := 0
	for _, s := range sug {
		switch s.Array {
		case "pc":
			pcFlows++
			if s.Size != cfg.Points*16 {
				t.Fatalf("pc flow with size %d, want %d", s.Size, cfg.Points*16)
			}
		case "gs":
			// Backward path messages are also stable (same size every
			// step) — the learner may legitimately propose them; the
			// paper left them unoptimized for engineering reasons, not
			// because they are unstable.
		default:
			t.Fatalf("unexpected array in suggestion: %q", s.Array)
		}
	}
	if pcFlows == 0 {
		t.Fatal("learner missed the GS->PC point transfers entirely")
	}
	// Every suggested flow saw at least MinRepeats messages.
	for _, s := range sug {
		if s.Messages < 3 {
			t.Fatalf("suggestion with only %d messages: %+v", s.Messages, s)
		}
		if s.SavingPerMsg <= 0 {
			t.Fatalf("non-positive saving: %+v", s)
		}
	}
}
