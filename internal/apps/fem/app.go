package fem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/machine"
	"repro/internal/sim"
)

const oobPattern uint64 = 0x7FF8FE11FE110001

type app struct {
	cfg  Config
	mesh *Mesh
	part *Partition
	grid [2]int
	rts  *charm.RTS
	mgr  *ckdirect.Manager
	arr  *charm.Array
	ck   *charm.Checkpointer

	iterEP, partialEP, ckptEP charm.EP
	chares                    []*chare
	barriers                  []sim.Time
	lastResidual              float64
	totalIters                int
	channels                  int
}

// contributor identifies one source of a shared vertex's sum: the owning
// part (for ordering) and where to read the value.
type contributor struct {
	part int
	nb   int // -1 for the local partial
	slot int // index into the neighbour's shared-vertex list
}

type chare struct {
	app  *app
	part int
	pe   int

	elems  [][3]int // local connectivity, local vertex ids
	nVerts int
	gids   []int // local -> global vertex id
	deg    []float64

	u, acc []float64

	nbrs      []int         // neighbour parts, ascending
	sharedOut map[int][]int // per neighbour: shared verts as local ids
	plan      [][]contributor

	sendBuf map[int][]byte
	recvVal map[int][]float64
	in, out map[int]*ckdirect.Handle

	got  int
	sent bool
}

// Pup checkpoints the part's state: the vertex values. acc is
// per-iteration scratch, the staging buffers are re-filled on the next
// exchange, and got/sent are zero at every barrier cut.
func (c *chare) Pup(p charm.Puper) {
	p.Float64s(&c.u)
}

func (a *app) build() {
	a.totalIters = a.cfg.Warmup + a.cfg.Iters + 1
	parts := a.part.Parts
	a.arr = a.rts.NewArray("fem", func(ix charm.Index) int {
		return ix[0] * a.cfg.PEs / parts
	})

	for p := 0; p < parts; p++ {
		c := a.buildChare(p)
		a.chares = append(a.chares, c)
		a.arr.Insert(charm.Idx1(p), c)
	}

	a.iterEP = a.arr.EntryMethod("iterate", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*chare).iterate(ctx)
	})
	a.partialEP = a.arr.EntryMethod("partial", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*chare).onPartial(ctx, msg.Tag, msg.Data)
	})
	a.ckptEP = a.arr.EntryMethod("ckpt", func(ctx *charm.Ctx, msg *charm.Message) {
		// One element reaching the cut; the last local one writes this
		// rank's snapshot. The extra barrier round resumes iteration
		// only after every rank's snapshot is durable.
		a.ck.ElementSave(msg.Tag)
		a.arr.ContributeFrom(ctx.Index(), 1, 0)
	})
	a.arr.SetReductionClient(charm.Sum, func(ctx *charm.Ctx, vals []float64) {
		if a.ck != nil && a.ck.InCheckpoint() {
			// The checkpoint barrier completed: every rank's snapshot is
			// on disk, so the commit record may name the step.
			if _, err := a.ck.Commit(); err != nil {
				a.rts.ReportError(fmt.Errorf("fem: checkpoint commit: %w", err))
				return
			}
			a.afterBarrier(ctx, len(a.barriers))
			return
		}
		a.barriers = append(a.barriers, ctx.Now())
		a.lastResidual = vals[1]
		step := len(a.barriers)
		// The kill -9 chaos tier fires here: the root client is the one
		// place with a globally ordered step count.
		a.cfg.Kill.Fire(step, a.cfg.Net)
		if a.ck != nil && a.ck.Due(step) && step < a.totalIters {
			a.ck.Begin(step)
			ctx.Broadcast(a.arr, a.ckptEP, &charm.Message{Size: 8, Tag: step})
			return
		}
		a.afterBarrier(ctx, step)
	})
	if a.cfg.Mode == Ckd {
		a.buildChannels()
	}
}

// afterBarrier broadcasts the next iteration (or nothing, ending the
// run) once step barriers — iteration barriers, not checkpoint rounds —
// have completed.
func (a *app) afterBarrier(ctx *charm.Ctx, step int) {
	if step < a.totalIters {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	}
}

func (a *app) buildChare(p int) *chare {
	mesh, part := a.mesh, a.part
	c := &chare{app: a, part: p, pe: p * a.cfg.PEs / part.Parts}
	c.gids = part.PartVerts[p]
	c.nVerts = len(c.gids)
	lidx := make(map[int]int, c.nVerts)
	for l, g := range c.gids {
		lidx[g] = l
	}
	for _, e := range part.PartElems[p] {
		ge := mesh.Elems[e]
		c.elems = append(c.elems, [3]int{lidx[ge[0]], lidx[ge[1]], lidx[ge[2]]})
	}
	c.deg = make([]float64, c.nVerts)
	for l, g := range c.gids {
		c.deg[l] = float64(mesh.Degree[g])
	}
	if a.cfg.Validate {
		c.u = make([]float64, c.nVerts)
		for l, g := range c.gids {
			c.u[l] = seedVertex(g)
		}
		c.acc = make([]float64, c.nVerts)
	}
	c.nbrs = part.Neighbours(p)
	c.sharedOut = make(map[int][]int, len(c.nbrs))
	c.sendBuf = make(map[int][]byte, len(c.nbrs))
	c.recvVal = make(map[int][]float64, len(c.nbrs))
	for _, nb := range c.nbrs {
		shared := part.Shared[[2]int{p, nb}]
		locals := make([]int, len(shared))
		for i, g := range shared {
			locals[i] = lidx[g]
		}
		c.sharedOut[nb] = locals
		if a.cfg.Validate || a.cfg.Backend != charm.SimBackend {
			// The real and net backends move actual bytes even in model
			// mode, so the send buffers must exist.
			c.sendBuf[nb] = make([]byte, len(shared)*8)
		}
	}
	// Per-vertex combination plan: every contributing part in ascending
	// order, with the slot to read its partial from.
	c.plan = make([][]contributor, c.nVerts)
	for l, g := range c.gids {
		var cs []contributor
		cs = append(cs, contributor{part: p, nb: -1})
		for _, nb := range c.nbrs {
			shared := part.Shared[[2]int{p, nb}]
			if i := sort.SearchInts(shared, g); i < len(shared) && shared[i] == g {
				cs = append(cs, contributor{part: nb, nb: nb, slot: i})
			}
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].part < cs[j].part })
		c.plan[l] = cs
	}
	return c
}

// buildChannels wires one CkDirect channel per (part, neighbour) pair.
func (a *app) buildChannels() {
	mach := a.rts.Machine()
	virtual := !a.cfg.Validate && a.cfg.Backend == charm.SimBackend
	for _, c := range a.chares {
		c.in = make(map[int]*ckdirect.Handle, len(c.nbrs))
		c.out = make(map[int]*ckdirect.Handle, len(c.nbrs))
	}
	// Receivers create handles.
	for _, c := range a.chares {
		c := c
		for _, nb := range c.nbrs {
			nb := nb
			size := len(c.app.part.Shared[[2]int{nb, c.part}]) * 8
			var region *machine.Region
			var backing []byte
			if virtual {
				region = mach.AllocRegion(c.pe, size, true)
			} else {
				backing = make([]byte, size)
				region = mach.WrapRegion(c.pe, backing)
			}
			h, err := a.mgr.CreateHandle(c.pe, region, oobPattern, func(ctx *charm.Ctx) {
				c.onPartial(ctx, nb, backing)
			})
			if err != nil {
				panic(err)
			}
			c.in[nb] = h
			a.channels++
		}
	}
	// Senders associate.
	for _, c := range a.chares {
		for _, nb := range c.nbrs {
			peer := a.arr.Obj(charm.Idx1(nb)).(*chare)
			h := peer.in[c.part]
			size := len(c.sharedOut[nb]) * 8
			var region *machine.Region
			if virtual {
				region = mach.AllocRegion(c.pe, size, true)
			} else {
				region = mach.WrapRegion(c.pe, c.sendBuf[nb])
			}
			if err := a.mgr.AssocLocal(h, c.pe, region); err != nil {
				panic(err)
			}
			c.out[nb] = h
		}
	}
}

func (a *app) start() {
	a.rts.StartAt(0, func(ctx *charm.Ctx) {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	})
}

// iterate runs the local element accumulation and ships the boundary
// partials.
func (c *chare) iterate(ctx *charm.Ctx) {
	a := c.app
	// Charged per element: assembling and applying a 3x3 local stiffness
	// block (~60 flops) — the simulation's Laplacian kernel computes only
	// the data-dependence-relevant part of it.
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * 60 * float64(len(c.elems))))
	if a.cfg.Validate {
		for i := range c.acc {
			c.acc[i] = 0
		}
		for _, e := range c.elems {
			accLocal(c.u, c.acc, e)
		}
	}
	for _, nb := range c.nbrs {
		size := len(c.sharedOut[nb]) * 8
		if a.cfg.Validate {
			buf := c.sendBuf[nb]
			for i, l := range c.sharedOut[nb] {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(c.acc[l]))
			}
		}
		if a.cfg.Mode == Msg {
			ctx.Send(a.arr, charm.Idx1(nb), a.partialEP, &charm.Message{
				Size: size,
				Data: c.sendBuf[nb],
				Tag:  c.part,
			})
		} else {
			if err := a.mgr.Put(c.out[nb]); err != nil {
				panic(err)
			}
		}
	}
	c.sent = true
	c.maybeUpdate(ctx)
}

func accLocal(u, acc []float64, elem [3]int) {
	for i := 0; i < 3; i++ {
		x, y := elem[i], elem[(i+1)%3]
		acc[x] += u[y] - u[x]
		acc[y] += u[x] - u[y]
	}
}

// onPartial records a neighbour's boundary partial.
func (c *chare) onPartial(ctx *charm.Ctx, nb int, data []byte) {
	if c.app.cfg.Validate {
		vals := make([]float64, len(data)/8)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		c.recvVal[nb] = vals
	}
	c.got++
	c.maybeUpdate(ctx)
}

// maybeUpdate applies the explicit step once the local accumulation is
// done (sent) and every neighbour partial has arrived; partials combine
// in ascending part order so every part holds bit-identical shared
// values.
func (c *chare) maybeUpdate(ctx *charm.Ctx) {
	a := c.app
	if !c.sent || c.got < len(c.nbrs) {
		return
	}
	c.sent = false
	c.got = 0
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * 3 * float64(c.nVerts)))
	residual := 0.0
	if a.cfg.Validate {
		for l := 0; l < c.nVerts; l++ {
			sum := 0.0
			for _, contrib := range c.plan[l] {
				if contrib.nb < 0 {
					sum += c.acc[l]
				} else {
					sum += c.recvVal[contrib.nb][contrib.slot]
				}
			}
			delta := a.cfg.DT * sum / c.deg[l]
			c.u[l] += delta
			residual += math.Abs(delta)
		}
	}
	if a.cfg.Mode == Ckd {
		for _, nb := range c.nbrs {
			a.mgr.Ready(c.in[nb])
		}
	}
	a.arr.ContributeFrom(charm.Idx1(c.part), 1, residual)
}

// gather assembles the global vertex field (every part holds identical
// values for shared vertices, asserted by tests). Under the net backend
// only hosted parts hold live data; the other vertices are marked NaN
// so a comparison cannot silently pass on never-computed values.
func (a *app) gather() []float64 {
	out := make([]float64, a.mesh.NumVerts)
	seen := make([]bool, a.mesh.NumVerts)
	if a.cfg.Backend == charm.NetBackend {
		for i := range out {
			out[i] = math.NaN()
		}
	}
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		for l, g := range c.gids {
			if !seen[g] {
				seen[g] = true
				out[g] = c.u[l]
			}
		}
	}
	return out
}

// sharedConsistent verifies that every part holds the same value for
// every shared vertex (tests). Under the net backend the check covers
// the hosted parts — a remote part's copy is checked by its own rank
// against the same serial reference.
func (a *app) sharedConsistent() bool {
	vals := make(map[int]float64)
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		for l, g := range c.gids {
			if v, ok := vals[g]; ok {
				if v != c.u[l] {
					return false
				}
			} else {
				vals[g] = c.u[l]
			}
		}
	}
	return true
}

// validateLocal checks the hosted parts' vertex values against the
// serial reference — the distributed backend's validation path, where
// no single process holds the whole field but every process shares the
// oracle.
func (a *app) validateLocal() []error {
	ref := SerialReference(a.mesh, a.part, a.cfg.DT, a.totalIters)
	var errs []error
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		for l, g := range c.gids {
			if c.u[l] != ref[g] {
				errs = append(errs, fmt.Errorf(
					"fem: part %d vertex %d = %v, serial reference %v",
					c.part, g, c.u[l], ref[g]))
				if len(errs) >= 5 {
					return errs
				}
			}
		}
	}
	return errs
}
