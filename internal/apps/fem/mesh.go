// Package fem implements a supplementary application from the paper's
// motivating class (§1: "QM/MM, non-adaptive finite element simulations,
// etc." — the kind of code ParFUM [9] hosts): an explicit solver on an
// unstructured 2-D triangle mesh, partitioned across chares, with the
// per-iteration shared-vertex exchange done either with Charm++ messages
// or with CkDirect channels.
//
// Unlike the stencil, the communication graph is irregular: partitions
// have different neighbour counts, and channel payloads range from a
// single corner vertex (8 bytes) to a full partition edge. The pattern is
// still static and iteration-synchronized — exactly CkDirect's target.
package fem

import "sort"

// Mesh is an unstructured triangle mesh: element -> vertex connectivity.
// It is generated from a structured quad grid (two triangles per quad),
// but nothing downstream exploits the regularity.
type Mesh struct {
	NumVerts int
	// Elems is the connectivity: each element lists its 3 vertices.
	Elems [][3]int
	// Degree counts, per vertex, the total number of (element, edge)
	// incidences — the normalization of the update rule.
	Degree []int
}

// NewRectMesh triangulates an nx x ny quad grid into 2*nx*ny elements
// over (nx+1)*(ny+1) vertices.
func NewRectMesh(nx, ny int) *Mesh {
	vid := func(i, j int) int { return j*(nx+1) + i }
	m := &Mesh{NumVerts: (nx + 1) * (ny + 1)}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a, b := vid(i, j), vid(i+1, j)
			c, d := vid(i, j+1), vid(i+1, j+1)
			m.Elems = append(m.Elems, [3]int{a, b, c}, [3]int{b, d, c})
		}
	}
	m.Degree = make([]int, m.NumVerts)
	for _, e := range m.Elems {
		for _, v := range e {
			m.Degree[v] += 2 // two edges of each incident element touch v
		}
	}
	return m
}

// Partition assigns each element to one of gx*gy parts by the grid
// position of its quad (elements come in pairs per quad).
type Partition struct {
	Parts int
	// Owner[e] is the part owning element e.
	Owner []int
	// PartElems lists each part's elements in global order.
	PartElems [][]int
	// PartVerts lists, per part, the global ids of every vertex any of
	// its elements touch (sorted).
	PartVerts [][]int
	// Shared lists, for each ordered part pair that shares vertices, the
	// sorted shared vertex ids.
	Shared map[[2]int][]int
}

// PartitionRect partitions the NewRectMesh(nx, ny) element order into a
// gx x gy block grid.
func PartitionRect(m *Mesh, nx, ny, gx, gy int) *Partition {
	p := &Partition{
		Parts:     gx * gy,
		Owner:     make([]int, len(m.Elems)),
		PartElems: make([][]int, gx*gy),
		PartVerts: make([][]int, gx*gy),
		Shared:    make(map[[2]int][]int),
	}
	for e := range m.Elems {
		quad := e / 2
		qi, qj := quad%nx, quad/nx
		pi := qi * gx / nx
		pj := qj * gy / ny
		part := pj*gx + pi
		p.Owner[e] = part
		p.PartElems[part] = append(p.PartElems[part], e)
	}
	// Vertex -> set of touching parts.
	touch := make(map[int][]int) // vertex -> sorted unique parts
	for e, elem := range m.Elems {
		part := p.Owner[e]
		for _, v := range elem {
			parts := touch[v]
			found := false
			for _, q := range parts {
				if q == part {
					found = true
					break
				}
			}
			if !found {
				touch[v] = append(parts, part)
			}
		}
	}
	seenVert := make([]map[int]bool, p.Parts)
	for i := range seenVert {
		seenVert[i] = make(map[int]bool)
	}
	for v := 0; v < m.NumVerts; v++ {
		parts := touch[v]
		sort.Ints(parts)
		for _, a := range parts {
			if !seenVert[a][v] {
				seenVert[a][v] = true
				p.PartVerts[a] = append(p.PartVerts[a], v)
			}
			for _, b := range parts {
				if a != b {
					key := [2]int{a, b}
					p.Shared[key] = append(p.Shared[key], v)
				}
			}
		}
	}
	for i := range p.PartVerts {
		sort.Ints(p.PartVerts[i])
	}
	for k := range p.Shared {
		sort.Ints(p.Shared[k])
	}
	return p
}

// Neighbours returns the sorted parts that share at least one vertex
// with part a.
func (p *Partition) Neighbours(a int) []int {
	var out []int
	for k := range p.Shared {
		if k[0] == a {
			out = append(out, k[1])
		}
	}
	sort.Ints(out)
	return out
}

// seedVertex is the deterministic initial condition shared with the
// serial reference.
func seedVertex(v int) float64 {
	return float64((v*137+29)%1009) / 1009
}

// SerialReference runs iters explicit diffusion steps on the whole mesh
// with the *same* summation contract as the distributed solver: the
// contributions to a vertex are combined in ascending part order
// (floating-point addition is commutative but not associative, so a
// fixed combination order is what lets every part hold bit-identical
// values for shared vertices — and lets validate-mode runs demand bit
// equality). A tolerance comparison against the naive global-order sum
// is in the tests.
func SerialReference(m *Mesh, p *Partition, dt float64, iters int) []float64 {
	u := make([]float64, m.NumVerts)
	for v := range u {
		u[v] = seedVertex(v)
	}
	for it := 0; it < iters; it++ {
		// Per-part partial accumulations, in part-local element order.
		partials := make([][]float64, p.Parts)
		for part := 0; part < p.Parts; part++ {
			acc := make([]float64, m.NumVerts)
			for _, e := range p.PartElems[part] {
				accumulateElement(u, acc, m.Elems[e])
			}
			partials[part] = acc
		}
		next := make([]float64, m.NumVerts)
		for v := 0; v < m.NumVerts; v++ {
			sum := 0.0
			for part := 0; part < p.Parts; part++ {
				if containsVert(p.PartVerts[part], v) {
					sum += partials[part][v]
				}
			}
			next[v] = u[v] + dt*sum/float64(m.Degree[v])
		}
		u = next
	}
	return u
}

// accumulateElement adds one element's edge contributions.
func accumulateElement(u, acc []float64, elem [3]int) {
	for i := 0; i < 3; i++ {
		a, b := elem[i], elem[(i+1)%3]
		acc[a] += u[b] - u[a]
		acc[b] += u[a] - u[b]
	}
}

// NaiveReference is the straightforward global-element-order solver used
// for the tolerance cross-check.
func NaiveReference(m *Mesh, dt float64, iters int) []float64 {
	u := make([]float64, m.NumVerts)
	for v := range u {
		u[v] = seedVertex(v)
	}
	for it := 0; it < iters; it++ {
		acc := make([]float64, m.NumVerts)
		for _, elem := range m.Elems {
			accumulateElement(u, acc, elem)
		}
		next := make([]float64, m.NumVerts)
		for v := range u {
			next[v] = u[v] + dt*acc[v]/float64(m.Degree[v])
		}
		u = next
	}
	return u
}

func containsVert(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
