package fem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
)

func TestMeshConstruction(t *testing.T) {
	m := NewRectMesh(3, 2)
	if m.NumVerts != 12 {
		t.Fatalf("verts = %d, want 12", m.NumVerts)
	}
	if len(m.Elems) != 12 {
		t.Fatalf("elems = %d, want 12", len(m.Elems))
	}
	for v, d := range m.Degree {
		if d <= 0 {
			t.Fatalf("vertex %d has degree %d", v, d)
		}
	}
	// Every element's vertices are distinct and in range.
	for e, elem := range m.Elems {
		if elem[0] == elem[1] || elem[1] == elem[2] || elem[0] == elem[2] {
			t.Fatalf("element %d degenerate: %v", e, elem)
		}
		for _, v := range elem {
			if v < 0 || v >= m.NumVerts {
				t.Fatalf("element %d vertex %d out of range", e, v)
			}
		}
	}
}

func TestPartitionCoversEverything(t *testing.T) {
	m := NewRectMesh(8, 6)
	p := PartitionRect(m, 8, 6, 4, 2)
	if p.Parts != 8 {
		t.Fatalf("parts = %d", p.Parts)
	}
	total := 0
	for _, es := range p.PartElems {
		total += len(es)
	}
	if total != len(m.Elems) {
		t.Fatalf("partition covers %d/%d elements", total, len(m.Elems))
	}
	// Shared lists are symmetric.
	for k, verts := range p.Shared {
		rev := p.Shared[[2]int{k[1], k[0]}]
		if len(rev) != len(verts) {
			t.Fatalf("asymmetric shared lists for %v", k)
		}
		for i := range verts {
			if verts[i] != rev[i] {
				t.Fatalf("shared lists differ for %v", k)
			}
		}
	}
	// Interior partitions of a 4x2 grid share corners diagonally: at
	// least one pair must share exactly one vertex.
	corner := false
	for _, verts := range p.Shared {
		if len(verts) == 1 {
			corner = true
		}
	}
	if !corner {
		t.Fatal("no corner-sharing pairs found — partition too coarse for the test")
	}
}

// TestSerialReferenceCloseToNaive: the part-ordered summation only
// reorders additions; the result must agree with the global-order solver
// to rounding.
func TestSerialReferenceCloseToNaive(t *testing.T) {
	m := NewRectMesh(12, 10)
	p := PartitionRect(m, 12, 10, 3, 2)
	a := SerialReference(m, p, 0.1, 6)
	b := NaiveReference(m, 0.1, 6)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("vertex %d: %g vs %g", v, a[v], b[v])
		}
	}
}

// TestDistributedMatchesSerialExactly: both transports reproduce the
// partition-ordered serial reference bit for bit, and every part holds
// identical shared-vertex values.
func TestDistributedMatchesSerialExactly(t *testing.T) {
	const nx, ny, iters = 12, 10, 4
	m := NewRectMesh(nx, ny)
	for _, mode := range []Mode{Msg, Ckd} {
		res := Run(Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			PEs:      4, Virtualization: 2,
			NX: nx, NY: ny,
			Iters: iters, Warmup: 0,
			Validate: true,
		})
		p := PartitionRect(m, nx, ny, res.PartGrid[0], res.PartGrid[1])
		ref := SerialReference(m, p, res.DT, iters+1)
		if len(res.Field) != len(ref) {
			t.Fatalf("%v: field size %d", mode, len(res.Field))
		}
		for v := range ref {
			if res.Field[v] != ref[v] {
				t.Fatalf("%v: vertex %d = %g, reference %g", mode, v, res.Field[v], ref[v])
			}
		}
		if !res.SharedConsistent {
			t.Fatalf("%v: parts disagree on shared vertices", mode)
		}
	}
}

// TestPropertyRandomMeshesMatch: random mesh shapes, partition grids and
// platforms all reproduce the reference exactly through both transports.
func TestPropertyRandomMeshesMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	prop := func(nxR, nyR, pesR, itersR uint8, onBGP bool) bool {
		nx := int(nxR)%12 + 4
		ny := int(nyR)%12 + 4
		pes := 1 << (int(pesR) % 3) // 1..4
		iters := int(itersR)%3 + 1
		plat := netmodel.AbeIB
		if onBGP {
			plat = netmodel.SurveyorBGP
		}
		cfg := Config{
			Platform: plat,
			PEs:      pes, Virtualization: 2,
			NX: nx, NY: ny,
			Iters: iters, Warmup: 0, Validate: true,
		}
		m := NewRectMesh(nx, ny)
		var want []float64
		for _, mode := range []Mode{Msg, Ckd} {
			cfg.Mode = mode
			res := Run(cfg)
			if !res.SharedConsistent {
				return false
			}
			if want == nil {
				p := PartitionRect(m, nx, ny, res.PartGrid[0], res.PartGrid[1])
				want = SerialReference(m, p, res.DT, iters+1)
			}
			for v := range want {
				if res.Field[v] != want[v] {
					t.Logf("mode %v %dx%d pes=%d iters=%d: mismatch at %d", mode, nx, ny, pes, iters, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCkdFasterThanMsg: the supplementary claim — CkDirect helps this
// class too (static, iteration-synchronized, irregular exchange).
func TestCkdFasterThanMsg(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		msg, ckd, pct := Improvement(Config{
			Platform: plat,
			PEs:      16, Virtualization: 4,
			NX: 256, NY: 256,
			Iters: 3, Warmup: 1,
		})
		if ckd.IterTime >= msg.IterTime {
			t.Errorf("%s: ckd %v >= msg %v", plat.Name, ckd.IterTime, msg.IterTime)
		}
		if pct <= 0 || pct > 60 {
			t.Errorf("%s: improvement %.1f%% implausible", plat.Name, pct)
		}
	}
}

func TestIrregularChannelSizes(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.AbeIB, Mode: Ckd,
		PEs: 4, Virtualization: 2,
		NX: 16, NY: 16,
		Iters: 1, Warmup: 0, Validate: true,
	})
	if res.Channels == 0 {
		t.Fatal("no channels built")
	}
	// A 2-D block partition must contain both edge-sharing and
	// corner-sharing neighbour pairs, i.e. channels of different sizes.
	m := NewRectMesh(16, 16)
	p := PartitionRect(m, 16, 16, res.PartGrid[0], res.PartGrid[1])
	sizes := map[int]bool{}
	for _, verts := range p.Shared {
		sizes[len(verts)] = true
	}
	if len(sizes) < 2 {
		t.Fatalf("only uniform shared sizes %v — want irregular", sizes)
	}
}

func TestResidualShrinks(t *testing.T) {
	short := Run(Config{
		Platform: netmodel.AbeIB, Mode: Msg, PEs: 2, Virtualization: 2,
		NX: 16, NY: 16, Iters: 1, Warmup: 0, Validate: true,
	})
	long := Run(Config{
		Platform: netmodel.AbeIB, Mode: Msg, PEs: 2, Virtualization: 2,
		NX: 16, NY: 16, Iters: 10, Warmup: 0, Validate: true,
	})
	if long.Residual >= short.Residual {
		t.Fatalf("diffusion residual did not shrink: %g -> %g", short.Residual, long.Residual)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		Platform: netmodel.SurveyorBGP, Mode: Ckd,
		PEs: 8, Virtualization: 2,
		NX: 64, NY: 64, Iters: 2, Warmup: 1,
	}
	a, b := Run(cfg), Run(cfg)
	if a.IterTime != b.IterTime || a.TotalEvents != b.TotalEvents {
		t.Fatalf("nondeterministic")
	}
}
