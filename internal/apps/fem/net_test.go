package fem

import (
	"math"
	"sync"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// netOracleConfig is the validated configuration the cross-backend
// equivalence tests share.
func netOracleConfig(mode Mode) Config {
	return Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4, Virtualization: 2,
		NX: 16, NY: 16,
		Iters:    3,
		Warmup:   1,
		Validate: true,
	}
}

// runNetWorld executes one fem configuration on every rank of an
// in-process world concurrently and returns the per-rank results.
func runNetWorld(t *testing.T, nodes []*netrt.Node, cfg Config) []Result {
	t.Helper()
	results := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = Run(c)
		}()
	}
	wg.Wait()
	return results
}

// TestNetBackendMatchesSim is the distributed acceptance oracle: the
// same validated configuration on a live two-rank socket mesh must
// produce, vertex for vertex, the bit-identical field the simulator
// produces. Each rank holds only its hosted parts' vertices (the rest
// is NaN in the gathered field), and the union of the ranks must cover
// the whole mesh.
func TestNetBackendMatchesSim(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := netOracleConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.NetBackend
		results := runNetWorld(t, nodes, cfg)

		covered := make(map[int]bool)
		for rank, res := range results {
			if len(res.Errors) > 0 {
				t.Fatalf("%v rank %d: %v", mode, rank, res.Errors)
			}
			if !res.SharedConsistent {
				t.Fatalf("%v rank %d: hosted parts disagree on shared vertices", mode, rank)
			}
			if len(res.Field) != len(simRes.Field) {
				t.Fatalf("%v rank %d: field size %d, sim %d", mode, rank, len(res.Field), len(simRes.Field))
			}
			for v, val := range res.Field {
				if math.IsNaN(val) {
					continue // not hosted by this rank
				}
				covered[v] = true
				if val != simRes.Field[v] {
					t.Fatalf("%v rank %d: field differs at vertex %d: net %v sim %v",
						mode, rank, v, val, simRes.Field[v])
				}
			}
		}
		if len(covered) != len(simRes.Field) {
			t.Errorf("%v: ranks covered %d of %d vertices", mode, len(covered), len(simRes.Field))
		}
	}
}
