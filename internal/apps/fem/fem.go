package fem

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the shared-vertex exchange transport.
type Mode int

// Transport variants.
const (
	Msg Mode = iota
	Ckd
)

// String names the mode.
func (m Mode) String() string {
	if m == Msg {
		return "msg"
	}
	return "ckd"
}

// Config parameterizes a run.
type Config struct {
	Platform *netmodel.Platform
	Mode     Mode
	PEs      int
	// NX, NY is the quad-grid resolution (2*NX*NY triangles).
	NX, NY int
	// Virtualization is the number of mesh partitions per PE.
	Virtualization int
	Iters, Warmup  int
	// DT is the explicit step size (default 0.1).
	DT float64
	// Validate moves real vertex data and checks against the serial
	// reference.
	Validate bool
	// Backend selects simulated virtual time (default), real
	// goroutine-per-PE execution, or distributed multi-process execution,
	// both with wall-clock timing. The real and net backends always
	// allocate real payload buffers.
	Backend charm.Backend
	// Net is the started netrt node (required under the net backend).
	Net *netrt.Node
	// Timeline, when set, records Projections-style execution spans.
	Timeline *trace.Timeline
	// Chaos, when set, runs the configuration under adversity (CPU noise,
	// network faults, recovery machinery). Contract violations then land
	// in Result.Errors instead of panicking.
	Chaos *chaos.Scenario
	// Ckpt enables coordinated checkpointing: every Ckpt.Every barriers
	// the world cuts a consistent snapshot, and a fresh Run resumes from
	// the newest committed one.
	Ckpt *charm.CkptOptions
	// Kill, when set, fires the kill -9 chaos tier from the root
	// reduction client after Kill.Step barriers.
	Kill *chaos.Kill
}

// Result reports timing and validation data.
type Result struct {
	Config
	Parts    int
	PartGrid [2]int
	IterTime sim.Time
	Residual float64
	Field    []float64 // final vertex values (validate mode)
	// SharedConsistent reports whether every part held bit-identical
	// values for shared vertices at the end (validate mode).
	SharedConsistent bool
	Channels         int
	TotalEvents      uint64
	// Errors holds runtime contract violations and unrecovered faults
	// (chaos runs only; fault-free runs panic instead).
	Errors []error
	// Counters is the final trace-counter snapshot (fault/retry
	// accounting; used by determinism regression tests).
	Counters map[string]int64
}

// Improvement runs both transports and returns the percentage gain.
func Improvement(cfg Config) (msg, ckd Result, pct float64) {
	cfg.Mode = Msg
	msg = Run(cfg)
	cfg.Mode = Ckd
	ckd = Run(cfg)
	pct = (1 - float64(ckd.IterTime)/float64(msg.IterTime)) * 100
	return
}

// partGrid factors parts into a near-square (gx, gy) that divides the
// quad grid.
func partGrid(want, nx, ny int) [2]int {
	g := [2]int{1, 1}
	for g[0]*g[1] < want {
		if (g[0] >= g[1] || g[0]*2 > nx) && g[1]*2 <= ny {
			g[1] *= 2
		} else if g[0]*2 <= nx {
			g[0] *= 2
		} else {
			break
		}
	}
	return g
}

// Run executes one FEM configuration.
func Run(cfg Config) Result {
	if cfg.PEs <= 0 {
		panic("fem: PEs must be positive")
	}
	if cfg.NX <= 0 || cfg.NY <= 0 {
		cfg.NX, cfg.NY = 128, 128
	}
	if cfg.Virtualization <= 0 {
		cfg.Virtualization = 4
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	if cfg.DT == 0 {
		cfg.DT = 0.1
	}
	grid := partGrid(cfg.PEs*cfg.Virtualization, cfg.NX, cfg.NY)
	mesh := NewRectMesh(cfg.NX, cfg.NY)
	part := PartitionRect(mesh, cfg.NX, cfg.NY, grid[0], grid[1])

	if cfg.Backend != charm.SimBackend {
		if cfg.Chaos != nil {
			panic("fem: chaos scenarios are sim-only")
		}
		if cfg.Timeline != nil {
			panic("fem: timeline recording is sim-only")
		}
	}
	if cfg.Backend == charm.NetBackend && cfg.Net == nil {
		panic("fem: net backend needs Config.Net (a started netrt node)")
	}
	eng := sim.NewEngine()
	mach, net := cfg.Platform.BuildMachine(eng, cfg.PEs)
	rts := charm.NewRTS(eng, mach, net, cfg.Platform, trace.NewRecorder(),
		charm.Options{
			Checked:         true,
			VirtualPayloads: !cfg.Validate && cfg.Backend == charm.SimBackend,
			Backend:         cfg.Backend,
			Net:             cfg.Net,
		})
	if cfg.Timeline != nil {
		rts.SetTimeline(cfg.Timeline)
	}
	a := &app{cfg: cfg, mesh: mesh, part: part, grid: grid, rts: rts}
	if cfg.Mode == Ckd {
		a.mgr = ckdirect.NewManager(rts)
	}
	cfg.Chaos.Apply(rts, a.mgr)
	a.build()
	if cfg.Ckpt.Enabled() {
		a.ck = charm.NewCheckpointer(rts, cfg.Ckpt)
		a.ck.Attach(a.arr)
		if a.mgr != nil {
			a.ck.SetRegionHooks(a.mgr)
		}
		// Roll back to the newest committed cut (a fresh run finds none
		// and starts from step zero). Restore happens after build: the
		// SPMD setup is identical to the checkpointed run's, so element
		// state overlays in place.
		step, err := a.ck.Restore()
		if err != nil {
			return Result{
				Config: cfg, Parts: part.Parts, PartGrid: grid,
				Errors:   []error{fmt.Errorf("fem: restore checkpoint: %w", err)},
				Counters: rts.Recorder().Counters(),
			}
		}
		a.barriers = make([]sim.Time, step)
	}
	a.start()
	rts.Run()
	errs := rts.Errors()
	if len(errs) > 0 && cfg.Chaos == nil && cfg.Backend != charm.NetBackend {
		// Under net, failures (including a dead peer's NetError) return
		// through Result.Errors — the launcher decides, not a panic.
		panic(fmt.Sprintf("fem: runtime contract violation: %v", errs[0]))
	}
	if cfg.Backend == charm.NetBackend && cfg.Validate && len(errs) == 0 {
		// Each process can check exactly the parts it hosts; the serial
		// reference is the shared oracle.
		errs = append(errs, a.validateLocal()...)
	}
	if cfg.Backend == charm.NetBackend && !rts.HostsPE(0) {
		// A worker process: barriers and timing live on PE 0's rank.
		// Local validation already ran; report what this rank knows — its
		// own parts' vertices (the rest NaN).
		res := Result{
			Config: cfg, Parts: part.Parts, PartGrid: grid,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
		if cfg.Validate && len(errs) == 0 {
			res.Field = a.gather()
			res.SharedConsistent = a.sharedConsistent()
		}
		return res
	}
	want := cfg.Warmup + cfg.Iters + 1
	if len(a.barriers) < want {
		if len(errs) == 0 {
			if cfg.Chaos == nil {
				panic(fmt.Sprintf("fem: only %d/%d iterations completed", len(a.barriers), want))
			}
			errs = []error{chaos.StallError(rts.Recorder().Counters(),
				fmt.Sprintf("%d/%d iterations", len(a.barriers), want))}
		}
		// A faulted run that lost work: hand back what is known instead of
		// tearing the process down — the caller decides based on Errors.
		return Result{
			Config: cfg, Parts: part.Parts, PartGrid: grid,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
	}
	measured := a.barriers[cfg.Warmup+cfg.Iters] - a.barriers[cfg.Warmup]
	res := Result{
		Config:      cfg,
		Parts:       part.Parts,
		PartGrid:    grid,
		IterTime:    measured / sim.Time(cfg.Iters),
		Residual:    a.lastResidual,
		Channels:    a.channels,
		TotalEvents: rts.Executed(),
		Errors:      errs,
		Counters:    rts.Recorder().Counters(),
	}
	if cfg.Validate {
		res.Field = a.gather()
		res.SharedConsistent = a.sharedConsistent()
	}
	return res
}
