package fem

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/charm"
)

// TestCharePupRoundTrip is the element-state property test: packing a
// part, unpacking into a fresh one, and repacking must reproduce the
// bytes and the state exactly, for arbitrary vertex values.
func TestCharePupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		src := &chare{u: make([]float64, rng.Intn(64))}
		for i := range src.u {
			src.u[i] = rng.NormFloat64()
		}
		var p charm.Packer
		src.Pup(&p)

		dst := &chare{}
		un := &charm.Unpacker{Buf: p.Buf}
		dst.Pup(un)
		if err := un.Err(); err != nil {
			t.Fatal(err)
		}
		if un.Rest() != 0 {
			t.Fatalf("trial %d: %d bytes left over", trial, un.Rest())
		}
		var p2 charm.Packer
		dst.Pup(&p2)
		if !bytes.Equal(p.Buf, p2.Buf) {
			t.Fatalf("trial %d: repack differs", trial)
		}
	}
}
