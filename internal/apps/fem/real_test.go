package fem

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
)

// TestRealBackendMatchesSim: the shared-vertex solver must produce a
// bit-identical vertex field on both backends, and every partition must
// hold bit-identical shared values (the plan-based deterministic combine
// is what makes this possible under concurrent arrival).
func TestRealBackendMatchesSim(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			PEs:      4,
			NX:       24, NY: 24,
			Virtualization: 2,
			Iters:          3,
			Warmup:         1,
			Validate:       true,
		}
		simRes := Run(cfg)
		cfg.Backend = charm.RealBackend
		realRes := Run(cfg)

		if len(realRes.Errors) > 0 {
			t.Fatalf("%v: real backend errors: %v", mode, realRes.Errors)
		}
		if !realRes.SharedConsistent {
			t.Errorf("%v: shared vertices inconsistent on the real backend", mode)
		}
		if simRes.Residual != realRes.Residual {
			t.Errorf("%v: residual differs: sim %v real %v", mode, simRes.Residual, realRes.Residual)
		}
		if len(simRes.Field) != len(realRes.Field) {
			t.Fatalf("%v: field sizes differ: %d vs %d", mode, len(simRes.Field), len(realRes.Field))
		}
		for i := range simRes.Field {
			if simRes.Field[i] != realRes.Field[i] {
				t.Fatalf("%v: field differs at vertex %d: sim %v real %v", mode, i, simRes.Field[i], realRes.Field[i])
			}
		}
	}
}
