package fem

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/netmodel"
)

// chaosRun executes a validate-mode FEM solve under the given adversity
// scenario. The unstructured halo exchange has irregular channel sizes
// and per-part neighbour counts, so it stresses orderings the regular
// stencil cannot.
func chaosRun(t *testing.T, mode Mode, sc *chaos.Scenario) Result {
	t.Helper()
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4, Virtualization: 2,
		NX: 9, NY: 7,
		Iters: 3, Warmup: 0, Validate: true,
		Chaos: sc,
	}
	res := Run(cfg)
	if sc != nil && len(res.Errors) > 0 {
		t.Fatalf("mode %v: chaos run failed to recover: %v", mode, res.Errors[0])
	}
	return res
}

// TestChaosFaultsDoNotChangePhysics is the FEM half of the acceptance
// scenario: 1% of all transfers dropped, plus CPU noise, with the
// reliability protocol and the recovering watchdog on. Both transports
// must still produce bit-exact vertex fields.
func TestChaosFaultsDoNotChangePhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, Msg, nil)
	for seed := uint64(1); seed <= 4; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, mode, chaos.Hostile(seed, 0.01))
			if !got.SharedConsistent {
				t.Fatalf("seed %d mode %v: shared vertices diverged under faults", seed, mode)
			}
			for i := range base.Field {
				if got.Field[i] != base.Field[i] {
					t.Fatalf("seed %d mode %v: faults changed the physics at vertex %d", seed, mode, i)
				}
			}
		}
	}
}

func TestChaosNoiseDoesNotChangePhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, Msg, nil).Field
	for seed := uint64(1); seed <= 4; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, mode, chaos.NoiseOnly(seed)).Field
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d mode %v: noise changed the physics at vertex %d", seed, mode, i)
				}
			}
		}
	}
}
