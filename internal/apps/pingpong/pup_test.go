package pingpong

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/charm"
)

// TestEndpointPupRoundTrip is the element-state property test: packing
// an endpoint, unpacking into a fresh one, and repacking must reproduce
// the bytes and the count exactly.
func TestEndpointPupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		src := &endpoint{Left: rng.Intn(1 << 20)}
		var p charm.Packer
		src.Pup(&p)

		dst := &endpoint{}
		u := &charm.Unpacker{Buf: p.Buf}
		dst.Pup(u)
		if err := u.Err(); err != nil {
			t.Fatal(err)
		}
		if u.Rest() != 0 || dst.Left != src.Left {
			t.Fatalf("trial %d: got %d (rest %d), want %d", trial, dst.Left, u.Rest(), src.Left)
		}
		var p2 charm.Packer
		dst.Pup(&p2)
		if !bytes.Equal(p.Buf, p2.Buf) {
			t.Fatalf("trial %d: repack differs", trial)
		}
	}
}
