package pingpong

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// runNetWorld executes one pingpong configuration on every rank of an
// in-process world concurrently, as the separate OS processes of a real
// launch would, and returns the per-rank results.
func runNetWorld(t *testing.T, nodes []*netrt.Node, cfg Config) []Result {
	t.Helper()
	results := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = Run(c)
		}()
	}
	wg.Wait()
	return results
}

// TestNetBackendPingPong runs both Charm-runtime modes across a live
// two-rank socket mesh, at an eager size and at a rendezvous size. The
// run itself verifies payload integrity on each hosting rank
// (checkPayload panics on corruption); one mesh is reused across all
// four runs, exercising run-generation turnover.
func TestNetBackendPingPong(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{CharmMsg, CkDirect} {
		for _, size := range []int{64, 4 * netrt.DefaultEagerMax} {
			results := runNetWorld(t, nodes, Config{
				Platform: netmodel.AbeIB,
				Mode:     mode,
				Size:     size,
				Iters:    25,
				Backend:  charm.NetBackend,
			})
			for rank, res := range results {
				if len(res.Errors) > 0 {
					t.Fatalf("%v size %d rank %d: %v", mode, size, rank, res.Errors)
				}
			}
			if results[0].RTT <= 0 {
				t.Fatalf("%v size %d: non-positive RTT %v", mode, size, results[0].RTT)
			}
			if results[1].RTT != 0 {
				t.Fatalf("%v size %d: worker rank reported an RTT", mode, size)
			}
		}
	}
}

// TestNetBackendPeerLossSurfacesNetError is the failure-path acceptance
// check: hard-killing the put-side peer's connection mid-run must
// surface a typed *netrt.NetError in the surviving rank's Result.Errors
// — not hang inside a termination detection that can never complete.
func TestNetBackendPeerLossSurfacesNetError(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	// Enough round trips that the run is still in flight when the wire
	// is cut ~30ms in (loopback trips are tens of microseconds).
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     CkDirect,
		Size:     4096,
		Iters:    200000,
		Backend:  charm.NetBackend,
	}
	kill := time.AfterFunc(30*time.Millisecond, func() { nodes[0].Sever(1) })
	defer kill.Stop()
	done := make(chan []Result, 1)
	go func() { done <- runNetWorld(t, nodes, cfg) }()
	var results []Result
	select {
	case results = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung after peer loss — the abort never reached quiescence")
	}
	if len(results[0].Errors) == 0 {
		t.Fatal("rank 0 reported no errors after losing its peer")
	}
	var ne *netrt.NetError
	for _, e := range results[0].Errors {
		if errors.As(e, &ne) {
			break
		}
	}
	if ne == nil {
		t.Fatalf("rank 0 errors carry no *netrt.NetError: %v", results[0].Errors)
	}
	if ne.Rank != 0 || ne.Peer != 1 {
		t.Errorf("NetError names rank %d peer %d, want rank 0 peer 1", ne.Rank, ne.Peer)
	}
}

// TestNetBackendNeedsNode pins the guard: the net backend without a
// started node is a programming error.
func TestNetBackendNeedsNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for net backend without a node")
		}
	}()
	Run(Config{Platform: netmodel.AbeIB, Mode: CharmMsg, Size: 64, Iters: 1,
		Backend: charm.NetBackend})
}
