package pingpong

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/ckdirect"
	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// TestWatchdogReportsLostPutWithoutRecovery is the report-only acceptance
// scenario: a CkDirect put is dropped, recovery is disabled, and the run
// must end with the stall in Result.Errors rather than hanging silently
// (the seed behaviour) or panicking.
func TestWatchdogReportsLostPutWithoutRecovery(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     CkDirect,
		Size:     1024,
		Iters:    10,
		Chaos: &chaos.Scenario{
			Seed: 7,
			Plan: &faults.Plan{Rules: []faults.Rule{
				func() faults.Rule {
					r := faults.NewRule(faults.Drop)
					r.Kind = netmodel.KindCkdPut
					r.Nth = 5
					return r
				}(),
			}},
			Watchdog: &ckdirect.Watchdog{}, // report only, no recovery
		},
	})
	if len(res.Errors) == 0 {
		t.Fatal("lost put produced no watchdog report")
	}
	if !strings.Contains(res.Errors[0].Error(), "stalled") {
		t.Fatalf("unexpected report: %v", res.Errors[0])
	}
	if res.Counters[trace.CntCkdStalls] == 0 || res.Counters[trace.CntCkdLostPuts] == 0 {
		t.Fatalf("counters missed the stall: %v", res.Counters)
	}
	if res.RTT != 0 {
		t.Fatalf("broken run reported an RTT (%v)", res.RTT)
	}
}

// TestWatchdogRecoversLostPut flips recovery on for the same fault: the
// benchmark must complete all iterations with no errors, with the reissue
// visible in the counters and in a longer RTT than the quiet run.
func TestWatchdogRecoversLostPut(t *testing.T) {
	quiet := Run(Config{Platform: netmodel.AbeIB, Mode: CkDirect, Size: 1024, Iters: 10})
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     CkDirect,
		Size:     1024,
		Iters:    10,
		Chaos: &chaos.Scenario{
			Seed: 7,
			Plan: &faults.Plan{Rules: []faults.Rule{
				func() faults.Rule {
					r := faults.NewRule(faults.Drop)
					r.Kind = netmodel.KindCkdPut
					r.Nth = 5
					return r
				}(),
			}},
			Watchdog: &ckdirect.Watchdog{Recover: true},
		},
	})
	if len(res.Errors) > 0 {
		t.Fatalf("recovery failed: %v", res.Errors[0])
	}
	if res.Counters[trace.CntCkdReissues] != 1 {
		t.Fatalf("want 1 reissue, counters: %v", res.Counters)
	}
	if res.RTT <= quiet.RTT {
		t.Fatalf("recovered run not slower than quiet run (%v <= %v) — retry cost uncharged",
			res.RTT, quiet.RTT)
	}
}

// TestRetransmitRecoversDroppedMessage does the same for the charm-msg
// transport: one dropped message, reliability on, run completes with one
// retransmit and a correspondingly longer RTT.
func TestRetransmitRecoversDroppedMessage(t *testing.T) {
	quiet := Run(Config{Platform: netmodel.AbeIB, Mode: CharmMsg, Size: 1024, Iters: 10})
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     CharmMsg,
		Size:     1024,
		Iters:    10,
		Chaos: &chaos.Scenario{
			Seed: 7,
			Plan: &faults.Plan{Rules: []faults.Rule{
				func() faults.Rule {
					r := faults.NewRule(faults.Drop)
					r.Kind = netmodel.KindCharmMsg
					r.Nth = 5
					return r
				}(),
			}},
			Reliable: true,
		},
	})
	if len(res.Errors) > 0 {
		t.Fatalf("recovery failed: %v", res.Errors[0])
	}
	if res.Counters[trace.CntRetransmits] != 1 {
		t.Fatalf("want 1 retransmit, counters: %v", res.Counters)
	}
	if res.RTT <= quiet.RTT {
		t.Fatalf("recovered run not slower than quiet run (%v <= %v)", res.RTT, quiet.RTT)
	}
}

// TestNilChaosMatchesSeedBehaviour pins the no-faults acceptance
// criterion: constructing the chaos-capable runtime with a nil scenario
// must leave the measured latency identical to the pre-chaos seed path
// for every mode.
func TestNilChaosMatchesSeedBehaviour(t *testing.T) {
	for _, mode := range []Mode{CharmMsg, CkDirect} {
		plain := Run(Config{Platform: netmodel.AbeIB, Mode: mode, Size: 1024, Iters: 50})
		withNil := Run(Config{Platform: netmodel.AbeIB, Mode: mode, Size: 1024, Iters: 50, Chaos: nil})
		if plain.RTT != withNil.RTT {
			t.Fatalf("mode %v: nil chaos changed RTT (%v != %v)", mode, plain.RTT, withNil.RTT)
		}
		if len(plain.Errors) > 0 {
			t.Fatalf("mode %v: quiet run reported errors: %v", mode, plain.Errors)
		}
	}
}
