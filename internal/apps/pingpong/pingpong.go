// Package pingpong implements the paper's microbenchmark (§3): round-trip
// time between two processors on different nodes, for every communication
// stack in the repository — default Charm++ messages, CkDirect channels,
// MPI two-sided, and MPI_Put under PSCW.
package pingpong

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/machine"
	"repro/internal/mpisim"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the communication stack under test.
type Mode int

// Benchmark modes, matching the rows of Tables 1 and 2.
const (
	CharmMsg Mode = iota // default Charm++ messaging
	CkDirect             // CkDirect channels
	MPI                  // two-sided MPI (MVAPICH2 on Abe, IBM MPI on BG/P)
	MPIPut               // MPI_Put with post-start-complete-wait
	MPIAlt               // MPICH-VMI (Abe only)
)

// String names the mode like the paper's table rows.
func (m Mode) String() string {
	switch m {
	case CharmMsg:
		return "charm-msg"
	case CkDirect:
		return "ckdirect"
	case MPI:
		return "mpi"
	case MPIPut:
		return "mpi-put"
	case MPIAlt:
		return "mpi-alt"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes one pingpong run.
type Config struct {
	Platform *netmodel.Platform
	Mode     Mode
	Size     int // user payload bytes
	Iters    int // round trips to average over (paper: 1000)
	// Backend selects simulated virtual time (default), real
	// goroutine-per-PE execution, or distributed multi-process execution,
	// both with wall-clock timing. The real and net backends support the
	// Charm-runtime modes only, force real payloads, and round Size up to
	// a multiple of 8 (the sentinel word must be naturally aligned).
	Backend charm.Backend
	// Net is the started netrt node (required under the net backend).
	Net *netrt.Node
	// Virtual skips real payload allocation (timing is identical; see the
	// equivalence tests).
	Virtual bool
	// Chaos, when set, runs the benchmark under adversity. It applies to
	// the Charm++-runtime modes (CharmMsg, CkDirect); the MPI modes model
	// stacks that assume a reliable transport and ignore it. A run broken
	// by unrecovered faults returns Result.Errors instead of panicking.
	Chaos *chaos.Scenario
	// Kill, when set, fires the kill -9 chaos tier after Kill.Step round
	// trips complete. Pingpong takes no checkpoints — the recovery driver
	// simply reruns the whole benchmark, which is cheaper than saving it.
	Kill *chaos.Kill
}

// endpoint is a pingpong chare-array element. Element 0 counts the
// remaining round trips; element 1 is the reflector. Pup implements the
// uniform element-state contract (recovery reruns the benchmark from
// scratch, so the count is only read by the state-contract tests).
type endpoint struct {
	Left int
}

// Pup packs or restores the endpoint's state.
func (e *endpoint) Pup(p charm.Puper) {
	p.Int(&e.Left)
}

// Result is the measured outcome.
type Result struct {
	Config
	RTT sim.Time // average round-trip time
	// Errors holds runtime contract violations and unrecovered faults
	// (chaos runs only; fault-free runs panic instead).
	Errors []error
	// Counters is the final trace-counter snapshot (Charm modes).
	Counters map[string]int64
}

// RTTMicros returns the average round trip in microseconds, the unit of
// the paper's tables.
func (r Result) RTTMicros() float64 { return r.RTT.Micros() }

// Run executes the benchmark and returns the averaged round-trip time.
func Run(cfg Config) Result {
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if cfg.Size <= 0 {
		panic("pingpong: non-positive size")
	}
	if cfg.Backend != charm.SimBackend {
		if cfg.Chaos != nil {
			panic("pingpong: chaos scenarios are sim-only")
		}
		if cfg.Mode != CharmMsg && cfg.Mode != CkDirect {
			panic(fmt.Sprintf("pingpong: mode %v is sim-only (the real and net backends run charm-msg and ckdirect)", cfg.Mode))
		}
		cfg.Virtual = false
		cfg.Size = (cfg.Size + 7) &^ 7
	}
	if cfg.Backend == charm.NetBackend && cfg.Net == nil {
		panic("pingpong: net backend needs Config.Net (a started netrt node)")
	}
	switch cfg.Mode {
	case CharmMsg:
		return runCharm(cfg)
	case CkDirect:
		return runCkDirect(cfg)
	case MPI, MPIPut, MPIAlt:
		return runMPI(cfg)
	}
	panic(fmt.Sprintf("pingpong: unknown mode %v", cfg.Mode))
}

// peers returns the two endpoint PEs, placed on different nodes, and the
// machine size needed to host them.
func peers(plat *netmodel.Platform) (a, b, pes int) {
	return 0, plat.CoresPerNode, plat.CoresPerNode + 1
}

func runCharm(cfg Config) Result {
	eng := sim.NewEngine()
	peA, peB, pes := peers(cfg.Platform)
	mach, net := cfg.Platform.BuildMachine(eng, pes)
	rts := charm.NewRTS(eng, mach, net, cfg.Platform, trace.NewRecorder(), charm.Options{Backend: cfg.Backend, Net: cfg.Net})
	cfg.Chaos.Apply(rts, nil)

	arr := rts.NewArray("pingpong", func(ix charm.Index) int {
		if ix[0] == 0 {
			return peA
		}
		return peB
	})
	e0 := &endpoint{Left: cfg.Iters}
	arr.Insert(charm.Idx1(0), e0)
	arr.Insert(charm.Idx1(1), &endpoint{})

	var start, end sim.Time
	var pingEP, pongEP charm.EP
	// Each endpoint reuses one preallocated message — the Charm++ idiom of
	// keeping a persistent message for a regular exchange. Strict
	// alternation makes this safe: a side's previous send is fully
	// delivered before it sends again, on every backend.
	pingMsg := &charm.Message{Size: cfg.Size}
	pongMsg := &charm.Message{Size: cfg.Size}
	pingEP = arr.EntryMethod("ping", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Send(arr, charm.Idx1(0), pongEP, pongMsg)
	})
	pongEP = arr.EntryMethod("pong", func(ctx *charm.Ctx, msg *charm.Message) {
		e0.Left--
		// The kill -9 chaos tier fires here: the pong callback is the
		// benchmark's globally ordered progress observer.
		cfg.Kill.Fire(cfg.Iters-e0.Left, cfg.Net)
		if e0.Left == 0 {
			end = ctx.Now()
			return
		}
		ctx.Send(arr, charm.Idx1(1), pingEP, pingMsg)
	})
	rts.StartAt(peA, func(ctx *charm.Ctx) {
		start = ctx.Now()
		ctx.Send(arr, charm.Idx1(1), pingEP, pingMsg)
	})
	rts.Run()
	return finish(cfg, rts, start, end)
}

func runCkDirect(cfg Config) Result {
	eng := sim.NewEngine()
	peA, peB, pes := peers(cfg.Platform)
	mach, net := cfg.Platform.BuildMachine(eng, pes)
	rts := charm.NewRTS(eng, mach, net, cfg.Platform, trace.NewRecorder(), charm.Options{Checked: true, Backend: cfg.Backend, Net: cfg.Net})
	mgr := ckdirect.NewManager(rts)
	cfg.Chaos.Apply(rts, mgr)

	const oob = 0xFFF8BADF00D00001
	alloc := func(pe int) *machine.Region {
		size := cfg.Size
		if size < 8 {
			size = 8
		}
		return mach.AllocRegion(pe, size, cfg.Virtual)
	}
	sendA, recvB := alloc(peA), alloc(peB) // A -> B channel buffers
	sendB, recvA := alloc(peB), alloc(peA) // B -> A channel buffers
	fill(sendA)
	fill(sendB)

	var start, end sim.Time
	left := cfg.Iters
	var hAB, hBA *ckdirect.Handle
	var err error
	// B's callback: data from A arrived; re-arm and pong back.
	hAB, err = mgr.CreateHandle(peB, recvB, oob, func(ctx *charm.Ctx) {
		mgr.Ready(hAB)
		must(mgr.Put(hBA))
	})
	must(err)
	// A's callback: pong arrived; count and ping again.
	hBA, err = mgr.CreateHandle(peA, recvA, oob, func(ctx *charm.Ctx) {
		mgr.Ready(hBA)
		left--
		cfg.Kill.Fire(cfg.Iters-left, cfg.Net)
		if left == 0 {
			end = ctx.Now()
			return
		}
		must(mgr.Put(hAB))
	})
	must(err)
	must(mgr.AssocLocal(hAB, peA, sendA))
	must(mgr.AssocLocal(hBA, peB, sendB))

	rts.StartAt(peA, func(ctx *charm.Ctx) {
		start = ctx.Now()
		must(mgr.Put(hAB))
	})
	rts.Run()
	if cfg.Backend != charm.SimBackend && len(rts.Errors()) == 0 {
		// The bytes really moved: both receive buffers must hold the peer's
		// payload (minus the final word, which each side's callback already
		// re-armed back to the out-of-band pattern). Under net each process
		// can check only the receive buffer it hosts.
		if rts.HostsPE(peB) {
			checkPayload(recvB, sendA)
		}
		if rts.HostsPE(peA) {
			checkPayload(recvA, sendB)
		}
	}
	return finish(cfg, rts, start, end)
}

// checkPayload asserts a received CkDirect payload matches the source,
// excluding the re-armed sentinel word.
func checkPayload(recv, send *machine.Region) {
	got, want := recv.Bytes(), send.Bytes()
	for i := 0; i < len(got)-8; i++ {
		if got[i] != want[i] {
			panic(fmt.Sprintf("pingpong: received payload differs from source at byte %d: %#x != %#x", i, got[i], want[i]))
		}
	}
}

func runMPI(cfg Config) Result {
	eng := sim.NewEngine()
	rkA, rkB, pes := peers(cfg.Platform)
	mach, net := cfg.Platform.BuildMachine(eng, pes)
	table := cfg.Platform.MPI
	if cfg.Mode == MPIAlt {
		if cfg.Platform.MPIAlt == nil {
			panic("pingpong: platform has no alternate MPI personality")
		}
		table = cfg.Platform.MPIAlt
	}
	w := mpisim.NewWorld(eng, mach, net, mpisim.Config{
		Table:    table,
		PutTable: cfg.Platform.MPIPut,
	})

	var start, end sim.Time
	left := cfg.Iters
	if cfg.Mode == MPIPut {
		// One-sided pingpong: each direction is a PSCW-synchronized put
		// into the peer's window.
		bufA := mach.AllocRegion(rkA, cfg.Size, cfg.Virtual)
		bufB := mach.AllocRegion(rkB, cfg.Size, cfg.Virtual)
		regions := make([]*machine.Region, pes)
		regions[rkA], regions[rkB] = bufA, bufB
		win := w.NewWin(regions)

		var iter func()
		iter = func() {
			// Ping: B exposes, A puts.
			must(win.Post(rkB, []int{rkA}))
			must(win.Wait(rkB, func() {
				// Pong: A exposes, B puts back.
				must(win.Post(rkA, []int{rkB}))
				must(win.Wait(rkA, func() {
					left--
					if left == 0 {
						end = eng.Now()
						return
					}
					iter()
				}))
				must(win.Start(rkB, []int{rkA}))
				must(win.Put(rkB, rkA, cfg.Size, nil))
				must(win.Complete(rkB, nil))
			}))
			must(win.Start(rkA, []int{rkB}))
			must(win.Put(rkA, rkB, cfg.Size, nil))
			must(win.Complete(rkA, nil))
		}
		eng.Schedule(0, func() {
			start = eng.Now()
			iter()
		})
	} else {
		var ping, pong func()
		ping = func() {
			w.Rank(rkB).Recv(rkA, 0, func(m *mpisim.Msg) {
				w.Rank(rkB).Send(rkA, 1, &mpisim.Msg{Size: cfg.Size})
			})
		}
		pong = func() {
			w.Rank(rkA).Recv(rkB, 1, func(m *mpisim.Msg) {
				left--
				if left == 0 {
					end = eng.Now()
					return
				}
				ping()
				pong()
				w.Rank(rkA).Send(rkB, 0, &mpisim.Msg{Size: cfg.Size})
			})
		}
		eng.Schedule(0, func() {
			start = eng.Now()
			ping()
			pong()
			w.Rank(rkA).Send(rkB, 0, &mpisim.Msg{Size: cfg.Size})
		})
	}
	eng.Run()
	return result(cfg, start, end)
}

func result(cfg Config, start, end sim.Time) Result {
	if end <= start {
		panic(fmt.Sprintf("pingpong: run did not complete (%v..%v, mode %v)", start, end, cfg.Mode))
	}
	return Result{Config: cfg, RTT: (end - start) / sim.Time(cfg.Iters)}
}

// finish is result for the Charm-runtime modes: it surfaces runtime
// errors, and under a chaos scenario an unfinished run returns them
// instead of panicking (a lost, unrecovered transfer breaks the ping
// chain by design — the watchdog/reliability reports say why).
func finish(cfg Config, rts *charm.RTS, start, end sim.Time) Result {
	errs := rts.Errors()
	counters := rts.Recorder().Counters()
	if len(errs) > 0 && cfg.Chaos == nil && cfg.Backend != charm.NetBackend {
		// Under net, failures (including a dead peer's NetError) return
		// through Result.Errors — the launcher decides, not a panic.
		panic(fmt.Sprintf("pingpong: runtime contract violation: %v", errs[0]))
	}
	if end <= start {
		if len(errs) == 0 {
			if cfg.Backend == charm.NetBackend && !rts.HostsPE(0) {
				// A worker process: the timing endpoints live on PE 0's
				// rank; this rank relayed traffic and is simply done.
				return Result{Config: cfg, Counters: counters}
			}
			if cfg.Chaos == nil {
				panic(fmt.Sprintf("pingpong: run did not complete (%v..%v, mode %v)", start, end, cfg.Mode))
			}
			errs = []error{chaos.StallError(counters, "an unfinished ping chain")}
		}
		return Result{Config: cfg, Errors: errs, Counters: counters}
	}
	res := result(cfg, start, end)
	res.Errors = errs
	res.Counters = counters
	return res
}

func fill(r *machine.Region) {
	b := r.Bytes()
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
