package pingpong

import (
	"math"
	"testing"

	"repro/internal/netmodel"
)

var paperSizes = []int{100, 1000, 5000, 10000, 20000, 30000, 40000, 70000, 100000, 500000}

// Paper Table 1 (Abe/Infiniband) and Table 2 (Blue Gene/P), RTT in µs.
var (
	table1 = map[Mode][]float64{
		CharmMsg: {22.924, 25.110, 47.340, 66.176, 96.215, 160.470, 191.343, 271.803, 353.305, 1399.145},
		CkDirect: {12.383, 16.108, 29.330, 43.136, 68.927, 93.422, 120.954, 195.248, 275.322, 1294.358},
		MPIAlt:   {12.367, 19.669, 37.318, 60.892, 102.684, 127.591, 201.148, 322.687, 332.690, 1396.942},
		MPI:      {12.302, 19.436, 37.311, 56.249, 88.659, 119.452, 144.973, 236.545, 315.692, 1386.051},
		MPIPut:   {16.801, 22.821, 51.750, 64.202, 94.250, 120.218, 146.028, 232.021, 308.942, 1369.516},
	}
	table2 = map[Mode][]float64{
		CharmMsg: {14.467, 20.822, 44.822, 72.976, 128.166, 186.771, 240.306, 400.226, 560.634, 2693.601},
		CkDirect: {5.133, 11.379, 33.112, 60.675, 115.103, 169.552, 223.599, 383.732, 543.491, 2677.072},
		MPI:      {7.606, 13.936, 39.903, 66.661, 120.548, 173.041, 226.739, 386.712, 546.740, 2680.459},
		MPIPut:   {14.049, 17.836, 39.963, 67.972, 122.693, 178.571, 232.629, 392.388, 552.708, 2685.972},
	}
)

func pctErr(got, want float64) float64 {
	return math.Abs(got-want) / want * 100
}

// TestTable1EndToEnd runs the full simulated stacks (scheduler, polling
// queues, PSCW state machines — not just the analytic tables) against
// every cell of the paper's Table 1, within 7%.
func TestTable1EndToEnd(t *testing.T) {
	for mode, row := range table1 {
		for i, want := range row {
			res := Run(Config{
				Platform: netmodel.AbeIB,
				Mode:     mode,
				Size:     paperSizes[i],
				Iters:    10,
			})
			if e := pctErr(res.RTTMicros(), want); e > 7 {
				t.Errorf("IB %v %dB: got %.3fus, paper %.3fus (%.1f%% off)",
					mode, paperSizes[i], res.RTTMicros(), want, e)
			}
		}
	}
}

// TestTable2EndToEnd does the same for Blue Gene/P (Table 2).
func TestTable2EndToEnd(t *testing.T) {
	for mode, row := range table2 {
		for i, want := range row {
			res := Run(Config{
				Platform: netmodel.SurveyorBGP,
				Mode:     mode,
				Size:     paperSizes[i],
				Iters:    10,
			})
			if e := pctErr(res.RTTMicros(), want); e > 7 {
				t.Errorf("BGP %v %dB: got %.3fus, paper %.3fus (%.1f%% off)",
					mode, paperSizes[i], res.RTTMicros(), want, e)
			}
		}
	}
}

// TestCkDirectWinsAtEverySize reproduces the headline comparison: the
// CkDirect round trip beats default Charm++ messaging at every size on
// both machines.
func TestCkDirectWinsAtEverySize(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		for _, size := range paperSizes {
			msg := Run(Config{Platform: plat, Mode: CharmMsg, Size: size, Iters: 5})
			ckd := Run(Config{Platform: plat, Mode: CkDirect, Size: size, Iters: 5})
			if ckd.RTT >= msg.RTT {
				t.Errorf("%s %dB: ckdirect %v >= charm %v", plat.Name, size, ckd.RTT, msg.RTT)
			}
		}
	}
}

// TestProtocolCrossoverVisible: on Infiniband the default Charm++ curve
// must show the packet->rendezvous jump between 20 KB and 30 KB that the
// paper discusses, while CkDirect stays smooth (ratio of successive
// per-byte costs near 1).
func TestProtocolCrossoverVisible(t *testing.T) {
	rtt := func(mode Mode, size int) float64 {
		return Run(Config{Platform: netmodel.AbeIB, Mode: mode, Size: size, Iters: 5}).RTTMicros()
	}
	msgJump := rtt(CharmMsg, 30000) - rtt(CharmMsg, 20000)
	msgPrev := rtt(CharmMsg, 20000) - rtt(CharmMsg, 10000)
	if msgJump < 1.5*msgPrev {
		t.Errorf("no rendezvous jump: 10->20K grew %.1fus, 20->30K grew %.1fus", msgPrev, msgJump)
	}
	ckdJump := rtt(CkDirect, 30000) - rtt(CkDirect, 20000)
	ckdPrev := rtt(CkDirect, 20000) - rtt(CkDirect, 10000)
	if ckdJump > 1.5*ckdPrev {
		t.Errorf("ckdirect not smooth across 20-30K: %.1fus then %.1fus", ckdPrev, ckdJump)
	}
}

// TestDeterministicAcrossRuns: identical configs give identical times.
func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Platform: netmodel.AbeIB, Mode: CkDirect, Size: 4096, Iters: 20}
	a, b := Run(cfg), Run(cfg)
	if a.RTT != b.RTT {
		t.Fatalf("nondeterministic: %v vs %v", a.RTT, b.RTT)
	}
}

// TestVirtualPayloadEquivalence: virtual payload mode must not change any
// timing.
func TestVirtualPayloadEquivalence(t *testing.T) {
	for _, mode := range []Mode{CkDirect, MPIPut} {
		real := Run(Config{Platform: netmodel.AbeIB, Mode: mode, Size: 8192, Iters: 8})
		virt := Run(Config{Platform: netmodel.AbeIB, Mode: mode, Size: 8192, Iters: 8, Virtual: true})
		if real.RTT != virt.RTT {
			t.Errorf("%v: real %v != virtual %v", mode, real.RTT, virt.RTT)
		}
	}
}

// TestItersAveragingStable: the per-iteration average is independent of
// the iteration count in a deterministic simulation.
func TestItersAveragingStable(t *testing.T) {
	short := Run(Config{Platform: netmodel.SurveyorBGP, Mode: CharmMsg, Size: 1000, Iters: 4})
	long := Run(Config{Platform: netmodel.SurveyorBGP, Mode: CharmMsg, Size: 1000, Iters: 64})
	if d := math.Abs(short.RTTMicros() - long.RTTMicros()); d > 0.5 {
		t.Fatalf("averages differ by %.3fus between 4 and 64 iters", d)
	}
}

// TestMPIAltOnlyOnAbe: requesting MPICH-VMI on BG/P must fail loudly.
func TestMPIAltOnlyOnAbe(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MPIAlt on BG/P did not panic")
		}
	}()
	Run(Config{Platform: netmodel.SurveyorBGP, Mode: MPIAlt, Size: 100, Iters: 1})
}
