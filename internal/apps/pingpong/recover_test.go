package pingpong

import (
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// TestRecoveryKillRejoin covers the checkpoint-free recovery path: a
// 3-rank mesh loses rank 1 to the kill -9 chaos tier after 3 round
// trips, the survivors rebuild the mesh with a respawned replacement,
// and the re-run restarts the benchmark from scratch (pingpong takes no
// checkpoints) and completes with its payload checks intact.
func TestRecoveryKillRejoin(t *testing.T) {
	for _, mode := range []Mode{CharmMsg, CkDirect} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { testRecoveryKillRejoin(t, mode) })
	}
}

func testRecoveryKillRejoin(t *testing.T, mode Mode) {
	const world = 3

	var (
		mu    sync.Mutex
		nodes []*netrt.Node
	)
	node := func(r int) *netrt.Node { mu.Lock(); defer mu.Unlock(); return nodes[r] }
	setNode := func(r int, n *netrt.Node) { mu.Lock(); nodes[r] = n; mu.Unlock() }

	kill := &chaos.Kill{Rank: 1, Step: 3, Via: chaos.KillerFunc(func(r int) error {
		node(r).Die()
		return nil
	})}

	type outcome struct {
		rank int
		res  Result
		errs []error
	}
	out := make(chan outcome, world+1)
	drive := func(rank int, n *netrt.Node) {
		cfg := Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			Size:     64,
			Iters:    10,
			Backend:  charm.NetBackend,
			Net:      n,
			Kill:     kill,
		}
		var res Result
		errs := charm.RunWithRecovery(n, charm.DefaultRecoveryAttempts, func() []error {
			res = Run(cfg)
			return res.Errors
		})
		out <- outcome{rank, res, errs}
	}
	respawn := func(rank int) {
		n, err := netrt.Start(netrt.Config{
			Rank: rank, World: world, Coord: node(0).Addr(), Recover: true,
		})
		if err != nil {
			t.Errorf("respawn rank %d: %v", rank, err)
			out <- outcome{rank: rank, errs: []error{err}}
			return
		}
		setNode(rank, n)
		drive(rank, n)
	}

	ns, err := netrt.StartLocalConfig(world, netrt.Config{Recover: true, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	nodes = ns
	mu.Unlock()
	defer func() {
		for r := 0; r < world; r++ {
			if n := node(r); n != nil {
				n.Close()
			}
		}
	}()

	for r := 0; r < world; r++ {
		go drive(r, ns[r])
	}

	victimFailed := false
	var finals []outcome
	for i := 0; i < world+1; i++ {
		o := <-out
		if o.rank == kill.Rank && len(o.errs) > 0 && !victimFailed {
			victimFailed = true
			continue
		}
		if len(o.errs) > 0 {
			t.Fatalf("rank %d did not recover: %v", o.rank, o.errs)
		}
		finals = append(finals, o)
	}
	if !victimFailed {
		t.Fatal("the killed rank's first incarnation reported no error")
	}
	for _, o := range finals {
		if o.rank == 0 && o.res.RTT <= 0 {
			t.Errorf("rank 0 recovered with non-positive RTT %v", o.res.RTT)
		}
		if o.rank != 0 && o.res.RTT != 0 {
			t.Errorf("worker rank %d reported an RTT after recovery", o.rank)
		}
	}
}
