package pingpong

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
)

// TestRealBackendCkDirect runs the CkDirect pingpong for real: goroutines
// per PE, actual byte movement, sentinel-polling delivery. The run itself
// verifies payload integrity (checkPayload panics on corruption).
func TestRealBackendCkDirect(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     CkDirect,
		Size:     4096,
		Iters:    200,
		Backend:  charm.RealBackend,
	})
	if len(res.Errors) > 0 {
		t.Fatalf("runtime errors: %v", res.Errors)
	}
	if res.RTT <= 0 {
		t.Fatalf("non-positive wall-clock RTT %v", res.RTT)
	}
}

// TestRealBackendCharmMsg runs the message pingpong on the real backend.
func TestRealBackendCharmMsg(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     CharmMsg,
		Size:     4096,
		Iters:    200,
		Backend:  charm.RealBackend,
	})
	if len(res.Errors) > 0 {
		t.Fatalf("runtime errors: %v", res.Errors)
	}
	if res.RTT <= 0 {
		t.Fatalf("non-positive wall-clock RTT %v", res.RTT)
	}
}

// TestRealBackendRejectsSimOnlyModes pins the contract that the MPI
// personalities stay simulator-only.
func TestRealBackendRejectsSimOnlyModes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for MPI mode on the real backend")
		}
	}()
	Run(Config{Platform: netmodel.AbeIB, Mode: MPI, Size: 64, Iters: 1, Backend: charm.RealBackend})
}
