// Package matmul implements the paper's second application study (§4.2):
// parallel matrix multiplication with a 3-D decomposition for 2-D
// matrices (Agarwal et al.), comparing Charm++ messages with CkDirect.
//
// A chare grid of gx × gy × gz elements computes C = A·B for N×N
// matrices. Chare (x,y,z) is responsible for the partial product
// A[x,z]·B[z,y]. Each iteration:
//
//  1. Replication — every chare sends its shard of A to the chares
//     sharing its (x,z) coordinates and its shard of B to the chares
//     sharing its (z,y) coordinates (the paper's "replicate A along one
//     dimension, B along another").
//  2. Compute — DGEMM on the assembled blocks (charged at the platform's
//     FlopNS; validated with a real linalg.Gemm at small scales).
//  3. C exchange — each chare scatters its partial C in strips to the
//     chares of its (x,y) line, which accumulate their strip of C.
//
// With messages, every arriving shard must be copied into its place in
// the local assembly of A and B — CkDirect instead lands the shard
// directly in the assembly buffer ("a row in the middle of a matrix"),
// which eliminates both the copy and the scheduler dispatch. That is the
// asymmetry behind Figure 3.
package matmul

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the communication variant.
type Mode int

// Matmul variants.
const (
	Msg Mode = iota
	Ckd
)

// String names the mode.
func (m Mode) String() string {
	if m == Msg {
		return "msg"
	}
	return "ckd"
}

// Config parameterizes a run.
type Config struct {
	Platform *netmodel.Platform
	Mode     Mode
	PEs      int
	// N is the matrix edge (paper: 2048).
	N int
	// Iters are measured iterations (each is a full multiply); Warmup
	// iterations run first.
	Iters, Warmup int
	// Validate runs real matrices through the pipeline and checks the
	// product (small N only).
	Validate bool
	// Backend selects simulated virtual time (default), real
	// goroutine-per-PE execution, or distributed multi-process execution,
	// both with wall-clock timing. The real and net backends always
	// allocate real payload buffers.
	Backend charm.Backend
	// Net is the started netrt node (required under the net backend).
	Net *netrt.Node
	// Timeline, when set, records Projections-style execution spans.
	Timeline *trace.Timeline
	// Chaos, when set, runs the configuration under adversity (CPU noise,
	// network faults, recovery machinery). Contract violations then land
	// in Result.Errors instead of panicking.
	Chaos *chaos.Scenario
	// Ckpt enables coordinated checkpointing: every Ckpt.Every barriers
	// the world cuts a consistent snapshot, and a fresh Run resumes from
	// the newest committed one.
	Ckpt *charm.CkptOptions
	// Kill, when set, fires the kill -9 chaos tier from the root
	// reduction client after Kill.Step barriers.
	Kill *chaos.Kill
}

// Result reports timing and validation data.
type Result struct {
	Config
	Grid        [3]int
	IterTime    sim.Time
	MaxError    float64   // |C - reference| in validate mode
	C           []float64 // assembled product, row-major (validate mode)
	TotalEvents uint64
	// Errors holds runtime contract violations and unrecovered faults
	// (chaos runs only; fault-free runs panic instead).
	Errors []error
	// Counters is the final trace-counter snapshot.
	Counters map[string]int64
}

// Improvement runs both variants and returns the percentage improvement
// of CKD over MSG in iteration time (Figure 3's gap).
func Improvement(cfg Config) (msg, ckd Result, pct float64) {
	cfg.Mode = Msg
	msg = Run(cfg)
	cfg.Mode = Ckd
	ckd = Run(cfg)
	pct = (1 - float64(ckd.IterTime)/float64(msg.IterTime)) * 100
	return
}

// chooseGrid factors pes into a near-cubic (gx, gy, gz) by repeated
// doubling, mirroring how the 3-D algorithm is deployed on power-of-two
// partitions.
func chooseGrid(pes int) [3]int {
	g := [3]int{1, 1, 1}
	for i := 0; g[0]*g[1]*g[2] < pes; i++ {
		g[i%3] *= 2
	}
	return g
}

// Run executes one matmul configuration.
func Run(cfg Config) Result {
	if cfg.PEs <= 0 {
		panic("matmul: PEs must be positive")
	}
	if cfg.N <= 0 {
		cfg.N = 2048
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 2
	}
	grid := chooseGrid(cfg.PEs)
	for d := 0; d < 3; d++ {
		if cfg.N%grid[d] != 0 || cfg.N/grid[d] < 1 {
			panic(fmt.Sprintf("matmul: N=%d not divisible by grid %v", cfg.N, grid))
		}
	}
	// The shard subdivisions must also divide the blocks evenly.
	if (cfg.N/grid[0])%grid[1] != 0 || (cfg.N/grid[2])%grid[0] != 0 || (cfg.N/grid[0])%grid[2] != 0 {
		panic(fmt.Sprintf("matmul: N=%d incompatible with grid %v shard split", cfg.N, grid))
	}

	if cfg.Backend != charm.SimBackend {
		if cfg.Chaos != nil {
			panic("matmul: chaos scenarios are sim-only")
		}
		if cfg.Timeline != nil {
			panic("matmul: timeline recording is sim-only")
		}
	}
	if cfg.Backend == charm.NetBackend && cfg.Net == nil {
		panic("matmul: net backend needs Config.Net (a started netrt node)")
	}
	eng := sim.NewEngine()
	mach, net := cfg.Platform.BuildMachine(eng, cfg.PEs)
	rts := charm.NewRTS(eng, mach, net, cfg.Platform, trace.NewRecorder(),
		charm.Options{
			Checked:         true,
			VirtualPayloads: !cfg.Validate && cfg.Backend == charm.SimBackend,
			Backend:         cfg.Backend,
			Net:             cfg.Net,
		})

	if cfg.Timeline != nil {
		rts.SetTimeline(cfg.Timeline)
	}
	a := &app{cfg: cfg, grid: grid, rts: rts}
	if cfg.Mode == Ckd {
		a.mgr = ckdirect.NewManager(rts)
	}
	cfg.Chaos.Apply(rts, a.mgr)
	a.build()
	if cfg.Ckpt.Enabled() {
		a.ck = charm.NewCheckpointer(rts, cfg.Ckpt)
		a.ck.Attach(a.arr)
		if a.mgr != nil {
			a.ck.SetRegionHooks(a.mgr)
		}
		// Roll back to the newest committed cut (a fresh run finds none
		// and starts from step zero). Restore happens after build: the
		// SPMD setup is identical to the checkpointed run's, so element
		// state and registered-buffer bytes overlay in place.
		step, err := a.ck.Restore()
		if err != nil {
			return Result{
				Config: cfg, Grid: grid,
				Errors:   []error{fmt.Errorf("matmul: restore checkpoint: %w", err)},
				Counters: rts.Recorder().Counters(),
			}
		}
		a.barriers = make([]sim.Time, step)
	}
	a.start()
	rts.Run()
	errs := rts.Errors()
	if len(errs) > 0 && cfg.Chaos == nil && cfg.Backend != charm.NetBackend {
		// Under net, failures (including a dead peer's NetError) return
		// through Result.Errors — the launcher decides, not a panic.
		panic(fmt.Sprintf("matmul: runtime contract violation: %v", errs[0]))
	}
	if cfg.Backend == charm.NetBackend && cfg.Validate && len(errs) == 0 {
		// Each process can check exactly the chares it hosts; the serial
		// reference is the shared oracle.
		errs = append(errs, a.verifyLocal()...)
	}
	if cfg.Backend == charm.NetBackend && !rts.HostsPE(0) {
		// A worker process: barriers and timing live on PE 0's rank. Local
		// verification already ran; report what this rank knows — its own
		// strips of C (the rest NaN).
		res := Result{
			Config: cfg, Grid: grid,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
		if cfg.Validate && len(errs) == 0 {
			res.C = a.gatherC()
		}
		return res
	}
	want := cfg.Warmup + cfg.Iters + 1
	if len(a.barriers) < want {
		if len(errs) == 0 {
			if cfg.Chaos == nil {
				panic(fmt.Sprintf("matmul: only %d/%d iterations completed", len(a.barriers), want))
			}
			errs = []error{chaos.StallError(rts.Recorder().Counters(),
				fmt.Sprintf("%d/%d iterations", len(a.barriers), want))}
		}
		return Result{
			Config: cfg, Grid: grid,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
	}
	measured := a.barriers[cfg.Warmup+cfg.Iters] - a.barriers[cfg.Warmup]
	res := Result{
		Config:      cfg,
		Grid:        grid,
		IterTime:    measured / sim.Time(cfg.Iters),
		TotalEvents: rts.Executed(),
		Errors:      errs,
		Counters:    rts.Recorder().Counters(),
	}
	if cfg.Validate {
		if cfg.Backend != charm.NetBackend {
			// Under net no single process holds the whole product;
			// verifyLocal covered the hosted strips above.
			res.MaxError = a.verify()
		}
		res.C = a.gatherC()
	}
	return res
}
