package matmul

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
)

// TestRealBackendMatchesSim: the assembled product must be bit-identical
// across backends. The ascending-z strip fold is what removes
// arrival-order FP nondeterminism — without it the real backend's
// interleavings would produce a (numerically fine but) different sum.
func TestRealBackendMatchesSim(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			PEs:      4,
			N:        32,
			Iters:    2,
			Warmup:   1,
			Validate: true,
		}
		simRes := Run(cfg)
		cfg.Backend = charm.RealBackend
		realRes := Run(cfg)

		if len(realRes.Errors) > 0 {
			t.Fatalf("%v: real backend errors: %v", mode, realRes.Errors)
		}
		if realRes.MaxError > 1e-9 {
			t.Errorf("%v: real product off by %v from the serial reference", mode, realRes.MaxError)
		}
		if len(simRes.C) != len(realRes.C) {
			t.Fatalf("%v: product sizes differ: %d vs %d", mode, len(simRes.C), len(realRes.C))
		}
		for i := range simRes.C {
			if simRes.C[i] != realRes.C[i] {
				t.Fatalf("%v: C differs at %d: sim %v real %v", mode, i, simRes.C[i], realRes.C[i])
			}
		}
	}
}
