package matmul

import (
	"testing"

	"repro/internal/netmodel"
)

func TestChooseGridNearCubic(t *testing.T) {
	cases := map[int][3]int{
		1:    {1, 1, 1},
		8:    {2, 2, 2},
		64:   {4, 4, 4},
		512:  {8, 8, 8},
		4096: {16, 16, 16},
		256:  {8, 8, 4},
		2048: {16, 16, 8},
	}
	for pes, want := range cases {
		g := chooseGrid(pes)
		if g[0]*g[1]*g[2] != pes {
			t.Errorf("chooseGrid(%d) = %v does not cover exactly", pes, g)
		}
		if g != want {
			t.Errorf("chooseGrid(%d) = %v, want %v", pes, g, want)
		}
	}
}

// TestValidateProductCorrect: both transports must produce the exact
// reference product.
func TestValidateProductCorrect(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		res := Run(Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			PEs:      8,
			N:        32,
			Iters:    2, Warmup: 0,
			Validate: true,
		})
		if res.MaxError > 1e-9 {
			t.Errorf("%v: max error %g", mode, res.MaxError)
		}
	}
}

func TestValidateNonCubicGrid(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.SurveyorBGP,
		Mode:     Ckd,
		PEs:      16, // grid 4x2x2
		N:        64,
		Iters:    1, Warmup: 1,
		Validate: true,
	})
	if res.Grid != [3]int{4, 2, 2} {
		t.Fatalf("grid %v", res.Grid)
	}
	if res.MaxError > 1e-9 {
		t.Fatalf("max error %g", res.MaxError)
	}
}

// TestCkdBeatsMsg: Figure 3's core claim on both machines.
func TestCkdBeatsMsg(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		msg, ckd, pct := Improvement(Config{
			Platform: plat,
			PEs:      64,
			N:        2048,
			Iters:    2, Warmup: 1,
		})
		if ckd.IterTime >= msg.IterTime {
			t.Errorf("%s: ckd %v >= msg %v", plat.Name, ckd.IterTime, msg.IterTime)
		}
		if pct <= 0 || pct > 60 {
			t.Errorf("%s: improvement %.1f%% implausible", plat.Name, pct)
		}
	}
}

// TestImprovementGrowsWithProcessors: the paper attributes the widening
// gap to per-processor message counts growing as the cube root of P.
func TestImprovementGrowsWithProcessors(t *testing.T) {
	pct := func(pes int) float64 {
		_, _, p := Improvement(Config{
			Platform: netmodel.SurveyorBGP,
			PEs:      pes,
			N:        2048,
			Iters:    2, Warmup: 1,
		})
		return p
	}
	small, large := pct(64), pct(512)
	if large <= small {
		t.Fatalf("gap did not widen: %.2f%% at 64, %.2f%% at 512", small, large)
	}
}

// TestExecutionTimeDropsWithProcessors: strong scaling — more PEs, less
// time per multiply, for both variants.
func TestExecutionTimeDropsWithProcessors(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		t64 := Run(Config{Platform: netmodel.AbeIB, Mode: mode, PEs: 64, N: 2048, Iters: 2, Warmup: 1})
		t512 := Run(Config{Platform: netmodel.AbeIB, Mode: mode, PEs: 512, N: 2048, Iters: 2, Warmup: 1})
		if t512.IterTime >= t64.IterTime {
			t.Errorf("%v: no strong scaling: %v at 64, %v at 512", mode, t64.IterTime, t512.IterTime)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Platform: netmodel.AbeIB, Mode: Ckd, PEs: 32, N: 1024, Iters: 2, Warmup: 1}
	a, b := Run(cfg), Run(cfg)
	if a.IterTime != b.IterTime {
		t.Fatalf("nondeterministic: %v vs %v", a.IterTime, b.IterTime)
	}
}

// TestVirtualMatchesValidateTiming: stripping payloads leaves virtual
// time untouched.
func TestVirtualMatchesValidateTiming(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		base := Config{Platform: netmodel.SurveyorBGP, Mode: mode, PEs: 8, N: 64, Iters: 2, Warmup: 1}
		v := base
		v.Validate = true
		real := Run(v)
		model := Run(base)
		if real.IterTime != model.IterTime {
			t.Errorf("%v: validate %v != model %v", mode, real.IterTime, model.IterTime)
		}
	}
}

func TestSinglePE(t *testing.T) {
	res := Run(Config{
		Platform: netmodel.AbeIB, Mode: Msg, PEs: 1, N: 16,
		Iters: 1, Warmup: 0, Validate: true,
	})
	if res.MaxError > 1e-9 {
		t.Fatalf("single chare product wrong: %g", res.MaxError)
	}
}
