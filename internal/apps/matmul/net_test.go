package matmul

import (
	"math"
	"sync"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// netOracleConfig is the validated configuration the cross-backend
// equivalence tests share.
func netOracleConfig(mode Mode) Config {
	return Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4,
		N:        32,
		Iters:    2,
		Warmup:   1,
		Validate: true,
	}
}

// runNetWorld executes one matmul configuration on every rank of an
// in-process world concurrently and returns the per-rank results.
func runNetWorld(t *testing.T, nodes []*netrt.Node, cfg Config) []Result {
	t.Helper()
	results := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = Run(c)
		}()
	}
	wg.Wait()
	return results
}

// TestNetBackendMatchesSim is the distributed acceptance oracle: the
// same validated configuration on a live two-rank socket mesh must
// produce, element for element, the bit-identical product the simulator
// produces. Each rank holds only its hosted strips (the rest is NaN in
// the gathered matrix), and the union of the ranks must tile C.
func TestNetBackendMatchesSim(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := netOracleConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.NetBackend
		results := runNetWorld(t, nodes, cfg)

		covered := 0
		for rank, res := range results {
			if len(res.Errors) > 0 {
				t.Fatalf("%v rank %d: %v", mode, rank, res.Errors)
			}
			if len(res.C) != len(simRes.C) {
				t.Fatalf("%v rank %d: product size %d, sim %d", mode, rank, len(res.C), len(simRes.C))
			}
			for i, v := range res.C {
				if math.IsNaN(v) {
					continue // not hosted by this rank
				}
				covered++
				if v != simRes.C[i] {
					t.Fatalf("%v rank %d: C differs at %d: net %v sim %v", mode, rank, i, v, simRes.C[i])
				}
			}
		}
		if covered != len(simRes.C) {
			t.Errorf("%v: ranks covered %d of %d elements", mode, covered, len(simRes.C))
		}
	}
}
