package matmul

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/sim"
)

const oobPattern uint64 = 0x7FF8C0FFEE000001

// Shard kinds for message tags.
const (
	kindA = iota
	kindB
	kindC
)

type app struct {
	cfg  Config
	grid [3]int
	rts  *charm.RTS
	mgr  *ckdirect.Manager
	arr  *charm.Array
	ck   *charm.Checkpointer

	iterEP, shardEP, ckptEP charm.EP
	chares                  []*chare
	barriers                []sim.Time
	totalIters              int

	// Block geometry (elements).
	rowsA, colsA int // A block: N/gx x N/gz
	rowsB, colsB int // B block: N/gz x N/gy
	rowsC, colsC int // C block: N/gx x N/gy
	shardARows   int // rowsA / gy
	shardBRows   int // rowsB / gx
	stripRows    int // rowsC / gz
}

type chare struct {
	app     *app
	idx     charm.Index // (x, y, z)
	pe      int
	x, y, z int

	// Assembled blocks (validate mode; nil in model mode).
	aBuf, bBuf []byte
	// Outgoing shards: one buffer for A (fanned out to gy-1 handles), one
	// for B (gx-1 handles), and per-destination C strips.
	aShard, bShard []byte
	cStripsOut     [][]byte
	// Incoming C strips staged per source z, accumulated after compute.
	cStageIn [][]byte
	// cAccum is this chare's final strip of C.
	cAccum []float64

	// CkDirect channels.
	aIn, bIn, cIn    []*ckdirect.Handle // my incoming channels (indexed by source coord)
	aOut, bOut, cOut []*ckdirect.Handle // channels I put on (indexed by dest coord)

	recvA, recvB, recvC int
	computed            bool
	// cGot stages arrived C strips by source z; the accumulation into
	// cAccum happens in maybeFinish in ascending-z order so the FP sum is
	// identical whatever order strips arrive in — the property that makes
	// validate-mode results comparable across the sim and real backends.
	cGot [][]byte
	// pendingCAdds counts strips that arrived before this chare's compute;
	// their accumulation CPU is charged when the compute fires, matching
	// where the work would run.
	pendingCAdds int
}

func (a *app) build() {
	gx, gy, gz := a.grid[0], a.grid[1], a.grid[2]
	n := a.cfg.N
	a.rowsA, a.colsA = n/gx, n/gz
	a.rowsB, a.colsB = n/gz, n/gy
	a.rowsC, a.colsC = n/gx, n/gy
	a.shardARows = a.rowsA / gy
	a.shardBRows = a.rowsB / gx
	a.stripRows = a.rowsC / gz
	a.totalIters = a.cfg.Warmup + a.cfg.Iters + 1

	a.arr = a.rts.NewArray("matmul", func(ix charm.Index) int {
		lin := ix[0] + gx*(ix[1]+gy*ix[2])
		return lin * a.cfg.PEs / (gx * gy * gz)
	})
	for z := 0; z < gz; z++ {
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				c := &chare{app: a, idx: charm.Idx3(x, y, z), x: x, y: y, z: z}
				c.pe = a.arr.PEOf(c.idx)
				if a.cfg.Validate || a.cfg.Backend != charm.SimBackend {
					// The real and net backends move actual bytes even in
					// model mode, so the shard buffers must exist.
					c.allocData()
				}
				if c.cStripsOut == nil {
					c.cStripsOut = make([][]byte, gz)
				}
				a.chares = append(a.chares, c)
				a.arr.Insert(c.idx, c)
			}
		}
	}

	a.iterEP = a.arr.EntryMethod("iterate", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*chare).iterate(ctx)
	})
	a.shardEP = a.arr.EntryMethod("shard", func(ctx *charm.Ctx, msg *charm.Message) {
		c := ctx.Obj().(*chare)
		kind := msg.Tag & 0xF
		src := msg.Tag >> 4
		c.onShard(ctx, kind, src, msg.Data, msg.Size)
	})
	a.ckptEP = a.arr.EntryMethod("ckpt", func(ctx *charm.Ctx, msg *charm.Message) {
		// One element reaching the cut; the last local one writes this
		// rank's snapshot. The extra barrier round resumes iteration
		// only after every rank's snapshot is durable.
		a.ck.ElementSave(msg.Tag)
		a.arr.ContributeFrom(ctx.Index(), 1)
	})
	a.arr.SetReductionClient(charm.Sum, func(ctx *charm.Ctx, vals []float64) {
		if a.ck != nil && a.ck.InCheckpoint() {
			// The checkpoint barrier completed: every rank's snapshot is
			// on disk, so the commit record may name the step.
			if _, err := a.ck.Commit(); err != nil {
				a.rts.ReportError(fmt.Errorf("matmul: checkpoint commit: %w", err))
				return
			}
			a.afterBarrier(ctx, len(a.barriers))
			return
		}
		a.barriers = append(a.barriers, ctx.Now())
		step := len(a.barriers)
		// The kill -9 chaos tier fires here: the root client is the one
		// place with a globally ordered step count.
		a.cfg.Kill.Fire(step, a.cfg.Net)
		if a.ck != nil && a.ck.Due(step) && step < a.totalIters {
			a.ck.Begin(step)
			ctx.Broadcast(a.arr, a.ckptEP, &charm.Message{Size: 8, Tag: step})
			return
		}
		a.afterBarrier(ctx, step)
	})
	if a.cfg.Mode == Ckd {
		a.buildChannels()
	}
}

// afterBarrier broadcasts the next iteration (or nothing, ending the
// run) once step barriers — multiply barriers, not checkpoint rounds —
// have completed.
func (a *app) afterBarrier(ctx *charm.Ctx, step int) {
	if step < a.totalIters {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	}
}

// Pup checkpoints the chare's state: the accumulated strip of C. The
// A/B shards and assemblies are reconstructed by allocData (the shards
// never change across iterations), counters and staging are zero at
// every barrier cut, and the registered CkDirect buffers travel with
// the region snapshot.
func (c *chare) Pup(p charm.Puper) {
	p.Float64s(&c.cAccum)
}

// Element addressing into the global matrices for validation.

// seedA and seedB define the deterministic inputs.
func seedA(i, j int) float64 { return float64((i*7+j*3)%13) / 13 }
func seedB(i, j int) float64 { return float64((i*5+j*11)%17) / 17 }

func (c *chare) allocData() {
	a := c.app
	c.aBuf = make([]byte, a.rowsA*a.colsA*8)
	c.bBuf = make([]byte, a.rowsB*a.colsB*8)
	c.aShard = make([]byte, a.shardARows*a.colsA*8)
	c.bShard = make([]byte, a.shardBRows*a.colsB*8)
	c.cAccum = make([]float64, a.stripRows*a.colsC)
	c.cStripsOut = make([][]byte, a.grid[2])
	for dz := 0; dz < a.grid[2]; dz++ {
		if dz != c.z {
			c.cStripsOut[dz] = make([]byte, a.cStripBytes())
		}
	}

	// Fill the owned shards from the global seeds. A shard: rows
	// [x*rowsA + y*shardARows, ...), cols [z*colsA, ...).
	for r := 0; r < a.shardARows; r++ {
		gi := c.x*a.rowsA + c.y*a.shardARows + r
		for j := 0; j < a.colsA; j++ {
			putF64(c.aShard, r*a.colsA+j, seedA(gi, c.z*a.colsA+j))
		}
	}
	// B shard: rows [z*rowsB + x*shardBRows, ...), cols [y*colsB, ...).
	for r := 0; r < a.shardBRows; r++ {
		gi := c.z*a.rowsB + c.x*a.shardBRows + r
		for j := 0; j < a.colsB; j++ {
			putF64(c.bShard, r*a.colsB+j, seedB(gi, c.y*a.colsB+j))
		}
	}
	// Place own shards into the assemblies once; peers' slots are filled
	// by communication every iteration.
	copy(c.aSlot(c.y), c.aShard)
	copy(c.bSlot(c.x), c.bShard)
}

// aSlot returns the assembly slice where the shard from source y' lands.
func (c *chare) aSlot(srcY int) []byte {
	a := c.app
	start := srcY * a.shardARows * a.colsA * 8
	return c.aBuf[start : start+a.shardARows*a.colsA*8]
}

// bSlot returns the assembly slice for the shard from source x'.
func (c *chare) bSlot(srcX int) []byte {
	a := c.app
	start := srcX * a.shardBRows * a.colsB * 8
	return c.bBuf[start : start+a.shardBRows*a.colsB*8]
}

func (a *app) aShardBytes() int { return a.shardARows * a.colsA * 8 }
func (a *app) bShardBytes() int { return a.shardBRows * a.colsB * 8 }
func (a *app) cStripBytes() int { return a.stripRows * a.colsC * 8 }

// buildChannels wires the persistent CkDirect channels: A shards land
// directly in the destination's assembly slot, B shards likewise, C
// strips land in per-source staging buffers.
func (a *app) buildChannels() {
	mach := a.rts.Machine()
	gx, gy, gz := a.grid[0], a.grid[1], a.grid[2]
	virtual := !a.cfg.Validate && a.cfg.Backend != charm.RealBackend

	region := func(pe int, backing []byte, size int) *machine.Region {
		if virtual {
			return mach.AllocRegion(pe, size, true)
		}
		return mach.WrapRegion(pe, backing)
	}

	// Receivers create handles.
	for _, c := range a.chares {
		c := c
		c.aIn = make([]*ckdirect.Handle, gy)
		c.bIn = make([]*ckdirect.Handle, gx)
		c.cIn = make([]*ckdirect.Handle, gz)
		c.cStageIn = make([][]byte, gz)
		for sy := 0; sy < gy; sy++ {
			if sy == c.y {
				continue
			}
			var backing []byte
			if !virtual {
				backing = c.aSlot(sy)
			}
			h, err := a.mgr.CreateHandle(c.pe, region(c.pe, backing, a.aShardBytes()), oobPattern,
				func(ctx *charm.Ctx) { c.onShard(ctx, kindA, -1, nil, a.aShardBytes()) })
			if err != nil {
				panic(err)
			}
			c.aIn[sy] = h
		}
		for sx := 0; sx < gx; sx++ {
			if sx == c.x {
				continue
			}
			var backing []byte
			if !virtual {
				backing = c.bSlot(sx)
			}
			h, err := a.mgr.CreateHandle(c.pe, region(c.pe, backing, a.bShardBytes()), oobPattern,
				func(ctx *charm.Ctx) { c.onShard(ctx, kindB, -1, nil, a.bShardBytes()) })
			if err != nil {
				panic(err)
			}
			c.bIn[sx] = h
		}
		for sz := 0; sz < gz; sz++ {
			if sz == c.z {
				continue
			}
			sz := sz
			if !virtual {
				c.cStageIn[sz] = make([]byte, a.cStripBytes())
			}
			h, err := a.mgr.CreateHandle(c.pe, region(c.pe, c.cStageIn[sz], a.cStripBytes()), oobPattern,
				func(ctx *charm.Ctx) { c.onShard(ctx, kindC, sz, c.cStageIn[sz], a.cStripBytes()) })
			if err != nil {
				panic(err)
			}
			c.cIn[sz] = h
		}
	}
	// Senders associate. One A buffer serves gy-1 channels; one B buffer
	// serves gx-1; C strips each have their own buffer.
	for _, c := range a.chares {
		c.aOut = make([]*ckdirect.Handle, gy)
		c.bOut = make([]*ckdirect.Handle, gx)
		c.cOut = make([]*ckdirect.Handle, gz)
		if c.cStripsOut == nil {
			c.cStripsOut = make([][]byte, gz)
		}
		aReg := region(c.pe, c.aShard, a.aShardBytes())
		for dy := 0; dy < gy; dy++ {
			if dy == c.y {
				continue
			}
			peer := a.arr.Obj(charm.Idx3(c.x, dy, c.z)).(*chare)
			h := peer.aIn[c.y]
			if err := a.mgr.AssocLocal(h, c.pe, aReg); err != nil {
				panic(err)
			}
			c.aOut[dy] = h
		}
		bReg := region(c.pe, c.bShard, a.bShardBytes())
		for dx := 0; dx < gx; dx++ {
			if dx == c.x {
				continue
			}
			peer := a.arr.Obj(charm.Idx3(dx, c.y, c.z)).(*chare)
			h := peer.bIn[c.x]
			if err := a.mgr.AssocLocal(h, c.pe, bReg); err != nil {
				panic(err)
			}
			c.bOut[dx] = h
		}
		for dz := 0; dz < gz; dz++ {
			if dz == c.z {
				continue
			}
			peer := a.arr.Obj(charm.Idx3(c.x, c.y, dz)).(*chare)
			h := peer.cIn[c.z]
			if err := a.mgr.AssocLocal(h, c.pe, region(c.pe, c.cStripsOut[dz], a.cStripBytes())); err != nil {
				panic(err)
			}
			c.cOut[dz] = h
		}
	}
}

func (a *app) start() {
	a.rts.StartAt(0, func(ctx *charm.Ctx) {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	})
}

// iterate starts one multiply on this chare: ship the A and B shards to
// the replication partners. Being message-driven, the compute may already
// have fired from onShard if every peer shard landed before this entry
// ran; ship order does not affect correctness.
func (c *chare) iterate(ctx *charm.Ctx) {
	a := c.app
	gx, gy := a.grid[0], a.grid[1]
	for dy := 0; dy < gy; dy++ {
		if dy == c.y {
			continue
		}
		c.ship(ctx, kindA, charm.Idx3(c.x, dy, c.z), c.aOut, dy, c.aShard, a.aShardBytes())
	}
	for dx := 0; dx < gx; dx++ {
		if dx == c.x {
			continue
		}
		c.ship(ctx, kindB, charm.Idx3(dx, c.y, c.z), c.bOut, dx, c.bShard, a.bShardBytes())
	}
	c.maybeCompute(ctx)
}

// ship sends one shard by message or put.
func (c *chare) ship(ctx *charm.Ctx, kind int, dst charm.Index, handles []*ckdirect.Handle, dstCoord int, data []byte, size int) {
	a := c.app
	if a.cfg.Mode == Msg {
		srcCoord := [3]int{c.y, c.x, c.z}[kind]
		ctx.Send(a.arr, dst, a.shardEP, &charm.Message{
			Size: size,
			Data: data,
			Tag:  kind | srcCoord<<4,
		})
		return
	}
	if err := a.mgr.Put(handles[dstCoord]); err != nil {
		panic(err)
	}
}

// onShard handles an arrived shard of any kind, from either transport.
// For the message transport the shard must first be copied into its
// place in the assembly — the cost CkDirect eliminates (§4.2).
func (c *chare) onShard(ctx *charm.Ctx, kind, src int, data []byte, size int) {
	a := c.app
	if a.cfg.Mode == Msg {
		ctx.Charge(sim.Nanoseconds(a.cfg.Platform.CopyPerByteNS * float64(size)))
		if a.cfg.Validate && kind != kindC {
			switch kind {
			case kindA:
				copy(c.aSlot(src), data)
			case kindB:
				copy(c.bSlot(src), data)
			}
		}
	}
	switch kind {
	case kindA:
		c.recvA++
	case kindB:
		c.recvB++
	case kindC:
		c.recvC++
		if c.cGot == nil {
			c.cGot = make([][]byte, a.grid[2])
		}
		if a.cfg.Mode == Msg && a.cfg.Backend == charm.NetBackend {
			// A remote message's payload aliases the pooled wire buffer,
			// which is recycled when this handler returns — but the strip
			// is staged until maybeFinish. Copy it out of the pool's reach.
			data = append([]byte(nil), data...)
		}
		c.cGot[src] = data
		if c.computed {
			c.chargeStripAdd(ctx)
		} else {
			c.pendingCAdds++
		}
	}
	c.maybeCompute(ctx)
	c.maybeFinish(ctx)
}

// maybeCompute fires the DGEMM once both assemblies are complete.
func (c *chare) maybeCompute(ctx *charm.Ctx) {
	a := c.app
	if c.computed || c.recvA < a.grid[1]-1 || c.recvB < a.grid[0]-1 {
		return
	}
	c.computed = true
	flops := linalg.GemmFlops(a.rowsA, a.colsA, a.colsB)
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * float64(flops)))

	var partial *linalg.Matrix
	if a.cfg.Validate {
		for i := range c.cAccum {
			c.cAccum[i] = 0
		}
		ab := bytesToMatrix(c.aBuf, a.rowsA, a.colsA)
		bb := bytesToMatrix(c.bBuf, a.rowsB, a.colsB)
		partial = linalg.NewMatrix(a.rowsC, a.colsC)
		linalg.Gemm(partial, ab, bb)
		// Own strip accumulates locally.
		c.accumulateStrip(partial)
	}
	// Scatter the other strips along the z line.
	for dz := 0; dz < a.grid[2]; dz++ {
		if dz == c.z {
			continue
		}
		if a.cfg.Validate {
			encodeStrip(partial, dz*a.stripRows, a.stripRows, c.cStripsOut[dz])
		}
		if a.cfg.Mode == Msg {
			ctx.Send(a.arr, charm.Idx3(c.x, c.y, dz), a.shardEP, &charm.Message{
				Size: a.cStripBytes(),
				Data: c.cStripsOut[dz],
				Tag:  kindC | c.z<<4,
			})
		} else {
			if err := a.mgr.Put(c.cOut[dz]); err != nil {
				panic(err)
			}
		}
	}
	// Strips that arrived early are charged now; the data itself folds in
	// ascending-z order in maybeFinish.
	for ; c.pendingCAdds > 0; c.pendingCAdds-- {
		c.chargeStripAdd(ctx)
	}
	c.maybeFinish(ctx)
}

// accumulateStrip adds this chare's own rows of the partial into cAccum.
func (c *chare) accumulateStrip(partial *linalg.Matrix) {
	a := c.app
	rowOff := c.z * a.stripRows
	for r := 0; r < a.stripRows; r++ {
		for j := 0; j < a.colsC; j++ {
			c.cAccum[r*a.colsC+j] += partial.At(rowOff+r, j)
		}
	}
}

// chargeStripAdd charges the CPU of accumulating one arrived strip (one
// add per element).
func (c *chare) chargeStripAdd(ctx *charm.Ctx) {
	a := c.app
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.FlopNS * float64(a.stripRows*a.colsC)))
}

// maybeFinish closes the iteration on this chare once compute and all C
// strips are in.
func (c *chare) maybeFinish(ctx *charm.Ctx) {
	a := c.app
	if !c.computed || c.recvC < a.grid[2]-1 {
		return
	}
	if a.cfg.Validate && c.cGot != nil {
		// Fold the staged strips in ascending source-z order (own strip was
		// added first, at compute time): a fixed fold order makes the FP sum
		// arrival-order independent.
		elems := a.stripRows * a.colsC
		for sz := 0; sz < a.grid[2]; sz++ {
			if sz == c.z || c.cGot[sz] == nil {
				continue
			}
			data := c.cGot[sz]
			for i := 0; i < elems; i++ {
				c.cAccum[i] += getF64(data, i)
			}
			c.cGot[sz] = nil
		}
	}
	c.recvA, c.recvB, c.recvC = 0, 0, 0
	c.computed = false
	if a.cfg.Mode == Ckd {
		for _, h := range c.aIn {
			if h != nil {
				a.mgr.Ready(h)
			}
		}
		for _, h := range c.bIn {
			if h != nil {
				a.mgr.Ready(h)
			}
		}
		for _, h := range c.cIn {
			if h != nil {
				a.mgr.Ready(h)
			}
		}
	}
	a.arr.ContributeFrom(c.idx, 1)
}

// verify reassembles C from the chares and compares against a serial
// reference product.
func (a *app) verify() float64 {
	n := a.cfg.N
	am := linalg.NewMatrix(n, n)
	bm := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			am.Set(i, j, seedA(i, j))
			bm.Set(i, j, seedB(i, j))
		}
	}
	want := linalg.NewMatrix(n, n)
	linalg.Gemm(want, am, bm)

	got := linalg.NewMatrix(n, n)
	for _, c := range a.chares {
		// Chare (x,y,z) owns rows [x*rowsC + z*stripRows, ...) and cols
		// [y*colsC, ...) of C.
		for r := 0; r < a.stripRows; r++ {
			gi := c.x*a.rowsC + c.z*a.stripRows + r
			for j := 0; j < a.colsC; j++ {
				got.Set(gi, c.y*a.colsC+j, c.cAccum[r*a.colsC+j])
			}
		}
	}
	return linalg.MaxAbsDiff(got, want)
}

// verifyLocal checks the hosted chares' strips of C against a serial
// reference product — the distributed backend's validation path, where
// no single process holds the whole matrix but every process shares
// the oracle.
func (a *app) verifyLocal() []error {
	n := a.cfg.N
	am := linalg.NewMatrix(n, n)
	bm := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			am.Set(i, j, seedA(i, j))
			bm.Set(i, j, seedB(i, j))
		}
	}
	want := linalg.NewMatrix(n, n)
	linalg.Gemm(want, am, bm)
	var errs []error
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		for r := 0; r < a.stripRows; r++ {
			gi := c.x*a.rowsC + c.z*a.stripRows + r
			for j := 0; j < a.colsC; j++ {
				got := c.cAccum[r*a.colsC+j]
				if diff := math.Abs(got - want.At(gi, c.y*a.colsC+j)); diff > 1e-9 {
					errs = append(errs, fmt.Errorf(
						"matmul: C(%d,%d) = %v, off the serial reference by %g",
						gi, c.y*a.colsC+j, got, diff))
					if len(errs) >= 5 {
						return errs
					}
				}
			}
		}
	}
	return errs
}

// gatherC assembles the distributed product into one row-major slice —
// the payload the cross-backend equivalence tests compare bit-for-bit.
// Under the net backend only hosted chares hold live data; the rest of
// the matrix is marked NaN so a comparison cannot silently pass on
// never-computed strips.
func (a *app) gatherC() []float64 {
	n := a.cfg.N
	out := make([]float64, n*n)
	if a.cfg.Backend == charm.NetBackend {
		for i := range out {
			out[i] = math.NaN()
		}
	}
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		for r := 0; r < a.stripRows; r++ {
			gi := c.x*a.rowsC + c.z*a.stripRows + r
			for j := 0; j < a.colsC; j++ {
				out[gi*n+c.y*a.colsC+j] = c.cAccum[r*a.colsC+j]
			}
		}
	}
	return out
}

func putF64(b []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
}

func getF64(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func bytesToMatrix(b []byte, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = getF64(b, i)
	}
	return m
}

func encodeStrip(partial *linalg.Matrix, rowOff, rows int, out []byte) {
	cols := partial.Cols
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			putF64(out, r*cols+j, partial.At(rowOff+r, j))
		}
	}
}
