package matmul

import (
	"math"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckpt"
	"repro/internal/netrt"
)

// TestRecoveryKillRejoin: a 3-rank mesh checkpointing every 2 barriers
// (Warmup 1 + Iters 2 = 4 steps) loses rank 1 to the kill -9 chaos tier
// after step 3, rolls back to the step-2 commit, respawns the victim
// through the OnRespawn hook, and the re-run's product is bit-identical
// to the unfaulted simulator run.
func TestRecoveryKillRejoin(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { testRecoveryKillRejoin(t, mode) })
	}
}

func testRecoveryKillRejoin(t *testing.T, mode Mode) {
	const world = 3
	dir := t.TempDir()

	simCfg := netOracleConfig(mode)
	simRes := Run(simCfg)

	var (
		mu    sync.Mutex
		nodes []*netrt.Node
	)
	node := func(r int) *netrt.Node { mu.Lock(); defer mu.Unlock(); return nodes[r] }
	setNode := func(r int, n *netrt.Node) { mu.Lock(); nodes[r] = n; mu.Unlock() }

	kill := &chaos.Kill{Rank: 1, Step: 3, Via: chaos.KillerFunc(func(r int) error {
		node(r).Die()
		return nil
	})}

	type outcome struct {
		rank int
		res  Result
		errs []error
	}
	out := make(chan outcome, world+1)
	drive := func(rank int, n *netrt.Node) {
		cfg := netOracleConfig(mode)
		cfg.Backend = charm.NetBackend
		cfg.Net = n
		cfg.Ckpt = &charm.CkptOptions{Dir: dir, Every: 2}
		cfg.Kill = kill
		var res Result
		errs := charm.RunWithRecovery(n, charm.DefaultRecoveryAttempts, func() []error {
			res = Run(cfg)
			return res.Errors
		})
		out <- outcome{rank, res, errs}
	}
	respawn := func(rank int) {
		n, err := netrt.Start(netrt.Config{
			Rank: rank, World: world, Coord: node(0).Addr(), Recover: true,
		})
		if err != nil {
			t.Errorf("respawn rank %d: %v", rank, err)
			out <- outcome{rank: rank, errs: []error{err}}
			return
		}
		setNode(rank, n)
		drive(rank, n)
	}

	ns, err := netrt.StartLocalConfig(world, netrt.Config{Recover: true, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	nodes = ns
	mu.Unlock()
	defer func() {
		for r := 0; r < world; r++ {
			if n := node(r); n != nil {
				n.Close()
			}
		}
	}()

	for r := 0; r < world; r++ {
		go drive(r, ns[r])
	}

	victimFailed := false
	var finals []outcome
	for i := 0; i < world+1; i++ {
		o := <-out
		if o.rank == kill.Rank && len(o.errs) > 0 && !victimFailed {
			victimFailed = true
			continue
		}
		if len(o.errs) > 0 {
			t.Fatalf("rank %d did not recover: %v", o.rank, o.errs)
		}
		finals = append(finals, o)
	}
	if !victimFailed {
		t.Fatal("the killed rank's first incarnation reported no error")
	}

	if step, ok, err := ckpt.ReadCommit(dir, world); err != nil || !ok || step <= 0 {
		t.Fatalf("commit record after recovery: step=%d ok=%v err=%v", step, ok, err)
	}

	covered := 0
	for _, o := range finals {
		if len(o.res.C) != len(simRes.C) {
			t.Fatalf("rank %d: product size %d, sim %d", o.rank, len(o.res.C), len(simRes.C))
		}
		for i, v := range o.res.C {
			if math.IsNaN(v) {
				continue // not hosted by this rank
			}
			covered++
			if v != simRes.C[i] {
				t.Fatalf("rank %d: C differs at %d after recovery: net %v sim %v", o.rank, i, v, simRes.C[i])
			}
		}
	}
	if covered != len(simRes.C) {
		t.Errorf("recovered ranks covered %d of %d elements", covered, len(simRes.C))
	}
}
