package matmul

import (
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
)

// TestPropertyRandomConfigsProduceExactProduct: random PE counts, matrix
// sizes and platforms — the distributed product equals the serial
// reference through both transports.
func TestPropertyRandomConfigsProduceExactProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	prop := func(pesR, nR, itersR uint8, onBGP bool) bool {
		pes := 1 << (int(pesR) % 5) // 1..16
		// N must be divisible by the grid and shard splits; multiples of
		// 16 cover every grid this PE range produces.
		n := (int(nR)%4 + 1) * 16
		iters := int(itersR)%2 + 1
		plat := netmodel.AbeIB
		if onBGP {
			plat = netmodel.SurveyorBGP
		}
		for _, mode := range []Mode{Msg, Ckd} {
			res := Run(Config{
				Platform: plat, Mode: mode, PEs: pes, N: n,
				Iters: iters, Warmup: 0, Validate: true,
			})
			if res.MaxError > 1e-9 {
				t.Logf("mode %v pes=%d n=%d: max error %g", mode, pes, n, res.MaxError)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIterationTimeIndependentOfIters: in a deterministic
// simulation, per-iteration time must not depend on how many iterations
// are measured.
func TestPropertyIterationTimeStable(t *testing.T) {
	prop := func(pesR uint8) bool {
		pes := 1 << (int(pesR)%3 + 1) // 2..8
		base := Config{Platform: netmodel.SurveyorBGP, Mode: Ckd, PEs: pes, N: 256, Warmup: 1}
		short := base
		short.Iters = 1
		long := base
		long.Iters = 4
		a, b := Run(short), Run(long)
		diff := a.IterTime - b.IterTime
		if diff < 0 {
			diff = -diff
		}
		// Allow sub-microsecond rounding from the division.
		return diff < 1000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
