package matmul

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/netmodel"
)

// chaosRun executes a validate-mode multiply under the given adversity
// scenario. The replication fan-out means one dropped shard stalls a whole
// (x,z) or (z,y) line, so recovery must be airtight for the product to
// come out right.
func chaosRun(t *testing.T, sc *chaos.Scenario, mode Mode) Result {
	t.Helper()
	res := Run(Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      8,
		N:        32,
		Iters:    2, Warmup: 0,
		Validate: true,
		Chaos:    sc,
	})
	if sc != nil && len(res.Errors) > 0 {
		t.Fatalf("mode %v: chaos run failed to recover: %v", mode, res.Errors[0])
	}
	return res
}

// TestChaosFaultsDoNotChangeProduct drops 1% of all transfers under CPU
// noise with recovery on. The quiet distributed run differs from the
// serial reference by a fixed rounding residue (the accumulation order is
// deterministic but not the reference's), so bit-exactness is asserted
// against the quiet run's MaxError, not against zero.
func TestChaosFaultsDoNotChangeProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, nil, Msg).MaxError
	for seed := uint64(1); seed <= 3; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			res := chaosRun(t, chaos.Hostile(seed, 0.01), mode)
			if res.MaxError != base {
				t.Fatalf("seed %d mode %v: faults changed the product (max error %g != %g)",
					seed, mode, res.MaxError, base)
			}
		}
	}
}

func TestChaosNoiseDoesNotChangeProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, nil, Msg).MaxError
	for seed := uint64(1); seed <= 3; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			res := chaosRun(t, chaos.NoiseOnly(seed), mode)
			if res.MaxError != base {
				t.Fatalf("seed %d mode %v: noise changed the product (max error %g != %g)",
					seed, mode, res.MaxError, base)
			}
		}
	}
}
