package stencil

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/charm"
)

// TestCharePupRoundTrip is the element-state property test: packing a
// chare, unpacking into a fresh one, and repacking must reproduce the
// bytes and the state exactly, for arbitrary field contents.
func TestCharePupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		src := &chare{cur: make([]float64, rng.Intn(64))}
		for i := range src.cur {
			src.cur[i] = rng.NormFloat64()
		}
		var p charm.Packer
		src.Pup(&p)

		dst := &chare{}
		u := &charm.Unpacker{Buf: p.Buf}
		dst.Pup(u)
		if err := u.Err(); err != nil {
			t.Fatal(err)
		}
		if u.Rest() != 0 {
			t.Fatalf("trial %d: %d bytes left over", trial, u.Rest())
		}
		var p2 charm.Packer
		dst.Pup(&p2)
		if !bytes.Equal(p.Buf, p2.Buf) {
			t.Fatalf("trial %d: repack differs", trial)
		}
	}
}
