package stencil

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
)

// realOracleConfig is a small validate-mode configuration shared by the
// cross-backend equivalence tests.
func realOracleConfig(mode Mode) Config {
	return Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4,
		NX:       16, NY: 16, NZ: 8,
		Virtualization: 2,
		Iters:          3,
		Warmup:         1,
		Validate:       true,
	}
}

// TestRealBackendMatchesSim is the acceptance oracle: the same validated
// configuration must produce a bit-identical final field on the simulator
// and on the real goroutine backend — communication order may differ, the
// physics must not.
func TestRealBackendMatchesSim(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := realOracleConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.RealBackend
		realRes := Run(cfg)

		if len(realRes.Errors) > 0 {
			t.Fatalf("%v: real backend errors: %v", mode, realRes.Errors)
		}
		if simRes.Residual != realRes.Residual {
			t.Errorf("%v: residual differs: sim %v real %v", mode, simRes.Residual, realRes.Residual)
		}
		if simRes.FieldSum != realRes.FieldSum {
			t.Errorf("%v: field checksum differs: sim %v real %v", mode, simRes.FieldSum, realRes.FieldSum)
		}
		if len(simRes.Field) != len(realRes.Field) {
			t.Fatalf("%v: field sizes differ: %d vs %d", mode, len(simRes.Field), len(realRes.Field))
		}
		for i := range simRes.Field {
			if simRes.Field[i] != realRes.Field[i] {
				t.Fatalf("%v: field differs at %d: sim %v real %v", mode, i, simRes.Field[i], realRes.Field[i])
			}
		}
	}
}

// TestRealBackendImprovement runs both transports for real on the
// wall-clock and checks completion; the realhw benchmark asserts the
// direction of the gap at scale.
func TestRealBackendImprovement(t *testing.T) {
	cfg := realOracleConfig(Msg)
	cfg.Backend = charm.RealBackend
	msg, ckd, _ := Improvement(cfg)
	if msg.IterTime <= 0 || ckd.IterTime <= 0 {
		t.Fatalf("non-positive wall-clock iteration times: msg %v ckd %v", msg.IterTime, ckd.IterTime)
	}
}
