package stencil

import (
	"math"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckpt"
	"repro/internal/netrt"
)

// recoveryConfig checkpoints every 2 barriers; with Warmup 1 + Iters 3
// the run has 5 steps, so a kill after step 3 rolls back to the commit
// at step 2 and replays 3..5.
func recoveryConfig(mode Mode, dir string) Config {
	cfg := realOracleConfig(mode)
	cfg.Ckpt = &charm.CkptOptions{Dir: dir, Every: 2}
	return cfg
}

// TestRecoveryKillRejoin is the tentpole scenario end to end, in
// process: a 3-rank mesh loses rank 1 to the kill -9 chaos tier after
// step 3, the survivors roll back to the step-2 checkpoint, the victim
// is respawned through the OnRespawn hook, and the re-run completes
// with a final field bit-identical to the unfaulted simulator run.
func TestRecoveryKillRejoin(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { testRecoveryKillRejoin(t, mode) })
	}
}

func testRecoveryKillRejoin(t *testing.T, mode Mode) {
	const world = 3
	dir := t.TempDir()

	simCfg := realOracleConfig(mode)
	simRes := Run(simCfg)

	var (
		mu    sync.Mutex
		nodes []*netrt.Node
	)
	node := func(r int) *netrt.Node { mu.Lock(); defer mu.Unlock(); return nodes[r] }
	setNode := func(r int, n *netrt.Node) { mu.Lock(); nodes[r] = n; mu.Unlock() }

	kill := &chaos.Kill{Rank: 1, Step: 3, Via: chaos.KillerFunc(func(r int) error {
		node(r).Die()
		return nil
	})}

	type outcome struct {
		rank int
		res  Result
		errs []error
	}
	out := make(chan outcome, world+1)
	drive := func(rank int, n *netrt.Node) {
		cfg := recoveryConfig(mode, dir)
		cfg.Backend = charm.NetBackend
		cfg.Net = n
		cfg.Kill = kill
		var res Result
		errs := charm.RunWithRecovery(n, charm.DefaultRecoveryAttempts, func() []error {
			res = Run(cfg)
			return res.Errors
		})
		out <- outcome{rank, res, errs}
	}
	// The in-process analogue of the coordinator reaping and re-execing a
	// dead child: bring up a fresh Node for the killed rank (it dials the
	// coordinator's retained listener) and re-run the whole driver on it.
	respawn := func(rank int) {
		n, err := netrt.Start(netrt.Config{
			Rank: rank, World: world, Coord: node(0).Addr(), Recover: true,
		})
		if err != nil {
			t.Errorf("respawn rank %d: %v", rank, err)
			out <- outcome{rank: rank, errs: []error{err}}
			return
		}
		setNode(rank, n)
		drive(rank, n)
	}

	ns, err := netrt.StartLocalConfig(world, netrt.Config{Recover: true, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	nodes = ns
	mu.Unlock()
	defer func() {
		for r := 0; r < world; r++ {
			if n := node(r); n != nil {
				n.Close()
			}
		}
	}()

	for r := 0; r < world; r++ {
		go drive(r, ns[r])
	}

	// world original drivers + one respawned driver report in; the
	// victim's first incarnation must fail, everyone else must recover.
	victimFailed := false
	var finals []outcome
	for i := 0; i < world+1; i++ {
		o := <-out
		if o.rank == kill.Rank && len(o.errs) > 0 && !victimFailed {
			victimFailed = true
			continue
		}
		if len(o.errs) > 0 {
			t.Fatalf("rank %d did not recover: %v", o.rank, o.errs)
		}
		finals = append(finals, o)
	}
	if !victimFailed {
		t.Fatal("the killed rank's first incarnation reported no error")
	}

	// The recovery really used the checkpoint machinery: a commit record
	// naming a positive step survives the run.
	if step, ok, err := ckpt.ReadCommit(dir, world); err != nil || !ok || step <= 0 {
		t.Fatalf("commit record after recovery: step=%d ok=%v err=%v", step, ok, err)
	}

	// Bit-identical acceptance: the union of the recovered ranks' fields
	// must tile the domain and match the unfaulted sim run exactly.
	covered := 0
	for _, o := range finals {
		if len(o.res.Field) != len(simRes.Field) {
			t.Fatalf("rank %d: field size %d, sim %d", o.rank, len(o.res.Field), len(simRes.Field))
		}
		for i, v := range o.res.Field {
			if math.IsNaN(v) {
				continue // not hosted by this rank
			}
			covered++
			if v != simRes.Field[i] {
				t.Fatalf("rank %d: field differs at %d after recovery: net %v sim %v", o.rank, i, v, simRes.Field[i])
			}
		}
	}
	if covered != len(simRes.Field) {
		t.Errorf("recovered ranks covered %d of %d cells", covered, len(simRes.Field))
	}
}
