package stencil

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// chaosRun executes a validate-mode stencil with random "OS noise"
// injected: bursts of CPU time reserved on random PEs at random virtual
// times. Noise reorders message arrivals, poll passes and compute starts
// relative to each other — any hidden ordering assumption in the halo
// protocol (for either transport) breaks the bit-exact field comparison.
func chaosRun(t *testing.T, mode Mode, seed uint64) []float64 {
	t.Helper()
	const nx, ny, nz, iters = 10, 8, 6, 3
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4, Virtualization: 2,
		NX: nx, NY: ny, NZ: nz,
		Iters: iters, Warmup: 0, Validate: true,
	}
	res := runWithNoise(cfg, seed)
	return res.Field
}

// runWithNoise is Run plus deterministic noise events, injected through
// the package's pre-start test hook.
func runWithNoise(cfg Config, seed uint64) Result {
	testPreRun = func(eng *sim.Engine, mach *machine.Machine) {
		injectNoise(eng, mach, seed)
	}
	defer func() { testPreRun = nil }()
	return Run(cfg)
}

func TestChaosNoiseDoesNotChangePhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	baseMsg := chaosRun(t, Msg, 0)
	baseCkd := chaosRun(t, Ckd, 0)
	for i := range baseMsg {
		if baseMsg[i] != baseCkd[i] {
			t.Fatalf("baseline transports disagree at %d", i)
		}
	}
	for seed := uint64(1); seed <= 8; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, mode, seed)
			for i := range baseMsg {
				if got[i] != baseMsg[i] {
					t.Fatalf("seed %d mode %v: noise changed the physics at cell %d", seed, mode, i)
				}
			}
		}
	}
}

// TestChaosNoiseChangesTiming sanity-checks that the noise actually
// perturbs the schedule (otherwise the test above proves nothing).
func TestChaosNoiseChangesTiming(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB, Mode: Ckd,
		PEs: 4, Virtualization: 2,
		NX: 10, NY: 8, NZ: 6,
		Iters: 3, Warmup: 0, Validate: true,
	}
	quiet := Run(cfg)
	noisy := runWithNoise(cfg, 12345)
	if quiet.IterTime == noisy.IterTime {
		t.Fatal("noise injection had no timing effect — chaos tests are vacuous")
	}
}

// injectNoise schedules random CPU bursts across the run window.
func injectNoise(eng *sim.Engine, mach *machine.Machine, seed uint64) {
	r := rng.New(seed)
	const bursts = 60
	for i := 0; i < bursts; i++ {
		pe := r.Intn(mach.NumPEs())
		at := sim.Time(r.Intn(int(2 * sim.Millisecond)))
		dur := sim.Time(r.Intn(int(40 * sim.Microsecond)))
		eng.At(at, func() {
			mach.PE(pe).Reserve(dur)
		})
	}
}
