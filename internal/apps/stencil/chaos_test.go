package stencil

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/netmodel"
)

// chaosRun executes a validate-mode stencil under the given adversity
// scenario. Noise reorders message arrivals, poll passes and compute
// starts relative to each other; network faults additionally exercise the
// recovery machinery — any hidden ordering assumption in the halo
// protocol (for either transport) breaks the bit-exact field comparison.
func chaosRun(t *testing.T, mode Mode, sc *chaos.Scenario) Result {
	t.Helper()
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4, Virtualization: 2,
		NX: 10, NY: 8, NZ: 6,
		Iters: 3, Warmup: 0, Validate: true,
		Chaos: sc,
	}
	res := Run(cfg)
	if sc != nil && len(res.Errors) > 0 {
		t.Fatalf("mode %v: chaos run failed to recover: %v", mode, res.Errors[0])
	}
	return res
}

func TestChaosNoiseDoesNotChangePhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	baseMsg := chaosRun(t, Msg, nil).Field
	baseCkd := chaosRun(t, Ckd, nil).Field
	for i := range baseMsg {
		if baseMsg[i] != baseCkd[i] {
			t.Fatalf("baseline transports disagree at %d", i)
		}
	}
	for seed := uint64(1); seed <= 8; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, mode, chaos.NoiseOnly(seed)).Field
			for i := range baseMsg {
				if got[i] != baseMsg[i] {
					t.Fatalf("seed %d mode %v: noise changed the physics at cell %d", seed, mode, i)
				}
			}
		}
	}
}

// TestChaosFaultsDoNotChangePhysics is the acceptance scenario: 1% of all
// transfers dropped, plus CPU noise, with the reliability protocol and
// the recovering watchdog switched on. Both transports must still finish
// with bit-exact fields.
func TestChaosFaultsDoNotChangePhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	base := chaosRun(t, Msg, nil).Field
	for seed := uint64(1); seed <= 4; seed++ {
		for _, mode := range []Mode{Msg, Ckd} {
			got := chaosRun(t, mode, chaos.Hostile(seed, 0.01)).Field
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d mode %v: faults changed the physics at cell %d", seed, mode, i)
				}
			}
		}
	}
}

// TestChaosNoiseChangesTiming sanity-checks that the noise actually
// perturbs the schedule (otherwise the tests above prove nothing).
func TestChaosNoiseChangesTiming(t *testing.T) {
	quiet := chaosRun(t, Ckd, nil)
	noisy := chaosRun(t, Ckd, chaos.NoiseOnly(12345))
	if quiet.IterTime == noisy.IterTime {
		t.Fatal("noise injection had no timing effect — chaos tests are vacuous")
	}
}

// TestChaosUnprotectedFaultsSurfaceAsErrors pins the diagnostic for the
// footgun of injecting faults with every recovery mechanism off: the run
// stalls, and instead of a panic (quiet runs) or silence, Result.Errors
// explains what was lost and how to recover it.
func TestChaosUnprotectedFaultsSurfaceAsErrors(t *testing.T) {
	sc := chaos.Hostile(3, 0.05)
	sc.Reliable = false
	sc.Watchdog = nil
	sc.Noise = nil
	cfg := Config{
		Platform: netmodel.AbeIB,
		Mode:     Msg,
		PEs:      4, Virtualization: 2,
		NX: 10, NY: 8, NZ: 6,
		Iters: 3, Warmup: 0, Validate: true,
		Chaos: sc,
	}
	res := Run(cfg)
	if len(res.Errors) == 0 {
		t.Fatal("unprotected faulted run surfaced no error")
	}
	if !strings.Contains(res.Errors[0].Error(), "no recovery") {
		t.Fatalf("unhelpful diagnostic: %v", res.Errors[0])
	}
}

// TestChaosFaultsAreInjected sanity-checks the fault plane actually fired
// during the hostile scenario (otherwise recovery was never exercised).
func TestChaosFaultsAreInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	res := chaosRun(t, Ckd, chaos.Hostile(2, 0.01))
	if res.Counters["net.dropped"] == 0 {
		t.Fatal("hostile scenario dropped nothing — recovery untested")
	}
}
