package stencil

import (
	"math"
	"testing"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netrt"
	"repro/internal/trace"
)

// lbConfig is a skewed validate-mode configuration with balancing on:
// the first half of the chare order wastes 4x extra compute, and a
// greedy round runs every second barrier.
func lbConfig(mode Mode) Config {
	cfg := realOracleConfig(mode)
	cfg.Skew = 4
	cfg.LBEvery = 2
	cfg.LBStrategy = "greedy"
	return cfg
}

// TestLBSimMigratesAndPreservesPhysics is the subsystem's core oracle:
// a skewed run with load balancing must actually migrate chares (the
// imbalance is engineered to demand it) and still finish with the
// bit-identical field, residual, and checksum of the same skewed run
// with balancing off — migration moves work, never physics.
func TestLBSimMigratesAndPreservesPhysics(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		base := lbConfig(mode)
		base.LBEvery = 0
		base.LBStrategy = ""
		baseRes := Run(base)

		res := Run(lbConfig(mode))
		if len(res.Errors) > 0 {
			t.Fatalf("%v: balanced run failed: %v", mode, res.Errors)
		}
		if res.Counters[trace.CntLBMigrations] == 0 {
			t.Fatalf("%v: skewed run performed no migrations — LB untested", mode)
		}
		if res.Counters[trace.CntLBRounds] == 0 {
			t.Fatalf("%v: no balancing rounds ran", mode)
		}
		if mode == Ckd && res.Counters[trace.CntLBRehomedRecv] == 0 {
			t.Fatalf("%v: migrations rehomed no receive endpoints", mode)
		}
		if res.Residual != baseRes.Residual {
			t.Errorf("%v: residual differs: lb %v base %v", mode, res.Residual, baseRes.Residual)
		}
		if res.FieldSum != baseRes.FieldSum {
			t.Errorf("%v: checksum differs: lb %v base %v", mode, res.FieldSum, baseRes.FieldSum)
		}
		for i := range baseRes.Field {
			if res.Field[i] != baseRes.Field[i] {
				t.Fatalf("%v: field differs at %d: lb %v base %v", mode, i, res.Field[i], baseRes.Field[i])
			}
		}
	}
}

// TestLBSimReducesSpread checks the strategy did its actual job: the
// measured max/mean load spread after the planned moves is below the
// spread before them (both accumulate per round in the counters).
func TestLBSimReducesSpread(t *testing.T) {
	res := Run(lbConfig(Ckd))
	if len(res.Errors) > 0 {
		t.Fatal(res.Errors)
	}
	before := res.Counters[trace.CntLBSpreadBefore]
	after := res.Counters[trace.CntLBSpreadAfter]
	if before == 0 {
		t.Fatal("no spread recorded")
	}
	if after >= before {
		t.Fatalf("balancing did not reduce the load spread: before %d after %d (permille, summed over rounds)", before, after)
	}
}

// TestLBSimIsDeterministic pins the simulator guarantee: two identical
// skewed balanced runs agree on every counter — including the
// migration count and rehome bookkeeping.
func TestLBSimIsDeterministic(t *testing.T) {
	a := Run(lbConfig(Ckd))
	b := Run(lbConfig(Ckd))
	if len(a.Errors)+len(b.Errors) > 0 {
		t.Fatal(a.Errors, b.Errors)
	}
	if len(a.Counters) != len(b.Counters) {
		t.Fatalf("counter sets differ: %v vs %v", a.Counters, b.Counters)
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Errorf("counter %s differs across identical runs: %d vs %d", k, v, b.Counters[k])
		}
	}
	if a.TotalEvents != b.TotalEvents {
		t.Errorf("event counts differ: %d vs %d", a.TotalEvents, b.TotalEvents)
	}
}

// TestLBRealBackendMatchesSim migrates for real: chares move between
// live worker goroutines, CkDirect channels rehome through scheduler
// tasks, and the field must still match the simulator bit for bit.
// (Wall-clock load reports make the real plan nondeterministic, so only
// physics is compared — and at skew 4 with half the chares hot, any
// sane plan migrates something.)
func TestLBRealBackendMatchesSim(t *testing.T) {
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := lbConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.RealBackend
		realRes := Run(cfg)
		if len(realRes.Errors) > 0 {
			t.Fatalf("%v: real backend errors: %v", mode, realRes.Errors)
		}
		if realRes.Counters[trace.CntLBRounds] == 0 {
			t.Fatalf("%v: no balancing rounds ran", mode)
		}
		if simRes.Residual != realRes.Residual {
			t.Errorf("%v: residual differs: sim %v real %v", mode, simRes.Residual, realRes.Residual)
		}
		for i := range simRes.Field {
			if simRes.Field[i] != realRes.Field[i] {
				t.Fatalf("%v: field differs at %d: sim %v real %v", mode, i, simRes.Field[i], realRes.Field[i])
			}
		}
	}
}

// TestLBNetMigratesAcrossRanks is the distributed acceptance test: on a
// two-rank mesh the skew lands entirely on rank 0's PEs, so balancing
// must ship chare state across the wire (FMove), rebind channels on
// both sides, and still tile the domain with bit-identical cells.
func TestLBNetMigratesAcrossRanks(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := lbConfig(mode)
		// Live load reports are wall-clock; the spin must dominate the
		// per-dispatch overhead even with the race detector's slowdown,
		// or no plan reliably moves anything (~200µs per hot chare).
		cfg.Skew = 200
		simRes := Run(cfg)
		cfg.Backend = charm.NetBackend
		results := runNetWorld(t, nodes, cfg)
		for rank, res := range results {
			if len(res.Errors) > 0 {
				t.Fatalf("%v rank %d: %v", mode, rank, res.Errors)
			}
		}
		if results[0].Counters[trace.CntLBMigrations] == 0 {
			t.Fatalf("%v: root planned no migrations", mode)
		}
		covered := 0
		for rank, res := range results {
			for i, v := range res.Field {
				if math.IsNaN(v) {
					continue
				}
				covered++
				if v != simRes.Field[i] {
					t.Fatalf("%v rank %d: field differs at %d: net %v sim %v", mode, rank, i, v, simRes.Field[i])
				}
			}
		}
		if covered != len(simRes.Field) {
			t.Errorf("%v: ranks covered %d of %d cells after migration", mode, covered, len(simRes.Field))
		}
	}
}

// TestLBChaosPreservesPhysics runs skewed balanced configurations under
// CPU noise and 1% fault injection: migrations interleave with
// retransmits and recovery, and the field must still match the quiet
// unbalanced baseline bit for bit.
func TestLBChaosPreservesPhysics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	quiet := func(mode Mode) Config {
		cfg := Config{
			Platform: lbConfig(mode).Platform,
			Mode:     mode,
			PEs:      4, Virtualization: 2,
			NX: 10, NY: 8, NZ: 6,
			Iters: 4, Warmup: 0, Validate: true,
			// The chare blocks here are tiny, so the per-element base load
			// is communication-dominated; a mild skew would leave no move
			// that shrinks the pair maximum (greedy would correctly plan
			// nothing). Skew hard enough that compute dominates.
			Skew: 30,
		}
		return cfg
	}
	for _, mode := range []Mode{Msg, Ckd} {
		base := Run(quiet(mode))
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := quiet(mode)
			cfg.LBEvery = 2
			cfg.LBStrategy = "greedy"
			cfg.Chaos = chaos.Hostile(seed, 0.01)
			res := Run(cfg)
			if len(res.Errors) > 0 {
				t.Fatalf("%v seed %d: chaos LB run failed: %v", mode, seed, res.Errors)
			}
			if res.Counters[trace.CntLBMigrations] == 0 {
				t.Fatalf("%v seed %d: no migrations under chaos — recovery interplay untested", mode, seed)
			}
			for i := range base.Field {
				if res.Field[i] != base.Field[i] {
					t.Fatalf("%v seed %d: chaos+LB changed the physics at cell %d", mode, seed, i)
				}
			}
		}
	}
}
