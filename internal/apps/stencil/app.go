package stencil

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/lb"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Face directions. opposite(d) == d^1.
const (
	xp = iota
	xm
	yp
	ym
	zp
	zm
	nDirs
)

var dirDelta = [nDirs][3]int{
	{1, 0, 0}, {-1, 0, 0},
	{0, 1, 0}, {0, -1, 0},
	{0, 0, 1}, {0, 0, -1},
}

func opposite(d int) int { return d ^ 1 }

// oobPattern is a NaN payload no finite Jacobi value ever encodes.
const oobPattern uint64 = 0x7FF8DEADF00D0001

type app struct {
	cfg  Config
	grid [3]int
	rts  *charm.RTS
	mgr  *ckdirect.Manager
	arr  *charm.Array
	ck   *charm.Checkpointer
	bal  *lb.Balancer

	iterEP, faceEP, ckptEP charm.EP
	chares                 []*chare

	barriers     []sim.Time
	lastResidual float64
	totalIters   int
}

type chare struct {
	app *app
	idx charm.Index
	pe  int

	bx, by, bz    int // interior extent
	gx0, gy0, gz0 int // global origin

	neighbors [nDirs]bool
	nNbr      int
	hot       bool // in the skewed (artificially loaded) half

	// Validate-mode field data (nil in model mode).
	cur, next []float64

	// Per-direction face buffers. faceOut is what this chare sends; in
	// CKD mode it is the registered source region's storage.
	faceOut  [nDirs][]byte
	faceVals [nDirs][]float64 // decoded incoming ghost values

	sendRegions [nDirs]*machine.Region
	recvRegions [nDirs]*machine.Region
	inHandles   [nDirs]*ckdirect.Handle // channels delivering into this chare
	outHandles  [nDirs]*ckdirect.Handle // channels this chare puts on

	got  int
	sent bool
}

// split computes the extent and offset of part idx when n cells are
// divided over parts blocks as evenly as possible.
func split(n, parts, idx int) (size, offset int) {
	base, rem := n/parts, n%parts
	size = base
	if idx < rem {
		size++
	}
	offset = idx*base + minInt(idx, rem)
	return
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (a *app) lin(i, j, k int) int {
	return i + a.grid[0]*(j+a.grid[1]*k)
}

func (a *app) peOf(ix charm.Index) int {
	total := a.grid[0] * a.grid[1] * a.grid[2]
	return a.lin(ix[0], ix[1], ix[2]) * a.cfg.PEs / total
}

// faceDims gives the 2-D extent of a face in direction d.
func (c *chare) faceDims(d int) (int, int) {
	switch d {
	case xp, xm:
		return c.by, c.bz
	case yp, ym:
		return c.bx, c.bz
	default:
		return c.bx, c.by
	}
}

func (c *chare) faceBytes(d int) int {
	u, v := c.faceDims(d)
	return u * v * 8
}

func (a *app) build() {
	a.totalIters = a.cfg.Warmup + a.cfg.Iters + 1
	a.arr = a.rts.NewArray("stencil", a.peOf)
	cx, cy, cz := a.grid[0], a.grid[1], a.grid[2]
	for k := 0; k < cz; k++ {
		for j := 0; j < cy; j++ {
			for i := 0; i < cx; i++ {
				c := &chare{app: a, idx: charm.Idx3(i, j, k)}
				c.bx, c.gx0 = split(a.cfg.NX, cx, i)
				c.by, c.gy0 = split(a.cfg.NY, cy, j)
				c.bz, c.gz0 = split(a.cfg.NZ, cz, k)
				c.pe = a.peOf(c.idx)
				c.hot = a.cfg.Skew > 0 && 2*a.lin(i, j, k) < cx*cy*cz
				for d := 0; d < nDirs; d++ {
					ni := i + dirDelta[d][0]
					nj := j + dirDelta[d][1]
					nk := k + dirDelta[d][2]
					if ni >= 0 && ni < cx && nj >= 0 && nj < cy && nk >= 0 && nk < cz {
						c.neighbors[d] = true
						c.nNbr++
					}
				}
				if a.cfg.Validate {
					c.cur = make([]float64, c.bx*c.by*c.bz)
					c.next = make([]float64, c.bx*c.by*c.bz)
					c.initField()
				}
				a.chares = append(a.chares, c)
				a.arr.Insert(c.idx, c)
			}
		}
	}

	a.iterEP = a.arr.EntryMethod("iterate", func(ctx *charm.Ctx, msg *charm.Message) {
		ctx.Obj().(*chare).iterate(ctx)
	})
	a.faceEP = a.arr.EntryMethod("face", func(ctx *charm.Ctx, msg *charm.Message) {
		c := ctx.Obj().(*chare)
		c.onFace(ctx, msg.Tag, msg.Data)
	})
	a.ckptEP = a.arr.EntryMethod("ckpt", func(ctx *charm.Ctx, msg *charm.Message) {
		// One element reaching the cut; the last local one writes this
		// rank's snapshot. The extra barrier round resumes iteration
		// only after every rank's snapshot is durable.
		a.ck.ElementSave(msg.Tag)
		a.arr.ContributeFrom(ctx.Index(), 1, 0)
	})
	a.arr.SetReductionClient(charm.Sum, func(ctx *charm.Ctx, vals []float64) {
		if a.ck != nil && a.ck.InCheckpoint() {
			// The checkpoint barrier completed: every rank's snapshot is
			// on disk, so the commit record may name the step.
			if _, err := a.ck.Commit(); err != nil {
				a.rts.ReportError(fmt.Errorf("stencil: checkpoint commit: %w", err))
				return
			}
			a.afterBarrier(ctx, len(a.barriers))
			return
		}
		if a.bal != nil && a.bal.InBalance() {
			// The balancing round's extra reduction completed: every
			// move is applied and every channel rehomed, globally.
			// Resume the interrupted step; it is not a barrier.
			a.bal.Finish()
			a.afterBarrier(ctx, len(a.barriers))
			return
		}
		a.barriers = append(a.barriers, ctx.Now())
		a.lastResidual = vals[1]
		step := len(a.barriers)
		// The kill -9 chaos tier fires here: the root client is the one
		// place with a globally ordered step count.
		a.cfg.Kill.Fire(step, a.cfg.Net)
		if a.ck != nil && a.ck.Due(step) && step < a.totalIters {
			a.ck.Begin(step)
			ctx.Broadcast(a.arr, a.ckptEP, &charm.Message{Size: 8, Tag: step})
			return
		}
		if a.bal != nil && a.bal.Due(step) && step < a.totalIters {
			// A checkpoint due at the same step won above; the balancer
			// waits for its next period.
			a.bal.Begin(ctx)
			return
		}
		a.afterBarrier(ctx, step)
	})

	if a.cfg.Mode == Ckd {
		a.buildChannels()
	}

	if a.cfg.LBEvery > 0 {
		strat, err := lb.ParseStrategy(a.cfg.LBStrategy)
		if err != nil {
			panic(err)
		}
		if strat == nil {
			panic("stencil: LBEvery set without an LBStrategy")
		}
		bal, err := lb.New(a.rts, lb.Options{
			Every:    a.cfg.LBEvery,
			Strategy: strat,
			// The app's contributions are {1, residual}; the balancing
			// round's must match that width.
			Contrib:   []float64{1, 0},
			OnMigrate: a.onMigrate,
		})
		if err != nil {
			panic(err)
		}
		bal.Attach(a.arr)
		a.bal = bal
	}
}

// onMigrate follows one chare to its new PE: placement bookkeeping plus
// rehoming the six CkDirect channels touching it. Called on every rank
// for every move (SPMD, like the location update itself); done fires
// once the receive-side rehomes — which chain through scheduler tasks
// on live backends — have all completed.
func (a *app) onMigrate(array int, idx charm.Index, from, to int, done func()) {
	c := a.arr.Obj(idx).(*chare)
	c.pe = to
	if a.mgr == nil || c.nNbr == 0 {
		done()
		return
	}
	var mu sync.Mutex
	left := c.nNbr
	sub := func() {
		mu.Lock()
		left--
		fin := left == 0
		mu.Unlock()
		if fin {
			done()
		}
	}
	for d := 0; d < nDirs; d++ {
		if !c.neighbors[d] {
			continue
		}
		a.mgr.RehomeSend(c.outHandles[d], to)
		a.mgr.RehomeRecv(c.inHandles[d], to, sub)
	}
}

// buildChannels wires one CkDirect channel per (chare, incoming face):
// the receiver creates the handle over its face buffer; the neighbour
// associates its matching outgoing face buffer.
func (a *app) buildChannels() {
	mach := a.rts.Machine()
	virtual := !a.cfg.Validate && a.cfg.Backend == charm.SimBackend
	// Pass 1: receivers create handles.
	for _, c := range a.chares {
		c := c
		for d := 0; d < nDirs; d++ {
			if !c.neighbors[d] {
				continue
			}
			d := d
			size := c.faceBytes(d)
			var region *machine.Region
			if virtual {
				region = mach.AllocRegion(c.pe, size, true)
			} else {
				buf := make([]byte, size)
				region = mach.WrapRegion(c.pe, buf)
			}
			c.recvRegions[d] = region
			h, err := a.mgr.CreateHandle(c.pe, region, oobPattern, func(ctx *charm.Ctx) {
				c.onFace(ctx, d, region.Bytes())
			})
			if err != nil {
				panic(err)
			}
			c.inHandles[d] = h
		}
	}
	// Pass 2: senders associate their outgoing buffers.
	for _, c := range a.chares {
		for d := 0; d < nDirs; d++ {
			if !c.neighbors[d] {
				continue
			}
			nb := a.neighborOf(c, d)
			h := nb.inHandles[opposite(d)]
			size := c.faceBytes(d)
			var region *machine.Region
			if virtual {
				region = mach.AllocRegion(c.pe, size, true)
			} else {
				c.faceOut[d] = make([]byte, size)
				region = mach.WrapRegion(c.pe, c.faceOut[d])
			}
			c.sendRegions[d] = region
			if err := a.mgr.AssocLocal(h, c.pe, region); err != nil {
				panic(err)
			}
			c.outHandles[d] = h
		}
	}
}

func (a *app) neighborOf(c *chare, d int) *chare {
	ni := c.idx[0] + dirDelta[d][0]
	nj := c.idx[1] + dirDelta[d][1]
	nk := c.idx[2] + dirDelta[d][2]
	return a.arr.Obj(charm.Idx3(ni, nj, nk)).(*chare)
}

// afterBarrier broadcasts the next iteration (or nothing, ending the
// run) once step barriers — iterate barriers, not checkpoint rounds —
// have completed.
func (a *app) afterBarrier(ctx *charm.Ctx, step int) {
	if step < a.totalIters {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	}
}

// Pup checkpoints the chare's state: the current field. next is
// per-iteration scratch, faceVals are re-decoded on the next arrival,
// and got/sent are zero at every barrier cut.
func (c *chare) Pup(p charm.Puper) {
	p.Float64s(&c.cur)
}

func (a *app) start() {
	a.rts.StartAt(0, func(ctx *charm.Ctx) {
		ctx.Broadcast(a.arr, a.iterEP, &charm.Message{Size: 8})
	})
}

// iterate begins one iteration on a chare: extract the boundary faces of
// the current field and ship them to the neighbours.
func (c *chare) iterate(ctx *charm.Ctx) {
	a := c.app
	for d := 0; d < nDirs; d++ {
		if !c.neighbors[d] {
			continue
		}
		if a.cfg.Validate {
			if a.cfg.Mode == Ckd {
				c.extractFace(d, c.faceOut[d])
			} else {
				buf := make([]byte, c.faceBytes(d))
				c.extractFace(d, buf)
				c.faceOut[d] = buf
			}
		}
		nb := a.neighborOf(c, d)
		switch a.cfg.Mode {
		case Msg:
			ctx.Send(a.arr, nb.idx, a.faceEP, &charm.Message{
				Size: c.faceBytes(d),
				Data: c.faceOut[d],
				Tag:  opposite(d),
			})
		case Ckd:
			if err := a.mgr.Put(c.outHandles[d]); err != nil {
				panic(err)
			}
		}
	}
	c.sent = true
	c.maybeCompute(ctx)
}

// maybeCompute fires the update once this chare has both received every
// ghost face and extracted/sent its own faces for the iteration. The
// second condition matters: CkDirect callbacks bypass the scheduler, so
// a fast neighbour's put can arrive before this chare's own iterate
// broadcast — computing then would update the field before the outgoing
// faces were extracted, shipping next-iteration data to the neighbour.
func (c *chare) maybeCompute(ctx *charm.Ctx) {
	if !c.sent || c.got < c.nNbr {
		return
	}
	c.sent = false
	c.got = 0
	c.computeAndBarrier(ctx)
}

// onFace records an arrived ghost face (by reference — no copy in either
// mode) and fires the compute phase when the halo is complete.
func (c *chare) onFace(ctx *charm.Ctx, d int, data []byte) {
	if c.app.cfg.Validate {
		c.faceVals[d] = decodeFace(data)
	}
	c.got++
	c.maybeCompute(ctx)
}

func (c *chare) computeAndBarrier(ctx *charm.Ctx) {
	a := c.app
	elems := c.bx * c.by * c.bz
	ctx.Charge(sim.Nanoseconds(a.cfg.Platform.StencilPerElementNS * float64(elems)))
	if c.hot {
		// Artificial imbalance: the hot half wastes Skew times extra
		// compute. Charged under sim, spun under the live backends
		// (Charge is a no-op there), and accounted to the balancer
		// explicitly — the compute may run inside a CkDirect arrival
		// callback, which the dispatch meter never sees.
		extra := sim.Nanoseconds(a.cfg.Platform.StencilPerElementNS * a.cfg.Skew * float64(elems))
		ctx.Charge(extra)
		if a.cfg.Backend != charm.SimBackend {
			spinFor(extra)
		}
		if a.bal != nil {
			a.bal.Account(a.arr.Ord(), c.idx, c.pe, extra)
		}
	}
	residual := 0.0
	if a.cfg.Validate {
		residual = c.jacobi()
		c.cur, c.next = c.next, c.cur
	}
	if a.cfg.Mode == Ckd {
		for d := 0; d < nDirs; d++ {
			if c.neighbors[d] {
				// Single-phase application: mark and resume polling
				// together (the paper's plain CkDirect_ready).
				a.mgr.Ready(c.inHandles[d])
			}
		}
	}
	a.arr.ContributeFrom(c.idx, 1, residual)
}

// spinFor burns real CPU for roughly d — the live backends' stand-in
// for Charge, whose modelled cost they ignore.
func spinFor(d sim.Time) {
	deadline := time.Now().Add(time.Duration(d))
	for time.Now().Before(deadline) {
	}
}

// initField seeds the interior with a deterministic pattern shared with
// the serial reference.
func (c *chare) initField() {
	i := 0
	for x := 0; x < c.bx; x++ {
		for y := 0; y < c.by; y++ {
			for z := 0; z < c.bz; z++ {
				c.cur[i] = seedValue(c.gx0+x, c.gy0+y, c.gz0+z)
				i++
			}
		}
	}
}

// seedValue is the shared initial condition.
func seedValue(gx, gy, gz int) float64 {
	return float64((gx*31+gy*17+gz*7)%997) / 997
}

func (a *app) fieldSum() float64 {
	if !a.cfg.Validate {
		return 0
	}
	s := 0.0
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue // net backend: this rank never ran the chare
		}
		for _, v := range c.cur {
			s += v
		}
	}
	return s
}

// validateLocal checks the hosted chares' final field against the serial
// reference — the distributed backend's validation path, where no single
// process holds the whole domain but every process shares the oracle.
func (a *app) validateLocal() []error {
	ref := SerialReference(a.cfg.NX, a.cfg.NY, a.cfg.NZ, a.totalIters)
	var errs []error
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		i := 0
		for x := 0; x < c.bx; x++ {
			for y := 0; y < c.by; y++ {
				for z := 0; z < c.bz; z++ {
					gx, gy, gz := c.gx0+x, c.gy0+y, c.gz0+z
					want := ref[(gx*a.cfg.NY+gy)*a.cfg.NZ+gz]
					if c.cur[i] != want {
						errs = append(errs, fmt.Errorf(
							"stencil: cell (%d,%d,%d) = %v, serial reference %v",
							gx, gy, gz, c.cur[i], want))
						if len(errs) >= 5 {
							return errs
						}
					}
					i++
				}
			}
		}
	}
	return errs
}

// GatherField assembles the full field from a validate-mode run (tests).
// Under the net backend only hosted chares hold live data; the rest of
// the domain is marked NaN so a comparison cannot silently pass on
// never-computed cells.
func gatherField(a *app) []float64 {
	out := make([]float64, a.cfg.NX*a.cfg.NY*a.cfg.NZ)
	if a.cfg.Backend == charm.NetBackend {
		for i := range out {
			out[i] = math.NaN()
		}
	}
	for _, c := range a.chares {
		if !a.rts.HostsPE(c.pe) {
			continue
		}
		i := 0
		for x := 0; x < c.bx; x++ {
			for y := 0; y < c.by; y++ {
				for z := 0; z < c.bz; z++ {
					gx, gy, gz := c.gx0+x, c.gy0+y, c.gz0+z
					out[(gx*a.cfg.NY+gy)*a.cfg.NZ+gz] = c.cur[i]
					i++
				}
			}
		}
	}
	return out
}

func decodeFace(data []byte) []float64 {
	vals := make([]float64, len(data)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals
}
