package stencil

import (
	"math"
	"testing"

	"repro/internal/netmodel"
)

func TestChooseGridCoversAndStaysDivisible(t *testing.T) {
	cases := []struct {
		want, nx, ny, nz int
	}{
		{8, 64, 64, 32}, {64, 1024, 1024, 512}, {2048, 1024, 1024, 512},
		{32768, 1024, 1024, 512}, {1, 16, 16, 16},
	}
	for _, c := range cases {
		g := chooseGrid(c.want, c.nx, c.ny, c.nz)
		if g[0]*g[1]*g[2] < c.want {
			t.Errorf("chooseGrid(%d) = %v too small", c.want, g)
		}
		if c.nx/g[0] < 1 || c.ny/g[1] < 1 || c.nz/g[2] < 1 {
			t.Errorf("chooseGrid(%d, %d,%d,%d) = %v splits below one cell",
				c.want, c.nx, c.ny, c.nz, g)
		}
	}
}

func TestChooseGridNearCubicBlocks(t *testing.T) {
	g := chooseGrid(2048, 1024, 1024, 512)
	bx, by, bz := 1024/g[0], 1024/g[1], 512/g[2]
	max := maxInt(bx, maxInt(by, bz))
	min := minInt(bx, minInt(by, bz))
	if max > 2*min {
		t.Fatalf("blocks %dx%dx%d too skewed (grid %v)", bx, by, bz, g)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSplitEvenAndUneven(t *testing.T) {
	total := 0
	for i := 0; i < 3; i++ {
		size, off := split(10, 3, i)
		if off != total {
			t.Fatalf("part %d offset %d, want %d", i, off, total)
		}
		total += size
	}
	if total != 10 {
		t.Fatalf("parts sum to %d", total)
	}
}

// TestValidateMatchesSerialReference: both distributed variants must
// reproduce the serial Jacobi field exactly (same FP operation order per
// cell).
func TestValidateMatchesSerialReference(t *testing.T) {
	const nx, ny, nz, iters = 12, 10, 8, 4
	ref := SerialReference(nx, ny, nz, iters+1) // +1: warmup iteration also updates
	for _, mode := range []Mode{Msg, Ckd} {
		res := Run(Config{
			Platform: netmodel.AbeIB,
			Mode:     mode,
			PEs:      4, Virtualization: 2,
			NX: nx, NY: ny, NZ: nz,
			Iters: iters, Warmup: 0, Validate: true,
		})
		if len(res.Field) != len(ref) {
			t.Fatalf("%v: field size %d", mode, len(res.Field))
		}
		for i := range ref {
			if res.Field[i] != ref[i] {
				t.Fatalf("%v: field[%d] = %g, reference %g", mode, i, res.Field[i], ref[i])
			}
		}
	}
}

// TestMsgAndCkdComputeIdenticalFields on a bigger grid with more PEs.
func TestMsgAndCkdComputeIdenticalFields(t *testing.T) {
	cfg := Config{
		Platform: netmodel.SurveyorBGP,
		PEs:      8, Virtualization: 4,
		NX: 16, NY: 16, NZ: 16,
		Iters: 3, Warmup: 1, Validate: true,
	}
	cfg.Mode = Msg
	msg := Run(cfg)
	cfg.Mode = Ckd
	ckd := Run(cfg)
	if msg.FieldSum != ckd.FieldSum {
		t.Fatalf("field sums differ: msg %g ckd %g", msg.FieldSum, ckd.FieldSum)
	}
	if msg.Residual != ckd.Residual {
		t.Fatalf("residuals differ: msg %g ckd %g", msg.Residual, ckd.Residual)
	}
	for i := range msg.Field {
		if msg.Field[i] != ckd.Field[i] {
			t.Fatalf("fields diverge at %d", i)
		}
	}
}

// TestResidualDecreases: Jacobi with zero boundary smooths the field, so
// the residual shrinks across iterations.
func TestResidualShrinksOverIterations(t *testing.T) {
	short := Run(Config{
		Platform: netmodel.AbeIB, Mode: Msg,
		PEs: 2, Virtualization: 2,
		NX: 12, NY: 12, NZ: 12,
		Iters: 1, Warmup: 0, Validate: true,
	})
	long := Run(Config{
		Platform: netmodel.AbeIB, Mode: Msg,
		PEs: 2, Virtualization: 2,
		NX: 12, NY: 12, NZ: 12,
		Iters: 8, Warmup: 0, Validate: true,
	})
	if long.Residual >= short.Residual {
		t.Fatalf("residual did not shrink: %g -> %g", short.Residual, long.Residual)
	}
}

// TestCkdFasterThanMsg: the core claim of Figure 2, at a modest scale.
func TestCkdFasterThanMsg(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		msg, ckd, pct := Improvement(Config{
			Platform: plat,
			PEs:      16, Virtualization: 8,
			NX: 256, NY: 256, NZ: 128,
			Iters: 3, Warmup: 1,
		})
		if ckd.IterTime >= msg.IterTime {
			t.Errorf("%s: ckd %v >= msg %v", plat.Name, ckd.IterTime, msg.IterTime)
		}
		if pct <= 0 || pct >= 50 {
			t.Errorf("%s: improvement %.1f%% outside plausible band", plat.Name, pct)
		}
	}
}

// TestImprovementGrowsWithScale: the paper's headline stencil trend —
// percentage gains increase with processor count (fixed total domain,
// fixed virtualization ratio means finer granularity at scale).
func TestImprovementGrowsWithScale(t *testing.T) {
	run := func(pes int) float64 {
		_, _, pct := Improvement(Config{
			Platform: netmodel.AbeIB,
			PEs:      pes, Virtualization: 8,
			NX: 512, NY: 512, NZ: 256,
			Iters: 2, Warmup: 1,
		})
		return pct
	}
	small, large := run(16), run(128)
	if large <= small {
		t.Fatalf("improvement did not grow: %.2f%% at 16 PEs, %.2f%% at 128 PEs", small, large)
	}
}

// TestVirtualModeMatchesValidateModeTiming: stripping real payloads must
// not change virtual time.
func TestVirtualModeMatchesValidateModeTiming(t *testing.T) {
	base := Config{
		Platform: netmodel.SurveyorBGP, Mode: Ckd,
		PEs: 4, Virtualization: 4,
		NX: 16, NY: 16, NZ: 16,
		Iters: 2, Warmup: 1,
	}
	v := base
	v.Validate = true
	real := Run(v)
	model := Run(base)
	if real.IterTime != model.IterTime {
		t.Fatalf("validate %v != model %v", real.IterTime, model.IterTime)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		Platform: netmodel.AbeIB, Mode: Ckd,
		PEs: 8, Virtualization: 8,
		NX: 128, NY: 128, NZ: 64,
		Iters: 2, Warmup: 1,
	}
	a, b := Run(cfg), Run(cfg)
	if a.IterTime != b.IterTime || a.TotalEvents != b.TotalEvents {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.IterTime, a.TotalEvents, b.IterTime, b.TotalEvents)
	}
}

// TestSerialReferenceConserves: with all-zero boundaries, values stay in
// [0, 1) and the sum decreases (diffusion with absorbing boundary).
func TestSerialReferenceBehaviour(t *testing.T) {
	f0 := SerialReference(8, 8, 8, 0)
	f5 := SerialReference(8, 8, 8, 5)
	sum := func(f []float64) float64 {
		s := 0.0
		for _, v := range f {
			s += v
		}
		return s
	}
	if !(sum(f5) < sum(f0)) {
		t.Fatalf("absorbing boundary did not reduce mass: %g -> %g", sum(f0), sum(f5))
	}
	for _, v := range f5 {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("value %g out of range", v)
		}
	}
}
