// Package stencil implements the paper's halo-exchange study (§4.1): a
// 3-D Jacobi solver over a cuboid-decomposed domain, with one chare per
// cuboid, comparing Charm++ messages (MSG) against CkDirect channels
// (CKD). Both versions avoid receive-side copies — the kernel reads ghost
// values straight out of the arrived face buffers — so, as in the paper,
// the CKD gains come solely from bypassing message creation and scheduling.
//
// A global barrier (contribute/broadcast) separates iterations in both
// versions; the paper uses it to guarantee at most one CkDirect
// transaction in flight per channel.
package stencil

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the communication variant.
type Mode int

// Stencil variants.
const (
	Msg Mode = iota // Charm++ messages
	Ckd             // CkDirect channels
)

// String names the mode.
func (m Mode) String() string {
	if m == Msg {
		return "msg"
	}
	return "ckd"
}

// Config parameterizes a stencil run.
type Config struct {
	Platform *netmodel.Platform
	Mode     Mode
	PEs      int
	// NX, NY, NZ is the global domain (paper: 1024 x 1024 x 512).
	NX, NY, NZ int
	// Virtualization is the target number of chares per PE (paper: 8).
	Virtualization int
	// Iters are measured iterations; Warmup iterations run first.
	Iters, Warmup int
	// Validate runs real data through the kernel (small domains only) so
	// the final field can be checked against a serial reference.
	Validate bool
	// Backend selects simulated virtual time (default), real
	// goroutine-per-PE execution, or distributed multi-process execution,
	// both with wall-clock timing. The real and net backends always
	// allocate real payload buffers.
	Backend charm.Backend
	// Net is the started netrt node (required under the net backend).
	Net *netrt.Node
	// Timeline, when set, records Projections-style execution spans.
	Timeline *trace.Timeline
	// Chaos, when set, runs the configuration under adversity (CPU noise,
	// network faults, recovery machinery). Contract violations then land
	// in Result.Errors instead of panicking.
	Chaos *chaos.Scenario
	// Ckpt enables coordinated checkpointing: every Ckpt.Every barriers
	// the world cuts a consistent snapshot, and a fresh Run resumes from
	// the newest committed one (the recovery driver re-runs after a rank
	// death, rolling everyone back together).
	Ckpt *charm.CkptOptions
	// Kill, when set, fires the kill -9 chaos tier from the root
	// reduction client: the victim rank dies after Kill.Step barriers.
	Kill *chaos.Kill
	// LBEvery runs a measurement-based load-balancing round every
	// LBEvery reduction barriers (0 disables). Chares migrate between
	// PEs — and between ranks under net — with their CkDirect channels
	// rehomed in place. When a checkpoint is due at the same barrier the
	// checkpoint wins and that round is skipped.
	LBEvery int
	// LBStrategy names the rebalancing strategy ("greedy"; "none" or ""
	// disables). Required when LBEvery is set.
	LBStrategy string
	// Skew, when positive, makes every chare in the first half of the
	// linearized chare order perform Skew times extra (wasted) compute
	// per iteration — a deterministic artificial imbalance for
	// load-balancing studies, concentrated on the low PEs (and, under
	// net, on the low ranks) by the block placement map. Field values
	// are never touched, so skewed runs stay bit-identical with or
	// without balancing.
	Skew float64
}

// Result reports timing and, in validate mode, the solution.
type Result struct {
	Config
	ChareGrid   [3]int
	Chares      int
	IterTime    sim.Time // average measured iteration time
	Residual    float64  // last iteration's global residual (validate mode)
	FieldSum    float64  // checksum of the final field (validate mode)
	Field       []float64
	TotalEvents uint64
	// Errors holds runtime contract violations and unrecovered faults
	// (chaos runs only; fault-free runs panic instead).
	Errors []error
	// Counters is the final trace-counter snapshot (fault/retry
	// accounting; used by determinism regression tests).
	Counters map[string]int64
}

// Improvement runs both variants of a configuration and returns the
// percentage improvement of CKD over MSG in average iteration time — the
// quantity plotted in Figure 2.
func Improvement(cfg Config) (msg, ckd Result, pct float64) {
	cfg.Mode = Msg
	msg = Run(cfg)
	cfg.Mode = Ckd
	ckd = Run(cfg)
	pct = (1 - float64(ckd.IterTime)/float64(msg.IterTime)) * 100
	return
}

// chooseGrid picks a chare grid (cx, cy, cz) with cx*cy*cz >= want,
// keeping chare blocks as close to cubic as possible by always splitting
// the dimension with the largest block extent.
func chooseGrid(want, nx, ny, nz int) [3]int {
	c := [3]int{1, 1, 1}
	n := [3]int{nx, ny, nz}
	for c[0]*c[1]*c[2] < want {
		best, bestExtent := 0, -1
		for d := 0; d < 3; d++ {
			extent := n[d] / c[d]
			if extent > bestExtent && c[d]*2 <= n[d] {
				best, bestExtent = d, extent
			}
		}
		if bestExtent <= 0 {
			break // cannot split further
		}
		c[best] *= 2
	}
	return c
}

// Run executes one stencil configuration.
func Run(cfg Config) Result {
	if cfg.PEs <= 0 || cfg.Virtualization <= 0 {
		panic("stencil: PEs and Virtualization must be positive")
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	grid := chooseGrid(cfg.PEs*cfg.Virtualization, cfg.NX, cfg.NY, cfg.NZ)
	total := grid[0] * grid[1] * grid[2]
	if total < cfg.PEs {
		panic(fmt.Sprintf("stencil: domain %dx%dx%d too small for %d PEs",
			cfg.NX, cfg.NY, cfg.NZ, cfg.PEs))
	}

	if cfg.Backend != charm.SimBackend {
		if cfg.Chaos != nil {
			panic("stencil: chaos scenarios are sim-only")
		}
		if cfg.Timeline != nil {
			panic("stencil: timeline recording is sim-only")
		}
	}
	if cfg.Backend == charm.NetBackend && cfg.Net == nil {
		panic("stencil: net backend needs Config.Net (a started netrt node)")
	}
	eng := sim.NewEngine()
	mach, net := cfg.Platform.BuildMachine(eng, cfg.PEs)
	rts := charm.NewRTS(eng, mach, net, cfg.Platform, trace.NewRecorder(),
		charm.Options{
			Checked:         true,
			VirtualPayloads: !cfg.Validate && cfg.Backend == charm.SimBackend,
			Backend:         cfg.Backend,
			Net:             cfg.Net,
		})
	if cfg.Timeline != nil {
		rts.SetTimeline(cfg.Timeline)
	}

	a := &app{cfg: cfg, grid: grid, rts: rts}
	if cfg.Mode == Ckd {
		a.mgr = ckdirect.NewManager(rts)
	}
	cfg.Chaos.Apply(rts, a.mgr)
	a.build()
	if cfg.Ckpt.Enabled() {
		a.ck = charm.NewCheckpointer(rts, cfg.Ckpt)
		a.ck.Attach(a.arr)
		if a.mgr != nil {
			a.ck.SetRegionHooks(a.mgr)
		}
		// Roll back to the newest committed cut (a fresh run finds none
		// and starts from step zero). Restore happens after build: the
		// SPMD setup is identical to the checkpointed run's, so element
		// state and registered-buffer bytes overlay in place.
		step, err := a.ck.Restore()
		if err != nil {
			return Result{
				Config: cfg, ChareGrid: grid, Chares: total,
				Errors:   []error{fmt.Errorf("stencil: restore checkpoint: %w", err)},
				Counters: rts.Recorder().Counters(),
			}
		}
		// Barrier count is the global step cursor: pre-seeding it makes
		// the next completed barrier step+1. (Recovered runs report no
		// meaningful timing — the pre-seeded entries are zero.)
		a.barriers = make([]sim.Time, step)
	}
	a.start()
	rts.Run()
	errs := rts.Errors()
	if len(errs) > 0 && cfg.Chaos == nil && cfg.Backend != charm.NetBackend {
		// Under net, failures (including a dead peer's NetError) return
		// through Result.Errors — the launcher decides, not a panic.
		panic(fmt.Sprintf("stencil: runtime contract violation: %v", errs[0]))
	}
	if cfg.Backend == charm.NetBackend && cfg.Validate && len(errs) == 0 {
		// Each process can check exactly the cells it hosts; the serial
		// reference is the shared oracle.
		errs = append(errs, a.validateLocal()...)
	}
	if cfg.Backend == charm.NetBackend && !rts.HostsPE(0) {
		// A worker process: barriers and timing live on PE 0's rank. Local
		// validation already ran; report what this rank knows — its own
		// block of the field (the rest NaN) and its checksum share.
		res := Result{
			Config: cfg, ChareGrid: grid, Chares: total,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
		if cfg.Validate && len(errs) == 0 {
			res.FieldSum = a.fieldSum()
			res.Field = gatherField(a)
		}
		return res
	}

	k := len(a.barriers)
	if k < cfg.Warmup+cfg.Iters+1 {
		if len(errs) == 0 {
			if cfg.Chaos == nil {
				panic(fmt.Sprintf("stencil: only %d barriers completed", k))
			}
			errs = []error{chaos.StallError(rts.Recorder().Counters(),
				fmt.Sprintf("%d/%d barriers", k, cfg.Warmup+cfg.Iters+1))}
		}
		// A faulted run that lost work: hand back what is known instead of
		// tearing the process down — the caller decides based on Errors.
		return Result{
			Config: cfg, ChareGrid: grid, Chares: total,
			Errors: errs, Counters: rts.Recorder().Counters(),
			TotalEvents: rts.Executed(),
		}
	}
	measured := a.barriers[cfg.Warmup+cfg.Iters] - a.barriers[cfg.Warmup]
	res := Result{
		Config:      cfg,
		ChareGrid:   grid,
		Chares:      total,
		IterTime:    measured / sim.Time(cfg.Iters),
		Residual:    a.lastResidual,
		FieldSum:    a.fieldSum(),
		TotalEvents: rts.Executed(),
		Errors:      errs,
		Counters:    rts.Recorder().Counters(),
	}
	if cfg.Validate {
		res.Field = gatherField(a)
	}
	return res
}
