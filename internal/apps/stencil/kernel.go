package stencil

import (
	"encoding/binary"
	"math"
)

// at indexes the chare-local field: x-major, then y, then z.
func (c *chare) at(x, y, z int) float64 {
	return c.cur[(x*c.by+y)*c.bz+z]
}

// ghost returns the neighbour value of cell (x,y,z) in direction d,
// reading across the block boundary from the arrived face buffer, or 0
// at the global (Dirichlet) boundary.
func (c *chare) ghost(d, x, y, z int) float64 {
	if !c.neighbors[d] {
		return 0
	}
	f := c.faceVals[d]
	switch d {
	case xp, xm:
		return f[y*c.bz+z]
	case yp, ym:
		return f[x*c.bz+z]
	default:
		return f[x*c.by+y]
	}
}

// jacobi applies one 7-point update, reading ghost values straight from
// the face buffers (the no-copy arrangement both variants share), and
// returns the local residual sum |next - cur|.
func (c *chare) jacobi() float64 {
	residual := 0.0
	i := 0
	for x := 0; x < c.bx; x++ {
		for y := 0; y < c.by; y++ {
			for z := 0; z < c.bz; z++ {
				v := c.cur[i]
				var w, e, s, n, dn, up float64
				if x > 0 {
					w = c.at(x-1, y, z)
				} else {
					w = c.ghost(xm, x, y, z)
				}
				if x < c.bx-1 {
					e = c.at(x+1, y, z)
				} else {
					e = c.ghost(xp, x, y, z)
				}
				if y > 0 {
					s = c.at(x, y-1, z)
				} else {
					s = c.ghost(ym, x, y, z)
				}
				if y < c.by-1 {
					n = c.at(x, y+1, z)
				} else {
					n = c.ghost(yp, x, y, z)
				}
				if z > 0 {
					dn = c.at(x, y, z-1)
				} else {
					dn = c.ghost(zm, x, y, z)
				}
				if z < c.bz-1 {
					up = c.at(x, y, z+1)
				} else {
					up = c.ghost(zp, x, y, z)
				}
				nv := (v + w + e + s + n + dn + up) / 7
				c.next[i] = nv
				residual += math.Abs(nv - v)
				i++
			}
		}
	}
	return residual
}

// extractFace encodes this chare's boundary layer on side d into buf.
func (c *chare) extractFace(d int, buf []byte) {
	put := func(i int, v float64) {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	switch d {
	case xp:
		for y := 0; y < c.by; y++ {
			for z := 0; z < c.bz; z++ {
				put(y*c.bz+z, c.at(c.bx-1, y, z))
			}
		}
	case xm:
		for y := 0; y < c.by; y++ {
			for z := 0; z < c.bz; z++ {
				put(y*c.bz+z, c.at(0, y, z))
			}
		}
	case yp:
		for x := 0; x < c.bx; x++ {
			for z := 0; z < c.bz; z++ {
				put(x*c.bz+z, c.at(x, c.by-1, z))
			}
		}
	case ym:
		for x := 0; x < c.bx; x++ {
			for z := 0; z < c.bz; z++ {
				put(x*c.bz+z, c.at(x, 0, z))
			}
		}
	case zp:
		for x := 0; x < c.bx; x++ {
			for y := 0; y < c.by; y++ {
				put(x*c.by+y, c.at(x, y, c.bz-1))
			}
		}
	case zm:
		for x := 0; x < c.bx; x++ {
			for y := 0; y < c.by; y++ {
				put(x*c.by+y, c.at(x, y, 0))
			}
		}
	}
}

// SerialReference runs the same Jacobi iteration on an undecomposed grid
// (zero Dirichlet boundary), for validating the distributed solvers.
func SerialReference(nx, ny, nz, iters int) []float64 {
	cur := make([]float64, nx*ny*nz)
	next := make([]float64, nx*ny*nz)
	at := func(g []float64, x, y, z int) float64 {
		if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
			return 0
		}
		return g[(x*ny+y)*nz+z]
	}
	i := 0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				cur[i] = seedValue(x, y, z)
				i++
			}
		}
	}
	for it := 0; it < iters; it++ {
		i = 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					next[i] = (cur[i] + at(cur, x-1, y, z) + at(cur, x+1, y, z) +
						at(cur, x, y-1, z) + at(cur, x, y+1, z) +
						at(cur, x, y, z-1) + at(cur, x, y, z+1)) / 7
					i++
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}
