package stencil

import (
	"math"
	"sync"
	"testing"

	"repro/internal/charm"
	"repro/internal/netrt"
)

// runNetWorld executes one stencil configuration on every rank of an
// in-process world concurrently and returns the per-rank results.
func runNetWorld(t *testing.T, nodes []*netrt.Node, cfg Config) []Result {
	t.Helper()
	results := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = Run(c)
		}()
	}
	wg.Wait()
	return results
}

// TestNetBackendMatchesSim is the distributed acceptance oracle: the same
// validated configuration on a live two-rank socket mesh must produce,
// cell for cell, the bit-identical field the simulator produces. Each
// rank holds only its own block (the rest is NaN in the gathered field),
// and the union of the ranks must tile the whole domain.
func TestNetBackendMatchesSim(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []Mode{Msg, Ckd} {
		cfg := realOracleConfig(mode)
		simRes := Run(cfg)
		cfg.Backend = charm.NetBackend
		results := runNetWorld(t, nodes, cfg)

		covered := 0
		for rank, res := range results {
			if len(res.Errors) > 0 {
				t.Fatalf("%v rank %d: %v", mode, rank, res.Errors)
			}
			if len(res.Field) != len(simRes.Field) {
				t.Fatalf("%v rank %d: field size %d, sim %d", mode, rank, len(res.Field), len(simRes.Field))
			}
			for i, v := range res.Field {
				if math.IsNaN(v) {
					continue // not hosted by this rank
				}
				covered++
				if v != simRes.Field[i] {
					t.Fatalf("%v rank %d: field differs at %d: net %v sim %v", mode, rank, i, v, simRes.Field[i])
				}
			}
		}
		if covered != len(simRes.Field) {
			t.Errorf("%v: ranks covered %d of %d cells", mode, covered, len(simRes.Field))
		}
	}
}

// TestNetBackendResultShape checks the rank-0/worker split of a net run:
// rank 0 owns the barrier timeline and a positive iteration time, the
// worker reports no timing but a validated local block.
func TestNetBackendResultShape(t *testing.T) {
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	cfg := realOracleConfig(Ckd)
	cfg.Backend = charm.NetBackend
	results := runNetWorld(t, nodes, cfg)
	for rank, res := range results {
		if len(res.Errors) > 0 {
			t.Fatalf("rank %d: %v", rank, res.Errors)
		}
	}
	if results[0].IterTime <= 0 {
		t.Errorf("rank 0 iteration time %v, want positive wall-clock", results[0].IterTime)
	}
	if results[1].IterTime != 0 {
		t.Errorf("worker rank reported iteration time %v", results[1].IterTime)
	}
}
