package stencil

import (
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
)

// TestPropertyRandomConfigsMatchSerial: for random small domains, PE
// counts, virtualization ratios, iteration counts and platforms, both
// transports reproduce the serial reference field exactly. This is the
// strongest end-to-end correctness statement the stencil can make: every
// decomposition boundary, face orientation, barrier and channel cycle is
// exercised with real data.
func TestPropertyRandomConfigsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	prop := func(nxR, nyR, nzR, pesR, vrR, itersR uint8, onBGP bool) bool {
		nx := int(nxR)%10 + 4
		ny := int(nyR)%10 + 4
		nz := int(nzR)%10 + 4
		pes := 1 << (int(pesR) % 4) // 1..8
		vr := int(vrR)%3 + 1
		iters := int(itersR)%4 + 1
		plat := netmodel.AbeIB
		if onBGP {
			plat = netmodel.SurveyorBGP
		}
		cfg := Config{
			Platform: plat,
			PEs:      pes, Virtualization: vr,
			NX: nx, NY: ny, NZ: nz,
			Iters: iters, Warmup: 0,
			Validate: true,
		}
		ref := SerialReference(nx, ny, nz, iters+1)
		for _, mode := range []Mode{Msg, Ckd} {
			cfg.Mode = mode
			res := Run(cfg)
			for i := range ref {
				if res.Field[i] != ref[i] {
					t.Logf("mode %v cfg %dx%dx%d pes=%d vr=%d iters=%d diverged at %d",
						mode, nx, ny, nz, pes, vr, iters, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMsgCkdSameTimePerChareCountInvariant: both transports see
// the same chare decomposition for the same config.
func TestPropertyDecompositionAgreement(t *testing.T) {
	prop := func(pesR, vrR uint8) bool {
		pes := 1 << (int(pesR) % 5)
		vr := int(vrR)%4 + 1
		cfg := Config{
			Platform: netmodel.AbeIB,
			PEs:      pes, Virtualization: vr,
			NX: 64, NY: 64, NZ: 32,
			Iters: 1, Warmup: 0,
		}
		cfg.Mode = Msg
		a := Run(cfg)
		cfg.Mode = Ckd
		b := Run(cfg)
		return a.Chares == b.Chares && a.ChareGrid == b.ChareGrid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
