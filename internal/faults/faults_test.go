package faults

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

func attempts(n int) []netmodel.Attempt {
	out := make([]netmodel.Attempt, n)
	for i := range out {
		out[i] = netmodel.Attempt{Src: i % 4, Dst: (i + 1) % 4, Kind: netmodel.KindCharmMsg, Flow: i}
	}
	return out
}

func TestDeterministicAcrossPlanes(t *testing.T) {
	plan := Plan{Seed: 42, Rules: MustParseSpec("drop:rate=0.1;delay:rate=0.2,us=10")}
	a := NewPlane(plan, nil)
	b := NewPlane(plan, nil)
	for i, at := range attempts(500) {
		oa, ob := a.Inspect(at), b.Inspect(at)
		if oa != ob {
			t.Fatalf("attempt %d: outcomes diverged: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestRuleIndependence(t *testing.T) {
	// Adding a second rule must not change the first rule's decisions:
	// each rule owns a split RNG stream.
	one := NewPlane(Plan{Seed: 7, Rules: MustParseSpec("drop:rate=0.1")}, nil)
	two := NewPlane(Plan{Seed: 7, Rules: MustParseSpec("drop:rate=0.1;dup:kind=ckd.put,rate=0.5")}, nil)
	for i, at := range attempts(500) {
		oa, ob := one.Inspect(at), two.Inspect(at)
		// The dup rule never matches charm.msg attempts, so outcomes must
		// be identical.
		if oa != ob {
			t.Fatalf("attempt %d: adding unrelated rule changed outcome: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestNthTargeting(t *testing.T) {
	rec := trace.NewRecorder()
	p := NewPlane(Plan{Seed: 1, Rules: MustParseSpec("drop:kind=ckd.put,flow=3,nth=2")}, rec)
	drops := 0
	for i := 0; i < 10; i++ {
		// Interleave matching and non-matching attempts.
		if out := p.Inspect(netmodel.Attempt{Kind: netmodel.KindCharmMsg, Flow: 3, Src: -0, Dst: 1}); out.Fault != netmodel.FaultNone {
			t.Fatalf("rule leaked onto wrong kind at %d", i)
		}
		out := p.Inspect(netmodel.Attempt{Kind: netmodel.KindCkdPut, Flow: 3, Src: 0, Dst: 1})
		if out.Fault == netmodel.FaultDrop {
			if i != 1 {
				t.Fatalf("drop fired on matching attempt %d, want 1 (the 2nd)", i)
			}
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("nth rule fired %d times, want exactly once", drops)
	}
	if got := rec.Count(trace.CntDropped); got != 1 {
		t.Fatalf("%s = %d, want 1", trace.CntDropped, got)
	}
	if p.Fired(0) != 1 {
		t.Fatalf("Fired(0) = %d, want 1", p.Fired(0))
	}
}

func TestRateApproximation(t *testing.T) {
	p := NewPlane(Plan{Seed: 99, Rules: MustParseSpec("drop:rate=0.25")}, nil)
	const n = 20000
	drops := 0
	for _, at := range attempts(n) {
		if p.Inspect(at).Fault == netmodel.FaultDrop {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("drop fraction %v far from 0.25", frac)
	}
}

func TestActions(t *testing.T) {
	p := NewPlane(Plan{Seed: 5, Rules: []Rule{
		func() Rule { r := NewRule(Delay); r.Nth = 1; r.DelayUS = 25; return r }(),
		func() Rule { r := NewRule(Duplicate); r.Nth = 2; r.Count = 3; return r }(),
		func() Rule { r := NewRule(Corrupt); r.Nth = 3; return r }(),
	}}, nil)
	at := netmodel.Attempt{Kind: netmodel.KindCharmMsg}
	if out := p.Inspect(at); out.ExtraWire != sim.Microseconds(25) {
		t.Fatalf("first attempt: want 25us extra wire, got %+v", out)
	}
	if out := p.Inspect(at); out.Duplicates != 3 {
		t.Fatalf("second attempt: want 3 duplicates, got %+v", out)
	}
	if out := p.Inspect(at); out.Fault != netmodel.FaultCorrupt {
		t.Fatalf("third attempt: want corrupt, got %+v", out)
	}
	if out := p.Inspect(at); out != (netmodel.Outcome{}) {
		t.Fatalf("fourth attempt: want clean outcome, got %+v", out)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"explode:rate=0.1",
		"drop",             // no trigger
		"drop:rate=1.5",    // rate out of range
		"delay:rate=0.1",   // delay without us
		"drop:rate",        // malformed kv
		"drop:volume=11",   // unknown key
		"drop:rate=banana", // unparseable value
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", spec)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	rules := MustParseSpec("drop:kind=ckd.put,nth=3,flow=2; delay:rate=0.05,us=25,src=1,dst=2")
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(rules))
	}
	r0 := rules[0]
	if r0.Action != Drop || r0.Kind != netmodel.KindCkdPut || r0.Nth != 3 || r0.Flow != 2 || r0.Src != -1 {
		t.Fatalf("rule 0 misparsed: %+v", r0)
	}
	r1 := rules[1]
	if r1.Action != Delay || r1.Rate != 0.05 || r1.DelayUS != 25 || r1.Src != 1 || r1.Dst != 2 {
		t.Fatalf("rule 1 misparsed: %+v", r1)
	}
}
