// Package faults is a seeded, deterministic fault-injection plane for the
// simulated network. It implements netmodel.Injector and is installed at
// the single choke point every transport flows through
// (netmodel.Net.SetInjector), so Charm++ messages, CkDirect puts/gets and
// the MPI flavors are all subject to the same plan.
//
// A Plan is a seed plus an ordered list of Rules. Each rule selects
// transfers by kind / endpoints / flow and fires either probabilistically
// (Rate) or on a targeted ordinal ("kill the Nth put on channel X", Nth).
// Each rule owns an RNG derived from the plan seed, so adding or removing
// one rule never perturbs another rule's decisions — scenarios stay
// bit-reproducible as they are edited.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Action is what a triggered rule does to the transfer.
type Action int

const (
	// Drop discards the payload in flight: sender costs are paid, the
	// receiver sees nothing.
	Drop Action = iota
	// Corrupt damages the payload: receive-side CPU (if any) is paid to
	// process and discard it, but it is never delivered. Pure RDMA paths
	// treat corruption as a drop (link-layer CRC kills the packet).
	Corrupt
	// Delay adds DelayUS of extra wire latency. Because transfers overtaken
	// by later ones arrive out of order, Delay doubles as the reorder
	// primitive.
	Delay
	// Duplicate delivers the payload Count extra times (default 1), spaced
	// one wire-time apart.
	Duplicate
)

// String names the action the way ParseSpec spells it.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case Duplicate:
		return "dup"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule selects a subset of transfers and applies an action to some of
// them. Zero values of the selector fields mean "match anything" for Kind
// and require -1 for the integer selectors (a zero src/dst/flow is a real
// id); NewRule and ParseSpec produce correctly-initialized rules.
type Rule struct {
	// Kind restricts matching to one transfer kind (netmodel.Kind*).
	// Empty matches every kind.
	Kind string
	// Src / Dst restrict matching to one endpoint pair; -1 matches any.
	Src, Dst int
	// Flow restricts matching to one protocol stream (CkDirect handle id,
	// reliability sequence number); -1 matches any.
	Flow int

	// Nth, when positive, fires the rule exactly once: on the Nth matching
	// transfer (1-based). Rate is ignored.
	Nth int
	// Rate, when Nth is zero, fires the rule independently on each
	// matching transfer with this probability.
	Rate float64

	// Action is what happens to a triggered transfer.
	Action Action
	// DelayUS is the extra wire latency for Delay rules, in microseconds.
	DelayUS float64
	// Count is the number of extra deliveries for Duplicate rules
	// (defaulted to 1 by NewPlane when left zero).
	Count int
}

// NewRule returns a rule matching every transfer, to be narrowed by the
// caller. Integer selectors start at -1 ("any").
func NewRule(action Action) Rule {
	return Rule{Src: -1, Dst: -1, Flow: -1, Action: action}
}

// String renders the rule in the ParseSpec grammar. For any rule that
// came out of ParseSpec, the result parses back to an identical rule
// (the property FuzzParseSpec holds the parser to).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Action.String())
	var kvs []string
	if r.Kind != "" {
		kvs = append(kvs, "kind="+r.Kind)
	}
	if r.Src >= 0 {
		kvs = append(kvs, "src="+strconv.Itoa(r.Src))
	}
	if r.Dst >= 0 {
		kvs = append(kvs, "dst="+strconv.Itoa(r.Dst))
	}
	if r.Flow >= 0 {
		kvs = append(kvs, "flow="+strconv.Itoa(r.Flow))
	}
	if r.Nth > 0 {
		kvs = append(kvs, "nth="+strconv.Itoa(r.Nth))
	}
	if r.Rate != 0 {
		kvs = append(kvs, "rate="+strconv.FormatFloat(r.Rate, 'g', -1, 64))
	}
	if r.DelayUS != 0 {
		kvs = append(kvs, "us="+strconv.FormatFloat(r.DelayUS, 'g', -1, 64))
	}
	if r.Count != 0 {
		kvs = append(kvs, "count="+strconv.Itoa(r.Count))
	}
	if len(kvs) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(kvs, ","))
	}
	return b.String()
}

// FormatSpec renders a rule list as one spec string, the inverse of
// ParseSpec.
func FormatSpec(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// matches reports whether the rule's static selectors accept the attempt.
func (r *Rule) matches(a netmodel.Attempt) bool {
	if r.Kind != "" && r.Kind != a.Kind {
		return false
	}
	if r.Src >= 0 && r.Src != a.Src {
		return false
	}
	if r.Dst >= 0 && r.Dst != a.Dst {
		return false
	}
	if r.Flow >= 0 && r.Flow != a.Flow {
		return false
	}
	return true
}

// Plan is a complete fault scenario: a seed and an ordered rule list. The
// zero Plan injects nothing.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Plane evaluates a Plan against the stream of transfer attempts. It
// implements netmodel.Injector. Evaluation order is deterministic: rules
// are consulted in plan order and the first rule that triggers decides the
// outcome (its action is applied; later rules never see the attempt's
// randomness).
type Plane struct {
	rules []Rule
	rngs  []*rng.RNG
	seen  []int // matching-attempt count per rule, drives Nth
	fired []int // trigger count per rule, for diagnostics
	rec   *trace.Recorder
}

// NewPlane compiles a plan. rec may be nil; when present the plane
// maintains the trace.CntDropped / CntCorrupted / CntDelayed /
// CntDuplicated counters.
func NewPlane(plan Plan, rec *trace.Recorder) *Plane {
	p := &Plane{
		rules: make([]Rule, len(plan.Rules)),
		rngs:  make([]*rng.RNG, len(plan.Rules)),
		seen:  make([]int, len(plan.Rules)),
		fired: make([]int, len(plan.Rules)),
		rec:   rec,
	}
	copy(p.rules, plan.Rules)
	// Derive one independent stream per rule so rules never share state.
	root := rng.New(plan.Seed)
	for i := range p.rules {
		p.rngs[i] = root.Split()
		if p.rules[i].Action == Duplicate && p.rules[i].Count <= 0 {
			p.rules[i].Count = 1
		}
	}
	return p
}

// Inspect implements netmodel.Injector. Every matching rule advances its
// own match counter and random stream on every attempt — a rule's
// decisions depend only on the subsequence of attempts it matches, never
// on whether an earlier rule also fired. When several rules trigger on
// the same attempt, the first in plan order decides the outcome.
func (p *Plane) Inspect(a netmodel.Attempt) netmodel.Outcome {
	var out netmodel.Outcome
	decided := false
	for i := range p.rules {
		r := &p.rules[i]
		if !r.matches(a) {
			continue
		}
		p.seen[i]++
		triggered := false
		if r.Nth > 0 {
			triggered = p.seen[i] == r.Nth
		} else if r.Rate > 0 {
			triggered = p.rngs[i].Float64() < r.Rate
		}
		if !triggered || decided {
			continue
		}
		decided = true
		p.fired[i]++
		switch r.Action {
		case Drop:
			out.Fault = netmodel.FaultDrop
			p.rec.Incr(trace.CntDropped, 1)
		case Corrupt:
			out.Fault = netmodel.FaultCorrupt
			p.rec.Incr(trace.CntCorrupted, 1)
		case Delay:
			out.ExtraWire = sim.Microseconds(r.DelayUS)
			p.rec.Incr(trace.CntDelayed, 1)
		case Duplicate:
			out.Duplicates = r.Count
			p.rec.Incr(trace.CntDuplicated, 1)
		}
	}
	return out
}

// Fired returns how many times rule i triggered — handy when a test wants
// to confirm a targeted rule actually hit something.
func (p *Plane) Fired(i int) int { return p.fired[i] }

// ParseSpec parses the command-line fault grammar:
//
//	spec  := rule (';' rule)*
//	rule  := action [':' kv (',' kv)*]
//	action:= drop | corrupt | delay | dup
//	kv    := rate=F | nth=N | kind=S | src=N | dst=N | flow=N | us=F | count=N
//
// Examples:
//
//	drop:rate=0.01
//	drop:kind=ckd.put,nth=3,flow=2
//	delay:rate=0.05,us=25;dup:rate=0.01
//
// A rule with neither rate nor nth never fires; ParseSpec rejects it so a
// typo'd scenario fails loudly instead of silently injecting nothing.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		head, rest, hasArgs := strings.Cut(rs, ":")
		var r Rule
		switch strings.TrimSpace(head) {
		case "drop":
			r = NewRule(Drop)
		case "corrupt":
			r = NewRule(Corrupt)
		case "delay":
			r = NewRule(Delay)
		case "dup":
			r = NewRule(Duplicate)
		default:
			return nil, fmt.Errorf("faults: unknown action %q in rule %q", head, rs)
		}
		if hasArgs {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: malformed %q in rule %q (want key=value)", kv, rs)
				}
				var err error
				switch k {
				case "rate":
					r.Rate, err = strconv.ParseFloat(v, 64)
					// NaN fails both >= and <=, so this rejects it along
					// with anything outside [0,1].
					if err == nil && !(r.Rate >= 0 && r.Rate <= 1) {
						err = fmt.Errorf("rate %v outside [0,1]", r.Rate)
					}
				case "nth":
					r.Nth, err = strconv.Atoi(v)
					if err == nil && r.Nth < 0 {
						err = fmt.Errorf("nth %d negative", r.Nth)
					}
				case "kind":
					r.Kind = v
				case "src":
					r.Src, err = strconv.Atoi(v)
					if err == nil && r.Src < 0 {
						err = fmt.Errorf("src %d negative (omit the key to match any)", r.Src)
					}
				case "dst":
					r.Dst, err = strconv.Atoi(v)
					if err == nil && r.Dst < 0 {
						err = fmt.Errorf("dst %d negative (omit the key to match any)", r.Dst)
					}
				case "flow":
					r.Flow, err = strconv.Atoi(v)
					if err == nil && r.Flow < 0 {
						err = fmt.Errorf("flow %d negative (omit the key to match any)", r.Flow)
					}
				case "us":
					r.DelayUS, err = strconv.ParseFloat(v, 64)
					if err == nil && (math.IsNaN(r.DelayUS) || math.IsInf(r.DelayUS, 0) || r.DelayUS < 0) {
						err = fmt.Errorf("us %v not a finite non-negative duration", r.DelayUS)
					}
				case "count":
					r.Count, err = strconv.Atoi(v)
					if err == nil && r.Count < 0 {
						err = fmt.Errorf("count %d negative", r.Count)
					}
				default:
					err = fmt.Errorf("unknown key %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: %v", rs, err)
				}
			}
		}
		if r.Nth <= 0 && r.Rate <= 0 {
			return nil, fmt.Errorf("faults: rule %q has neither rate nor nth and would never fire", rs)
		}
		if r.Action == Delay && r.DelayUS <= 0 {
			return nil, fmt.Errorf("faults: delay rule %q needs us=<microseconds>", rs)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty spec")
	}
	return rules, nil
}

// MustParseSpec is ParseSpec for tests and hard-coded scenarios.
func MustParseSpec(spec string) []Rule {
	rules, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return rules
}
