package faults

import (
	"reflect"
	"testing"
)

// FuzzParseSpec holds the spec grammar to two properties on arbitrary
// input: the parser never panics, and any spec it accepts survives a
// FormatSpec round trip — the canonical rendering reparses to rules
// deeply equal to the originals. The second property is what lets a
// scenario be logged, archived, and replayed from its printed form.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"drop:rate=0.01",
		"drop:kind=ckd.put,nth=3,flow=2",
		"delay:rate=0.05,us=25;dup:rate=0.01",
		"corrupt:nth=1,src=0,dst=3",
		"dup:rate=0.5,count=4",
		"drop:rate=1e-300,kind=a:b=c",
		" drop : rate=0.5 ; ; ",
		"",
		"drop",
		"drop:rate=NaN",
		"delay:rate=1,us=Inf",
		"drop:rate=2",
		"dup:nth=0x3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseSpec(spec)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if len(rules) == 0 {
			t.Fatalf("ParseSpec(%q) accepted but returned no rules", spec)
		}
		canon := FormatSpec(rules)
		rules2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(rules, rules2) {
			t.Fatalf("round trip through %q changed rules:\n  first:  %#v\n  second: %#v", canon, rules, rules2)
		}
	})
}
