// Package bench is the experiment harness: one driver per table and
// figure of the paper's evaluation, each returning a Table whose rows and
// columns mirror the published artifact, plus the ablations called out in
// DESIGN.md.
//
// Every driver takes a Scale: Quick shrinks sweeps so the whole suite
// runs in seconds (used by tests and `go test -bench`), Paper runs the
// full published configuration (used by cmd/ckbench).
package bench

import (
	"fmt"
	"strings"
)

// Scale selects experiment size.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Paper
)

// ParseScale converts a CLI string.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "paper", "full":
		return Paper, nil
	}
	return Quick, fmt.Errorf("bench: unknown scale %q (want quick|paper)", s)
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	ColHead string   // meaning of the columns, e.g. "Message Size (B)"
	Columns []string // column labels
	Unit    string   // unit of the values, e.g. "us RTT"
	Rows    []Row
	Notes   []string
}

// AddRow appends a series.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Row returns the values for a label (nil if absent).
func (t *Table) Row(label string) []float64 {
	for _, r := range t.Rows {
		if r.Label == label {
			return r.Values
		}
	}
	return nil
}

// CSV renders the table as comma-separated values (one header row, one
// row per series) for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.ColHead))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for i := range t.Columns {
			b.WriteByte(',')
			if i < len(r.Values) {
				fmt.Fprintf(&b, "%g", r.Values[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Format renders the table as aligned text, matching the orientation of
// the paper's tables (sizes across, systems down).
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " [%s]", t.Unit)
	}
	b.WriteByte('\n')

	width := 12
	label := len(t.ColHead)
	for _, r := range t.Rows {
		if len(r.Label) > label {
			label = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", label+2, t.ColHead)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", label+2, r.Label)
		for i := range t.Columns {
			if i < len(r.Values) {
				fmt.Fprintf(&b, "%*.3f", width, r.Values[i])
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID          string
	Description string
	Run         func(scale Scale) []*Table
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Pingpong RTT on Abe/Infiniband (paper Table 1)", func(s Scale) []*Table { return []*Table{Table1(s)} }},
		{"table2", "Pingpong RTT on Blue Gene/P (paper Table 2)", func(s Scale) []*Table { return []*Table{Table2(s)} }},
		{"fig2a", "Stencil improvement on Infiniband (paper Fig 2a)", func(s Scale) []*Table { return []*Table{Fig2a(s)} }},
		{"fig2b", "Stencil improvement on Blue Gene/P (paper Fig 2b)", func(s Scale) []*Table { return []*Table{Fig2b(s)} }},
		{"fig3", "Matmul execution time, both machines (paper Fig 3)", func(s Scale) []*Table { return Fig3(s) }},
		{"fig4", "OpenAtom time per step on Abe (paper Fig 4a/4b)", func(s Scale) []*Table { return Fig4(s) }},
		{"fig5", "OpenAtom time per step on BG/P (paper Fig 5a/5b)", func(s Scale) []*Table { return Fig5(s) }},
		{"ablation-polling", "Polling-window ablation (paper §5.2)", func(s Scale) []*Table { return []*Table{AblationPolling(s)} }},
		{"ablation-costs", "Protocol cost decomposition of Table 1 (§3 analysis)", func(s Scale) []*Table { return []*Table{AblationCosts()} }},
		{"ablation-info", "Info-header vs lookup-table context on BG/P (§2.2)", func(s Scale) []*Table { return []*Table{AblationInfoHeader(s)} }},
		{"ablation-putget", "Put vs get latency (§2 design argument)", func(s Scale) []*Table { return []*Table{AblationPutGet(s)} }},
		{"ablation-setup", "Channel setup amortization (persistence trade-off)", func(s Scale) []*Table { return []*Table{AblationChannelSetup(s)} }},
		{"calibration", "Per-cell deviation audit vs the published tables", func(s Scale) []*Table { return []*Table{CalibrationReport(s)} }},
		{"summary", "Reproduction scorecard: headline claims pass/fail", func(s Scale) []*Table { return []*Table{Summary(s)} }},
		{"fem", "Supplementary: unstructured-mesh FEM from the paper's §1 class", func(s Scale) []*Table { return []*Table{FemFigure(s)} }},
		{"faults", "Supplementary: recovery cost under transfer loss", func(s Scale) []*Table { return []*Table{FaultFigure(s)} }},
		{"realhw", "Real-execution backend: wall-clock pingpong + stencil on goroutines", func(s Scale) []*Table { return RealHW(s) }},
		{"nethw", "Distributed net backend: wall-clock pingpong + stencil across a socket mesh", func(s Scale) []*Table { return NetHW(s) }},
		{"nethw-shm", "Shared-memory transport between co-located ranks: pingpong + stencil over memfd rings (DESIGN.md §12)", func(s Scale) []*Table { return NetHWShm(s) }},
		{"allocs", "Allocator pressure of the live backends vs pre-pool baselines (DESIGN.md §9)", func(s Scale) []*Table { return Allocs(s) }},
		{"serve", "ckserve daemon throughput: warmed mesh vs boot-per-run (DESIGN.md §11)", func(s Scale) []*Table { return ServeBench(s) }},
		{"lb", "Skewed stencil under measurement-based load balancing (DESIGN.md §13)", func(s Scale) []*Table { return LBBench(s) }},
		{"scale", "World-size sweep: lazy dialing, tree termination, adaptive batching (DESIGN.md §14)", func(s Scale) []*Table { return ScaleBench(s) }},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
