package bench

import (
	"fmt"

	"repro/internal/apps/pingpong"
	"repro/internal/netmodel"
)

// PaperSizes are the message sizes of Tables 1 and 2 (bytes).
var PaperSizes = []int{100, 1000, 5000, 10000, 20000, 30000, 40000, 70000, 100000, 500000}

// PaperTable1 holds the published Table 1 values (µs RTT), keyed like our
// row labels, for side-by-side reporting.
var PaperTable1 = map[string][]float64{
	"charm-msg": {22.924, 25.110, 47.340, 66.176, 96.215, 160.470, 191.343, 271.803, 353.305, 1399.145},
	"ckdirect":  {12.383, 16.108, 29.330, 43.136, 68.927, 93.422, 120.954, 195.248, 275.322, 1294.358},
	"mpich-vmi": {12.367, 19.669, 37.318, 60.892, 102.684, 127.591, 201.148, 322.687, 332.690, 1396.942},
	"mvapich":   {12.302, 19.436, 37.311, 56.249, 88.659, 119.452, 144.973, 236.545, 315.692, 1386.051},
	"mvapich-put": {16.801, 22.821, 51.750, 64.202, 94.250, 120.218, 146.028, 232.021, 308.942,
		1369.516},
}

// PaperTable2 holds the published Table 2 values (µs RTT).
var PaperTable2 = map[string][]float64{
	"charm-msg": {14.467, 20.822, 44.822, 72.976, 128.166, 186.771, 240.306, 400.226, 560.634, 2693.601},
	"ckdirect":  {5.133, 11.379, 33.112, 60.675, 115.103, 169.552, 223.599, 383.732, 543.491, 2677.072},
	"mpi":       {7.606, 13.936, 39.903, 66.661, 120.548, 173.041, 226.739, 386.712, 546.740, 2680.459},
	"mpi-put":   {14.049, 17.836, 39.963, 67.972, 122.693, 178.571, 232.629, 392.388, 552.708, 2685.972},
}

func sizeColumns() []string {
	cols := make([]string, len(PaperSizes))
	for i, s := range PaperSizes {
		cols[i] = fmt.Sprintf("%.1fK", float64(s)/1000)
	}
	return cols
}

func pingIters(scale Scale) int {
	if scale == Paper {
		return 1000 // the paper averages over a thousand iterations
	}
	return 10
}

// Table1 regenerates the paper's Table 1: pingpong round-trip times for
// every stack on the Abe/Infiniband model.
func Table1(scale Scale) *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Round trip time for the pingpong microbenchmark on Infiniband (Abe)",
		ColHead: "Message Size",
		Columns: sizeColumns(),
		Unit:    "us RTT",
		Notes: []string{
			"rows marked (paper) are the published values for comparison",
		},
	}
	rows := []struct {
		label string
		mode  pingpong.Mode
	}{
		{"charm-msg", pingpong.CharmMsg},
		{"ckdirect", pingpong.CkDirect},
		{"mpich-vmi", pingpong.MPIAlt},
		{"mvapich", pingpong.MPI},
		{"mvapich-put", pingpong.MPIPut},
	}
	for _, r := range rows {
		vals := make([]float64, len(PaperSizes))
		for i, size := range PaperSizes {
			vals[i] = pingpong.Run(pingpong.Config{
				Platform: netmodel.AbeIB,
				Mode:     r.mode,
				Size:     size,
				Iters:    pingIters(scale),
				Virtual:  size > 100000,
			}).RTTMicros()
		}
		t.AddRow(r.label, vals...)
		t.AddRow(r.label+" (paper)", PaperTable1[r.label]...)
	}
	return t
}

// Table2 regenerates the paper's Table 2 on the Blue Gene/P model.
func Table2(scale Scale) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Round trip time for the pingpong microbenchmark on Blue Gene/P (Surveyor)",
		ColHead: "Message Size",
		Columns: sizeColumns(),
		Unit:    "us RTT",
		Notes: []string{
			"rows marked (paper) are the published values for comparison",
		},
	}
	rows := []struct {
		label string
		mode  pingpong.Mode
	}{
		{"charm-msg", pingpong.CharmMsg},
		{"ckdirect", pingpong.CkDirect},
		{"mpi", pingpong.MPI},
		{"mpi-put", pingpong.MPIPut},
	}
	for _, r := range rows {
		vals := make([]float64, len(PaperSizes))
		for i, size := range PaperSizes {
			vals[i] = pingpong.Run(pingpong.Config{
				Platform: netmodel.SurveyorBGP,
				Mode:     r.mode,
				Size:     size,
				Iters:    pingIters(scale),
				Virtual:  size > 100000,
			}).RTTMicros()
		}
		t.AddRow(r.label, vals...)
		t.AddRow(r.label+" (paper)", PaperTable2[r.label]...)
	}
	return t
}
