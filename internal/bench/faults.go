package bench

import (
	"fmt"

	"repro/internal/apps/stencil"
	"repro/internal/chaos"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// FaultFigure is a supplementary experiment (not a paper artifact): the
// price of reliability. The paper's protocols assume a lossless fabric;
// this sweep drops a growing fraction of all transfers and measures how
// much the ack/retransmit protocol and the put-reissuing watchdog stretch
// the stencil iteration under each transport. The zero-loss column is the
// pure protocol overhead (acks on every message, watchdog timers on every
// put); the physics stays bit-exact at every rate — that invariant is
// enforced by the app chaos tests, not here.
func FaultFigure(scale Scale) *Table {
	rates := []float64{0, 0.001, 0.01, 0.05}
	cfg := stencil.Config{
		Platform: netmodel.AbeIB,
		PEs:      16, Virtualization: 4,
		NX: 128, NY: 128, NZ: 64,
		Iters: 3, Warmup: 1,
	}
	if scale == Quick {
		cfg.PEs, cfg.Virtualization = 4, 2
		cfg.NX, cfg.NY, cfg.NZ = 32, 32, 16
	}
	cols := make([]string, len(rates))
	for i, r := range rates {
		cols[i] = fmt.Sprintf("%g%%", r*100)
	}
	t := &Table{
		ID:      "faults",
		Title:   "Stencil under transfer loss with recovery enabled (Abe model)",
		ColHead: "Drop rate",
		Columns: cols,
		Unit:    "ms per iteration / count",
		Notes: []string{
			"supplementary experiment: reliability-protocol cost, not a published figure",
			"0% column = protocol overhead alone; physics is bit-exact at every rate (see app chaos tests)",
		},
	}
	for _, mode := range []stencil.Mode{stencil.Msg, stencil.Ckd} {
		times := make([]float64, len(rates))
		recoveries := make([]float64, len(rates))
		for i, rate := range rates {
			c := cfg
			c.Mode = mode
			sc := chaos.Hostile(7, rate)
			sc.Noise = nil // isolate fault cost from jitter
			c.Chaos = sc
			res := stencil.Run(c)
			if len(res.Errors) > 0 {
				panic(fmt.Sprintf("bench: faults experiment failed to recover: %v", res.Errors[0]))
			}
			times[i] = res.IterTime.Millis()
			recoveries[i] = float64(res.Counters[trace.CntRetransmits] +
				res.Counters[trace.CntCkdReissues])
		}
		t.AddRow(fmt.Sprintf("%v (ms)", mode), times...)
		t.AddRow(fmt.Sprintf("%v recoveries", mode), recoveries...)
	}
	return t
}
