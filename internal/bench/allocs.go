package bench

import (
	"fmt"
	"runtime"

	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// Pre-pool baselines for the allocs experiment: allocator pressure of the
// same configurations measured at commit f8a5236 (before the pooled
// buffers, zero-copy deposits and vectored writer landed), with the same
// methodology — global Mallocs delta across a whole run, divided by the
// iteration count, so per-run setup amortizes identically on both sides
// of the comparison. Units: pingpong is allocs per round trip at 1024 B,
// stencil is allocs per iteration of the 16x16x16x8 halo exchange.
const (
	allocsBaseRealMsg     = 14.1
	allocsBaseRealCkd     = 6.0
	allocsBaseNetMsg      = 20.5
	allocsBaseNetCkd      = 12.5
	allocsBaseRealStencil = 833.2
	allocsBaseNetStencil  = 987.5
)

// Allocs measures allocator pressure on the live backends: heap
// allocations and bytes per operation for the §3 pingpong (both transfer
// modes, real and net) and per iteration for the §4.1 stencil, against
// the pre-pool baselines recorded above. This is the regression artifact
// for the zero-allocation hot paths: pooled wire buffers, zero-copy FPut
// deposits and the vectored batching writer (DESIGN.md §9).
func Allocs(scale Scale) []*Table {
	return []*Table{allocsPingpong(scale), allocsStencil(scale)}
}

// measureAllocs runs fn after a GC and returns the global (Mallocs,
// TotalAlloc) deltas it caused. Global means background goroutines
// (keepalive tickers, the other ranks of an in-process world) are
// counted too — deliberately: the baselines were captured the same way,
// and a pool that merely moved allocations into a helper goroutine
// should not be able to hide them.
func measureAllocs(fn func()) (mallocs, bytes uint64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc
}

// allocsPingpong sweeps backend x mode at a fixed 1024 B message — under
// the eager threshold, so the net rows price the pooled eager path, and
// the ckdirect rows price the put fast path (precomputed PutOp under
// real, streamed in-place deposit under net).
func allocsPingpong(scale Scale) *Table {
	realIters, netIters := 2000, 1000
	if scale == Paper {
		realIters, netIters = 10000, 4000
	}
	t := &Table{
		ID:      "allocs-pingpong",
		Title:   "Allocator pressure per pingpong round trip (1024 B)",
		ColHead: "Backend/Mode",
		Columns: []string{"real/msg", "real/ckd", "net/msg", "net/ckd"},
		Unit:    "allocs per op / bytes per op / us RTT",
		Notes: []string{
			"global Mallocs delta over a whole run divided by iterations; per-run setup amortizes and background goroutines are counted (same methodology as the pre-pool baselines)",
			"pre-pool rows are the same configurations measured before pooled buffers, zero-copy deposits and the vectored writer (commit f8a5236)",
		},
	}
	baselines := []float64{allocsBaseRealMsg, allocsBaseRealCkd, allocsBaseNetMsg, allocsBaseNetCkd}

	allocs := make([]float64, 0, 4)
	bytesOp := make([]float64, 0, 4)
	rtts := make([]float64, 0, 4)

	platReal := *netmodel.AbeIB
	platReal.Name = "host(shm)"
	platReal.CoresPerNode = 1
	for _, mode := range []pingpong.Mode{pingpong.CharmMsg, pingpong.CkDirect} {
		var res pingpong.Result
		m, by := measureAllocs(func() {
			res = pingpong.Run(pingpong.Config{
				Platform: &platReal, Mode: mode, Size: 1024,
				Iters: realIters, Backend: charm.RealBackend,
			})
		})
		if len(res.Errors) > 0 {
			panic(fmt.Sprintf("bench: allocs real pingpong %s: %v", mode, res.Errors))
		}
		allocs = append(allocs, float64(m)/float64(realIters))
		bytesOp = append(bytesOp, float64(by)/float64(realIters))
		rtts = append(rtts, res.RTTMicros())
	}

	platNet := *netmodel.AbeIB
	platNet.Name = "host(tcp)"
	platNet.CoresPerNode = 1
	nodes, err := netrt.StartLocal(2)
	if err != nil {
		panic(fmt.Sprintf("bench: allocs world: %v", err))
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []pingpong.Mode{pingpong.CharmMsg, pingpong.CkDirect} {
		var res []pingpong.Result
		m, by := measureAllocs(func() {
			res = runNetWorld(nodes, pingpong.Config{
				Platform: &platNet, Mode: mode, Size: 1024,
				Iters: netIters, Backend: charm.NetBackend,
			})
		})
		allocs = append(allocs, float64(m)/float64(netIters))
		bytesOp = append(bytesOp, float64(by)/float64(netIters))
		rtts = append(rtts, res[0].RTTMicros())
	}

	t.AddRow("allocs/op", allocs...)
	t.AddRow("allocs/op (pre-pool)", baselines...)
	reductions := make([]float64, len(allocs))
	for i := range allocs {
		if allocs[i] > 0 {
			reductions[i] = baselines[i] / allocs[i]
		}
	}
	t.AddRow("reduction (x)", reductions...)
	t.AddRow("B/op", bytesOp...)
	t.AddRow("RTT (us)", rtts...)
	return t
}

// allocsStencil measures the validated halo exchange: msg and ckd
// generations together, per iteration, on one process (real) and across
// a two-rank mesh (net) — the configuration whose ghost frames exercise
// the pooled encode, eager deposit and vectored writer under fan-out.
func allocsStencil(scale Scale) *Table {
	iters, warmup := 4, 1
	if scale == Paper {
		iters, warmup = 8, 2
	}
	t := &Table{
		ID:      "allocs-stencil",
		Title:   "Allocator pressure per stencil iteration (msg + ckd generations)",
		ColHead: "Backend",
		Columns: []string{"real", "net(2)"},
		Unit:    "allocs per iteration",
		Notes: []string{
			fmt.Sprintf("domain 16x16x8 on 4 PEs, virtualization 2, validated; %d timed iterations, both generations measured together", iters),
			"pre-pool row measured before the memory-discipline layer (commit f8a5236)",
		},
	}
	cfg := stencil.Config{
		Platform: netmodel.AbeIB, PEs: 4, Virtualization: 2,
		NX: 16, NY: 16, NZ: 8, Iters: iters, Warmup: warmup,
		Validate: true,
	}

	allocs := make([]float64, 0, 2)

	realCfg := cfg
	realCfg.Backend = charm.RealBackend
	m, _ := measureAllocs(func() {
		msg, ckd, _ := stencil.Improvement(realCfg)
		if len(msg.Errors) > 0 || len(ckd.Errors) > 0 {
			panic(fmt.Sprintf("bench: allocs real stencil: %v", append(msg.Errors, ckd.Errors...)))
		}
	})
	allocs = append(allocs, float64(m)/float64(iters))

	nodes, err := netrt.StartLocal(2)
	if err != nil {
		panic(fmt.Sprintf("bench: allocs stencil world: %v", err))
	}
	m, _ = measureAllocs(func() {
		type out struct{ msg, ckd stencil.Result }
		results := make([]out, 2)
		done := make(chan int, 2)
		for r, n := range nodes {
			r, n := r, n
			go func() {
				c := cfg
				c.Backend = charm.NetBackend
				c.Net = n
				msg, ckd, _ := stencil.Improvement(c)
				results[r] = out{msg, ckd}
				done <- r
			}()
		}
		<-done
		<-done
		for r := range results {
			if len(results[r].msg.Errors) > 0 || len(results[r].ckd.Errors) > 0 {
				panic(fmt.Sprintf("bench: allocs net stencil rank %d: %v",
					r, append(results[r].msg.Errors, results[r].ckd.Errors...)))
			}
		}
	})
	for _, n := range nodes {
		n.Close()
	}
	allocs = append(allocs, float64(m)/float64(iters))

	t.AddRow("allocs/iter", allocs...)
	t.AddRow("allocs/iter (pre-pool)", allocsBaseRealStencil, allocsBaseNetStencil)
	reductions := make([]float64, len(allocs))
	base := []float64{allocsBaseRealStencil, allocsBaseNetStencil}
	for i := range allocs {
		if allocs[i] > 0 {
			reductions[i] = base[i] / allocs[i]
		}
	}
	t.AddRow("reduction (x)", reductions...)
	return t
}
