package bench

import (
	"fmt"

	"repro/internal/apps/stencil"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// LBBench measures the migration + load-balancing subsystem on the real
// backend: a skewed stencil (the first half of the chare order spins
// Skew times extra wall-clock compute, concentrated on the low PEs by
// the block map) with balancing off, then with the greedy strategy
// migrating chares between live worker goroutines.
//
// Wall clock on an oversubscribed host stays roughly flat — goroutines
// time-share, so the total spin is conserved — which is why the table
// leads with the metered per-PE load spread: the max/mean ratio the
// planner measured before its moves and the one it predicts after them.
// Physics must be bit-identical between the two runs, recorded as its
// own row.
func LBBench(scale Scale) []*Table {
	nx, ny, nz := 16, 16, 8
	iters, warmup := 4, 1
	skew := 40.0
	if scale == Paper {
		nx, ny, nz = 24, 24, 12
		iters, warmup = 6, 2
	}
	base := stencil.Config{
		Platform: netmodel.AbeIB,
		Mode:     stencil.Ckd,
		PEs:      4, Virtualization: 2,
		NX: nx, NY: ny, NZ: nz,
		Iters: iters, Warmup: warmup,
		Validate: true,
		Backend:  charm.RealBackend,
		Skew:     skew,
	}
	off := stencil.Run(base)

	balanced := base
	balanced.LBEvery = 2
	balanced.LBStrategy = "greedy"
	on := stencil.Run(balanced)
	if len(off.Errors) > 0 || len(on.Errors) > 0 {
		panic(fmt.Sprintf("bench: lb runs failed: %v %v", off.Errors, on.Errors))
	}

	identical := 1.0
	if off.Residual != on.Residual || off.FieldSum != on.FieldSum {
		identical = 0
	}
	for i := range off.Field {
		if off.Field[i] != on.Field[i] {
			identical = 0
			break
		}
	}
	rounds := on.Counters[trace.CntLBRounds]
	spreadBefore, spreadAfter := 0.0, 0.0
	if rounds > 0 {
		spreadBefore = float64(on.Counters[trace.CntLBSpreadBefore]) / float64(rounds)
		spreadAfter = float64(on.Counters[trace.CntLBSpreadAfter]) / float64(rounds)
	}

	t := &Table{
		ID:      "lb-stencil",
		Title:   "Skewed stencil under measurement-based load balancing (real backend, greedy strategy)",
		ColHead: "Balancing",
		Columns: []string{"off", "greedy"},
		Unit:    "mixed (per row)",
		Notes: []string{
			realHWNote(),
			fmt.Sprintf("domain %dx%dx%d, virtualization 2, skew %gx on the first half of the chare order, LB every 2 barriers",
				nx, ny, nz, skew),
			"spread rows are the max/mean per-PE busy-time ratio in permille, averaged over balancing rounds (1000 = perfectly balanced)",
		},
	}
	t.AddRow("wall ms per iteration", off.IterTime.Millis(), on.IterTime.Millis())
	t.AddRow("balancing rounds", 0, float64(rounds))
	t.AddRow("migrations", 0, float64(on.Counters[trace.CntLBMigrations]))
	t.AddRow("rehomed channel endpoints", 0,
		float64(on.Counters[trace.CntLBRehomedRecv]+on.Counters[trace.CntLBRehomedSend]))
	t.AddRow("load spread before plan (permille)", 0, spreadBefore)
	t.AddRow("load spread after plan (permille)", 0, spreadAfter)
	t.AddRow("fields bit-identical (1=yes)", 1, identical)
	return []*Table{t}
}
