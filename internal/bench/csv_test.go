package bench

import (
	"strings"
	"testing"
)

func TestCSVOutput(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", ColHead: "Size", Columns: []string{"1", "2"}}
	tab.AddRow("a,b", 1.5, 2)
	tab.AddRow("plain", 3)
	got := tab.CSV()
	want := "Size,1,2\n\"a,b\",1.5,2\nplain,3,\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
	if !strings.Contains(tab.Format(), "x: T") {
		t.Fatal("Format lost title")
	}
}
