package bench

import (
	"math"
	"strings"
	"testing"
)

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Quick)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
					t.Fatalf("table %s empty", tab.ID)
				}
				out := tab.Format()
				if !strings.Contains(out, tab.ID) {
					t.Fatalf("formatted output missing id:\n%s", out)
				}
				for _, r := range tab.Rows {
					for i, v := range r.Values {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatalf("table %s row %q col %d is %v", tab.ID, r.Label, i, v)
						}
					}
				}
			}
		})
	}
}

func TestFindAndParseScale(t *testing.T) {
	if _, ok := Find("table1"); !ok {
		t.Fatal("table1 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	if s, err := ParseScale("paper"); err != nil || s != Paper {
		t.Fatal("ParseScale(paper) failed")
	}
	if s, err := ParseScale("quick"); err != nil || s != Quick {
		t.Fatal("ParseScale(quick) failed")
	}
	if _, err := ParseScale("banana"); err == nil {
		t.Fatal("ParseScale(banana) accepted")
	}
}

// TestTable1MatchesPaperAtQuickScale: every measured cell within 7% of
// the published value — the harness-level restatement of the pingpong
// integration tests.
func TestTable1MatchesPaperAtQuickScale(t *testing.T) {
	tab := Table1(Quick)
	for label, paper := range PaperTable1 {
		got := tab.Row(label)
		if got == nil {
			t.Fatalf("row %q missing", label)
		}
		for i := range paper {
			if e := math.Abs(got[i]-paper[i]) / paper[i] * 100; e > 7 {
				t.Errorf("%s col %d: %.3f vs paper %.3f (%.1f%%)", label, i, got[i], paper[i], e)
			}
		}
	}
}

func TestTable2MatchesPaperAtQuickScale(t *testing.T) {
	tab := Table2(Quick)
	for label, paper := range PaperTable2 {
		got := tab.Row(label)
		if got == nil {
			t.Fatalf("row %q missing", label)
		}
		for i := range paper {
			if e := math.Abs(got[i]-paper[i]) / paper[i] * 100; e > 7 {
				t.Errorf("%s col %d: %.3f vs paper %.3f (%.1f%%)", label, i, got[i], paper[i], e)
			}
		}
	}
}

// TestFig2ShapeHolds: improvement positive everywhere and growing with
// the processor count, on both machines (quick scale).
func TestFig2ShapeHolds(t *testing.T) {
	for _, tab := range []*Table{Fig2a(Quick), Fig2b(Quick)} {
		imp := tab.Row("improvement %")
		for i, v := range imp {
			if v <= 0 {
				t.Errorf("%s: improvement[%d] = %.2f%% not positive", tab.ID, i, v)
			}
		}
		if imp[len(imp)-1] <= imp[0] {
			t.Errorf("%s: improvement does not grow with scale: %v", tab.ID, imp)
		}
	}
}

// TestFig3ShapeHolds: ckd beats msg at every point and the advantage
// widens with processors.
func TestFig3ShapeHolds(t *testing.T) {
	for _, tab := range Fig3(Quick) {
		msg, ckd := tab.Row("msg (ms)"), tab.Row("ckd (ms)")
		imp := tab.Row("improvement %")
		for i := range msg {
			if ckd[i] >= msg[i] {
				t.Errorf("%s col %d: ckd %.3f >= msg %.3f", tab.ID, i, ckd[i], msg[i])
			}
		}
		if imp[len(imp)-1] <= imp[0] {
			t.Errorf("%s: gap does not widen: %v", tab.ID, imp)
		}
	}
}

// TestFig4Fig5ShapeHolds: ckd wins everywhere; PC-only gains exceed
// full-step gains on the same machine.
func TestFig4Fig5ShapeHolds(t *testing.T) {
	for _, figs := range [][]*Table{Fig4(Quick), Fig5(Quick)} {
		full, pc := figs[0], figs[1]
		for _, tab := range figs {
			msg, ckd := tab.Row("msg (ms)"), tab.Row("ckd (ms)")
			for i := range msg {
				if ckd[i] >= msg[i] {
					t.Errorf("%s col %d: ckd %.3f >= msg %.3f", tab.ID, i, ckd[i], msg[i])
				}
			}
		}
		fi, pi := full.Row("improvement %"), pc.Row("improvement %")
		for i := range fi {
			if fi[i] >= pi[i] {
				t.Errorf("%s/%s col %d: full gain %.2f%% >= pc-only %.2f%%", full.ID, pc.ID, i, fi[i], pi[i])
			}
		}
	}
}

// TestAblationPollingShape: naive slower than messages at the highest
// channel density; windowed faster than messages everywhere.
func TestAblationPollingShape(t *testing.T) {
	tab := AblationPolling(Quick)
	msg := tab.Row("charm messages")
	naive := tab.Row("ckdirect naive Ready")
	opt := tab.Row("ckdirect Mark/PollQ")
	last := len(msg) - 1
	if naive[last] <= msg[last] {
		t.Errorf("naive not pathological at density %v: naive %.3f <= msg %.3f",
			tab.Columns[last], naive[last], msg[last])
	}
	for i := range msg {
		if opt[i] >= msg[i] {
			t.Errorf("windowed ckdirect lost at col %d: %.3f >= %.3f", i, opt[i], msg[i])
		}
		if opt[i] >= naive[i] {
			t.Errorf("windowing no better than naive at col %d", i)
		}
	}
}

// TestAblationCostsConsistent: per-component sums equal the reported
// totals.
func TestAblationCostsConsistent(t *testing.T) {
	tab := AblationCosts()
	total := tab.Row("total one-way")
	parts := []string{
		"send CPU", "wire", "recv CPU", "rendezvous latency",
		"registration CPU", "scheduler", "detect+callback",
	}
	for col := range total {
		sum := 0.0
		for _, p := range parts {
			sum += tab.Row(p)[col]
		}
		if math.Abs(sum-total[col]) > 0.01 {
			t.Errorf("col %d (%s): components sum %.3f != total %.3f", col, tab.Columns[col], sum, total[col])
		}
	}
}

// TestAblationInfoHeaderShape: the Info-header variant wins at small
// sizes (where the lookup dominates) — the paper's §2.2 judgement.
func TestAblationInfoHeaderShape(t *testing.T) {
	tab := AblationInfoHeader(Quick)
	info := tab.Rows[0].Values
	lookup := tab.Rows[1].Values
	if info[0] >= lookup[0] {
		t.Errorf("info-header not faster at 100B: %.3f vs %.3f", info[0], lookup[0])
	}
}
