package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// NetHW measures the distributed net backend: the same programs as the
// realhw experiment, but with the ranks split across a live socket mesh
// (in-process worlds here — identical wire stack to separate OS
// processes, minus exec). Charm messages cross rank boundaries as eager
// or rendezvous frames and CkDirect puts as registered-buffer writes,
// so these numbers price the full framing/TCP path the simulator's
// netmodel personalities only model. Both transports run: the plain
// loopback-TCP tables first, then the shared-memory transport the
// co-located ranks negotiate by default (NetHWShm), so one experiment
// archives the direct comparison.
func NetHW(scale Scale) []*Table {
	return []*Table{
		netHWPingpong(scale, false), netHWStencil(scale, false),
		netHWPingpong(scale, true), netHWStencil(scale, true),
	}
}

// NetHWShm is the shared-memory half of NetHW alone — the CI smoke
// target: co-located ranks exchange app frames over memfd-backed SPSC
// rings and CkDirect puts become cross-process memcpy + doorbell.
func NetHWShm(scale Scale) []*Table {
	return []*Table{netHWPingpong(scale, true), netHWStencil(scale, true)}
}

// netHWNote reminds readers these are single-host wall-clock numbers.
func netHWNote(shm bool) string {
	transport := "loopback TCP"
	if shm {
		transport = "the shared-memory transport (memfd rings, -net.shm)"
	}
	return fmt.Sprintf("wall-clock over %s between ranks of an in-process world; eager/rendezvous threshold %d B — expect run-to-run variance", transport, netrt.DefaultEagerMax)
}

// netHWConfig is the per-rank netrt configuration of one transport arm.
func netHWConfig(shm bool) netrt.Config {
	return netrt.Config{ShmOff: !shm}
}

// tableID prefixes the shm arm's table ids so both arms archive side by
// side in one report.
func netHWTableID(base string, shm bool) string {
	if shm {
		return "nethw-shm-" + strings.TrimPrefix(base, "nethw-")
	}
	return base
}

// runNetWorld executes one configuration on every rank of a world
// concurrently, as the separate OS processes of a real launch would,
// and returns the per-rank results. Any rank error is a broken bench,
// not a data point.
func runNetWorld(nodes []*netrt.Node, cfg pingpong.Config) []pingpong.Result {
	results := make([]pingpong.Result, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Net = n
			results[i] = pingpong.Run(c)
		}()
	}
	wg.Wait()
	for rank, res := range results {
		if len(res.Errors) > 0 {
			panic(fmt.Sprintf("bench: nethw pingpong rank %d: %v", rank, res.Errors))
		}
	}
	return results
}

// netHWPingpong is the §3 microbenchmark across two OS-level ranks: one
// PE per rank, so every round trip crosses the socket. The size sweep
// straddles the eager/rendezvous threshold — charm-msg pays the RTS/CTS
// exchange above it, while the ckdirect row stays a single FPut frame
// deposited into the registered buffer at every size.
func netHWPingpong(scale Scale, shm bool) *Table {
	plat := *netmodel.AbeIB
	plat.Name = "host(tcp)"
	transport := "loopback TCP"
	ckdNote := "ckdirect row is one FPut frame per trip: payload deposited into the registered buffer, sentinel release-stored, no callback message"
	if shm {
		plat.Name = "host(shm)"
		transport = "shared memory"
		ckdNote = "ckdirect row is one arena memcpy + 48-byte ring doorbell per trip: the receive buffer lives in the shared segment, so the put never enters the kernel"
	}
	plat.CoresPerNode = 1

	sizes := []int{1024, 8192, 65536}
	iters := 100
	if scale == Paper {
		sizes = []int{1024, 8192, 65536, 524288}
		iters = 1000
	}
	cols := make([]string, len(sizes))
	for i, s := range sizes {
		cols[i] = fmt.Sprintf("%d", s)
	}
	t := &Table{
		ID:      netHWTableID("nethw-pingpong", shm),
		Title:   fmt.Sprintf("Pingpong RTT on the net backend (two ranks over %s)", transport),
		ColHead: "Message Size (B)",
		Columns: cols,
		Unit:    "us RTT, wall clock",
		Notes: []string{
			netHWNote(shm),
			ckdNote,
		},
	}
	nodes, err := netrt.StartLocalConfig(2, netHWConfig(shm))
	if err != nil {
		panic(fmt.Sprintf("bench: nethw world: %v", err))
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for _, mode := range []pingpong.Mode{pingpong.CharmMsg, pingpong.CkDirect} {
		vals := make([]float64, len(sizes))
		for i, size := range sizes {
			results := runNetWorld(nodes, pingpong.Config{
				Platform: &plat,
				Mode:     mode,
				Size:     size,
				Iters:    iters,
				Backend:  charm.NetBackend,
			})
			vals[i] = results[0].RTTMicros()
		}
		t.AddRow(mode.String(), vals...)
	}
	return t
}

// netHWStencil is the §4.1 study distributed across 2 and 4 ranks: the
// same validated halo exchange as realhw-stencil, with neighbor ghosts
// crossing process boundaries. Every rank runs Improvement concurrently
// (msg generation, then ckd — run generations keep them apart on the
// shared mesh); rank 0 owns the timing.
func netHWStencil(scale Scale, shm bool) *Table {
	worlds := []int{2, 4}
	pes := 4
	nx, ny, nz := 16, 16, 8
	iters, warmup := 2, 1
	if scale == Paper {
		nx, ny, nz = 32, 32, 16
		iters, warmup = 5, 2
	}
	cols := make([]string, len(worlds))
	for i, w := range worlds {
		cols[i] = fmt.Sprintf("%d", w)
	}
	title := "Stencil halo exchange on the net backend, messages vs CkDirect"
	if shm {
		title = "Stencil halo exchange on the net backend over shared memory, messages vs CkDirect"
	}
	t := &Table{
		ID:      netHWTableID("nethw-stencil", shm),
		Title:   title,
		ColHead: "Processes",
		Columns: cols,
		Unit:    "ms per iteration / percent, wall clock",
		Notes: []string{
			netHWNote(shm),
			fmt.Sprintf("domain %dx%dx%d on %d PEs split across the ranks, virtualization 2; payloads are real and validated against the serial reference", nx, ny, nz, pes),
		},
	}
	msgT := make([]float64, len(worlds))
	ckdT := make([]float64, len(worlds))
	imp := make([]float64, len(worlds))
	for i, world := range worlds {
		nodes, err := netrt.StartLocalConfig(world, netHWConfig(shm))
		if err != nil {
			panic(fmt.Sprintf("bench: nethw world of %d: %v", world, err))
		}
		type improvement struct {
			msg, ckd stencil.Result
			pct      float64
		}
		results := make([]improvement, world)
		var wg sync.WaitGroup
		for r, n := range nodes {
			r, n := r, n
			wg.Add(1)
			go func() {
				defer wg.Done()
				msg, ckd, pct := stencil.Improvement(stencil.Config{
					Platform: netmodel.AbeIB,
					PEs:      pes, Virtualization: 2,
					NX: nx, NY: ny, NZ: nz,
					Iters: iters, Warmup: warmup,
					Validate: true,
					Backend:  charm.NetBackend,
					Net:      n,
				})
				results[r] = improvement{msg: msg, ckd: ckd, pct: pct}
			}()
		}
		wg.Wait()
		for _, n := range nodes {
			n.Close()
		}
		for r, res := range results {
			if len(res.msg.Errors) > 0 || len(res.ckd.Errors) > 0 {
				panic(fmt.Sprintf("bench: nethw stencil world %d rank %d: %v", world, r, append(res.msg.Errors, res.ckd.Errors...)))
			}
		}
		msgT[i] = results[0].msg.IterTime.Millis()
		ckdT[i] = results[0].ckd.IterTime.Millis()
		imp[i] = results[0].pct
	}
	t.AddRow("msg (ms)", msgT...)
	t.AddRow("ckd (ms)", ckdT...)
	t.AddRow("improvement %", imp...)
	return t
}
