package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/serve"
)

// ServeBench prices what the ckserve daemon exists to amortize: job
// throughput against a warmed, long-lived world versus paying the boot
// cost on every run. The warmed passes submit a stream of jobs to one
// live server; the cold passes boot the backend (and, under net, the
// whole 3-rank mesh), run a single job and tear everything down, per
// job — the workflow every one-shot cmd run implies. Passes alternate
// warm/cold and each cell reports the median, so process warm-up drift
// cancels instead of crediting whichever cell runs later. In-process
// worlds understate the cold cost (no exec, no remote dial), so the
// warmed advantage shown here is a lower bound.
func ServeBench(scale Scale) []*Table {
	// The real backend clears thousands of jobs/s, so its rows need far
	// more jobs than the net rows to give each timed pass a window long
	// enough to ride out scheduler noise on a shared box.
	realJobs, netJobs, reps := 50, 8, 3
	if scale == Paper {
		realJobs, netJobs, reps = 300, 30, 5
	}
	// Two job weights: pingpong is light enough that boot cost
	// dominates a cold run (the daemon's headline win), while the
	// validated stencil shows the advantage persists under real work.
	light := serve.Spec{Kind: "pingpong", Iters: 20}
	heavy := serve.Spec{Kind: "stencil", Validate: true}

	t := &Table{
		ID:      "serve-throughput",
		Title:   "ckserve job throughput: warmed daemon vs boot-per-run",
		ColHead: "Serving model",
		Columns: []string{"warmed", "cold-boot"},
		Unit:    "jobs/s, wall clock",
		Notes: []string{
			fmt.Sprintf("median of %d alternating passes (%d jobs each on real, %d on net); cold-boot builds the server (and under net the whole 3-rank mesh) per job", reps, realJobs, netJobs),
			"the amortization claim lives in the net rows: mesh boot (listeners, dials, handshakes) dominates a cold run there",
			"the real backend has no mesh to warm — its server boot is ~2.5us against ~100us jobs, so its warm/cold delta sits inside scheduler noise",
			"in-process net worlds understate cold cost (no exec/remote dial), so the warmed-mesh advantage is a lower bound",
		},
	}

	rows := []struct {
		label string
		net   bool
		spec  serve.Spec
	}{
		{"real/pingpong", false, light},
		{"real/stencil+validate", false, heavy},
		{"net(3)/pingpong", true, light},
		{"net(3)/stencil+validate", true, heavy},
	}
	for _, row := range rows {
		jobs := realJobs
		if row.net {
			jobs = netJobs
		}
		warm, cold := serveRow(row.net, jobs, reps, row.spec)
		t.AddRow(row.label, warm, cold)
	}
	return []*Table{t}
}

// serveRow measures one backend/spec pair: reps alternating warm and
// cold passes, median of each.
func serveRow(net bool, jobs, reps int, spec serve.Spec) (warm, cold float64) {
	boot := serveRealWorld
	if net {
		boot = serveNetWorld
	}
	var warms, colds []float64
	for r := 0; r < reps; r++ {
		warms = append(warms, serveWarmPass(boot, jobs, spec))
		colds = append(colds, serveColdPass(boot, jobs, spec))
	}
	return median(warms), median(colds)
}

// serveWarmPass times jobs against one live server; the boot, the
// teardown and one priming job stay outside the timed region.
func serveWarmPass(boot func() (*serve.Server, func()), jobs int, spec serve.Spec) float64 {
	srv, stop := boot()
	defer stop()
	serveJob(srv, spec)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		serveJob(srv, spec)
	}
	return float64(jobs) / time.Since(start).Seconds()
}

// serveColdPass pays boot and teardown on every job.
func serveColdPass(boot func() (*serve.Server, func()), jobs int, spec serve.Spec) float64 {
	start := time.Now()
	for i := 0; i < jobs; i++ {
		srv, stop := boot()
		serveJob(srv, spec)
		stop()
	}
	return float64(jobs) / time.Since(start).Seconds()
}

func serveJob(srv *serve.Server, spec serve.Spec) {
	job, err := srv.Submit(spec)
	if err != nil {
		panic(fmt.Sprintf("bench: serve submit: %v", err))
	}
	final, done := srv.Wait(job.ID, 5*time.Minute)
	if !done || final.State != serve.StateDone {
		panic(fmt.Sprintf("bench: serve job %d: done=%v state %s local %+v error %q",
			job.ID, done, final.State, final.Local, final.Error))
	}
}

func serveRealWorld() (*serve.Server, func()) {
	srv, err := serve.New(serve.Options{
		Env: serve.Env{Backend: charm.RealBackend, Platform: netmodel.AbeIB},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: serve real: %v", err))
	}
	return srv, srv.Close
}

// serveNetWorld boots the default 3-rank serving mesh.
func serveNetWorld() (*serve.Server, func()) {
	return serveNetWorldN(3)
}

// serveNetWorldN boots a world-rank in-process serving mesh: followers
// on the worker ranks, the server core on rank 0. stop tears the whole
// thing down in the daemon's shutdown order.
func serveNetWorldN(world int) (*serve.Server, func()) {
	return serveNetWorldCfg(world, netrt.Config{})
}

// serveNetWorldCfg is serveNetWorldN with a base node config — the
// scale bench uses it to shrink shm segments and widen the stall
// watchdog for deliberately oversubscribed worlds.
func serveNetWorldCfg(world int, base netrt.Config) (*serve.Server, func()) {
	nodes, err := netrt.StartLocalConfig(world, base)
	if err != nil {
		panic(fmt.Sprintf("bench: serve net world: %v", err))
	}
	envFor := func(n *netrt.Node) serve.Env {
		return serve.Env{Backend: charm.NetBackend, Net: n, Platform: netmodel.AbeIB}
	}
	for _, n := range nodes[1:] {
		n := n
		go serve.Follow(envFor(n), charm.DefaultRecoveryAttempts)
	}
	srv, err := serve.New(serve.Options{Env: envFor(nodes[0])})
	if err != nil {
		panic(fmt.Sprintf("bench: serve net server: %v", err))
	}
	stop := func() {
		srv.Close()
		serve.AnnounceShutdown(envFor(nodes[0]))
		for _, n := range nodes {
			n.Close()
		}
	}
	return srv, stop
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/2]
}
