package bench

import (
	"math"
	"testing"
)

func TestCalibrationReportWithinTolerance(t *testing.T) {
	tab := CalibrationReport(Quick)
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows, want 9 (5 Abe + 4 BG/P systems)", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for i, dev := range r.Values {
			if math.Abs(dev) > 7 {
				t.Errorf("%s col %s: deviation %.2f%% exceeds 7%%", r.Label, tab.Columns[i], dev)
			}
		}
	}
}

func TestAblationChannelSetupBreakEven(t *testing.T) {
	tab := AblationChannelSetup(Quick)
	for _, plat := range []string{"abe-infiniband", "surveyor-bluegenep"} {
		saving := tab.Row(plat + " saving/put (us)")
		be := tab.Row(plat + " break-even puts")
		if saving == nil || be == nil {
			t.Fatalf("%s rows missing", plat)
		}
		for i := range saving {
			if saving[i] <= 0 {
				t.Errorf("%s col %d: non-positive saving %.3f", plat, i, saving[i])
			}
			if be[i] < 1 {
				t.Errorf("%s col %d: break-even %.0f < 1 (setup cannot be free)", plat, i, be[i])
			}
			// Iterative codes run thousands of iterations; channels must
			// amortize quickly to be worth the learner suggesting them.
			if be[i] > 20 {
				t.Errorf("%s col %d: break-even %.0f puts implausibly high", plat, i, be[i])
			}
		}
	}
}
