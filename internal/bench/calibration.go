package bench

import (
	"fmt"
	"math"

	"repro/internal/apps/pingpong"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// CalibrationReport prints the per-cell deviation between the end-to-end
// simulated pingpong and the published tables — the audit trail behind
// EXPERIMENTS.md's "within N%" claims. Rows are (machine, system); the
// values are percentage deviations per message size.
func CalibrationReport(scale Scale) *Table {
	t := &Table{
		ID:      "calibration",
		Title:   "Per-cell deviation from the published Tables 1 and 2",
		ColHead: "System",
		Columns: sizeColumns(),
		Unit:    "percent deviation",
	}
	iters := pingIters(scale)
	type row struct {
		label string
		plat  *netmodel.Platform
		mode  pingpong.Mode
		paper []float64
	}
	rows := []row{
		{"abe charm-msg", netmodel.AbeIB, pingpong.CharmMsg, PaperTable1["charm-msg"]},
		{"abe ckdirect", netmodel.AbeIB, pingpong.CkDirect, PaperTable1["ckdirect"]},
		{"abe mpich-vmi", netmodel.AbeIB, pingpong.MPIAlt, PaperTable1["mpich-vmi"]},
		{"abe mvapich", netmodel.AbeIB, pingpong.MPI, PaperTable1["mvapich"]},
		{"abe mvapich-put", netmodel.AbeIB, pingpong.MPIPut, PaperTable1["mvapich-put"]},
		{"bgp charm-msg", netmodel.SurveyorBGP, pingpong.CharmMsg, PaperTable2["charm-msg"]},
		{"bgp ckdirect", netmodel.SurveyorBGP, pingpong.CkDirect, PaperTable2["ckdirect"]},
		{"bgp mpi", netmodel.SurveyorBGP, pingpong.MPI, PaperTable2["mpi"]},
		{"bgp mpi-put", netmodel.SurveyorBGP, pingpong.MPIPut, PaperTable2["mpi-put"]},
	}
	worst := 0.0
	for _, r := range rows {
		devs := make([]float64, len(PaperSizes))
		for i, size := range PaperSizes {
			got := pingpong.Run(pingpong.Config{
				Platform: r.plat, Mode: r.mode, Size: size, Iters: iters,
			}).RTTMicros()
			devs[i] = (got - r.paper[i]) / r.paper[i] * 100
			if d := math.Abs(devs[i]); d > worst {
				worst = d
			}
		}
		t.AddRow(r.label, devs...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst absolute deviation across all 90 cells: %.2f%%", worst),
		"positive = model slower than the paper; negative = faster")
	return t
}

// AblationChannelSetup materializes the persistence trade-off the paper's
// §6 "automatic learning framework" would have to reason about: a
// CkDirect channel costs setup work (handle creation, buffer
// registration, handle shipment) that only pays off after enough puts.
// The table reports the break-even put count per message size — the
// minimum flow length at which converting a message flow to a channel
// wins. It is also the number a migration/load-balancing layer would
// weigh against re-wiring channels after moving a chare.
func AblationChannelSetup(scale Scale) *Table {
	sizes := []int{100, 1000, 10000, 100000}
	if scale == Paper {
		sizes = PaperSizes
	}
	t := &Table{
		ID:      "ablation-setup",
		Title:   "Channel setup amortization: puts needed to beat messaging",
		ColHead: "Quantity",
		Unit:    "us / count",
	}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s))
	}
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		setup := setupCostModel(plat)
		savings := make([]float64, len(sizes))
		breakEven := make([]float64, len(sizes))
		for i, size := range sizes {
			detect := 0.0
			if !plat.CkdRecvIsCallback {
				detect = plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS
			}
			msg := plat.CharmMsg.Resolve(size+plat.HeaderBytes).OneWay().Micros() + plat.SchedUS
			put := plat.CkdPut.Resolve(size).OneWay().Micros() + detect
			savings[i] = msg - put
			breakEven[i] = math.Ceil(setup / savings[i])
		}
		t.AddRow(plat.Name+" saving/put (us)", savings...)
		t.AddRow(plat.Name+" break-even puts", breakEven...)
	}
	t.Notes = append(t.Notes,
		"setup = CreateHandle + AssocLocal registration plus one message shipping the handle",
		"iterative codes run thousands of iterations, so channels amortize within the first few")
	return t
}

// setupCostModel is the one-time channel cost in µs: the registration
// reservations CkDirect charges plus one small runtime message carrying
// the handle from receiver to sender (paper §2, setup step two).
func setupCostModel(plat *netmodel.Platform) float64 {
	const createAssocUS = 3.0 // matches ckdirect's create+assoc charges
	handleMsg := plat.CharmMsg.Resolve(64+plat.HeaderBytes).OneWay() + sim.Microseconds(plat.SchedUS)
	return createAssocUS + handleMsg.Micros()
}
