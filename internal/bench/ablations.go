package bench

import (
	"fmt"

	"repro/internal/apps/openatom"
	"repro/internal/apps/pingpong"
	"repro/internal/ckdirect"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// AblationPolling quantifies §5.2: with handles polled across every phase
// (naive Ready), the per-scheduler-pass polling tax can make CkDirect
// slower than plain messages; ReadyMark/ReadyPollQ windowing confines the
// tax to the PairCalculator phase. Columns sweep channel density.
func AblationPolling(scale Scale) *Table {
	pes := 16
	type cfgRow struct {
		nstates int
	}
	sweeps := []cfgRow{{32}, {64}, {128}}
	if scale == Paper {
		sweeps = []cfgRow{{32}, {64}, {128}, {256}}
	}
	t := &Table{
		ID:      "ablation-polling",
		Title:   "Polling-window ablation: OpenAtom proxy step time vs channel density (Abe model)",
		ColHead: "States (channel density)",
		Unit:    "ms per step",
	}
	var msgT, naiveT, optT, chans []float64
	for _, s := range sweeps {
		cfg := openatom.Config{
			Platform: netmodel.AbeIB,
			Scope:    openatom.FullStep,
			PEs:      pes,
			NStates:  s.nstates, NPlanes: 8, Grain: 16, Points: 256,
			Steps: 2, Warmup: 1,
		}
		cfg.Mode = openatom.Msg
		msg := openatom.Run(cfg)
		cfg.Mode = openatom.CkdNaive
		naive := openatom.Run(cfg)
		cfg.Mode = openatom.Ckd
		opt := openatom.Run(cfg)
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s.nstates))
		msgT = append(msgT, msg.StepTime.Millis())
		naiveT = append(naiveT, naive.StepTime.Millis())
		optT = append(optT, opt.StepTime.Millis())
		chans = append(chans, float64(opt.Channels)/float64(pes))
	}
	t.AddRow("charm messages", msgT...)
	t.AddRow("ckdirect naive Ready", naiveT...)
	t.AddRow("ckdirect Mark/PollQ", optT...)
	t.AddRow("channels per PE", chans...)
	t.Notes = append(t.Notes,
		"naive Ready keeps every channel in the polling queue across all phases (§5.2 pathology)",
		"Mark/PollQ re-arms polling only at the start of the PairCalculator phase")
	return t
}

// AblationCosts decomposes the modelled one-way cost of the Table 1
// stacks into the structural components the paper's §3 analysis talks
// about: header+scheduler overhead, per-byte transfer, rendezvous
// synchronization and registration. It is analytic (straight from the
// calibrated regime tables), which is the point: the reproduction's
// numbers are explained by structure, not fitted curves.
func AblationCosts() *Table {
	sizes := []int{100, 10000, 100000}
	t := &Table{
		ID:      "ablation-costs",
		Title:   "Cost decomposition of one-way latency on Abe (from the calibrated model)",
		ColHead: "Component",
		Unit:    "us",
	}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("msg@%dB", s), fmt.Sprintf("ckd@%dB", s))
	}
	plat := netmodel.AbeIB
	rows := map[string][]float64{}
	add := func(name string, v float64) { rows[name] = append(rows[name], v) }
	for _, s := range sizes {
		msg := plat.CharmMsg.Resolve(s + plat.HeaderBytes)
		ckd := plat.CkdPut.Resolve(s)
		add("send CPU", msg.SendCPU.Micros())
		add("send CPU", ckd.SendCPU.Micros())
		add("wire", msg.Wire.Micros())
		add("wire", ckd.Wire.Micros())
		add("recv CPU", msg.RecvCPU.Micros())
		add("recv CPU", 0)
		add("rendezvous latency", msg.Rendezvous.Micros())
		add("rendezvous latency", 0)
		add("registration CPU", msg.RendezvousCPU.Micros())
		add("registration CPU", 0)
		add("scheduler", plat.SchedUS)
		add("scheduler", 0)
		add("detect+callback", 0)
		add("detect+callback", plat.DetectLatencyUS+plat.DetectCPUUS+plat.CallbackUS)
		add("total one-way", msg.OneWay().Micros()+plat.SchedUS)
		add("total one-way", ckd.OneWay().Micros()+plat.DetectLatencyUS+plat.DetectCPUUS+plat.CallbackUS)
	}
	for _, name := range []string{
		"send CPU", "wire", "recv CPU", "rendezvous latency",
		"registration CPU", "scheduler", "detect+callback", "total one-way",
	} {
		t.AddRow(name, rows[name]...)
	}
	t.Notes = append(t.Notes,
		"charm header of 80 bytes included in the msg wire/CPU terms",
		"the msg column switches protocol regimes at ~1KB and ~20KB; ckd is RDMA throughout")
	return t
}

// AblationInfoHeader compares the paper's §2.2 design choice on Blue
// Gene/P: shipping the full receive context in the DCMF Info header (2
// quad words) versus a 1-quad-word handle plus a receiver-side lookup
// table. The paper chose the former, trading header bytes for the lookup
// cost; the ablation materializes both.
func AblationInfoHeader(scale Scale) *Table {
	lookup := lookupTablePlatform()
	sizes := []int{100, 1000, 10000, 100000}
	if scale == Paper {
		sizes = PaperSizes
	}
	t := &Table{
		ID:      "ablation-info",
		Title:   "BG/P CkDirect context delivery: Info header (paper) vs lookup table",
		ColHead: "Variant",
		Unit:    "us RTT",
	}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s))
	}
	variants := []struct {
		label string
		plat  *netmodel.Platform
	}{
		{"info-header (2 quad words)", netmodel.SurveyorBGP},
		{"lookup table (1 quad word)", lookup},
	}
	for _, v := range variants {
		vals := make([]float64, len(sizes))
		for i, s := range sizes {
			vals[i] = pingpong.Run(pingpong.Config{
				Platform: v.plat,
				Mode:     pingpong.CkDirect,
				Size:     s,
				Iters:    pingIters(scale),
			}).RTTMicros()
		}
		t.AddRow(v.label, vals...)
	}
	t.Notes = append(t.Notes,
		"lookup variant: 16 fewer header bytes on the wire, +0.18us receive-side table lookup",
		"the paper judged the simpler Info-header implementation faster; the model agrees at small sizes")
	return t
}

// AblationPutGet materializes the paper's §2 design argument: the put
// operation fits the message-driven model, while a get needs the
// consumer to learn (via a message — the very overhead CkDirect avoids)
// that the producer's data is ready, plus a request/response wire round
// trip. The table compares the modelled end-to-end latency of both, from
// data-ready at the producer to callback at the consumer.
func AblationPutGet(scale Scale) *Table {
	sizes := []int{100, 1000, 10000, 100000}
	if scale == Paper {
		sizes = PaperSizes
	}
	t := &Table{
		ID:      "ablation-putget",
		Title:   "Put vs get: end-to-end latency from data-ready to consumer callback",
		ColHead: "Path",
		Unit:    "us one-way",
	}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s))
	}
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		putVals := make([]float64, len(sizes))
		getVals := make([]float64, len(sizes))
		for i, s := range sizes {
			put := plat.CkdPut.Resolve(s).OneWay()
			if !plat.CkdRecvIsCallback {
				put += simMicros(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
			}
			putVals[i] = put.Micros()
			getVals[i] = ckdirect.GetOneWayModel(plat, s).Micros()
		}
		t.AddRow(plat.Name+" put", putVals...)
		t.AddRow(plat.Name+" get", getVals...)
	}
	t.Notes = append(t.Notes,
		"get = readiness message + RDMA-read request leg + payload leg + completion",
		"the readiness message alone costs a full runtime message — §2's reason to choose put")
	return t
}

func simMicros(us float64) sim.Time { return sim.Microseconds(us) }

// lookupTablePlatform clones SurveyorBGP with the alternative CkDirect
// context mechanism: one quad word less on the wire, a hash lookup more
// on the receive path.
func lookupTablePlatform() *netmodel.Platform {
	p := *netmodel.SurveyorBGP
	tab := make(netmodel.Table, len(p.CkdPut))
	copy(tab, p.CkdPut)
	for i := range tab {
		tab[i].RecvCPUUS += 0.18 // handle -> context hash lookup
		// 16 fewer Info bytes: at BG/P's ~2.7 ns/B this is a wash only
		// for tiny messages.
		tab[i].WireFixedUS -= 16 * tab[i].WirePerByteNS / 1000
		if tab[i].WireFixedUS < 0 {
			tab[i].WireFixedUS = 0
		}
	}
	p.CkdPut = tab
	p.Name = "surveyor-bluegenep-lookup"
	return &p
}
