package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/serve"
)

// ScaleBench sweeps world size on the net backend and archives the two
// things the scale work claims: the applications keep working (and
// their wall-clock numbers stay sane) as ranks grow, and the mesh's
// bookkeeping grows like the communication pattern, not like the world
// squared. Each world boots one in-process mesh, runs pingpong across
// its full rank span, a validated stencil over one PE per rank, and a
// ckserve job stream, then snapshots the netrt scale counters: total
// sockets opened under lazy dialing versus the N·(N−1) a full mesh
// would have opened, and the termination-tree root's per-round probe
// fan-in versus its -net.termfanout bound.
func ScaleBench(scale Scale) []*Table {
	worlds := []int{4, 8, 16}
	ppIters, stIters, stWarm := 50, 2, 1
	nx, ny, nz := 16, 16, 8
	serveJobs := 4
	if scale == Paper {
		worlds = []int{8, 16, 32, 64}
		ppIters, stIters, stWarm = 200, 4, 2
		nx, ny, nz = 24, 24, 12
		serveJobs = 8
	}
	cols := make([]string, len(worlds))
	for i, w := range worlds {
		cols[i] = fmt.Sprintf("%d", w)
	}

	apps := &Table{
		ID:      "scale-apps",
		Title:   "Application wall clock vs world size on the net backend",
		ColHead: "Ranks",
		Columns: cols,
		Unit:    "see row labels, wall clock",
		Notes: []string{
			"every rank is a goroutine world in ONE process on one host: past a few ranks the CPUs are heavily oversubscribed, so absolute times measure the runtime's behavior under oversubscription, not cluster speed — the honest reading is \"does it degrade gracefully\", not \"does it scale linearly\"",
			"the realrt no-progress watchdog is widened to 4s per rank (Config.StallTimeout): on an oversubscribed host a starved-but-healthy PE can wait past the 30s default for a peer that is merely time-slicing, and the default would misread that as deadlock",
			fmt.Sprintf("pingpong is ckdirect mode between rank 0 and the highest rank (one PE per rank), %d round trips of 8 KiB", ppIters),
			fmt.Sprintf("stencil is the validated halo exchange, domain %dx%dx%d, one PE per rank, virtualization 2", nx, ny, nz),
			fmt.Sprintf("ckserve is %d validated stencil jobs against a warmed world-sized mesh, reported as jobs/s", serveJobs),
		},
	}
	mesh := &Table{
		ID:      "scale-mesh",
		Title:   "Mesh bookkeeping vs world size: lazy dialing and the termination tree",
		ColHead: "Ranks",
		Columns: cols,
		Unit:    "counts",
		Notes: []string{
			"sockets are summed over all ranks, so every TCP edge counts twice (dialer + acceptor); the full-mesh reference N·(N−1) counts the same way",
			"pingpong's span edge plus the stencil's neighbor halo touch a sliver of the possible edges: lazy dialing must keep sockets near the star's 2·(N−1), far under the full mesh",
			"root probe fan-in is rank 0's termination-tree reports per probe round, bounded by -net.termfanout regardless of world size",
			fmt.Sprintf("shm rings are shrunk to 64 KiB (arena 128 KiB) so a 64-rank in-process world maps bounded memory; term fanout is the default %d", netrt.DefaultTermFanout),
		},
	}

	ppRow := make([]float64, len(worlds))
	stRow := make([]float64, len(worlds))
	svRow := make([]float64, len(worlds))
	connRow := make([]float64, len(worlds))
	fullRow := make([]float64, len(worlds))
	fanRow := make([]float64, len(worlds))
	dialReqRow := make([]float64, len(worlds))

	for i, world := range worlds {
		fmt.Fprintf(os.Stderr, "scale: world %d: boot\n", world)
		// Every rank time-slices the same host CPUs, so a PE can
		// legitimately wait far past realrt's 30s no-progress default
		// for a peer's halo face while dozens of sibling ranks run.
		// Widen the deadlock watchdog in proportion to the
		// oversubscription; a real hang still trips it.
		cfg := netrt.Config{
			ShmRingBytes:  64 << 10,
			ShmArenaBytes: 128 << 10,
			StallTimeout:  time.Duration(world) * 4 * time.Second,
		}
		nodes, err := netrt.StartLocalConfig(world, cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: scale world of %d: %v", world, err))
		}
		fmt.Fprintf(os.Stderr, "scale: world %d: pingpong\n", world)
		ppRow[i] = scalePingpong(nodes, ppIters)
		fmt.Fprintf(os.Stderr, "scale: world %d: stencil\n", world)
		stRow[i] = scaleStencil(nodes, nx, ny, nz, stIters, stWarm)

		var conns int64
		for _, n := range nodes {
			conns += n.ConnsOpened()
		}
		root := nodes[0].Stats()
		connRow[i] = float64(conns)
		fullRow[i] = float64(world * (world - 1))
		if root.TermProbeRounds > 0 {
			fanRow[i] = float64(root.TermProbeReports) / float64(root.TermProbeRounds)
		}
		var reqs int64
		for _, n := range nodes {
			reqs += n.Stats().DialReqs
		}
		dialReqRow[i] = float64(reqs)
		for _, n := range nodes {
			n.Close()
		}

		svRow[i] = scaleServe(world, serveJobs, cfg)
	}

	apps.AddRow("pingpong (us RTT)", ppRow...)
	apps.AddRow("stencil (ms/iter)", stRow...)
	apps.AddRow("ckserve (jobs/s)", svRow...)
	mesh.AddRow("sockets opened (2x per edge)", connRow...)
	mesh.AddRow("full-mesh sockets N(N-1)", fullRow...)
	mesh.AddRow("root probe fan-in", fanRow...)
	mesh.AddRow("dial requests relayed", dialReqRow...)
	return []*Table{apps, mesh}
}

// scalePingpong runs the ckdirect pingpong between the world's first
// and last rank: CoresPerNode of world−1 places the two endpoint PEs at
// 0 and world−1 with one PE per rank, so the round trip crosses the
// longest lazy edge the world has — an edge no bootstrap opened.
func scalePingpong(nodes []*netrt.Node, iters int) float64 {
	plat := *netmodel.AbeIB
	plat.Name = "host(scale)"
	plat.CoresPerNode = len(nodes) - 1
	results := runNetWorld(nodes, pingpong.Config{
		Platform: &plat,
		Mode:     pingpong.CkDirect,
		Size:     8192,
		Iters:    iters,
		Backend:  charm.NetBackend,
	})
	return results[0].RTTMicros()
}

// scaleStencil runs the validated halo exchange with one PE per rank.
func scaleStencil(nodes []*netrt.Node, nx, ny, nz, iters, warmup int) float64 {
	world := len(nodes)
	results := make([]stencil.Result, world)
	var wg sync.WaitGroup
	for r, n := range nodes {
		r, n := r, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r] = stencil.Run(stencil.Config{
				Platform: netmodel.AbeIB,
				Mode:     stencil.Ckd,
				PEs:      world, Virtualization: 2,
				NX: nx, NY: ny, NZ: nz,
				Iters: iters, Warmup: warmup,
				Validate: true,
				Backend:  charm.NetBackend,
				Net:      n,
			})
		}()
	}
	wg.Wait()
	for r, res := range results {
		if len(res.Errors) > 0 {
			panic(fmt.Sprintf("bench: scale stencil world %d rank %d: %v", world, r, res.Errors))
		}
	}
	return results[0].IterTime.Millis()
}

// scaleServe times a short validated-stencil job stream against a
// warmed world-sized serving mesh, one priming job outside the window.
func scaleServe(world, jobs int, cfg netrt.Config) float64 {
	srv, stop := serveNetWorldCfg(world, cfg)
	defer stop()
	spec := serve.Spec{Kind: "stencil", Validate: true}
	serveJob(srv, spec)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		serveJob(srv, spec)
	}
	return float64(jobs) / time.Since(start).Seconds()
}
