package bench

import (
	"repro/internal/apps/fem"
	"repro/internal/netmodel"
)

// FemFigure is a supplementary experiment (not a paper artifact): the
// §1 application class the paper motivates CkDirect with — "non-adaptive
// finite element simulations" — realized as an unstructured-mesh explicit
// solver with an irregular but static shared-vertex exchange. It shows
// that the CkDirect win and its growth with processor count carry over
// beyond the paper's regular-communication applications.
func FemFigure(scale Scale) *Table {
	pes := []int{8, 16, 32, 64}
	nx, ny := 2048, 2048
	vr := 2
	if scale == Quick {
		pes = []int{8, 16}
		nx, ny = 512, 512
	}
	t := &Table{
		ID:      "fem",
		Title:   "Unstructured-mesh FEM solver, messages vs CkDirect (Abe model)",
		ColHead: "Processors",
		Columns: peCols(pes),
		Unit:    "ms per iteration / percent",
		Notes: []string{
			"supplementary experiment: the paper's motivating class (§1), not a published figure",
			"irregular neighbour graph: corner channels carry 8 bytes, edge channels kilobytes",
		},
	}
	msgT := make([]float64, len(pes))
	ckdT := make([]float64, len(pes))
	imp := make([]float64, len(pes))
	for i, p := range pes {
		msg, ckd, pct := fem.Improvement(fem.Config{
			Platform: netmodel.AbeIB,
			PEs:      p, Virtualization: vr,
			NX: nx, NY: ny,
			Iters: 3, Warmup: 1,
		})
		msgT[i] = msg.IterTime.Millis()
		ckdT[i] = ckd.IterTime.Millis()
		imp[i] = pct
	}
	t.AddRow("msg (ms)", msgT...)
	t.AddRow("ckd (ms)", ckdT...)
	t.AddRow("improvement %", imp...)
	return t
}
