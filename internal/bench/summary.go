package bench

import (
	"math"

	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/netmodel"
)

// Summary runs a fast scorecard of the paper's headline claims and
// reports pass/fail per claim (1 = holds, 0 = does not). It is the
// ten-second answer to "does this reproduction actually reproduce?".
func Summary(scale Scale) *Table {
	t := &Table{
		ID:      "summary",
		Title:   "Reproduction scorecard: the paper's headline claims",
		ColHead: "Claim",
		Columns: []string{"holds", "detail"},
		Unit:    "1 = reproduced",
	}
	add := func(name string, ok bool, detail float64) {
		v := 0.0
		if ok {
			v = 1
		}
		t.AddRow(name, v, detail)
	}

	// Claim 1: CkDirect beats default Charm++ messaging at every Table 1
	// and Table 2 size, on both machines.
	worstGain := math.Inf(1)
	allWin := true
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		for _, size := range PaperSizes {
			msg := pingpong.Run(pingpong.Config{Platform: plat, Mode: pingpong.CharmMsg, Size: size, Iters: 5}).RTTMicros()
			ckd := pingpong.Run(pingpong.Config{Platform: plat, Mode: pingpong.CkDirect, Size: size, Iters: 5}).RTTMicros()
			gain := (msg - ckd) / msg * 100
			if gain <= 0 {
				allWin = false
			}
			if gain < worstGain {
				worstGain = gain
			}
		}
	}
	add("pingpong: ckdirect beats charm messages at every size", allWin, worstGain)

	// Claim 2: pingpong cells match the published tables within 7%.
	worstDev := 0.0
	for label, paper := range PaperTable1 {
		mode := map[string]pingpong.Mode{
			"charm-msg": pingpong.CharmMsg, "ckdirect": pingpong.CkDirect,
			"mpich-vmi": pingpong.MPIAlt, "mvapich": pingpong.MPI, "mvapich-put": pingpong.MPIPut,
		}[label]
		for i, size := range PaperSizes {
			got := pingpong.Run(pingpong.Config{Platform: netmodel.AbeIB, Mode: mode, Size: size, Iters: 5}).RTTMicros()
			if dev := math.Abs(got-paper[i]) / paper[i] * 100; dev > worstDev {
				worstDev = dev
			}
		}
	}
	add("table 1: all cells within 7% of the paper", worstDev <= 7, worstDev)

	// Claim 3: stencil improvement grows with processor count.
	small, large := stencilGain(16), stencilGain(64)
	add("stencil: gains grow with processors", large > small && small > 0, large-small)

	// Claim 4: the §5.2 polling pathology and its fix.
	ab := AblationPolling(Quick)
	msgRow := ab.Row("charm messages")
	naive := ab.Row("ckdirect naive Ready")
	opt := ab.Row("ckdirect Mark/PollQ")
	last := len(msgRow) - 1
	add("openatom: naive polling slower than messages at high density",
		naive[last] > msgRow[last], (naive[last]/msgRow[last]-1)*100)
	add("openatom: Mark/PollQ windowing beats messages everywhere",
		allBelow(opt, msgRow), (1-opt[last]/msgRow[last])*100)

	t.Notes = append(t.Notes, "detail column: worst-case gain %, worst deviation %, gain spread, slowdown %")
	return t
}

func stencilGain(pes int) float64 {
	_, _, pct := stencil.Improvement(stencil.Config{
		Platform: netmodel.AbeIB,
		PEs:      pes, Virtualization: 8,
		NX: 256, NY: 256, NZ: 128,
		Iters: 2, Warmup: 1,
	})
	return pct
}

func allBelow(a, b []float64) bool {
	for i := range a {
		if a[i] >= b[i] {
			return false
		}
	}
	return true
}
