package bench

import (
	"fmt"

	"repro/internal/apps/matmul"
	"repro/internal/apps/openatom"
	"repro/internal/apps/stencil"
	"repro/internal/netmodel"
)

func peCols(pes []int) []string {
	cols := make([]string, len(pes))
	for i, p := range pes {
		cols[i] = fmt.Sprintf("%d", p)
	}
	return cols
}

// Fig2a regenerates Figure 2(a): percentage improvement in average
// stencil iteration time for CkDirect over messages on Infiniband,
// 1024x1024x512 domain, virtualization ratio 8.
func Fig2a(scale Scale) *Table {
	pes := []int{16, 32, 64, 128, 256}
	nx, ny, nz := 1024, 1024, 512
	if scale == Quick {
		pes = []int{16, 32, 64}
		nx, ny, nz = 256, 256, 128
	}
	return stencilFigure("fig2a", "Stencil improvement, CkDirect over messages, Infiniband (Abe)",
		netmodel.AbeIB, pes, nx, ny, nz)
}

// Fig2b regenerates Figure 2(b) on Blue Gene/P, 64 through 4096 PEs.
func Fig2b(scale Scale) *Table {
	pes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	nx, ny, nz := 1024, 1024, 512
	if scale == Quick {
		pes = []int{64, 128, 256}
		nx, ny, nz = 256, 256, 128
	}
	return stencilFigure("fig2b", "Stencil improvement, CkDirect over messages, Blue Gene/P",
		netmodel.SurveyorBGP, pes, nx, ny, nz)
}

func stencilFigure(id, title string, plat *netmodel.Platform, pes []int, nx, ny, nz int) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		ColHead: "Processors",
		Columns: peCols(pes),
		Unit:    "percent / ms",
		Notes: []string{
			fmt.Sprintf("domain %dx%dx%d, 8 chares per processor, barrier-separated Jacobi iterations", nx, ny, nz),
		},
	}
	imp := make([]float64, len(pes))
	msgT := make([]float64, len(pes))
	ckdT := make([]float64, len(pes))
	for i, p := range pes {
		msg, ckd, pct := stencil.Improvement(stencil.Config{
			Platform: plat,
			PEs:      p, Virtualization: 8,
			NX: nx, NY: ny, NZ: nz,
			Iters: 3, Warmup: 1,
		})
		imp[i] = pct
		msgT[i] = msg.IterTime.Millis()
		ckdT[i] = ckd.IterTime.Millis()
	}
	t.AddRow("improvement %", imp...)
	t.AddRow("msg iter (ms)", msgT...)
	t.AddRow("ckd iter (ms)", ckdT...)
	return t
}

// Fig3 regenerates Figure 3: matrix multiplication execution time on
// Blue Gene/P and Abe, 2048x2048 matrices, messages vs CkDirect.
func Fig3(scale Scale) []*Table {
	bgpPEs := []int{64, 128, 256, 512, 1024, 2048, 4096}
	abePEs := []int{16, 32, 64, 128, 256, 512}
	if scale == Quick {
		bgpPEs = []int{64, 128, 256}
		abePEs = []int{16, 32, 64}
	}
	return []*Table{
		matmulFigure("fig3-bgp", "Matrix multiplication (2048x2048) on Blue Gene/P", netmodel.SurveyorBGP, bgpPEs),
		matmulFigure("fig3-abe", "Matrix multiplication (2048x2048) on Abe", netmodel.AbeIB, abePEs),
	}
}

func matmulFigure(id, title string, plat *netmodel.Platform, pes []int) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		ColHead: "Processors",
		Columns: peCols(pes),
		Unit:    "ms per multiply / percent",
	}
	msgT := make([]float64, len(pes))
	ckdT := make([]float64, len(pes))
	imp := make([]float64, len(pes))
	for i, p := range pes {
		msg, ckd, pct := matmul.Improvement(matmul.Config{
			Platform: plat,
			PEs:      p,
			N:        2048,
			Iters:    2, Warmup: 1,
		})
		msgT[i] = msg.IterTime.Millis()
		ckdT[i] = ckd.IterTime.Millis()
		imp[i] = pct
	}
	t.AddRow("msg (ms)", msgT...)
	t.AddRow("ckd (ms)", ckdT...)
	t.AddRow("improvement %", imp...)
	return t
}

// openAtomProxy is the proxy configuration standing in for the paper's
// 256-water-molecule, 70 Rydberg benchmark (1024 states). The state count
// is scaled down; channel-per-processor density and the compute/comm
// balance follow the production profile (see DESIGN.md).
//
// As in the production code, the PairCalculator decomposition refines
// with the processor count ("this number increases further each time the
// PairCalculator computation is further decomposed, as is done at higher
// processor counts", §5.2): the plane count grows so there is at least
// one PC per PE, while the total coefficient volume per state stays
// fixed, so more planes mean proportionally smaller transfers.
func openAtomProxy(plat *netmodel.Platform, pes int, scope openatom.Scope, scale Scale) openatom.Config {
	const (
		nstates     = 256
		grain       = 64
		totalPoints = 65536 // coefficients per state, split over planes
	)
	nblocks := nstates / grain
	nplanes := 16
	for nblocks*nblocks*nplanes < pes {
		nplanes *= 2
	}
	cfg := openatom.Config{
		Platform: plat,
		Scope:    scope,
		PEs:      pes,
		NStates:  nstates, NPlanes: nplanes, Grain: grain,
		Points:    totalPoints / nplanes,
		FFTWeight: 24,
		Steps:     2, Warmup: 1,
	}
	if scale == Quick {
		cfg.NStates, cfg.NPlanes, cfg.Grain, cfg.Points = 64, 8, 16, 256
	}
	return cfg
}

// Fig4 regenerates Figure 4: OpenAtom time per step on Abe (2 cores per
// node, as in the paper), full step (4a) and PairCalculator-only (4b).
func Fig4(scale Scale) []*Table {
	pes := []int{64, 128, 256}
	if scale == Quick {
		pes = []int{16, 32}
	}
	return []*Table{
		openAtomFigure("fig4a", "OpenAtom time per step, Abe (full step)", netmodel.AbeIB, pes, 2, openatom.FullStep, scale),
		openAtomFigure("fig4b", "OpenAtom time per step, Abe (PairCalculator phases only)", netmodel.AbeIB, pes, 2, openatom.PCOnly, scale),
	}
}

// Fig5 regenerates Figure 5 on Blue Gene/P.
func Fig5(scale Scale) []*Table {
	pes := []int{256, 512, 1024, 2048, 4096}
	if scale == Quick {
		pes = []int{16, 32}
	}
	return []*Table{
		openAtomFigure("fig5a", "OpenAtom time per step, Blue Gene/P (full step)", netmodel.SurveyorBGP, pes, 0, openatom.FullStep, scale),
		openAtomFigure("fig5b", "OpenAtom time per step, Blue Gene/P (PairCalculator phases only)", netmodel.SurveyorBGP, pes, 0, openatom.PCOnly, scale),
	}
}

func openAtomFigure(id, title string, plat *netmodel.Platform, pes []int, coresPerNode int, scope openatom.Scope, scale Scale) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		ColHead: "Processors",
		Columns: peCols(pes),
		Unit:    "ms per step / percent",
	}
	if coresPerNode > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d cores per node, as in the paper's Abe study", coresPerNode))
	}
	msgT := make([]float64, len(pes))
	ckdT := make([]float64, len(pes))
	imp := make([]float64, len(pes))
	for i, p := range pes {
		cfg := openAtomProxy(plat, p, scope, scale)
		cfg.CoresPerNode = coresPerNode
		msg, ckd, pct := openatom.Improvement(cfg)
		msgT[i] = msg.StepTime.Millis()
		ckdT[i] = ckd.StepTime.Millis()
		imp[i] = pct
	}
	t.AddRow("msg (ms)", msgT...)
	t.AddRow("ckd (ms)", ckdT...)
	t.AddRow("improvement %", imp...)
	return t
}
