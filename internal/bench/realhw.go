package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/realrt"
)

// realHWPEs is the stencil sweep for the real-execution experiment:
// powers of two from 2 up to the host's CPU count, always ending at
// max(2, NumCPU) so the headline point uses every core.
func realHWPEs() []int {
	top := runtime.NumCPU()
	if top < 2 {
		top = 2
	}
	var pes []int
	for p := 2; p <= top; p *= 2 {
		pes = append(pes, p)
	}
	if pes[len(pes)-1] != top {
		pes = append(pes, top)
	}
	return pes
}

// realHWNote describes the host, since wall-clock numbers are only
// meaningful relative to it.
func realHWNote() string {
	return fmt.Sprintf("wall-clock on this host: %d CPUs, GOMAXPROCS %d, %s/%s — expect run-to-run variance",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH)
}

// RealHW measures the real-execution backend: the same programs the
// simulator models, run on goroutines with true shared-memory CkDirect
// puts, timed by the wall clock. Unlike every other experiment these
// numbers are host performance, not model output — the point is that
// the paper's mechanism (memcpy + sentinel release-store, receiver-side
// polling, no locks or notifications) beats scheduler-mediated message
// delivery on real hardware too, not just in the cost model.
func RealHW(scale Scale) []*Table {
	return []*Table{realHWPingpong(scale), realHWStencil(scale), realHWContention(scale)}
}

// realHWPingpong is the §3 microbenchmark on the real backend: two PEs
// on two goroutines. A one-node platform copy puts the peers on PEs 0
// and 1 so the whole run needs exactly two workers.
func realHWPingpong(scale Scale) *Table {
	plat := *netmodel.AbeIB
	plat.Name = "host(shm)"
	plat.CoresPerNode = 1

	sizes := []int{1024, 8192, 65536}
	iters := 200
	if scale == Paper {
		sizes = []int{1024, 8192, 65536, 524288}
		iters = 2000
	}
	cols := make([]string, len(sizes))
	for i, s := range sizes {
		cols[i] = fmt.Sprintf("%d", s)
	}
	t := &Table{
		ID:      "realhw-pingpong",
		Title:   "Pingpong RTT on the real backend (goroutines + shared memory)",
		ColHead: "Message Size (B)",
		Columns: cols,
		Unit:    "us RTT, wall clock",
		Notes: []string{
			realHWNote(),
			"ckdirect row is a memcpy + atomic sentinel store, detected by the peer's poll loop",
		},
	}
	for _, mode := range []pingpong.Mode{pingpong.CharmMsg, pingpong.CkDirect} {
		vals := make([]float64, len(sizes))
		for i, size := range sizes {
			res := pingpong.Run(pingpong.Config{
				Platform: &plat,
				Mode:     mode,
				Size:     size,
				Iters:    iters,
				Backend:  charm.RealBackend,
			})
			vals[i] = res.RTTMicros()
		}
		t.AddRow(mode.String(), vals...)
	}
	return t
}

// contentionProducers sweeps the producer counts for the queue-contention
// microbenchmark: 1 (uncontended baseline) through at least 4, extended
// to the host's CPU count.
func contentionProducers() []int {
	ps := []int{1, 2, 4}
	for p := 8; p <= runtime.NumCPU(); p *= 2 {
		ps = append(ps, p)
	}
	if top := runtime.NumCPU(); top > 4 && ps[len(ps)-1] != top {
		ps = append(ps, top)
	}
	return ps
}

// realHWContention hammers one PE's scheduler queue from N concurrent
// producers and reports the end-to-end cost per task (push, wakeup,
// dispatch). This is the path the lock-free MPSC queue replaced a mutex
// FIFO on: every cross-PE message and every CkDirect detection callback
// rides it, so its per-task cost under contention bounds how fast the
// real backend can ever deliver small messages.
func realHWContention(scale Scale) *Table {
	producers := contentionProducers()
	perProducer := 20000
	if scale == Paper {
		perProducer = 200000
	}
	cols := make([]string, len(producers))
	for i, p := range producers {
		cols[i] = fmt.Sprintf("%d", p)
	}
	t := &Table{
		ID:      "realhw-contention",
		Title:   "Scheduler queue contention: N producers hammering one PE (lock-free MPSC push + park/unpark)",
		ColHead: "Producers",
		Columns: cols,
		Unit:    "ns per task / Mtasks per s, wall clock",
		Notes: []string{
			realHWNote(),
			fmt.Sprintf("%d no-op tasks per producer enqueued concurrently with the consumer draining them", perProducer),
		},
	}
	ns := make([]float64, len(producers))
	thr := make([]float64, len(producers))
	for i, p := range producers {
		elapsed := contentionRun(p, perProducer)
		total := float64(p * perProducer)
		ns[i] = float64(elapsed.Nanoseconds()) / total
		thr[i] = total / elapsed.Seconds() / 1e6
	}
	t.AddRow("ns/task", ns...)
	t.AddRow("Mtasks/s", thr...)
	return t
}

// contentionRun times one contention configuration: producers push no-op
// tasks onto PE 0 while its worker drains them. A put credit holds the
// runtime open until every producer finishes, so quiescence cannot win a
// race against a producer that has not pushed its first task yet.
func contentionRun(producers, perProducer int) time.Duration {
	rt := realrt.New(1)
	rt.PutIssued()
	noop := func() {}
	var wg sync.WaitGroup
	wg.Add(producers)
	start := time.Now()
	for p := 0; p < producers; p++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				rt.Enqueue(0, noop)
			}
		}()
	}
	go func() {
		wg.Wait()
		rt.PutDetected()
	}()
	rt.Run()
	return time.Since(start)
}

// realHWStencil is the §4.1 study on the real backend: msg vs ckd halo
// exchange at PE counts from 2 up to the host's CPU count.
func realHWStencil(scale Scale) *Table {
	pes := realHWPEs()
	nx, ny, nz := 16, 16, 8
	iters, warmup := 2, 1
	if scale == Paper {
		nx, ny, nz = 48, 48, 24
		iters, warmup = 5, 2
	}
	t := &Table{
		ID:      "realhw-stencil",
		Title:   "Stencil halo exchange on the real backend, messages vs CkDirect",
		ColHead: "Processors",
		Columns: peCols(pes),
		Unit:    "ms per iteration / percent, wall clock",
		Notes: []string{
			realHWNote(),
			fmt.Sprintf("domain %dx%dx%d, virtualization 2; payloads are real and validated against the serial reference", nx, ny, nz),
		},
	}
	msgT := make([]float64, len(pes))
	ckdT := make([]float64, len(pes))
	imp := make([]float64, len(pes))
	for i, p := range pes {
		msg, ckd, pct := stencil.Improvement(stencil.Config{
			Platform: netmodel.AbeIB,
			PEs:      p, Virtualization: 2,
			NX: nx, NY: ny, NZ: nz,
			Iters: iters, Warmup: warmup,
			Validate: true,
			Backend:  charm.RealBackend,
		})
		msgT[i] = msg.IterTime.Millis()
		ckdT[i] = ckd.IterTime.Millis()
		imp[i] = pct
	}
	t.AddRow("msg (ms)", msgT...)
	t.AddRow("ckd (ms)", ckdT...)
	t.AddRow("improvement %", imp...)
	return t
}
