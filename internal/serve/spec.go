// Package serve is the long-lived job-serving runtime over the warmed
// mesh: boot the world once, keep peers dialed, CkDirect machinery
// registered and buffer pools hot, and run a stream of jobs against it
// instead of paying the boot cost per run.
//
// The daemon (cmd/ckserve) is SPMD like every other net-backend
// program: rank 0 owns the HTTP API, the admission queue and the job
// sequence; worker ranks run a follower loop that executes every
// announced job with the identical spec. Per-job isolation comes from
// the run-generation machinery — each job is its own generation on the
// reused mesh, so a failed or chaos-killed job aborts cleanly without
// poisoning the next one — and RunWithRecovery turns a rank death
// mid-job into a mesh rebuild plus rerun rather than a dead daemon.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/chaos"
)

// Spec is one job request: a registered kind plus its parameters. The
// canonical JSON encoding of a normalized Spec is what rank 0
// broadcasts, so every rank executes bit-identical configuration.
type Spec struct {
	// Kind names the registered workload: pingpong, stencil, matmul, fem.
	Kind string `json:"kind"`
	// Mode is the transport: "msg" or "ckd" (default).
	Mode string `json:"mode,omitempty"`
	// PEs is the processing-element count (stencil/matmul/fem; pingpong
	// derives its own placement). Defaults to the world size under net.
	PEs int `json:"pes,omitempty"`
	// Iters/Warmup are measured and warmup iterations.
	Iters  int `json:"iters,omitempty"`
	Warmup int `json:"warmup,omitempty"`
	// Validate moves real data and checks against the serial oracles.
	Validate bool `json:"validate,omitempty"`
	// Size is the pingpong payload in bytes.
	Size int `json:"size,omitempty"`
	// NX, NY, NZ are the stencil domain (3-D) or fem quad grid (2-D).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	NZ int `json:"nz,omitempty"`
	// Virtualization is the chares-per-PE target (stencil/fem).
	Virtualization int `json:"vr,omitempty"`
	// N is the matmul matrix edge.
	N int `json:"n,omitempty"`
	// Kill fires the kill -9 chaos tier mid-job: "RANK@STEP" (net
	// backend only). The daemon recovers and the job retries.
	Kill string `json:"kill,omitempty"`
	// LBEvery runs a measurement-based load-balancing round every
	// LBEvery reduction barriers, LBStrategy names the rebalancer
	// (default "greedy" when LBEvery is set), and Skew makes the first
	// half of the chare order perform Skew times extra compute so the
	// balancer has something to move (stencil only).
	LBEvery    int     `json:"lb_every,omitempty"`
	LBStrategy string  `json:"lb_strategy,omitempty"`
	Skew       float64 `json:"skew,omitempty"`

	// chaosKill is Kill parsed once per job by PrepareKill. One object
	// must span all recovery attempts: Kill.Fire is one-shot per
	// object, so the rerun after a Rejoin does not re-kill the freshly
	// respawned worker.
	chaosKill *chaos.Kill
}

// Outcome is one rank's result for one job. Under the real backend
// there is a single outcome; under net, rank 0 aggregates one per rank.
type Outcome struct {
	Rank int  `json:"rank"`
	OK   bool `json:"ok"`
	// Errors are the run's failures, stringified for the wire.
	Errors []string `json:"errors,omitempty"`
	// Metric is the kind's headline number in microseconds (pingpong
	// RTT, others per-iteration time); zero on worker ranks, whose
	// barriers live on rank 0.
	Metric float64 `json:"metric_us,omitempty"`
	// Checksum digests the rank's validate-mode payload (hosted field /
	// product bytes, NaN markers included). The same job resubmitted
	// must reproduce it bit-identically, before or after a rank death.
	Checksum string `json:"checksum,omitempty"`
	// ElapsedMS is the wall-clock job time on this rank.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Counters is the run's trace-counter snapshot (mem.*/pool.*/...).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// State is a job's position in its lifecycle.
type State string

// Lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is the daemon-side record of one submission.
type Job struct {
	ID        int64     `json:"id"`
	Spec      Spec      `json:"spec"`
	State     State     `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Local is this process's outcome (rank 0 under net).
	Local *Outcome `json:"local,omitempty"`
	// Workers are the other ranks' reported outcomes (net only).
	Workers []Outcome `json:"workers,omitempty"`
	// Error is the admission- or aggregation-level failure, if any.
	Error string `json:"error,omitempty"`
}

// checksumF64 digests a float64 slice bit-for-bit (FNV-1a over the
// little-endian IEEE words, NaNs included) so validate-mode payloads
// can be compared across job runs without shipping the data.
func checksumF64(vals []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
