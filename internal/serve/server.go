package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/charm"
)

// ErrOverloaded is the typed admission rejection: the queue is at
// capacity. HTTP maps it to 429 with a Retry-After hint.
type ErrOverloaded struct {
	Depth int
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("serve: queue full (%d jobs deep); retry later", e.Depth)
}

// ErrBadSpec is the typed admission rejection for an invalid job spec.
// HTTP maps it to 400.
type ErrBadSpec struct {
	Err error
}

func (e *ErrBadSpec) Error() string { return "serve: bad spec: " + e.Err.Error() }
func (e *ErrBadSpec) Unwrap() error { return e.Err }

// Options configures the daemon core.
type Options struct {
	// Env is the warmed execution environment (backend, node, platform).
	Env Env
	// QueueDepth bounds the admission queue (default 16). Submissions
	// beyond it are rejected with ErrOverloaded.
	QueueDepth int
	// Attempts is the per-job recovery budget under net (default
	// charm.DefaultRecoveryAttempts).
	Attempts int
	// ReportWait bounds how long rank 0 waits for worker job reports
	// after its own run completes (default 60s).
	ReportWait time.Duration
	// Parallel is the executor width. It must be 1 under net (one run
	// generation at a time crosses the mesh); the real backend may run
	// jobs concurrently, each on its own scheduler over the shared
	// warmed pools.
	Parallel int
}

// Server is the rank-0 daemon core: the admission queue, the job store,
// the executor, and the serve.* counters. Worker ranks run Follow
// instead.
type Server struct {
	opts Options

	mu      sync.Mutex
	jobs    map[int64]*Job
	order   []int64
	subs    map[int]chan Job
	nextSub int
	cum     map[string]int64
	lat     map[string]*latStats
	doneCh  map[int64]chan struct{}

	nextID    int64
	admitted  int64
	rejected  int64
	badSpec   int64
	jobsDone  int64
	jobsFail  int64
	depth     int64
	started   time.Time
	queue     chan *Job
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// latStats is a fixed-bucket latency histogram plus running moments,
// per job kind.
type latStats struct {
	count, errs         int64
	sumMS, minMS, maxMS float64
	buckets             [len(latBounds) + 1]int64
}

// latBounds are the histogram upper bounds in milliseconds.
var latBounds = [...]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}

func (l *latStats) observe(ms float64, failed bool) {
	l.count++
	if failed {
		l.errs++
	}
	l.sumMS += ms
	if l.count == 1 || ms < l.minMS {
		l.minMS = ms
	}
	if ms > l.maxMS {
		l.maxMS = ms
	}
	for i, b := range latBounds {
		if ms <= b {
			l.buckets[i]++
			return
		}
	}
	l.buckets[len(latBounds)]++
}

// New builds and starts the daemon core. Under net the caller must be
// rank 0 (workers run Follow) with Parallel 1.
func New(opts Options) (*Server, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Attempts <= 0 {
		opts.Attempts = charm.DefaultRecoveryAttempts
	}
	if opts.ReportWait <= 0 {
		opts.ReportWait = 60 * time.Second
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	if opts.Env.Net != nil {
		if opts.Env.Net.IsWorker() {
			return nil, fmt.Errorf("serve: the server runs on rank 0; workers run Follow")
		}
		if opts.Parallel != 1 {
			return nil, fmt.Errorf("serve: net backend runs one job at a time (one run generation crosses the mesh); Parallel must be 1")
		}
	}
	s := &Server{
		opts:    opts,
		jobs:    make(map[int64]*Job),
		subs:    make(map[int]chan Job),
		cum:     make(map[string]int64),
		lat:     make(map[string]*latStats),
		doneCh:  make(map[int64]chan struct{}),
		queue:   make(chan *Job, opts.QueueDepth),
		closed:  make(chan struct{}),
		started: time.Now(),
	}
	for i := 0; i < opts.Parallel; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// Close stops the executors after the in-flight jobs finish. Queued
// jobs that never started stay queued in the store. It does not touch
// the mesh — the node belongs to the caller.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
}

// Submit validates and enqueues one job. The returned Job is a
// snapshot; poll Get or block on Wait for progress.
func (s *Server) Submit(spec Spec) (Job, error) {
	if err := Normalize(s.opts.Env, &spec); err != nil {
		atomic.AddInt64(&s.badSpec, 1)
		return Job{}, &ErrBadSpec{Err: err}
	}
	job := &Job{
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
	}
	s.mu.Lock()
	s.nextID++
	job.ID = s.nextID
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		atomic.AddInt64(&s.rejected, 1)
		return Job{}, &ErrOverloaded{Depth: s.opts.QueueDepth}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.doneCh[job.ID] = make(chan struct{})
	snap := snapshot(job)
	s.mu.Unlock()
	atomic.AddInt64(&s.admitted, 1)
	atomic.AddInt64(&s.depth, 1)
	return snap, nil
}

// Get returns a snapshot of one job.
func (s *Server) Get(id int64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshot(j), true
}

// List returns snapshots of every job in submission order.
func (s *Server) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, snapshot(s.jobs[id]))
	}
	return out
}

// Wait blocks until the job finishes or the timeout passes, returning
// the latest snapshot and whether it is final.
func (s *Server) Wait(id int64, timeout time.Duration) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, false
	}
	done := s.doneCh[id]
	s.mu.Unlock()
	if done != nil {
		select {
		case <-done:
		case <-time.After(timeout):
		case <-s.closed:
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot(j)
	return snap, snap.State == StateDone || snap.State == StateFailed
}

// Subscribe registers a completion stream: every finished job's
// snapshot is delivered on the channel (buffered; a wedged consumer
// misses snapshots rather than blocking the executor). cancel
// unregisters and closes it.
func (s *Server) Subscribe() (<-chan Job, func()) {
	c := make(chan Job, 64)
	s.mu.Lock()
	s.nextSub++
	id := s.nextSub
	s.subs[id] = c
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if cc, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(cc)
		}
		s.mu.Unlock()
	}
	return c, cancel
}

// snapshot deep-copies a job record. Callers hold s.mu.
func snapshot(j *Job) Job {
	out := *j
	if j.Local != nil {
		l := *j.Local
		out.Local = &l
	}
	out.Workers = append([]Outcome(nil), j.Workers...)
	return out
}

// executor drains the queue, one job at a time per worker.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case job := <-s.queue:
			atomic.AddInt64(&s.depth, -1)
			s.runJob(job)
		}
	}
}

// runJob executes one job to completion, with recovery under net.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	job.State = StateRunning
	job.Started = time.Now()
	s.mu.Unlock()

	env := s.opts.Env
	var local Outcome
	var workers []Outcome
	var jobErr error
	job.Spec.PrepareKill(env)

	if env.Net != nil && env.Net.World() > 1 {
		specJSON, err := json.Marshal(job.Spec)
		if err != nil {
			jobErr = fmt.Errorf("encode spec: %w", err)
		} else {
			// The announce rides inside the retry closure: after a rank
			// death and Rejoin, the respawned worker's follower starts
			// with an empty job history and needs the spec again, while
			// survivors drop the duplicate by sequence number.
			errs := charm.RunWithRecovery(env.Net, s.opts.Attempts, func() []error {
				env.Net.BroadcastJob(job.ID, specJSON)
				var raw []error
				local, raw = Execute(env, job.Spec)
				return raw
			})
			if len(errs) > 0 {
				local.OK = false
				local.Errors = errStrings(errs)
			}
			workers, jobErr = s.collectReports(job.ID)
		}
	} else {
		local, _ = Execute(env, job.Spec)
	}

	s.finishJob(job, local, workers, jobErr)
}

// collectReports waits for one FJobDone per worker rank for this job
// sequence, bounded by ReportWait. Reports for other sequences are
// stale traffic from aborted attempts and are dropped.
func (s *Server) collectReports(seq int64) ([]Outcome, error) {
	node := s.opts.Env.Net
	want := node.World() - 1
	got := make(map[int]Outcome, want)
	deadline := time.NewTimer(s.opts.ReportWait)
	defer deadline.Stop()
	frames := node.JobFrames()
	for len(got) < want {
		select {
		case jf := <-frames:
			if !jf.Done || jf.Seq != seq {
				continue
			}
			var o Outcome
			if err := json.Unmarshal(jf.Payload, &o); err != nil {
				o = Outcome{Rank: jf.Rank, OK: false,
					Errors: []string{fmt.Sprintf("undecodable report: %v", err)}}
			}
			o.Rank = jf.Rank
			got[jf.Rank] = o
		case <-deadline.C:
			missing := make([]int, 0, want)
			for r := 1; r < node.World(); r++ {
				if _, ok := got[r]; !ok {
					missing = append(missing, r)
				}
			}
			return flattenReports(got), fmt.Errorf(
				"no job report from ranks %v within %v", missing, s.opts.ReportWait)
		case <-s.closed:
			return flattenReports(got), fmt.Errorf("server closed while collecting job reports")
		}
	}
	return flattenReports(got), nil
}

func flattenReports(got map[int]Outcome) []Outcome {
	out := make([]Outcome, 0, len(got))
	for _, o := range got {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// finishJob records the result, rolls the counters and notifies
// waiters and subscribers.
func (s *Server) finishJob(job *Job, local Outcome, workers []Outcome, jobErr error) {
	ok := local.OK && jobErr == nil
	for _, w := range workers {
		if !w.OK {
			ok = false
		}
	}

	s.mu.Lock()
	job.Local = &local
	job.Workers = workers
	job.Finished = time.Now()
	if jobErr != nil {
		job.Error = jobErr.Error()
	}
	if ok {
		job.State = StateDone
	} else {
		job.State = StateFailed
	}
	for name, v := range local.Counters {
		s.cum[name] += v
	}
	for _, w := range workers {
		for name, v := range w.Counters {
			s.cum[name] += v
		}
	}
	ls := s.lat[job.Spec.Kind]
	if ls == nil {
		ls = &latStats{}
		s.lat[job.Spec.Kind] = ls
	}
	ls.observe(float64(job.Finished.Sub(job.Started))/float64(time.Millisecond), !ok)
	snap := snapshot(job)
	done := s.doneCh[job.ID]
	delete(s.doneCh, job.ID)
	subs := make([]chan Job, 0, len(s.subs))
	for _, c := range s.subs {
		subs = append(subs, c)
	}
	s.mu.Unlock()

	if ok {
		atomic.AddInt64(&s.jobsDone, 1)
	} else {
		atomic.AddInt64(&s.jobsFail, 1)
	}
	if done != nil {
		close(done)
	}
	for _, c := range subs {
		select {
		case c <- snap:
		default: // wedged subscriber loses this snapshot
		}
	}
}
