package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/charm"
	"repro/internal/netmodel"
)

func realEnv() Env {
	return Env{Backend: charm.RealBackend, Platform: netmodel.AbeIB}
}

// submitWait submits one spec and blocks until the job is final.
func submitWait(t *testing.T, srv *Server, spec Spec, timeout time.Duration) Job {
	t.Helper()
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("submit %+v: %v", spec, err)
	}
	final, done := srv.Wait(job.ID, timeout)
	if !done {
		t.Fatalf("job %d (%s) not final after %v: state %s", job.ID, spec.Kind, timeout, final.State)
	}
	return final
}

// logicalCounters are the deterministic per-run counters: they count
// application events (puts, messages, reductions), not allocator or GC
// behaviour, so identical jobs must report identical values — and any
// cross-job bleed through a shared counter set would break equality.
var logicalCounters = []string{
	"ckd.puts", "ckd.handles", "ckd.bytes",
	"charm.msgs", "charm.bytes", "charm.reductions",
}

func requireSameLogicalCounters(t *testing.T, jobs []Job) {
	t.Helper()
	base := jobs[0].Local.Counters
	for _, j := range jobs[1:] {
		for _, name := range logicalCounters {
			if j.Local.Counters[name] != base[name] {
				t.Errorf("job %d counter %s = %d, job %d has %d (cross-job bleed?)",
					j.ID, name, j.Local.Counters[name], jobs[0].ID, base[name])
			}
		}
	}
}

// requirePoolBalance polls the Default pool until the delta since
// before the jobs balances: every Get either returned to the pool or
// was deliberately dropped. Puts can trail job completion briefly.
// Pool traffic only exists under the net backend (frame I/O; the real
// backend's hot paths are zero-copy), so only net tests call this.
func requirePoolBalance(t *testing.T, before bufpool.Stats) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := bufpool.Default.Stats()
		gets := now.Gets - before.Gets
		puts := now.Puts - before.Puts
		dropped := now.Dropped - before.Dropped
		if gets == puts+dropped {
			if gets == 0 {
				t.Errorf("pool saw no traffic during the jobs (gets delta 0)")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool unbalanced after jobs: gets +%d, puts +%d, dropped +%d (leak of %d)",
				gets, puts, dropped, gets-puts-dropped)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSequentialJobsOneWarmWorld runs a stream of jobs of every kind
// against one warmed real-backend server: all complete, and repeated
// identical jobs are bit-identical with identical logical counters
// (per-job isolation under reuse).
func TestSequentialJobsOneWarmWorld(t *testing.T) {
	srv, err := New(Options{Env: realEnv(), QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}

	stencilSpec := Spec{Kind: "stencil", Validate: true}
	var stencils []Job
	for i := 0; i < 3; i++ {
		stencils = append(stencils, submitWait(t, srv, stencilSpec, time.Minute))
	}
	others := []Spec{
		{Kind: "fem", Validate: true},
		{Kind: "matmul", Validate: true},
		{Kind: "pingpong"},
	}
	var all []Job
	all = append(all, stencils...)
	for _, spec := range others {
		all = append(all, submitWait(t, srv, spec, time.Minute))
	}
	for _, j := range all {
		if j.State != StateDone {
			t.Fatalf("job %d (%s) state %s: local %+v error %q", j.ID, j.Spec.Kind, j.State, j.Local, j.Error)
		}
	}

	// Reuse isolation: the same spec on the warmed world must reproduce
	// the run exactly, checksum and logical counters alike.
	for _, j := range stencils[1:] {
		if j.Local.Checksum != stencils[0].Local.Checksum {
			t.Errorf("repeated stencil job %d checksum %s, first run %s",
				j.ID, j.Local.Checksum, stencils[0].Local.Checksum)
		}
	}
	requireSameLogicalCounters(t, stencils)
	srv.Close()
}

// TestConcurrentJobsNoCounterBleed runs identical jobs through
// concurrent executors on the shared warmed pools: every job must
// report the same checksum and the same logical counters — a shared
// or leaking per-run counter set would show up as divergence.
func TestConcurrentJobsNoCounterBleed(t *testing.T) {
	srv, err := New(Options{Env: realEnv(), QueueDepth: 32, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	jobs := make([]Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i] = submitWait(t, srv, Spec{Kind: "stencil", Validate: true}, time.Minute)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, j := range jobs {
		if j.State != StateDone {
			t.Fatalf("job %d state %s: local %+v", j.ID, j.State, j.Local)
		}
		if j.Local.Checksum != jobs[0].Local.Checksum {
			t.Errorf("job %d checksum %s, job %d has %s",
				j.ID, j.Local.Checksum, jobs[0].ID, jobs[0].Local.Checksum)
		}
	}
	requireSameLogicalCounters(t, jobs)
	srv.Close()
}

// TestAdmissionControl exercises the typed rejections: bad specs are
// ErrBadSpec, and submissions past the bounded queue are ErrOverloaded
// while the executor is busy.
func TestAdmissionControl(t *testing.T) {
	srv, err := New(Options{Env: realEnv(), QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var bad *ErrBadSpec
	if _, err := srv.Submit(Spec{Kind: "nope"}); !errors.As(err, &bad) {
		t.Fatalf("unknown kind: got %v, want ErrBadSpec", err)
	}
	if _, err := srv.Submit(Spec{Kind: "pingpong", Validate: true}); !errors.As(err, &bad) {
		t.Fatalf("pingpong validate: got %v, want ErrBadSpec", err)
	}
	if _, err := srv.Submit(Spec{Kind: "stencil", Kill: "1@2"}); !errors.As(err, &bad) {
		t.Fatalf("kill on real backend: got %v, want ErrBadSpec", err)
	}

	// Occupy the executor with a long job, then flood the depth-1
	// queue: at most one of the quick submissions can be queued, so at
	// least one must bounce with the typed overload rejection.
	long, err := srv.Submit(Spec{Kind: "pingpong", Iters: 50000})
	if err != nil {
		t.Fatalf("long job: %v", err)
	}
	overloads := 0
	var accepted []Job
	for i := 0; i < 3; i++ {
		job, err := srv.Submit(Spec{Kind: "pingpong", Iters: 1})
		var over *ErrOverloaded
		switch {
		case err == nil:
			accepted = append(accepted, job)
		case errors.As(err, &over):
			overloads++
		default:
			t.Fatalf("submit %d: got %v, want nil or ErrOverloaded", i, err)
		}
	}
	if overloads == 0 {
		t.Error("depth-1 queue accepted every submission while the executor was busy")
	}
	if j, done := srv.Wait(long.ID, time.Minute); !done || j.State != StateDone {
		t.Fatalf("long job: done=%v state %s", done, j.State)
	}
	for _, a := range accepted {
		if j, done := srv.Wait(a.ID, time.Minute); !done || j.State != StateDone {
			t.Fatalf("queued job %d: done=%v state %s", a.ID, done, j.State)
		}
	}
}

// TestHTTPAPI drives the HTTP surface end to end against a live
// real-backend server: submission status codes, long-poll wait,
// listing, health and metrics.
func TestHTTPAPI(t *testing.T) {
	srv, err := New(Options{Env: realEnv(), QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		var out [4096]byte
		for {
			n, err := resp.Body.Read(out[:])
			buf.Write(out[:n])
			if err != nil {
				break
			}
		}
		return resp, []byte(buf.String())
	}

	if resp, _ := post(`{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"kind":"stencil","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"kind":"unregistered"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: HTTP %d, want 400", resp.StatusCode)
	}

	resp, body := post(`{"kind":"stencil","validate":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("good spec: HTTP %d (%s), want 202", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil || job.ID == 0 {
		t.Fatalf("submit response %q: %v", body, err)
	}

	wr, err := http.Get(fmt.Sprintf("%s/jobs/%d/wait?timeout=30s", ts.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	var final Job
	if err := json.NewDecoder(wr.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	wr.Body.Close()
	if wr.StatusCode != http.StatusOK || final.State != StateDone {
		t.Fatalf("wait: HTTP %d state %s, want 200 done", wr.StatusCode, final.State)
	}
	if final.Local == nil || final.Local.Checksum == "" {
		t.Fatalf("validate job finished without a checksum: %+v", final.Local)
	}

	if resp, err := http.Get(ts.URL + "/jobs/9999/wait"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("wait on unknown job: %v HTTP %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Job
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list) == 0 {
		t.Fatal("job list is empty after a submission")
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["ok"] != true || health["backend"] != "real" {
		t.Fatalf("healthz: %+v", health)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf strings.Builder
	var out [65536]byte
	for {
		n, err := mr.Body.Read(out[:])
		mbuf.Write(out[:n])
		if err != nil {
			break
		}
	}
	mr.Body.Close()
	metrics := mbuf.String()
	for _, want := range []string{
		"serve.admitted", "serve.rejected.badspec", "serve.queue.depth",
		"serve.job.stencil.count 1", "serve.job.stencil.latency_ms.le_inf",
		"pool.live.gets",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLBJobSurfacesCounters runs a skewed stencil job with balancing on
// and checks the lb.* counters ride the existing plumbing end to end:
// into the job's Outcome, and from there into the daemon's cumulative
// /metrics report.
func TestLBJobSurfacesCounters(t *testing.T) {
	srv, err := New(Options{Env: realEnv(), QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	job := submitWait(t, srv, Spec{
		Kind: "stencil", Validate: true,
		Iters: 4, Warmup: 1,
		// The spin must dominate per-dispatch overhead even under -race,
		// or the wall-clock plan may move nothing.
		Skew: 100, LBEvery: 2,
	}, time.Minute)
	if job.State != StateDone {
		t.Fatalf("lb job failed: %+v", job)
	}
	if job.Local.Counters["lb.rounds"] == 0 {
		t.Fatal("no balancing rounds in the job's counters")
	}
	if job.Local.Counters["lb.migrations"] == 0 {
		t.Fatal("skewed lb job migrated nothing")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf strings.Builder
	var out [65536]byte
	for {
		n, err := mr.Body.Read(out[:])
		mbuf.Write(out[:n])
		if err != nil {
			break
		}
	}
	mr.Body.Close()
	metrics := mbuf.String()
	for _, want := range []string{"lb.rounds", "lb.migrations", "lb.spread_before_permille", "lb.rehomed_recv_handles"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The lb fields are stencil-only; every other kind must refuse them.
	for _, k := range []string{"pingpong", "matmul", "fem"} {
		if _, err := srv.Submit(Spec{Kind: k, LBEvery: 2}); err == nil {
			t.Errorf("%s accepted lb_every", k)
		}
	}
}
