package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/charm"
)

// shutdownSeq is the control announcement that ends the follower loop:
// rank 0 broadcasts it when the daemon exits.
const shutdownSeq = -1

// Follow is a worker rank's serving loop: execute every job rank 0
// announces, with the same recovery budget rank 0 uses, and report the
// outcome back. It returns nil on an orderly shutdown announcement.
//
// Jobs are deduplicated by sequence number: after a rank death, rank
// 0's retry closure re-announces the in-flight job so the respawned
// worker (whose history is empty) picks it up, while survivors — whose
// own recovery loop is already rerunning it — drop the duplicate.
func Follow(env Env, attempts int) error {
	node := env.Net
	if node == nil || !node.IsWorker() {
		return fmt.Errorf("serve: Follow runs on net-backend worker ranks")
	}
	if attempts <= 0 {
		attempts = charm.DefaultRecoveryAttempts
	}
	var last int64
	for jf := range node.JobFrames() {
		if jf.Done {
			continue // worker-to-coordinator traffic; not ours
		}
		if jf.Seq == shutdownSeq {
			return nil
		}
		if jf.Seq <= last {
			continue // re-announcement of a job this rank already ran
		}
		last = jf.Seq

		var spec Spec
		var out Outcome
		if err := json.Unmarshal(jf.Payload, &spec); err != nil {
			out = Outcome{Rank: node.Rank(), OK: false,
				Errors: []string{fmt.Sprintf("undecodable job spec: %v", err)}}
		} else {
			spec.PrepareKill(env)
			errs := charm.RunWithRecovery(node, attempts, func() []error {
				var raw []error
				out, raw = Execute(env, spec)
				return raw
			})
			if len(errs) > 0 {
				out.OK = false
				out.Errors = errStrings(errs)
			}
		}
		report, err := json.Marshal(out)
		if err != nil {
			report = []byte(fmt.Sprintf(`{"rank":%d,"ok":false,"errors":["encode report: %v"]}`,
				node.Rank(), err))
		}
		node.SendJobDone(jf.Seq, report)
	}
	return fmt.Errorf("serve: job channel drained without a shutdown announcement")
}

// AnnounceShutdown tells every follower to exit its serving loop. Rank
// 0 calls it before tearing the mesh down.
func AnnounceShutdown(env Env) {
	if env.Net != nil && env.Net.Rank() == 0 {
		env.Net.BroadcastJob(shutdownSeq, nil)
	}
}
