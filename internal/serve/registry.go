package serve

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/apps/fem"
	"repro/internal/apps/matmul"
	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/lb"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// Env is the warmed execution environment jobs run against: the backend
// the daemon booted, its netrt node (nil under real), and the modelled
// platform used for CPU-cost charging.
type Env struct {
	Backend  charm.Backend
	Net      *netrt.Node
	Platform *netmodel.Platform
	// KillVia overrides how a chaos-kill victim dies; nil uses the
	// node itself (SIGKILL of the self-spawned child process).
	// In-process recovery tests substitute a closure that hard-kills
	// the victim's Node.
	KillVia chaos.Killer
}

// world returns the rank count (1 under the real backend).
func (e Env) world() int {
	if e.Net == nil {
		return 1
	}
	return e.Net.World()
}

// kind is one registered workload: parameter normalization (applied at
// admission on rank 0, so the broadcast spec is canonical and every
// rank receives identical, pre-validated parameters) and the run
// function. run returns the wire-ready Outcome plus the raw typed
// errors — the recovery loop needs the types (netrt.Recoverable) that
// the Outcome's strings have shed.
type kind struct {
	normalize func(env Env, s *Spec) error
	run       func(env Env, s Spec) (Outcome, []error)
}

// Parameter ceilings. The daemon is a long-lived service; a single
// oversized request must not be able to wedge or exhaust it.
const (
	maxIters  = 100000
	maxSize   = 16 << 20
	maxCells  = 1 << 22
	maxEdge   = 2048
	maxPEs    = 1024
	maxKillAt = 10000
)

var kinds = map[string]kind{
	"pingpong": {normalize: normalizePingpong, run: runPingpong},
	"stencil":  {normalize: normalizeStencil, run: runStencil},
	"matmul":   {normalize: normalizeMatmul, run: runMatmul},
	"fem":      {normalize: normalizeFem, run: runFem},
}

// Kinds lists the registered job kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Normalize validates a spec against the registry and fills defaults in
// place, producing the canonical form every rank executes. It is the
// admission-control gate: errors here are client errors (HTTP 400),
// never daemon failures.
func Normalize(env Env, s *Spec) error {
	k, ok := kinds[s.Kind]
	if !ok {
		return fmt.Errorf("unknown kind %q (registered: %v)", s.Kind, Kinds())
	}
	switch s.Mode {
	case "":
		s.Mode = "ckd"
	case "msg", "ckd":
	default:
		return fmt.Errorf("unknown mode %q (msg | ckd)", s.Mode)
	}
	if s.Iters < 0 || s.Iters > maxIters || s.Warmup < 0 || s.Warmup > maxIters {
		return fmt.Errorf("iters/warmup out of range [0, %d]", maxIters)
	}
	if s.PEs < 0 || s.PEs > maxPEs {
		return fmt.Errorf("pes out of range [0, %d]", maxPEs)
	}
	if s.Kill != "" {
		if env.Backend != charm.NetBackend {
			return fmt.Errorf("kill needs the net backend (daemon runs %v)", env.Backend)
		}
		k, err := chaos.ParseKill(s.Kill)
		if err != nil {
			return err
		}
		if k.Rank <= 0 || k.Rank >= env.world() {
			return fmt.Errorf("kill rank %d out of worker range [1, %d)", k.Rank, env.world())
		}
		if k.Step > maxKillAt {
			return fmt.Errorf("kill step %d out of range [1, %d]", k.Step, maxKillAt)
		}
	}
	return k.normalize(env, s)
}

// Execute runs a normalized spec against the warmed environment. It
// never panics: a job's failure (including a malformed-parameter panic
// deep in an app) lands in the Outcome, not in the daemon. Under net it
// is the single-attempt body; the caller owns the recovery loop and
// uses the raw errors to decide recoverability.
func Execute(env Env, s Spec) (out Outcome, raw []error) {
	start := time.Now()
	rank := 0
	if env.Net != nil {
		rank = env.Net.Rank()
	}
	out = Outcome{Rank: rank}
	if s.chaosKill == nil && s.Kill != "" {
		// One-shot callers skip PrepareKill; parsing here only affects
		// this attempt's value copy.
		s.PrepareKill(env)
	}
	defer func() {
		out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		if r := recover(); r != nil {
			out.OK = false
			err := fmt.Errorf("job panic: %v", r)
			out.Errors = append(out.Errors, err.Error())
			raw = append(raw, err)
		}
	}()
	k, ok := kinds[s.Kind]
	if !ok {
		err := fmt.Errorf("unknown kind %q", s.Kind)
		out.Errors = []string{err.Error()}
		return out, []error{err}
	}
	out, raw = k.run(env, s)
	out.Rank = rank
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, raw
}

func errStrings(errs []error) []string {
	if len(errs) == 0 {
		return nil
	}
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	return out
}

func parseKill(s string) *chaos.Kill {
	if s == "" {
		return nil
	}
	k, err := chaos.ParseKill(s)
	if err != nil {
		return nil // normalized specs cannot reach here with a bad value
	}
	return k
}

// PrepareKill pins the spec's chaos trigger for the whole job. The
// owner of a recovery loop must call it before its first Execute so
// every attempt shares one Kill object — Fire's one-shot guard is per
// object, and a fresh Kill per attempt would re-kill the respawned
// worker on every retry until the recovery budget ran out.
func (s *Spec) PrepareKill(env Env) {
	s.chaosKill = parseKill(s.Kill)
	if s.chaosKill != nil {
		s.chaosKill.Via = env.KillVia
	}
}

// --- pingpong ---

func normalizePingpong(env Env, s *Spec) error {
	if s.Size == 0 {
		s.Size = 4096
	}
	if s.Size < 0 || s.Size > maxSize {
		return fmt.Errorf("size out of range [1, %d]", maxSize)
	}
	if s.Iters == 0 {
		s.Iters = 100
	}
	if s.Validate {
		return fmt.Errorf("pingpong has no validate oracle (its check is completing the round trips)")
	}
	if s.NX != 0 || s.NY != 0 || s.NZ != 0 || s.N != 0 || s.Virtualization != 0 || s.PEs != 0 || s.LBEvery != 0 || s.LBStrategy != "" || s.Skew != 0 {
		return fmt.Errorf("pingpong takes size/iters/mode only")
	}
	return nil
}

func runPingpong(env Env, s Spec) (Outcome, []error) {
	mode := pingpong.CkDirect
	if s.Mode == "msg" {
		mode = pingpong.CharmMsg
	}
	res := pingpong.Run(pingpong.Config{
		Platform: env.Platform,
		Mode:     mode,
		Size:     s.Size,
		Iters:    s.Iters,
		Backend:  env.Backend,
		Net:      env.Net,
		Kill:     s.chaosKill,
	})
	return Outcome{
		OK:       len(res.Errors) == 0,
		Errors:   errStrings(res.Errors),
		Metric:   res.RTTMicros(),
		Counters: res.Counters,
	}, res.Errors
}

// --- stencil ---

func normalizeStencil(env Env, s *Spec) error {
	if s.PEs == 0 {
		s.PEs = env.world() * 2
	}
	if s.NX == 0 && s.NY == 0 && s.NZ == 0 {
		s.NX, s.NY, s.NZ = 16, 16, 8
	}
	if s.NX <= 0 || s.NY <= 0 || s.NZ <= 0 || s.NX*s.NY*s.NZ > maxCells {
		return fmt.Errorf("stencil domain %dx%dx%d out of range (max %d cells)", s.NX, s.NY, s.NZ, maxCells)
	}
	if s.Virtualization == 0 {
		s.Virtualization = 2
	}
	if s.Virtualization < 0 || s.Virtualization > 64 {
		return fmt.Errorf("vr out of range [1, 64]")
	}
	if s.Iters == 0 {
		s.Iters = 3
	}
	if s.Size != 0 || s.N != 0 {
		return fmt.Errorf("stencil takes pes/nx/ny/nz/vr/iters/warmup/validate/mode/lb_*/skew only")
	}
	if s.LBEvery < 0 || s.LBEvery > maxIters {
		return fmt.Errorf("lb_every out of range [0, %d]", maxIters)
	}
	if s.LBEvery > 0 && s.LBStrategy == "" {
		s.LBStrategy = "greedy"
	}
	strat, err := lb.ParseStrategy(s.LBStrategy)
	if err != nil {
		return err
	}
	if s.LBEvery > 0 && strat == nil {
		return fmt.Errorf("lb_every needs a strategy (have: greedy)")
	}
	if s.Skew < 0 || s.Skew > 1e6 {
		return fmt.Errorf("skew out of range [0, 1e6]")
	}
	return nil
}

func runStencil(env Env, s Spec) (Outcome, []error) {
	mode := stencil.Ckd
	if s.Mode == "msg" {
		mode = stencil.Msg
	}
	res := stencil.Run(stencil.Config{
		Platform: env.Platform,
		Mode:     mode,
		PEs:      s.PEs, Virtualization: s.Virtualization,
		NX: s.NX, NY: s.NY, NZ: s.NZ,
		Iters: s.Iters, Warmup: s.Warmup,
		Validate: s.Validate,
		Backend:  env.Backend,
		Net:      env.Net,
		Kill:     s.chaosKill,
		LBEvery:  s.LBEvery, LBStrategy: s.LBStrategy,
		Skew: s.Skew,
	})
	out := Outcome{
		OK:       len(res.Errors) == 0,
		Errors:   errStrings(res.Errors),
		Metric:   res.IterTime.Micros(),
		Counters: res.Counters,
	}
	if s.Validate && out.OK {
		out.Checksum = checksumF64(res.Field)
	}
	return out, res.Errors
}

// --- matmul ---

func normalizeMatmul(env Env, s *Spec) error {
	if s.PEs == 0 {
		s.PEs = 4
	}
	if s.N == 0 {
		s.N = 32
	}
	if s.N < 0 || s.N > maxEdge {
		return fmt.Errorf("n out of range [1, %d]", maxEdge)
	}
	if s.Iters == 0 {
		s.Iters = 2
	}
	// Mirror matmul.Run's geometry requirements so an incompatible
	// request is a 400, not a failed job: N must divide evenly by the
	// near-cubic grid chosen for PEs, including the shard subdivisions.
	g := [3]int{1, 1, 1}
	for i := 0; g[0]*g[1]*g[2] < s.PEs; i++ {
		g[i%3] *= 2
	}
	for d := 0; d < 3; d++ {
		if s.N%g[d] != 0 || s.N/g[d] < 1 {
			return fmt.Errorf("n=%d not divisible by the PE grid %v (try a power of two)", s.N, g)
		}
	}
	if (s.N/g[0])%g[1] != 0 || (s.N/g[2])%g[0] != 0 || (s.N/g[0])%g[2] != 0 {
		return fmt.Errorf("n=%d incompatible with the PE grid %v shard split (try a power of two)", s.N, g)
	}
	if s.Size != 0 || s.NX != 0 || s.NY != 0 || s.NZ != 0 || s.Virtualization != 0 || s.LBEvery != 0 || s.LBStrategy != "" || s.Skew != 0 {
		return fmt.Errorf("matmul takes pes/n/iters/warmup/validate/mode only")
	}
	return nil
}

func runMatmul(env Env, s Spec) (Outcome, []error) {
	mode := matmul.Ckd
	if s.Mode == "msg" {
		mode = matmul.Msg
	}
	res := matmul.Run(matmul.Config{
		Platform: env.Platform,
		Mode:     mode,
		PEs:      s.PEs,
		N:        s.N,
		Iters:    s.Iters, Warmup: s.Warmup,
		Validate: s.Validate,
		Backend:  env.Backend,
		Net:      env.Net,
		Kill:     s.chaosKill,
	})
	out := Outcome{
		OK:       len(res.Errors) == 0,
		Errors:   errStrings(res.Errors),
		Metric:   res.IterTime.Micros(),
		Counters: res.Counters,
	}
	if s.Validate && out.OK {
		out.Checksum = checksumF64(res.C)
	}
	return out, res.Errors
}

// --- fem ---

func normalizeFem(env Env, s *Spec) error {
	if s.PEs == 0 {
		s.PEs = env.world() * 2
	}
	if s.NX == 0 && s.NY == 0 {
		s.NX, s.NY = 16, 16
	}
	if s.NX <= 0 || s.NY <= 0 || s.NZ != 0 || s.NX*s.NY > maxCells {
		return fmt.Errorf("fem quad grid %dx%d out of range (2-D; max %d quads)", s.NX, s.NY, maxCells)
	}
	if s.Virtualization == 0 {
		s.Virtualization = 2
	}
	if s.Virtualization < 0 || s.Virtualization > 64 {
		return fmt.Errorf("vr out of range [1, 64]")
	}
	if s.Iters == 0 {
		s.Iters = 3
	}
	if s.Size != 0 || s.N != 0 || s.LBEvery != 0 || s.LBStrategy != "" || s.Skew != 0 {
		return fmt.Errorf("fem takes pes/nx/ny/vr/iters/warmup/validate/mode only")
	}
	return nil
}

func runFem(env Env, s Spec) (Outcome, []error) {
	mode := fem.Ckd
	if s.Mode == "msg" {
		mode = fem.Msg
	}
	res := fem.Run(fem.Config{
		Platform: env.Platform,
		Mode:     mode,
		PEs:      s.PEs, Virtualization: s.Virtualization,
		NX: s.NX, NY: s.NY,
		Iters: s.Iters, Warmup: s.Warmup,
		Validate: s.Validate,
		Backend:  env.Backend,
		Net:      env.Net,
		Kill:     s.chaosKill,
	})
	out := Outcome{
		OK:       len(res.Errors) == 0,
		Errors:   errStrings(res.Errors),
		Metric:   res.IterTime.Micros(),
		Counters: res.Counters,
	}
	if s.Validate && out.OK {
		if !res.SharedConsistent {
			out.OK = false
			out.Errors = append(out.Errors, "fem: hosted parts disagree on shared vertices")
			return out, []error{fmt.Errorf("fem: hosted parts disagree on shared vertices")}
		}
		out.Checksum = checksumF64(res.Field)
	}
	return out, res.Errors
}
