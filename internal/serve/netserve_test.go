package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/chaos"
	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/netrt"
)

// checksums flattens a finished job's per-rank checksums for equality
// comparison across runs.
func checksums(j Job) map[int]string {
	out := map[int]string{}
	if j.Local != nil {
		out[j.Local.Rank] = j.Local.Checksum
	}
	for _, w := range j.Workers {
		out[w.Rank] = w.Checksum
	}
	return out
}

func sameChecksums(a, b map[int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for r, c := range a {
		if b[r] != c {
			return false
		}
	}
	return true
}

// TestNetServeJobsAndKillRecovery is the daemon's tentpole scenario in
// process: a 3-rank serving mesh runs a stream of jobs, loses a worker
// rank to the kill -9 chaos tier mid-job, recovers by respawning the
// rank and rerunning the job, and keeps serving — with every validate
// checksum bit-identical before, during and after the fault.
func TestNetServeJobsAndKillRecovery(t *testing.T) {
	const world = 3

	var (
		mu    sync.Mutex
		nodes []*netrt.Node
	)
	node := func(r int) *netrt.Node { mu.Lock(); defer mu.Unlock(); return nodes[r] }
	setNode := func(r int, n *netrt.Node) { mu.Lock(); nodes[r] = n; mu.Unlock() }

	killer := chaos.KillerFunc(func(r int) error {
		node(r).Die()
		return nil
	})
	env := func(n *netrt.Node) Env {
		return Env{Backend: charm.NetBackend, Net: n, Platform: netmodel.AbeIB, KillVia: killer}
	}

	// followExited counts orderly follower exits; the killed rank's
	// first incarnation never exits (its node is dead), so at shutdown
	// we expect exactly the two live followers.
	followExited := make(chan int, world+1)
	follow := func(rank int, n *netrt.Node) {
		if err := Follow(env(n), charm.DefaultRecoveryAttempts); err == nil {
			followExited <- rank
		}
	}
	// The in-process analogue of the coordinator re-execing a dead
	// child: a fresh Node dials rank 0's retained listener and a fresh
	// follower loop serves on it.
	respawn := func(rank int) {
		n, err := netrt.Start(netrt.Config{
			Rank: rank, World: world, Coord: node(0).Addr(), Recover: true,
		})
		if err != nil {
			t.Errorf("respawn rank %d: %v", rank, err)
			return
		}
		setNode(rank, n)
		go follow(rank, n)
	}

	ns, err := netrt.StartLocalConfig(world, netrt.Config{Recover: true, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	nodes = ns
	mu.Unlock()
	defer func() {
		for r := 0; r < world; r++ {
			if n := node(r); n != nil {
				n.Close()
			}
		}
	}()
	for r := 1; r < world; r++ {
		go follow(r, ns[r])
	}

	srv, err := New(Options{Env: env(ns[0]), QueueDepth: 8, ReportWait: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	requireDone := func(j Job) Job {
		t.Helper()
		if j.State != StateDone {
			t.Fatalf("job %d (%s, kill %q) state %s: local %+v workers %+v error %q",
				j.ID, j.Spec.Kind, j.Spec.Kill, j.State, j.Local, j.Workers, j.Error)
		}
		return j
	}

	// Baseline checksums on the healthy mesh, with the buffer pool
	// accounted for: every frame buffer the job stream gets must come
	// back (or be deliberately dropped) once the jobs drain.
	poolBefore := bufpool.Default.Stats()
	baseline := requireDone(submitWait(t, srv, Spec{Kind: "stencil", Validate: true}, time.Minute))
	base := checksums(baseline)
	if len(base) != world {
		t.Fatalf("baseline reported %d ranks, want %d: %v", len(base), world, base)
	}
	requireDone(submitWait(t, srv, Spec{Kind: "fem", Validate: true}, time.Minute))
	requireDone(submitWait(t, srv, Spec{Kind: "matmul", Validate: true}, time.Minute))
	requireDone(submitWait(t, srv, Spec{Kind: "pingpong"}, time.Minute))
	requirePoolBalance(t, poolBefore)

	// Kill rank 1 mid-job: the daemon must recover (respawn + rerun)
	// and the rerun must reproduce the baseline bit for bit.
	killed := requireDone(submitWait(t, srv,
		Spec{Kind: "stencil", Validate: true, Kill: "1@2"}, 2*time.Minute))
	if got := checksums(killed); !sameChecksums(got, base) {
		t.Fatalf("post-recovery checksums %v differ from baseline %v", got, base)
	}

	// The mesh keeps serving after the fault, still bit-identical.
	after := requireDone(submitWait(t, srv, Spec{Kind: "stencil", Validate: true}, time.Minute))
	if got := checksums(after); !sameChecksums(got, base) {
		t.Fatalf("post-kill checksums %v differ from baseline %v", got, base)
	}
	requireDone(submitWait(t, srv, Spec{Kind: "fem", Validate: true}, time.Minute))

	// Orderly shutdown: both live followers (the survivor and the
	// respawned rank) exit on the announcement.
	srv.Close()
	AnnounceShutdown(env(node(0)))
	for i := 0; i < world-1; i++ {
		select {
		case <-followExited:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d followers exited after shutdown announcement", i)
		}
	}
}
