package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
)

// maxBodyBytes bounds a submission body; specs are small.
const maxBodyBytes = 1 << 16

// Handler builds the daemon's HTTP API:
//
//	POST /jobs          submit a Spec; 202 + job, 400 bad spec, 429 overloaded
//	GET  /jobs          list all jobs
//	GET  /jobs/{id}     one job's state and outcomes
//	GET  /jobs/{id}/wait?timeout=30s   long-poll for completion
//	GET  /stream        NDJSON stream of finished jobs as they complete
//	GET  /metrics       serve.* counters + pool/cumulative run counters
//	GET  /healthz       liveness + world shape
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	case http.MethodPost:
		var spec Spec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: "bad_spec"})
			return
		}
		job, err := s.Submit(spec)
		var overload *ErrOverloaded
		var bad *ErrBadSpec
		switch {
		case errors.As(err, &overload):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error(), Kind: "overloaded"})
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: "bad_spec"})
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error(), Kind: "internal"})
		default:
			writeJSON(w, http.StatusAccepted, job)
		}
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	idStr, tail, _ := strings.Cut(rest, "/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job id", Kind: "bad_request"})
		return
	}
	switch tail {
	case "":
		job, ok := s.Get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such job", Kind: "not_found"})
			return
		}
		writeJSON(w, http.StatusOK, job)
	case "wait":
		timeout := 30 * time.Second
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d <= 0 || d > 10*time.Minute {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "bad timeout", Kind: "bad_request"})
				return
			}
			timeout = d
		}
		job, final := s.Wait(id, timeout)
		if job.ID == 0 {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such job", Kind: "not_found"})
			return
		}
		if !final {
			writeJSON(w, http.StatusAccepted, job)
			return
		}
		writeJSON(w, http.StatusOK, job)
	default:
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such endpoint", Kind: "not_found"})
	}
}

// handleStream replays already-finished jobs, then streams completions
// as NDJSON until the client goes away or the server closes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported", Kind: "internal"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	c, cancel := s.Subscribe()
	defer cancel()
	// Replay after subscribing so a job finishing in between is not
	// lost; the ID guard below drops the overlap.
	var replayed int64
	for _, job := range s.List() {
		if job.State == StateDone || job.State == StateFailed {
			enc.Encode(job)
			if job.ID > replayed {
				replayed = job.ID
			}
		}
	}
	fl.Flush()
	for {
		select {
		case job, ok := <-c:
			if !ok {
				return
			}
			if job.ID <= replayed {
				continue
			}
			enc.Encode(job)
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	world, rank := 1, 0
	if n := s.opts.Env.Net; n != nil {
		world, rank = n.World(), n.Rank()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"backend": s.opts.Env.Backend.String(),
		"world":   world,
		"rank":    rank,
		"kinds":   Kinds(),
		"uptime":  time.Since(s.started).String(),
	})
}

// handleMetrics renders the counters in a flat "name value" text form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "serve.queue.depth %d\n", atomic.LoadInt64(&s.depth))
	fmt.Fprintf(&b, "serve.queue.cap %d\n", s.opts.QueueDepth)
	fmt.Fprintf(&b, "serve.admitted %d\n", atomic.LoadInt64(&s.admitted))
	fmt.Fprintf(&b, "serve.rejected.overload %d\n", atomic.LoadInt64(&s.rejected))
	fmt.Fprintf(&b, "serve.rejected.badspec %d\n", atomic.LoadInt64(&s.badSpec))
	fmt.Fprintf(&b, "serve.jobs.done %d\n", atomic.LoadInt64(&s.jobsDone))
	fmt.Fprintf(&b, "serve.jobs.failed %d\n", atomic.LoadInt64(&s.jobsFail))
	fmt.Fprintf(&b, "serve.uptime_seconds %.0f\n", time.Since(s.started).Seconds())

	s.mu.Lock()
	kindNames := make([]string, 0, len(s.lat))
	for k := range s.lat {
		kindNames = append(kindNames, k)
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		l := s.lat[k]
		fmt.Fprintf(&b, "serve.job.%s.count %d\n", k, l.count)
		fmt.Fprintf(&b, "serve.job.%s.failed %d\n", k, l.errs)
		fmt.Fprintf(&b, "serve.job.%s.latency_ms.sum %.3f\n", k, l.sumMS)
		fmt.Fprintf(&b, "serve.job.%s.latency_ms.min %.3f\n", k, l.minMS)
		fmt.Fprintf(&b, "serve.job.%s.latency_ms.max %.3f\n", k, l.maxMS)
		for i, bound := range latBounds {
			fmt.Fprintf(&b, "serve.job.%s.latency_ms.le_%g %d\n", k, bound, l.buckets[i])
		}
		fmt.Fprintf(&b, "serve.job.%s.latency_ms.le_inf %d\n", k, l.buckets[len(latBounds)])
	}
	cumNames := make([]string, 0, len(s.cum))
	for name := range s.cum {
		cumNames = append(cumNames, name)
	}
	sort.Strings(cumNames)
	for _, name := range cumNames {
		fmt.Fprintf(&b, "run.%s %d\n", name, s.cum[name])
	}
	s.mu.Unlock()

	ps := bufpool.Default.Stats()
	fmt.Fprintf(&b, "pool.live.gets %d\n", ps.Gets)
	fmt.Fprintf(&b, "pool.live.puts %d\n", ps.Puts)
	fmt.Fprintf(&b, "pool.live.misses %d\n", ps.Misses)
	fmt.Fprintf(&b, "pool.live.oversize %d\n", ps.Oversize)
	fmt.Fprintf(&b, "pool.live.dropped %d\n", ps.Dropped)
	w.Write([]byte(b.String()))
}
