package sim

import "testing"

// BenchmarkEngineThroughput measures raw event throughput: each event
// schedules its successor, so the heap stays shallow.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			e.Schedule(1, next)
		}
	}
	e.Schedule(1, next)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineWideHeap measures throughput with a wide event heap
// (stencil-like load: many concurrent pending events).
func BenchmarkEngineWideHeap(b *testing.B) {
	const width = 4096
	e := NewEngine()
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			e.Schedule(Time(1+n%7), next)
		}
	}
	for i := 0; i < width && i < b.N; i++ {
		e.Schedule(Time(i%13), next)
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineCancellation measures push+cancel pairs.
func BenchmarkEngineCancellation(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(Time(i+1), func() {})
		ev.Cancel()
	}
	b.ResetTimer()
	e.Run()
}
