package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapPropertyOrdering verifies, over random timestamp multisets, that
// popping the heap yields events sorted by (time, insertion sequence).
func TestHeapPropertyOrdering(t *testing.T) {
	prop := func(stamps []uint16) bool {
		var h eventHeap
		events := make([]*Event, len(stamps))
		for i, s := range stamps {
			ev := &Event{at: Time(s), seq: uint64(i), index: -1}
			events[i] = ev
			h.push(ev)
		}
		// Expected order: stable sort by time (stability = seq order).
		expected := make([]*Event, len(events))
		copy(expected, events)
		sort.SliceStable(expected, func(i, j int) bool {
			return expected[i].at < expected[j].at
		})
		for i := range expected {
			got := h.pop()
			if got != expected[i] {
				return false
			}
			if got.index != -1 {
				return false
			}
		}
		return len(h) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePropertyMonotoneClock verifies the clock never moves backwards
// across randomly structured event cascades.
func TestEnginePropertyMonotoneClock(t *testing.T) {
	prop := func(delays []uint8) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		i := 0
		var step func()
		step = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if i < len(delays) {
				d := Time(delays[i])
				i++
				e.Schedule(d, step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return ok && i == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapPropertyInterleavedPushPop exercises interleaved operations: the
// minimum popped at any point must be <= everything still queued.
func TestHeapPropertyInterleavedPushPop(t *testing.T) {
	prop := func(ops []int16) bool {
		var h eventHeap
		seq := uint64(0)
		for _, op := range ops {
			if op >= 0 || len(h) == 0 {
				ev := &Event{at: Time(op & 0xFF), seq: seq, index: -1}
				seq++
				h.push(ev)
			} else {
				min := h.pop()
				for _, rest := range h {
					if rest.at < min.at {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12383, "12.383us"},
		{1500000, "1.500ms"},
		{2 * Second, "2.000000s"},
		{-12383, "-12.383us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMicrosecondsConversionRoundTrips(t *testing.T) {
	if Microseconds(12.383) != 12383 {
		t.Fatalf("Microseconds(12.383) = %d", Microseconds(12.383))
	}
	if got := Microseconds(12.383).Micros(); got != 12.383 {
		t.Fatalf("round trip = %v", got)
	}
	if Nanoseconds(1.4) != 1 || Nanoseconds(1.6) != 2 {
		t.Fatal("Nanoseconds does not round to nearest")
	}
}
