package sim

import (
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.Schedule(5*Microsecond, func() { fired = e.Now() })
	e.Run()
	if fired != 5*Microsecond {
		t.Fatalf("event fired at %v, want 5us", fired)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("final clock %v, want 5us", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among equal timestamps)", i, got, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("At(past) did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNilEventFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed = %d, want 0", e.Executed())
	}
}

func TestCancelledEventStillAdvancesNothing(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, func() {})
	ev.Cancel()
	e.Schedule(20, func() {})
	e.Run()
	if e.Now() != 20 {
		t.Fatalf("final clock %v, want 20", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
	e.Resume()
	e.Run()
	if count != 10 {
		t.Fatalf("after Resume count = %d, want 10", count)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock %v, want 12 (advanced to deadline)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired %v, want 4 events", fired)
	}
}

func TestRunUntilDeadlineInPastOfQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock %v, want 100 even with empty queue", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var log []Time
		var recur func(depth int)
		recur = func(depth int) {
			log = append(log, e.Now())
			if depth < 6 {
				e.Schedule(Time(depth*3+1), func() { recur(depth + 1) })
				e.Schedule(Time(depth*2+1), func() { recur(depth + 1) })
			}
		}
		e.Schedule(1, func() { recur(0) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
