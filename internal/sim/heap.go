package sim

// eventHeap is a binary min-heap of events ordered by (time, sequence).
// The sequence tiebreak makes execution order — and therefore the entire
// simulation — deterministic for identical inputs.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	ev := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	ev.index = -1
	return ev
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
