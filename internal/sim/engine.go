package sim

import "fmt"

// EventFunc is the body of a scheduled event. It runs with the engine's
// clock set to the event's timestamp.
type EventFunc func()

// Event is a handle to a scheduled event. It can be cancelled before it
// fires. The zero value is not a valid event.
type Event struct {
	at        Time
	seq       uint64
	fn        EventFunc
	index     int // position in the heap, -1 when not queued
	cancelled bool
}

// At reports the virtual time at which the event is (or was) scheduled.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually pending.
func (ev *Event) Cancel() bool {
	if ev.cancelled || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	return true
}

// Cancelled reports whether Cancel was called before the event fired.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a deterministic discrete-event simulator. All methods must be
// called from a single goroutine (typically: from inside event functions,
// or from the top-level driver before/after Run).
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	running bool

	// Executed counts events that have fired (excluding cancelled ones).
	executed uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are queued (including cancelled events
// that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay d (relative to Now). A negative
// delay panics: causality violations are always bugs in this codebase.
func (e *Engine) Schedule(d Time, fn EventFunc) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// At queues fn to run at absolute virtual time t, which must not be in the
// past.
func (e *Engine) At(t Time, fn EventFunc) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	e.queue.push(ev)
	return ev
}

// Step fires the single next event. It reports false when the queue is
// empty or the engine has been stopped. Cancelled events are discarded
// without advancing the clock: a cancelled far-future timer (a retransmit
// timeout beaten by its ack, a watchdog disarmed by delivery) must not
// stretch the simulated run.
func (e *Engine) Step() bool {
	for {
		if e.stopped || len(e.queue) == 0 {
			return false
		}
		ev := e.queue.pop()
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event at %v behind clock %v", ev.at, e.now))
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
}

// Run fires events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to deadline (if the simulation did not already pass it) and
// returns. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop halts Run/RunUntil after the current event completes. The queue is
// left intact; Resume re-enables stepping.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }
