// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other layer of this repository: simulated
// processing elements, network fabrics, the message-driven runtime, and the
// CkDirect channel layer all advance by scheduling events on a shared
// virtual clock. The engine is strictly single-threaded; determinism is
// guaranteed by a total order on events (time, then insertion sequence).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. Durations are also expressed as Time.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Microseconds converts a floating-point microsecond quantity to Time,
// rounding to the nearest nanosecond. It is the conversion used when
// applying calibrated cost-model parameters (which are specified in µs).
func Microseconds(us float64) Time {
	return Time(math.Round(us * 1000))
}

// Nanoseconds converts a floating-point nanosecond quantity to Time,
// rounding to the nearest nanosecond.
func Nanoseconds(ns float64) Time {
	return Time(math.Round(ns))
}

// FromDuration converts a wall-clock duration to Time. Both are nanosecond
// counts; the conversion exists for the real-execution backend, where Time
// carries wall time instead of virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts t to a wall-clock duration (the inverse of
// FromDuration).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1000 }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with an adaptive unit, e.g. "12.383us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}
