// Determinism regression: the whole point of simulated fault injection is
// that a failing run can be replayed exactly. Same seed + same fault plan
// must give identical final virtual time, event count, and every trace
// counter — across repeated runs and for both transports.
package chaos_test

import (
	"testing"

	"repro/internal/apps/stencil"
	"repro/internal/chaos"
	"repro/internal/netmodel"
)

func hostileStencil(mode stencil.Mode, seed uint64) stencil.Result {
	return stencil.Run(stencil.Config{
		Platform: netmodel.AbeIB,
		Mode:     mode,
		PEs:      4, Virtualization: 2,
		NX: 10, NY: 8, NZ: 6,
		Iters: 3, Warmup: 0, Validate: true,
		Chaos: chaos.Hostile(seed, 0.02),
	})
}

func TestSameSeedSamePlanIsBitReproducible(t *testing.T) {
	for _, mode := range []stencil.Mode{stencil.Msg, stencil.Ckd} {
		a := hostileStencil(mode, 42)
		b := hostileStencil(mode, 42)
		if a.IterTime != b.IterTime {
			t.Fatalf("mode %v: replay changed iteration time (%v != %v)", mode, a.IterTime, b.IterTime)
		}
		if a.TotalEvents != b.TotalEvents {
			t.Fatalf("mode %v: replay changed event count (%d != %d)", mode, a.TotalEvents, b.TotalEvents)
		}
		if len(a.Counters) != len(b.Counters) {
			t.Fatalf("mode %v: replay changed counter set (%v != %v)", mode, a.Counters, b.Counters)
		}
		for k, v := range a.Counters {
			if b.Counters[k] != v {
				t.Fatalf("mode %v: replay changed counter %s (%d != %d)", mode, k, v, b.Counters[k])
			}
		}
	}
}

// TestDifferentSeedsDiverge guards the test above against vacuity: if a
// different seed still gives the identical schedule, the fault plane is
// not actually consuming its randomness.
func TestDifferentSeedsDiverge(t *testing.T) {
	a := hostileStencil(stencil.Ckd, 42)
	b := hostileStencil(stencil.Ckd, 43)
	if a.IterTime == b.IterTime && a.TotalEvents == b.TotalEvents {
		t.Fatal("different seeds produced an identical run — injection is vacuous")
	}
}
