package chaos

import (
	"fmt"

	"repro/internal/ckdirect"
	"repro/internal/faults"
)

// Options is the flag-level description of a scenario, shared by the
// command-line binaries (each exposes one flag per field).
type Options struct {
	// Seed drives noise placement and the fault plan (default 1).
	Seed uint64
	// Noise injects CPU-noise bursts.
	Noise bool
	// Faults is a fault-plan spec in faults.ParseSpec grammar, e.g.
	// "drop:rate=0.01" or "drop:kind=ckd.put,nth=3;delay:us=500,rate=0.1".
	Faults string
	// Reliable enables the Charm++ ack/retransmit protocol.
	Reliable bool
	// Watchdog selects the CkDirect stall watchdog mode: "off" (or empty),
	// "report", or "recover".
	Watchdog string
}

// Build assembles the Scenario the options describe, or nil when every
// ingredient is off (so quiet runs take the exact seed code path).
func (o Options) Build() (*Scenario, error) {
	s := &Scenario{Seed: o.Seed}
	if s.Seed == 0 {
		s.Seed = 1
	}
	any := false
	if o.Noise {
		s.Noise = &Noise{}
		any = true
	}
	if o.Faults != "" {
		rules, err := faults.ParseSpec(o.Faults)
		if err != nil {
			return nil, fmt.Errorf("bad -faults spec: %w", err)
		}
		s.Plan = &faults.Plan{Rules: rules}
		any = true
	}
	if o.Reliable {
		s.Reliable = true
		any = true
	}
	switch o.Watchdog {
	case "", "off":
	case "report":
		s.Watchdog = &ckdirect.Watchdog{}
		any = true
	case "recover":
		s.Watchdog = &ckdirect.Watchdog{Recover: true}
		any = true
	default:
		return nil, fmt.Errorf("bad -watchdog mode %q (want off|report|recover)", o.Watchdog)
	}
	if !any {
		return nil, nil
	}
	return s, nil
}
