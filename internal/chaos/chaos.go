// Package chaos is the reusable harness for running applications under
// adversity: deterministic CPU-noise bursts (generalizing the stencil
// chaos tests' hand-rolled injector) combined with network fault plans
// and the recovery machinery (message reliability, CkDirect watchdog).
// Every app package exposes a Chaos field on its Config; tests build a
// Scenario and assert that validate-mode results stay bit-exact.
package chaos

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/ckdirect"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Noise parameterizes CPU-noise injection: random bursts of reserved CPU
// time on random PEs across the start of the run, modelling OS jitter.
// Noise perturbs arrival orders, poll passes and compute starts — any
// hidden ordering assumption breaks bit-exact validation.
type Noise struct {
	// Bursts is the number of noise events (default 60).
	Bursts int
	// MaxBurstUS bounds each burst's CPU time (default 40µs).
	MaxBurstUS float64
	// WindowMS is the virtual-time window over which bursts are scattered
	// (default 2ms).
	WindowMS float64
}

// Scenario is one complete adversity configuration. The zero value (and
// nil) is a no-op; each field opts into one ingredient.
type Scenario struct {
	// Seed drives noise placement and, when Plan.Seed is zero, the fault
	// plan too. Same scenario + same seed ⇒ bit-identical run.
	Seed uint64
	// Noise, when set, injects CPU-noise bursts.
	Noise *Noise
	// Plan, when set, installs a fault-injection plane on the network.
	Plan *faults.Plan
	// Reliable enables the Charm++ ack/retransmit protocol so message
	// paths survive drops (zero-value config: derived RTO, 4 retries).
	Reliable bool
	// Watchdog, when set, installs the CkDirect stall watchdog (apps
	// without a CkDirect manager ignore it).
	Watchdog *ckdirect.Watchdog
}

// Apply installs the scenario on a freshly built runtime, before the
// application starts. mgr may be nil for apps not using CkDirect. Safe to
// call on a nil scenario.
func (s *Scenario) Apply(rts *charm.RTS, mgr *ckdirect.Manager) {
	if s == nil {
		return
	}
	if s.Plan != nil {
		plan := *s.Plan
		if plan.Seed == 0 {
			plan.Seed = s.Seed
		}
		rts.Net().SetInjector(faults.NewPlane(plan, rts.Recorder()))
	}
	if s.Reliable {
		rts.EnableReliability(charm.Reliability{})
	}
	if s.Watchdog != nil && mgr != nil {
		mgr.SetWatchdog(s.Watchdog)
	}
	if s.Noise != nil {
		injectNoise(rts.Engine(), rts.Machine(), s.Seed, *s.Noise)
	}
}

// injectNoise schedules the burst events. The RNG stream depends only on
// the seed and the noise parameters, so a scenario replays identically.
func injectNoise(eng *sim.Engine, mach *machine.Machine, seed uint64, n Noise) {
	if n.Bursts <= 0 {
		n.Bursts = 60
	}
	if n.MaxBurstUS <= 0 {
		n.MaxBurstUS = 40
	}
	if n.WindowMS <= 0 {
		n.WindowMS = 2
	}
	r := rng.New(seed)
	window := int(sim.Microseconds(n.WindowMS * 1000))
	burst := int(sim.Microseconds(n.MaxBurstUS))
	for i := 0; i < n.Bursts; i++ {
		pe := r.Intn(mach.NumPEs())
		at := sim.Time(r.Intn(window))
		dur := sim.Time(r.Intn(burst))
		eng.At(at, func() {
			mach.PE(pe).Reserve(dur)
		})
	}
}

// StallError names the failure mode of a faulted run that ended early
// with nothing in RTS.Errors(): transfers were lost but neither
// reliability nor a watchdog was armed to recover or even report them.
// Apps return this instead of panicking so the CLI can explain the fix.
func StallError(counters map[string]int64, progress string) error {
	return fmt.Errorf(
		"run stalled at %s with no recovery report (%d transfers dropped, %d corrupted): enable reliability and/or the watchdog to recover or diagnose",
		progress, counters[trace.CntDropped], counters[trace.CntCorrupted])
}

// NoiseOnly is the classic chaos-test scenario: jitter but a perfect
// network.
func NoiseOnly(seed uint64) *Scenario {
	return &Scenario{Seed: seed, Noise: &Noise{}}
}

// Hostile is the full-adversity scenario used by the app chaos tests:
// noise, a dropRate-lossy network on every transfer kind, message
// reliability and a recovering watchdog. Applications are expected to
// finish bit-exact under it.
func Hostile(seed uint64, dropRate float64) *Scenario {
	return &Scenario{
		Seed:  seed,
		Noise: &Noise{},
		Plan: &faults.Plan{Rules: []faults.Rule{
			func() faults.Rule { r := faults.NewRule(faults.Drop); r.Rate = dropRate; return r }(),
		}},
		Reliable: true,
		Watchdog: &ckdirect.Watchdog{Recover: true},
	}
}
