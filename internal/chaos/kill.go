package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Killer destroys a rank's process. *netrt.Node implements it
// (KillWorker SIGKILLs a self-spawned child); in-process recovery tests
// substitute a closure that hard-kills the victim's Node.
type Killer interface {
	KillWorker(rank int) error
}

// KillerFunc adapts a closure to Killer.
type KillerFunc func(rank int) error

// KillWorker implements Killer.
func (f KillerFunc) KillWorker(rank int) error { return f(rank) }

// Kill is the kill -9 chaos tier: destroy one rank's process after a
// given application step completes, exercising the checkpoint/rejoin
// recovery path end to end. The trigger fires from the root rank's
// progress observer (the reduction client, or pingpong's completion
// callback), which is the one place with a globally ordered step count.
type Kill struct {
	// Rank is the victim (must not be 0 — the coordinator's death is
	// not recoverable).
	Rank int
	// Step fires the kill after this 1-based step completes.
	Step int
	// Via overrides how the victim dies; nil uses the node itself
	// (SIGKILL of the spawned child).
	Via Killer

	fired atomic.Bool
}

// ParseKill parses the -chaos.kill flag grammar "RANK@STEP", e.g.
// "2@5" — kill rank 2 after step 5. Empty means no kill.
func ParseKill(s string) (*Kill, error) {
	if s == "" {
		return nil, nil
	}
	rankS, stepS, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("chaos: kill spec %q is not RANK@STEP", s)
	}
	rank, err := strconv.Atoi(rankS)
	if err != nil {
		return nil, fmt.Errorf("chaos: kill spec rank %q: %v", rankS, err)
	}
	step, err := strconv.Atoi(stepS)
	if err != nil {
		return nil, fmt.Errorf("chaos: kill spec step %q: %v", stepS, err)
	}
	if rank <= 0 {
		return nil, fmt.Errorf("chaos: kill rank must be a worker (got %d; rank 0 is the unrecoverable coordinator)", rank)
	}
	if step <= 0 {
		return nil, fmt.Errorf("chaos: kill step must be >= 1 (got %d)", step)
	}
	return &Kill{Rank: rank, Step: step}, nil
}

// Fire triggers the kill when step matches, at most once per process
// lifetime — after recovery the run re-reaches the step, and a kill
// that re-fired every time would livelock the recovery loop. fallback
// is used when Via is nil. Fire reports whether it killed. A nil
// receiver never fires, so call sites need no guard.
func (k *Kill) Fire(step int, fallback Killer) bool {
	if k == nil || step != k.Step || !k.fired.CompareAndSwap(false, true) {
		return false
	}
	via := k.Via
	if via == nil {
		via = fallback
	}
	if via == nil {
		return false
	}
	// The victim dying severs sockets; the caller's own run will abort
	// through the normal peer-loss path, so the error is advisory only.
	via.KillWorker(k.Rank)
	return true
}
