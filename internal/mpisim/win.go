package mpisim

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/netmodel"
)

// Win is an MPI RMA window: one exposed memory region per rank, plus the
// synchronization machinery (post-start-complete-wait and fence) the paper
// contrasts with CkDirect's synchronization-free completion (§2.3).
type Win struct {
	id    int
	world *World
	// regions[r] is rank r's exposed buffer (may be nil if a rank exposes
	// nothing).
	regions []*machine.Region

	epochs []winEpoch
	fence  *fenceState
}

// winEpoch is per-rank PSCW state.
type winEpoch struct {
	// Exposure epoch (target side).
	exposed       bool
	exposeOrigins map[int]bool // origins allowed to access
	completesGot  int          // Complete signals received
	putsExpected  int          // puts announced by Complete signals
	putsLanded    int
	waitFn        func()

	// Access epoch (origin side).
	started      bool
	startTargets map[int]bool
	putsIssued   map[int]int // per target
	putsSendDone int
	putsInFlight int
}

type fenceState struct {
	arrived int
	issued  int
	landed  int
	fns     []func()
}

// NewWin creates a window exposing regions[r] on rank r. len(regions)
// must equal the world size.
func (w *World) NewWin(regions []*machine.Region) *Win {
	if len(regions) != w.Size() {
		panic(fmt.Sprintf("mpisim: NewWin with %d regions for %d ranks", len(regions), w.Size()))
	}
	win := &Win{id: w.nextWin, world: w, regions: regions}
	w.nextWin++
	win.epochs = make([]winEpoch, w.Size())
	return win
}

// Post opens an exposure epoch on rank: the listed origins may now write
// into this rank's window region (MPI_Win_post).
func (win *Win) Post(rank int, origins []int) error {
	e := &win.epochs[rank]
	if e.exposed {
		return fmt.Errorf("mpisim: rank %d Post with exposure epoch already open", rank)
	}
	e.exposed = true
	e.exposeOrigins = make(map[int]bool, len(origins))
	for _, o := range origins {
		e.exposeOrigins[o] = true
	}
	e.completesGot = 0
	e.putsExpected = 0
	e.putsLanded = 0
	return nil
}

// Start opens an access epoch on rank toward the listed targets
// (MPI_Win_start). Real MPI blocks here until the matching Post; the
// simulation orders the control flow through Put/Complete instead.
func (win *Win) Start(rank int, targets []int) error {
	e := &win.epochs[rank]
	if e.started {
		return fmt.Errorf("mpisim: rank %d Start with access epoch already open", rank)
	}
	e.started = true
	e.startTargets = make(map[int]bool, len(targets))
	for _, t := range targets {
		e.startTargets[t] = true
	}
	e.putsIssued = make(map[int]int)
	e.putsSendDone = 0
	e.putsInFlight = 0
	return nil
}

// Put writes size bytes (optionally from src, a region on the origin)
// into the target's window region. It requires an open access epoch
// covering the target. The cost comes from the platform's MPI_Put regime
// table, whose calibration includes the PSCW synchronization overhead.
func (win *Win) Put(rank, target, size int, src *machine.Region) error {
	e := &win.epochs[rank]
	if !e.started {
		return fmt.Errorf("mpisim: rank %d Put outside an access epoch", rank)
	}
	if !e.startTargets[target] {
		return fmt.Errorf("mpisim: rank %d Put to target %d not in access group", rank, target)
	}
	e.putsIssued[target]++
	e.putsInFlight++
	cost := win.world.putT.Resolve(size)
	if win.world.rec != nil {
		win.world.rec.Incr("mpi.puts", 1)
		win.world.rec.Incr("mpi.put_bytes", int64(size))
	}
	te := &win.epochs[target]
	win.world.net.Transfer(rank, target, cost, netmodel.TransferHooks{
		Kind: netmodel.KindMPIPut,
		OnSendDone: func() {
			e.putsInFlight--
			e.putsSendDone++
		},
		OnArrive: func() {
			if src != nil && win.regions[target] != nil {
				src.CopyTo(win.regions[target])
			}
			te.putsLanded++
			win.maybeFinishWait(target)
		},
	})
	return nil
}

// Complete closes the access epoch (MPI_Win_complete): once the local
// sends have drained, each target is informed how many puts to expect.
// fn fires when the epoch is closed locally.
func (win *Win) Complete(rank int, fn func()) error {
	e := &win.epochs[rank]
	if !e.started {
		return fmt.Errorf("mpisim: rank %d Complete without Start", rank)
	}
	finish := func() {
		e.started = false
		for t := range e.startTargets {
			te := &win.epochs[t]
			te.completesGot++
			te.putsExpected += e.putsIssued[t]
			win.maybeFinishWait(t)
		}
		if fn != nil {
			fn()
		}
	}
	if e.putsInFlight == 0 {
		finish()
		return nil
	}
	// Defer until local completion of outstanding puts: poll on the event
	// queue via a completion check attached to the last send. Simpler and
	// still deterministic: check after every send-done by re-arming.
	win.world.eng.Schedule(0, func() { win.completeWhenDrained(rank, finish) })
	return nil
}

func (win *Win) completeWhenDrained(rank int, finish func()) {
	e := &win.epochs[rank]
	if e.putsInFlight == 0 {
		finish()
		return
	}
	// Re-check after the next event; sends always drain, so this
	// terminates. The re-check is free of virtual-time cost but bounded
	// by the number of in-flight sends.
	win.world.eng.Schedule(1, func() { win.completeWhenDrained(rank, finish) })
}

// Wait closes the exposure epoch (MPI_Win_wait): fn fires once every
// origin in the post group has Completed and all announced puts landed.
func (win *Win) Wait(rank int, fn func()) error {
	e := &win.epochs[rank]
	if !e.exposed {
		return fmt.Errorf("mpisim: rank %d Wait without Post", rank)
	}
	if e.waitFn != nil {
		return fmt.Errorf("mpisim: rank %d Wait already pending", rank)
	}
	e.waitFn = fn
	win.maybeFinishWait(rank)
	return nil
}

func (win *Win) maybeFinishWait(rank int) {
	e := &win.epochs[rank]
	if e.waitFn == nil || !e.exposed {
		return
	}
	if e.completesGot < len(e.exposeOrigins) || e.putsLanded < e.putsExpected {
		return
	}
	fn := e.waitFn
	e.waitFn = nil
	e.exposed = false
	fn()
}

// PutFenced writes into target's window region under fence
// synchronization: no access epoch is required, but completion is only
// guaranteed after the next fence.
func (win *Win) PutFenced(rank, target, size int, src *machine.Region) {
	f := win.ensureFence()
	f.issued++
	cost := win.world.putT.Resolve(size)
	if win.world.rec != nil {
		win.world.rec.Incr("mpi.puts", 1)
		win.world.rec.Incr("mpi.put_bytes", int64(size))
	}
	win.world.net.Transfer(rank, target, cost, netmodel.TransferHooks{
		Kind: netmodel.KindMPIPut,
		OnArrive: func() {
			if src != nil && win.regions[target] != nil {
				src.CopyTo(win.regions[target])
			}
			f.landed++
			win.maybeFinishFence(f)
		},
	})
}

func (win *Win) ensureFence() *fenceState {
	if win.fence == nil {
		win.fence = &fenceState{}
	}
	return win.fence
}

// FenceBegin registers a rank's arrival at a fence (MPI_Win_fence). When
// every rank has arrived and every fenced put issued in this epoch has
// landed, all callbacks fire (this is the collective, everyone-synchronizes
// behaviour the paper calls "overkill" for simple completion detection).
// Every rank must call FenceBegin exactly once per fence generation.
func (win *Win) FenceBegin(rank int, fn func()) {
	f := win.ensureFence()
	f.arrived++
	f.fns = append(f.fns, fn)
	win.maybeFinishFence(f)
}

func (win *Win) maybeFinishFence(f *fenceState) {
	if win.fence != f {
		return // epoch already closed
	}
	if f.arrived < win.world.Size() || f.landed < f.issued {
		return
	}
	fns := f.fns
	win.fence = nil
	for _, fn := range fns {
		if fn != nil {
			fn()
		}
	}
}
