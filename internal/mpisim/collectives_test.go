package mpisim

import (
	"math"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func TestBarrierReleasesAllRanks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		eng, w := newWorld(t, netmodel.AbeIB, n)
		released := 0
		var releaseTimes []sim.Time
		for r := 0; r < n; r++ {
			w.Barrier(r, func() {
				released++
				releaseTimes = append(releaseTimes, eng.Now())
			})
		}
		eng.Run()
		if released != n {
			t.Fatalf("n=%d: %d ranks released", n, released)
		}
	}
}

// TestBarrierWaitsForLastArrival: no rank may be released before the
// last rank enters. Rank 3 arrives late (after a long virtual delay).
func TestBarrierWaitsForLastArrival(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 4)
	var lateArrival sim.Time = 5 * sim.Millisecond
	early := false
	for r := 0; r < 3; r++ {
		w.Barrier(r, func() {
			if eng.Now() < lateArrival {
				early = true
			}
		})
	}
	eng.Schedule(lateArrival, func() {
		w.Barrier(3, nil)
	})
	eng.Run()
	if early {
		t.Fatal("a rank left the barrier before the last one entered")
	}
}

func TestBarrierSecondGeneration(t *testing.T) {
	eng, w := newWorld(t, netmodel.SurveyorBGP, 4)
	phase := 0
	for r := 0; r < 4; r++ {
		w.Barrier(r, func() { phase = 1 })
	}
	eng.Run()
	if phase != 1 {
		t.Fatal("first barrier incomplete")
	}
	for r := 0; r < 4; r++ {
		w.Barrier(r, func() { phase = 2 })
	}
	eng.Run()
	if phase != 2 {
		t.Fatal("second barrier incomplete")
	}
}

func TestBarrierDoubleEntryPanics(t *testing.T) {
	_, w := newWorld(t, netmodel.AbeIB, 2)
	w.Barrier(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double entry accepted")
		}
	}()
	w.Barrier(0, nil)
}

func TestAllreduceSumsAcrossRanks(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		eng, w := newWorld(t, netmodel.AbeIB, n)
		results := make([][]float64, n)
		for r := 0; r < n; r++ {
			r := r
			w.Allreduce(r, []float64{float64(r + 1), 1}, func(res []float64) {
				results[r] = res
			})
		}
		eng.Run()
		wantSum := float64(n*(n+1)) / 2
		for r := 0; r < n; r++ {
			if results[r] == nil {
				t.Fatalf("n=%d: rank %d never got the result", n, r)
			}
			if results[r][0] != wantSum || results[r][1] != float64(n) {
				t.Fatalf("n=%d rank %d: result %v", n, r, results[r])
			}
		}
	}
}

func TestAllreduceWidthMismatchPanics(t *testing.T) {
	_, w := newWorld(t, netmodel.AbeIB, 2)
	w.Allreduce(0, []float64{1, 2}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	w.Allreduce(1, []float64{1}, nil)
}

func TestBcastReachesEveryRank(t *testing.T) {
	eng, w := newWorld(t, netmodel.SurveyorBGP, 6)
	got := make([]bool, 6)
	var rootAt, lastAt sim.Time
	fns := make([]func(), 6)
	for r := 0; r < 6; r++ {
		r := r
		fns[r] = func() {
			got[r] = true
			if r == 0 {
				rootAt = eng.Now()
			}
			if eng.Now() > lastAt {
				lastAt = eng.Now()
			}
		}
	}
	w.Bcast(4096, fns)
	eng.Run()
	for r, ok := range got {
		if !ok {
			t.Fatalf("rank %d missed the broadcast", r)
		}
	}
	if lastAt <= rootAt {
		t.Fatal("broadcast cost nothing — tree messages missing")
	}
}

// TestBarrierLatencyLogDepth: barrier time grows roughly logarithmically
// with rank count (tree, not linear fan-in).
func TestBarrierLatencyLogDepth(t *testing.T) {
	timeFor := func(n int) sim.Time {
		eng, w := newWorld(t, netmodel.AbeIB, n)
		var done sim.Time
		for r := 0; r < n; r++ {
			w.Barrier(r, func() {
				if eng.Now() > done {
					done = eng.Now()
				}
			})
		}
		eng.Run()
		return done
	}
	t16, t128 := timeFor(16), timeFor(128)
	// log2(128)/log2(16) = 7/4; allow 3x but rule out linear (8x).
	if float64(t128) > 3*float64(t16) {
		t.Fatalf("barrier not log-depth: 16 ranks %v, 128 ranks %v", t16, t128)
	}
}

func TestCollectiveTreeShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 16, 31} {
		seen := make([]bool, n)
		var walk func(r int)
		count := 0
		walk = func(r int) {
			if seen[r] {
				t.Fatalf("n=%d: rank %d visited twice", n, r)
			}
			seen[r] = true
			count++
			for _, c := range childrenOf(r, n) {
				if parentOf(c) != r {
					t.Fatalf("n=%d: parent(%d)=%d, expected %d", n, c, parentOf(c), r)
				}
				walk(c)
			}
		}
		walk(0)
		if count != n {
			t.Fatalf("n=%d: tree covers %d ranks", n, count)
		}
	}
}

func TestAllreduceMatchesLocalSum(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 5)
	contribs := [][]float64{{0.5}, {-2}, {3.25}, {100}, {-0.75}}
	want := 0.0
	for _, c := range contribs {
		want += c[0]
	}
	var got float64 = math.NaN()
	for r := 0; r < 5; r++ {
		r := r
		fn := func(res []float64) {
			if r == 2 {
				got = res[0]
			}
		}
		w.Allreduce(r, contribs[r], fn)
	}
	eng.Run()
	if got != want {
		t.Fatalf("allreduce = %v, want %v", got, want)
	}
}
