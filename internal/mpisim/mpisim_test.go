package mpisim

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newWorld(t *testing.T, plat *netmodel.Platform, ranks int) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine()
	mach, net := plat.BuildMachine(eng, ranks)
	w := NewWorld(eng, mach, net, Config{
		Table:    plat.MPI,
		PutTable: plat.MPIPut,
		Recorder: trace.NewRecorder(),
	})
	return eng, w
}

func TestSendRecvBasic(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	var got *Msg
	w.Rank(1).Recv(0, 42, func(m *Msg) { got = m })
	w.Rank(0).Send(1, 42, &Msg{Size: 128})
	eng.Run()
	if got == nil || got.Src != 0 || got.Tag != 42 || got.Size != 128 {
		t.Fatalf("recv got %+v", got)
	}
}

func TestRecvPostedAfterArrival(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	w.Rank(0).Send(1, 7, &Msg{Size: 64})
	eng.Run()
	if w.Rank(1).PendingUnexpected() != 1 {
		t.Fatalf("unexpected queue depth %d", w.Rank(1).PendingUnexpected())
	}
	var got *Msg
	w.Rank(1).Recv(0, 7, func(m *Msg) { got = m })
	if got == nil {
		t.Fatal("late Recv did not match unexpected message")
	}
	if w.Rank(1).PendingUnexpected() != 0 {
		t.Fatal("unexpected queue not drained")
	}
}

func TestTagMatchingSelectsCorrectMessage(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	var gotA, gotB *Msg
	w.Rank(1).Recv(0, 2, func(m *Msg) { gotB = m })
	w.Rank(1).Recv(0, 1, func(m *Msg) { gotA = m })
	w.Rank(0).Send(1, 1, &Msg{Size: 10})
	w.Rank(0).Send(1, 2, &Msg{Size: 20})
	eng.Run()
	if gotA == nil || gotA.Tag != 1 || gotA.Size != 10 {
		t.Fatalf("tag 1 receive got %+v", gotA)
	}
	if gotB == nil || gotB.Tag != 2 || gotB.Size != 20 {
		t.Fatalf("tag 2 receive got %+v", gotB)
	}
}

func TestWildcardReceive(t *testing.T) {
	eng, w := newWorld(t, netmodel.SurveyorBGP, 3)
	var got []*Msg
	for i := 0; i < 2; i++ {
		w.Rank(2).Recv(AnySource, AnyTag, func(m *Msg) { got = append(got, m) })
	}
	w.Rank(0).Send(2, 5, &Msg{Size: 8})
	w.Rank(1).Send(2, 9, &Msg{Size: 8})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("wildcard matched %d messages", len(got))
	}
	srcs := map[int]bool{got[0].Src: true, got[1].Src: true}
	if !srcs[0] || !srcs[1] {
		t.Fatalf("sources %v", srcs)
	}
}

// TestMatchOrderFIFOAmongEqualTags: MPI requires matching in posted order
// for identical patterns and arrival order for unexpected messages.
func TestMatchOrderFIFO(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	var order []int
	w.Rank(1).Recv(0, 3, func(m *Msg) { order = append(order, 1) })
	w.Rank(1).Recv(0, 3, func(m *Msg) { order = append(order, 2) })
	w.Rank(0).Send(1, 3, &Msg{Size: 8})
	w.Rank(0).Send(1, 3, &Msg{Size: 8})
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("posted receives matched out of order: %v", order)
	}
}

// TestSendLatencyMatchesModel: an idle-path message takes exactly the
// regime-table one-way time.
func TestSendLatencyMatchesModel(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		for _, size := range []int{100, 5000, 100000} {
			eng, w := newWorld(t, plat, 16)
			var at sim.Time = -1
			w.Rank(8).Recv(0, 0, func(m *Msg) { at = eng.Now() })
			w.Rank(0).Send(8, 0, &Msg{Size: size})
			eng.Run()
			want := plat.MPI.Resolve(size).OneWay()
			if at != want {
				t.Errorf("%s %dB: latency %v, want %v", plat.Name, size, at, want)
			}
		}
	}
}

func TestPSCWFullCycle(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	mach := w.Rank(0).world.mach
	target := mach.AllocRegion(1, 64, false)
	src := mach.AllocRegion(0, 64, false)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	win := w.NewWin([]*machine.Region{nil, target})

	var waitDone, completeDone bool
	if err := win.Post(1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := win.Wait(1, func() { waitDone = true }); err != nil {
		t.Fatal(err)
	}
	if err := win.Start(0, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := win.Put(0, 1, 64, src); err != nil {
		t.Fatal(err)
	}
	if err := win.Complete(0, func() { completeDone = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !completeDone || !waitDone {
		t.Fatalf("complete=%v wait=%v", completeDone, waitDone)
	}
	if target.Bytes()[5] != 5 {
		t.Fatal("put did not move bytes")
	}
}

func TestWaitBlocksUntilAllOriginsComplete(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 3)
	win := w.NewWin(make([]*machine.Region, 3))
	var waited sim.Time = -1
	if err := win.Post(2, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := win.Wait(2, func() { waited = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := win.Start(0, []int{2}); err != nil {
		t.Fatal(err)
	}
	if err := win.Put(0, 2, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := win.Complete(0, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if waited >= 0 {
		t.Fatal("Wait completed with one of two origins outstanding")
	}
	if err := win.Start(1, []int{2}); err != nil {
		t.Fatal(err)
	}
	if err := win.Put(1, 2, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := win.Complete(1, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if waited < 0 {
		t.Fatal("Wait never completed")
	}
}

func TestPutOutsideEpochRejected(t *testing.T) {
	_, w := newWorld(t, netmodel.AbeIB, 2)
	win := w.NewWin(make([]*machine.Region, 2))
	if err := win.Put(0, 1, 8, nil); err == nil {
		t.Fatal("Put without Start accepted")
	}
	if err := win.Start(0, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := win.Put(0, 0, 8, nil); err == nil {
		t.Fatal("Put to rank outside access group accepted")
	}
}

func TestEpochStateErrors(t *testing.T) {
	_, w := newWorld(t, netmodel.AbeIB, 2)
	win := w.NewWin(make([]*machine.Region, 2))
	if err := win.Wait(1, func() {}); err == nil {
		t.Fatal("Wait without Post accepted")
	}
	if err := win.Complete(0, nil); err == nil {
		t.Fatal("Complete without Start accepted")
	}
	if err := win.Post(1, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := win.Post(1, []int{0}); err == nil {
		t.Fatal("double Post accepted")
	}
	if err := win.Start(0, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := win.Start(0, []int{1}); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestFenceWaitsForPuts(t *testing.T) {
	// 8 BG/P ranks span two nodes (4 cores/node); puts from node 0 to
	// rank 7 on node 1 pay the full inter-node wire time.
	eng, w := newWorld(t, netmodel.SurveyorBGP, 8)
	win := w.NewWin(make([]*machine.Region, 8))
	win.PutFenced(0, 7, 100000, nil)
	win.PutFenced(1, 7, 100000, nil)
	fenced := 0
	var fenceTime sim.Time
	for r := 0; r < 8; r++ {
		win.FenceBegin(r, func() {
			fenced++
			fenceTime = eng.Now()
		})
	}
	eng.Run()
	if fenced != 8 {
		t.Fatalf("%d fence callbacks, want 8", fenced)
	}
	// The fence cannot complete before the put delivery time.
	minPut := netmodel.SurveyorBGP.MPIPut.Resolve(100000).OneWay()
	if fenceTime < minPut {
		t.Fatalf("fence at %v, before puts could land (%v)", fenceTime, minPut)
	}
}

func TestFenceSecondGeneration(t *testing.T) {
	eng, w := newWorld(t, netmodel.AbeIB, 2)
	win := w.NewWin(make([]*machine.Region, 2))
	gen := 0
	for r := 0; r < 2; r++ {
		win.FenceBegin(r, func() { gen = 1 })
	}
	eng.Run()
	if gen != 1 {
		t.Fatal("first fence did not complete")
	}
	for r := 0; r < 2; r++ {
		win.FenceBegin(r, func() { gen = 2 })
	}
	eng.Run()
	if gen != 2 {
		t.Fatal("second fence did not complete")
	}
}

// TestPropertyMatchingEquivalence: the incremental matcher must agree
// with a straightforward reference executed on the same trace.
func TestPropertyMatchingEquivalence(t *testing.T) {
	type op struct {
		send bool
		tag  int
	}
	prop := func(raw []uint8) bool {
		eng, w := newWorld(t, netmodel.AbeIB, 2)
		var ops []op
		for _, b := range raw {
			ops = append(ops, op{send: b%2 == 0, tag: int(b/2) % 3})
		}
		var matchedTags []int
		sends := 0
		recvs := 0
		for _, o := range ops {
			if o.send {
				sends++
				w.Rank(0).Send(1, o.tag, &Msg{Size: 8})
			} else {
				recvs++
				w.Rank(1).Recv(0, o.tag, func(m *Msg) {
					matchedTags = append(matchedTags, m.Tag)
				})
			}
		}
		eng.Run()
		// Reference: count per-tag min(sends, recvs).
		sentPerTag := map[int]int{}
		recvPerTag := map[int]int{}
		for _, o := range ops {
			if o.send {
				sentPerTag[o.tag]++
			} else {
				recvPerTag[o.tag]++
			}
		}
		wantMatches := 0
		for tag, s := range sentPerTag {
			r := recvPerTag[tag]
			if r < s {
				wantMatches += r
			} else {
				wantMatches += s
			}
		}
		if len(matchedTags) != wantMatches {
			return false
		}
		// Every match has the tag it asked for (no wildcards here).
		leftover := w.Rank(1).PendingUnexpected() + w.Rank(1).PendingPosted()
		return leftover == sends+recvs-2*wantMatches
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
