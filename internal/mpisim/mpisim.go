// Package mpisim implements the MPI baseline the paper compares against:
// two-sided Send/Recv with tag matching (eager and rendezvous regimes) and
// one-sided MPI_Put under post-start-complete-wait (PSCW) and fence
// synchronization, §2.3.
//
// Ranks map 1:1 onto simulated PEs. The API is continuation-passing
// (Recv(src, tag, fn)) because the simulation is event-driven; a blocking
// MPI_Recv corresponds to posting the receive and doing nothing until the
// continuation fires.
//
// Timing: the data path (message payloads, puts) is charged through the
// platform's calibrated MPI regime tables, which *include* the cost of tag
// matching and PSCW synchronization as measured end-to-end in the paper's
// Tables 1-2. The control signals that implement matching and epoch
// state transitions are therefore causally ordered but free of additional
// charge — charging them separately would double-count calibrated cost.
package mpisim

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Msg is an MPI message: size for the cost model, optional real payload,
// plus source/tag metadata filled in on delivery.
type Msg struct {
	Size int
	Data []byte
	Src  int
	Tag  int
}

// World is an MPI job: one rank per PE.
type World struct {
	eng     *sim.Engine
	mach    *machine.Machine
	net     *netmodel.Net
	sendT   netmodel.Table
	putT    netmodel.Table
	rec     *trace.Recorder
	ranks   []*Rank
	nextWin int

	// collective state (see collectives.go)
	barrier    *collState
	barrierGen int
	allred     *collState
	allredGen  int
	bcastGen   int
}

// Config selects the MPI personality.
type Config struct {
	// Table is the two-sided regime table (e.g. plat.MPI or plat.MPIAlt).
	Table netmodel.Table
	// PutTable is the one-sided (PSCW) regime table (plat.MPIPut).
	PutTable netmodel.Table
	// Recorder is optional.
	Recorder *trace.Recorder
}

// NewWorld creates an MPI world over the machine (one rank per PE).
func NewWorld(eng *sim.Engine, mach *machine.Machine, net *netmodel.Net, cfg Config) *World {
	if err := cfg.Table.Validate(); err != nil {
		panic(err)
	}
	w := &World{
		eng:   eng,
		mach:  mach,
		net:   net,
		sendT: cfg.Table,
		putT:  cfg.PutTable,
		rec:   cfg.Recorder,
	}
	w.ranks = make([]*Rank, mach.NumPEs())
	for i := range w.ranks {
		w.ranks[i] = &Rank{world: w, id: i}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int

	posted     []*postedRecv
	unexpected []*Msg
}

type postedRecv struct {
	src, tag int
	fn       func(*Msg)
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// matches reports whether a posted (src,tag) pattern accepts a message.
func matches(wantSrc, wantTag int, m *Msg) bool {
	return (wantSrc == AnySource || wantSrc == m.Src) &&
		(wantTag == AnyTag || wantTag == m.Tag)
}

// Send transmits msg to rank dst with the given tag. Like an eager
// MPI_Send, it returns immediately; the payload's full two-sided cost
// (including any rendezvous regime) is charged by the regime table.
func (r *Rank) Send(dst, tag int, msg *Msg) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", dst))
	}
	m := &Msg{Size: msg.Size, Data: msg.Data, Src: r.id, Tag: tag}
	cost := r.world.sendT.Resolve(msg.Size)
	if r.world.rec != nil {
		r.world.rec.Incr("mpi.sends", 1)
		r.world.rec.Incr("mpi.bytes", int64(msg.Size))
	}
	dstRank := r.world.ranks[dst]
	// The MPI paths are tagged for fault targeting but carry no
	// reliability protocol: like real MPI they assume a reliable
	// transport, so injected faults surface as hangs/lost data — the
	// baseline CkDirect's watchdog is compared against.
	r.world.net.Transfer(r.id, dst, cost, netmodel.TransferHooks{
		Kind:     netmodel.KindMPIMsg,
		OnArrive: func() { dstRank.arrive(m) },
	})
}

// arrive matches an incoming message against posted receives (in post
// order, per MPI's matching rules) or queues it as unexpected.
func (r *Rank) arrive(m *Msg) {
	for i, p := range r.posted {
		if matches(p.src, p.tag, m) {
			copy(r.posted[i:], r.posted[i+1:])
			r.posted = r.posted[:len(r.posted)-1]
			p.fn(m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

// Recv posts a receive for (src, tag) — wildcards allowed — and invokes
// fn with the matched message. Unexpected messages are searched first in
// arrival order, as MPI requires.
func (r *Rank) Recv(src, tag int, fn func(*Msg)) {
	for i, m := range r.unexpected {
		if matches(src, tag, m) {
			copy(r.unexpected[i:], r.unexpected[i+1:])
			r.unexpected = r.unexpected[:len(r.unexpected)-1]
			fn(m)
			return
		}
	}
	r.posted = append(r.posted, &postedRecv{src: src, tag: tag, fn: fn})
}

// PendingUnexpected reports the unexpected-queue depth (for tests).
func (r *Rank) PendingUnexpected() int { return len(r.unexpected) }

// PendingPosted reports the posted-receive queue depth (for tests).
func (r *Rank) PendingPosted() int { return len(r.posted) }
