package mpisim

import "fmt"

// Collectives over the whole world, implemented the way mid-2000s MPICH
// derivatives did: binomial trees of point-to-point messages, so their
// cost emerges from the same calibrated regime tables as everything
// else. The continuation fires on each rank when that rank's part of the
// collective completes.
//
// Tags: collectives use a reserved high tag space per generation so they
// never match application traffic.

const collTagBase = 1 << 20

// collState tracks one in-progress collective.
type collState struct {
	gen     int
	arrived int
	entered []bool            // indexed by rank
	fns     []func()          // indexed by rank
	redFns  []func([]float64) // indexed by rank (allreduce)
	vals    [][]float64       // per-rank contributions (allreduce)
	width   int
}

func newCollState(n, gen int) *collState {
	return &collState{
		gen:     gen,
		entered: make([]bool, n),
		fns:     make([]func(), n),
		redFns:  make([]func([]float64), n),
		vals:    make([][]float64, n),
		width:   -1,
	}
}

// Barrier completes (fires fn on every participating rank) once all
// ranks have called it: a zero-payload gather up a binomial tree to rank
// 0 followed by a release broadcast down it.
func (w *World) Barrier(rank int, fn func()) {
	if w.barrier == nil {
		w.barrier = newCollState(w.Size(), w.barrierGen)
		w.barrierGen++
	}
	st := w.barrier
	if st.entered[rank] {
		panic(fmt.Sprintf("mpisim: rank %d entered the same barrier twice", rank))
	}
	st.entered[rank] = true
	st.fns[rank] = fn
	st.arrived++
	if st.arrived < w.Size() {
		return
	}
	w.barrier = nil
	w.sweepUp(8, collTagBase+st.gen*4, func() {
		w.sweepDown(8, collTagBase+st.gen*4+1, func(r int) {
			if st.fns[r] != nil {
				st.fns[r]()
			}
		})
	})
}

// Allreduce combines width doubles from every rank (sum) and delivers
// the combined vector to every rank: reduce up the tree, broadcast down.
func (w *World) Allreduce(rank int, vals []float64, fn func(result []float64)) {
	if w.allred == nil {
		w.allred = newCollState(w.Size(), w.allredGen)
		w.allredGen++
	}
	st := w.allred
	if st.width < 0 {
		st.width = len(vals)
	}
	if len(vals) != st.width {
		panic(fmt.Sprintf("mpisim: Allreduce width mismatch: %d vs %d", len(vals), st.width))
	}
	if st.entered[rank] {
		panic(fmt.Sprintf("mpisim: rank %d contributed twice to one Allreduce", rank))
	}
	st.entered[rank] = true
	st.vals[rank] = append([]float64(nil), vals...)
	st.redFns[rank] = fn
	st.arrived++
	if st.arrived < w.Size() {
		return
	}
	w.allred = nil
	result := make([]float64, st.width)
	for _, v := range st.vals {
		for i := range result {
			result[i] += v[i]
		}
	}
	size := st.width * 8
	tag := collTagBase + (1 << 19) + st.gen*4
	w.sweepUp(size, tag, func() {
		w.sweepDown(size, tag+1, func(r int) {
			if st.redFns[r] != nil {
				st.redFns[r](append([]float64(nil), result...))
			}
		})
	})
}

// Bcast distributes size bytes from rank 0 down a binomial tree; fns[r]
// fires when rank r's copy has arrived.
func (w *World) Bcast(size int, fns []func()) {
	if len(fns) != w.Size() {
		panic(fmt.Sprintf("mpisim: Bcast needs %d continuations, got %d", w.Size(), len(fns)))
	}
	gen := w.bcastGen
	w.bcastGen++
	w.sweepDown(size, collTagBase+(1<<18)+gen, func(r int) {
		if fns[r] != nil {
			fns[r]()
		}
	})
}

// sweepUp sends one size-byte message from every non-root rank to its
// binomial-tree parent; done fires once rank 0 has transitively heard
// from everyone.
func (w *World) sweepUp(size, tag int, done func()) {
	n := w.Size()
	if n == 1 {
		done()
		return
	}
	// A rank forwards to its parent once all of its own children have
	// reported — the correct dependency structure, so the up-sweep's
	// latency is log-depth, not a flat fan-in.
	pendingKids := make([]int, n)
	for r := 0; r < n; r++ {
		pendingKids[r] = len(childrenOf(r, n))
	}
	var report func(r int)
	report = func(r int) {
		if r == 0 {
			done()
			return
		}
		w.Rank(r).Send(parentOf(r), tag, &Msg{Size: size})
	}
	for r := 0; r < n; r++ {
		r := r
		for range childrenOf(r, n) {
			w.Rank(r).Recv(AnySource, tag, func(m *Msg) {
				pendingKids[r]--
				if pendingKids[r] == 0 {
					report(r)
				}
			})
		}
	}
	for r := 1; r < n; r++ {
		if pendingKids[r] == 0 {
			report(r)
		}
	}
}

// sweepDown broadcasts size bytes from rank 0 down the binomial tree;
// each rank's continuation fires when its copy arrives (rank 0's fires
// immediately).
func (w *World) sweepDown(size, tag int, each func(rank int)) {
	n := w.Size()
	var arm func(r int)
	arm = func(r int) {
		each(r)
		for _, c := range childrenOf(r, n) {
			c := c
			w.Rank(c).Recv(r, tag, func(m *Msg) { arm(c) })
			w.Rank(r).Send(c, tag, &Msg{Size: size})
		}
	}
	arm(0)
}

// parentOf returns the binomial-tree parent of rank r (> 0).
func parentOf(r int) int { return r - (r & -r) }

// childrenOf returns the binomial-tree children of rank r among n ranks.
func childrenOf(r, n int) []int {
	var out []int
	limit := r & (-r)
	if r == 0 {
		limit = 1
		for limit < n {
			limit <<= 1
		}
	}
	for j := 1; j < limit; j <<= 1 {
		if c := r + j; c < n {
			out = append(out, c)
		}
	}
	return out
}
