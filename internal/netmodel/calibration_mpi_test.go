package netmodel

import "testing"

// Analytic calibration checks for the MPI personalities against the MPI
// rows of the paper's Tables 1 and 2 (one-way = RTT/2). The two-sided and
// one-sided MPI paths add no Charm++ scheduler cost; their full per-message
// cost is in the regime tables.

func checkTable(t *testing.T, name string, tab Table, paperRTT map[int]float64, tolPct float64) {
	t.Helper()
	for size, rtt := range paperRTT {
		oneWay := tab.Resolve(size).OneWay().Micros()
		if !withinPct(oneWay, rtt/2, tolPct) {
			t.Errorf("%s %dB: model %.2fus vs paper %.2fus (tol %.1f%%)",
				name, size, oneWay, rtt/2, tolPct)
		}
	}
}

func TestCalibrationMVAPICH(t *testing.T) {
	checkTable(t, "mvapich", AbeIB.MPI, map[int]float64{
		100: 12.302, 1000: 19.436, 5000: 37.311, 10000: 56.249,
		20000: 88.659, 30000: 119.452, 40000: 144.973, 70000: 236.545,
		100000: 315.692, 500000: 1386.051,
	}, 6)
}

func TestCalibrationMVAPICHPut(t *testing.T) {
	checkTable(t, "mvapich-put", AbeIB.MPIPut, map[int]float64{
		100: 16.801, 1000: 22.821, 5000: 51.750, 10000: 64.202,
		20000: 94.250, 30000: 120.218, 40000: 146.028, 70000: 232.021,
		100000: 308.942, 500000: 1369.516,
	}, 6)
}

// MPICH-VMI's published row is non-monotone in places (the 70 KB round
// trip nearly equals the 100 KB one); the five-regime envelope tracks it
// within 6%.
func TestCalibrationMPICHVMI(t *testing.T) {
	checkTable(t, "mpich-vmi", AbeIB.MPIAlt, map[int]float64{
		100: 12.367, 1000: 19.669, 5000: 37.318, 10000: 60.892,
		20000: 102.684, 30000: 127.591, 40000: 201.148, 70000: 322.687,
		100000: 332.690, 500000: 1396.942,
	}, 6)
}

func TestCalibrationMPIBGP(t *testing.T) {
	checkTable(t, "mpi-bgp", SurveyorBGP.MPI, map[int]float64{
		100: 7.606, 1000: 13.936, 5000: 39.903, 10000: 66.661,
		20000: 120.548, 30000: 173.041, 40000: 226.739, 70000: 386.712,
		100000: 546.740, 500000: 2680.459,
	}, 6)
}

func TestCalibrationMPIPutBGP(t *testing.T) {
	checkTable(t, "mpiput-bgp", SurveyorBGP.MPIPut, map[int]float64{
		100: 14.049, 1000: 17.836, 5000: 39.963, 10000: 67.972,
		20000: 122.693, 30000: 178.571, 40000: 232.629, 70000: 392.388,
		100000: 552.708, 500000: 2685.972,
	}, 6)
}

// TestCkDirectBeatsAllMPIRows asserts the paper's cross-stack claim: on
// both machines CkDirect outperforms every MPI flavor at every measured
// size (paper §3: "CkDirect ... also performs better than both versions of
// MPI available on the machine"). At 100 B the paper's own Table 1 shows a
// statistical tie (MVAPICH 12.302 µs vs CkDirect 12.383 µs), so the strict
// comparison starts at 1 KB — exactly as in the published data.
func TestCkDirectBeatsAllMPIRows(t *testing.T) {
	sizes := []int{1000, 5000, 10000, 20000, 30000, 40000, 70000, 100000, 500000}
	for _, p := range Platforms {
		detect := 0.0
		if !p.CkdRecvIsCallback {
			detect = p.DetectLatencyUS + p.DetectCPUUS + p.CallbackUS
		}
		tables := map[string]Table{"mpi": p.MPI, "mpi-put": p.MPIPut}
		if p.MPIAlt != nil {
			tables["mpi-alt"] = p.MPIAlt
		}
		for _, size := range sizes {
			ckd := p.CkdPut.Resolve(size).OneWay().Micros() + detect
			for name, tab := range tables {
				if mpi := tab.Resolve(size).OneWay().Micros(); ckd >= mpi {
					t.Errorf("%s at %dB: ckd %.2f >= %s %.2f", p.Name, size, ckd, name, mpi)
				}
			}
		}
	}
}
