package netmodel

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Platform bundles everything that distinguishes the two evaluation
// machines of the paper: regime tables for each software path, runtime
// overheads, topology, and application compute speeds.
//
// Calibration method: every fixed/per-byte parameter below was derived by
// fitting one-way latency (= paper round-trip / 2) across the message
// sizes of Table 1 (Abe/Infiniband) and Table 2 (Surveyor/Blue Gene P).
// Derivations are in the comments next to each table. We fit α/β regime
// models rather than interpolating the paper's points, so the tables stay
// honest: the benchmark reproduces the paper's *shape* from structural
// parameters, not by replaying its numbers.
type Platform struct {
	Name string

	// CharmMsg is the default Charm++ message path. Costs are resolved
	// against wire bytes = user bytes + HeaderBytes.
	CharmMsg Table
	// HeaderBytes is the Charm++ envelope size (~80 B per the paper §3).
	HeaderBytes int
	// SchedUS is the receiver-side scheduler overhead per message
	// (enqueue, dequeue, entry-method dispatch) — the cost CkDirect
	// bypasses.
	SchedUS float64
	// MsgFreeUS is the sender/receiver message allocation bookkeeping
	// folded into CharmMsg already; kept explicit at zero unless a study
	// wants to vary it.
	MsgFreeUS float64

	// CkdPut is the CkDirect put path (no header, no scheduler).
	CkdPut Table
	// CkDirect completion detection (Infiniband backend):
	DetectLatencyUS float64 // mean delay until a poll pass notices landed data
	DetectCPUUS     float64 // CPU to check & retire a completed handle
	CallbackUS      float64 // invoking the user callback function
	// PollPerHandleNS is the CPU charged per *polled handle* per scheduler
	// pass — the §5.2 overhead that ReadyMark/ReadyPollQ windowing fights.
	// Zero on Blue Gene/P (no polling there).
	PollPerHandleNS float64
	// CkdRecvIsCallback: Blue Gene/P delivers via the DCMF receive
	// completion callback (RecvCPU of CkdPut) instead of sentinel polling.
	CkdRecvIsCallback bool

	// MPI personalities present on the machine. MPIAlt is MPICH-VMI on
	// Abe; nil on Blue Gene/P.
	MPI    Table
	MPIPut Table
	MPIAlt Table

	// Topology & machine shape.
	CoresPerNode    int
	PerHopUS        float64
	IntraNodeFactor float64
	TopologyFor     func(nodes int) machine.Topology

	// Application compute speeds.
	StencilPerElementNS float64 // one Jacobi 7-point update
	FlopNS              float64 // sustained DGEMM cost per flop
	CopyPerByteNS       float64 // application-level memcpy
}

// BuildMachine constructs a machine with this platform's node shape and
// topology for the requested PE count, and a Net sequencer bound to it.
func (p *Platform) BuildMachine(eng *sim.Engine, pes int) (*machine.Machine, *Net) {
	nodes := (pes + p.CoresPerNode - 1) / p.CoresPerNode
	m := machine.New(eng, machine.Config{
		PEs:          pes,
		CoresPerNode: p.CoresPerNode,
		Topology:     p.TopologyFor(nodes),
	})
	return m, NewNet(eng, m, p.PerHopUS, p.IntraNodeFactor)
}

// AbeIB is the NCSA Abe model: dual-socket quad-core 2.33 GHz Clovertown
// nodes on an Infiniband fat-tree (paper §3, §4, §5).
//
// Fit targets, one-way µs (= Table 1 RTT / 2):
//
//	charm msg : 11.20 + 1.50 ns/B (≤ ~1 KB, eager)
//	            15.40 + 1.63 ns/B (≤ ~20 KB, packetized)
//	            40.60 + 1.318 ns/B (rendezvous + RDMA)
//	ckdirect  :  6.19 + 1.282 ns/B (RDMA put + sentinel poll)
//	mvapich   :  6.15 + 2.20 ns/B (eager ≤ 12 KB); 17.0 + 1.35 ns/B
//	mvapich put: 8.30 + 3.50 ns/B (≤ 5 KB);       18.3 + 1.33 ns/B
//	mpich-vmi :  6.10 + 2.44 ns/B (≤10K); 10+2.05 (≤30K); 45+1.31
//
// (MPICH-VMI's published data is non-monotone between 40 KB and 100 KB;
// we fit the overall envelope.)
var AbeIB = &Platform{
	Name:        "abe-infiniband",
	HeaderBytes: 80,
	SchedUS:     2.4,
	CharmMsg: Table{
		// Eager small messages: one copy on arrival, cheap post.
		{MaxBytes: 1104,
			SendCPUUS: 2.0, SendPerByteNS: 0.20,
			WireFixedUS: 4.4, WirePerByteNS: 1.00,
			RecvCPUUS: 2.4, RecvPerByteNS: 0.30},
		// Packetized protocol (paper: used between ~1 KB and ~20 KB
		// because it needs no synchronization; higher per-byte cost).
		{MaxBytes: 20560,
			SendCPUUS: 4.0, SendPerByteNS: 0.30,
			WireFixedUS: 4.5, WirePerByteNS: 1.00,
			RecvCPUUS: 4.4, RecvPerByteNS: 0.33},
		// Rendezvous + RDMA: control round trip plus registration whose
		// cost grows slowly with size (paper §3).
		{MaxBytes: math.MaxInt,
			SendCPUUS:   3.0,
			WireFixedUS: 4.5, WirePerByteNS: 1.282,
			RecvCPUUS:    2.6,
			RendezvousUS: 12.0, RendezvousCPUUS: 16.0, RendezvousCPUPerByteNS: 0.036},
	},
	CkdPut: Table{
		// An RDMA put at any size, but the effective per-byte rate is
		// higher below ~20 KB (HCA/PCIe pipelining has not reached its
		// streaming rate). Fits Table 1 row 2: 6.02+1.73 ns/B (≤5 KB),
		// 8.06+1.32 ns/B (≤20 KB), 8.37+1.278 ns/B above.
		{MaxBytes: 5000,
			SendCPUUS:   0.8,
			WireFixedUS: 4.23, WirePerByteNS: 1.73},
		{MaxBytes: 20000,
			SendCPUUS:   0.8,
			WireFixedUS: 6.27, WirePerByteNS: 1.32},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   0.8,
			WireFixedUS: 6.58, WirePerByteNS: 1.278},
	},
	DetectLatencyUS: 0.20,
	DetectCPUUS:     0.50,
	CallbackUS:      0.29,
	PollPerHandleNS: 25,

	// MVAPICH2 0.9.8 two-sided. Fits Table 1 row 4:
	// 5.75+3.96 ns/B (≤1 KB eager), 9.19+1.894 ns/B (≤12 KB),
	// 18.5+1.345 ns/B (rendezvous).
	MPI: Table{
		{MaxBytes: 1024,
			SendCPUUS: 1.0, SendPerByteNS: 0.30,
			WireFixedUS: 4.15, WirePerByteNS: 3.00,
			RecvCPUUS: 0.60, RecvPerByteNS: 0.66},
		{MaxBytes: 12288,
			SendCPUUS: 1.2, SendPerByteNS: 0.20,
			WireFixedUS: 4.15, WirePerByteNS: 1.30,
			RecvCPUUS: 3.84, RecvPerByteNS: 0.394},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   1.5,
			WireFixedUS: 4.5, WirePerByteNS: 1.275,
			RecvCPUUS: 2.5, RecvPerByteNS: 0.07,
			RendezvousUS: 6.0, RendezvousCPUUS: 4.0},
	},
	// MVAPICH2 MPI_Put with post-start-complete-wait. Fits Table 1 row 5:
	// 8.04+3.567 ns/B (≤5 KB), 18.78+1.332 ns/B above.
	MPIPut: Table{
		{MaxBytes: 5120,
			SendCPUUS: 1.6, SendPerByteNS: 0.30,
			WireFixedUS: 4.4, WirePerByteNS: 2.60,
			RecvCPUUS: 2.04, RecvPerByteNS: 0.667},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   1.6,
			WireFixedUS: 4.5, WirePerByteNS: 1.262,
			RecvCPUUS: 1.68, RecvPerByteNS: 0.07,
			RendezvousUS: 7.0, RendezvousCPUUS: 4.0},
	},
	// MPICH-VMI 2.2.0. The published row is visibly noisy (the 70 KB RTT
	// nearly equals the 100 KB RTT); five regimes track its envelope:
	// 5.77+4.06, 6.87+2.358 (≤10 K), 26.4+1.246 (≤30 K),
	// 19.5+2.026 (≤70 K), 33.3+1.330 above.
	MPIAlt: Table{
		{MaxBytes: 1024,
			SendCPUUS: 1.0, SendPerByteNS: 0.30,
			WireFixedUS: 4.1, WirePerByteNS: 3.20,
			RecvCPUUS: 0.67, RecvPerByteNS: 0.56},
		{MaxBytes: 10240,
			SendCPUUS: 1.2, SendPerByteNS: 0.20,
			WireFixedUS: 4.1, WirePerByteNS: 1.70,
			RecvCPUUS: 1.57, RecvPerByteNS: 0.458},
		{MaxBytes: 30720,
			SendCPUUS: 2.0, SendPerByteNS: 0.10,
			WireFixedUS: 4.1, WirePerByteNS: 0.80,
			RecvCPUUS: 4.0, RecvPerByteNS: 0.346,
			RendezvousUS: 10.0, RendezvousCPUUS: 6.3},
		{MaxBytes: 71680,
			SendCPUUS: 2.0, SendPerByteNS: 0.20,
			WireFixedUS: 4.1, WirePerByteNS: 1.40,
			RecvCPUUS: 2.0, RecvPerByteNS: 0.426,
			RendezvousUS: 8.0, RendezvousCPUUS: 3.4},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   2.0,
			WireFixedUS: 4.1, WirePerByteNS: 1.26,
			RecvCPUUS: 2.2, RecvPerByteNS: 0.0703,
			RendezvousUS: 18.0, RendezvousCPUUS: 7.0},
	},

	CoresPerNode:    8,
	PerHopUS:        0.10,
	IntraNodeFactor: 0.40,
	TopologyFor: func(nodes int) machine.Topology {
		return machine.TreeTopology{LeafSize: 24}
	},

	StencilPerElementNS: 4.0,  // 2.33 GHz Clovertown, memory-bound Jacobi
	FlopNS:              0.15, // ~6.6 GF/core sustained DGEMM
	CopyPerByteNS:       0.25, // ~4 GB/s memcpy
}

// SurveyorBGP is the ANL Surveyor Blue Gene/P model (paper §2.2, §3).
//
// Fit targets, one-way µs (= Table 2 RTT / 2):
//
//	charm msg : 6.90 + 2.95 ns/B (≤ ~10 KB); 9.60 + 2.68 ns/B above
//	ckdirect  : 2.20 + 3.40 (≤1 KB); 2.90 + 2.733 (≤20 KB); 4.75 + 2.668
//	            (the ~1.9 µs wire term matches DCMF's published latency)
//	mpi       : 3.45 + 3.52 ns/B (≤4 KB); 6.60 + 2.668 ns/B above (the
//	            paper's "buffering threshold" bump at ~5 KB)
//	mpi put   : 6.67 + 3.50 (≤512 B); 5.40 + 3.52 (≤4 KB); 7.29 + 2.671
var SurveyorBGP = &Platform{
	Name:        "surveyor-bluegenep",
	HeaderBytes: 80,
	SchedUS:     1.93,
	CharmMsg: Table{
		// DCMF has no RDMA cutover on Surveyor (rendezvous protocol not
		// installed, paper §3): everything is the copying two-sided path.
		// Small messages see a higher effective per-byte rate (torus
		// packetization warm-up); fits Table 2 row 1:
		// 6.90+2.95 ns/B (≤ ~10 KB), 9.60+2.68 ns/B above.
		{MaxBytes: 10320,
			SendCPUUS:   1.4,
			WireFixedUS: 1.9, WirePerByteNS: 2.70,
			RecvCPUUS: 1.67, RecvPerByteNS: 0.25},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   1.4,
			WireFixedUS: 1.9, WirePerByteNS: 2.66,
			RecvCPUUS: 4.37, RecvPerByteNS: 0.02},
	},
	CkdPut: Table{
		// DCMF_Send with Info-carried context: receive handler hands the
		// payload straight to the user buffer and fires the user callback
		// from the completion callback (RecvCPU below); no scheduler.
		// Fits Table 2 row 2: 2.20+3.40 ns/B (≤1 KB), 2.90+2.733 ns/B
		// (≤20 KB), 4.75+2.668 ns/B above.
		{MaxBytes: 1024,
			SendCPUUS:   0.30,
			WireFixedUS: 1.53, WirePerByteNS: 3.40,
			RecvCPUUS: 0.37},
		{MaxBytes: 20000,
			SendCPUUS:   0.30,
			WireFixedUS: 2.23, WirePerByteNS: 2.733,
			RecvCPUUS: 0.37},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   0.30,
			WireFixedUS: 4.08, WirePerByteNS: 2.668,
			RecvCPUUS: 0.37},
	},
	CkdRecvIsCallback: true,
	// No polling machinery on BG/P; CkDirect_Ready calls are no-ops.
	PollPerHandleNS: 0,

	// IBM BG/P MPI two-sided. Fits Table 2 row 3:
	// 3.45+3.52 ns/B (≤4 KB), 6.60+2.668 ns/B above (the "buffering
	// threshold" bump the paper observes at ~5 KB).
	MPI: Table{
		{MaxBytes: 4096,
			SendCPUUS:   0.70,
			WireFixedUS: 1.53, WirePerByteNS: 3.00,
			RecvCPUUS: 1.22, RecvPerByteNS: 0.52},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   1.00,
			WireFixedUS: 4.08, WirePerByteNS: 2.648,
			RecvCPUUS: 1.52, RecvPerByteNS: 0.02},
	},
	// MPI_Put (PSCW) on BG/P. Fits Table 2 row 4:
	// 6.67+3.50 (≤512 B), 5.40+3.52 (≤4 KB), 7.29+2.671 above.
	MPIPut: Table{
		{MaxBytes: 512,
			SendCPUUS:   1.20,
			WireFixedUS: 1.53, WirePerByteNS: 3.00,
			RecvCPUUS: 2.34, RecvPerByteNS: 0.50,
			RendezvousCPUUS: 1.60},
		{MaxBytes: 4096,
			SendCPUUS:   1.00,
			WireFixedUS: 1.53, WirePerByteNS: 3.00,
			RecvCPUUS: 2.07, RecvPerByteNS: 0.52,
			RendezvousCPUUS: 0.80},
		{MaxBytes: math.MaxInt,
			SendCPUUS:   1.00,
			WireFixedUS: 4.08, WirePerByteNS: 2.648,
			RecvCPUUS: 1.61, RecvPerByteNS: 0.023,
			RendezvousCPUUS: 0.60},
	},

	CoresPerNode:    4,
	PerHopUS:        0.04,
	IntraNodeFactor: 0.50,
	TopologyFor: func(nodes int) machine.Topology {
		return machine.TorusFor(nodes)
	},

	StencilPerElementNS: 12.0, // 850 MHz PPC450
	FlopNS:              0.30, // ~3.4 GF/core with double hummer
	CopyPerByteNS:       0.85,
}

// Platforms lists the calibrated machines by name.
var Platforms = map[string]*Platform{
	AbeIB.Name:       AbeIB,
	SurveyorBGP.Name: SurveyorBGP,
}

// Validate checks all regime tables of the platform.
func (p *Platform) Validate() error {
	for _, t := range []Table{p.CharmMsg, p.CkdPut, p.MPI, p.MPIPut} {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if p.MPIAlt != nil {
		return p.MPIAlt.Validate()
	}
	return nil
}
