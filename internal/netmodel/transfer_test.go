package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

// TestTransferAtomicDelivery: OnDeliver fires at a single instant — the
// model never exposes partially-arrived payloads, which is the property
// CkDirect's "last double word" sentinel detection relies on (in-order
// delivery of IB Reliable Connection means the last byte implies the
// whole message; the model strengthens that to atomicity).
func TestTransferAtomicDelivery(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, machine.Config{PEs: 2, CoresPerNode: 1})
	net := NewNet(eng, m, 0, 1)
	src := m.AllocRegion(0, 1024, false)
	dst := m.AllocRegion(1, 1024, false)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i % 251)
	}
	cost := PathCost{SendCPU: sim.Microsecond, Wire: 5 * sim.Microsecond}
	delivered := false
	net.Transfer(0, 1, cost, TransferHooks{
		OnDeliver: func() {
			src.CopyTo(dst)
			delivered = true
			// At this instant the destination is complete.
			for i := range dst.Bytes() {
				if dst.Bytes()[i] != byte(i%251) {
					t.Fatalf("byte %d incomplete at delivery", i)
				}
			}
		},
	})
	eng.Run()
	if !delivered {
		t.Fatal("no delivery")
	}
}

// TestTransferPropertyMilestoneOrdering: for any component durations,
// SendDone <= Deliver <= Arrive, and the gaps equal the modelled parts
// on an otherwise idle system.
func TestTransferPropertyMilestoneOrdering(t *testing.T) {
	prop := func(sendUS, wireUS, recvUS, rendUS uint16) bool {
		eng := sim.NewEngine()
		m := machine.New(eng, machine.Config{PEs: 2, CoresPerNode: 1})
		net := NewNet(eng, m, 0, 1)
		cost := PathCost{
			SendCPU:    sim.Time(sendUS) * sim.Microsecond,
			Wire:       sim.Time(wireUS) * sim.Microsecond,
			RecvCPU:    sim.Time(recvUS) * sim.Microsecond,
			Rendezvous: sim.Time(rendUS) * sim.Microsecond,
		}
		var sd, dl, ar sim.Time = -1, -1, -1
		net.Transfer(0, 1, cost, TransferHooks{
			OnSendDone: func() { sd = eng.Now() },
			OnDeliver:  func() { dl = eng.Now() },
			OnArrive:   func() { ar = eng.Now() },
		})
		eng.Run()
		if sd < 0 || dl < 0 || ar < 0 {
			return false
		}
		if !(sd <= dl && dl <= ar) {
			return false
		}
		return sd == cost.SendCPU &&
			dl == cost.SendCPU+cost.Rendezvous+cost.Wire &&
			ar == dl+cost.RecvCPU
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTransfersShareNothingButCPU: transfers between disjoint
// PE pairs proceed fully in parallel (wire is not a shared resource in
// this model), while transfers into one PE serialize on its receive CPU.
func TestConcurrentTransfersShareNothingButCPU(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, machine.Config{PEs: 4, CoresPerNode: 1})
	net := NewNet(eng, m, 0, 1)
	cost := PathCost{Wire: 10 * sim.Microsecond, RecvCPU: 4 * sim.Microsecond}
	var t1, t2 sim.Time
	net.Transfer(0, 1, cost, TransferHooks{OnArrive: func() { t1 = eng.Now() }})
	net.Transfer(2, 3, cost, TransferHooks{OnArrive: func() { t2 = eng.Now() }})
	eng.Run()
	if t1 != t2 || t1 != 14*sim.Microsecond {
		t.Fatalf("disjoint transfers %v/%v, want both 14us", t1, t2)
	}

	eng2 := sim.NewEngine()
	m2 := machine.New(eng2, machine.Config{PEs: 3, CoresPerNode: 1})
	net2 := NewNet(eng2, m2, 0, 1)
	var a1, a2 sim.Time
	net2.Transfer(0, 2, cost, TransferHooks{OnArrive: func() { a1 = eng2.Now() }})
	net2.Transfer(1, 2, cost, TransferHooks{OnArrive: func() { a2 = eng2.Now() }})
	eng2.Run()
	first, second := a1, a2
	if first > second {
		first, second = second, first
	}
	if first != 14*sim.Microsecond || second != 18*sim.Microsecond {
		t.Fatalf("converging transfers at %v/%v, want 14us and 18us (receive CPU serializes)", first, second)
	}
}
