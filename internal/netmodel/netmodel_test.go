package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestTableValidate(t *testing.T) {
	good := Table{{MaxBytes: 100}, {MaxBytes: math.MaxInt}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []Table{
		{},
		{{MaxBytes: 100}}, // no MaxInt terminator
		{{MaxBytes: 100}, {MaxBytes: 100}, {MaxBytes: math.MaxInt}}, // not increasing
		{{MaxBytes: math.MaxInt}, {MaxBytes: 10}},                   // decreasing
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
}

func TestResolvePicksRegimeByBytes(t *testing.T) {
	tab := Table{
		{MaxBytes: 1000, SendCPUUS: 1},
		{MaxBytes: 20000, SendCPUUS: 2},
		{MaxBytes: math.MaxInt, SendCPUUS: 3},
	}
	if tab.Resolve(1000).SendCPU != sim.Microseconds(1) {
		t.Fatal("boundary 1000 should use first regime (inclusive)")
	}
	if tab.Resolve(1001).SendCPU != sim.Microseconds(2) {
		t.Fatal("1001 should use second regime")
	}
	if tab.Resolve(1<<30).SendCPU != sim.Microseconds(3) {
		t.Fatal("huge size should use last regime")
	}
}

func TestResolveLinearInBytes(t *testing.T) {
	tab := Table{{MaxBytes: math.MaxInt, WireFixedUS: 1.0, WirePerByteNS: 2.0}}
	c := tab.Resolve(500)
	want := sim.Microseconds(1.0 + 2.0*500/1000)
	if c.Wire != want {
		t.Fatalf("Wire = %v, want %v", c.Wire, want)
	}
}

// TestResolveMonotoneWithinRegime: within one regime, cost never
// decreases with size.
func TestResolveMonotoneWithinRegime(t *testing.T) {
	tab := AbeIB.CharmMsg
	prop := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		// Confine to the first regime to avoid cross-regime jumps.
		x, y = x%1000, y%1000
		if x > y {
			x, y = y, x
		}
		return tab.Resolve(x).OneWay() <= tab.Resolve(y).OneWay()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformsValidate(t *testing.T) {
	for name, p := range Platforms {
		if err := p.Validate(); err != nil {
			t.Errorf("platform %s: %v", name, err)
		}
	}
}

// withinPct reports whether got is within pct percent of want.
func withinPct(got, want, pct float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want)*100 <= pct
}

// TestCalibrationCharmIB checks the analytic one-way cost of the default
// Charm++ path on Abe against Table 1 of the paper (RTT/2), within 5%.
func TestCalibrationCharmIB(t *testing.T) {
	paperRTT := map[int]float64{ // user bytes -> RTT µs (Table 1 row 1)
		100: 22.924, 1000: 25.110, 5000: 47.340, 10000: 66.176,
		20000: 96.215, 30000: 160.470, 40000: 191.343, 70000: 271.803,
		100000: 353.305, 500000: 1399.145,
	}
	for size, rtt := range paperRTT {
		c := AbeIB.CharmMsg.Resolve(size + AbeIB.HeaderBytes)
		oneWay := c.OneWay().Micros() + AbeIB.SchedUS
		if !withinPct(oneWay, rtt/2, 5) {
			t.Errorf("charm IB %dB: model %.2fus vs paper %.2fus", size, oneWay, rtt/2)
		}
	}
}

// TestCalibrationCkdIB checks the CkDirect path on Abe against Table 1
// row 2 within 5%.
func TestCalibrationCkdIB(t *testing.T) {
	paperRTT := map[int]float64{
		100: 12.383, 1000: 16.108, 5000: 29.330, 10000: 43.136,
		20000: 68.927, 30000: 93.422, 40000: 120.954, 70000: 195.248,
		100000: 275.322, 500000: 1294.358,
	}
	for size, rtt := range paperRTT {
		c := AbeIB.CkdPut.Resolve(size)
		oneWay := c.OneWay().Micros() + AbeIB.DetectLatencyUS + AbeIB.DetectCPUUS + AbeIB.CallbackUS
		if !withinPct(oneWay, rtt/2, 5) {
			t.Errorf("ckd IB %dB: model %.2fus vs paper %.2fus", size, oneWay, rtt/2)
		}
	}
}

// TestCalibrationCharmAndCkdBGP checks both Charm++ paths on Blue Gene/P
// against Table 2 within 5%.
func TestCalibrationCharmAndCkdBGP(t *testing.T) {
	charm := map[int]float64{
		100: 14.467, 1000: 20.822, 5000: 44.822, 10000: 72.976,
		20000: 128.166, 30000: 186.771, 40000: 240.306, 70000: 400.226,
		100000: 560.634, 500000: 2693.601,
	}
	for size, rtt := range charm {
		c := SurveyorBGP.CharmMsg.Resolve(size + SurveyorBGP.HeaderBytes)
		oneWay := c.OneWay().Micros() + SurveyorBGP.SchedUS
		if !withinPct(oneWay, rtt/2, 5) {
			t.Errorf("charm BGP %dB: model %.2fus vs paper %.2fus", size, oneWay, rtt/2)
		}
	}
	ckd := map[int]float64{
		100: 5.133, 1000: 11.379, 5000: 33.112, 10000: 60.675,
		20000: 115.103, 30000: 169.552, 40000: 223.599, 70000: 383.732,
		100000: 543.491, 500000: 2677.072,
	}
	for size, rtt := range ckd {
		oneWay := SurveyorBGP.CkdPut.Resolve(size).OneWay().Micros()
		if !withinPct(oneWay, rtt/2, 5) {
			t.Errorf("ckd BGP %dB: model %.2fus vs paper %.2fus", size, oneWay, rtt/2)
		}
	}
}

// TestCkDirectAlwaysBeatsCharmMessages asserts the paper's headline
// property at every size on both machines: the CkDirect path is cheaper
// than the default message path.
func TestCkDirectAlwaysBeatsCharmMessages(t *testing.T) {
	for _, p := range Platforms {
		detect := sim.Microseconds(p.DetectLatencyUS + p.DetectCPUUS + p.CallbackUS)
		for size := 8; size <= 1<<23; size *= 2 {
			msg := p.CharmMsg.Resolve(size+p.HeaderBytes).OneWay() + sim.Microseconds(p.SchedUS)
			ckd := p.CkdPut.Resolve(size).OneWay() + detect
			if ckd >= msg {
				t.Errorf("%s at %dB: ckd %v >= msg %v", p.Name, size, ckd, msg)
			}
		}
	}
}

func newTestNet(t *testing.T, pes int) (*sim.Engine, *machine.Machine, *Net) {
	t.Helper()
	eng := sim.NewEngine()
	m := machine.New(eng, machine.Config{PEs: pes, CoresPerNode: 1})
	return eng, m, NewNet(eng, m, 0, 1)
}

func TestTransferSequencing(t *testing.T) {
	eng, _, net := newTestNet(t, 2)
	cost := PathCost{
		SendCPU: 2 * sim.Microsecond,
		Wire:    5 * sim.Microsecond,
		RecvCPU: 3 * sim.Microsecond,
	}
	var sendDone, deliver, arrive sim.Time = -1, -1, -1
	net.Transfer(0, 1, cost, TransferHooks{
		OnSendDone: func() { sendDone = eng.Now() },
		OnDeliver:  func() { deliver = eng.Now() },
		OnArrive:   func() { arrive = eng.Now() },
	})
	eng.Run()
	if sendDone != 2*sim.Microsecond {
		t.Fatalf("sendDone at %v, want 2us", sendDone)
	}
	if deliver != 7*sim.Microsecond {
		t.Fatalf("deliver at %v, want 7us", deliver)
	}
	if arrive != 10*sim.Microsecond {
		t.Fatalf("arrive at %v, want 10us", arrive)
	}
}

func TestTransferZeroRecvCPUDeliversImmediately(t *testing.T) {
	eng, _, net := newTestNet(t, 2)
	cost := PathCost{SendCPU: sim.Microsecond, Wire: 4 * sim.Microsecond}
	var deliver, arrive sim.Time = -1, -1
	net.Transfer(0, 1, cost, TransferHooks{
		OnDeliver: func() { deliver = eng.Now() },
		OnArrive:  func() { arrive = eng.Now() },
	})
	eng.Run()
	if deliver != arrive || deliver != 5*sim.Microsecond {
		t.Fatalf("deliver %v arrive %v, want both 5us (RDMA: no receiver CPU)", deliver, arrive)
	}
}

func TestTransferRendezvousAddsLatencyAndRecvCPU(t *testing.T) {
	eng, _, net := newTestNet(t, 2)
	cost := PathCost{
		SendCPU:       sim.Microsecond,
		Wire:          4 * sim.Microsecond,
		Rendezvous:    10 * sim.Microsecond,
		RecvCPU:       2 * sim.Microsecond,
		RendezvousCPU: 6 * sim.Microsecond,
	}
	var arrive sim.Time = -1
	net.Transfer(0, 1, cost, TransferHooks{OnArrive: func() { arrive = eng.Now() }})
	eng.Run()
	// 1 (send) + 10 (rendezvous) + 4 (wire) + 2+6 (receiver CPU) = 23.
	if arrive != 23*sim.Microsecond {
		t.Fatalf("arrive %v, want 23us", arrive)
	}
}

func TestTransferSenderBusySerializes(t *testing.T) {
	eng, m, net := newTestNet(t, 2)
	m.PE(0).Reserve(50 * sim.Microsecond) // sender occupied with compute
	var deliver sim.Time = -1
	net.Transfer(0, 1, PathCost{SendCPU: sim.Microsecond, Wire: sim.Microsecond},
		TransferHooks{OnDeliver: func() { deliver = eng.Now() }})
	eng.Run()
	if deliver != 52*sim.Microsecond {
		t.Fatalf("deliver %v, want 52us (send CPU queued behind compute)", deliver)
	}
}

func TestTransferReceiverBusyDelaysArriveNotDeliver(t *testing.T) {
	eng, m, net := newTestNet(t, 2)
	m.PE(1).Reserve(100 * sim.Microsecond)
	var deliver, arrive sim.Time = -1, -1
	net.Transfer(0, 1, PathCost{Wire: sim.Microsecond, RecvCPU: 2 * sim.Microsecond},
		TransferHooks{
			OnDeliver: func() { deliver = eng.Now() },
			OnArrive:  func() { arrive = eng.Now() },
		})
	eng.Run()
	if deliver != sim.Microsecond {
		t.Fatalf("deliver %v, want 1us (DMA lands regardless of CPU)", deliver)
	}
	if arrive != 102*sim.Microsecond {
		t.Fatalf("arrive %v, want 102us (receive processing waits for CPU)", arrive)
	}
}

func TestWireDelayIntraNodeDiscount(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, machine.Config{PEs: 4, CoresPerNode: 2})
	net := NewNet(eng, m, 0.1, 0.5)
	base := 10 * sim.Microsecond
	if d := net.WireDelay(0, 1, base); d != 5*sim.Microsecond {
		t.Fatalf("intra-node delay %v, want 5us", d)
	}
	if d := net.WireDelay(0, 2, base); d != base {
		t.Fatalf("1-hop delay %v, want 10us", d)
	}
}

func TestWireDelayPerHop(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, machine.Config{
		PEs: 8, CoresPerNode: 1,
		Topology: machine.TorusTopology{X: 8, Y: 1, Z: 1},
	})
	net := NewNet(eng, m, 0.5, 1)
	base := 10 * sim.Microsecond
	// Node 0 -> node 4 is 4 hops on an 8-torus: 3 extra hops * 0.5us.
	want := base + sim.Microseconds(1.5)
	if d := net.WireDelay(0, 4, base); d != want {
		t.Fatalf("4-hop delay %v, want %v", d, want)
	}
}

func TestBuildMachine(t *testing.T) {
	eng := sim.NewEngine()
	m, net := AbeIB.BuildMachine(eng, 16)
	if m.NumPEs() != 16 || m.NumNodes() != 2 {
		t.Fatalf("machine shape %d PEs %d nodes", m.NumPEs(), m.NumNodes())
	}
	if net.Machine() != m || net.Engine() != eng {
		t.Fatal("net not bound to machine/engine")
	}
	_, bgpNet := SurveyorBGP.BuildMachine(eng, 256)
	if bgpNet.Machine().Topology().Name() == "flat" {
		t.Fatal("BGP machine should have a torus topology")
	}
}
