// Package netmodel defines the cost-model vocabulary shared by every
// communication stack in the repository: piecewise-linear protocol
// regimes, the wire/CPU split, and the event sequencing of a one-way
// transfer.
//
// # Modelling philosophy
//
// Each software path (Charm++ messaging, CkDirect, the MPI flavors) is a
// sequence of cost components per message:
//
//	SendCPU  — reserved on the sender PE (allocation, packing, posting)
//	Wire     — pure network time (NIC-to-NIC latency + bytes/bandwidth);
//	           never occupies a PE, so it overlaps computation
//	RecvCPU  — reserved on the receiver PE (packet processing, copies,
//	           tag matching, registration); zero for true RDMA
//	Rendezvous — extra pre-transfer latency (control round trip) plus
//	           extra receiver CPU (memory registration), used by
//	           large-message protocols
//
// Components are resolved per message size from a regime table. Regime
// tables are calibrated against the paper's Tables 1 and 2 (see params.go
// for the per-cell derivations); applications then *inherit* realistic
// behaviour because CPU components serialize with computation while Wire
// components overlap it — exactly the distinction CkDirect exploits.
package netmodel

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Regime is one piece of a piecewise-linear protocol cost model. All
// fixed costs are in microseconds; per-byte costs in nanoseconds per byte.
type Regime struct {
	// MaxBytes is the inclusive upper bound of message sizes (wire bytes,
	// i.e. including any header) this regime covers. The last regime of a
	// table must have MaxBytes = math.MaxInt.
	MaxBytes int

	SendCPUUS     float64 // sender-side CPU, fixed
	SendPerByteNS float64 // sender-side CPU, per byte

	WireFixedUS   float64 // NIC-to-NIC latency at one hop
	WirePerByteNS float64 // inverse bandwidth

	RecvCPUUS     float64 // receiver-side CPU, fixed
	RecvPerByteNS float64 // receiver-side CPU, per byte (copies, matching)

	// RendezvousUS is extra latency before the payload transfer starts
	// (the control round trip of a rendezvous protocol).
	RendezvousUS float64
	// RendezvousCPUUS / RendezvousCPUPerByteNS is extra receiver CPU for
	// rendezvous bookkeeping (buffer registration; the paper's "memory
	// component whose cost increases slowly with message size").
	RendezvousCPUUS        float64
	RendezvousCPUPerByteNS float64
}

// Table is an ordered list of regimes with strictly increasing MaxBytes.
type Table []Regime

// Validate checks monotonicity and termination of the table.
func (t Table) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("netmodel: empty regime table")
	}
	prev := -1
	for i, r := range t {
		if r.MaxBytes <= prev {
			return fmt.Errorf("netmodel: regime %d MaxBytes %d not increasing", i, r.MaxBytes)
		}
		prev = r.MaxBytes
	}
	if t[len(t)-1].MaxBytes != math.MaxInt {
		return fmt.Errorf("netmodel: last regime must cover MaxInt, got %d", t[len(t)-1].MaxBytes)
	}
	return nil
}

// Resolve picks the regime for a wire size and expands it into concrete
// durations.
func (t Table) Resolve(bytes int) PathCost {
	for _, r := range t {
		if bytes <= r.MaxBytes {
			return PathCost{
				SendCPU:       sim.Microseconds(r.SendCPUUS + r.SendPerByteNS*float64(bytes)/1000),
				Wire:          sim.Microseconds(r.WireFixedUS + r.WirePerByteNS*float64(bytes)/1000),
				RecvCPU:       sim.Microseconds(r.RecvCPUUS + r.RecvPerByteNS*float64(bytes)/1000),
				Rendezvous:    sim.Microseconds(r.RendezvousUS),
				RendezvousCPU: sim.Microseconds(r.RendezvousCPUUS + r.RendezvousCPUPerByteNS*float64(bytes)/1000),
			}
		}
	}
	panic(fmt.Sprintf("netmodel: no regime for %d bytes (table not validated?)", bytes))
}

// PathCost is a regime resolved at a concrete size.
type PathCost struct {
	SendCPU       sim.Time
	Wire          sim.Time
	RecvCPU       sim.Time
	Rendezvous    sim.Time
	RendezvousCPU sim.Time
}

// OneWay returns the unloaded (idle CPUs, no queueing) end-to-end latency
// of this path: the analytic check used by the calibration tests.
func (p PathCost) OneWay() sim.Time {
	return p.SendCPU + p.Rendezvous + p.Wire + p.RecvCPU + p.RendezvousCPU
}

// Fault is the outcome fault injection chose for one transfer attempt.
type Fault int

// Fault kinds.
const (
	// FaultNone: the attempt proceeds unharmed.
	FaultNone Fault = iota
	// FaultDrop: the payload never reaches destination memory. The
	// sender-side costs are still paid (the NIC accepted the descriptor).
	FaultDrop
	// FaultCorrupt: the payload reaches the destination damaged. Paths
	// with a receive-side software step (checksummed message protocols)
	// pay their receive CPU and then discard; pure RDMA paths observe it
	// like a drop — Infiniband's link-layer CRC discards the packet
	// before it touches memory.
	FaultCorrupt
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Transfer kinds used by the software stacks in this repository, matched
// by fault-injection rules. Stacks pass them via TransferHooks.Kind.
const (
	KindCharmMsg = "charm.msg" // Charm++ two-sided message (eager/rendezvous)
	KindCharmAck = "charm.ack" // reliability-layer acknowledgement
	KindCkdPut   = "ckd.put"   // CkDirect one-sided put
	KindMPIMsg   = "mpi.msg"   // MPI two-sided message
	KindMPIPut   = "mpi.put"   // MPI_Put one-sided transfer
)

// Attempt describes one transfer attempt to a fault injector.
type Attempt struct {
	Src, Dst int
	// Kind classifies the software path (see the Kind* constants); empty
	// for transfers that did not tag themselves.
	Kind string
	// Flow is a protocol-level stream id: the CkDirect handle id for
	// puts, the reliability sequence number for messages. Zero when the
	// path has no flow notion.
	Flow int
}

// Outcome is an injector's verdict for one attempt.
type Outcome struct {
	Fault Fault
	// ExtraWire is additional wire latency (delay and reordering faults:
	// delaying one transfer past its successors reorders arrival).
	ExtraWire sim.Time
	// Duplicates is how many extra copies of the payload arrive after the
	// original, each one wire-time apart.
	Duplicates int
}

// Injector decides the fate of transfer attempts. Implementations must be
// deterministic functions of their own seeded state — the engine is
// single-threaded, so attempts arrive in a reproducible order.
type Injector interface {
	Inspect(a Attempt) Outcome
}

// Net binds a machine to per-hop latency parameters and provides the
// event sequencing for transfers. It is deliberately dumb: all protocol
// intelligence lives in the regime tables of the software stacks above.
type Net struct {
	eng  *sim.Engine
	mach *machine.Machine

	// PerHopUS is added to Wire for every network hop beyond the first
	// (0 for a crossbar model; ~0.04 for a 3-D torus).
	PerHopUS float64
	// IntraNodeFactor scales Wire time for PEs on the same node (shared
	// memory transport; < 1).
	IntraNodeFactor float64

	// injector, when installed, inspects every transfer (the
	// fault-injection plane). nil means a perfectly reliable network.
	injector Injector
}

// SetInjector installs a fault-injection plane on every transfer. Passing
// nil restores the perfectly reliable network.
func (n *Net) SetInjector(i Injector) { n.injector = i }

// Injector returns the installed fault plane (nil when the network is
// reliable).
func (n *Net) Injector() Injector { return n.injector }

// NewNet creates the transfer sequencer.
func NewNet(eng *sim.Engine, mach *machine.Machine, perHopUS, intraNodeFactor float64) *Net {
	if intraNodeFactor <= 0 {
		intraNodeFactor = 1
	}
	return &Net{eng: eng, mach: mach, PerHopUS: perHopUS, IntraNodeFactor: intraNodeFactor}
}

// Engine returns the underlying simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Machine returns the underlying machine.
func (n *Net) Machine() *machine.Machine { return n.mach }

// WireDelay adjusts a regime's raw Wire time for topology: extra hops add
// latency, same-node transfers are discounted.
func (n *Net) WireDelay(src, dst int, wire sim.Time) sim.Time {
	hops := n.mach.Hops(src, dst)
	if hops == 0 {
		return sim.Time(float64(wire) * n.IntraNodeFactor)
	}
	return wire + sim.Microseconds(float64(hops-1)*n.PerHopUS)
}

// TransferHooks receive the milestones of a one-way transfer.
type TransferHooks struct {
	// Kind classifies the transfer for fault-injection matching (see the
	// Kind* constants). Empty is legal: rules that match any kind still
	// apply.
	Kind string
	// Flow is the protocol stream id handed to the injector (CkDirect
	// handle id, reliability sequence number).
	Flow int

	// OnSendDone fires on the sender when the send-side CPU work ends
	// (the local buffer may be reused for eager protocols).
	OnSendDone func()
	// OnDeliver fires at the instant payload bytes are in destination
	// memory, before any receiver CPU work. RDMA detection (sentinel
	// polling) keys off this.
	OnDeliver func()
	// OnArrive fires on the receiver after RecvCPU (+ rendezvous CPU)
	// completes — the point where an RTS would enqueue the message.
	OnArrive func()
	// OnFault observes injected faults on this transfer. It fires at the
	// virtual time the payload would have landed (drop) or at the time
	// the receiver finished discarding the damaged data (corrupt; the
	// receive CPU is still paid when the path has any). When nil, faults
	// are silent — exactly the failure mode a reliability layer exists to
	// detect.
	OnFault func(f Fault)
}

// Transfer runs the full event sequence of one message/put:
//
//	reserve SendCPU on src → [rendezvous latency] → wire → bytes land
//	(OnDeliver) → reserve RecvCPU+RendezvousCPU on dst → OnArrive.
//
// A zero-CPU receive (RDMA put) fires OnArrive at delivery time.
//
// When an Injector is installed it may drop or corrupt the payload
// (suppressing OnDeliver/OnArrive and firing OnFault instead), add wire
// latency, or deliver duplicates (the full OnDeliver/OnArrive sequence
// repeats, one wire-time apart — receivers must tolerate replays).
func (n *Net) Transfer(src, dst int, cost PathCost, hooks TransferHooks) {
	var out Outcome
	if n.injector != nil {
		out = n.injector.Inspect(Attempt{Src: src, Dst: dst, Kind: hooks.Kind, Flow: hooks.Flow})
	}
	srcPE := n.mach.PE(src)
	_, sendEnd := srcPE.Reserve(cost.SendCPU)
	if hooks.OnSendDone != nil {
		n.eng.At(sendEnd, hooks.OnSendDone)
	}
	wire := n.WireDelay(src, dst, cost.Wire) + out.ExtraWire
	deliverAt := sendEnd + cost.Rendezvous + wire

	switch out.Fault {
	case FaultDrop:
		// The bytes evaporate in the network; nothing happens on the
		// receiver. OnFault is the simulation's omniscient observer (used
		// for accounting), not something the protocols can act on.
		if hooks.OnFault != nil {
			n.eng.At(deliverAt, func() { hooks.OnFault(FaultDrop) })
		}
		return
	case FaultCorrupt:
		// Damaged payload: a path with receive-side CPU pays it in full
		// (the receiver processes, checksums and discards the message); a
		// pure RDMA path never sees the bytes (link-layer CRC drops the
		// packet at the NIC).
		n.eng.At(deliverAt, func() {
			recvCPU := cost.RecvCPU + cost.RendezvousCPU
			if recvCPU == 0 {
				if hooks.OnFault != nil {
					hooks.OnFault(FaultCorrupt)
				}
				return
			}
			_, recvEnd := n.mach.PE(dst).Reserve(recvCPU)
			if hooks.OnFault != nil {
				n.eng.At(recvEnd, func() { hooks.OnFault(FaultCorrupt) })
			}
		})
		return
	}

	deliver := func(at sim.Time) {
		n.eng.At(at, func() {
			if hooks.OnDeliver != nil {
				hooks.OnDeliver()
			}
			recvCPU := cost.RecvCPU + cost.RendezvousCPU
			if recvCPU == 0 {
				if hooks.OnArrive != nil {
					hooks.OnArrive()
				}
				return
			}
			_, recvEnd := n.mach.PE(dst).Reserve(recvCPU)
			if hooks.OnArrive != nil {
				n.eng.At(recvEnd, hooks.OnArrive)
			}
		})
	}
	deliver(deliverAt)
	for i := 0; i < out.Duplicates; i++ {
		deliver(deliverAt + sim.Time(i+1)*wire)
	}
}
