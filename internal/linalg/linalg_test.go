package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64()*2 - 1
	}
	return m
}

func TestGemmKnownAnswer(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	Gemm(c, a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("C = %v", c.Data)
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1}})
	c := NewMatrix(1, 1)
	c.Set(0, 0, 10)
	Gemm(c, a, b)
	if c.At(0, 0) != 11 {
		t.Fatalf("C = %v, want 11 (accumulating semantics)", c.At(0, 0))
	}
}

func TestGemmMatchesNaiveAcrossShapes(t *testing.T) {
	r := rng.New(1)
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {1, 64, 1}, {65, 64, 63},
		{64, 64, 64}, {70, 129, 33}, {128, 1, 128},
	}
	for _, s := range shapes {
		a := randomMatrix(r, s[0], s[1])
		b := randomMatrix(r, s[1], s[2])
		c1 := NewMatrix(s[0], s[2])
		c2 := NewMatrix(s[0], s[2])
		Gemm(c1, a, b)
		naiveGemm(c2, a, b)
		if d := MaxAbsDiff(c1, c2); d > 1e-12*float64(s[1]) {
			t.Fatalf("shape %v: blocked vs naive diff %g", s, d)
		}
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Gemm(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestGemmTransposeIdentity(t *testing.T) {
	prop := func(seed uint64, mRaw, kRaw, nRaw uint8) bool {
		r := rng.New(seed)
		m, k, n := int(mRaw)%20+1, int(kRaw)%20+1, int(nRaw)%20+1
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		ab := NewMatrix(m, n)
		Gemm(ab, a, b)
		btat := NewMatrix(n, m)
		Gemm(btat, b.Transpose(), a.Transpose())
		return MaxAbsDiff(ab.Transpose(), btat) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemm is linear — A*(B1+B2) == A*B1 + A*B2.
func TestGemmLinearity(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomMatrix(r, 7, 9)
		b1 := randomMatrix(r, 9, 5)
		b2 := randomMatrix(r, 9, 5)
		sum := NewMatrix(9, 5)
		for i := range sum.Data {
			sum.Data[i] = b1.Data[i] + b2.Data[i]
		}
		lhs := NewMatrix(7, 5)
		Gemm(lhs, a, sum)
		rhs := NewMatrix(7, 5)
		Gemm(rhs, a, b1)
		Gemm(rhs, a, b2)
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(9)
	m := randomMatrix(r, 13, 7)
	if MaxAbsDiff(m, m.Transpose().Transpose()) != 0 {
		t.Fatal("transpose not an involution")
	}
}

func TestGemmFlops(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatalf("GemmFlops = %d", GemmFlops(2, 3, 4))
	}
	// No overflow for OpenAtom-scale products.
	if GemmFlops(100000, 100000, 100000) <= 0 {
		t.Fatal("GemmFlops overflowed")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if math.Abs(m.FrobeniusNorm()-5) > 1e-12 {
		t.Fatalf("norm = %v", m.FrobeniusNorm())
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFillAndAtSet(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Fill(7)
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 || m.At(0, 0) != 7 {
		t.Fatal("Fill/Set/At inconsistent")
	}
}

func BenchmarkGemm256(b *testing.B) {
	r := rng.New(4)
	a := randomMatrix(r, 256, 256)
	bb := randomMatrix(r, 256, 256)
	c := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(c, a, bb)
	}
}
