// Package linalg provides the dense matrix kernels used by the matrix
// multiplication study (§4.2) and the OpenAtom PairCalculator proxy
// (§5.1): a blocked DGEMM, small helpers, and verification utilities.
// Everything is plain Go over row-major float64 slices — the simulation
// charges virtual time for these kernels via the platform's FlopNS, while
// the real computation validates numerical correctness at small scales.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all must share a length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// blockSize is the cache-blocking tile edge for Gemm.
const blockSize = 64

// Gemm computes C += A * B with cache blocking. Shapes must agree:
// A is m×k, B is k×n, C is m×n.
func Gemm(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: Gemm shape mismatch: C %dx%d = A %dx%d * B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < m; ii += blockSize {
		iMax := min(ii+blockSize, m)
		for kk := 0; kk < k; kk += blockSize {
			kMax := min(kk+blockSize, k)
			for jj := 0; jj < n; jj += blockSize {
				jMax := min(jj+blockSize, n)
				for i := ii; i < iMax; i++ {
					arow := a.Data[i*k:]
					crow := c.Data[i*n:]
					for l := kk; l < kMax; l++ {
						av := arow[l]
						if av == 0 {
							continue
						}
						brow := b.Data[l*n:]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// GemmFlops returns the floating point operation count of one
// C += A*B with the given inner dimensions (two flops per
// multiply-accumulate).
func GemmFlops(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two equally shaped matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// naiveGemm is the reference used by tests.
func naiveGemm(c, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := c.At(i, j)
			for l := 0; l < a.Cols; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			c.Set(i, j, s)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
