package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// Reference values for splitmix64 with seed 1234567, from the public
// reference implementation (Vigna).
func TestSplitmix64KnownAnswers(t *testing.T) {
	r := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expected 10000 per bucket; allow 5% deviation.
		if c < 9500 || c > 10500 {
			t.Fatalf("bucket %d has %d draws, expected ~10000", i, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestFillDeterministicAndCoversAllLengths(t *testing.T) {
	for n := 0; n <= 33; n++ {
		a := make([]byte, n)
		b := make([]byte, n)
		New(uint64(n)).Fill(a)
		New(uint64(n)).Fill(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("len %d: byte %d differs", n, i)
			}
		}
	}
}

func TestFillNotAllZero(t *testing.T) {
	buf := make([]byte, 64)
	New(11).Fill(buf)
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("Fill produced all zeros")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	// The child must not replay the parent's remaining stream.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and child streams", same)
	}
}

// TestMul64Property cross-checks the portable 128-bit multiply against
// math/bits over random inputs.
func TestMul64Property(t *testing.T) {
	prop := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}
