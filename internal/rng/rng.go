// Package rng provides a small, fast, deterministic random number
// generator used for workload generation. Every consumer owns its own
// generator seeded explicitly, so simulations replay bit-identically; no
// global state is shared.
//
// The core generator is splitmix64 (Steele, Lea, Vigna), which is
// statistically strong enough for payload fuzzing and parameter jitter and
// has a trivially verifiable reference implementation.
package rng

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New for explicit seeding.
type RNG struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normally distributed value using the
// Marsaglia polar method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Fill fills buf with pseudorandom bytes.
func (r *RNG) Fill(buf []byte) {
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := r.Uint64()
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	if i < len(buf) {
		v := r.Uint64()
		for ; i < len(buf); i++ {
			buf[i] = byte(v)
			v >>= 8
		}
	}
}

// Split derives an independent generator from r, advancing r once. It is
// the supported way to hand sub-streams to parallel workload components
// without correlating them.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) + w0
	return
}
