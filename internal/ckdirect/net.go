package ckdirect

import "fmt"

// Distributed-backend receive path: a CkDirect put that crossed a
// process boundary arrives as a raw-byte frame addressed by handle id.
// The deposit is the same copy + sentinel release-store the real backend
// performs in shared memory — the socket hop replaces the RDMA write,
// and everything after the deposit (the poll pass, detection, the user
// callback) is the unmodified real-backend machinery. No callback
// message, no scheduler involvement on the wire path: the paper's
// unsynchronized one-sided semantics, emulated across processes.

// netPutSink deposits one inbound put frame. It runs on a connection
// reader goroutine; the deposit itself is safe there because the only
// synchronization with the receiving PE is the sentinel release-store,
// exactly as when a sender PE's goroutine deposits in-process. The work
// credit is taken before the sentinel publishes the payload (same
// discipline as the real backend's put seam), so termination cannot
// race a landed-but-undetected put.
func (m *Manager) netPutSink(id int64, payload []byte) {
	if id < 0 || id >= int64(len(m.handles)) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for unknown handle %d (have %d)", id, len(m.handles)))
		return
	}
	h := m.handles[id]
	if !m.rts.HostsPE(h.recvPE) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d on PE %d, not hosted here", id, h.recvPE))
		return
	}
	want := h.recvBuf.Size()
	if h.strided != nil {
		want = h.strided.TotalBytes()
	}
	if len(payload) != want {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d carries %d bytes, transfer is %d", id, len(payload), want))
		return
	}
	m.net.PutIssued()
	m.depositBytes(h, payload)
	m.net.Kick(h.recvPE)
}
