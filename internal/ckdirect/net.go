package ckdirect

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
)

// Distributed-backend receive path: a CkDirect put that crossed a
// process boundary arrives as a raw-byte frame addressed by handle id.
// The deposit is the same copy + sentinel release-store the real backend
// performs in shared memory — the socket hop replaces the RDMA write,
// and everything after the deposit (the poll pass, detection, the user
// callback) is the unmodified real-backend machinery. No callback
// message, no scheduler involvement on the wire path: the paper's
// unsynchronized one-sided semantics, emulated across processes.

// netPutSink deposits one inbound put frame. It runs on a connection
// reader goroutine; the deposit itself is safe there because the only
// synchronization with the receiving PE is the sentinel release-store,
// exactly as when a sender PE's goroutine deposits in-process. The work
// credit is taken before the sentinel publishes the payload (same
// discipline as the real backend's put seam), so termination cannot
// race a landed-but-undetected put.
func (m *Manager) netPutSink(id int64, payload []byte) {
	if id < 0 || id >= int64(len(m.handles)) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for unknown handle %d (have %d)", id, len(m.handles)))
		return
	}
	h := m.handles[id]
	if !m.rts.HostsPE(h.recvPE) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d on PE %d, not hosted here", id, h.recvPE))
		return
	}
	want := h.recvBuf.Size()
	if h.strided != nil {
		want = h.strided.TotalBytes()
	}
	if len(payload) != want {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d carries %d bytes, transfer is %d", id, len(payload), want))
		return
	}
	m.net.PutIssued()
	m.depositBytes(h, payload)
	m.net.Kick(h.recvPE)
}

// netPutStream is the zero-copy inbound put path: the frame reader has
// parsed the put's meta and its payload bytes are still on the stream,
// so they are read directly into the preregistered destination buffer —
// no intermediate slice exists anywhere between the kernel socket
// buffer and receiver memory. The final 8 bytes stage in the handle's
// tail scratch and publish via the sentinel release-store only after
// every other byte has landed, preserving the acquire/release pairing
// with the receiver's poll pass.
//
// A put that fails validation consumes exactly size bytes (the stream
// stays in sync) and is reported out of band; only an I/O failure —
// after which the stream position is unknowable — returns an error,
// which kills the connection. The work credit is taken only once the
// full payload has been read, immediately before the publishing store:
// until then the global sent/recv counters are unmatched, so
// termination cannot conclude around a half-streamed put.
func (m *Manager) netPutStream(id int64, size int, r io.Reader) error {
	if id < 0 || id >= int64(len(m.handles)) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for unknown handle %d (have %d)", id, len(m.handles)))
		return discardPut(r, size)
	}
	h := m.handles[id]
	if !m.rts.HostsPE(h.recvPE) {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d on PE %d, not hosted here", id, h.recvPE))
		return discardPut(r, size)
	}
	want := h.recvBuf.Size()
	if h.strided != nil {
		want = h.strided.TotalBytes()
	}
	if size != want {
		m.rts.ReportError(fmt.Errorf("ckdirect: wire put for handle %d carries %d bytes, transfer is %d", id, size, want))
		return discardPut(r, size)
	}
	last, err := m.depositStream(h, r)
	if err != nil {
		return err
	}
	m.net.PutIssued()
	atomic.StoreUint64(h.sw, last)
	m.net.Kick(h.recvPE)
	return nil
}

// depositStream lands the streamed payload into h's registered receive
// buffer, holding back the transfer's final word: it returns that word
// for the caller to release-store, so the sentinel position cannot leave
// the out-of-band state before the rest of the payload is in place.
func (m *Manager) depositStream(h *Handle, r io.Reader) (uint64, error) {
	dst := h.recvBuf.Bytes()
	if h.strided == nil {
		pos := len(dst) - 8
		if _, err := io.ReadFull(r, dst[:pos]); err != nil {
			return 0, err
		}
		if _, err := io.ReadFull(r, h.tail8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(h.tail8[:]), nil
	}
	l := h.strided
	for b := 0; b < l.Count-1; b++ {
		at := l.Offset + b*l.Stride
		if _, err := io.ReadFull(r, dst[at:at+l.BlockLen]); err != nil {
			return 0, err
		}
	}
	// Last block: all but its final word directly, the final word into
	// the tail scratch. BlockLen >= 8 is guaranteed by layout validation
	// (SubWordError), so the sub-word slices cannot go negative.
	at := l.Offset + (l.Count-1)*l.Stride
	if _, err := io.ReadFull(r, dst[at:at+l.BlockLen-8]); err != nil {
		return 0, err
	}
	if _, err := io.ReadFull(r, h.tail8[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(h.tail8[:]), nil
}

// discardPut consumes exactly size payload bytes of a rejected put so
// the frame stream stays in sync; its error is a stream failure.
func discardPut(r io.Reader, size int) error {
	_, err := io.CopyN(io.Discard, r, int64(size))
	return err
}

// netPutDoorbell completes a direct-deposit put: the sender already
// memcpy'd the body into this handle's receive buffer through the
// shared-memory arena, so all that remains is the sentinel
// release-store — the exact store a real RDMA NIC's last write would
// be. The work credit is taken before the publishing store, same as
// every other inbound-put path, so termination cannot race a
// landed-but-undetected put.
func (m *Manager) netPutDoorbell(id int64, last uint64) {
	if id < 0 || id >= int64(len(m.handles)) {
		m.rts.ReportError(fmt.Errorf("ckdirect: shm doorbell for unknown handle %d (have %d)", id, len(m.handles)))
		return
	}
	h := m.handles[id]
	if !m.rts.HostsPE(h.recvPE) {
		m.rts.ReportError(fmt.Errorf("ckdirect: shm doorbell for handle %d on PE %d, not hosted here", id, h.recvPE))
		return
	}
	m.net.PutIssued()
	atomic.StoreUint64(h.sw, last)
	m.net.Kick(h.recvPE)
}

// placeRecvInShm moves a handle's receive buffer into the shm arena
// shared with the sending rank, so that rank's puts become one memcpy
// plus a doorbell instead of a framed payload. Runs on the receiving
// rank at AssocLocal time (SPMD setup executes AssocLocal everywhere,
// so by then the handle knows its sender). Best-effort: any reason not
// to — strided layout, in-process sender, no shm link, arena full —
// leaves the handle on its heap buffer and every transport path still
// works, just without the zero-frame deposit.
func (m *Manager) placeRecvInShm(h *Handle) {
	if m.net == nil || h.strided != nil || !m.rts.HostsPE(h.recvPE) || m.rts.HostsPE(h.sendPE) {
		return
	}
	size := h.recvBuf.Size()
	if size < 8 || size%8 != 0 || !h.recvBuf.Rebindable() {
		return
	}
	rank := m.net.RankOf(h.sendPE)
	buf, off, ok := m.net.AllocPutRegion(rank, size)
	if !ok {
		return
	}
	if err := h.recvBuf.Rebind(buf); err != nil {
		return
	}
	// The sentinel pointer still aims at the old backing array; rebuild
	// it over the arena bytes and re-stamp, then tell the sender where
	// the buffer lives. A put racing ahead of the registration just
	// takes the frame path — into this same rebound buffer.
	sw, err := h.recvBuf.Uint64At(size - 8)
	if err != nil {
		return
	}
	h.sw = sw
	m.writeSentinel(h)
	m.net.RegisterPutBuffer(rank, int64(h.id), off, int64(size))
}
