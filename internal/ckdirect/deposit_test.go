package ckdirect

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// newDepositRig builds a real-backend manager whose runtime is never
// started: depositBytes and depositStream run synchronously on the
// caller, which is all these oracle tests need. The real backend is
// required so handles carry a live sentinel pointer (h.sw).
func newDepositRig(t *testing.T) (*charm.RTS, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	plat := netmodel.AbeIB
	mach, net := plat.BuildMachine(eng, 2)
	rts := charm.NewRTS(eng, mach, net, plat, trace.NewRecorder(), charm.Options{Backend: charm.RealBackend})
	return rts, NewManager(rts)
}

func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i*131+7) ^ seed
	}
}

// TestDepositStreamMatchesDepositBytes is the zero-copy oracle: the
// streaming deposit (payload read straight off the wire into the
// registered receive buffer, final word staged in tail8 and returned for
// the caller's release-store) must leave the destination bit-identical
// to the two-copy reference path depositBytes, for both contiguous and
// strided layouts. Untouched gap bytes in the strided region must also
// survive both paths unchanged.
func TestDepositStreamMatchesDepositBytes(t *testing.T) {
	rts, m := newDepositRig(t)
	mach := rts.Machine()
	noop := func(*charm.Ctx) {}

	t.Run("contiguous", func(t *testing.T) {
		const size = 256
		recvA := mach.AllocRegion(1, size, false)
		recvB := mach.AllocRegion(1, size, false)
		hA, err := m.CreateHandle(1, recvA, oob, noop)
		if err != nil {
			t.Fatal(err)
		}
		hB, err := m.CreateHandle(1, recvB, oob, noop)
		if err != nil {
			t.Fatal(err)
		}

		payload := make([]byte, size)
		fillPattern(payload, 0x5A)

		m.depositBytes(hA, payload)

		last, err := m.depositStream(hB, bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("depositStream: %v", err)
		}
		atomic.StoreUint64(hB.sw, last)

		if !bytes.Equal(recvA.Bytes(), recvB.Bytes()) {
			t.Fatal("streamed deposit differs from two-copy deposit")
		}
		if !bytes.Equal(recvA.Bytes(), payload) {
			t.Fatal("contiguous deposit does not reproduce the payload")
		}
	})

	t.Run("strided", func(t *testing.T) {
		const size = 256
		layout := StridedLayout{Offset: 8, BlockLen: 24, Stride: 40, Count: 4}
		recvA := mach.AllocRegion(1, size, false)
		recvB := mach.AllocRegion(1, size, false)
		// Identical background pattern so gap bytes are comparable.
		fillPattern(recvA.Bytes(), 0xC3)
		fillPattern(recvB.Bytes(), 0xC3)
		before := append([]byte(nil), recvA.Bytes()...)

		shA, err := m.CreateStridedHandle(1, recvA, layout, oob, noop)
		if err != nil {
			t.Fatal(err)
		}
		shB, err := m.CreateStridedHandle(1, recvB, layout, oob, noop)
		if err != nil {
			t.Fatal(err)
		}

		payload := make([]byte, layout.TotalBytes())
		fillPattern(payload, 0x99)

		m.depositBytes(shA.Handle, payload)

		last, err := m.depositStream(shB.Handle, bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("depositStream: %v", err)
		}
		atomic.StoreUint64(shB.sw, last)

		if !bytes.Equal(recvA.Bytes(), recvB.Bytes()) {
			t.Fatal("streamed strided deposit differs from two-copy deposit")
		}
		// Every block must hold its slice of the payload; every gap byte
		// must be untouched (except the sentinel word CreateStridedHandle
		// stamped, which both paths overwrite identically — covered by
		// the equality check above).
		got := recvA.Bytes()
		for b := 0; b < layout.Count; b++ {
			at := layout.Offset + b*layout.Stride
			want := payload[b*layout.BlockLen : (b+1)*layout.BlockLen]
			if !bytes.Equal(got[at:at+layout.BlockLen], want) {
				t.Fatalf("block %d corrupted after deposit", b)
			}
		}
		for i := range got {
			inBlock := false
			for b := 0; b < layout.Count; b++ {
				at := layout.Offset + b*layout.Stride
				if i >= at && i < at+layout.BlockLen {
					inBlock = true
					break
				}
			}
			if !inBlock && got[i] != before[i] {
				t.Fatalf("gap byte %d changed: %#x -> %#x", i, before[i], got[i])
			}
		}
	})
}
