// Package ckdirect implements the paper's contribution: CkDirect, a
// persistent, one-way, one-sided memory-to-memory channel between two
// chares in the Charm++ runtime (Bohm et al., ICPP 2009, §2).
//
// A channel is set up in two steps: the receiver creates a Handle over
// its destination buffer (CreateHandle), the handle travels to the sender
// (in-simulation this is a pointer hand-off; the paper ships it in a
// message), and the sender binds a local source buffer (AssocLocal). The
// sender may then Put repeatedly — one message in flight per channel —
// with no per-message synchronization: the receiver learns of arrival via
// a plain function callback, never through the scheduler.
//
// Two backend behaviours are modelled, selected by the platform:
//
//   - Infiniband (§2.1): the put is a true RDMA write. The receiving RTS
//     keeps a polling queue; CreateHandle stamps an out-of-band 8-byte
//     pattern at the end of the receive buffer, and a poll pass detects
//     completion when the last double word changes. ReadyMark re-arms the
//     sentinel; ReadyPollQ re-inserts the handle into the polling queue.
//     Polling costs CPU per handle per scheduler pass — the §5.2 overhead.
//
//   - Blue Gene/P (§2.2): the put is a DCMF two-sided send whose Info
//     header carries the full receive context; the DCMF receive completion
//     callback invokes the user callback directly. There is no polling and
//     the Ready calls have no effect.
package ckdirect

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/sim"
)

// Setup-time CPU costs (registration with the NIC / DCMF request-state
// allocation). These happen once per channel, outside any measured loop.
const (
	createCPUUS = 1.5
	assocCPUUS  = 1.5
)

// State is the lifecycle position of a channel endpoint on the receiver.
type State int

// Channel states. The legal cycle on Infiniband is
// Armed → (put lands) → Fired → (ReadyMark) → Marked → (ReadyPollQ) → Armed;
// Ready performs Mark and PollQ together. On Blue Gene/P delivery runs
// Armed → Fired and ReadyMark/ReadyPollQ return it to Armed without any
// machinery.
const (
	// Armed: sentinel set; data may arrive. On IB the handle may or may
	// not currently be in the polling queue (ReadyPollQ controls that).
	Armed State = iota
	// Fired: data arrived and the callback ran; the buffer holds live
	// data the application has not released yet.
	Fired
	// Marked: ReadyMark re-armed the sentinel but the handle is not yet
	// being polled.
	Marked
)

func (s State) String() string {
	switch s {
	case Armed:
		return "Armed"
	case Fired:
		return "Fired"
	case Marked:
		return "Marked"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Handle is one CkDirect channel. It is created by the receiver and
// completed by the sender's AssocLocal.
type Handle struct {
	id  int
	mgr *Manager

	recvPE  int
	recvBuf *machine.Region
	oob     uint64
	cb      func(ctx *charm.Ctx)

	sendPE  int
	sendBuf *machine.Region

	// putOp is the prebuilt transfer op for the real and net backends,
	// assembled once at AssocLocal so the put fast path allocates
	// nothing: the Execute/WirePayload closures and the receiver Ctx
	// would otherwise be fresh heap objects on every Put.
	putOp   charm.PutOp
	recvCtx *charm.Ctx

	// tail8 stages the final 8 bytes of a streamed inbound put: the
	// sentinel word must not land in the buffer until every other byte
	// has, so the stream deposit parks it here before the publishing
	// release-store. Only the owning connection's reader touches it
	// (one sender rank per channel).
	tail8 [8]byte

	state   State
	inPollQ bool
	pollIdx int // position in the PE's polling tier while inPollQ
	// pollCold marks which tier of the PE's poll set holds the handle:
	// hot handles are scanned every scheduler pass, cold ones only on the
	// periodic full scan (real backend; see real.go). pollMisses counts
	// consecutive hot scans that found the sentinel unchanged — crossing
	// pollDemoteAfter moves the handle cold so long-lived idle channels
	// stop taxing every scheduler iteration.
	pollCold   bool
	pollMisses int
	inFlight   bool
	// sw points at the sentinel word for atomic access (real backend
	// only): release-stored by the sender's put, acquire-loaded by the
	// receiver's poll pass.
	sw *uint64
	// strided, when set, scatters each put across the destination per
	// the layout (§6 extension; see strided.go).
	strided *StridedLayout
	// deliveryWatch holds one-shot callbacks fired when the next payload
	// lands (multicast completion tracking).
	deliveryWatch []func()
	// pendingDeliver records data that landed while the handle was not
	// in the polling queue (between ReadyMark and ReadyPollQ); ReadyPollQ
	// then detects it immediately (paper §2.1).
	pendingDeliver bool

	puts int64
	// delivered is the sequence number (1-based put ordinal) of the last
	// payload accepted into receiver memory. With one put in flight per
	// channel it doubles as the count of completed deliveries; the
	// sequence form lets replayed deliveries (duplicate faults, recovery
	// reissues racing the original) be recognized and discarded.
	delivered int64

	// Stall-watchdog state (see watchdog.go).
	wdTimer           *sim.Event
	reissues          int
	collisionReported bool
}

// ID returns the handle's identifier (unique per Manager).
func (h *Handle) ID() int { return h.id }

// State returns the receiver-side channel state.
func (h *Handle) State() State { return h.state }

// InFlight reports whether a put is currently in flight.
func (h *Handle) InFlight() bool { return h.inFlight }

// Puts returns how many puts were issued on this channel.
func (h *Handle) Puts() int64 { return h.puts }

// Delivered returns how many puts have completed delivery.
func (h *Handle) Delivered() int64 { return h.delivered }

// pollSet is one PE's polling queue, split into two tiers. hot is scanned
// on every scheduler pass; cold holds handles demoted after a long run of
// missed scans and is visited only every pollColdEvery-th pass (and on
// every full scan — before a worker parks and right after it wakes), so a
// large population of long-idle channels costs the per-pass loop nothing.
// Order within a tier is irrelevant: only the total count taxes the
// simulated scheduler.
type pollSet struct {
	hot, cold []*Handle
	passes    uint64 // realPoll pass counter, paces the cold-tier rescan
}

// execRT is the live-execution seam CkDirect needs from a non-simulated
// backend: installing the sentinel poll pass into the scheduler loops
// and returning put work credits after detection. Both the in-process
// realrt runtime and the distributed netrt runtime satisfy it.
type execRT interface {
	SetPoll(fn func(pe int, full bool) bool)
	PutDetected()
}

// Manager owns CkDirect state for one runtime: per-PE polling queues and
// the scheduler tax hook.
type Manager struct {
	rts    *charm.RTS
	nextID int
	polled []pollSet // per PE

	// handles registers every created handle by id (id == index). The
	// distributed backend routes inbound put frames through it: the
	// handle id is the channel's wire identity, valid across processes
	// because SPMD setup creates handles in the same order everywhere.
	handles []*Handle

	// rt is the live-execution runtime under the real and net backends
	// (nil under sim); detection then happens in realPoll instead of
	// simulated events.
	rt execRT

	// net is the distributed runtime under the net backend (nil
	// otherwise): puts to remote PEs ship their bytes, inbound put
	// frames deposit through netPutSink.
	net *netrt.Runtime

	// wd, when non-nil, arms a virtual-time deadline per in-flight put
	// (see watchdog.go).
	wd *Watchdog

	// get-model state (see get.go).
	getHandles  []*GetHandle
	getSignalEP charm.EP
}

// NewManager attaches CkDirect to a runtime. On platforms with a polling
// implementation it installs the polling tax into the scheduler.
func NewManager(rts *charm.RTS) *Manager {
	m := &Manager{
		rts:         rts,
		polled:      make([]pollSet, rts.Machine().NumPEs()),
		getSignalEP: -1,
	}
	if rt := rts.Real(); rt != nil {
		// Real backend: the scheduler loops poll for arrivals directly —
		// no modelled tax, the scan costs what it costs.
		m.rt = rt
		rt.SetPoll(m.realPoll)
		return m
	}
	if nrt := rts.NetRT(); nrt != nil {
		// Distributed backend: local detection is the real backend's poll
		// pass verbatim; puts arriving from other processes are deposited
		// into the registered buffer by netPutSink.
		m.rt = nrt
		m.net = nrt
		nrt.SetPoll(m.realPoll)
		nrt.SetPutSink(m.netPutSink)
		nrt.SetPutStream(m.netPutStream)
		nrt.SetPutDoorbell(m.netPutDoorbell)
		return m
	}
	plat := rts.Platform()
	if !plat.CkdRecvIsCallback && plat.PollPerHandleNS > 0 {
		rts.SetPollTax(func(pe int) sim.Time {
			return sim.Nanoseconds(plat.PollPerHandleNS * float64(m.PolledOn(pe)))
		})
	}
	return m
}

// RTS returns the attached runtime.
func (m *Manager) RTS() *charm.RTS { return m.rts }

// PolledOn reports how many handles PE pe is currently polling, across
// both tiers.
func (m *Manager) PolledOn(pe int) int {
	return len(m.polled[pe].hot) + len(m.polled[pe].cold)
}

// CreateHandle is called by the receiver: it registers the receive buffer
// with the network layer, stamps the out-of-band pattern into its last 8
// bytes, installs the arrival callback, and (on polling platforms) inserts
// the handle into the PE's polling queue.
//
// oob is the double-word pattern the user guarantees will never appear as
// the last word of received data (e.g. a NaN payload in an array of
// doubles).
func (m *Manager) CreateHandle(pe int, buf *machine.Region, oob uint64, cb func(ctx *charm.Ctx)) (*Handle, error) {
	return m.createHandle(pe, buf, oob, cb, nil)
}

func (m *Manager) createHandle(pe int, buf *machine.Region, oob uint64, cb func(ctx *charm.Ctx), layout *StridedLayout) (*Handle, error) {
	if buf == nil {
		return nil, fmt.Errorf("ckdirect: CreateHandle with nil buffer")
	}
	if buf.PE().ID() != pe {
		return nil, fmt.Errorf("ckdirect: buffer lives on PE %d, handle created on PE %d", buf.PE().ID(), pe)
	}
	if !buf.Virtual() && buf.Size() < 8 {
		return nil, &SubWordError{What: "receive buffer", Bytes: buf.Size()}
	}
	if cb == nil {
		return nil, fmt.Errorf("ckdirect: nil callback")
	}
	h := &Handle{
		id:      m.nextID,
		mgr:     m,
		recvPE:  pe,
		recvBuf: buf,
		oob:     oob,
		cb:      cb,
		sendPE:  -1,
		state:   Armed,
		strided: layout,
	}
	m.nextID++
	if m.rt != nil {
		// Real backend: the sentinel word must exist for real and be
		// addressable by 64-bit atomics.
		if buf.Virtual() {
			return nil, fmt.Errorf("ckdirect: handle %d needs a real buffer on the real backend", h.id)
		}
		pos := buf.Size() - 8
		if layout != nil {
			pos = stridedSentinelPos(layout)
		}
		sw, err := buf.Uint64At(pos)
		if err != nil {
			return nil, fmt.Errorf("ckdirect: handle %d sentinel: %v (size the buffer in 8-byte words)", h.id, err)
		}
		h.sw = sw
		// One Ctx per handle: realDetect hands the same (stateless)
		// context to every callback instead of allocating one per
		// delivery.
		h.recvCtx = m.rts.CtxOn(pe)
	}
	m.handles = append(m.handles, h)
	m.rts.ChargeOn(pe, sim.Microseconds(createCPUUS))
	buf.SetRegistered(true)
	m.writeSentinel(h)
	if m.usesPolling() {
		m.pollInsert(h)
	}
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.handles", 1)
	}
	return h, nil
}

// AssocLocal is called by the sender to bind its source buffer to the
// channel. The same source region may be associated with several handles
// (one copy of the data fanned out to many receivers, paper §2).
func (m *Manager) AssocLocal(h *Handle, pe int, src *machine.Region) error {
	if h.sendPE >= 0 {
		return fmt.Errorf("ckdirect: handle %d already associated", h.id)
	}
	if src == nil {
		return fmt.Errorf("ckdirect: AssocLocal with nil buffer")
	}
	if src.PE().ID() != pe {
		return fmt.Errorf("ckdirect: source buffer lives on PE %d, AssocLocal on PE %d", src.PE().ID(), pe)
	}
	if m.rt != nil {
		if src.Virtual() {
			return fmt.Errorf("ckdirect: handle %d needs a real source buffer on the real backend", h.id)
		}
		want := h.recvBuf.Size()
		if h.strided != nil {
			want = h.strided.TotalBytes()
		}
		if src.Size() != want {
			return fmt.Errorf("ckdirect: handle %d source is %d bytes, destination transfer is %d (the real put lands the source's final word in the sentinel position)",
				h.id, src.Size(), want)
		}
	}
	h.sendPE = pe
	h.sendBuf = src
	if m.rt != nil {
		// Prebuild the transfer op: Put is the hot path, and fresh
		// closures per call were its only allocations (realPut only
		// patches in the per-call OnSendDone hook).
		h.putOp = charm.PutOp{
			SrcPE: h.sendPE,
			DstPE: h.recvPE,
			Hooks: netmodel.TransferHooks{
				Kind: netmodel.KindCkdPut,
				Flow: h.id,
			},
			Execute:     func() { m.realDeposit(h) },
			WireHandle:  h.id,
			WirePayload: func() []byte { return h.sendBuf.Bytes() },
		}
	}
	m.rts.ChargeOn(pe, sim.Microseconds(assocCPUUS))
	src.SetRegistered(true)
	if m.net != nil {
		// Now that the channel knows its sender, the receiving rank can
		// move its destination buffer into the shm arena shared with
		// that sender (no-op when there is no such arena).
		m.placeRecvInShm(h)
	}
	return nil
}

// usesPolling reports whether this CkDirect detects completion by polling
// a sentinel (Infiniband) rather than a completion callback (Blue
// Gene/P). The real backend always polls: the sentinel IS its delivery
// mechanism, whatever platform table prices the run.
func (m *Manager) usesPolling() bool {
	return m.rt != nil || !m.rts.Platform().CkdRecvIsCallback
}

// UsesPolling is the exported form: applications with platform-dependent
// phase structure (OpenAtom's arm broadcast) consult the manager rather
// than the platform flag so the same code is correct on the real backend.
func (m *Manager) UsesPolling() bool { return m.usesPolling() }

// writeSentinel stamps the out-of-band pattern into the last 8 bytes of
// the transfer's final destination (the region end for contiguous
// channels, the tail of the last block for strided ones) — detection
// later compares against it.
func (m *Manager) writeSentinel(h *Handle) {
	if h.sw != nil {
		// Real backend: an atomic store keeps the re-arm write ordered
		// against the concurrent acquire-loads of this PE's poll pass and
		// the sender's next release-store (which the application's phase
		// structure orders after this call).
		atomic.StoreUint64(h.sw, h.oob)
		return
	}
	b := h.recvBuf.Bytes()
	if len(b) < 8 {
		return
	}
	pos := len(b) - 8
	if h.strided != nil {
		pos = stridedSentinelPos(h.strided)
	}
	binary.LittleEndian.PutUint64(b[pos:], h.oob)
}

// sentinelCleared reports whether the sentinel double word no longer
// equals the out-of-band pattern.
func (m *Manager) sentinelCleared(h *Handle) bool {
	b := h.recvBuf.Bytes()
	if len(b) < 8 {
		// Virtual region: the delivery flag stands in for the byte check
		// with identical timing.
		return h.pendingDeliver
	}
	pos := len(b) - 8
	if h.strided != nil {
		pos = stridedSentinelPos(h.strided)
	}
	return binary.LittleEndian.Uint64(b[pos:]) != h.oob
}

// depositPayload moves put data into receiver memory, honouring a
// strided destination layout when present.
func (m *Manager) depositPayload(h *Handle) {
	if h.strided == nil {
		h.sendBuf.CopyTo(h.recvBuf)
		return
	}
	src, dst := h.sendBuf.Bytes(), h.recvBuf.Bytes()
	if src == nil || dst == nil {
		return
	}
	scatter(src, dst, h.strided)
}

// pollInsert (re)arms polling for h. Handles always enter the hot tier:
// an application that just called ReadyPollQ expects the next put soon,
// and demotion re-sorts genuinely idle channels out on its own.
func (m *Manager) pollInsert(h *Handle) {
	if h.inPollQ {
		return
	}
	h.inPollQ = true
	h.pollCold = false
	h.pollMisses = 0
	ps := &m.polled[h.recvPE]
	h.pollIdx = len(ps.hot)
	ps.hot = append(ps.hot, h)
}

// pollRemove detaches h from its tier in O(1) by swapping the last entry
// into its slot — order carries no meaning (only the total count taxes
// the scheduler), and the linear scan this replaces made teardown of
// large handle populations quadratic.
func (m *Manager) pollRemove(h *Handle) {
	if !h.inPollQ {
		return
	}
	h.inPollQ = false
	ps := &m.polled[h.recvPE]
	tier := &ps.hot
	if h.pollCold {
		tier = &ps.cold
	}
	q := *tier
	i, last := h.pollIdx, len(q)-1
	q[i] = q[last]
	q[i].pollIdx = i
	q[last] = nil
	*tier = q[:last]
}

// pollDemote moves a long-idle handle from the hot tier to the cold one.
// Real backend only, called from the owning PE's poll pass.
func (m *Manager) pollDemote(h *Handle) {
	if !h.inPollQ || h.pollCold {
		return
	}
	m.pollRemove(h)
	h.inPollQ = true
	h.pollCold = true
	h.pollMisses = 0
	ps := &m.polled[h.recvPE]
	h.pollIdx = len(ps.cold)
	ps.cold = append(ps.cold, h)
}
