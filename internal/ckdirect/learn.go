package ckdirect

import (
	"sort"

	"repro/internal/charm"
	"repro/internal/sim"
)

// Learner is the last §6 extension: "the eventual inclusion of CkDirect
// into an automatic learning framework which will create persistent
// channels where appropriate". It observes the message traffic of a
// running application and identifies *stable flows* — (sender PE,
// receiver PE, array, entry method) tuples that repeatedly carry the same
// payload size — which are exactly the communications CkDirect channels
// can replace (§2: "iterative applications with stable communication
// patterns").
//
// The learner is an advisor: it reports candidate channels ranked by
// estimated savings, computed from the platform's calibrated cost tables
// (message path minus put path, including the scheduler dispatch the put
// avoids). Rewiring is left to the application, which alone knows its
// synchronization structure — the precondition CkDirect's correctness
// rests on.
type Learner struct {
	mgr *Manager
	// MinRepeats is how many consecutive same-size observations make a
	// flow "stable" (default 3 — a warmup iteration plus two repeats).
	MinRepeats int

	flows map[flowKey]*flowStat
}

type flowKey struct {
	src, dst int
	array    string
	ep       charm.EP
}

type flowStat struct {
	size    int
	repeats int   // consecutive same-size messages
	total   int64 // all messages on this flow
}

// Suggestion is one candidate channel.
type Suggestion struct {
	SrcPE, DstPE int
	Array        string
	EP           charm.EP
	Size         int
	// Messages is how many messages the flow carried during observation.
	Messages int64
	// SavingPerMsg is the modelled one-way cost difference between the
	// message path and a CkDirect put at this size.
	SavingPerMsg sim.Time
}

// NewLearner attaches a learner to the runtime; it starts observing
// immediately.
func NewLearner(mgr *Manager) *Learner {
	l := &Learner{mgr: mgr, MinRepeats: 3, flows: make(map[flowKey]*flowStat)}
	mgr.rts.SetSendObserver(l.observe)
	return l
}

// Detach stops observing.
func (l *Learner) Detach() { l.mgr.rts.SetSendObserver(nil) }

func (l *Learner) observe(src, dst int, array string, ep charm.EP, size int) {
	k := flowKey{src: src, dst: dst, array: array, ep: ep}
	st, ok := l.flows[k]
	if !ok {
		st = &flowStat{size: size}
		l.flows[k] = st
	}
	st.total++
	if st.size == size {
		st.repeats++
	} else {
		// Size changed: the flow is not (currently) stable. The paper's
		// target class tolerates patterns that change "infrequently and
		// slowly", so restart the stability count rather than blacklist.
		st.size = size
		st.repeats = 1
	}
}

// Flows reports how many distinct flows have been observed.
func (l *Learner) Flows() int { return len(l.flows) }

// Advise returns the stable flows as channel suggestions, sorted by total
// modelled savings (descending), then deterministically by key.
func (l *Learner) Advise() []Suggestion {
	plat := l.mgr.rts.Platform()
	detect := sim.Microseconds(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
	if plat.CkdRecvIsCallback {
		detect = 0
	}
	var out []Suggestion
	for k, st := range l.flows {
		if st.repeats < l.MinRepeats {
			continue
		}
		msgCost := plat.CharmMsg.Resolve(st.size+plat.HeaderBytes).OneWay() + sim.Microseconds(plat.SchedUS)
		putCost := plat.CkdPut.Resolve(st.size).OneWay() + detect
		saving := msgCost - putCost
		if saving <= 0 {
			continue
		}
		out = append(out, Suggestion{
			SrcPE: k.src, DstPE: k.dst,
			Array: k.array, EP: k.ep,
			Size:         st.size,
			Messages:     st.total,
			SavingPerMsg: saving,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si := int64(out[i].SavingPerMsg) * out[i].Messages
		sj := int64(out[j].SavingPerMsg) * out[j].Messages
		if si != sj {
			return si > sj
		}
		if out[i].Array != out[j].Array {
			return out[i].Array < out[j].Array
		}
		if out[i].SrcPE != out[j].SrcPE {
			return out[i].SrcPE < out[j].SrcPE
		}
		if out[i].DstPE != out[j].DstPE {
			return out[i].DstPE < out[j].DstPE
		}
		return out[i].EP < out[j].EP
	})
	return out
}
