package ckdirect

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Strided channels implement the first of the paper's §6 extensions
// ("support for ... strided communication patterns"): a put whose
// destination is a regular strided region — count blocks of blockLen
// bytes, stride bytes apart — like a column panel of a row-major matrix.
// ARMCI offers the same shape for its RMA puts (§2.3).
//
// The source stays contiguous (the sender packs once into its registered
// buffer, or already has the data contiguous); the scatter happens on the
// receiver side "in hardware": the simulated HCA walks the destination
// descriptor, so no receiver CPU is charged beyond the usual detection.
// The sender pays a small per-block descriptor-build cost.

// StridedLayout describes the destination scatter pattern.
type StridedLayout struct {
	// Offset is the byte offset of the first block within the region.
	Offset int
	// BlockLen is the length of each contiguous block in bytes.
	BlockLen int
	// Stride is the distance between block starts in bytes
	// (Stride >= BlockLen).
	Stride int
	// Count is the number of blocks.
	Count int
}

// TotalBytes returns the payload size the layout transfers.
func (l StridedLayout) TotalBytes() int { return l.BlockLen * l.Count }

// Validate checks layout sanity against a region size. Blocks shorter
// than the 8-byte sentinel word are rejected with a *SubWordError: the
// sentinel lives in the last 8 bytes of the last block, so a sub-word
// block would place it across neighbouring memory — and on the real
// backend the deposit path would slice the source at a negative index.
func (l StridedLayout) Validate(regionSize int) error {
	if l.BlockLen <= 0 || l.Count <= 0 {
		return fmt.Errorf("ckdirect: strided layout with non-positive block/count: %+v", l)
	}
	if l.BlockLen < 8 {
		return &SubWordError{What: "strided block", Bytes: l.BlockLen}
	}
	if l.Stride < l.BlockLen {
		return fmt.Errorf("ckdirect: stride %d smaller than block %d", l.Stride, l.BlockLen)
	}
	if l.Offset < 0 {
		return fmt.Errorf("ckdirect: negative offset %d", l.Offset)
	}
	last := l.Offset + (l.Count-1)*l.Stride + l.BlockLen
	if last > regionSize {
		return fmt.Errorf("ckdirect: strided layout [..%d] exceeds region of %d bytes", last, regionSize)
	}
	return nil
}

// descriptorCostUS is the sender CPU per destination block (building the
// scatter descriptor for the NIC).
const descriptorCostUS = 0.05

// StridedHandle is a channel whose destination is strided. It wraps a
// plain Handle: the sentinel lives in the last 8 bytes of the *last
// block*, which is the last byte of the transfer to land under in-order
// delivery.
type StridedHandle struct {
	*Handle
	layout StridedLayout
}

// Layout returns the destination layout.
func (h *StridedHandle) Layout() StridedLayout { return h.layout }

// CreateStridedHandle is CreateHandle for a strided destination. buf is
// the whole destination region (e.g. the full matrix); layout selects the
// blocks the channel writes.
func (m *Manager) CreateStridedHandle(pe int, buf *machine.Region, layout StridedLayout, oob uint64, cb func(ctx *charm.Ctx)) (*StridedHandle, error) {
	if buf == nil {
		return nil, fmt.Errorf("ckdirect: CreateStridedHandle with nil buffer")
	}
	if err := layout.Validate(buf.Size()); err != nil {
		return nil, err
	}
	h, err := m.createHandle(pe, buf, oob, cb, &layout)
	if err != nil {
		return nil, err
	}
	return &StridedHandle{Handle: h, layout: layout}, nil
}

// PutStrided transfers the associated source buffer into the strided
// destination. The source must hold exactly layout.TotalBytes().
func (m *Manager) PutStrided(h *StridedHandle) error {
	if h.layout.BlockLen < 8 {
		// Unreachable through CreateStridedHandle (Validate rejects the
		// layout), kept as the last line of defence in front of the real
		// backend's deposit, which would otherwise slice at a negative
		// index.
		return m.misuse(&SubWordError{What: "strided block", Bytes: h.layout.BlockLen})
	}
	if h.sendPE < 0 {
		return m.misuse(fmt.Errorf("ckdirect: PutStrided on handle %d before AssocLocal", h.id))
	}
	if h.sendBuf.Size() != h.layout.TotalBytes() {
		return m.misuse(fmt.Errorf("ckdirect: handle %d source is %d bytes, layout needs %d",
			h.id, h.sendBuf.Size(), h.layout.TotalBytes()))
	}
	// Descriptor-build cost on the sender, then the ordinary put path.
	m.rts.ChargeOn(h.sendPE, sim.Microseconds(descriptorCostUS*float64(h.layout.Count)))
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.strided_puts", 1)
	}
	return m.Put(h.Handle)
}

// stridedSentinelPos returns the byte position of the sentinel for a
// strided handle: the last 8 bytes of the last block.
func stridedSentinelPos(l *StridedLayout) int {
	return l.Offset + (l.Count-1)*l.Stride + l.BlockLen - 8
}

// scatter copies a contiguous source into the strided destination.
func scatter(src, dst []byte, l *StridedLayout) {
	for b := 0; b < l.Count; b++ {
		from := src[b*l.BlockLen : (b+1)*l.BlockLen]
		to := dst[l.Offset+b*l.Stride:]
		copy(to[:l.BlockLen], from)
	}
}
