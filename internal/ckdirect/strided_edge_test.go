package ckdirect

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/rng"
)

// TestStridedZeroRowsRejected: a layout transferring zero blocks is a
// degenerate channel (no payload, nowhere to put the sentinel) and must
// be rejected at validation and at handle creation, not discovered as a
// hang later.
func TestStridedZeroRowsRejected(t *testing.T) {
	zero := StridedLayout{BlockLen: 16, Stride: 16, Count: 0}
	if err := zero.Validate(256); err == nil {
		t.Fatal("zero-count layout validated")
	}
	if zero.TotalBytes() != 0 {
		t.Fatalf("zero-count layout claims %d payload bytes", zero.TotalBytes())
	}
	_, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	matrix := rts.Machine().AllocRegion(1, 256, false)
	if _, err := m.CreateStridedHandle(1, matrix, zero, oob, func(*charm.Ctx) {}); err == nil {
		t.Fatal("CreateStridedHandle accepted a zero-row layout")
	}
	negative := StridedLayout{BlockLen: 16, Stride: 16, Count: -3}
	if _, err := m.CreateStridedHandle(1, matrix, negative, oob, func(*charm.Ctx) {}); err == nil {
		t.Fatal("CreateStridedHandle accepted a negative-row layout")
	}
}

// TestStridedSingleColumn: the narrowest legal panel — BlockLen exactly 8
// bytes, one float64 per row. Every block is also a sentinel-sized word,
// so this is the layout most likely to break off-by-one sentinel
// placement; the scatter must land each word at its row and leave both
// neighbouring columns untouched.
func TestStridedSingleColumn(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	const rows, cols = 8, 6
	matrix := rts.Machine().AllocRegion(1, rows*cols*8, false)
	layout := StridedLayout{
		Offset:   2 * 8, // column 2
		BlockLen: 8,
		Stride:   cols * 8,
		Count:    rows,
	}
	fired := false
	sh, err := m.CreateStridedHandle(1, matrix, layout, oob, func(ctx *charm.Ctx) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(11).Fill(src.Bytes())
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.PutStrided(sh); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !fired {
		t.Fatal("single-column strided callback never fired")
	}
	for r := 0; r < rows; r++ {
		start := layout.Offset + r*layout.Stride
		want := src.Bytes()[r*8 : (r+1)*8]
		if got := matrix.Bytes()[start : start+8]; !bytes.Equal(got, want) {
			t.Fatalf("row %d word mismatch: got %x want %x", r, got, want)
		}
		for _, off := range []int{-1, 8} { // columns 1 and 3 stay zero
			if matrix.Bytes()[start+off] != 0 {
				t.Fatalf("row %d: neighbour byte at offset %d overwritten", r, off)
			}
		}
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
}

// TestStridedSentinelCollisionReported: a strided payload whose final
// word equals the out-of-band pattern would re-arm the sentinel the
// instant it landed — the receiver could never distinguish arrival from
// emptiness and the channel would stall (on the real backend, until the
// stall watchdog kills the run). Checked mode must refuse the put with a
// diagnostic instead.
func TestStridedSentinelCollisionReported(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	matrix := rts.Machine().AllocRegion(1, 512, false)
	layout := StridedLayout{BlockLen: 16, Stride: 64, Count: 4}
	sh, err := m.CreateStridedHandle(1, matrix, layout, oob, func(*charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(13).Fill(src.Bytes())
	// The last 8 source bytes land exactly on the sentinel word (last 8
	// bytes of the last block).
	binary.LittleEndian.PutUint64(src.Bytes()[layout.TotalBytes()-8:], oob)
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	err = m.PutStrided(sh)
	if err == nil {
		t.Fatal("sentinel-colliding strided payload accepted")
	}
	if !strings.Contains(err.Error(), "out-of-band") {
		t.Fatalf("collision error does not name the out-of-band pattern: %v", err)
	}
}
