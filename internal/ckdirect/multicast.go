package ckdirect

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/machine"
)

// Multicast channels implement the second §6 extension ("support for
// multicasts"): one logical channel from a single source buffer to many
// receivers. The sender issues one MulticastPut; the manager fans it out
// as one RDMA put per member (one-sided hardware multicast does not
// exist, so this is precisely the software fan-out a Charm++
// implementation would do — the saving over N plain channels is the
// single shared source registration and the single user-facing call).
//
// An optional sender-side completion callback fires when every member's
// payload has been delivered into remote memory.
type MulticastHandle struct {
	id      int
	mgr     *Manager
	members []*Handle
	sendPE  int
	sendBuf *machine.Region

	outstanding int
	onDelivered func()
}

// ID returns the multicast handle's identifier.
func (h *MulticastHandle) ID() int { return h.id }

// Members returns the per-receiver handles (for Ready cycling by the
// receivers).
func (h *MulticastHandle) Members() []*Handle { return h.members }

// CreateMulticast builds a multicast channel. Each receiver is described
// by its PE, destination region and arrival callback; all receivers share
// the out-of-band pattern. The source is bound immediately (multicast
// channels are sender-created, then the per-member handles travel to the
// receivers conceptually — in simulation, the caller distributes the
// returned member handles).
func (m *Manager) CreateMulticast(sendPE int, src *machine.Region, oob uint64, receivers []MulticastMember) (*MulticastHandle, error) {
	if m.rt != nil {
		return nil, m.realRejectExtension("the multicast extension")
	}
	if len(receivers) == 0 {
		return nil, fmt.Errorf("ckdirect: multicast with no receivers")
	}
	if src == nil {
		return nil, fmt.Errorf("ckdirect: multicast with nil source")
	}
	mh := &MulticastHandle{id: m.nextID, mgr: m, sendPE: sendPE, sendBuf: src}
	m.nextID++
	for i, r := range receivers {
		h, err := m.CreateHandle(r.PE, r.Buf, oob, r.Callback)
		if err != nil {
			return nil, fmt.Errorf("ckdirect: multicast member %d: %w", i, err)
		}
		if err := m.AssocLocal(h, sendPE, src); err != nil {
			return nil, fmt.Errorf("ckdirect: multicast member %d: %w", i, err)
		}
		mh.members = append(mh.members, h)
	}
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.multicasts", 1)
	}
	return mh, nil
}

// MulticastMember describes one receiver of a multicast channel.
type MulticastMember struct {
	PE       int
	Buf      *machine.Region
	Callback func(ctx *charm.Ctx)
}

// MulticastPut sends the source buffer to every member. onAllDelivered
// (optional) fires on the sender side once every member's bytes are in
// remote memory.
func (m *Manager) MulticastPut(h *MulticastHandle, onAllDelivered func()) error {
	if h.outstanding > 0 {
		return m.misuse(fmt.Errorf("ckdirect: multicast %d put while %d deliveries outstanding", h.id, h.outstanding))
	}
	h.outstanding = len(h.members)
	h.onDelivered = onAllDelivered
	for _, member := range h.members {
		err := m.PutNotify(member, nil)
		if err != nil {
			return err
		}
	}
	// Track delivery via the per-member delivered counters: hook through
	// a lightweight poll on the engine would be overkill — instead each
	// member decrements on delivery through deliveryWatchers.
	for _, member := range h.members {
		member := member
		m.watchDelivery(member, func() {
			h.outstanding--
			if h.outstanding == 0 && h.onDelivered != nil {
				h.onDelivered()
			}
		})
	}
	return nil
}

// ReadyAll runs the Ready cycle on every member handle (receivers are
// expected to have consumed their data; typically each receiver calls
// Ready on its own member instead).
func (m *Manager) ReadyAll(h *MulticastHandle) {
	for _, member := range h.members {
		m.Ready(member)
	}
}

// watchDelivery registers fn to run at the member's next payload
// delivery.
func (m *Manager) watchDelivery(h *Handle, fn func()) {
	h.deliveryWatch = append(h.deliveryWatch, fn)
}

// notifyDelivery fires and clears delivery watchers.
func (h *Handle) notifyDelivery() {
	if len(h.deliveryWatch) == 0 {
		return
	}
	ws := h.deliveryWatch
	h.deliveryWatch = nil
	for _, fn := range ws {
		fn()
	}
}
