package ckdirect

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRealPutFastPathZeroAllocs pins the real-backend put fast path to
// zero heap allocations per operation. The pre-pool baseline was ~6
// allocs per put (a fresh PutOp with two closures and a callback Ctx on
// every call); the fast path now reuses the handle's prebuilt PutOp and
// cached receive Ctx, so the whole issue — misuse checks, counters, the
// deposit copy and the sentinel release-store — runs without touching
// the allocator.
//
// The runtime is deliberately never Run(): the put executes synchronously
// on the caller (exactly as under a running real backend), repeated puts
// simply overwrite the landed payload, and no concurrent scheduler
// goroutines can smear extraneous allocations into AllocsPerRun's global
// Mallocs delta.
func TestRealPutFastPathZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	plat := netmodel.AbeIB
	mach, net := plat.BuildMachine(eng, 2)
	rts := charm.NewRTS(eng, mach, net, plat, trace.NewRecorder(), charm.Options{Backend: charm.RealBackend})
	m := NewManager(rts)

	recv := mach.AllocRegion(1, 1024, false)
	send := mach.AllocRegion(0, 1024, false)
	h, err := m.CreateHandle(1, recv, oob, func(*charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AssocLocal(h, 0, send); err != nil {
		t.Fatal(err)
	}
	for i := range send.Bytes() {
		send.Bytes()[i] = byte(i)
	}

	if avg := testing.AllocsPerRun(200, func() {
		if err := m.Put(h); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("real put fast path allocates %.2f per op, want 0 (pre-pool baseline ~6)", avg)
	}
}
