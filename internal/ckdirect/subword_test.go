package ckdirect

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// newRealRig builds a real-backend runtime for CkDirect tests: goroutine
// workers, wall-clock time, true shared-memory puts. Drive it with
// rts.StartAt + rts.Run.
func newRealRig(t *testing.T, pes int) (*charm.RTS, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	mach, net := netmodel.AbeIB.BuildMachine(eng, pes)
	rts := charm.NewRTS(eng, mach, net, netmodel.AbeIB, trace.NewRecorder(),
		charm.Options{Checked: true, Backend: charm.RealBackend})
	return rts, NewManager(rts)
}

// TestSubWordStridedLayoutRejected: every block length 1..7 is too small
// to carry the 8-byte sentinel word. Before validation learned this, such
// a layout sailed through to the real backend's deposit, which slices the
// source at BlockLen-8 — a negative index panic mid-put (or silent
// corruption of the neighbouring block for the larger sub-word lengths).
// Both backends must now refuse at creation time with a typed error.
func TestSubWordStridedLayoutRejected(t *testing.T) {
	for bl := 1; bl <= 7; bl++ {
		layout := StridedLayout{BlockLen: bl, Stride: 16, Count: 4}
		var sub *SubWordError
		if err := layout.Validate(256); !errors.As(err, &sub) {
			t.Fatalf("BlockLen %d: Validate returned %v, want *SubWordError", bl, err)
		} else if sub.Bytes != bl {
			t.Fatalf("BlockLen %d: SubWordError reports %d bytes", bl, sub.Bytes)
		}

		// Sim backend.
		_, simRTS, simMgr := newRig(t, netmodel.AbeIB, 2, true)
		buf := simRTS.Machine().AllocRegion(1, 256, false)
		if _, err := simMgr.CreateStridedHandle(1, buf, layout, oob, func(*charm.Ctx) {}); !errors.As(err, new(*SubWordError)) {
			t.Fatalf("BlockLen %d: sim CreateStridedHandle returned %v, want *SubWordError", bl, err)
		}

		// Real backend: the panic used to live here.
		realRTS, realMgr := newRealRig(t, 2)
		rbuf := realRTS.Machine().AllocRegion(1, 256, false)
		if _, err := realMgr.CreateStridedHandle(1, rbuf, layout, oob, func(*charm.Ctx) {}); !errors.As(err, new(*SubWordError)) {
			t.Fatalf("BlockLen %d: real CreateStridedHandle returned %v, want *SubWordError", bl, err)
		}
	}
}

// TestSubWordReceiveBufferRejected: a contiguous receive buffer under 8
// bytes cannot hold the sentinel either; CreateHandle reports the same
// typed error on both backends.
func TestSubWordReceiveBufferRejected(t *testing.T) {
	_, simRTS, simMgr := newRig(t, netmodel.AbeIB, 2, true)
	tiny := simRTS.Machine().AllocRegion(1, 4, false)
	if _, err := simMgr.CreateHandle(1, tiny, oob, func(*charm.Ctx) {}); !errors.As(err, new(*SubWordError)) {
		t.Fatalf("sim CreateHandle on a 4-byte buffer returned %v, want *SubWordError", err)
	}
	realRTS, realMgr := newRealRig(t, 2)
	rtiny := realRTS.Machine().AllocRegion(1, 4, false)
	if _, err := realMgr.CreateHandle(1, rtiny, oob, func(*charm.Ctx) {}); !errors.As(err, new(*SubWordError)) {
		t.Fatalf("real CreateHandle on a 4-byte buffer returned %v, want *SubWordError", err)
	}
}

// singleBlockRoundTrip drives one put through a single-block strided
// layout (Count == 1 — the smallest legal strided channel, whose last
// block is also its first) and returns the destination region's bytes.
func singleBlockLayout() StridedLayout {
	return StridedLayout{Offset: 8, BlockLen: 16, Stride: 16, Count: 1}
}

// TestSingleBlockStridedSim: the Count==1 edge on the simulator — the
// whole payload is "the last block", so sentinel placement and scatter
// must coincide exactly with the block bounds.
func TestSingleBlockStridedSim(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	layout := singleBlockLayout()
	dst := rts.Machine().AllocRegion(1, 64, false)
	fired := false
	sh, err := m.CreateStridedHandle(1, dst, layout, oob, func(*charm.Ctx) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(5).Fill(src.Bytes())
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.PutStrided(sh); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !fired {
		t.Fatal("single-block callback never fired")
	}
	checkSingleBlock(t, dst.Bytes(), src.Bytes(), layout)
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
}

// TestSingleBlockStridedReal: the same edge executed for real — the
// deposit path's "every block but the last" loop runs zero times, and the
// sentinel release-store must land inside the one real block.
func TestSingleBlockStridedReal(t *testing.T) {
	rts, m := newRealRig(t, 2)
	layout := singleBlockLayout()
	dst := rts.Machine().AllocRegion(1, 64, false)
	fired := false
	var sh *StridedHandle
	sh, err := m.CreateStridedHandle(1, dst, layout, oob, func(*charm.Ctx) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(5).Fill(src.Bytes())
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.PutStrided(sh); err != nil {
			t.Error(err)
		}
	})
	rts.Run()
	if !fired {
		t.Fatal("single-block callback never fired on the real backend")
	}
	checkSingleBlock(t, dst.Bytes(), src.Bytes(), layout)
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
}

// checkSingleBlock asserts the block landed intact at its offset and
// every byte outside it stayed zero.
func checkSingleBlock(t *testing.T, dst, src []byte, l StridedLayout) {
	t.Helper()
	got := dst[l.Offset : l.Offset+l.BlockLen]
	if !bytes.Equal(got, src) {
		t.Fatalf("block mismatch: got %x want %x", got, src)
	}
	for i, b := range dst {
		if i >= l.Offset && i < l.Offset+l.BlockLen {
			continue
		}
		if b != 0 {
			t.Fatalf("byte %d outside the block overwritten (%#x)", i, b)
		}
	}
}
