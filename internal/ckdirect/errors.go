package ckdirect

import "fmt"

// SubWordError reports a transfer geometry too small to carry the 8-byte
// out-of-band sentinel word that CkDirect's detection protocol lives on:
// a strided block shorter than 8 bytes, or a contiguous receive buffer
// under 8 bytes. Both are rejected at CreateHandle/CreateStridedHandle
// (and defensively at PutStrided) — before this check, a sub-word strided
// layout reached the real backend's deposit path and sliced the source at
// a negative index, panicking mid-put or corrupting the neighbouring
// block. Callers can match it with errors.As.
type SubWordError struct {
	// What names the undersized geometry ("strided block", "receive
	// buffer").
	What string
	// Bytes is the offending size.
	Bytes int
}

func (e *SubWordError) Error() string {
	return fmt.Sprintf("ckdirect: %s of %d bytes cannot hold the 8-byte out-of-band sentinel word", e.What, e.Bytes)
}
