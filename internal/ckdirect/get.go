package ckdirect

import (
	"fmt"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Get is the road not taken. The paper selects the put operation because
// it "closely matches the message driven programming model wherein
// message senders entirely drive the flow of control"; a get instead
// "requires that the receiver, through some synchronization, gain the
// knowledge that the source is ready to send it data", then issue the
// read and be prompted again on completion (§2).
//
// This file implements that alternative so the design choice can be
// measured (DESIGN.md ablation 2): a GetHandle pairs a remote source
// region with a local destination; the data producer must announce
// readiness with SignalReady — which costs a full runtime message, the
// very overhead CkDirect exists to avoid — and only then can the consumer
// issue the one-sided read, paying a request/response wire round trip.
type GetHandle struct {
	id  int
	mgr *Manager

	// Consumer (local) side.
	localPE int
	dstBuf  *machine.Region
	cb      func(ctx *charm.Ctx)

	// Producer (remote) side.
	remotePE int
	srcBuf   *machine.Region

	ready      bool // producer announced data availability
	inFlight   bool
	pendingGet bool // consumer asked before the producer signalled
	gets       int64
}

// ID returns the handle id.
func (h *GetHandle) ID() int { return h.id }

// Gets returns how many reads completed.
func (h *GetHandle) Gets() int64 { return h.gets }

// Ready reports whether the producer has signalled data availability.
func (h *GetHandle) Ready() bool { return h.ready }

// readySignalEP is registered lazily per manager for the producer's
// readiness notification messages.
func (m *Manager) readySignalEP() charm.EP {
	if m.getSignalEP < 0 {
		m.getSignalEP = m.rts.RegisterPEHandler(func(ctx *charm.Ctx, msg *charm.Message) {
			h := m.getHandles[msg.Tag]
			h.ready = true
			if h.pendingGet {
				h.pendingGet = false
				m.issueGet(h)
			}
		})
	}
	return m.getSignalEP
}

// CreateGetHandle is the consumer-side setup: local destination, remote
// source, completion callback.
func (m *Manager) CreateGetHandle(localPE int, dst *machine.Region, remotePE int, src *machine.Region, cb func(ctx *charm.Ctx)) (*GetHandle, error) {
	if m.rt != nil {
		return nil, m.realRejectExtension("the get extension")
	}
	if dst == nil || src == nil {
		return nil, fmt.Errorf("ckdirect: CreateGetHandle with nil buffer")
	}
	if dst.PE().ID() != localPE {
		return nil, fmt.Errorf("ckdirect: destination lives on PE %d, handle on %d", dst.PE().ID(), localPE)
	}
	if src.PE().ID() != remotePE {
		return nil, fmt.Errorf("ckdirect: source lives on PE %d, expected %d", src.PE().ID(), remotePE)
	}
	if cb == nil {
		return nil, fmt.Errorf("ckdirect: nil callback")
	}
	h := &GetHandle{
		id:       len(m.getHandles),
		mgr:      m,
		localPE:  localPE,
		dstBuf:   dst,
		cb:       cb,
		remotePE: remotePE,
		srcBuf:   src,
	}
	m.getHandles = append(m.getHandles, h)
	m.rts.Machine().PE(localPE).Reserve(sim.Microseconds(createCPUUS))
	dst.SetRegistered(true)
	src.SetRegistered(true)
	return h, nil
}

// SignalReady is called by the *producer* when its data is ready for
// reading. It sends a runtime message to the consumer — the
// synchronization cost inherent to the get model.
func (m *Manager) SignalReady(h *GetHandle) {
	ep := m.readySignalEP()
	m.rts.SendPE(h.remotePE, h.localPE, ep, &charm.Message{Size: 16, Tag: h.id})
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.get_signals", 1)
	}
}

// Get issues the one-sided read. If the producer has not yet signalled
// readiness the read is deferred until the signal arrives (the receiver
// "must be prompted to continue", §2).
func (m *Manager) Get(h *GetHandle) error {
	if h.inFlight || h.pendingGet {
		return m.misuse(fmt.Errorf("ckdirect: Get on handle %d already in flight", h.id))
	}
	if !h.ready {
		h.pendingGet = true
		return nil
	}
	m.issueGet(h)
	return nil
}

// issueGet models the RDMA read: a small request crosses the wire to the
// source NIC, the payload streams back, the completion fires locally.
func (m *Manager) issueGet(h *GetHandle) {
	h.ready = false
	h.inFlight = true
	size := h.dstBuf.Size()
	plat := m.rts.Platform()
	cost := plat.CkdPut.Resolve(size)
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.gets", 1)
	}
	// Request leg: fixed wire latency only (an RDMA read request is a
	// header-sized packet; reuse the put path's fixed wire term).
	reqWire := plat.CkdPut.Resolve(0).Wire
	net := m.rts.Net()
	_, issueEnd := m.rts.Machine().PE(h.localPE).Reserve(cost.SendCPU)
	eng := m.rts.Engine()
	eng.At(issueEnd+net.WireDelay(h.localPE, h.remotePE, reqWire), func() {
		// Source NIC streams the payload back; no remote CPU involved.
		eng.Schedule(net.WireDelay(h.remotePE, h.localPE, cost.Wire), func() {
			h.srcBuf.CopyTo(h.dstBuf)
			h.inFlight = false
			h.gets++
			// Local completion: same detection/callback cost structure
			// as the put path.
			detect := sim.Microseconds(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
			if plat.CkdRecvIsCallback {
				detect = sim.Microseconds(plat.CallbackUS)
			}
			_, end := m.rts.Machine().PE(h.localPE).Reserve(detect)
			eng.At(end, func() { h.cb(m.rts.CtxOn(h.localPE)) })
		})
	})
}

// GetOneWayModel returns the analytic end-to-end latency of a get at a
// size, from the producer's SignalReady to the consumer's callback — the
// quantity the put/get ablation compares.
func GetOneWayModel(plat *netmodel.Platform, size int) sim.Time {
	msg := plat.CharmMsg.Resolve(16+plat.HeaderBytes).OneWay() + sim.Microseconds(plat.SchedUS)
	cost := plat.CkdPut.Resolve(size)
	req := plat.CkdPut.Resolve(0).Wire
	detect := sim.Microseconds(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
	if plat.CkdRecvIsCallback {
		detect = sim.Microseconds(plat.CallbackUS)
	}
	return msg + cost.SendCPU + req + cost.Wire + detect
}
