package ckdirect

import (
	"bytes"
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// mkGetRig builds a consumer on PE 0 and a producer on the first PE of
// the next node (so no intra-node wire discount muddies model checks).
func mkGetRig(t *testing.T, plat *netmodel.Platform) (*sim.Engine, *charm.RTS, *Manager, *GetHandle, []byte) {
	t.Helper()
	remote := plat.CoresPerNode
	eng, rts, m := newRig(t, plat, remote+1, true)
	mach := rts.Machine()
	src := mach.AllocRegion(remote, 256, false)
	rng.New(11).Fill(src.Bytes())
	dst := mach.AllocRegion(0, 256, false)
	h, err := m.CreateGetHandle(0, dst, remote, src, func(ctx *charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	return eng, rts, m, h, src.Bytes()
}

func TestGetAfterSignalDeliversData(t *testing.T) {
	eng, rts, m, h, payload := mkGetRig(t, netmodel.AbeIB)
	var done sim.Time = -1
	h.cb = func(ctx *charm.Ctx) { done = ctx.Now() }
	rts.StartAt(1, func(ctx *charm.Ctx) { m.SignalReady(h) })
	eng.Run()
	// Signal arrived; now the consumer reads.
	if !h.Ready() {
		t.Fatal("handle not marked ready after signal")
	}
	if err := m.Get(h); err != nil {
		t.Fatal(err)
	}
	eng.Resume()
	eng.Run()
	if done < 0 {
		t.Fatal("get completion callback never fired")
	}
	if !bytes.Equal(h.dstBuf.Bytes(), payload) {
		t.Fatal("get did not move the payload")
	}
	if h.Gets() != 1 {
		t.Fatalf("Gets = %d", h.Gets())
	}
}

func TestGetBeforeSignalDefers(t *testing.T) {
	eng, rts, m, h, _ := mkGetRig(t, netmodel.AbeIB)
	fired := false
	h.cb = func(ctx *charm.Ctx) { fired = true }
	if err := m.Get(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fired {
		t.Fatal("get completed without a readiness signal")
	}
	rts.StartAt(1, func(ctx *charm.Ctx) { m.SignalReady(h) })
	eng.Resume()
	eng.Run()
	if !fired {
		t.Fatal("deferred get never completed after the signal")
	}
}

func TestDoubleGetRejected(t *testing.T) {
	_, _, m, h, _ := mkGetRig(t, netmodel.AbeIB)
	if err := m.Get(h); err != nil {
		t.Fatal(err)
	}
	if err := m.Get(h); err == nil {
		t.Fatal("second outstanding get accepted")
	}
}

func TestCreateGetHandleValidation(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	mach := rts.Machine()
	src := mach.AllocRegion(1, 64, false)
	dst := mach.AllocRegion(0, 64, false)
	cb := func(*charm.Ctx) {}
	if _, err := m.CreateGetHandle(0, nil, 1, src, cb); err == nil {
		t.Error("nil dst accepted")
	}
	if _, err := m.CreateGetHandle(1, dst, 1, src, cb); err == nil {
		t.Error("dst on wrong PE accepted")
	}
	if _, err := m.CreateGetHandle(0, dst, 0, src, cb); err == nil {
		t.Error("src on wrong PE accepted")
	}
	if _, err := m.CreateGetHandle(0, dst, 1, src, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

// TestGetSlowerThanPut is the paper's §2 argument made quantitative: the
// end-to-end latency of the get model (readiness message + request round
// trip) exceeds a put at every size, on both machines.
func TestGetSlowerThanPut(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		for _, size := range []int{100, 1000, 10000, 100000} {
			put := plat.CkdPut.Resolve(size).OneWay()
			if !plat.CkdRecvIsCallback {
				put += sim.Microseconds(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
			}
			get := GetOneWayModel(plat, size)
			if get <= put {
				t.Errorf("%s %dB: get %v <= put %v", plat.Name, size, get, put)
			}
		}
	}
}

// TestGetEndToEndMatchesModel: the simulated get path agrees with the
// analytic model used by the ablation.
func TestGetEndToEndMatchesModel(t *testing.T) {
	eng, rts, m, h, _ := mkGetRig(t, netmodel.AbeIB)
	var start, done sim.Time = -1, -1
	h.cb = func(ctx *charm.Ctx) { done = ctx.Now() }
	// Consumer pre-posts the get; producer signals readiness at t=start.
	if err := m.Get(h); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(1, func(ctx *charm.Ctx) {
		start = ctx.Now()
		m.SignalReady(h)
	})
	eng.Run()
	want := GetOneWayModel(netmodel.AbeIB, 256)
	if done-start != want {
		t.Fatalf("get latency %v, model %v", done-start, want)
	}
}
