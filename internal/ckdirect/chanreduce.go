package ckdirect

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Reduction channels implement the third §6 extension ("support for ...
// reductions"): N contributors put into per-contributor slots of a target
// buffer; when the last slot lands, the target's callback receives the
// combined value. This packages the pattern OpenAtom's PairCalculator
// builds by hand (a counting callback over many channels, §5.1) into a
// reusable primitive, with the combination work charged to the target PE.
type ReduceChannel struct {
	id      int
	mgr     *Manager
	pe      int
	width   int // float64s per contribution
	op      charm.ReduceOp
	slots   []*Handle
	arrived int
	cb      func(ctx *charm.Ctx, vals []float64)
}

// ID returns the channel's identifier.
func (rc *ReduceChannel) ID() int { return rc.id }

// Contributors returns the number of contributor slots.
func (rc *ReduceChannel) Contributors() int { return len(rc.slots) }

// SlotHandle returns contributor i's handle (to be AssocLocal'd and Put
// on by that contributor).
func (rc *ReduceChannel) SlotHandle(i int) *Handle { return rc.slots[i] }

// CreateReduceChannel builds a reduction channel on PE pe combining
// contributions of width float64s from n contributors with op. The
// callback receives the combined vector once all contributions of a
// generation have landed.
func (m *Manager) CreateReduceChannel(pe, n, width int, op charm.ReduceOp, oob uint64, cb func(ctx *charm.Ctx, vals []float64)) (*ReduceChannel, error) {
	if m.rt != nil {
		return nil, m.realRejectExtension("the channel-reduction extension")
	}
	if n <= 0 || width <= 0 {
		return nil, fmt.Errorf("ckdirect: reduce channel needs positive contributors and width")
	}
	if cb == nil {
		return nil, fmt.Errorf("ckdirect: reduce channel with nil callback")
	}
	slotBytes := width * 8
	rc := &ReduceChannel{
		id:    m.nextID,
		mgr:   m,
		pe:    pe,
		width: width,
		op:    op,
		cb:    cb,
	}
	m.nextID++
	// One backing region per slot: contributors land in disjoint memory,
	// exactly like the per-state buffers of the PairCalculator.
	virtual := m.rts.Options().VirtualPayloads
	for i := 0; i < n; i++ {
		var reg *machine.Region
		if virtual {
			reg = m.rts.Machine().AllocRegion(pe, slotBytes, true)
		} else {
			reg = m.rts.Machine().AllocRegion(pe, slotBytes, false)
		}
		h, err := m.CreateHandle(pe, reg, oob, func(ctx *charm.Ctx) { rc.onSlot(ctx) })
		if err != nil {
			return nil, err
		}
		rc.slots = append(rc.slots, h)
	}
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.reduce_channels", 1)
	}
	return rc, nil
}

// Contribute is a convenience for contributor i: encode vals into the
// given source region and put. The region must hold width float64s and
// be AssocLocal'd to slot i already.
func (m *Manager) Contribute(rc *ReduceChannel, i int, src *machine.Region, vals []float64) error {
	if len(vals) != rc.width {
		return fmt.Errorf("ckdirect: contribution width %d, channel width %d", len(vals), rc.width)
	}
	if b := src.Bytes(); b != nil {
		for j, v := range vals {
			binary.LittleEndian.PutUint64(b[j*8:], math.Float64bits(v))
		}
	}
	return m.Put(rc.slots[i])
}

// onSlot counts arrivals; the last one combines and fires the client.
func (rc *ReduceChannel) onSlot(ctx *charm.Ctx) {
	rc.arrived++
	if rc.arrived < len(rc.slots) {
		return
	}
	rc.arrived = 0
	// Combination cost: one op per element per contribution.
	m := rc.mgr
	flopNS := m.rts.Platform().FlopNS
	ctx.Charge(sim.Nanoseconds(flopNS * float64(rc.width*len(rc.slots))))

	vals := identityFor(rc.op, rc.width)
	for _, slot := range rc.slots {
		b := slot.recvBuf.Bytes()
		contribution := make([]float64, rc.width)
		for j := range contribution {
			if b != nil {
				contribution[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[j*8:]))
			}
		}
		combine(rc.op, vals, contribution)
	}
	// Re-arm every slot for the next generation before handing the
	// result to the client (the client often triggers the next round).
	for _, slot := range rc.slots {
		m.Ready(slot)
	}
	rc.cb(ctx, vals)
}

func identityFor(op charm.ReduceOp, width int) []float64 {
	vals := make([]float64, width)
	switch op {
	case charm.Min:
		for i := range vals {
			vals[i] = math.Inf(1)
		}
	case charm.Max:
		for i := range vals {
			vals[i] = math.Inf(-1)
		}
	case charm.Prod:
		for i := range vals {
			vals[i] = 1
		}
	}
	return vals
}

func combine(op charm.ReduceOp, dst, src []float64) {
	for i := range dst {
		switch op {
		case charm.Sum:
			dst[i] += src[i]
		case charm.Min:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case charm.Max:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case charm.Prod:
			dst[i] *= src[i]
		}
	}
}
