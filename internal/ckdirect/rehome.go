package ckdirect

import (
	"fmt"

	"repro/internal/trace"
)

// Channel rehoming for element migration (internal/lb): when a chare
// array element moves to a new PE, the CkDirect channels it receives on
// and sends from must follow it. A channel endpoint is runtime state —
// sentinel word, polling-queue membership, prebuilt transfer op — so
// rehoming is bookkeeping, not data movement: the registered buffers
// travel with the element's pupped state (or never move at all when the
// migration stays in-process).
//
// Like migration itself, rehoming is only legal at a quiescent cut: no
// put in flight on the channel, its last delivery consumed and the
// sentinel re-armed. RehomeRecv verifies exactly that (the same checks
// Quiescent applies per handle) before touching anything.
//
// Threading: under the live backends a handle's poll-queue fields are
// read continuously by the owning PE's scheduler loop — even when the
// run is otherwise idle, realPoll scans the poll set between tasks. All
// poll-set mutations therefore run as tasks on the owning PE, chained
// through done callbacks; on PEs this process does not host (or under
// the simulator, which is single-threaded at the cut) the step runs
// inline. Fields only ever touched inside entry methods or Put calls
// (sendPE, the transfer op) have no concurrent reader at a quiescent
// cut and are mutated directly; the enqueue chain that resumes the run
// publishes them.

// rehomeStep runs fn on pe's scheduler queue when that PE has a live
// worker loop in this process, inline otherwise.
func (m *Manager) rehomeStep(pe int, fn func()) {
	if m.rt == nil || !m.rts.HostsPE(pe) {
		fn()
		return
	}
	m.rts.EnqueueOn(pe, fn)
}

// RehomeRecv moves a channel's receive endpoint to newPE and calls done
// when the move is complete (possibly before returning, when no live
// scheduler is involved). Every rank applies the identical rehome —
// SPMD bookkeeping, like MoveElement — and the drain guard runs only
// where the endpoint is hosted.
//
// The delivery sequence counters reset to zero on every rank: the old
// host's count would otherwise diverge from the new host's fresh view,
// and at a drained cut the absolute values carry no information (the
// sequence guard only needs put ordinals ahead of delivered ones, which
// a joint reset preserves).
func (m *Manager) RehomeRecv(h *Handle, newPE int, done func()) {
	oldPE := h.recvPE
	if newPE == oldPE {
		done()
		return
	}
	m.rehomeStep(oldPE, func() {
		if m.rts.HostsPE(oldPE) {
			if err := m.drainCheck(h); err != nil {
				m.rts.ReportError(fmt.Errorf("ckdirect: rehome handle %d: %w", h.id, err))
				done()
				return
			}
		}
		m.wdDisarm(h)
		wasPolled := h.inPollQ
		m.pollRemove(h) // uses the old PE's poll set; must precede the move
		h.recvPE = newPE
		if m.rt != nil {
			h.recvCtx = m.rts.CtxOn(newPE)
			h.putOp.DstPE = newPE
		}
		h.puts = 0
		h.delivered = 0
		h.pendingDeliver = false
		if h.state == Fired {
			// Unreachable past the drain guard on the hosting rank; on
			// mirror ranks the state machine never left Armed.
			h.state = Armed
		}
		if m.net != nil {
			// A sender rank may hold a shared-memory put registration
			// aiming at the old host's arena slot; drop it everywhere so
			// post-migration puts take the framed path into the new
			// host's buffer. (Re-placement into the new edge's arena is
			// not attempted: the registration handshake would race the
			// SPMD drop, and framed puts are always correct.)
			m.net.DropPutBuffer(int64(h.id))
		}
		m.rehomeStep(newPE, func() {
			m.writeSentinel(h)
			if wasPolled {
				m.pollInsert(h)
			}
			if rec := m.rts.Recorder(); rec != nil && m.rts.HostsPE(newPE) {
				rec.Incr(trace.CntLBRehomedRecv, 1)
			}
			done()
		})
	})
}

// RehomeSend moves a channel's send endpoint to newPE. The send-side
// fields have no concurrent reader at a quiescent cut (Put only runs
// inside the sender's entry methods), so the mutation is inline; the
// scheduler enqueues that resume the run publish it to the new PE's
// goroutine.
func (m *Manager) RehomeSend(h *Handle, newPE int) {
	if h.sendPE < 0 || newPE == h.sendPE {
		return
	}
	h.sendPE = newPE
	if m.rt != nil {
		h.putOp.SrcPE = newPE
	}
	if rec := m.rts.Recorder(); rec != nil && m.rts.HostsPE(newPE) {
		rec.Incr(trace.CntLBRehomedSend, 1)
	}
}

// drainCheck is Quiescent's per-handle test: re-armed, nothing pending,
// sentinel bytes actually holding the out-of-band pattern. A channel
// failing it has a put in flight or an unconsumed delivery, and moving
// it would tear the transfer.
func (m *Manager) drainCheck(h *Handle) error {
	if h.state == Fired {
		return fmt.Errorf("unconsumed delivery (state %s) at migration cut", h.state)
	}
	if h.pendingDeliver {
		return fmt.Errorf("delivery pending at migration cut")
	}
	if !m.sentinelArmed(h) {
		return fmt.Errorf("sentinel not armed at migration cut (put in flight)")
	}
	// The byte check only trips once data lands; a put still traveling
	// shows up as an issued-but-undelivered sequence (and, under sim,
	// the inFlight latch). Rehoming now would point the sentinel guard
	// at a stale region and publish the arrival against it.
	if h.puts > h.delivered || (m.rt == nil && h.inFlight) {
		return fmt.Errorf("put in flight at migration cut (%d issued, %d delivered)", h.puts, h.delivered)
	}
	return nil
}

// sentinelArmed reports whether the sentinel double word holds the
// out-of-band pattern (trivially true for virtual regions, whose
// pendingDeliver flag stands in for the byte check).
func (m *Manager) sentinelArmed(h *Handle) bool {
	return !m.sentinelCleared(h)
}
