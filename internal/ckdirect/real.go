package ckdirect

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Real-execution backend for CkDirect: the paper's mechanism, executed
// literally on shared memory instead of modelled in virtual time.
//
// A put is a memcpy into the receiver's registered buffer followed by an
// atomic release-store of the final 8-byte word — the sentinel position.
// The receiver's scheduler loop polls its handle queue with atomic
// acquire-loads of that word; a value different from the out-of-band
// pattern means the payload (whose last word the store published) is
// fully visible, per Go's memory model the release-store/acquire-load
// pair orders every plain byte of the copy before every receiver read.
// There are no locks, no queues and no notifications anywhere on this
// path: delivery is genuinely unsynchronized and one-sided, and the
// receiver synchronizes only through its own polling — exactly the
// protocol of paper §2.1.
//
// Termination safety: the backend's put seam takes a work credit before
// the release-store publishes the payload, and realDetect returns it only
// after the receiver's callback completes, so the runtime cannot reach
// global quiescence while a landed put sits undetected (see realrt).
//
// A sentinel collision (payload last word equals the out-of-band pattern)
// behaves like real hardware: the arrival is undetectable and the channel
// stalls — surfaced by the realrt stall watchdog (and, in checked mode,
// reported at Put time).

// realPut executes one put on the real backend. It runs synchronously on
// the sender's goroutine and performs sender-side misuse checks only:
// receiver-confined state (state machine, poll-queue membership) must not
// be read here — that is the entire point of an unsynchronized put.
func (m *Manager) realPut(h *Handle, onLocalDone func()) {
	// The op was prebuilt at AssocLocal (closures, wire identity, cost
	// hooks); only the per-call local-completion hook varies. The copy
	// is a stack value — this path allocates nothing.
	op := h.putOp
	op.Hooks.OnSendDone = onLocalDone
	m.rts.PutTransfer(op)
}

// realDeposit copies the payload and publishes it: every byte except the
// sentinel word lands with plain copies, then the payload's own final
// word is release-stored into the sentinel position.
func (m *Manager) realDeposit(h *Handle) { m.depositBytes(h, h.sendBuf.Bytes()) }

// depositBytes lands src into h's registered receive buffer — plain
// copies for everything but the transfer's final word, which is
// release-stored into the sentinel position so the receiver's
// acquire-loading poll pass orders the whole payload behind it. src is
// the local source region under real, an inbound put frame under net.
func (m *Manager) depositBytes(h *Handle, src []byte) {
	dst := h.recvBuf.Bytes()
	if h.strided == nil {
		pos := len(dst) - 8
		copy(dst[:pos], src[:pos])
		atomic.StoreUint64(h.sw, binary.LittleEndian.Uint64(src[pos:]))
		return
	}
	l := h.strided
	for b := 0; b < l.Count-1; b++ {
		copy(dst[l.Offset+b*l.Stride:l.Offset+b*l.Stride+l.BlockLen],
			src[b*l.BlockLen:(b+1)*l.BlockLen])
	}
	// Last block: all but its final word plainly, the final word as the
	// publishing release-store. BlockLen >= 8 is guaranteed by layout
	// validation (SubWordError), so the sub-word slices below cannot go
	// negative.
	lastDst := l.Offset + (l.Count-1)*l.Stride
	lastSrc := (l.Count - 1) * l.BlockLen
	copy(dst[lastDst:lastDst+l.BlockLen-8], src[lastSrc:lastSrc+l.BlockLen-8])
	atomic.StoreUint64(h.sw, binary.LittleEndian.Uint64(src[lastSrc+l.BlockLen-8:]))
}

// Cold-tier pacing for the real backend's poll pass: a hot handle whose
// sentinel survives pollDemoteAfter consecutive scans unchanged moves to
// the cold tier, which is visited only every pollColdEvery-th pass (and
// on every full scan). Active channels re-enter hot on ReadyPollQ, so the
// steady-state pass cost tracks the number of *live* channels, not the
// number of registered ones — the real-backend rendering of the paper's
// §5.2 polling-overhead fix.
const (
	pollDemoteAfter = 256
	pollColdEvery   = 64
)

// realPoll is the receiver-side detection pass, installed as the realrt
// scheduler loop's polling hook: one atomic acquire-load per polled
// handle, callback on the spot when the sentinel changed. It reports
// whether anything was detected (the loop's backoff resets on progress).
// full forces a cold-tier scan; the scheduler loop sets it before parking
// and right after a wakeup, so an arrival on a demoted handle is caught
// before the worker sleeps and immediately after the put's kick — a cold
// handle's worst case is pollColdEvery hot passes on a busy PE, never a
// parked PE sleeping through its arrival.
//
// Each tier pass iterates a snapshot of its slice: detection mutates the
// tier (pollRemove swaps, callbacks may re-insert, demotion moves
// entries), and the nil/inPollQ/pollCold checks skip entries the mutation
// left stale — a handle swapped below the scan index is simply caught on
// the next pass.
func (m *Manager) realPoll(pe int, full bool) bool {
	ps := &m.polled[pe]
	ps.passes++
	hit := false
	hot := ps.hot
	for i := 0; i < len(hot); i++ {
		h := hot[i]
		if h == nil || !h.inPollQ || h.pollCold {
			continue
		}
		if atomic.LoadUint64(h.sw) == h.oob {
			h.pollMisses++
			if h.pollMisses >= pollDemoteAfter {
				m.pollDemote(h)
			}
			continue
		}
		hit = true
		m.realDetect(h)
	}
	if len(ps.cold) > 0 && (full || ps.passes%pollColdEvery == 0) {
		cold := ps.cold
		for i := 0; i < len(cold); i++ {
			h := cold[i]
			if h == nil || !h.inPollQ || !h.pollCold {
				continue
			}
			if atomic.LoadUint64(h.sw) == h.oob {
				continue
			}
			hit = true
			m.realDetect(h)
		}
	}
	return hit
}

// realDetect completes one delivery on the receiver's goroutine: leave
// the polling queue, run the user callback, then release the put's work
// credit. The callback may Put, Ready, or enqueue entry methods; any
// credits those take are live before this one is returned, so quiescence
// cannot slip past the chain.
func (m *Manager) realDetect(h *Handle) {
	m.pollRemove(h)
	h.pollMisses = 0
	h.state = Fired
	h.delivered++
	h.notifyDelivery()
	h.cb(h.recvCtx)
	m.rt.PutDetected()
}

// realRejectExtension reports the §6 extension models (gets, multicast,
// channel reductions) as unavailable on the real backend: they are
// cost-model studies built on simulator event scheduling.
func (m *Manager) realRejectExtension(what string) error {
	return fmt.Errorf("ckdirect: %s is not supported on the real backend", what)
}
