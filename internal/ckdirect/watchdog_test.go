package ckdirect

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/charm"
	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

func installPlan(rts *charm.RTS, spec string) {
	plan := faults.Plan{Seed: 21, Rules: faults.MustParseSpec(spec)}
	rts.Net().SetInjector(faults.NewPlane(plan, rts.Recorder()))
}

func errorsContain(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestWatchdogReportsLostPut(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	m.SetWatchdog(&Watchdog{}) // report-only, derived deadline
	installPlan(rts, "drop:kind=ckd.put,nth=1")
	fired := false
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) { fired = true })
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fired {
		t.Fatal("callback fired for a dropped put")
	}
	rec := rts.Recorder()
	if n := rec.Count(trace.CntCkdLostPuts); n != 1 {
		t.Fatalf("lost_puts = %d, want 1", n)
	}
	if n := rec.Count(trace.CntCkdStalls); n != 1 {
		t.Fatalf("stalls = %d, want 1", n)
	}
	if !errorsContain(rts.Errors(), "stalled: payload never delivered") {
		t.Fatalf("no stall report in %v", rts.Errors())
	}
	if h.InFlight() != true {
		t.Fatal("lost put should still read as in flight (nothing delivered)")
	}
}

func TestWatchdogRecoversLostPut(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	m.SetWatchdog(&Watchdog{Recover: true})
	installPlan(rts, "drop:kind=ckd.put,nth=1")
	fired := 0
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) { fired++ })
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times, want 1 (reissue delivers)", fired)
	}
	rec := rts.Recorder()
	if n := rec.Count(trace.CntCkdReissues); n != 1 {
		t.Fatalf("reissues = %d, want 1", n)
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("recovered put still reported: %v", errs)
	}
	if h.Delivered() != 1 {
		t.Fatalf("Delivered = %d, want 1", h.Delivered())
	}
}

func TestWatchdogRecoveryExhaustionReports(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	m.SetWatchdog(&Watchdog{Recover: true, MaxReissues: 2})
	installPlan(rts, "drop:kind=ckd.put,rate=1")
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	rec := rts.Recorder()
	if n := rec.Count(trace.CntCkdReissues); n != 2 {
		t.Fatalf("reissues = %d, want 2", n)
	}
	// One stall observation per expired deadline: original + 2 reissues.
	if n := rec.Count(trace.CntCkdStalls); n != 3 {
		t.Fatalf("stalls = %d, want 3", n)
	}
	if !errorsContain(rts.Errors(), "2 reissues") {
		t.Fatalf("exhaustion not reported: %v", rts.Errors())
	}
}

func TestWatchdogSpuriousTimeoutIsHarmless(t *testing.T) {
	// Delay the put far beyond the watchdog deadline: the reissue races a
	// copy that was late, not lost. Delivery must happen exactly once.
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	m.SetWatchdog(&Watchdog{Recover: true})
	installPlan(rts, "delay:kind=ckd.put,nth=1,us=2000")
	fired := 0
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) { fired++ })
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times, want 1", fired)
	}
	rec := rts.Recorder()
	if n := rec.Count(trace.CntCkdDupPuts); n != 1 {
		t.Fatalf("dup_puts = %d, want 1 (the late original discarded)", n)
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

// Satellite coverage: the §2.1 sentinel-collision stall must be reported
// by the watchdog instead of hanging silently. Unchecked mode is the
// interesting one — checked mode already flags the payload at Put time.
func TestWatchdogReportsSentinelCollisionStall(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	m.SetWatchdog(&Watchdog{})
	fired := false
	h, send, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) { fired = true })
	// Craft the forbidden payload: last word equals the sentinel.
	binary.LittleEndian.PutUint64(send.Bytes()[56:], oob)
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if fired {
		t.Fatal("callback fired despite sentinel collision")
	}
	rec := rts.Recorder()
	if n := rec.Count(trace.CntCkdStalls); n != 1 {
		t.Fatalf("stalls = %d, want 1", n)
	}
	if !errorsContain(rts.Errors(), "sentinel collision") {
		t.Fatalf("collision not reported: %v", rts.Errors())
	}
}

// Satellite coverage: ReadyPollQ without the ReadyMark that must precede
// it is detected in checked mode.
func TestMisuseReadyPollQBeforeReadyMark(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run() // deliver + detect: state is now Fired
	if h.State() != Fired {
		t.Fatalf("state = %v, want Fired", h.State())
	}
	m.ReadyPollQ(h)
	if !errorsContain(rts.Errors(), "ReadyMark missing") {
		t.Fatalf("ReadyPollQ-before-ReadyMark not reported: %v", rts.Errors())
	}
}

// Satellite coverage: a second Put while one is already in flight is both
// returned as an error and recorded in checked mode.
func TestMisuseDoublePutInFlight(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(h); err == nil || !strings.Contains(err.Error(), "already in flight") {
		t.Fatalf("double put returned %v", err)
	}
	if !errorsContain(rts.Errors(), "already in flight") {
		t.Fatalf("double put not recorded: %v", rts.Errors())
	}
}

func TestWatchdogDisabledKeepsSilentStall(t *testing.T) {
	// Without a watchdog a lost put is invisible — the seed behaviour.
	// This pins down that detection is opt-in, so the no-fault benchmarks
	// are untouched.
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	installPlan(rts, "drop:kind=ckd.put,rate=1")
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("watchdog-less run reported errors: %v", errs)
	}
	if n := rts.Recorder().Count(trace.CntCkdStalls); n != 0 {
		t.Fatalf("stalls counted without watchdog: %d", n)
	}
}
