package ckdirect

import (
	"encoding/binary"
	"fmt"

	"repro/internal/charm"
)

// Checkpoint hooks: a coordinated checkpoint cuts at a reduction
// barrier, where the application protocol guarantees every put of the
// step has been consumed and every channel re-armed. These methods let
// the charm-layer checkpointer verify that drain (Quiescent — the same
// sequence-guard bookkeeping the stall watchdog uses) and capture the
// registered-buffer contents (PupRegions) so a restored run resumes
// with the exact receiver memory the cut saw, armed sentinels included.

// Quiescent verifies every locally received channel is drained: the
// handle is re-armed (Ready ran after the last delivery — state Armed
// or Marked, never Fired) with no delivery pending, and for real-memory
// regions the sentinel word actually holds the out-of-band pattern. A
// put mid-deposit or an unconsumed delivery fails the check, and the
// checkpoint aborts rather than persist a torn cut.
func (m *Manager) Quiescent() error {
	for _, h := range m.handles {
		if h == nil || !m.rts.HostsPE(h.recvPE) {
			continue
		}
		if h.state == Fired {
			return fmt.Errorf("ckdirect: handle %d holds an unconsumed delivery (state %s) at checkpoint", h.id, h.state)
		}
		if h.pendingDeliver {
			return fmt.Errorf("ckdirect: handle %d has a delivery pending at checkpoint", h.id)
		}
		if b := h.recvBuf.Bytes(); len(b) >= 8 {
			pos := len(b) - 8
			if h.strided != nil {
				pos = stridedSentinelPos(h.strided)
			}
			if binary.LittleEndian.Uint64(b[pos:]) != h.oob {
				return fmt.Errorf("ckdirect: handle %d sentinel not armed at checkpoint (put in flight)", h.id)
			}
		}
	}
	return nil
}

// PupRegions pups the contents of every locally received registered
// buffer, in handle-id order — the id is the channel's wire identity,
// assigned identically on every rank by the SPMD setup, so pack and
// unpack walk the same sequence. Unpacking restores bytes in place
// (the regions alias application buffers), re-materializing the armed
// sentinels the cut saw.
func (m *Manager) PupRegions(p charm.Puper) error {
	count := 0
	for _, h := range m.handles {
		if m.pupsRegion(h) {
			count++
		}
	}
	n := count
	p.Int(&n)
	if n != count {
		return fmt.Errorf("ckdirect: checkpoint has %d registered regions, this setup has %d", n, count)
	}
	for _, h := range m.handles {
		if !m.pupsRegion(h) {
			continue
		}
		id := h.id
		p.Int(&id)
		if id != h.id {
			return fmt.Errorf("ckdirect: checkpoint region for handle %d, expected handle %d", id, h.id)
		}
		b := h.recvBuf.Bytes()
		p.Bytes(&b)
		if err := p.Err(); err != nil {
			return fmt.Errorf("ckdirect: pup region of handle %d: %w", h.id, err)
		}
		if len(b) != len(h.recvBuf.Bytes()) {
			return fmt.Errorf("ckdirect: checkpoint region of handle %d is %d bytes, buffer is %d", h.id, len(b), len(h.recvBuf.Bytes()))
		}
	}
	return nil
}

// pupsRegion reports whether a handle's receive buffer is checkpointed
// here: locally hosted and backed by real memory (virtual regions have
// no bytes to save).
func (m *Manager) pupsRegion(h *Handle) bool {
	return h != nil && m.rts.HostsPE(h.recvPE) && len(h.recvBuf.Bytes()) > 0
}
