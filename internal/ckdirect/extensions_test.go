package ckdirect

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// ---- Strided channels (§6 extension) ----

func TestStridedLayoutValidate(t *testing.T) {
	good := StridedLayout{Offset: 8, BlockLen: 16, Stride: 32, Count: 4}
	if err := good.Validate(8 + 3*32 + 16); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	bad := []StridedLayout{
		{BlockLen: 0, Stride: 8, Count: 1},
		{BlockLen: 16, Stride: 8, Count: 1}, // stride < block
		{BlockLen: 8, Stride: 8, Count: 4, Offset: -1},
		{BlockLen: 8, Stride: 8, Count: 100}, // exceeds region
	}
	for i, l := range bad {
		if err := l.Validate(64); err == nil {
			t.Errorf("bad layout %d accepted: %+v", i, l)
		}
	}
}

// TestStridedPutScattersIntoMatrixColumns: the motivating use case — a
// put that lands as a column panel of a row-major matrix ("a row in the
// middle of a matrix" generalized).
func TestStridedPutScattersIntoMatrixColumns(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	const rows, cols, panel = 6, 8, 2 // destination matrix 6x8 of float64, writing a 2-col panel
	matrix := rts.Machine().AllocRegion(1, rows*cols*8, false)
	layout := StridedLayout{
		Offset:   3 * 8, // panel starts at column 3
		BlockLen: panel * 8,
		Stride:   cols * 8,
		Count:    rows,
	}
	fired := false
	sh, err := m.CreateStridedHandle(1, matrix, layout, oob, func(ctx *charm.Ctx) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(9).Fill(src.Bytes())
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.PutStrided(sh); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !fired {
		t.Fatal("strided callback never fired")
	}
	// Every block landed at its strided position; bytes outside stayed 0.
	for r := 0; r < rows; r++ {
		rowStart := layout.Offset + r*layout.Stride
		want := src.Bytes()[r*layout.BlockLen : (r+1)*layout.BlockLen]
		got := matrix.Bytes()[rowStart : rowStart+layout.BlockLen]
		if !bytes.Equal(got, want) {
			t.Fatalf("row %d panel mismatch", r)
		}
		// The column before the panel must be untouched.
		if matrix.Bytes()[rowStart-1] != 0 {
			t.Fatalf("row %d: byte before panel overwritten", r)
		}
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("errors: %v", rts.Errors())
	}
}

func TestStridedSourceSizeMismatchRejected(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	matrix := rts.Machine().AllocRegion(1, 512, false)
	layout := StridedLayout{BlockLen: 16, Stride: 64, Count: 4}
	sh, err := m.CreateStridedHandle(1, matrix, layout, oob, func(*charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, 32, false) // needs 64
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	if err := m.PutStrided(sh); err == nil {
		t.Fatal("undersized source accepted")
	}
}

func TestStridedReadyCycle(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	matrix := rts.Machine().AllocRegion(1, 256, false)
	layout := StridedLayout{BlockLen: 32, Stride: 64, Count: 4}
	count := 0
	var sh *StridedHandle
	var err error
	sh, err = m.CreateStridedHandle(1, matrix, layout, oob, func(ctx *charm.Ctx) {
		count++
		if count < 3 {
			m.Ready(sh.Handle)
			if err := m.PutStrided(sh); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rts.Machine().AllocRegion(0, layout.TotalBytes(), false)
	rng.New(3).Fill(src.Bytes())
	if err := m.AssocLocal(sh.Handle, 0, src); err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.PutStrided(sh) })
	eng.Run()
	if count != 3 {
		t.Fatalf("strided channel cycled %d times, want 3", count)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("errors: %v", rts.Errors())
	}
}

// TestStridedPropertyScatterGather: scattering then gathering by layout
// reproduces the source, for random layouts.
func TestStridedPropertyScatterGather(t *testing.T) {
	prop := func(seed uint64, blocksRaw, countRaw, gapRaw uint8) bool {
		blockLen := (int(blocksRaw)%7 + 1) * 8
		count := int(countRaw)%6 + 1
		stride := blockLen + int(gapRaw)%32
		l := StridedLayout{Offset: 8, BlockLen: blockLen, Stride: stride, Count: count}
		regionSize := l.Offset + (count-1)*stride + blockLen + 8
		src := make([]byte, l.TotalBytes())
		rng.New(seed).Fill(src)
		dst := make([]byte, regionSize)
		scatter(src, dst, &l)
		// Gather back.
		got := make([]byte, 0, len(src))
		for b := 0; b < count; b++ {
			start := l.Offset + b*stride
			got = append(got, dst[start:start+blockLen]...)
		}
		return bytes.Equal(got, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- Multicast channels (§6 extension) ----

func TestMulticastDeliversToAllMembers(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 4, true)
	mach := rts.Machine()
	src := mach.AllocRegion(0, 128, false)
	rng.New(7).Fill(src.Bytes())

	var members []MulticastMember
	arrived := 0
	recvs := make([]*bytesRegion, 0)
	for pe := 1; pe <= 3; pe++ {
		buf := mach.AllocRegion(pe, 128, false)
		recvs = append(recvs, &bytesRegion{buf.Bytes()})
		members = append(members, MulticastMember{
			PE: pe, Buf: buf,
			Callback: func(ctx *charm.Ctx) { arrived++ },
		})
	}
	mh, err := m.CreateMulticast(0, src, oob, members)
	if err != nil {
		t.Fatal(err)
	}
	allDelivered := false
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.MulticastPut(mh, func() { allDelivered = true }); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if arrived != 3 {
		t.Fatalf("%d member callbacks, want 3", arrived)
	}
	if !allDelivered {
		t.Fatal("sender completion never fired")
	}
	for i, r := range recvs {
		if !bytes.Equal(r.b, src.Bytes()) {
			t.Fatalf("member %d payload mismatch", i)
		}
	}
}

type bytesRegion struct{ b []byte }

func TestMulticastSecondPutWhileOutstandingRejected(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	mach := rts.Machine()
	src := mach.AllocRegion(0, 64, false)
	rng.New(1).Fill(src.Bytes())
	mh, err := m.CreateMulticast(0, src, oob, []MulticastMember{
		{PE: 1, Buf: mach.AllocRegion(1, 64, false), Callback: func(*charm.Ctx) {}},
		{PE: 2, Buf: mach.AllocRegion(2, 64, false), Callback: func(*charm.Ctx) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var second error
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.MulticastPut(mh, nil); err != nil {
			t.Error(err)
		}
		second = m.MulticastPut(mh, nil)
	})
	eng.Run()
	if second == nil {
		t.Fatal("overlapping multicast put accepted")
	}
}

func TestMulticastReadyAllAndRepeat(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	mach := rts.Machine()
	src := mach.AllocRegion(0, 64, false)
	rng.New(2).Fill(src.Bytes())
	arrived := 0
	mh, err := m.CreateMulticast(0, src, oob, []MulticastMember{
		{PE: 1, Buf: mach.AllocRegion(1, 64, false), Callback: func(*charm.Ctx) { arrived++ }},
		{PE: 2, Buf: mach.AllocRegion(2, 64, false), Callback: func(*charm.Ctx) { arrived++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		_ = m.MulticastPut(mh, nil)
	})
	eng.Run()
	m.ReadyAll(mh)
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.MulticastPut(mh, nil); err != nil {
			t.Error(err)
		}
	})
	eng.Resume()
	eng.Run()
	if arrived != 4 {
		t.Fatalf("arrived = %d over two rounds, want 4", arrived)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("errors: %v", rts.Errors())
	}
}

// ---- Reduction channels (§6 extension) ----

func TestReduceChannelCombines(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 4, true)
	mach := rts.Machine()
	var result []float64
	rc, err := m.CreateReduceChannel(3, 3, 2, charm.Sum, oob, func(ctx *charm.Ctx, vals []float64) {
		result = append([]float64(nil), vals...)
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]*machine.Region, 3)
	for i := 0; i < 3; i++ {
		srcs[i] = mach.AllocRegion(i, 16, false)
		if err := m.AssocLocal(rc.SlotHandle(i), i, srcs[i]); err != nil {
			t.Fatal(err)
		}
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		for i := 0; i < 3; i++ {
			v := float64(i + 1)
			if err := m.Contribute(rc, i, srcs[i], []float64{v, v * 10}); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	if len(result) != 2 || result[0] != 6 || result[1] != 60 {
		t.Fatalf("reduce channel result %v, want [6 60]", result)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("errors: %v", rts.Errors())
	}
}

func TestReduceChannelOps(t *testing.T) {
	cases := []struct {
		op   charm.ReduceOp
		want float64
	}{
		{charm.Sum, 6}, {charm.Min, 1}, {charm.Max, 3}, {charm.Prod, 6},
	}
	for _, c := range cases {
		eng, rts, m := newRig(t, netmodel.SurveyorBGP, 4, true)
		mach := rts.Machine()
		var result []float64
		rc, err := m.CreateReduceChannel(3, 3, 1, c.op, oob, func(ctx *charm.Ctx, vals []float64) {
			result = vals
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			src := mach.AllocRegion(i, 8, false)
			if err := m.AssocLocal(rc.SlotHandle(i), i, src); err != nil {
				t.Fatal(err)
			}
			i, src := i, src
			rts.StartAt(i, func(ctx *charm.Ctx) {
				if err := m.Contribute(rc, i, src, []float64{float64(i + 1)}); err != nil {
					t.Error(err)
				}
			})
		}
		eng.Run()
		if len(result) != 1 || result[0] != c.want {
			t.Fatalf("op %v: result %v, want %v", c.op, result, c.want)
		}
	}
}

func TestReduceChannelRepeatsGenerations(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	mach := rts.Machine()
	var results []float64
	var rc *ReduceChannel
	var srcs []*machine.Region
	var err error
	round := 0
	rc, err = m.CreateReduceChannel(2, 2, 1, charm.Sum, oob, func(ctx *charm.Ctx, vals []float64) {
		results = append(results, vals[0])
		round++
		if round < 3 {
			for i := 0; i < 2; i++ {
				if err := m.Contribute(rc, i, srcs[i], []float64{float64(round * 10)}); err != nil {
					t.Error(err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		src := mach.AllocRegion(i, 8, false)
		if err := m.AssocLocal(rc.SlotHandle(i), i, src); err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		for i := 0; i < 2; i++ {
			if err := m.Contribute(rc, i, srcs[i], []float64{1}); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	if len(results) != 3 || results[0] != 2 || results[1] != 20 || results[2] != 40 {
		t.Fatalf("generation results %v, want [2 20 40]", results)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("errors: %v", rts.Errors())
	}
}

// ---- Channel learner (§6 extension) ----

func TestLearnerIdentifiesStableFlows(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 4, false)
	learner := NewLearner(m)
	arr := rts.NewArray("grid", charm.BlockMap1D(4, 4))
	for i := 0; i < 4; i++ {
		arr.Insert(charm.Idx1(i), nil)
	}
	ep := arr.EntryMethod("recv", func(ctx *charm.Ctx, msg *charm.Message) {})
	rts.StartAt(0, func(ctx *charm.Ctx) {
		// A stable flow: same destination, same size, five iterations.
		for k := 0; k < 5; k++ {
			ctx.Send(arr, charm.Idx1(2), ep, &charm.Message{Size: 4096})
		}
		// An unstable flow: size changes every message.
		for k := 0; k < 5; k++ {
			ctx.Send(arr, charm.Idx1(3), ep, &charm.Message{Size: 100 * (k + 1)})
		}
	})
	eng.Run()
	if learner.Flows() != 2 {
		t.Fatalf("observed %d flows, want 2", learner.Flows())
	}
	sug := learner.Advise()
	if len(sug) != 1 {
		t.Fatalf("%d suggestions, want 1 (only the stable flow): %+v", len(sug), sug)
	}
	s := sug[0]
	if s.DstPE != 2 || s.Size != 4096 || s.Messages != 5 {
		t.Fatalf("suggestion %+v", s)
	}
	if s.SavingPerMsg <= 0 {
		t.Fatal("no modelled saving")
	}
}

// TestLearnerSavingMatchesTables: the advertised per-message saving must
// equal the analytic difference between the two paths.
func TestLearnerSavingMatchesTables(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	learner := NewLearner(m)
	arr := rts.NewArray("a", charm.BlockMap1D(2, 2))
	arr.Insert(charm.Idx1(0), nil)
	arr.Insert(charm.Idx1(1), nil)
	ep := arr.EntryMethod("e", func(ctx *charm.Ctx, msg *charm.Message) {})
	const size = 30000
	rts.StartAt(0, func(ctx *charm.Ctx) {
		for k := 0; k < 4; k++ {
			ctx.Send(arr, charm.Idx1(1), ep, &charm.Message{Size: size})
		}
	})
	eng.Run()
	sug := learner.Advise()
	if len(sug) != 1 {
		t.Fatalf("%d suggestions", len(sug))
	}
	plat := netmodel.AbeIB
	wantMsg := plat.CharmMsg.Resolve(size+plat.HeaderBytes).OneWay() + sim.Microseconds(plat.SchedUS)
	wantPut := plat.CkdPut.Resolve(size).OneWay() +
		sim.Microseconds(plat.DetectLatencyUS+plat.DetectCPUUS+plat.CallbackUS)
	if sug[0].SavingPerMsg != wantMsg-wantPut {
		t.Fatalf("saving %v, want %v", sug[0].SavingPerMsg, wantMsg-wantPut)
	}
}

func TestLearnerDetach(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	learner := NewLearner(m)
	arr := rts.NewArray("a", charm.BlockMap1D(2, 2))
	arr.Insert(charm.Idx1(0), nil)
	arr.Insert(charm.Idx1(1), nil)
	ep := arr.EntryMethod("e", func(ctx *charm.Ctx, msg *charm.Message) {})
	learner.Detach()
	rts.StartAt(0, func(ctx *charm.Ctx) {
		ctx.Send(arr, charm.Idx1(1), ep, &charm.Message{Size: 64})
	})
	eng.Run()
	if learner.Flows() != 0 {
		t.Fatal("detached learner still observing")
	}
}

// TestStridedSentinelPosition: the sentinel sits in the tail of the LAST
// block, which under in-order delivery is the final byte range to land.
func TestStridedSentinelPosition(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	matrix := rts.Machine().AllocRegion(1, 512, false)
	layout := StridedLayout{Offset: 16, BlockLen: 32, Stride: 96, Count: 4}
	_, err := m.CreateStridedHandle(1, matrix, layout, oob, func(*charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	pos := stridedSentinelPos(&layout) // 16 + 3*96 + 32 - 8 = 328
	if pos != 328 {
		t.Fatalf("sentinel position %d, want 328", pos)
	}
	got := binary.LittleEndian.Uint64(matrix.Bytes()[pos:])
	if got != oob {
		t.Fatalf("sentinel not stamped at strided position: %#x", got)
	}
	// The region's last word must NOT carry the sentinel (it is outside
	// the layout).
	tail := binary.LittleEndian.Uint64(matrix.Bytes()[504:])
	if tail == oob {
		t.Fatal("sentinel wrongly stamped at region end")
	}
}
