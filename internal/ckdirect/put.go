package ckdirect

import (
	"encoding/binary"
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Put initiates the one-sided transfer on a channel: the contents of the
// associated local buffer are written into the remote receive buffer.
// There is no synchronization with the receiver; the application's own
// phase structure must guarantee the receiver called ReadyMark (or is a
// fresh channel) before the data lands. Violations are detected in
// checked mode.
func (m *Manager) Put(h *Handle) error { return m.PutNotify(h, nil) }

// PutNotify is Put with a local send-completion notification, mirroring
// DCMF's local completion callback: onLocalDone fires on the sender when
// the source buffer may be reused.
func (m *Manager) PutNotify(h *Handle, onLocalDone func()) error {
	if h.sendPE < 0 {
		return m.misuse(fmt.Errorf("ckdirect: Put on handle %d before AssocLocal", h.id))
	}
	if m.rt == nil && h.inFlight {
		// Sim-only: inFlight is cleared by the receiver-side delivery event,
		// which the real backend's sender goroutine must not read.
		return m.misuse(fmt.Errorf("ckdirect: Put on handle %d with a message already in flight", h.id))
	}
	if m.rts.Options().Checked {
		if sb := h.sendBuf.Bytes(); len(sb) >= 8 {
			// The user contract: the OOB pattern never appears as the
			// last word of transmitted data.
			if binary.LittleEndian.Uint64(sb[len(sb)-8:]) == h.oob {
				return m.misuse(fmt.Errorf("ckdirect: handle %d payload ends with the out-of-band pattern %#x", h.id, h.oob))
			}
		}
	}
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr("ckd.puts", 1)
		rec.Incr("ckd.bytes", int64(h.sendBuf.Size()))
	}
	if m.rt != nil {
		m.realPut(h, onLocalDone)
		return nil
	}
	h.inFlight = true
	h.puts++
	h.reissues = 0
	cost := m.rts.Platform().CkdPut.Resolve(h.sendBuf.Size())
	m.issuePut(h, h.puts, cost, onLocalDone)
	return nil
}

// issuePut pushes one copy of put seq onto the wire, paying the full
// CkdPut path cost. It is called once per Put by PutNotify and again per
// recovery attempt by the watchdog — a reissue is charged exactly like the
// original, so recovery latency shows up honestly in benchmarks.
func (m *Manager) issuePut(h *Handle, seq int64, cost netmodel.PathCost, onLocalDone func()) {
	hooks := netmodel.TransferHooks{
		Kind: netmodel.KindCkdPut,
		Flow: h.id,
		// A faulted put vanishes without any receiver-side trace — the
		// defining danger of unsynchronized one-sided communication. The
		// hook only keeps the accounting honest; detection is the
		// watchdog's job.
		OnFault: func(netmodel.Fault) {
			if rec := m.rts.Recorder(); rec != nil {
				rec.Incr(trace.CntCkdLostPuts, 1)
			}
		},
	}
	if onLocalDone != nil {
		hooks.OnSendDone = onLocalDone
	}
	if m.usesPolling() {
		// Infiniband: a true RDMA write. Bytes land with zero receiver
		// CPU; detection happens via the polling queue.
		hooks.OnDeliver = func() { m.deliverRDMA(h, seq) }
	} else {
		// Blue Gene/P: DCMF receive handler places the data and the
		// completion callback invokes the user callback; the cost is the
		// RecvCPU term of the CkdPut table.
		hooks.OnDeliver = func() {
			if h.delivered < seq {
				m.depositPayload(h)
			}
		}
		hooks.OnArrive = func() { m.deliverCallback(h, seq) }
	}
	m.wdArm(h, seq, cost)
	m.rts.Net().Transfer(h.sendPE, h.recvPE, cost, hooks)
}

// deliverRDMA runs at the instant the RDMA write completes in receiver
// memory (Infiniband backend).
func (m *Manager) deliverRDMA(h *Handle, seq int64) {
	if h.delivered >= seq {
		// Replay of an already-delivered put: a duplicate fault, or a
		// watchdog reissue whose original eventually made it. The bytes
		// are identical, the channel has moved on — discard.
		if rec := m.rts.Recorder(); rec != nil {
			rec.Incr(trace.CntCkdDupPuts, 1)
		}
		return
	}
	m.checkOverwrite(h)
	m.depositPayload(h)
	h.inFlight = false
	h.delivered = seq
	m.wdDisarm(h)
	h.notifyDelivery()
	// pendingDeliver means "bytes are in memory but no poll pass has
	// noticed yet"; for virtual regions it also stands in for the cleared
	// sentinel. Detection resets it.
	h.pendingDeliver = true
	if h.inPollQ {
		m.scheduleDetection(h)
	}
	// Otherwise the data landed between ReadyMark and ReadyPollQ: it is
	// detected when the receiver resumes polling (paper §2.1).
}

// deliverCallback is the Blue Gene/P arrival path: the user callback runs
// directly from the DCMF completion callback — no scheduler, no polling.
func (m *Manager) deliverCallback(h *Handle, seq int64) {
	if h.delivered >= seq {
		if rec := m.rts.Recorder(); rec != nil {
			rec.Incr(trace.CntCkdDupPuts, 1)
		}
		return
	}
	m.checkOverwrite(h)
	h.inFlight = false
	h.delivered = seq
	m.wdDisarm(h)
	h.state = Fired
	h.notifyDelivery()
	h.cb(m.rts.CtxOn(h.recvPE))
}

// checkOverwrite flags deliveries into a buffer whose previous contents
// the receiver has not released (state Fired means the callback ran but
// ReadyMark was not yet called).
func (m *Manager) checkOverwrite(h *Handle) {
	if (h.state == Fired || h.pendingDeliver) && m.rts.Options().Checked {
		m.misuse(fmt.Errorf("ckdirect: handle %d data overwritten before ReadyMark (application synchronization violated)", h.id))
	}
}

// scheduleDetection models the polling pass that notices the cleared
// sentinel: after the detection latency, the receiving PE spends
// DetectCPU + Callback CPU, removes the handle from the polling queue and
// invokes the callback.
func (m *Manager) scheduleDetection(h *Handle) {
	plat := m.rts.Platform()
	eng := m.rts.Engine()
	eng.Schedule(sim.Microseconds(plat.DetectLatencyUS), func() {
		if !m.sentinelCleared(h) {
			// The payload's last word equals the sentinel — the user
			// broke the out-of-band contract, so polling can never
			// observe the arrival. In checked mode this was already
			// reported at Put time; either way the channel stalls
			// exactly as real hardware would. A configured watchdog
			// turns the silent stall into a reported one.
			m.wdSentinelStall(h)
			return
		}
		m.pollRemove(h)
		h.pendingDeliver = false
		h.state = Fired
		pe := m.rts.Machine().PE(h.recvPE)
		_, end := pe.Reserve(sim.Microseconds(plat.DetectCPUUS + plat.CallbackUS))
		if rec := m.rts.Recorder(); rec != nil {
			rec.AddTime("ckd.detect", sim.Microseconds(plat.DetectCPUUS+plat.CallbackUS))
		}
		eng.At(end, func() {
			h.cb(m.rts.CtxOn(h.recvPE))
		})
	})
}

// ReadyMark re-arms the channel for the next iteration: the out-of-band
// pattern is stamped back into the receive buffer. It performs no
// communication and no synchronization with the sender (paper §2). On
// Blue Gene/P it only advances the state machine.
func (m *Manager) ReadyMark(h *Handle) {
	if h.state != Fired && m.rts.Options().Checked {
		m.misuse(fmt.Errorf("ckdirect: ReadyMark on handle %d in state %v", h.id, h.state))
	}
	if !m.usesPolling() {
		// No effect on BG/P (paper §2.2) beyond bookkeeping.
		h.state = Armed
		return
	}
	m.writeSentinel(h)
	h.state = Marked
}

// ReadyPollQ resumes polling the channel. Separating it from ReadyMark
// lets the application shorten the window in which the handle occupies
// the polling queue — the fix for OpenAtom's polling overhead (§5.2). If
// the next put already landed, the callback fires now.
func (m *Manager) ReadyPollQ(h *Handle) {
	if !m.usesPolling() {
		return
	}
	if h.state == Fired {
		if m.rts.Options().Checked {
			m.misuse(fmt.Errorf("ckdirect: ReadyPollQ on handle %d in state %v (ReadyMark missing)", h.id, h.state))
		}
		return
	}
	// Calling ReadyPollQ on an already-armed handle is a harmless no-op
	// (a phase boundary may re-arm channels that never left the queue).
	h.state = Armed
	if h.pendingDeliver {
		m.pollInsert(h) // momentarily; detection removes it
		m.scheduleDetection(h)
		return
	}
	m.pollInsert(h)
}

// Ready is the single-call form: ReadyMark immediately followed by
// ReadyPollQ (paper §2: applications without phase structure use this).
func (m *Manager) Ready(h *Handle) {
	m.ReadyMark(h)
	m.ReadyPollQ(h)
}

// misuse reports a contract violation: recorded in checked mode (the
// simulation keeps going, like a production RTS logging an error), and
// returned to the caller either way.
func (m *Manager) misuse(err error) error {
	if m.rts.Options().Checked {
		m.rts.ReportError(err)
	}
	return err
}
