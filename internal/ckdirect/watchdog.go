package ckdirect

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Watchdog is the CkDirect stall detector. The protocol's defining risk
// (paper §2.1) is that a put has no completion handshake: if the RDMA
// write is lost in the network, or the payload's last word collides with
// the out-of-band sentinel, the receiver polls forever and the channel
// stalls silently. A watchdog arms a virtual-time deadline for every
// in-flight put; a put that has not reached receiver memory by its
// deadline is diagnosed as lost and either reported through
// RTS.ReportError or recovered by re-issuing the put (each reissue pays
// the full CkdPut path cost and doubles the deadline). Sentinel
// collisions are reported the moment the first poll pass would have run
// and failed — delivery happened, so no deadline is involved.
//
// The zero value is usable: derived per-put deadlines, reporting only.
type Watchdog struct {
	// Timeout is the deadline for the first delivery attempt. Zero derives
	// a generous default from the put's unloaded one-way latency plus the
	// platform's detection latency — loose enough that CPU noise and
	// queueing never trip it on a healthy network.
	Timeout sim.Time
	// Recover re-issues a lost put instead of (only) reporting it. The
	// receiver-side sequence check discards the stale copy if the original
	// was merely late rather than lost, so recovery is always safe.
	Recover bool
	// MaxReissues bounds recovery attempts per put (default 3); once
	// exhausted the stall is reported like in report-only mode.
	MaxReissues int
}

// SetWatchdog installs (a copy of) the watchdog configuration; nil
// disables stall detection. Call before issuing puts.
func (m *Manager) SetWatchdog(w *Watchdog) {
	if w == nil {
		m.wd = nil
		return
	}
	if m.rt != nil {
		// Virtual-time deadlines have no meaning on the real backend; its
		// stall detection is the realrt progress watchdog, and the
		// shared-memory transport cannot lose a put.
		panic("ckdirect: the put watchdog is sim-only (use the real backend's stall watchdog)")
	}
	wd := *w
	if wd.MaxReissues <= 0 {
		wd.MaxReissues = 3
	}
	m.wd = &wd
}

// Watchdog returns the installed configuration (nil when disabled).
func (m *Manager) Watchdog() *Watchdog { return m.wd }

// wdDeadline is the delivery deadline for a put attempt: configured
// timeout or derived default, doubled per reissue already spent.
func (m *Manager) wdDeadline(h *Handle, cost netmodel.PathCost) sim.Time {
	d := m.wd.Timeout
	if d <= 0 {
		plat := m.rts.Platform()
		d = 4*cost.OneWay() + sim.Microseconds(plat.DetectLatencyUS+100)
	}
	for i := 0; i < h.reissues; i++ {
		d *= 2
	}
	return d
}

// wdArm starts the delivery deadline for put seq on h. No-op without a
// configured watchdog.
func (m *Manager) wdArm(h *Handle, seq int64, cost netmodel.PathCost) {
	if m.wd == nil {
		return
	}
	h.wdTimer = m.rts.Engine().Schedule(m.wdDeadline(h, cost), func() {
		m.wdFire(h, seq, cost)
	})
}

// wdDisarm cancels the pending deadline (delivery happened).
func (m *Manager) wdDisarm(h *Handle) {
	if h.wdTimer != nil {
		h.wdTimer.Cancel()
		h.wdTimer = nil
	}
}

// wdFire runs when a put's deadline expires without delivery.
func (m *Manager) wdFire(h *Handle, seq int64, cost netmodel.PathCost) {
	if h.delivered >= seq {
		// The payload landed after the timer was already committed in the
		// event queue; nothing is wrong.
		return
	}
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr(trace.CntCkdStalls, 1)
	}
	if m.wd.Recover && h.reissues < m.wd.MaxReissues {
		h.reissues++
		if rec := m.rts.Recorder(); rec != nil {
			rec.Incr(trace.CntCkdReissues, 1)
		}
		m.issuePut(h, seq, cost, nil)
		return
	}
	m.rts.ReportError(fmt.Errorf(
		"ckdirect: put %d on channel %d (%d→%d) stalled: payload never delivered within deadline (lost RDMA write, %d reissues)",
		seq, h.id, h.sendPE, h.recvPE, h.reissues))
}

// wdSentinelStall reports the §2.1 sentinel-collision stall: the payload
// was delivered but its last word equals the out-of-band pattern, so the
// poll pass can never observe the arrival and the channel hangs. Called
// from the detection path, which fires exactly when a real poll pass
// would have looked and seen nothing.
func (m *Manager) wdSentinelStall(h *Handle) {
	if m.wd == nil || h.collisionReported {
		return
	}
	h.collisionReported = true
	if rec := m.rts.Recorder(); rec != nil {
		rec.Incr(trace.CntCkdStalls, 1)
	}
	m.rts.ReportError(fmt.Errorf(
		"ckdirect: channel %d (%d→%d) stalled: delivered payload's last word equals the out-of-band pattern %#x (sentinel collision)",
		h.id, h.sendPE, h.recvPE, h.oob))
}
