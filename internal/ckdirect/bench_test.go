package ckdirect

import (
	"testing"

	"repro/internal/charm"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkPutPath measures the simulator cost of one complete put
// (issue, delivery, detection, callback) — how fast the DES can process
// CkDirect traffic, not the modelled latency.
func BenchmarkPutPath(b *testing.B) {
	eng := sim.NewEngine()
	mach, net := netmodel.AbeIB.BuildMachine(eng, 2)
	rts := charm.NewRTS(eng, mach, net, netmodel.AbeIB, trace.NewRecorder(), charm.Options{})
	m := NewManager(rts)
	recv := mach.AllocRegion(1, 4096, false)
	send := mach.AllocRegion(0, 4096, false)
	for i := range send.Bytes() {
		send.Bytes()[i] = byte(i)
	}
	done := 0
	var h *Handle
	var err error
	h, err = m.CreateHandle(1, recv, 0xFFF0000000000001, func(ctx *charm.Ctx) {
		done++
		if done < b.N {
			m.Ready(h)
			if err := m.Put(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AssocLocal(h, 0, send); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := m.Put(h); err != nil {
		b.Fatal(err)
	}
	eng.Run()
	if done != b.N {
		b.Fatalf("completed %d/%d puts", done, b.N)
	}
}

// BenchmarkMessagePath is the same loop over the default Charm++ message
// path, for comparing simulator overheads of the two transports.
func BenchmarkMessagePath(b *testing.B) {
	eng := sim.NewEngine()
	mach, net := netmodel.AbeIB.BuildMachine(eng, 2)
	rts := charm.NewRTS(eng, mach, net, netmodel.AbeIB, trace.NewRecorder(), charm.Options{})
	a := rts.NewArray("b", charm.BlockMap1D(2, 2))
	a.Insert(charm.Idx1(0), nil)
	a.Insert(charm.Idx1(1), nil)
	done := 0
	var ep charm.EP
	ep = a.EntryMethod("pp", func(ctx *charm.Ctx, msg *charm.Message) {
		done++
		if done < b.N {
			dst := 1 - ctx.Index()[0]
			ctx.Send(a, charm.Idx1(dst), ep, &charm.Message{Size: 4096})
		}
	})
	b.ResetTimer()
	a.Send(0, charm.Idx1(1), ep, &charm.Message{Size: 4096})
	eng.Run()
	if done != b.N {
		b.Fatalf("completed %d/%d messages", done, b.N)
	}
}
