package ckdirect

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

const oob uint64 = 0xFFF7DEADBEEF0001 // a quiet-NaN-style pattern

func newRig(t *testing.T, plat *netmodel.Platform, pes int, checked bool) (*sim.Engine, *charm.RTS, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	mach, net := plat.BuildMachine(eng, pes)
	rts := charm.NewRTS(eng, mach, net, plat, trace.NewRecorder(), charm.Options{Checked: checked})
	return eng, rts, NewManager(rts)
}

func mkChannel(t *testing.T, rts *charm.RTS, m *Manager, size int, cb func(*charm.Ctx)) (*Handle, *machine.Region, *machine.Region) {
	t.Helper()
	mach := rts.Machine()
	recv := mach.AllocRegion(1, size, false)
	send := mach.AllocRegion(0, size, false)
	h, err := m.CreateHandle(1, recv, oob, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AssocLocal(h, 0, send); err != nil {
		t.Fatal(err)
	}
	return h, send, recv
}

func TestCreateHandleStampsSentinel(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	recv := rts.Machine().AllocRegion(1, 64, false)
	h, err := m.CreateHandle(1, recv, oob, func(*charm.Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(recv.Bytes()[56:])
	if got != oob {
		t.Fatalf("sentinel = %#x, want %#x", got, oob)
	}
	if !recv.Registered() {
		t.Fatal("receive buffer not registered")
	}
	if m.PolledOn(1) != 1 {
		t.Fatalf("PolledOn = %d, want 1", m.PolledOn(1))
	}
	if h.State() != Armed {
		t.Fatalf("state = %v, want Armed", h.State())
	}
}

func TestCreateHandleValidation(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	mach := rts.Machine()
	if _, err := m.CreateHandle(1, nil, oob, func(*charm.Ctx) {}); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := m.CreateHandle(0, mach.AllocRegion(1, 64, false), oob, func(*charm.Ctx) {}); err == nil {
		t.Error("cross-PE buffer accepted")
	}
	if _, err := m.CreateHandle(1, mach.AllocRegion(1, 4, false), oob, func(*charm.Ctx) {}); err == nil {
		t.Error("buffer smaller than sentinel accepted")
	}
	if _, err := m.CreateHandle(1, mach.AllocRegion(1, 64, false), oob, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestPutDeliversBytesAndCallback(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	var fired sim.Time = -1
	var h *Handle
	var send, recv *machine.Region
	h, send, recv = mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) {
		fired = ctx.Now()
	})
	rng.New(1).Fill(send.Bytes())
	payload := append([]byte(nil), send.Bytes()...)
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if fired < 0 {
		t.Fatal("callback never fired")
	}
	if !bytes.Equal(recv.Bytes(), payload) {
		t.Fatal("receive buffer does not match payload")
	}
	if h.State() != Fired {
		t.Fatalf("state = %v, want Fired", h.State())
	}
	if m.PolledOn(1) != 0 {
		t.Fatal("handle still polled after detection")
	}
	if h.Puts() != 1 || h.Delivered() != 1 {
		t.Fatalf("puts/delivered = %d/%d", h.Puts(), h.Delivered())
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rts.Errors())
	}
}

// TestPutLatencyMatchesModel: on an idle system the callback fires exactly
// one modelled put-path latency after the put issues.
func TestPutLatencyMatchesModel(t *testing.T) {
	for _, plat := range []*netmodel.Platform{netmodel.AbeIB, netmodel.SurveyorBGP} {
		eng, rts, m := newRig(t, plat, 16, false)
		const size = 4096
		var issued, fired sim.Time = -1, -1
		var h *Handle
		mach := rts.Machine()
		recv := mach.AllocRegion(8, size, false)
		send := mach.AllocRegion(0, size, false)
		h, _ = m.CreateHandle(8, recv, oob, func(ctx *charm.Ctx) { fired = ctx.Now() })
		if err := m.AssocLocal(h, 0, send); err != nil {
			t.Fatal(err)
		}
		rts.StartAt(0, func(ctx *charm.Ctx) {
			issued = ctx.Now()
			if err := m.Put(h); err != nil {
				t.Error(err)
			}
		})
		eng.Run()
		cost := plat.CkdPut.Resolve(size)
		want := cost.OneWay()
		if !plat.CkdRecvIsCallback {
			want += sim.Microseconds(plat.DetectLatencyUS + plat.DetectCPUUS + plat.CallbackUS)
		}
		if got := fired - issued; got != want {
			t.Errorf("%s: put latency %v, want %v", plat.Name, got, want)
		}
	}
}

func TestPutBeforeAssocFails(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	recv := rts.Machine().AllocRegion(1, 64, false)
	h, _ := m.CreateHandle(1, recv, oob, func(*charm.Ctx) {})
	if err := m.Put(h); err == nil {
		t.Fatal("Put before AssocLocal succeeded")
	}
}

func TestDoubleAssocFails(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 2, false)
	h, send, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	if err := m.AssocLocal(h, 0, send); err == nil {
		t.Fatal("second AssocLocal succeeded")
	}
}

func TestPutWhileInFlightFails(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	h, _, _ := mkChannel(t, rts, m, 64, func(*charm.Ctx) {})
	var second error
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
		second = m.Put(h)
	})
	eng.Run()
	if second == nil {
		t.Fatal("second Put while in flight succeeded")
	}
	if len(rts.Errors()) == 0 {
		t.Fatal("checked mode did not record the misuse")
	}
}

func TestReadyCycleSupportsRepeatedPuts(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	const iters = 5
	count := 0
	var h *Handle
	var send *machine.Region
	h, send, _ = mkChannel(t, rts, m, 64, func(ctx *charm.Ctx) {
		count++
		if count < iters {
			m.Ready(h)
			// Receiver-driven resend for test purposes: sender puts again.
			if err := m.Put(h); err != nil {
				t.Error(err)
			}
		}
	})
	rng.New(2).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if count != iters {
		t.Fatalf("callback fired %d times, want %d", count, iters)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rts.Errors())
	}
}

// TestPutLandingBetweenMarkAndPollQ: data arriving while the handle is
// not being polled must be detected when ReadyPollQ resumes polling.
func TestPutLandingBetweenMarkAndPollQ(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	fires := 0
	var h *Handle
	var send *machine.Region
	h, send, _ = mkChannel(t, rts, m, 64, func(ctx *charm.Ctx) { fires++ })
	rng.New(3).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
	// After the first delivery: mark, let the sender put again, and only
	// later resume polling.
	eng.Run()
	if fires != 1 {
		t.Fatalf("first put: %d fires", fires)
	}
	m.ReadyMark(h)
	if err := m.Put(h); err != nil {
		t.Fatal(err)
	}
	eng.Run() // delivery lands; handle not polled
	if fires != 1 {
		t.Fatalf("callback fired while not polled: %d", fires)
	}
	if h.State() != Marked {
		t.Fatalf("state %v, want Marked", h.State())
	}
	m.ReadyPollQ(h)
	eng.Run()
	if fires != 2 {
		t.Fatalf("pending delivery not detected at ReadyPollQ: %d fires", fires)
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rts.Errors())
	}
}

func TestOverwriteBeforeReadyMarkDetected(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	h, _, _ := mkChannel(t, rts, m, 64, func(ctx *charm.Ctx) {})
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
	eng.Run() // delivered, callback fired, state Fired, no ReadyMark
	if err := m.Put(h); err != nil {
		t.Fatalf("second put rejected at issue: %v", err)
	}
	eng.Run()
	if len(rts.Errors()) == 0 {
		t.Fatal("overwrite before ReadyMark not detected in checked mode")
	}
}

func TestReadyPollQWithoutMarkDetected(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	h, _, _ := mkChannel(t, rts, m, 64, func(ctx *charm.Ctx) {})
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
	eng.Run()
	m.ReadyPollQ(h) // missing ReadyMark
	if len(rts.Errors()) == 0 {
		t.Fatal("ReadyPollQ without ReadyMark not detected")
	}
}

func TestPayloadEndingWithOOBStallsAndIsReported(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 2, true)
	fired := false
	h, send, _ := mkChannel(t, rts, m, 64, func(ctx *charm.Ctx) { fired = true })
	binary.LittleEndian.PutUint64(send.Bytes()[56:], oob)
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
	eng.Run()
	if fired {
		t.Fatal("callback fired although the sentinel never cleared")
	}
	if len(rts.Errors()) == 0 {
		t.Fatal("checked mode did not flag the out-of-band contract violation")
	}
}

func TestBGPCallbackPathNoPolling(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.SurveyorBGP, 2, true)
	var fired sim.Time = -1
	h, send, recv := mkChannel(t, rts, m, 128, func(ctx *charm.Ctx) { fired = ctx.Now() })
	rng.New(4).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
	eng.Run()
	if fired < 0 {
		t.Fatal("callback never fired")
	}
	if m.PolledOn(1) != 0 {
		t.Fatal("BG/P backend must not poll")
	}
	if !bytes.Equal(send.Bytes(), recv.Bytes()) {
		t.Fatal("payload mismatch")
	}
	// Ready calls are no-ops on BG/P but keep the state machine legal.
	m.ReadyMark(h)
	m.ReadyPollQ(h)
	if h.State() != Armed {
		t.Fatalf("state %v after Ready, want Armed", h.State())
	}
	if len(rts.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rts.Errors())
	}
}

func TestSameSendBufferMultipleHandles(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 4, true)
	mach := rts.Machine()
	send := mach.AllocRegion(0, 64, false)
	rng.New(5).Fill(send.Bytes())
	var fires int
	var handles []*Handle
	for pe := 1; pe <= 3; pe++ {
		recv := mach.AllocRegion(pe, 64, false)
		h, err := m.CreateHandle(pe, recv, oob, func(ctx *charm.Ctx) { fires++ })
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AssocLocal(h, 0, send); err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	rts.StartAt(0, func(ctx *charm.Ctx) {
		for _, h := range handles {
			if err := m.Put(h); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	if fires != 3 {
		t.Fatalf("%d callbacks, want 3 (one send buffer fanned out)", fires)
	}
}

// TestVirtualAndRealPayloadsSameTiming: the virtual-payload mode used for
// large sweeps must produce bit-identical virtual times.
func TestVirtualAndRealPayloadsSameTiming(t *testing.T) {
	run := func(virtual bool) sim.Time {
		eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
		mach := rts.Machine()
		recv := mach.AllocRegion(1, 4096, virtual)
		send := mach.AllocRegion(0, 4096, virtual)
		var fired sim.Time
		h, err := m.CreateHandle(1, recv, oob, func(ctx *charm.Ctx) { fired = ctx.Now() })
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AssocLocal(h, 0, send); err != nil {
			t.Fatal(err)
		}
		rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
		eng.Run()
		return fired
	}
	if r, v := run(false), run(true); r != v {
		t.Fatalf("real %v != virtual %v", r, v)
	}
}

// TestPropertyRandomPayloadsAlwaysDetected: any payload whose final word
// differs from the sentinel is delivered intact and detected, including
// payloads that contain the OOB pattern in their interior.
func TestPropertyRandomPayloadsAlwaysDetected(t *testing.T) {
	prop := func(seed uint64, sizeRaw uint16, plantInterior bool) bool {
		size := int(sizeRaw)%1024 + 16
		size &^= 7 // word-aligned for a clean interior plant
		eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
		mach := rts.Machine()
		recv := mach.AllocRegion(1, size, false)
		send := mach.AllocRegion(0, size, false)
		fired := false
		h, err := m.CreateHandle(1, recv, oob, func(ctx *charm.Ctx) { fired = true })
		if err != nil {
			return false
		}
		if err := m.AssocLocal(h, 0, send); err != nil {
			return false
		}
		rng.New(seed).Fill(send.Bytes())
		if plantInterior && size >= 24 {
			// The OOB pattern in the interior must not confuse detection,
			// which only inspects the last double word.
			binary.LittleEndian.PutUint64(send.Bytes()[:8], oob)
		}
		if binary.LittleEndian.Uint64(send.Bytes()[size-8:]) == oob {
			return true // vanishingly unlikely; contract excludes it
		}
		rts.StartAt(0, func(ctx *charm.Ctx) { _ = m.Put(h) })
		eng.Run()
		return fired && bytes.Equal(send.Bytes(), recv.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPollTaxIntegration: handles sitting in the polling queue slow down
// unrelated message dispatch (the §5.2 pathology), and removing them
// (ReadyMark-only channels stay unpolled) restores performance.
func TestPollTaxIntegration(t *testing.T) {
	deliveryTime := func(handles int) sim.Time {
		eng, rts, m := newRig(t, netmodel.AbeIB, 2, false)
		mach := rts.Machine()
		for i := 0; i < handles; i++ {
			recv := mach.AllocRegion(1, 64, false)
			if _, err := m.CreateHandle(1, recv, oob, func(*charm.Ctx) {}); err != nil {
				t.Fatal(err)
			}
		}
		var sent, at sim.Time
		ep := rts.RegisterPEHandler(func(ctx *charm.Ctx, msg *charm.Message) { at = ctx.Now() })
		rts.StartAt(0, func(ctx *charm.Ctx) {
			// Delay the probe until the one-time handle-creation CPU on
			// PE 1 has long drained; only the steady-state tax remains.
			ctx.After(10*sim.Millisecond, func(ctx *charm.Ctx) {
				sent = ctx.Now()
				ctx.SendPE(1, ep, &charm.Message{Size: 64})
			})
		})
		eng.Run()
		return at - sent
	}
	none, many := deliveryTime(0), deliveryTime(200)
	wantTax := sim.Nanoseconds(netmodel.AbeIB.PollPerHandleNS * 200)
	if many-none != wantTax {
		t.Fatalf("200-handle tax = %v, want %v", many-none, wantTax)
	}
}
