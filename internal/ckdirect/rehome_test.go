package ckdirect

import (
	"strings"
	"testing"

	"repro/internal/charm"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/trace"
)

// TestRehomeRecvMovesEndpoint drives a full migrate cycle on a drained
// channel: the endpoint moves PEs, the polling queue follows, the
// delivery counters reset, and the next put lands at the new PE.
func TestRehomeRecvMovesEndpoint(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	var deliveries []int
	var h *Handle
	var send *machine.Region
	rehomed := false
	h, send, _ = mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) {
		deliveries = append(deliveries, ctx.PE())
		if len(deliveries) == 1 {
			m.Ready(h)
			m.RehomeRecv(h, 2, func() { rehomed = true })
			if err := m.Put(h); err != nil {
				t.Error(err)
			}
		}
	})
	rng.New(3).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if errs := rts.Errors(); len(errs) > 0 {
		t.Fatalf("clean rehome reported errors: %v", errs)
	}
	if !rehomed {
		t.Fatal("rehome completion callback never fired")
	}
	if len(deliveries) != 2 || deliveries[0] != 1 || deliveries[1] != 2 {
		t.Fatalf("deliveries on PEs %v, want [1 2]", deliveries)
	}
	if h.recvPE != 2 {
		t.Fatalf("recvPE = %d, want 2", h.recvPE)
	}
	if m.PolledOn(1) != 0 {
		t.Fatalf("old PE still polls %d handles", m.PolledOn(1))
	}
	if got := rts.Recorder().Counters()[trace.CntLBRehomedRecv]; got != 1 {
		t.Fatalf("%s = %d, want 1", trace.CntLBRehomedRecv, got)
	}
	// The joint counter reset: the post-rehome put was sequence 1 again.
	if h.puts != 1 || h.delivered != 1 {
		t.Fatalf("counters after rehome+put: puts %d delivered %d, want 1/1", h.puts, h.delivered)
	}
}

// TestRehomeRecvRefusesMidPut is the drain-guard test: a put is on the
// wire when the rehome arrives, so the move must be refused — the
// endpoint stays, the sentinel still guards the region the put will
// land in, and the delivery publishes against the original PE.
func TestRehomeRecvRefusesMidPut(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	var deliveries []int
	var h *Handle
	var send *machine.Region
	done := false
	h, send, _ = mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) {
		deliveries = append(deliveries, ctx.PE())
	})
	rng.New(4).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
		// The put is in flight right now; migrating the receive endpoint
		// would re-stamp the sentinel over a region the transfer no
		// longer targets.
		m.RehomeRecv(h, 2, func() { done = true })
	})
	eng.Run()
	errs := rts.Errors()
	if len(errs) == 0 {
		t.Fatal("mid-put rehome was not refused")
	}
	if !strings.Contains(errs[0].Error(), "in flight") {
		t.Fatalf("unhelpful refusal: %v", errs[0])
	}
	if !done {
		t.Fatal("refused rehome must still fire done (the balancer counts it)")
	}
	if h.recvPE != 1 {
		t.Fatalf("refused rehome moved the endpoint to PE %d", h.recvPE)
	}
	if len(deliveries) != 1 || deliveries[0] != 1 {
		t.Fatalf("deliveries on PEs %v, want [1]: the put must land at its original target", deliveries)
	}
	if h.state != Fired {
		t.Fatalf("state %v after delivery, want Fired — the original channel kept working", h.state)
	}
}

// TestRehomeRecvRefusesUnconsumedDelivery: a delivery the receiver has
// not re-armed past (state Fired) equally blocks the move.
func TestRehomeRecvRefusesUnconsumedDelivery(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	var h *Handle
	var send *machine.Region
	h, send, _ = mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) {
		// No Ready: the channel stays Fired with the payload unconsumed.
		m.RehomeRecv(h, 2, func() {})
	})
	rng.New(5).Fill(send.Bytes())
	rts.StartAt(0, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	errs := rts.Errors()
	if len(errs) == 0 {
		t.Fatal("rehome of an unconsumed channel was not refused")
	}
	if h.recvPE != 1 {
		t.Fatalf("refused rehome moved the endpoint to PE %d", h.recvPE)
	}
}

// TestRehomeSendMovesSource: the send endpoint is pure bookkeeping; the
// next put must flow from the new PE and still deliver.
func TestRehomeSendMovesSource(t *testing.T) {
	eng, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	fired := 0
	var h *Handle
	var send *machine.Region
	h, send, _ = mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) { fired++ })
	rng.New(6).Fill(send.Bytes())
	m.RehomeSend(h, 2)
	if h.sendPE != 2 {
		t.Fatalf("sendPE = %d, want 2", h.sendPE)
	}
	rts.StartAt(2, func(ctx *charm.Ctx) {
		if err := m.Put(h); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if errs := rts.Errors(); len(errs) > 0 {
		t.Fatal(errs)
	}
	if fired != 1 {
		t.Fatalf("put after send rehome delivered %d times", fired)
	}
	if got := rts.Recorder().Counters()[trace.CntLBRehomedSend]; got != 1 {
		t.Fatalf("%s = %d, want 1", trace.CntLBRehomedSend, got)
	}
}

// TestRehomeRecvSamePEIsNoop: a move to the current PE completes
// immediately without disturbing anything.
func TestRehomeRecvSamePEIsNoop(t *testing.T) {
	_, rts, m := newRig(t, netmodel.AbeIB, 3, true)
	h, _, _ := mkChannel(t, rts, m, 256, func(ctx *charm.Ctx) {})
	done := false
	m.RehomeRecv(h, 1, func() { done = true })
	if !done {
		t.Fatal("same-PE rehome did not complete synchronously")
	}
	if m.PolledOn(1) != 1 {
		t.Fatalf("same-PE rehome disturbed the poll set: %d", m.PolledOn(1))
	}
}
