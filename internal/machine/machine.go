// Package machine models the hardware substrate: processing elements
// (PEs), their grouping into nodes, memory regions that network hardware
// can address, and interconnect topologies.
//
// A PE serializes CPU work: the runtime layers above reserve CPU time on a
// PE for every software action whose cost they model (packing a message,
// running the scheduler, executing an entry method, polling CkDirect
// handles). Network transit time is *not* PE time — that separation is what
// lets communication overlap computation in the simulation exactly as it
// does on real message-driven systems.
package machine

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes a simulated machine.
type Config struct {
	// PEs is the number of processing elements (cores running one
	// runtime scheduler each, Charm++'s "processor").
	PEs int
	// CoresPerNode groups PEs onto nodes; PEs on one node share a network
	// interface. Abe ran 8 cores/node, BG/P 4 (we follow the paper's runs,
	// e.g. 2 cores/node for the OpenAtom Abe study).
	CoresPerNode int
	// Topology is the interconnect shape, used for hop counts.
	Topology Topology
}

// Validate checks the configuration for obvious errors.
func (c Config) Validate() error {
	if c.PEs <= 0 {
		return fmt.Errorf("machine: PEs must be positive, got %d", c.PEs)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("machine: CoresPerNode must be positive, got %d", c.CoresPerNode)
	}
	return nil
}

// Machine is a collection of PEs sharing a virtual clock and an
// interconnect.
type Machine struct {
	Engine *sim.Engine
	cfg    Config
	pes    []*PE
}

// New builds a machine on the given engine. It panics on invalid
// configuration (construction happens before any experiment runs, so
// failing fast is appropriate).
func New(engine *sim.Engine, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Topology == nil {
		cfg.Topology = FlatTopology{}
	}
	m := &Machine{Engine: engine, cfg: cfg}
	m.pes = make([]*PE, cfg.PEs)
	for i := range m.pes {
		m.pes[i] = &PE{
			id:      i,
			node:    i / cfg.CoresPerNode,
			machine: m,
		}
	}
	return m
}

// NumPEs returns the number of processing elements.
func (m *Machine) NumPEs() int { return m.cfg.PEs }

// NumNodes returns the number of nodes.
func (m *Machine) NumNodes() int {
	return (m.cfg.PEs + m.cfg.CoresPerNode - 1) / m.cfg.CoresPerNode
}

// PE returns processing element i.
func (m *Machine) PE(i int) *PE { return m.pes[i] }

// Topology returns the interconnect topology.
func (m *Machine) Topology() Topology { return m.cfg.Topology }

// Hops returns the network hop count between the nodes hosting two PEs.
// Two PEs on the same node are 0 hops apart.
func (m *Machine) Hops(srcPE, dstPE int) int {
	src, dst := m.pes[srcPE].node, m.pes[dstPE].node
	if src == dst {
		return 0
	}
	return m.cfg.Topology.Hops(src, dst)
}

// PE is one simulated processing element.
type PE struct {
	id      int
	node    int
	machine *Machine

	busyUntil sim.Time
	busyTotal sim.Time
}

// ID returns the PE's index.
func (pe *PE) ID() int { return pe.id }

// Node returns the node hosting this PE.
func (pe *PE) Node() int { return pe.node }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.machine }

// Reserve claims the CPU for cost units of virtual time, starting at the
// earliest instant the CPU is free (never before Now). It returns the
// start and end of the reservation. Callers schedule their completion
// logic at end.
//
// Reservations are granted in call order, which — because the simulation
// is single-threaded and deterministic — models a FIFO CPU.
func (pe *PE) Reserve(cost sim.Time) (start, end sim.Time) {
	if cost < 0 {
		panic(fmt.Sprintf("machine: negative CPU cost %v on PE %d", cost, pe.id))
	}
	now := pe.machine.Engine.Now()
	start = pe.busyUntil
	if start < now {
		start = now
	}
	end = start + cost
	pe.busyUntil = end
	pe.busyTotal += cost
	return start, end
}

// FreeAt reports the earliest time the CPU will be free given current
// reservations.
func (pe *PE) FreeAt() sim.Time {
	now := pe.machine.Engine.Now()
	if pe.busyUntil < now {
		return now
	}
	return pe.busyUntil
}

// BusyTotal reports the total CPU time reserved on this PE so far; the
// benchmark harness uses it for utilization accounting.
func (pe *PE) BusyTotal() sim.Time { return pe.busyTotal }
