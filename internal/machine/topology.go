package machine

import "fmt"

// Topology abstracts the interconnect shape. Network models consult it
// for hop counts, which feed per-hop latency terms (significant on Blue
// Gene/P's 3-D torus, negligible on Abe's two-level fat-tree).
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Hops returns the number of network links on the route between two
	// distinct nodes. Implementations may assume src != dst.
	Hops(srcNode, dstNode int) int
}

// FlatTopology treats every node pair as one hop apart: a crossbar. It is
// the default when no topology is specified and a good model for a
// single-switch cluster.
type FlatTopology struct{}

// Name implements Topology.
func (FlatTopology) Name() string { return "flat" }

// Hops implements Topology.
func (FlatTopology) Hops(srcNode, dstNode int) int { return 1 }

// TreeTopology models a two-level fat-tree like Abe's Infiniband fabric:
// nodes within a leaf switch are 1 hop apart, across leaf switches 3 hops
// (leaf, spine, leaf).
type TreeTopology struct {
	// LeafSize is the number of nodes per leaf switch.
	LeafSize int
}

// Name implements Topology.
func (t TreeTopology) Name() string { return fmt.Sprintf("fat-tree(leaf=%d)", t.LeafSize) }

// Hops implements Topology.
func (t TreeTopology) Hops(srcNode, dstNode int) int {
	if t.LeafSize <= 0 {
		return 1
	}
	if srcNode/t.LeafSize == dstNode/t.LeafSize {
		return 1
	}
	return 3
}

// TorusTopology models a 3-D torus with wraparound links, like Blue
// Gene/P. Node i maps to coordinates (i % X, (i/X) % Y, i/(X*Y)).
type TorusTopology struct {
	X, Y, Z int
}

// TorusFor chooses a reasonable near-cubic torus shape for n nodes,
// mirroring how BG/P partitions are allocated in powers of two. The
// returned torus has X*Y*Z >= n.
func TorusFor(n int) TorusTopology {
	if n < 1 {
		n = 1
	}
	dims := [3]int{1, 1, 1}
	i := 0
	for dims[0]*dims[1]*dims[2] < n {
		dims[i%3] *= 2
		i++
	}
	return TorusTopology{X: dims[0], Y: dims[1], Z: dims[2]}
}

// Name implements Topology.
func (t TorusTopology) Name() string { return fmt.Sprintf("torus(%dx%dx%d)", t.X, t.Y, t.Z) }

// Coords returns the torus coordinates for a node index.
func (t TorusTopology) Coords(node int) (x, y, z int) {
	x = node % t.X
	y = (node / t.X) % t.Y
	z = node / (t.X * t.Y)
	return
}

// Hops implements Topology: Manhattan distance with wraparound.
func (t TorusTopology) Hops(srcNode, dstNode int) int {
	sx, sy, sz := t.Coords(srcNode)
	dx, dy, dz := t.Coords(dstNode)
	return torusDist(sx, dx, t.X) + torusDist(sy, dy, t.Y) + torusDist(sz, dz, t.Z)
}

func torusDist(a, b, dim int) int {
	if dim <= 1 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := dim - d; wrap < d {
		return wrap
	}
	return d
}
