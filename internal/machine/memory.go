package machine

import (
	"fmt"
	"unsafe"
)

// Region is a block of PE-local memory that network hardware may address.
// Regions come in two payload modes:
//
//   - Real: a backing []byte exists; puts and message deliveries copy
//     actual bytes, so correctness (sentinel detection, halo contents,
//     matrix products) is exercised end-to-end.
//   - Virtual: no backing storage; only the size participates in the cost
//     model. Virtual regions let the harness run 4096-PE configurations
//     without allocating the aggregate buffer footprint of a real machine.
//
// Tests assert that small configurations produce identical virtual-time
// results under both modes, which is what justifies using Virtual mode for
// the large figure sweeps.
type Region struct {
	pe         *PE
	size       int
	buf        []byte
	registered bool
	// owned marks storage the region allocated itself (AllocRegion).
	// Only owned storage may be transparently migrated by Rebind: a
	// wrapped region aliases a caller-held slice, and the caller reads
	// that slice directly — moving the bytes out from under it would
	// silently decouple the two views.
	owned bool
}

// AllocRegion allocates a memory region of size bytes on PE pe. When
// virtual is true the region carries no backing bytes.
func (m *Machine) AllocRegion(pe int, size int, virtual bool) *Region {
	if pe < 0 || pe >= len(m.pes) {
		panic(fmt.Sprintf("machine: AllocRegion on invalid PE %d", pe))
	}
	if size < 0 {
		panic(fmt.Sprintf("machine: AllocRegion with negative size %d", size))
	}
	r := &Region{pe: m.pes[pe], size: size}
	if !virtual {
		r.buf = make([]byte, size)
		r.owned = true
	}
	return r
}

// WrapRegion adopts an existing byte slice as a region on PE pe. The
// caller retains access to the slice; the region aliases it. This is how
// application-owned buffers (a row in the middle of a matrix, a halo face)
// become network-addressable, mirroring RDMA memory registration of user
// buffers.
func (m *Machine) WrapRegion(pe int, buf []byte) *Region {
	if pe < 0 || pe >= len(m.pes) {
		panic(fmt.Sprintf("machine: WrapRegion on invalid PE %d", pe))
	}
	return &Region{pe: m.pes[pe], size: len(buf), buf: buf}
}

// Rebind migrates the region onto different backing storage of the same
// size, copying the current contents across. This is how a registered
// receive buffer moves into a shared-memory arena after allocation: the
// application's held *Region keeps working — every Bytes()/Uint64At view
// resolves through r.buf — while the bytes themselves become addressable
// by a co-located peer process. Only regions that own their storage
// (AllocRegion) are eligible; a WrapRegion'd buffer stays put because
// its caller reads the wrapped slice directly.
func (r *Region) Rebind(buf []byte) error {
	if r.buf == nil {
		return fmt.Errorf("machine: Rebind of a virtual region")
	}
	if !r.owned {
		return fmt.Errorf("machine: Rebind of a wrapped region (caller aliases the storage)")
	}
	if len(buf) != r.size {
		return fmt.Errorf("machine: Rebind size %d, region is %d", len(buf), r.size)
	}
	copy(buf, r.buf)
	r.buf = buf
	r.owned = false
	return nil
}

// Rebindable reports whether Rebind may migrate this region's storage.
func (r *Region) Rebindable() bool { return r.owned && r.buf != nil }

// PE returns the processing element owning this region.
func (r *Region) PE() *PE { return r.pe }

// Size returns the region size in bytes.
func (r *Region) Size() int { return r.size }

// Virtual reports whether the region has no backing bytes.
func (r *Region) Virtual() bool { return r.buf == nil && r.size > 0 }

// Bytes returns the backing slice, or nil for virtual regions.
func (r *Region) Bytes() []byte { return r.buf }

// Registered reports whether the region has been registered with the
// (simulated) network hardware.
func (r *Region) Registered() bool { return r.registered }

// SetRegistered records registration state; network models call this when
// charging (or skipping, on a cache hit) registration cost.
func (r *Region) SetRegistered(v bool) { r.registered = v }

// Uint64At returns a pointer to the 8-byte word at byte offset off,
// suitable for atomic loads and stores — the real-execution backend's
// sentinel word. It fails for virtual regions, out-of-range offsets, and
// words not aligned to 8 bytes (64-bit atomics require natural alignment;
// Go's allocator 8-aligns every []byte whose length is a multiple of 8,
// so in practice this constrains off, not the buffer).
func (r *Region) Uint64At(off int) (*uint64, error) {
	if r.buf == nil {
		return nil, fmt.Errorf("machine: Uint64At on a virtual region")
	}
	if off < 0 || off+8 > len(r.buf) {
		return nil, fmt.Errorf("machine: Uint64At offset %d outside region of %d bytes", off, len(r.buf))
	}
	p := unsafe.Pointer(&r.buf[off])
	if uintptr(p)%8 != 0 {
		return nil, fmt.Errorf("machine: word at offset %d is not 8-byte aligned", off)
	}
	return (*uint64)(p), nil
}

// CopyTo copies min(len) bytes from r into dst. Copies involving a
// virtual endpoint move no bytes but are still legal: the cost model has
// already accounted for the transfer.
func (r *Region) CopyTo(dst *Region) {
	if r.buf == nil || dst.buf == nil {
		return
	}
	copy(dst.buf, r.buf)
}
