package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestMachine(pes, coresPerNode int) (*sim.Engine, *Machine) {
	e := sim.NewEngine()
	m := New(e, Config{PEs: pes, CoresPerNode: coresPerNode})
	return e, m
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{PEs: 0, CoresPerNode: 1}).Validate(); err == nil {
		t.Fatal("zero PEs accepted")
	}
	if err := (Config{PEs: 4, CoresPerNode: 0}).Validate(); err == nil {
		t.Fatal("zero CoresPerNode accepted")
	}
	if err := (Config{PEs: 4, CoresPerNode: 2}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNodeAssignment(t *testing.T) {
	_, m := newTestMachine(8, 4)
	if m.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", m.NumNodes())
	}
	for i := 0; i < 8; i++ {
		want := i / 4
		if m.PE(i).Node() != want {
			t.Fatalf("PE %d on node %d, want %d", i, m.PE(i).Node(), want)
		}
	}
}

func TestSameNodeZeroHops(t *testing.T) {
	_, m := newTestMachine(8, 4)
	if h := m.Hops(0, 3); h != 0 {
		t.Fatalf("intra-node hops = %d, want 0", h)
	}
	if h := m.Hops(0, 4); h != 1 {
		t.Fatalf("flat inter-node hops = %d, want 1", h)
	}
}

func TestReserveSerializesWork(t *testing.T) {
	e, m := newTestMachine(1, 1)
	pe := m.PE(0)

	s1, e1 := pe.Reserve(10 * sim.Microsecond)
	if s1 != 0 || e1 != 10*sim.Microsecond {
		t.Fatalf("first reservation [%v,%v]", s1, e1)
	}
	s2, e2 := pe.Reserve(5 * sim.Microsecond)
	if s2 != 10*sim.Microsecond || e2 != 15*sim.Microsecond {
		t.Fatalf("second reservation [%v,%v], want queued after first", s2, e2)
	}
	// Advance virtual time past all reservations; new work starts at Now.
	e.Schedule(100*sim.Microsecond, func() {
		s3, e3 := pe.Reserve(sim.Microsecond)
		if s3 != 100*sim.Microsecond || e3 != 101*sim.Microsecond {
			t.Errorf("idle reservation [%v,%v], want at now", s3, e3)
		}
	})
	e.Run()
	if pe.BusyTotal() != 16*sim.Microsecond {
		t.Fatalf("BusyTotal = %v, want 16us", pe.BusyTotal())
	}
}

func TestReserveZeroCost(t *testing.T) {
	_, m := newTestMachine(1, 1)
	s, end := m.PE(0).Reserve(0)
	if s != end {
		t.Fatalf("zero-cost reservation [%v,%v]", s, end)
	}
}

func TestReserveNegativePanics(t *testing.T) {
	_, m := newTestMachine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Reserve did not panic")
		}
	}()
	m.PE(0).Reserve(-1)
}

func TestFreeAt(t *testing.T) {
	_, m := newTestMachine(1, 1)
	pe := m.PE(0)
	if pe.FreeAt() != 0 {
		t.Fatalf("fresh PE FreeAt = %v", pe.FreeAt())
	}
	pe.Reserve(7)
	if pe.FreeAt() != 7 {
		t.Fatalf("FreeAt = %v, want 7", pe.FreeAt())
	}
}

func TestRegionRealAndVirtual(t *testing.T) {
	_, m := newTestMachine(2, 1)
	real := m.AllocRegion(0, 64, false)
	virt := m.AllocRegion(1, 64, true)
	if real.Virtual() || real.Bytes() == nil || real.Size() != 64 {
		t.Fatal("real region malformed")
	}
	if !virt.Virtual() || virt.Bytes() != nil || virt.Size() != 64 {
		t.Fatal("virtual region malformed")
	}
	if real.PE().ID() != 0 || virt.PE().ID() != 1 {
		t.Fatal("region PE assignment wrong")
	}
}

func TestWrapRegionAliases(t *testing.T) {
	_, m := newTestMachine(1, 1)
	buf := []byte{1, 2, 3, 4}
	r := m.WrapRegion(0, buf)
	if r.Size() != 4 {
		t.Fatalf("Size = %d", r.Size())
	}
	r.Bytes()[2] = 99
	if buf[2] != 99 {
		t.Fatal("WrapRegion did not alias caller's slice")
	}
}

func TestCopyToRealToReal(t *testing.T) {
	_, m := newTestMachine(2, 1)
	src := m.WrapRegion(0, []byte{5, 6, 7})
	dst := m.AllocRegion(1, 3, false)
	src.CopyTo(dst)
	got := dst.Bytes()
	if got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("copy result %v", got)
	}
}

func TestCopyToVirtualIsNoop(t *testing.T) {
	_, m := newTestMachine(2, 1)
	src := m.AllocRegion(0, 8, true)
	dst := m.AllocRegion(1, 8, false)
	src.CopyTo(dst) // must not panic
	dst2 := m.AllocRegion(1, 8, true)
	m.WrapRegion(0, []byte{1}).CopyTo(dst2) // must not panic
}

func TestAllocRegionBadPEPanics(t *testing.T) {
	_, m := newTestMachine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AllocRegion on PE 5 did not panic")
		}
	}()
	m.AllocRegion(5, 1, false)
}

func TestTreeTopologyHops(t *testing.T) {
	tr := TreeTopology{LeafSize: 4}
	if tr.Hops(0, 3) != 1 {
		t.Fatal("same leaf should be 1 hop")
	}
	if tr.Hops(0, 4) != 3 {
		t.Fatal("cross leaf should be 3 hops")
	}
}

func TestTorusForCoversN(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100, 512, 1024, 4096} {
		tt := TorusFor(n)
		if tt.X*tt.Y*tt.Z < n {
			t.Fatalf("TorusFor(%d) = %v too small", n, tt)
		}
		// Near-cubic: no dimension more than 4x another (powers of two
		// growth round-robin guarantees this).
		maxd := max3(tt.X, tt.Y, tt.Z)
		mind := min3(tt.X, tt.Y, tt.Z)
		if maxd > 4*mind {
			t.Fatalf("TorusFor(%d) = %v too skewed", n, tt)
		}
	}
}

func TestTorusHopsKnownCases(t *testing.T) {
	tt := TorusTopology{X: 4, Y: 4, Z: 4}
	if h := tt.Hops(0, 1); h != 1 {
		t.Fatalf("adjacent X hops = %d", h)
	}
	if h := tt.Hops(0, 3); h != 1 {
		t.Fatalf("wraparound X hops = %d, want 1", h)
	}
	// (0,0,0) -> (2,2,2) is 2+2+2 = 6 (max distance in a 4-torus).
	if h := tt.Hops(0, 2+2*4+2*16); h != 6 {
		t.Fatalf("diagonal hops = %d, want 6", h)
	}
}

// Property: torus distance is a metric — symmetric, zero iff equal nodes,
// and satisfies the triangle inequality.
func TestTorusMetricProperties(t *testing.T) {
	tt := TorusTopology{X: 4, Y: 2, Z: 8}
	n := tt.X * tt.Y * tt.Z
	prop := func(a, b, c uint16) bool {
		na, nb, nc := int(a)%n, int(b)%n, int(c)%n
		dab := tt.Hops(na, nb)
		dba := tt.Hops(nb, na)
		if dab != dba {
			return false
		}
		if (dab == 0) != (na == nb) {
			return false
		}
		return tt.Hops(na, nc) <= dab+tt.Hops(nb, nc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func max3(a, b, c int) int {
	if a < b {
		a = b
	}
	if a < c {
		a = c
	}
	return a
}

func min3(a, b, c int) int {
	if a > b {
		a = b
	}
	if a > c {
		a = c
	}
	return a
}
