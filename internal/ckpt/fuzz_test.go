package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCkptCodec drives arbitrary bytes through Decode (it must never
// panic, and anything it accepts must re-encode byte-identically) and
// arbitrary snapshots through Encode->Decode (which must round-trip).
func FuzzCkptCodec(f *testing.F) {
	seed, _ := Encode(&Snapshot{Rank: 1, World: 4, Step: 20, Payload: []byte("state")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, magic2, magic3, Version, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode differs from accepted input")
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if s2.Rank != s.Rank || s2.World != s.World || s2.Step != s.Step || !bytes.Equal(s2.Payload, s.Payload) {
			t.Fatalf("round trip mismatch")
		}
	})
}
