// Package ckpt is the checkpoint persistence layer: a CRC-verified,
// versioned on-disk codec for per-rank checkpoint snapshots plus the
// commit record that makes a set of them a globally consistent cut.
//
// The write protocol mirrors two-phase commit over the filesystem:
// every rank writes its own snapshot file (temp file + atomic rename)
// for step S, the checkpoint barrier proves all of them are durable,
// and only then does rank 0 write the commit record naming S. A
// restarting world reads the commit record first, so it can never adopt
// a step some rank's snapshot is missing for.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Wire format: an 8-byte magic/version prefix, the fixed header fields
// (rank, world, step, payload length), the payload, and a trailing
// CRC32 (IEEE) over everything before it — the same frame-codec
// discipline netrt uses, with the checksum the filesystem needs and the
// socket did not.
const (
	magic0  = 'C'
	magic1  = 'K'
	magic2  = 'P'
	magic3  = 'T'
	Version = 1

	headerLen  = 8 + 3*8 + 8 // magic/version + rank/world/step + payload length
	trailerLen = 4

	// MaxPayload caps a snapshot payload so a corrupt length field
	// cannot make a reader allocate unboundedly.
	MaxPayload = 1 << 30
)

// Snapshot is one rank's checkpoint: the pup'd element state and
// registered-buffer contents at a consistent cut.
type Snapshot struct {
	Rank    int
	World   int
	Step    int
	Payload []byte
}

// Encode serializes a snapshot.
func Encode(s *Snapshot) ([]byte, error) {
	if len(s.Payload) > MaxPayload {
		return nil, fmt.Errorf("ckpt: payload of %d bytes exceeds the %d-byte cap", len(s.Payload), MaxPayload)
	}
	b := make([]byte, 0, headerLen+len(s.Payload)+trailerLen)
	b = append(b, magic0, magic1, magic2, magic3, Version, 0, 0, 0)
	for _, v := range [...]int64{int64(s.Rank), int64(s.World), int64(s.Step)} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.Payload)))
	b = append(b, s.Payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// Decode parses and verifies an encoded snapshot. It never panics on
// corrupt input; the returned snapshot owns a fresh copy of the
// payload.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerLen+trailerLen {
		return nil, fmt.Errorf("ckpt: truncated checkpoint (%d bytes)", len(b))
	}
	if b[0] != magic0 || b[1] != magic1 || b[2] != magic2 || b[3] != magic3 {
		return nil, fmt.Errorf("ckpt: bad magic %#x %#x %#x %#x", b[0], b[1], b[2], b[3])
	}
	if b[4] != Version {
		return nil, fmt.Errorf("ckpt: version %d, this build speaks %d", b[4], Version)
	}
	if b[5] != 0 || b[6] != 0 || b[7] != 0 {
		return nil, fmt.Errorf("ckpt: nonzero reserved bytes")
	}
	rank := int64(binary.LittleEndian.Uint64(b[8:]))
	world := int64(binary.LittleEndian.Uint64(b[16:]))
	step := int64(binary.LittleEndian.Uint64(b[24:]))
	plen := binary.LittleEndian.Uint64(b[32:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("ckpt: payload length %d exceeds the %d-byte cap", plen, MaxPayload)
	}
	if len(b) != headerLen+int(plen)+trailerLen {
		return nil, fmt.Errorf("ckpt: length %d does not match header (payload %d)", len(b), plen)
	}
	body := b[:len(b)-trailerLen]
	want := binary.LittleEndian.Uint32(b[len(b)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("ckpt: CRC mismatch: stored %#x, computed %#x", want, got)
	}
	if rank < 0 || world < 1 || rank >= world || step < 0 {
		return nil, fmt.Errorf("ckpt: invalid placement rank=%d world=%d step=%d", rank, world, step)
	}
	return &Snapshot{
		Rank:    int(rank),
		World:   int(world),
		Step:    int(step),
		Payload: append([]byte(nil), b[headerLen:headerLen+int(plen)]...),
	}, nil
}

// rankFile names one rank's snapshot for one step.
func rankFile(dir string, rank, step int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d-step%09d.ck", rank, step))
}

// commitFile is the commit record naming the newest globally complete
// step.
func commitFile(dir string) string { return filepath.Join(dir, "commit.ck") }

// writeAtomic writes b to path via a temp file and rename, so a crash
// mid-write leaves either the old file or the new one — never a torn
// mix.
func writeAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteSnapshot persists one rank's snapshot and prunes that rank's
// older snapshots, keeping the newest keep files (the current one plus
// the previous committed generation — a crash between a new snapshot
// and its commit must leave the old one restorable).
func WriteSnapshot(dir string, s *Snapshot, keep int) error {
	b, err := Encode(s)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeAtomic(rankFile(dir, s.Rank, s.Step), b); err != nil {
		return err
	}
	if keep > 0 {
		pruneRank(dir, s.Rank, keep)
	}
	return nil
}

// pruneRank removes all but the newest keep snapshots of one rank.
// Best-effort: pruning failures never fail a checkpoint.
func pruneRank(dir string, rank, keep int) {
	pat := filepath.Join(dir, fmt.Sprintf("rank%04d-step*.ck", rank))
	files, err := filepath.Glob(pat)
	if err != nil || len(files) <= keep {
		return
	}
	sort.Strings(files) // zero-padded step numbers sort chronologically
	for _, f := range files[:len(files)-keep] {
		os.Remove(f)
	}
}

// ReadSnapshot loads and verifies one rank's snapshot for a step.
func ReadSnapshot(dir string, rank, step int) (*Snapshot, error) {
	b, err := os.ReadFile(rankFile(dir, rank, step))
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if s.Rank != rank || s.Step != step {
		return nil, fmt.Errorf("ckpt: snapshot names rank %d step %d, expected rank %d step %d", s.Rank, s.Step, rank, step)
	}
	return s, nil
}

// HasSnapshot reports whether a rank's snapshot file exists for a step.
func HasSnapshot(dir string, rank, step int) bool {
	_, err := os.Stat(rankFile(dir, rank, step))
	return err == nil
}

// WriteCommit records step as the newest globally complete checkpoint.
// Only the coordinator writes it, and only after the checkpoint barrier
// proved every rank's snapshot durable.
func WriteCommit(dir string, world, step int) error {
	b, err := Encode(&Snapshot{Rank: 0, World: world, Step: step})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeAtomic(commitFile(dir), b)
}

// ReadCommit returns the committed step, or ok=false when no commit
// record exists (a fresh run). A present-but-corrupt record is an
// error, not a silent restart from zero.
func ReadCommit(dir string, world int) (step int, ok bool, err error) {
	b, err := os.ReadFile(commitFile(dir))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	s, err := Decode(b)
	if err != nil {
		return 0, false, err
	}
	if s.World != world {
		return 0, false, fmt.Errorf("ckpt: commit record is for a %d-rank world, this world has %d", s.World, world)
	}
	return s.Step, true, nil
}

// Clear removes every checkpoint artifact in dir — called when a fresh
// run must not resume from a previous invocation's commit record.
func Clear(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "*.ck"))
	if err != nil {
		return err
	}
	for _, f := range files {
		if rerr := os.Remove(f); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
