package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	s := &Snapshot{Rank: 2, World: 3, Step: 40, Payload: []byte("element state bytes")}
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Rank != s.Rank || got.World != s.World || got.Step != s.Step || !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, s)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := &Snapshot{Rank: 0, World: 2, Step: 7, Payload: make([]byte, 1024)}
	for i := range s.Payload {
		s.Payload[i] = byte(i)
	}
	good, err := Encode(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Every single-byte flip must be caught by magic, header validation
	// or the CRC.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
	if _, err := Decode(good[:headerLen-1]); err == nil {
		t.Fatal("truncated header decoded cleanly")
	}
	if _, err := Decode(good[:len(good)-1]); err == nil {
		t.Fatal("truncated trailer decoded cleanly")
	}
}

func TestSnapshotFilesAndCommit(t *testing.T) {
	dir := t.TempDir()
	world := 2
	for step := 10; step <= 40; step += 10 {
		for r := 0; r < world; r++ {
			s := &Snapshot{Rank: r, World: world, Step: step, Payload: []byte{byte(r), byte(step)}}
			if err := WriteSnapshot(dir, s, 2); err != nil {
				t.Fatalf("write rank %d step %d: %v", r, step, err)
			}
		}
		if err := WriteCommit(dir, world, step); err != nil {
			t.Fatalf("commit step %d: %v", step, err)
		}
	}
	step, ok, err := ReadCommit(dir, world)
	if err != nil || !ok || step != 40 {
		t.Fatalf("ReadCommit = %d,%v,%v; want 40,true,nil", step, ok, err)
	}
	s, err := ReadSnapshot(dir, 1, 40)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	if !bytes.Equal(s.Payload, []byte{1, 40}) {
		t.Fatalf("snapshot payload %v", s.Payload)
	}
	// keep=2 pruned the older generations.
	files, _ := filepath.Glob(filepath.Join(dir, "rank0001-step*.ck"))
	if len(files) != 2 {
		t.Fatalf("kept %d snapshots for rank 1, want 2: %v", len(files), files)
	}
	if HasSnapshot(dir, 1, 10) {
		t.Fatal("step 10 snapshot should have been pruned")
	}
	// A mismatched world is a hard error, not a silent fresh start.
	if _, _, err := ReadCommit(dir, world+1); err == nil {
		t.Fatal("world-mismatched commit read cleanly")
	}
	if err := Clear(dir); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if _, ok, _ := ReadCommit(dir, world); ok {
		t.Fatal("commit survived Clear")
	}
}

func TestReadCommitMissing(t *testing.T) {
	dir := t.TempDir()
	step, ok, err := ReadCommit(dir, 3)
	if err != nil || ok || step != 0 {
		t.Fatalf("ReadCommit on empty dir = %d,%v,%v", step, ok, err)
	}
	// A corrupt commit record must surface, not restart from zero.
	if err := os.WriteFile(filepath.Join(dir, "commit.ck"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCommit(dir, 3); err == nil {
		t.Fatal("corrupt commit read cleanly")
	}
}
