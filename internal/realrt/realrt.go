// Package realrt is the real-execution backend: it runs the message-driven
// programs of this repository on actual parallel hardware instead of the
// discrete-event simulator. Each simulated processing element becomes one
// goroutine running a message-driven scheduler loop; entry-method messages
// travel through per-PE lock-free MPSC queues, and CkDirect puts are
// performed as the paper's actual mechanism — a memcpy into the receiver's
// registered buffer followed by an atomic release-store of the sentinel
// word, detected by the receiver's scheduler loop with atomic acquire-loads
// and no locks or notifications.
//
// The scheduler fast path is lock-free end to end: pushes are a single
// atomic exchange on a Vyukov MPSC queue (see queue.go), pops are
// consumer-owned, and an idle worker spins briefly then parks on a per-PE
// notifier that the next Enqueue or one-sided put kicks — so an idle
// receiver wakes in nanoseconds instead of decaying into blind sleeps.
//
// Time under this backend is wall-clock time (sim.Time carries nanoseconds
// either way), so measured intervals are real host performance, not model
// output. Determinism is therefore NOT a property of this backend; the
// applications' validate modes are the cross-backend oracle instead (their
// final payloads must be byte-identical to a sim-backend run of the same
// configuration — see DESIGN.md).
//
// Termination uses the same inc-before-dec counting argument as the
// runtime's quiescence detector: a global work counter is incremented
// before any unit of work becomes visible (a queued task, a pending timer,
// an in-flight put) and decremented only after the unit completes (the task
// ran, the timer's task ran, the put's arrival callback finished). When the
// counter reads zero the system is globally quiescent; the worker that
// retires the last unit broadcasts a wake token to every parked peer and
// all workers exit.
package realrt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// spinIters bounds the cooperative-yield spin an idle worker performs
// before parking on its notifier. Long enough that a pingpong receiver
// rides out a one-way flight without ever parking; short enough that a
// genuinely idle PE stops burning its core within a few microseconds.
const spinIters = 128

// Runtime executes tasks on one goroutine per PE.
type Runtime struct {
	npes  int
	start time.Time

	pes   []*mpscQueue
	notes []*notifier

	// work counts queued tasks + pending timers + undetected puts.
	// Incremented before the unit becomes visible, decremented after it
	// completes; zero means global quiescence.
	work atomic.Int64

	// holds counts the subset of work credits that are standing holds
	// (Hold/Release): credits that keep the scheduler from concluding
	// quiescence while work may still arrive from outside — the
	// distributed backend parks one for the whole run until the
	// termination protocol decides. A runtime whose only outstanding
	// credits are holds is waiting, not necessarily wedged, so the
	// stall watchdog gives that state a longer leash (see watch).
	holds atomic.Int64

	// executed counts completed scheduler tasks (the real-backend analogue
	// of the simulator's executed-event count).
	executed atomic.Uint64

	// progress ticks on every completed unit of work; the stall watchdog
	// panics when it stops moving while work remains.
	progress atomic.Uint64

	// poll, when installed (by the CkDirect manager), runs on a PE's
	// scheduler loop between tasks and reports whether it detected any
	// arrival. full requests a scan of every armed handle including the
	// demoted cold tier — the loop sets it before parking and right after
	// a wakeup so no arrival can hide behind tiering while the PE sleeps.
	poll func(pe int, full bool) bool

	// StallTimeout is how long the runtime tolerates outstanding work with
	// zero progress before panicking with a diagnostic (a real-backend
	// deadlock would otherwise spin forever). Zero means 30s.
	StallTimeout time.Duration

	// onStall replaces the watchdog's panic (tests only — the panic runs on
	// the watchdog goroutine, where no test can recover it).
	onStall func(msg string)

	running atomic.Bool

	// done latches the first observation of global quiescence, making it
	// terminal: every worker exits once it is set, even if the work
	// counter rises again afterwards. In a closed system the counter
	// never rises after zero, but the distributed backend is not closed
	// during an abort — connection readers of still-live peers can
	// deliver frames (and Enqueue tasks) after the hold credit's release
	// let the counter hit zero. Without the latch such a late Enqueue
	// lands on a worker that already returned, and the remaining workers
	// wedge forever on a credit nobody can retire.
	done atomic.Bool
}

// New builds a runtime for npes processing elements. The wall clock
// starts here; Now is measured from this instant.
func New(npes int) *Runtime {
	if npes <= 0 {
		panic("realrt: non-positive PE count")
	}
	rt := &Runtime{npes: npes, start: time.Now()}
	rt.pes = make([]*mpscQueue, npes)
	rt.notes = make([]*notifier, npes)
	for i := range rt.pes {
		rt.pes[i] = newMPSC()
		rt.notes[i] = newNotifier()
	}
	return rt
}

// NumPEs returns the PE count.
func (rt *Runtime) NumPEs() int { return rt.npes }

// Now returns wall-clock time elapsed since the runtime was built.
func (rt *Runtime) Now() sim.Time { return sim.FromDuration(time.Since(rt.start)) }

// Executed returns how many scheduler tasks have completed.
func (rt *Runtime) Executed() uint64 { return rt.executed.Load() }

// SetPoll installs the per-PE polling hook (the CkDirect sentinel scan).
// Must be called before Run.
func (rt *Runtime) SetPoll(fn func(pe int, full bool) bool) { rt.poll = fn }

// checkPE validates a PE index before any state is touched, so a bad
// index cannot take a work credit it will never retire (which would wedge
// quiescence for any caller that recovers the panic).
func (rt *Runtime) checkPE(pe int, op string) {
	if pe < 0 || pe >= rt.npes {
		panic(fmt.Sprintf("realrt: %s on PE %d, runtime has PEs [0,%d)", op, pe, rt.npes))
	}
}

// Enqueue places a task on a PE's scheduler queue. Safe from any
// goroutine, before or during Run. The work credit is taken before the
// task becomes poppable so the termination check can never miss it; the
// kick follows the push so a parked worker is woken only once the task is
// reachable.
func (rt *Runtime) Enqueue(pe int, task func()) {
	rt.checkPE(pe, "Enqueue")
	rt.work.Add(1)
	rt.pes[pe].push(task)
	rt.notes[pe].kick()
}

// After runs task on a PE's scheduler queue once the wall-clock delay
// elapses. The timer holds its own work credit so the runtime cannot
// terminate underneath it.
func (rt *Runtime) After(pe int, d sim.Time, task func()) {
	rt.checkPE(pe, "After")
	rt.work.Add(1)
	time.AfterFunc(d.Duration(), func() {
		rt.Enqueue(pe, task)
		rt.noteDone()
	})
}

// PutIssued takes a work credit for an in-flight one-sided put. The put
// layer must call it before the sentinel release-store makes the payload
// visible; the credit is returned by PutDetected after the receiver's
// arrival callback completes. Holding the credit across the whole
// put-to-detection window is what makes work==0 imply that no payload is
// still sitting undetected in a receive buffer.
func (rt *Runtime) PutIssued() { rt.work.Add(1) }

// PutDetected returns the credit taken by PutIssued.
func (rt *Runtime) PutDetected() { rt.noteDone() }

// Hold takes a standing work credit: like PutIssued it keeps the
// scheduler from concluding quiescence, but it declares the credit a
// hold — work that is waited on, not work that is runnable here. The
// stall watchdog treats a runtime whose outstanding credits are all
// holds as waiting on the outside world and stretches its deadline
// (an idle rank in a long distributed run makes no local progress for
// the run's whole lifetime, and that is healthy). The distributed
// backend parks one hold per run until termination.
func (rt *Runtime) Hold() {
	rt.holds.Add(1)
	rt.work.Add(1)
}

// Release returns the credit taken by Hold.
func (rt *Runtime) Release() {
	rt.holds.Add(-1)
	rt.noteDone()
}

// Outstanding returns the current work-credit count (queued tasks,
// pending timers, undetected puts). The distributed backend reads it to
// report local idleness to the termination coordinator.
func (rt *Runtime) Outstanding() int64 { return rt.work.Load() }

// Kick wakes a PE's worker if it is parked. The put seam calls it after
// the sentinel release-store: the put itself is genuinely one-sided (no
// receiver involvement lands the bytes), the kick only shortcuts the
// receiver's park so detection costs nanoseconds instead of a sleep.
func (rt *Runtime) Kick(pe int) {
	rt.checkPE(pe, "Kick")
	rt.notes[pe].kick()
}

// noteDone retires one unit of work. The caller that retires the last
// unit broadcasts wake tokens so parked workers observe quiescence and
// exit.
func (rt *Runtime) noteDone() {
	rt.progress.Add(1)
	switch rem := rt.work.Add(-1); {
	case rem == 0:
		rt.wakeAll()
	case rem < 0:
		panic("realrt: work counter underflow")
	}
}

// wakeAll deposits a token at every PE (quiescence broadcast).
func (rt *Runtime) wakeAll() {
	for _, n := range rt.notes {
		n.token()
	}
}

// Run launches one worker goroutine per PE and blocks until global
// quiescence, returning the wall-clock time at exit. It may be called
// once.
func (rt *Runtime) Run() sim.Time {
	if !rt.running.CompareAndSwap(false, true) {
		panic("realrt: Run called twice")
	}
	var wg sync.WaitGroup
	wg.Add(rt.npes)
	for pe := 0; pe < rt.npes; pe++ {
		go rt.worker(pe, &wg)
	}
	done := make(chan struct{})
	go rt.watch(done)
	wg.Wait()
	close(done)
	return rt.Now()
}

// worker is one PE's scheduler loop: drain the queue, poll CkDirect
// channels, exit at global quiescence, otherwise spin briefly and park.
// The spin is cooperative yields so idle PEs do not starve busy ones on
// small hosts (GOMAXPROCS may be below the PE count); the park hands the
// core back entirely until the next Enqueue or put kicks the notifier.
func (rt *Runtime) worker(pe int, wg *sync.WaitGroup) {
	defer wg.Done()
	q := rt.pes[pe]
	spins := 0
	fullPoll := false
	for {
		if rt.done.Load() {
			return
		}
		if task := q.pop(); task != nil {
			task()
			rt.executed.Add(1)
			rt.noteDone()
			spins, fullPoll = 0, false
			continue
		}
		if rt.poll != nil && rt.poll(pe, fullPoll) {
			spins, fullPoll = 0, false
			continue
		}
		fullPoll = false
		if rt.work.Load() == 0 {
			rt.quiesce()
			return
		}
		spins++
		if spins < spinIters {
			runtime.Gosched()
			continue
		}
		rt.park(pe)
		// Whatever woke us may live in the cold poll tier; scan everything
		// once before settling back into hot-only passes.
		spins, fullPoll = 0, true
	}
}

// quiesce latches terminal quiescence and broadcasts wake tokens so
// every parked peer observes it and exits.
func (rt *Runtime) quiesce() {
	if rt.done.CompareAndSwap(false, true) {
		rt.wakeAll()
	}
}

// park blocks the worker until a producer kicks its notifier. Publishing
// the parked flag first and then re-checking every wake source closes the
// missed-wakeup race: a producer that made work visible before observing
// the flag is seen by the re-check, and one that observed the flag
// deposits a token. The re-check's poll is a full scan so an arrival
// demoted to the cold tier cannot put the worker to sleep over it.
func (rt *Runtime) park(pe int) {
	n := rt.notes[pe]
	n.parked.Store(1)
	if !rt.pes[pe].empty() || (rt.poll != nil && rt.poll(pe, true)) || rt.work.Load() == 0 || rt.done.Load() {
		n.parked.Store(0)
		return
	}
	<-n.ch
	n.parked.Store(0)
}

// watch panics the process when outstanding work stops making progress —
// the real-backend analogue of a hung run, surfaced instead of spinning
// forever in CI. One reused ticker paces the checks for the whole run
// (a fresh time.After timer every tick leaked an allocation per 250ms).
func (rt *Runtime) watch(done <-chan struct{}) {
	timeout := rt.StallTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	const tick = 250 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := rt.progress.Load()
	lastWork := rt.work.Load()
	stalled := time.Duration(0)
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		cur := rt.progress.Load()
		work := rt.work.Load()
		// Any movement counts as liveness: completed work (progress), or
		// a change in the outstanding count (new work arriving is a sign
		// of a live peer even before anything here completes).
		if cur != last || work != lastWork || work == 0 {
			last, lastWork = cur, work
			stalled = 0
			continue
		}
		stalled += tick
		// When everything outstanding is a standing hold, this runtime
		// has no runnable work at all — it is parked waiting for the
		// network (an idle rank of a big world, or a PE whose next halo
		// face is minutes away on an oversubscribed host). That state is
		// indistinguishable from a wedged termination protocol except by
		// duration, so it gets a stretched deadline rather than a pass.
		limit := timeout
		if work <= rt.holds.Load() {
			limit = 4 * timeout
		}
		if stalled >= limit {
			msg := fmt.Sprintf(
				"realrt: no progress for %v with %d work units outstanding, %d of them standing holds (%d tasks executed) — deadlocked run",
				limit, work, rt.holds.Load(), rt.executed.Load())
			if rt.onStall != nil {
				rt.onStall(msg)
				return
			}
			panic(msg)
		}
	}
}
