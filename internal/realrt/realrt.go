// Package realrt is the real-execution backend: it runs the message-driven
// programs of this repository on actual parallel hardware instead of the
// discrete-event simulator. Each simulated processing element becomes one
// goroutine running a message-driven scheduler loop; entry-method messages
// travel through per-PE FIFO queues, and CkDirect puts are performed as the
// paper's actual mechanism — a memcpy into the receiver's registered buffer
// followed by an atomic release-store of the sentinel word, detected by the
// receiver's scheduler loop with atomic acquire-loads and no locks or
// notifications.
//
// Time under this backend is wall-clock time (sim.Time carries nanoseconds
// either way), so measured intervals are real host performance, not model
// output. Determinism is therefore NOT a property of this backend; the
// applications' validate modes are the cross-backend oracle instead (their
// final payloads must be byte-identical to a sim-backend run of the same
// configuration — see DESIGN.md).
//
// Termination uses the same inc-before-dec counting argument as the
// runtime's quiescence detector: a global work counter is incremented
// before any unit of work becomes visible (a queued task, a pending timer,
// an in-flight put) and decremented only after the unit completes (the task
// ran, the timer's task ran, the put's arrival callback finished). When the
// counter reads zero the system is globally quiescent and every worker
// exits.
package realrt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Runtime executes tasks on one goroutine per PE.
type Runtime struct {
	npes  int
	start time.Time

	pes []*peQueue

	// work counts queued tasks + pending timers + undetected puts.
	// Incremented before the unit becomes visible, decremented after it
	// completes; zero means global quiescence.
	work atomic.Int64

	// executed counts completed scheduler tasks (the real-backend analogue
	// of the simulator's executed-event count).
	executed atomic.Uint64

	// progress ticks on every completed unit of work; the stall watchdog
	// panics when it stops moving while work remains.
	progress atomic.Uint64

	// poll, when installed (by the CkDirect manager), runs on a PE's
	// scheduler loop between tasks and reports whether it detected any
	// arrival.
	poll func(pe int) bool

	// StallTimeout is how long the runtime tolerates outstanding work with
	// zero progress before panicking with a diagnostic (a real-backend
	// deadlock would otherwise spin forever). Zero means 30s.
	StallTimeout time.Duration

	// onStall replaces the watchdog's panic (tests only — the panic runs on
	// the watchdog goroutine, where no test can recover it).
	onStall func(msg string)

	running atomic.Bool
}

// peQueue is one PE's scheduler queue: a mutex-protected FIFO. The head
// index avoids O(n) shifts; the slice is compacted when fully drained.
type peQueue struct {
	mu    sync.Mutex
	tasks []func()
	head  int
}

func (q *peQueue) push(task func()) {
	q.mu.Lock()
	q.tasks = append(q.tasks, task)
	q.mu.Unlock()
}

func (q *peQueue) pop() func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.tasks) {
		if q.head > 0 {
			q.tasks = q.tasks[:0]
			q.head = 0
		}
		return nil
	}
	task := q.tasks[q.head]
	q.tasks[q.head] = nil
	q.head++
	return task
}

// New builds a runtime for npes processing elements. The wall clock
// starts here; Now is measured from this instant.
func New(npes int) *Runtime {
	if npes <= 0 {
		panic("realrt: non-positive PE count")
	}
	rt := &Runtime{npes: npes, start: time.Now()}
	rt.pes = make([]*peQueue, npes)
	for i := range rt.pes {
		rt.pes[i] = &peQueue{}
	}
	return rt
}

// NumPEs returns the PE count.
func (rt *Runtime) NumPEs() int { return rt.npes }

// Now returns wall-clock time elapsed since the runtime was built.
func (rt *Runtime) Now() sim.Time { return sim.FromDuration(time.Since(rt.start)) }

// Executed returns how many scheduler tasks have completed.
func (rt *Runtime) Executed() uint64 { return rt.executed.Load() }

// SetPoll installs the per-PE polling hook (the CkDirect sentinel scan).
// Must be called before Run.
func (rt *Runtime) SetPoll(fn func(pe int) bool) { rt.poll = fn }

// Enqueue places a task on a PE's scheduler queue. Safe from any
// goroutine, before or during Run. The work credit is taken before the
// task becomes poppable so the termination check can never miss it.
func (rt *Runtime) Enqueue(pe int, task func()) {
	rt.work.Add(1)
	rt.pes[pe].push(task)
}

// After runs task on a PE's scheduler queue once the wall-clock delay
// elapses. The timer holds its own work credit so the runtime cannot
// terminate underneath it.
func (rt *Runtime) After(pe int, d sim.Time, task func()) {
	rt.work.Add(1)
	time.AfterFunc(d.Duration(), func() {
		rt.Enqueue(pe, task)
		rt.noteDone()
	})
}

// PutIssued takes a work credit for an in-flight one-sided put. The put
// layer must call it before the sentinel release-store makes the payload
// visible; the credit is returned by PutDetected after the receiver's
// arrival callback completes. Holding the credit across the whole
// put-to-detection window is what makes work==0 imply that no payload is
// still sitting undetected in a receive buffer.
func (rt *Runtime) PutIssued() { rt.work.Add(1) }

// PutDetected returns the credit taken by PutIssued.
func (rt *Runtime) PutDetected() { rt.noteDone() }

// noteDone retires one unit of work.
func (rt *Runtime) noteDone() {
	rt.progress.Add(1)
	if rt.work.Add(-1) < 0 {
		panic("realrt: work counter underflow")
	}
}

// Run launches one worker goroutine per PE and blocks until global
// quiescence, returning the wall-clock time at exit. It may be called
// once.
func (rt *Runtime) Run() sim.Time {
	if !rt.running.CompareAndSwap(false, true) {
		panic("realrt: Run called twice")
	}
	var wg sync.WaitGroup
	wg.Add(rt.npes)
	for pe := 0; pe < rt.npes; pe++ {
		go rt.worker(pe, &wg)
	}
	done := make(chan struct{})
	go rt.watch(done)
	wg.Wait()
	close(done)
	return rt.Now()
}

// worker is one PE's scheduler loop: drain the queue, poll CkDirect
// channels, exit at global quiescence, otherwise back off. Backoff starts
// with cooperative yields and decays to short sleeps so idle PEs do not
// starve busy ones on small hosts (GOMAXPROCS may be below the PE count).
func (rt *Runtime) worker(pe int, wg *sync.WaitGroup) {
	defer wg.Done()
	q := rt.pes[pe]
	idle := 0
	for {
		if task := q.pop(); task != nil {
			task()
			rt.executed.Add(1)
			rt.noteDone()
			idle = 0
			continue
		}
		if rt.poll != nil && rt.poll(pe) {
			idle = 0
			continue
		}
		if rt.work.Load() == 0 {
			return
		}
		idle++
		switch {
		case idle < 128:
			runtime.Gosched()
		case idle < 1024:
			time.Sleep(5 * time.Microsecond)
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// watch panics the process when outstanding work stops making progress —
// the real-backend analogue of a hung run, surfaced instead of spinning
// forever in CI.
func (rt *Runtime) watch(done <-chan struct{}) {
	timeout := rt.StallTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	const tick = 250 * time.Millisecond
	last := rt.progress.Load()
	stalled := time.Duration(0)
	for {
		select {
		case <-done:
			return
		case <-time.After(tick):
		}
		cur := rt.progress.Load()
		if cur != last || rt.work.Load() == 0 {
			last = cur
			stalled = 0
			continue
		}
		stalled += tick
		if stalled >= timeout {
			msg := fmt.Sprintf(
				"realrt: no progress for %v with %d work units outstanding (%d tasks executed) — deadlocked run",
				timeout, rt.work.Load(), rt.executed.Load())
			if rt.onStall != nil {
				rt.onStall(msg)
				return
			}
			panic(msg)
		}
	}
}
