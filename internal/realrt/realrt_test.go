package realrt

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestFIFOPerPE: tasks enqueued on one PE run in order on that PE.
func TestFIFOPerPE(t *testing.T) {
	rt := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		rt.Enqueue(0, func() { order = append(order, i) })
	}
	rt.Run()
	if len(order) != 100 {
		t.Fatalf("ran %d/100 tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("task %d ran at position %d", v, i)
		}
	}
	if rt.Executed() != 100 {
		t.Fatalf("Executed() = %d, want 100", rt.Executed())
	}
}

// TestCrossPECascade: tasks spawning tasks on other PEs all complete
// before Run returns (the inc-before-visible credit discipline).
func TestCrossPECascade(t *testing.T) {
	const npes = 4
	rt := New(npes)
	var count atomic.Int64
	var spawn func(pe, depth int)
	spawn = func(pe, depth int) {
		count.Add(1)
		if depth == 0 {
			return
		}
		for d := 0; d < npes; d++ {
			d := d
			rt.Enqueue(d, func() { spawn(d, depth-1) })
		}
	}
	rt.Enqueue(0, func() { spawn(0, 3) })
	rt.Run()
	// 1 + 4 + 16 + 64 tasks.
	if got := count.Load(); got != 85 {
		t.Fatalf("ran %d tasks, want 85", got)
	}
}

// TestAfter: a timer fires its task and Run waits for it.
func TestAfter(t *testing.T) {
	rt := New(2)
	fired := false
	rt.Enqueue(0, func() {
		rt.After(1, sim.FromDuration(5*time.Millisecond), func() { fired = true })
	})
	rt.Run()
	if !fired {
		t.Fatal("timer task did not run before Run returned")
	}
}

// TestPutCreditBlocksTermination: an issued-but-undetected put keeps the
// runtime alive until PutDetected, even with empty queues.
func TestPutCreditBlocksTermination(t *testing.T) {
	rt := New(2)
	var landed atomic.Bool
	detected := false
	rt.SetPoll(func(pe int) bool {
		if pe == 1 && landed.Load() && !detected {
			detected = true
			rt.PutDetected()
			return true
		}
		return false
	})
	rt.Enqueue(0, func() {
		rt.PutIssued()
		landed.Store(true) // "release-store": visible to PE 1's poll
	})
	start := time.Now()
	rt.Run()
	if !detected {
		t.Fatal("runtime terminated with an undetected put outstanding")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("detection took implausibly long")
	}
}

// TestStallWatchdog: outstanding work with no progress trips the watchdog
// instead of hanging forever. The test swaps the watchdog's panic for a
// hook (the panic lives on the watchdog goroutine, unrecoverable by
// design) and releases the stuck credit so Run can return.
func TestStallWatchdog(t *testing.T) {
	rt := New(1)
	rt.StallTimeout = 300 * time.Millisecond
	var stallMsg atomic.Value
	rt.onStall = func(msg string) {
		stallMsg.Store(msg)
		rt.PutDetected() // release the stuck credit so Run can exit
	}
	rt.Enqueue(0, func() {
		rt.PutIssued() // never detected: a sentinel collision in miniature
	})
	rt.Run()
	if stallMsg.Load() == nil {
		t.Fatal("expected the stall watchdog to fire")
	}
}

// TestNowMonotonic: Now moves forward across real work.
func TestNowMonotonic(t *testing.T) {
	rt := New(1)
	var t0, t1 sim.Time
	rt.Enqueue(0, func() { t0 = rt.Now() })
	rt.Enqueue(0, func() {
		time.Sleep(time.Millisecond)
		t1 = rt.Now()
	})
	end := rt.Run()
	if !(t0 <= t1 && t1 <= end) {
		t.Fatalf("non-monotonic times: %v, %v, end %v", t0, t1, end)
	}
	if end <= 0 {
		t.Fatalf("non-positive end time %v", end)
	}
}
