package realrt

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestFIFOPerPE: tasks enqueued on one PE run in order on that PE.
func TestFIFOPerPE(t *testing.T) {
	rt := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		rt.Enqueue(0, func() { order = append(order, i) })
	}
	rt.Run()
	if len(order) != 100 {
		t.Fatalf("ran %d/100 tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("task %d ran at position %d", v, i)
		}
	}
	if rt.Executed() != 100 {
		t.Fatalf("Executed() = %d, want 100", rt.Executed())
	}
}

// TestCrossPECascade: tasks spawning tasks on other PEs all complete
// before Run returns (the inc-before-visible credit discipline).
func TestCrossPECascade(t *testing.T) {
	const npes = 4
	rt := New(npes)
	var count atomic.Int64
	var spawn func(pe, depth int)
	spawn = func(pe, depth int) {
		count.Add(1)
		if depth == 0 {
			return
		}
		for d := 0; d < npes; d++ {
			d := d
			rt.Enqueue(d, func() { spawn(d, depth-1) })
		}
	}
	rt.Enqueue(0, func() { spawn(0, 3) })
	rt.Run()
	// 1 + 4 + 16 + 64 tasks.
	if got := count.Load(); got != 85 {
		t.Fatalf("ran %d tasks, want 85", got)
	}
}

// TestAfter: a timer fires its task and Run waits for it.
func TestAfter(t *testing.T) {
	rt := New(2)
	fired := false
	rt.Enqueue(0, func() {
		rt.After(1, sim.FromDuration(5*time.Millisecond), func() { fired = true })
	})
	rt.Run()
	if !fired {
		t.Fatal("timer task did not run before Run returned")
	}
}

// TestPutCreditBlocksTermination: an issued-but-undetected put keeps the
// runtime alive until PutDetected, even with empty queues.
func TestPutCreditBlocksTermination(t *testing.T) {
	rt := New(2)
	var landed atomic.Bool
	detected := false
	rt.SetPoll(func(pe int, full bool) bool {
		if pe == 1 && landed.Load() && !detected {
			detected = true
			rt.PutDetected()
			return true
		}
		return false
	})
	rt.Enqueue(0, func() {
		rt.PutIssued()
		landed.Store(true) // "release-store": visible to PE 1's poll
	})
	start := time.Now()
	rt.Run()
	if !detected {
		t.Fatal("runtime terminated with an undetected put outstanding")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("detection took implausibly long")
	}
}

// TestStallWatchdog: outstanding work with no progress trips the watchdog
// instead of hanging forever. The test swaps the watchdog's panic for a
// hook (the panic lives on the watchdog goroutine, unrecoverable by
// design) and releases the stuck credit so Run can return.
func TestStallWatchdog(t *testing.T) {
	rt := New(1)
	rt.StallTimeout = 300 * time.Millisecond
	var stallMsg atomic.Value
	rt.onStall = func(msg string) {
		stallMsg.Store(msg)
		rt.PutDetected() // release the stuck credit so Run can exit
	}
	rt.Enqueue(0, func() {
		rt.PutIssued() // never detected: a sentinel collision in miniature
	})
	rt.Run()
	if stallMsg.Load() == nil {
		t.Fatal("expected the stall watchdog to fire")
	}
}

// TestMPSCHammer: NumCPU producer goroutines push tasks onto one PE's
// queue concurrently; every task must run, per-producer FIFO order must
// survive, and under -race the lock-free push/pop pair must be clean.
// A put credit holds the runtime open until the producers finish, so the
// consumer races live producers instead of draining a pre-filled queue.
func TestMPSCHammer(t *testing.T) {
	producers := runtime.NumCPU()
	if producers < 4 {
		producers = 4
	}
	perProducer := 5000
	if testing.Short() {
		perProducer = 1000
	}
	rt := New(1)
	rt.PutIssued() // keep the runtime alive while producers fill the queue
	type stamp struct{ producer, seq int }
	var order []stamp // consumer-only: tasks run on PE 0's single worker
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				i := i
				rt.Enqueue(0, func() { order = append(order, stamp{p, i}) })
			}
		}()
	}
	go func() {
		wg.Wait()
		rt.PutDetected()
	}()
	rt.Run()
	if len(order) != producers*perProducer {
		t.Fatalf("ran %d tasks, want %d", len(order), producers*perProducer)
	}
	next := make([]int, producers)
	for _, s := range order {
		if s.seq != next[s.producer] {
			t.Fatalf("producer %d: task %d ran before task %d", s.producer, s.seq, next[s.producer])
		}
		next[s.producer]++
	}
}

// TestParkedWorkersWake: a long quiet stretch parks every worker (the
// spin budget is a few hundred yields, far less than the timer delay);
// the timer's enqueue must kick the owning PE awake and termination must
// wake the rest — promptly, not via a stall timeout.
func TestParkedWorkersWake(t *testing.T) {
	rt := New(4)
	rt.StallTimeout = 10 * time.Second
	fired := false
	rt.Enqueue(0, func() {
		rt.After(3, sim.FromDuration(50*time.Millisecond), func() { fired = true })
	})
	start := time.Now()
	rt.Run()
	if !fired {
		t.Fatal("timer task did not run")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("parked workers took %v to wake and finish", wall)
	}
}

// TestEnqueueOutOfRangePE: an invalid PE panics with a diagnostic BEFORE
// the work credit is taken — the runtime must still reach quiescence for
// a caller that recovers, rather than hanging on a leaked credit.
func TestEnqueueOutOfRangePE(t *testing.T) {
	rt := New(2)
	rt.StallTimeout = 2 * time.Second
	var stalled atomic.Bool
	rt.onStall = func(string) { stalled.Store(true) }
	for _, bad := range []int{-1, 2, 99} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Enqueue(%d) did not panic", bad)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "realrt: Enqueue on PE") {
					t.Fatalf("Enqueue(%d) panic lacks diagnostic: %v", bad, msg)
				}
			}()
			rt.Enqueue(bad, func() {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("After on an invalid PE did not panic")
			}
		}()
		rt.After(7, sim.FromDuration(time.Millisecond), func() {})
	}()
	ran := false
	rt.Enqueue(1, func() { ran = true })
	rt.Run()
	if !ran {
		t.Fatal("valid task did not run after recovered panics")
	}
	if stalled.Load() {
		t.Fatal("leaked work credit: runtime stalled after recovered out-of-range panics")
	}
}

// TestNowMonotonic: Now moves forward across real work.
func TestNowMonotonic(t *testing.T) {
	rt := New(1)
	var t0, t1 sim.Time
	rt.Enqueue(0, func() { t0 = rt.Now() })
	rt.Enqueue(0, func() {
		time.Sleep(time.Millisecond)
		t1 = rt.Now()
	})
	end := rt.Run()
	if !(t0 <= t1 && t1 <= end) {
		t.Fatalf("non-monotonic times: %v, %v, end %v", t0, t1, end)
	}
	if end <= 0 {
		t.Fatalf("non-positive end time %v", end)
	}
}
