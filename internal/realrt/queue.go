package realrt

import (
	"sync"
	"sync/atomic"
)

// This file is the scheduler's lock-free fast path: a Vyukov-style
// multi-producer single-consumer queue (any goroutine pushes, only the
// owning worker pops) and a futex-style notifier that lets an idle worker
// park on a channel and be woken in well under a microsecond by the next
// push or one-sided put — the mutex FIFO and blind 5–100µs sleep backoff
// this replaces were the dominant cost of small-message delivery on the
// real backend.

// qnode is one queued task. Nodes link from the consumer end toward the
// producer end; a node becomes reachable by the consumer only through the
// atomic next-store that completes its push, which is the happens-before
// edge that publishes the plain task field.
type qnode struct {
	next atomic.Pointer[qnode]
	task func()
}

// mpscQueue is Vyukov's non-intrusive MPSC queue. push is a single
// atomic exchange plus one atomic store (no CAS loop, no lock); pop is
// plain loads/stores on the consumer-owned tail plus atomic loads of the
// producer-shared links. The stub node lets an empty queue keep a valid
// tail without special cases.
type mpscQueue struct {
	head atomic.Pointer[qnode] // producer end: most recently pushed node
	tail *qnode                // consumer end: owned by the worker goroutine
	stub qnode
}

func newMPSC() *mpscQueue {
	q := &mpscQueue{}
	q.head.Store(&q.stub)
	q.tail = &q.stub
	return q
}

// qnodePool recycles queue nodes so a steady-state enqueue allocates
// nothing. A node is recyclable the moment pop detaches it: pop only
// advances past a node after observing its next link non-nil, which
// happens only after the pushing producer's link-store completed — so no
// producer still holds a detached node, and nothing ever writes it again
// until push reissues it.
var qnodePool = sync.Pool{New: func() interface{} { return new(qnode) }}

// push enqueues a task. Safe from any number of goroutines concurrently.
func (q *mpscQueue) push(task func()) {
	n := qnodePool.Get().(*qnode)
	n.task = task
	q.pushNode(n)
}

// recycle returns a detached node to the pool. The stub is queue-owned
// and never pooled.
func (q *mpscQueue) recycle(n *qnode) {
	if n != &q.stub {
		qnodePool.Put(n)
	}
}

func (q *mpscQueue) pushNode(n *qnode) {
	n.next.Store(nil)
	prev := q.head.Swap(n)
	// Between the swap and this store the queue is transiently broken at
	// prev; pop reports it as empty and the caller's post-push kick (sent
	// after this store) guarantees the consumer comes back for it.
	prev.next.Store(n)
}

// pop dequeues the oldest task, or returns nil when the queue is empty —
// or transiently inconsistent because a producer sits between its swap
// and its link-store; that producer's completion makes the task visible
// to the next pop. Single consumer only.
func (q *mpscQueue) pop() func() {
	tail := q.tail
	next := tail.next.Load()
	if tail == &q.stub {
		if next == nil {
			return nil
		}
		q.tail = next
		tail = next
		next = tail.next.Load()
	}
	if next != nil {
		q.tail = next
		task := tail.task
		tail.task = nil
		q.recycle(tail)
		return task
	}
	if tail != q.head.Load() {
		return nil // producer mid-push; retry on the next pass
	}
	// tail is the last node: re-home the stub behind it so tail can
	// advance past the final task.
	q.pushNode(&q.stub)
	next = tail.next.Load()
	if next != nil {
		q.tail = next
		task := tail.task
		tail.task = nil
		q.recycle(tail)
		return task
	}
	return nil
}

// empty reports whether the queue holds no runnable task. Consumer only.
// It is conservative in the direction parking needs: a completed push is
// always reported non-empty (the pushed node is head and cannot equal the
// consumed tail), and a producer mid-push also reads non-empty via the
// head mismatch — so a worker that observes empty after publishing its
// parked flag cannot strand a task (see notifier).
func (q *mpscQueue) empty() bool {
	t := q.tail
	return t.task == nil && t.next.Load() == nil && q.head.Load() == t
}

// notifier is the park/unpark protocol for one worker. The worker
// publishes parked=1, re-checks every wake source, then blocks on the
// token channel; a producer kicks after making its work visible. The
// sequentially-consistent ordering of the parked store/load against the
// work's own publication guarantees at least one side sees the other:
// either the producer observes parked=1 and deposits a token, or the
// worker's re-check observes the work and aborts the park. Tokens are
// sticky (capacity 1) so a kick that races a wakeup costs one spurious
// re-scan, never a lost wakeup.
type notifier struct {
	parked atomic.Int32
	ch     chan struct{}
}

func newNotifier() *notifier {
	return &notifier{ch: make(chan struct{}, 1)}
}

// kick wakes the worker if it is parked (or about to park: it published
// the flag before its final re-check). Cheap when the worker is running —
// one atomic load, no channel traffic.
func (n *notifier) kick() {
	if n.parked.Load() != 0 {
		n.token()
	}
}

// token deposits the wake token unconditionally (termination broadcast).
func (n *notifier) token() {
	select {
	case n.ch <- struct{}{}:
	default:
	}
}
