// Package charm implements a message-driven runtime system in the style
// of Charm++ (chares, chare arrays, entry methods, a per-PE scheduler,
// reductions and broadcasts) on top of the simulated machine and network
// layers.
//
// The runtime reproduces the cost structure that the CkDirect paper
// measures against: every message carries an envelope (HeaderBytes), is
// received by the communication layer (RecvCPU of the platform's CharmMsg
// table), enqueued, and dispatched by the scheduler (SchedUS per message,
// plus the CkDirect polling tax when handles are being polled). Entry
// methods are ordinary Go functions that may move real bytes; their
// *computational* cost is declared explicitly through Ctx.Charge, which is
// what lets a 4096-PE run execute on one host.
package charm

import (
	"repro/internal/netrt"
	"repro/internal/sim"
)

// Message is the unit of two-sided communication. Size drives the cost
// model; the payload fields carry whatever the application needs. Data is
// nil when the application runs in virtual-payload mode.
type Message struct {
	// Size is the user payload size in bytes (the envelope is added by
	// the runtime).
	Size int
	// Data optionally carries real payload bytes (halo faces, matrix
	// blocks). len(Data) need not equal Size in virtual mode.
	Data []byte
	// Val and Vals carry scalar/vector values for runtime-internal
	// messages (reductions) and light application protocols.
	Val  float64
	Vals []float64
	// Tag is a free application field (iteration number, phase id).
	Tag int
}

// bytesSize returns the payload size of a reduction/control message
// carrying n float64 values plus a small fixed header.
func controlSize(nvals int) int { return 16 + 8*nvals }

// EP identifies a registered entry method within an array (or a PE-level
// handler within the runtime).
type EP int

// Handler is the body of an entry method. It runs on the destination PE
// at the virtual time the scheduler dispatches the message.
type Handler func(ctx *Ctx, msg *Message)

// Options configures runtime behaviour.
type Options struct {
	// Checked enables contract checking (CkDirect misuse detection,
	// unknown destinations). It costs nothing in virtual time.
	Checked bool
	// VirtualPayloads indicates applications should skip allocating and
	// copying real data. The runtime itself works either way; this flag
	// is plumbed to applications and CkDirect. Applications force real
	// payloads under the real backend, which always moves real bytes.
	VirtualPayloads bool
	// Backend selects the execution substrate: the discrete-event
	// simulator (default), real goroutine execution, or distributed
	// multi-process execution (see backend.go).
	Backend Backend
	// Net is the started netrt node this process belongs to; required
	// under NetBackend, ignored otherwise.
	Net *netrt.Node
}

// chargeable lets contexts extend the CPU reservation of their PE.
type chargeable interface {
	Reserve(cost sim.Time) (start, end sim.Time)
	FreeAt() sim.Time
}
