package charm

import (
	"fmt"
	"math"
	"sort"
)

// ReduceOp is the combining operation of a reduction.
type ReduceOp int

// Supported reduction operations.
const (
	Sum ReduceOp = iota
	Min
	Max
	Prod
)

func (op ReduceOp) combine(dst, src []float64) {
	for i := range dst {
		switch op {
		case Sum:
			dst[i] += src[i]
		case Min:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case Max:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case Prod:
			dst[i] *= src[i]
		}
	}
}

func (op ReduceOp) identity(width int) []float64 {
	vals := make([]float64, width)
	switch op {
	case Min:
		for i := range vals {
			vals[i] = math.Inf(1)
		}
	case Max:
		for i := range vals {
			vals[i] = math.Inf(-1)
		}
	case Prod:
		for i := range vals {
			vals[i] = 1
		}
	}
	return vals
}

// reducer implements Charm++-style contribute/reduce over a set of
// elements (a whole array, or an array section): each element contributes
// once per reduction generation; per-PE partials combine locally, flow up
// a binomial tree of runtime messages over the participating PEs, and the
// completed result is delivered to the reduction client on the root PE
// through its scheduler.
//
// Contributions are buffered and folded in a fixed order — rank-local
// element order first, then child partials by ascending child rank — only
// once a node's partial is complete. Arrival order therefore never
// changes the floating-point result, which is what lets a wall-clock
// real-backend run reproduce the simulator's reduction values bit for
// bit (the cross-backend oracle; see DESIGN.md).
type reducer struct {
	rts    *RTS
	name   string
	member func() [][]*element // per-PE element lists, fixed at freeze
	op     ReduceOp
	client func(ctx *Ctx, vals []float64)
	ep     EP

	frozen       bool
	participants []int            // PEs hosting members, ascending
	rankOf       map[int]int      // PE -> rank among participants
	kids         [][]int          // children ranks per rank
	kidPos       []map[int]int    // child rank -> position in kids[rank]
	localCount   []int            // members per rank
	ord          map[*element]int // element -> rank-local ordinal
	entries      []map[int]*redEntry
	// seq holds per-element generation counters, sharded by PE: each map
	// is touched only by its PE's goroutine under the real backend.
	// Migration moves an element's counter between shards at the
	// quiescent cut (migrateSeq).
	seq []map[*element]int
	// home records each element's PE at freeze time. The tree, ranks and
	// ordinals are frozen against this placement; an element that later
	// migrates keeps its frozen slot and forwards contributions to its
	// home PE (fwdEP) instead of re-shaping the tree mid-run — fold
	// order, and therefore the floating-point result, never changes.
	home  map[*element]int
	fwdEP EP
}

type redEntry struct {
	width    int
	locals   [][]float64 // one slot per rank-local element ordinal
	kidVals  [][]float64 // one slot per child position
	localGot int
	kidsGot  int
}

func newReducer(rts *RTS, name string, member func() [][]*element) *reducer {
	r := &reducer{rts: rts, name: name, member: member,
		seq: make([]map[*element]int, rts.mach.NumPEs())}
	r.ep = rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		r.onPartial(ctx.pe, int(msg.Val), msg.Tag, msg.Vals)
	})
	r.fwdEP = rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		r.onForwarded(ctx.pe, int(msg.Val), msg.Tag, msg.Vals)
	})
	rts.reducers = append(rts.reducers, r)
	return r
}

// SetReductionClient installs the combining operation and the client
// invoked (on the root participant PE, through the scheduler) with each
// completed reduction result.
func (a *Array) SetReductionClient(op ReduceOp, client func(ctx *Ctx, vals []float64)) {
	a.red.op = op
	a.red.client = client
}

// Contribute submits this element's contribution to its next reduction
// generation. All elements must contribute the same number of values
// within a generation.
func (c *Ctx) Contribute(vals ...float64) {
	if c.elem == nil {
		panic("charm: Contribute outside an array entry method")
	}
	c.arr.red.contributeEl(c.elem, vals)
}

// ContributeFrom submits a contribution on behalf of element idx from
// outside its entry methods — the path CkDirect callbacks use to join a
// barrier (a callback is a plain function, not an entry method).
func (a *Array) ContributeFrom(idx Index, vals ...float64) {
	el, ok := a.elems[idx]
	if !ok {
		panic(fmt.Sprintf("charm: ContributeFrom missing element %s[%s]", a.name, idx))
	}
	a.red.contributeEl(el, vals)
}

// freeze fixes the participant set and tree on first use.
func (r *reducer) freeze() {
	if r.frozen {
		return
	}
	r.frozen = true
	perPE := r.member()
	for pe, elems := range perPE {
		if len(elems) > 0 {
			r.participants = append(r.participants, pe)
		}
	}
	sort.Ints(r.participants)
	r.rankOf = make(map[int]int, len(r.participants))
	r.localCount = make([]int, len(r.participants))
	for rank, pe := range r.participants {
		r.rankOf[pe] = rank
		r.localCount[rank] = len(perPE[pe])
	}
	n := len(r.participants)
	r.kids = make([][]int, n)
	r.kidPos = make([]map[int]int, n)
	for rank := 0; rank < n; rank++ {
		r.kids[rank] = binomialChildren(rank, n)
		r.kidPos[rank] = make(map[int]int, len(r.kids[rank]))
		for pos, kid := range r.kids[rank] {
			r.kidPos[rank][kid] = pos
		}
	}
	r.ord = make(map[*element]int)
	r.home = make(map[*element]int)
	for _, pe := range r.participants {
		for i, el := range perPE[pe] {
			r.ord[el] = i
			r.home[el] = pe
		}
	}
	r.entries = make([]map[int]*redEntry, n)
	for i := range r.entries {
		r.entries[i] = make(map[int]*redEntry)
	}
}

func (r *reducer) entry(rank, gen int, width int) *redEntry {
	e, ok := r.entries[rank][gen]
	if !ok {
		e = &redEntry{
			width:   width,
			locals:  make([][]float64, r.localCount[rank]),
			kidVals: make([][]float64, len(r.kids[rank])),
		}
		r.entries[rank][gen] = e
	}
	return e
}

// contributeEl routes an element's contribution into its PE's partial for
// the element's next generation.
func (r *reducer) contributeEl(el *element, vals []float64) {
	r.freeze()
	m := r.seq[el.pe]
	if m == nil {
		m = make(map[*element]int)
		r.seq[el.pe] = m
	}
	gen := m[el]
	m[el] = gen + 1
	if home, ok := r.home[el]; ok && home != el.pe {
		// The element migrated after the tree froze: its slot still
		// lives on its home PE. Forward the contribution there with the
		// frozen rank-local ordinal, so the home fold is untouched.
		r.rts.SendPE(el.pe, home, r.fwdEP, &Message{
			Size: controlSize(len(vals)),
			Tag:  gen,
			Val:  float64(r.ord[el]),
			Vals: vals,
		})
		return
	}
	rank, ok := r.rankOf[el.pe]
	if !ok {
		panic(fmt.Sprintf("charm: contribution from non-participant PE %d", el.pe))
	}
	e := r.entry(rank, gen, len(vals))
	if len(vals) != e.width {
		err := fmt.Errorf("charm: reduction width mismatch on %s gen %d: %d vs %d",
			r.name, gen, e.width, len(vals))
		if r.rts.opts.Checked {
			r.rts.ReportError(err)
			return
		}
		panic(err)
	}
	e.locals[r.ord[el]] = vals
	e.localGot++
	r.maybeForward(rank, gen, e)
}

// onForwarded lands a migrated element's contribution on its home PE:
// the ordinal rides the message, so the entry fills exactly the slot
// the element held before it moved.
func (r *reducer) onForwarded(pe, ordinal, gen int, vals []float64) {
	rank, ok := r.rankOf[pe]
	if !ok {
		panic(fmt.Sprintf("charm: forwarded contribution to non-participant PE %d", pe))
	}
	e := r.entry(rank, gen, len(vals))
	if len(vals) != e.width {
		err := fmt.Errorf("charm: reduction width mismatch on %s gen %d: %d vs %d",
			r.name, gen, e.width, len(vals))
		if r.rts.opts.Checked {
			r.rts.ReportError(err)
			return
		}
		panic(err)
	}
	if ordinal < 0 || ordinal >= len(e.locals) {
		r.rts.ReportError(fmt.Errorf("charm: forwarded contribution ordinal %d outside [0,%d) on %s",
			ordinal, len(e.locals), r.name))
		return
	}
	e.locals[ordinal] = vals
	e.localGot++
	r.maybeForward(rank, gen, e)
}

// migrateSeq moves an element's generation counter between PE shards
// when the element rehomes. Runs only at the quiescent migration cut,
// where neither shard's PE goroutine is touching its map.
func (r *reducer) migrateSeq(el *element, from, to int) {
	m := r.seq[from]
	if m == nil {
		return
	}
	g, ok := m[el]
	if !ok {
		return
	}
	delete(m, el)
	d := r.seq[to]
	if d == nil {
		d = make(map[*element]int)
		r.seq[to] = d
	}
	d[el] = g
}

// elementGen reads an element's next reduction generation (0 if it has
// never contributed).
func (r *reducer) elementGen(el *element) int {
	if m := r.seq[el.pe]; m != nil {
		return m[el]
	}
	return 0
}

// setElementGen seeds an element's generation counter on its current
// PE's shard — the receiving side of a cross-rank migration, where the
// counter arrived in the element's packed state.
func (r *reducer) setElementGen(el *element, g int) {
	m := r.seq[el.pe]
	if m == nil {
		m = make(map[*element]int)
		r.seq[el.pe] = m
	}
	m[el] = g
}

func (r *reducer) onPartial(pe, childPE, gen int, vals []float64) {
	rank := r.rankOf[pe]
	e := r.entry(rank, gen, len(vals))
	if len(vals) != e.width {
		err := fmt.Errorf("charm: reduction width mismatch on %s gen %d: %d vs %d",
			r.name, gen, e.width, len(vals))
		if r.rts.opts.Checked {
			r.rts.ReportError(err)
			return
		}
		panic(err)
	}
	e.kidVals[r.kidPos[rank][r.rankOf[childPE]]] = vals
	e.kidsGot++
	r.maybeForward(rank, gen, e)
}

func (r *reducer) maybeForward(rank, gen int, e *redEntry) {
	if e.localGot < r.localCount[rank] || e.kidsGot < len(r.kids[rank]) {
		return
	}
	delete(r.entries[rank], gen)
	// Fold in fixed order — locals by element ordinal, then child
	// partials by ascending child rank — so the result is independent of
	// arrival order (and thus identical across backends).
	vals := r.op.identity(e.width)
	for _, lv := range e.locals {
		r.op.combine(vals, lv)
	}
	for _, kv := range e.kidVals {
		r.op.combine(vals, kv)
	}
	pe := r.participants[rank]
	if rank == 0 {
		// Root: deliver to the client through the scheduler, like a
		// reduction-target entry method.
		r.rts.enqueue(pe, func() {
			if r.client == nil {
				panic(fmt.Sprintf("charm: reduction on %s completed with no client", r.name))
			}
			r.client(&Ctx{rts: r.rts, pe: pe}, vals)
		})
		if r.rts.rec != nil {
			r.rts.rec.Incr("charm.reductions", 1)
		}
		return
	}
	parent := r.participants[binomialParent(rank)]
	r.rts.SendPE(pe, parent, r.ep, &Message{
		Size: controlSize(len(vals)),
		Tag:  gen,
		Val:  float64(pe), // child identity for deterministic folding
		Vals: vals,
	})
}
