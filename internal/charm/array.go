package charm

import (
	"fmt"

	"repro/internal/netrt"
)

// Index addresses an element within a chare array. Up to four dimensions
// are supported (the OpenAtom PairCalculator is four-dimensional). Unused
// dimensions are zero.
type Index [4]int

// Idx1 builds a one-dimensional index.
func Idx1(i int) Index { return Index{i, 0, 0, 0} }

// Idx2 builds a two-dimensional index.
func Idx2(i, j int) Index { return Index{i, j, 0, 0} }

// Idx3 builds a three-dimensional index.
func Idx3(i, j, k int) Index { return Index{i, j, k, 0} }

// Idx4 builds a four-dimensional index.
func Idx4(i, j, k, l int) Index { return Index{i, j, k, l} }

// String formats the index compactly.
func (ix Index) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", ix[0], ix[1], ix[2], ix[3])
}

// element is one array element: the user chare object plus placement.
// Reduction generation tracking lives in each reducer (an element may
// participate in the array's reduction and several section reductions
// independently).
type element struct {
	idx Index
	pe  int
	obj interface{}
	ctx *Ctx // cached delivery context: Ctx is immutable, so one per element serves every entry method
}

// Array is a chare array: a collection of elements indexed by Index,
// mapped onto PEs, with registered entry methods, broadcast and reduction
// support.
type Array struct {
	rts   *RTS
	name  string
	ord   int // ordinal in registration order — the array's wire identity
	mapFn func(Index) int

	elems  map[Index]*element
	perPE  [][]*element // insertion order per PE (deterministic)
	eps    []Handler
	epName []string

	// reduction machinery
	red *reducer
}

// NewArray declares an empty chare array. mapFn assigns each index to a
// PE; it must be pure.
func (rts *RTS) NewArray(name string, mapFn func(Index) int) *Array {
	a := &Array{
		rts:   rts,
		name:  name,
		mapFn: mapFn,
		elems: make(map[Index]*element),
		perPE: make([][]*element, rts.mach.NumPEs()),
	}
	a.red = newReducer(rts, name, func() [][]*element { return a.perPE })
	a.ord = len(rts.arrays)
	rts.arrays = append(rts.arrays, a)
	return a
}

// BlockMap1D distributes n elements (indexed Idx1(0..n-1)) over pes PEs in
// contiguous blocks — the default Charm++ array map.
func BlockMap1D(n, pes int) func(Index) int {
	per := (n + pes - 1) / pes
	return func(ix Index) int {
		pe := ix[0] / per
		if pe >= pes {
			pe = pes - 1
		}
		return pe
	}
}

// RRMap hashes any index round-robin over pes PEs, mixing all four
// dimensions. It is deterministic and spreads multidimensional arrays
// evenly.
func RRMap(pes int) func(Index) int {
	return func(ix Index) int {
		h := uint64(2166136261)
		for _, v := range ix {
			h = (h ^ uint64(uint32(v))) * 16777619
		}
		return int(h % uint64(pes))
	}
}

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// Insert creates the element at idx with the given chare object. All
// inserts must happen before the simulation starts exchanging messages
// (mirroring array construction in a Charm++ mainchare).
func (a *Array) Insert(idx Index, obj interface{}) {
	if _, dup := a.elems[idx]; dup {
		panic(fmt.Sprintf("charm: duplicate insert of %s[%s]", a.name, idx))
	}
	pe := a.mapFn(idx)
	if pe < 0 || pe >= a.rts.mach.NumPEs() {
		panic(fmt.Sprintf("charm: map sent %s[%s] to invalid PE %d", a.name, idx, pe))
	}
	el := &element{idx: idx, pe: pe, obj: obj}
	el.ctx = &Ctx{rts: a.rts, pe: pe, arr: a, idx: idx, obj: obj, elem: el}
	a.elems[idx] = el
	a.perPE[pe] = append(a.perPE[pe], el)
}

// NumElements returns the number of inserted elements.
func (a *Array) NumElements() int { return len(a.elems) }

// ElementsOn returns how many elements live on a PE.
func (a *Array) ElementsOn(pe int) int { return len(a.perPE[pe]) }

// PEOf returns the PE the array map assigns idx — its birth placement.
// After migration the element may live elsewhere; see CurrentPE.
func (a *Array) PEOf(idx Index) int { return a.mapFn(idx) }

// CurrentPE returns the PE currently hosting idx (-1 if absent). It
// tracks migrations, unlike PEOf.
func (a *Array) CurrentPE(idx Index) int {
	if el, ok := a.elems[idx]; ok {
		return el.pe
	}
	return -1
}

// Ord returns the array's registration ordinal — its wire identity and
// the array id in migration plans.
func (a *Array) Ord() int { return a.ord }

// EachHosted calls fn for every locally hosted element in the
// deterministic per-PE insertion order (every element under sim/real;
// this rank's block under net). The load balancer drives barrier
// contributions and load reports through it.
func (a *Array) EachHosted(fn func(idx Index, pe int)) {
	for pe, els := range a.perPE {
		if !a.rts.HostsPE(pe) {
			continue
		}
		for _, el := range els {
			fn(el.idx, pe)
		}
	}
}

// Obj returns the chare object at idx (nil if absent) — used by drivers
// and tests for validation.
func (a *Array) Obj(idx Index) interface{} {
	if el, ok := a.elems[idx]; ok {
		return el.obj
	}
	return nil
}

// EntryMethod registers a handler and returns its EP.
func (a *Array) EntryMethod(name string, h Handler) EP {
	a.eps = append(a.eps, h)
	a.epName = append(a.epName, name)
	return EP(len(a.eps) - 1)
}

// Send delivers msg to the entry method ep of element idx, paying the
// full Charm++ message path: envelope bytes, network, receive processing,
// scheduler dispatch.
func (a *Array) Send(srcPE int, idx Index, ep EP, msg *Message) {
	el, ok := a.elems[idx]
	if !ok {
		err := fmt.Errorf("charm: send to missing element %s[%s]", a.name, idx)
		if a.rts.opts.Checked {
			a.rts.ReportError(err)
			return
		}
		panic(err)
	}
	h := a.eps[ep]
	if a.rts.rec != nil {
		a.rts.rec.Incr("charm.msgs", 1)
		a.rts.rec.Incr("charm.bytes", int64(msg.Size))
	}
	if a.rts.sendObserver != nil {
		a.rts.sendObserver(srcPE, el.pe, a.name, ep, msg.Size)
	}
	if !a.rts.HostsPE(el.pe) {
		a.rts.netrt.SendMsg(&netrt.Env{
			Kind: netrt.EnvArray, Array: a.ord, EP: int(ep), Index: el.idx,
			SrcPE: srcPE, DstPE: el.pe,
			Size: msg.Size, Tag: msg.Tag, Val: msg.Val,
			Vals: msg.Vals, Data: msg.Data,
		})
		return
	}
	msg = a.rts.cloneForReal(msg)
	dst := el.pe
	a.rts.transport(srcPE, dst, msg.Size, func() {
		a.rts.enqueue(dst, func() {
			a.rts.invoke(h, a.ctxFor(el), msg)
		})
	})
}

// Send is also available from a context.
func (c *Ctx) Send(a *Array, idx Index, ep EP, msg *Message) {
	a.Send(c.pe, idx, ep, msg)
}

func (a *Array) ctxFor(el *element) *Ctx {
	return el.ctx
}

// Broadcast delivers msg to every element's entry method ep. Distribution
// uses a binomial tree over PEs (small runtime control messages), then
// each hosting PE dispatches one local delivery per element through its
// scheduler — matching how Charm++ array broadcasts are charged.
func (a *Array) Broadcast(srcPE int, ep EP, msg *Message) {
	if a.rts.netrt != nil {
		a.netCast(srcPE, ep, msg)
		return
	}
	a.rts.treeCast(srcPE, func(pe int) {
		for _, el := range a.perPE[pe] {
			el := el
			a.rts.enqueue(pe, func() {
				a.rts.invoke(a.eps[ep], a.ctxFor(el), msg)
			})
		}
	}, msg.Size)
}

// netCast is the distributed broadcast: the closure-based binomial tree
// cannot cross process boundaries, so one FCast frame ships to every
// other process (the receiver fans out to its local elements) and the
// local elements are delivered directly.
func (a *Array) netCast(srcPE int, ep EP, msg *Message) {
	nrt := a.rts.netrt
	nrt.SendCast(&netrt.Env{
		Kind: netrt.EnvCast, Array: a.ord, EP: int(ep),
		SrcPE: srcPE, DstPE: -1,
		Size: msg.Size, Tag: msg.Tag, Val: msg.Val,
		Vals: msg.Vals, Data: msg.Data,
	})
	msg = a.rts.cloneForReal(msg)
	for pe := nrt.Lo(); pe < nrt.Hi(); pe++ {
		for _, el := range a.perPE[pe] {
			el := el
			a.rts.enqueue(pe, func() {
				a.rts.invoke(a.eps[ep], a.ctxFor(el), msg)
			})
		}
	}
}

// Broadcast from a context.
func (c *Ctx) Broadcast(a *Array, ep EP, msg *Message) {
	a.Broadcast(c.pe, ep, msg)
}

// treeCast runs deliver(pe) on every PE, fanning out from root along a
// binomial tree of runtime messages of the given payload size.
func (rts *RTS) treeCast(root int, deliver func(pe int), size int) {
	rts.castMu.Lock()
	rts.castSessions = append(rts.castSessions, castSession{deliver: deliver, size: size})
	id := len(rts.castSessions) - 1
	rts.castMu.Unlock()
	rts.runCast(root, root, id)
}

type castSession struct {
	deliver func(pe int)
	size    int
}

// runCast executes the cast step on pe: forward to tree children (relative
// to root), then deliver locally.
func (rts *RTS) runCast(pe, root, id int) {
	rts.castMu.Lock()
	sess := rts.castSessions[id]
	rts.castMu.Unlock()
	p := rts.mach.NumPEs()
	rel := (pe - root + p) % p
	for _, crel := range binomialChildren(rel, p) {
		child := (crel + root) % p
		rts.SendPE(pe, child, rts.castEP, &Message{Size: sess.size, Tag: id, Val: float64(root)})
	}
	sess.deliver(pe)
}

// binomialChildren returns the children of relative rank rel in a
// binomial tree over p ranks rooted at 0.
func binomialChildren(rel, p int) []int {
	var out []int
	limit := rel & (-rel)
	if rel == 0 {
		limit = 1
		for limit < p {
			limit <<= 1
		}
	}
	for j := 1; j < limit; j <<= 1 {
		if c := rel + j; c < p {
			out = append(out, c)
		}
	}
	return out
}

// binomialParent returns the parent of relative rank rel (rel > 0).
func binomialParent(rel int) int { return rel - (rel & -rel) }
