package charm

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/realrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RTS is the message-driven runtime: one scheduler per PE, a registry of
// chare arrays, PE-level handlers for runtime services (reduction trees,
// broadcast trees), and hooks for the CkDirect extension.
type RTS struct {
	eng  *sim.Engine
	mach *machine.Machine
	net  *netmodel.Net
	plat *netmodel.Platform
	rec  *trace.Recorder
	opts Options

	// be is the execution substrate (discrete-event simulation, the
	// realrt goroutine runtime, or the distributed netrt runtime); real
	// is non-nil only under RealBackend, netrt only under NetBackend.
	be    backend
	real  *realrt.Runtime
	netrt *netrt.Runtime

	pes       []*peSched
	peEPs     []Handler
	arrays    []*Array
	reducers  []*reducer
	schedCost sim.Time

	// pollTax is installed by the CkDirect manager; it returns the CPU
	// cost of scanning the polling queue on a PE, charged on every
	// scheduler pass (paper §5.2).
	pollTax func(pe int) sim.Time

	// broadcast-tree service state. castMu guards the session table: under
	// the real backend broadcasts originate on PE goroutines while other
	// PEs concurrently look sessions up.
	castEP       EP
	castMu       sync.Mutex
	castSessions []castSession

	// sendObserver, when installed, sees every array message send
	// (the hook used by the CkDirect channel learner).
	sendObserver func(srcPE, dstPE int, array string, ep EP, size int)

	// loadMeter, when installed, observes every element entry-method
	// dispatch (the hook the load balancer's per-element metering uses).
	loadMeter LoadMeter

	// quiescence detection state (see quiescence.go).
	qdCounter int64
	qdWaiters []func()

	// rel, when non-nil, routes every message transport through the
	// ack/retransmit protocol (see reliable.go).
	rel *reliableState

	// timeline, when attached, records one span per scheduler dispatch
	// (Projections-style performance tracing).
	timeline *trace.Timeline

	errMu sync.Mutex
	errs  []error
}

// SetTimeline attaches a span recorder; nil detaches.
func (rts *RTS) SetTimeline(tl *trace.Timeline) { rts.timeline = tl }

// SetSendObserver installs a hook called for every chare-array message
// send. Passing nil removes it.
func (rts *RTS) SetSendObserver(fn func(srcPE, dstPE int, array string, ep EP, size int)) {
	rts.sendObserver = fn
}

// LoadMeter observes chare-array entry-method dispatches — the seam the
// load balancer (internal/lb) hooks to attribute compute and message
// volume to individual elements. busy is virtual time under sim
// (capturing what the handler Charged) and wall-clock under the live
// backends. Implementations must tolerate concurrent calls from
// different PE goroutines.
type LoadMeter interface {
	ElementRan(array int, idx Index, pe int, busy sim.Time, msgBytes int)
}

// SetLoadMeter installs the element dispatch observer; nil removes it.
// Install before the run starts — the dispatch path reads it unlocked.
func (rts *RTS) SetLoadMeter(m LoadMeter) { rts.loadMeter = m }

// invoke runs an element entry method, metering the dispatch when a
// LoadMeter is installed. Non-element handlers (PE handlers, reduction
// clients) bypass the meter.
func (rts *RTS) invoke(h Handler, ctx *Ctx, msg *Message) {
	lm := rts.loadMeter
	if lm == nil || ctx.elem == nil {
		h(ctx, msg)
		return
	}
	if rts.opts.Backend == SimBackend {
		// The PE's free point advances by exactly what the handler
		// charges, so the delta is the element's modelled compute —
		// deterministic across runs, unlike wall-clock.
		pe := rts.pes[ctx.pe].pe
		start := pe.FreeAt()
		h(ctx, msg)
		lm.ElementRan(ctx.arr.ord, ctx.idx, ctx.pe, pe.FreeAt()-start, msg.Size)
		return
	}
	start := rts.be.now()
	h(ctx, msg)
	lm.ElementRan(ctx.arr.ord, ctx.idx, ctx.pe, rts.be.now()-start, msg.Size)
}

// EnqueueOn places fn on a hosted PE's scheduler queue as a plain task
// (paying scheduler overhead under sim). Runtime extensions use it to
// run work on the goroutine that owns a PE's state; pe must be hosted
// by this process.
func (rts *RTS) EnqueueOn(pe int, fn func()) { rts.enqueue(pe, fn) }

// peSched is the per-PE scheduler state: a FIFO of pending deliveries and
// a flag indicating whether a scheduler pass is in flight.
type peSched struct {
	pe      *machine.PE
	queue   []func()
	running bool
}

// NewRTS builds a runtime on a platform-configured machine.
func NewRTS(eng *sim.Engine, mach *machine.Machine, net *netmodel.Net, plat *netmodel.Platform, rec *trace.Recorder, opts Options) *RTS {
	rts := &RTS{
		eng:       eng,
		mach:      mach,
		net:       net,
		plat:      plat,
		rec:       rec,
		opts:      opts,
		schedCost: sim.Microseconds(plat.SchedUS),
	}
	rts.pes = make([]*peSched, mach.NumPEs())
	for i := range rts.pes {
		rts.pes[i] = &peSched{pe: mach.PE(i)}
	}
	rts.castEP = rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		rts.runCast(ctx.pe, int(msg.Val), msg.Tag)
	})
	switch opts.Backend {
	case SimBackend:
		rts.be = &simBackend{rts: rts}
	case RealBackend:
		rts.real = realrt.New(mach.NumPEs())
		rts.be = &realBackend{rts: rts, rt: rts.real}
	case NetBackend:
		if opts.Net == nil {
			panic("charm: NetBackend requires Options.Net (a started netrt.Node)")
		}
		nrt, err := opts.Net.NewRuntime(mach.NumPEs())
		if err != nil {
			panic(fmt.Sprintf("charm: %v", err))
		}
		nrt.SetDeliver(rts.deliverWire)
		rts.netrt = nrt
		rts.be = &netBackend{rts: rts, nrt: nrt}
	default:
		panic(fmt.Sprintf("charm: unknown backend %v", opts.Backend))
	}
	return rts
}

// Engine returns the simulation engine.
func (rts *RTS) Engine() *sim.Engine { return rts.eng }

// Machine returns the simulated machine.
func (rts *RTS) Machine() *machine.Machine { return rts.mach }

// Net returns the network sequencer.
func (rts *RTS) Net() *netmodel.Net { return rts.net }

// Platform returns the cost-model platform.
func (rts *RTS) Platform() *netmodel.Platform { return rts.plat }

// Recorder returns the trace recorder (possibly nil).
func (rts *RTS) Recorder() *trace.Recorder { return rts.rec }

// Options returns the runtime options.
func (rts *RTS) Options() Options { return rts.opts }

// Backend returns the execution substrate this runtime drives.
func (rts *RTS) Backend() Backend { return rts.opts.Backend }

// Real returns the realrt runtime under RealBackend, nil under sim. The
// CkDirect layer uses it to register its polling hook and to manage the
// per-put work credits.
func (rts *RTS) Real() *realrt.Runtime { return rts.real }

// NetRT returns the distributed runtime under NetBackend, nil otherwise.
func (rts *RTS) NetRT() *netrt.Runtime { return rts.netrt }

// HostsPE reports whether a PE executes in this process: always true
// except under NetBackend, where each process hosts one block of PEs.
func (rts *RTS) HostsPE(pe int) bool {
	return rts.netrt == nil || rts.netrt.Hosts(pe)
}

// Now returns the current time on the active backend: virtual time under
// sim, wall-clock time under real.
func (rts *RTS) Now() sim.Time { return rts.be.now() }

// PutTransfer routes a one-sided put through the backend seam: the
// simulator plays the modelled network path, the real backend executes
// the copy + sentinel release-store on the calling (sender) goroutine.
func (rts *RTS) PutTransfer(op PutOp) { rts.be.put(op) }

// ChargeOn accounts CPU consumed on a PE outside any context (channel
// setup costs). A no-op under the real backend.
func (rts *RTS) ChargeOn(pe int, cost sim.Time) { rts.be.charge(pe, cost) }

// SetPollTax installs the CkDirect polling-queue tax. Passing nil removes
// it.
func (rts *RTS) SetPollTax(fn func(pe int) sim.Time) { rts.pollTax = fn }

// ReportError records a contract violation detected in checked mode.
// Safe from any PE goroutine under the real backend.
func (rts *RTS) ReportError(err error) {
	rts.errMu.Lock()
	rts.errs = append(rts.errs, err)
	rts.errMu.Unlock()
	if rts.rec != nil {
		rts.rec.Incr("rts.errors", 1)
	}
}

// Errors returns contract violations recorded so far.
func (rts *RTS) Errors() []error {
	rts.errMu.Lock()
	defer rts.errMu.Unlock()
	return append([]error(nil), rts.errs...)
}

// Run drives the program to completion on the active backend — the event
// queue drains (sim) or global quiescence is reached (real) — returning
// the final time.
func (rts *RTS) Run() sim.Time { return rts.be.run() }

// Executed counts completed scheduler dispatches (simulator events under
// sim, scheduler tasks under real).
func (rts *RTS) Executed() uint64 { return rts.be.executed() }

// CtxOn builds a bare execution context for a PE. It is used by runtime
// extensions (CkDirect callbacks) and drivers; entry methods receive their
// contexts from the scheduler instead.
func (rts *RTS) CtxOn(pe int) *Ctx { return &Ctx{rts: rts, pe: pe} }

// StartAt enqueues fn as an initial task on a PE (like a mainchare entry
// point). It goes through the scheduler so even startup pays realistic
// costs.
func (rts *RTS) StartAt(pe int, fn func(ctx *Ctx)) {
	if !rts.HostsPE(pe) {
		// SPMD setup runs on every process; the start task belongs only
		// to the one hosting its PE.
		return
	}
	rts.enqueue(pe, func() {
		fn(&Ctx{rts: rts, pe: pe})
	})
}

// RegisterPEHandler registers a PE-level handler (used by runtime
// services and by code that addresses PEs rather than chares) and returns
// its EP.
func (rts *RTS) RegisterPEHandler(h Handler) EP {
	rts.peEPs = append(rts.peEPs, h)
	return EP(len(rts.peEPs) - 1)
}

// SendPE sends a message from srcPE to a PE-level handler on dstPE, paying
// the full Charm++ message cost (envelope, receive processing, scheduler).
func (rts *RTS) SendPE(srcPE, dstPE int, ep EP, msg *Message) {
	if int(ep) < 0 || int(ep) >= len(rts.peEPs) {
		panic(fmt.Sprintf("charm: SendPE to unregistered EP %d", ep))
	}
	if rts.rec != nil {
		rts.rec.Incr("charm.msgs", 1)
		rts.rec.Incr("charm.bytes", int64(msg.Size))
	}
	if !rts.HostsPE(dstPE) {
		rts.netrt.SendMsg(&netrt.Env{
			Kind: netrt.EnvPE, Array: -1, EP: int(ep),
			SrcPE: srcPE, DstPE: dstPE,
			Size: msg.Size, Tag: msg.Tag, Val: msg.Val,
			Vals: msg.Vals, Data: msg.Data,
		})
		return
	}
	h := rts.peEPs[ep]
	msg = rts.cloneForReal(msg)
	rts.transport(srcPE, dstPE, msg.Size, func() {
		rts.enqueue(dstPE, func() {
			h(&Ctx{rts: rts, pe: dstPE}, msg)
		})
	})
}

// cloneForReal copies a message's payload under the real and net
// backends — Charm++ copy-on-send semantics. Senders there reuse their
// staging buffers across iterations while earlier messages are still in
// flight on other goroutines; the simulator's instant-closure delivery
// never needed the copy (and skipping it keeps sim runs byte-for-byte
// identical to the seed).
func (rts *RTS) cloneForReal(msg *Message) *Message {
	if rts.opts.Backend == SimBackend {
		return msg
	}
	m := *msg
	if msg.Data != nil {
		m.Data = append([]byte(nil), msg.Data...)
	}
	if msg.Vals != nil {
		m.Vals = append([]float64(nil), msg.Vals...)
	}
	return &m
}

// delivery is one pooled wire-delivery record: the handler, its context,
// an inline Message and a closure built once per record that runs the
// handler and then recycles everything. Steady-state eager receive
// therefore allocates nothing per message — the record, its Message and
// its closure all come back through deliveryPool. The ownership contract
// this encodes (DESIGN.md §9): a wire-delivered *Message and its Data
// are borrowed for the duration of the entry method; handlers that keep
// either past their own return must copy out.
type delivery struct {
	h      Handler
	ctx    *Ctx
	peCtx  Ctx // backing store for EnvPE deliveries (array deliveries use the element's cached Ctx)
	msg    Message
	pooled []byte
	run    func()
}

var deliveryPool sync.Pool

// getDelivery returns a recycled (or fresh) delivery record. The run
// closure is created only on a pool miss and survives recycling: it
// reads the record's current fields, so one closure serves every reuse.
func getDelivery() *delivery {
	if v := deliveryPool.Get(); v != nil {
		return v.(*delivery)
	}
	d := &delivery{}
	d.run = func() {
		d.ctx.rts.invoke(d.h, d.ctx, &d.msg)
		bufpool.Put(d.pooled)
		run := d.run
		*d = delivery{run: run} // drop references so the pool pins nothing
		deliveryPool.Put(d)
	}
	return d
}

// deliverWire is the NetBackend's inbound dispatcher: it re-binds a wire
// envelope's ordinal identities (array, index, EP) to this process's
// SPMD-identical registration tables and enqueues the handler on the
// destination PE. It runs on connection reader goroutines; everything
// malformed is reported, never panicked — a corrupt or mismatched frame
// from another process must not take this one down.
//
// When pooled is non-nil the envelope's Data aliases that pooled wire
// buffer and this dispatcher owns it: every exit path either returns it
// to the pool (error paths, and the delivery record after the handler
// completes) — the zero-copy eager receive. Handlers that retain
// message bytes past their own return must copy them out.
func (rts *RTS) deliverWire(env netrt.Env, pooled []byte) {
	switch env.Kind {
	case netrt.EnvPE:
		if env.EP < 0 || env.EP >= len(rts.peEPs) {
			rts.ReportError(fmt.Errorf("charm: wire message for unregistered PE handler %d", env.EP))
			bufpool.Put(pooled)
			return
		}
		if !rts.HostsPE(env.DstPE) {
			rts.ReportError(fmt.Errorf("charm: wire message for PE %d, not hosted here", env.DstPE))
			bufpool.Put(pooled)
			return
		}
		d := getDelivery()
		d.h = rts.peEPs[env.EP]
		d.peCtx = Ctx{rts: rts, pe: env.DstPE}
		d.ctx = &d.peCtx
		d.msg = Message{Size: env.Size, Tag: env.Tag, Val: env.Val, Vals: env.Vals, Data: env.Data}
		d.pooled = pooled
		rts.netrt.Enqueue(env.DstPE, d.run)
	case netrt.EnvArray:
		a, el, ok := rts.wireElement(&env)
		if !ok {
			bufpool.Put(pooled)
			return
		}
		if !rts.HostsPE(el.pe) {
			// Straggler: the element migrated and this frame raced the
			// location update to its old host. Re-route to the current
			// host. The payload must be copied out of the pooled wire
			// buffer first — a rendezvous re-send parks it past this
			// frame's lifetime.
			fwd := &netrt.Env{
				Kind: netrt.EnvArray, Array: a.ord, EP: env.EP, Index: env.Index,
				SrcPE: env.SrcPE, DstPE: el.pe,
				Size: env.Size, Tag: env.Tag, Val: env.Val,
			}
			if env.Vals != nil {
				fwd.Vals = append([]float64(nil), env.Vals...)
			}
			if env.Data != nil {
				fwd.Data = append([]byte(nil), env.Data...)
			}
			bufpool.Put(pooled)
			rts.netrt.SendMsg(fwd)
			if rts.rec != nil {
				rts.rec.Incr(trace.CntLBForwards, 1)
			}
			return
		}
		d := getDelivery()
		d.h = a.eps[env.EP]
		d.ctx = a.ctxFor(el)
		d.msg = Message{Size: env.Size, Tag: env.Tag, Val: env.Val, Vals: env.Vals, Data: env.Data}
		d.pooled = pooled
		rts.netrt.Enqueue(el.pe, d.run)
	case netrt.EnvCast:
		if env.Array < 0 || env.Array >= len(rts.arrays) {
			rts.ReportError(fmt.Errorf("charm: wire broadcast for unknown array ordinal %d", env.Array))
			return
		}
		a := rts.arrays[env.Array]
		if env.EP < 0 || int(env.EP) >= len(a.eps) {
			rts.ReportError(fmt.Errorf("charm: wire broadcast for unregistered EP %d on %s", env.EP, a.name))
			return
		}
		// A broadcast fans out to every local element — a multi-consumer
		// message with no single release point — so it rides one plain
		// heap Message shared by all deliveries, never a pooled record.
		msg := &Message{Size: env.Size, Tag: env.Tag, Val: env.Val, Vals: env.Vals, Data: env.Data}
		if pooled != nil {
			// Defensive: netrt copies broadcasts out of the wire buffer
			// before delivery. If a pooled broadcast ever arrives, copy
			// here and release immediately.
			if msg.Data != nil {
				msg.Data = append([]byte(nil), msg.Data...)
			}
			bufpool.Put(pooled)
		}
		h := a.eps[env.EP]
		for pe := rts.netrt.Lo(); pe < rts.netrt.Hi(); pe++ {
			for _, el := range a.perPE[pe] {
				el := el
				rts.netrt.Enqueue(pe, func() {
					rts.invoke(h, a.ctxFor(el), msg)
				})
			}
		}
	}
}

// wireElement resolves an EnvArray envelope to its array and element,
// reporting (not panicking) on anything out of range.
func (rts *RTS) wireElement(env *netrt.Env) (*Array, *element, bool) {
	if env.Array < 0 || env.Array >= len(rts.arrays) {
		rts.ReportError(fmt.Errorf("charm: wire message for unknown array ordinal %d", env.Array))
		return nil, nil, false
	}
	a := rts.arrays[env.Array]
	if env.EP < 0 || int(env.EP) >= len(a.eps) {
		rts.ReportError(fmt.Errorf("charm: wire message for unregistered EP %d on %s", env.EP, a.name))
		return nil, nil, false
	}
	el, ok := a.elems[Index(env.Index)]
	if !ok {
		rts.ReportError(fmt.Errorf("charm: wire message for missing element %s[%s]", a.name, Index(env.Index)))
		return nil, nil, false
	}
	return a, el, true
}

// transport moves a message between PEs on the active backend; arrive
// runs on the destination once the message is received.
func (rts *RTS) transport(srcPE, dstPE, size int, arrive func()) {
	rts.be.send(srcPE, dstPE, size, arrive)
}

// enqueue appends a delivery to a PE's scheduler queue on the active
// backend.
func (rts *RTS) enqueue(pe int, deliver func()) {
	rts.be.schedule(pe, deliver)
}

// simTransport is the simulator's message path, the choke point shared by
// SendPE and Array.Send: it resolves the Charm++ envelope cost, keeps the
// quiescence counter honest across the flight, and routes through the
// reliability protocol when one is enabled. arrive runs on the
// destination once the message is (first) received.
func (rts *RTS) simTransport(srcPE, dstPE, size int, arrive func()) {
	cost := rts.plat.CharmMsg.Resolve(size + rts.plat.HeaderBytes)
	rts.qdInc() // in flight
	delivered := false
	deliver := func() {
		// The envelope layer discards replays of the same transfer even
		// without the reliability protocol: a duplicate delivery would
		// otherwise run the handler twice and corrupt the quiescence count.
		if delivered {
			if rts.rec != nil {
				rts.rec.Incr(trace.CntDupDiscards, 1)
			}
			return
		}
		delivered = true
		arrive()
		rts.qdDec() // flight ended (queued activity took over)
	}
	if rts.rel == nil {
		rts.net.Transfer(srcPE, dstPE, cost, netmodel.TransferHooks{
			Kind:     netmodel.KindCharmMsg,
			OnArrive: deliver,
		})
		return
	}
	rts.rel.send(rts, srcPE, dstPE, cost, deliver)
}

// simEnqueue appends a delivery to a PE's simulated scheduler queue and
// kicks the scheduler loop if idle.
func (rts *RTS) simEnqueue(pe int, deliver func()) {
	s := rts.pes[pe]
	rts.qdInc()
	s.queue = append(s.queue, deliver)
	rts.kick(pe)
}

func (rts *RTS) kick(pe int) {
	s := rts.pes[pe]
	if s.running || len(s.queue) == 0 {
		return
	}
	s.running = true
	rts.eng.At(s.pe.FreeAt(), func() { rts.pass(pe) })
}

// pass is one scheduler iteration: charge the dispatch overhead plus the
// CkDirect polling tax, run the handler, then continue with the next
// queued message once the PE is free again.
func (rts *RTS) pass(pe int) {
	s := rts.pes[pe]
	if len(s.queue) == 0 {
		s.running = false
		return
	}
	deliver := s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue = s.queue[:len(s.queue)-1]

	overhead := rts.schedCost
	if rts.pollTax != nil {
		tax := rts.pollTax(pe)
		overhead += tax
		if rts.rec != nil && tax > 0 {
			rts.rec.AddTime("ckd.polltax", tax)
		}
	}
	if rts.rec != nil {
		rts.rec.AddTime("charm.sched", rts.schedCost)
	}
	start, end := s.pe.Reserve(overhead)
	rts.eng.At(end, func() {
		deliver()
		rts.qdDec()
		if rts.timeline != nil {
			// One span per dispatch: scheduler overhead plus whatever
			// compute the handler charged.
			rts.timeline.AddSpan(pe, "entry", "dispatch", start, s.pe.FreeAt())
		}
		rts.eng.At(s.pe.FreeAt(), func() { rts.pass(pe) })
	})
}

// Ctx is the execution context handed to entry methods, reduction clients
// and CkDirect callbacks. It identifies the PE (and, for array entry
// methods, the receiving element) and provides the communication and
// cost-accounting API.
type Ctx struct {
	rts  *RTS
	pe   int
	arr  *Array
	idx  Index
	obj  interface{}
	elem *element
}

// Now returns the current time (virtual under sim, wall-clock under
// real).
func (c *Ctx) Now() sim.Time { return c.rts.be.now() }

// PE returns the processing element this context executes on.
func (c *Ctx) PE() int { return c.pe }

// RTS returns the runtime.
func (c *Ctx) RTS() *RTS { return c.rts }

// Obj returns the chare object for array entry methods (nil otherwise).
func (c *Ctx) Obj() interface{} { return c.obj }

// Index returns the element index for array entry methods.
func (c *Ctx) Index() Index { return c.idx }

// Charge accounts for computation performed by the caller: the PE stays
// busy for cost units of virtual time after the current point. Under the
// real backend this is a no-op — real compute takes real time.
func (c *Ctx) Charge(cost sim.Time) {
	c.rts.be.charge(c.pe, cost)
}

// After schedules fn on this PE's context after a plain delay (no CPU
// reserved) — virtual sleep under sim, a wall-clock timer under real.
func (c *Ctx) After(d sim.Time, fn func(ctx *Ctx)) {
	pe := c.pe
	c.rts.be.after(pe, d, func() {
		fn(&Ctx{rts: c.rts, pe: pe})
	})
}

// EnqueueLocal places fn on this PE's scheduler queue as a local entry
// method (paying scheduler overhead). This models the OpenAtom pattern
// where a CkDirect callback "enqueues a CHARM++ entry method to perform
// the multiplication" (paper §5.1).
func (c *Ctx) EnqueueLocal(fn func(ctx *Ctx)) {
	pe := c.pe
	c.rts.enqueue(pe, func() {
		fn(&Ctx{rts: c.rts, pe: pe})
	})
}

// SendPE sends to a PE-level handler from this context's PE.
func (c *Ctx) SendPE(dstPE int, ep EP, msg *Message) {
	c.rts.SendPE(c.pe, dstPE, ep, msg)
}
