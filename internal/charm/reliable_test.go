package charm

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

// reliableRig builds a 2-PE runtime with the reliability protocol enabled
// and the given fault plan installed.
func reliableRig(t *testing.T, spec string) (*RTS, *trace.Recorder) {
	t.Helper()
	_, rts := newTestRTS(2)
	rec := rts.Recorder()
	rts.EnableReliability(Reliability{})
	if spec != "" {
		plan := faults.Plan{Seed: 11, Rules: faults.MustParseSpec(spec)}
		rts.Net().SetInjector(faults.NewPlane(plan, rec))
	}
	return rts, rec
}

func TestReliableDeliveryWithoutFaults(t *testing.T) {
	rts, rec := reliableRig(t, "")
	runs := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { runs++ })
	rts.StartAt(0, func(ctx *Ctx) {
		for i := 0; i < 5; i++ {
			ctx.SendPE(1, ep, &Message{Size: 64})
		}
	})
	rts.Run()
	if runs != 5 {
		t.Fatalf("handler ran %d times, want 5", runs)
	}
	if n := rec.Count(trace.CntRetransmits); n != 0 {
		t.Fatalf("clean network produced %d retransmits", n)
	}
	if n := rec.Count(trace.CntAcks); n != 5 {
		t.Fatalf("acks received = %d, want 5", n)
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestRetransmitRecoversDroppedMessage(t *testing.T) {
	// Kill exactly the first charm message attempt: the retransmission
	// must get it through with no error and exactly one retry counted.
	rts, rec := reliableRig(t, "drop:kind=charm.msg,nth=1")
	runs := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { runs++ })
	rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(1, ep, &Message{Size: 256}) })
	rts.Run()
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1", runs)
	}
	if n := rec.Count(trace.CntDropped); n != 1 {
		t.Fatalf("drops = %d, want 1", n)
	}
	if n := rec.Count(trace.CntRetransmits); n != 1 {
		t.Fatalf("retransmits = %d, want 1", n)
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("recovered message still reported errors: %v", errs)
	}
}

func TestLostAckTriggersRetransmitNotDoubleDelivery(t *testing.T) {
	rts, rec := reliableRig(t, "drop:kind=charm.ack,nth=1")
	runs := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { runs++ })
	rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(1, ep, &Message{Size: 64}) })
	rts.Run()
	if runs != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (dedup failed)", runs)
	}
	if n := rec.Count(trace.CntRetransmits); n < 1 {
		t.Fatalf("lost ack produced no retransmission")
	}
	if n := rec.Count(trace.CntDupDiscards); n < 1 {
		t.Fatalf("replayed payload was not discarded as duplicate")
	}
	if errs := rts.Errors(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestRetryExhaustionReportsAndSettles(t *testing.T) {
	// Drop every message attempt: the protocol must give up after
	// MaxRetries, report the loss, and still let the run settle (the
	// quiescence counter is released — this test completing at all proves
	// no hang).
	rts, rec := reliableRig(t, "drop:kind=charm.msg,rate=1")
	ran := false
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { ran = true })
	done := false
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.SendPE(1, ep, &Message{Size: 64})
		ctx.RTS().OnQuiescence(func() { done = true })
	})
	rts.Run()
	if ran {
		t.Fatalf("handler ran despite a fully lossy network")
	}
	if !done {
		t.Fatalf("quiescence never settled after retry exhaustion")
	}
	if n := rec.Count(trace.CntFailedMsgs); n != 1 {
		t.Fatalf("failed_msgs = %d, want 1", n)
	}
	errs := rts.Errors()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "lost after") {
		t.Fatalf("want one lost-message error, got %v", errs)
	}
	// First send + MaxRetries retransmissions all dropped.
	if n := rec.Count(trace.CntRetransmits); n != 4 {
		t.Fatalf("retransmits = %d, want 4 (default MaxRetries)", n)
	}
}

func TestDuplicateDeliveryDiscardedWithoutReliability(t *testing.T) {
	// Even with the reliability protocol off, the envelope layer must
	// discard injected duplicates — double dispatch would corrupt both the
	// application and the quiescence count.
	_, rts := newTestRTS(2)
	rec := rts.Recorder()
	plan := faults.Plan{Seed: 3, Rules: faults.MustParseSpec("dup:kind=charm.msg,nth=1")}
	rts.Net().SetInjector(faults.NewPlane(plan, rec))
	runs := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { runs++ })
	rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(1, ep, &Message{Size: 64}) })
	rts.Run()
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1", runs)
	}
	if n := rec.Count(trace.CntDupDiscards); n != 1 {
		t.Fatalf("dup discards = %d, want 1", n)
	}
}
