package charm

import (
	"bytes"
	"math"
	"testing"
)

// pupEverything visits one field of every Puper type.
type pupState struct {
	i  int
	i6 int64
	f  float64
	b  bool
	bs []byte
	fs []float64
}

func (s *pupState) Pup(p Puper) {
	p.Int(&s.i)
	p.Int64(&s.i6)
	p.Float64(&s.f)
	p.Bool(&s.b)
	p.Bytes(&s.bs)
	p.Float64s(&s.fs)
}

func TestPupRoundTrip(t *testing.T) {
	src := &pupState{
		i: -42, i6: 1 << 40, f: math.Pi, b: true,
		bs: []byte{1, 2, 3, 0xFF},
		fs: []float64{0, -1.5, math.Inf(1)},
	}
	var p Packer
	src.Pup(&p)

	dst := &pupState{}
	u := &Unpacker{Buf: p.Buf}
	dst.Pup(u)
	if err := u.Err(); err != nil {
		t.Fatal(err)
	}
	if u.Rest() != 0 {
		t.Fatalf("%d bytes left over", u.Rest())
	}
	var p2 Packer
	dst.Pup(&p2)
	if !bytes.Equal(p.Buf, p2.Buf) {
		t.Fatal("repack differs from the original pack")
	}
	if dst.i != src.i || dst.i6 != src.i6 || dst.f != src.f || dst.b != src.b {
		t.Fatalf("scalar mismatch: %+v != %+v", dst, src)
	}
}

// TestPupInPlace asserts the property checkpoint restore relies on:
// unpacking into a slice of matching length fills it in place, so
// buffers aliased by registered regions keep their identity.
func TestPupInPlace(t *testing.T) {
	src := []byte{10, 20, 30, 40}
	var p Packer
	p.Bytes(&src)

	dst := make([]byte, 4)
	alias := dst
	u := &Unpacker{Buf: p.Buf}
	u.Bytes(&dst)
	if u.Err() != nil {
		t.Fatal(u.Err())
	}
	if &dst[0] != &alias[0] {
		t.Fatal("matching-length unpack reallocated the slice")
	}
	if !bytes.Equal(alias, src) {
		t.Fatalf("alias not filled: %v", alias)
	}

	// A length mismatch must reallocate, not write short.
	short := make([]byte, 2)
	u = &Unpacker{Buf: p.Buf}
	u.Bytes(&short)
	if u.Err() != nil {
		t.Fatal(u.Err())
	}
	if len(short) != 4 || !bytes.Equal(short, src) {
		t.Fatalf("mismatched-length unpack got %v", short)
	}
}

func TestPupUnderflow(t *testing.T) {
	var p Packer
	v := []float64{1, 2, 3}
	p.Float64s(&v)

	for cut := 0; cut < len(p.Buf); cut++ {
		u := &Unpacker{Buf: p.Buf[:cut]}
		got := []float64{9, 9, 9}
		u.Float64s(&got)
		if u.Err() == nil {
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
		// Errors are sticky: further reads must stay no-ops.
		x := 7
		u.Int(&x)
		if x != 7 {
			t.Fatal("read-after-error modified its target")
		}
	}
}

func TestPupOversizedLength(t *testing.T) {
	var p Packer
	huge := int64(maxPupSlice + 1)
	p.Int64(&huge)
	u := &Unpacker{Buf: p.Buf}
	var b []byte
	u.Bytes(&b)
	if u.Err() == nil {
		t.Fatal("oversized slice length accepted")
	}
}
