package charm

import (
	"fmt"
	"sort"
	"sync"
)

// Section is a fixed subset of an array's elements with its own multicast
// and reduction machinery — Charm++'s array sections, which codes like
// OpenAtom use to address e.g. the PairCalculators of a single plane.
// Sections are created after all inserts and are immutable.
type Section struct {
	arr   *Array
	name  string
	elems []*element   // deterministic order (as given)
	perPE [][]*element // per-PE members
	pes   []int        // participating PEs, ascending
	red   *reducer

	castEP EP
	// sessMu guards the session table (multicasts originate on PE
	// goroutines under the real backend).
	sessMu   sync.Mutex
	sessions []sectionCast
}

type sectionCast struct {
	ep  EP
	msg *Message
}

// NewSection builds a section over the given element indices. All
// indices must exist; duplicates are rejected.
func (a *Array) NewSection(name string, indices []Index) *Section {
	if len(indices) == 0 {
		panic(fmt.Sprintf("charm: empty section %q on %s", name, a.name))
	}
	s := &Section{
		arr:   a,
		name:  fmt.Sprintf("%s/%s", a.name, name),
		perPE: make([][]*element, a.rts.mach.NumPEs()),
	}
	seen := make(map[Index]bool, len(indices))
	for _, ix := range indices {
		el, ok := a.elems[ix]
		if !ok {
			panic(fmt.Sprintf("charm: section %s includes missing element %s", s.name, ix))
		}
		if seen[ix] {
			panic(fmt.Sprintf("charm: section %s includes %s twice", s.name, ix))
		}
		seen[ix] = true
		s.elems = append(s.elems, el)
		s.perPE[el.pe] = append(s.perPE[el.pe], el)
	}
	for pe, members := range s.perPE {
		if len(members) > 0 {
			s.pes = append(s.pes, pe)
		}
	}
	sort.Ints(s.pes)
	s.red = newReducer(a.rts, s.name, func() [][]*element { return s.perPE })
	s.castEP = a.rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		s.runCast(ctx.pe, msg.Tag)
	})
	return s
}

// Name returns the section's qualified name.
func (s *Section) Name() string { return s.name }

// NumElements returns the section size.
func (s *Section) NumElements() int { return len(s.elems) }

// PEs returns the participating PEs (ascending).
func (s *Section) PEs() []int { return append([]int(nil), s.pes...) }

// Multicast delivers msg to every section member's entry method ep,
// fanning out along a binomial tree over the participating PEs only —
// non-member PEs see no traffic.
func (s *Section) Multicast(srcPE int, ep EP, msg *Message) {
	s.sessMu.Lock()
	s.sessions = append(s.sessions, sectionCast{ep: ep, msg: msg})
	id := len(s.sessions) - 1
	s.sessMu.Unlock()
	root := s.pes[0]
	if srcPE == root {
		s.runCast(root, id)
		return
	}
	// One runtime message carries the multicast to the section's tree
	// root, which then fans out.
	s.arr.rts.SendPE(srcPE, root, s.castEP, &Message{Size: msg.Size, Tag: id})
}

// Multicast from a context.
func (c *Ctx) MulticastSection(s *Section, ep EP, msg *Message) {
	s.Multicast(c.pe, ep, msg)
}

// runCast forwards to tree children among the section PEs and delivers
// locally.
func (s *Section) runCast(pe, id int) {
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	rank := sort.SearchInts(s.pes, pe)
	for _, crank := range binomialChildren(rank, len(s.pes)) {
		s.arr.rts.SendPE(pe, s.pes[crank], s.castEP, &Message{Size: sess.msg.Size, Tag: id})
	}
	for _, el := range s.perPE[pe] {
		el := el
		s.arr.rts.enqueue(pe, func() {
			s.arr.eps[sess.ep](s.arr.ctxFor(el), sess.msg)
		})
	}
}

// SetReductionClient installs the section reduction's combiner and
// client (delivered on the section's root PE).
func (s *Section) SetReductionClient(op ReduceOp, client func(ctx *Ctx, vals []float64)) {
	s.red.op = op
	s.red.client = client
}

// ContributeFrom submits a section-reduction contribution on behalf of
// element idx (which must be a section member).
func (s *Section) ContributeFrom(idx Index, vals ...float64) {
	el, ok := s.arr.elems[idx]
	if !ok {
		panic(fmt.Sprintf("charm: ContributeFrom missing element %s[%s]", s.arr.name, idx))
	}
	if !s.contains(el) {
		panic(fmt.Sprintf("charm: element %s is not a member of section %s", idx, s.name))
	}
	s.red.contributeEl(el, vals)
}

func (s *Section) contains(el *element) bool {
	for _, m := range s.perPE[el.pe] {
		if m == el {
			return true
		}
	}
	return false
}
