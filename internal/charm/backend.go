package charm

import (
	"fmt"
	"runtime"

	"repro/internal/bufpool"
	"repro/internal/netmodel"
	"repro/internal/netrt"
	"repro/internal/realrt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Backend selects the execution substrate the runtime drives.
type Backend int

// Available backends.
const (
	// SimBackend is the deterministic discrete-event simulator (default):
	// virtual time, modelled costs, single-threaded.
	SimBackend Backend = iota
	// RealBackend executes the program on real parallel hardware: one
	// goroutine per PE, wall-clock time, CkDirect puts as true
	// shared-memory copies published by an atomic sentinel release-store.
	RealBackend
	// NetBackend executes the program across multiple OS processes
	// connected by TCP sockets: each process runs a realrt scheduler for
	// its block of PEs, Charm messages cross process boundaries as
	// eager or rendezvous frames, and CkDirect puts are deposited
	// directly into the remote registered buffer (see internal/netrt).
	NetBackend
)

// String names the backend like the -backend flag values.
func (b Backend) String() string {
	switch b {
	case SimBackend:
		return "sim"
	case RealBackend:
		return "real"
	case NetBackend:
		return "net"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return SimBackend, nil
	case "real":
		return RealBackend, nil
	case "net":
		return NetBackend, nil
	}
	return 0, fmt.Errorf("charm: unknown backend %q (want sim, real or net)", s)
}

// PutOp describes a one-sided put to the backend seam: the modelled path
// cost and event hooks (consumed by the simulator), and the actual memory
// operation (consumed by the real backend — the copy plus the sentinel
// release-store, built by the CkDirect layer which knows the buffer
// layout).
type PutOp struct {
	SrcPE, DstPE int
	Cost         netmodel.PathCost
	Hooks        netmodel.TransferHooks
	// Execute performs the put for real: copy payload into the receiver's
	// registered buffer, then release-store the sentinel word. Runs
	// synchronously on the sender's goroutine under RealBackend (and under
	// NetBackend when both PEs share the process); ignored by the
	// simulator.
	Execute func()
	// WireHandle and WirePayload describe the put for the distributed
	// backend: the SPMD-identical CkDirect handle id addressing the remote
	// registered buffer, and the raw source bytes to ship. WirePayload is
	// called only when the destination PE lives in another process.
	WireHandle  int
	WirePayload func() []byte
}

// backend is the seam between the runtime's logical layer (arrays, entry
// methods, reductions, CkDirect bookkeeping) and its execution substrate.
// Both the discrete-event simulator and the realrt goroutine runtime
// satisfy it; everything above dispatches through it and runs unmodified
// on either.
type backend interface {
	// now is the current time: virtual under sim, wall-clock under real.
	now() sim.Time
	// schedule places a task on a PE's scheduler queue.
	schedule(pe int, task func())
	// send performs two-sided message transport; deliver runs on the
	// destination PE when the message arrives.
	send(srcPE, dstPE, size int, deliver func())
	// put performs a one-sided transfer.
	put(op PutOp)
	// after runs a task on a PE after a plain delay (no CPU reserved).
	after(pe int, d sim.Time, task func())
	// charge accounts CPU consumed by the caller. A no-op under real —
	// real compute takes real time.
	charge(pe int, cost sim.Time)
	// run drives the system to completion and returns the final time.
	run() sim.Time
	// executed counts completed scheduler dispatches.
	executed() uint64
}

// simBackend adapts the discrete-event machinery already in RTS.
type simBackend struct{ rts *RTS }

func (b *simBackend) now() sim.Time { return b.rts.eng.Now() }

func (b *simBackend) schedule(pe int, task func()) { b.rts.simEnqueue(pe, task) }

func (b *simBackend) send(srcPE, dstPE, size int, deliver func()) {
	b.rts.simTransport(srcPE, dstPE, size, deliver)
}

func (b *simBackend) put(op PutOp) {
	b.rts.net.Transfer(op.SrcPE, op.DstPE, op.Cost, op.Hooks)
}

func (b *simBackend) after(pe int, d sim.Time, task func()) {
	b.rts.eng.Schedule(d, task)
}

func (b *simBackend) charge(pe int, cost sim.Time) {
	b.rts.pes[pe].pe.Reserve(cost)
}

func (b *simBackend) run() sim.Time { return b.rts.eng.Run() }

func (b *simBackend) executed() uint64 { return b.rts.eng.Executed() }

// realBackend adapts the realrt goroutine runtime.
type realBackend struct {
	rts *RTS
	rt  *realrt.Runtime
}

func (b *realBackend) now() sim.Time { return b.rt.Now() }

func (b *realBackend) schedule(pe int, task func()) { b.rt.Enqueue(pe, task) }

// send is a real shared-memory message: the payload was already cloned at
// the send site (Charm++ copy-on-send semantics), so delivery is an
// enqueue on the destination PE's scheduler queue. The cost a message
// pays here is real: the clone memcpy, the lock-free queue push plus
// wakeup kick, and a scheduler dispatch on the far side — exactly the
// overheads a CkDirect put avoids.
func (b *realBackend) send(srcPE, dstPE, size int, deliver func()) {
	b.rt.Enqueue(dstPE, deliver)
}

// put runs the one-sided transfer synchronously on the sender: the
// receiver is not involved until its poll loop observes the sentinel.
// The work credit is taken before the store publishes the payload and is
// held until the receiver's detection callback completes (PutDetected),
// so termination cannot race a landed-but-undetected put. The kick after
// the store is not part of delivery — the bytes are already published and
// a spinning receiver detects them without it — it only unparks a
// receiver that went idle, so detection latency stays in nanoseconds
// instead of a sleep.
func (b *realBackend) put(op PutOp) {
	b.rt.PutIssued()
	op.Execute()
	b.rt.Kick(op.DstPE)
	if op.Hooks.OnSendDone != nil {
		// Local completion is immediate: a shared-memory put's source
		// buffer is reusable as soon as the copy returns.
		op.Hooks.OnSendDone()
	}
}

func (b *realBackend) after(pe int, d sim.Time, task func()) {
	b.rt.After(pe, d, task)
}

func (b *realBackend) charge(pe int, cost sim.Time) {}

func (b *realBackend) run() sim.Time {
	// Freeze every reduction tree before workers start: freeze() mutates
	// shared reducer state and must not race its first concurrent use.
	for _, r := range b.rts.reducers {
		r.freeze()
	}
	return b.rts.runWithMemStats(b.rt.Run)
}

func (b *realBackend) executed() uint64 { return b.rt.Executed() }

// netBackend adapts the distributed netrt runtime. Cross-process traffic
// never reaches this adapter: SendPE, Array.Send and Array.Broadcast
// intercept remote destinations and ship wire envelopes before the
// transport closure is built, so schedule/send here always address a
// locally hosted PE.
type netBackend struct {
	rts *RTS
	nrt *netrt.Runtime
}

func (b *netBackend) now() sim.Time { return b.nrt.Now() }

func (b *netBackend) schedule(pe int, task func()) { b.nrt.Enqueue(pe, task) }

func (b *netBackend) send(srcPE, dstPE, size int, deliver func()) {
	b.nrt.Enqueue(dstPE, deliver)
}

// put performs the one-sided transfer. A destination in this process is
// the real backend's shared-memory put verbatim; a remote destination
// ships the raw source bytes addressed by the SPMD-identical handle id,
// and the receiving process deposits them into the registered buffer
// with the same copy + sentinel release-store. Local completion is
// immediate either way — the frame encoder copies the payload before
// SendPut returns, so the source buffer is reusable.
func (b *netBackend) put(op PutOp) {
	if b.nrt.Hosts(op.DstPE) {
		b.nrt.PutIssued()
		op.Execute()
		b.nrt.Kick(op.DstPE)
	} else {
		b.nrt.SendPut(op.DstPE, int64(op.WireHandle), op.WirePayload())
	}
	if op.Hooks.OnSendDone != nil {
		op.Hooks.OnSendDone()
	}
}

func (b *netBackend) after(pe int, d sim.Time, task func()) {
	b.nrt.After(pe, d, task)
}

func (b *netBackend) charge(pe int, cost sim.Time) {}

func (b *netBackend) run() sim.Time {
	// Freeze every reduction tree before workers start (see realBackend).
	for _, r := range b.rts.reducers {
		r.freeze()
	}
	t := b.rts.runWithMemStats(b.nrt.Run)
	// Network failures (a dead peer, a corrupt frame) surface through the
	// same error channel as contract violations.
	for _, err := range b.nrt.Errors() {
		b.rts.ReportError(err)
	}
	if rec := b.rts.rec; rec != nil {
		// Mesh scale counters. These are cumulative over the node's
		// lifetime (connections opened at bootstrap included), not
		// per-run deltas: the recorder is fresh for each app run, and the
		// absolute values are what the scale claims are about — how many
		// sockets THIS communication pattern needed in total, and how
		// wide the termination tree's root fan-in ran.
		s := b.nrt.NetStats()
		rec.Incr(trace.CntNetConnsOpened, s.ConnsDialed+s.ConnsAccepted)
		rec.Incr(trace.CntNetConnsDialed, s.ConnsDialed)
		rec.Incr(trace.CntNetConnsAccepted, s.ConnsAccepted)
		rec.Incr(trace.CntNetDialReqs, s.DialReqs)
		rec.Incr(trace.CntNetProbeRounds, s.TermProbeRounds)
		rec.Incr(trace.CntNetProbeReports, s.TermProbeReports)
		rec.Incr(trace.CntNetShmCoalesced, s.ShmFramesCoalesced)
		rec.Incr(trace.CntNetBatchGrows, s.BatchGrows)
		rec.Incr(trace.CntNetBatchShrinks, s.BatchShrinks)
		rec.Incr(trace.CntNetEagerShrinks, s.EagerShrinks)
	}
	return t
}

func (b *netBackend) executed() uint64 { return b.nrt.Executed() }

// runWithMemStats brackets a live-backend run with allocator, GC and
// wire-pool accounting, recording the deltas as mem.* / pool.* counters.
// Only the real and net backends call it: their costs are wall-clock
// real, so the allocator's contribution is a measurable overhead (the
// quantity this repo's zero-allocation hot paths exist to remove). The
// sim backend must never record these — its counter sets are compared
// wholesale by determinism tests, and allocator behaviour is not
// deterministic.
func (rts *RTS) runWithMemStats(run func() sim.Time) sim.Time {
	rec := rts.rec
	if rec == nil {
		return run()
	}
	poolBefore := bufpool.Default.Stats()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t := run()
	runtime.ReadMemStats(&after)
	poolAfter := bufpool.Default.Stats()
	rec.Incr(trace.CntMemAllocs, int64(after.Mallocs-before.Mallocs))
	rec.Incr(trace.CntMemBytes, int64(after.TotalAlloc-before.TotalAlloc))
	rec.Incr(trace.CntMemGCPauseNS, int64(after.PauseTotalNs-before.PauseTotalNs))
	rec.Incr(trace.CntMemGCs, int64(after.NumGC-before.NumGC))
	rec.Incr(trace.CntPoolGets, poolAfter.Gets-poolBefore.Gets)
	rec.Incr(trace.CntPoolPuts, poolAfter.Puts-poolBefore.Puts)
	rec.Incr(trace.CntPoolMisses, poolAfter.Misses-poolBefore.Misses)
	rec.Incr(trace.CntPoolOversize, poolAfter.Oversize-poolBefore.Oversize)
	return t
}
