package charm

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Reliability configures the ack/retransmit protocol for the Charm++
// message paths. Real deployments of RDMA messaging layer exactly this
// kind of state machine over the raw transport (MPICH2 over InfiniBand);
// here it lets applications survive an unreliable simulated network while
// paying honest recovery costs: every retransmission and every ack is a
// full Transfer through the regime tables, so recovery latency shows up
// in benchmark numbers rather than being waved away.
type Reliability struct {
	// MaxRetries is how many retransmissions are attempted after the first
	// send before the message is declared failed (default 4).
	MaxRetries int
	// AckBytes is the ack payload size in bytes, charged through the
	// CharmMsg regime table plus envelope (default 16).
	AckBytes int
	// RTO is the initial retransmission timeout. Zero derives a generous
	// default from the unloaded round-trip of the message and its ack.
	// Each retry doubles it (exponential backoff).
	RTO sim.Time
}

// EnableReliability routes every subsequent SendPE / Array.Send through
// the ack/retransmit protocol. Call it before the simulation starts; it
// is not meant to be toggled mid-run.
func (rts *RTS) EnableReliability(cfg Reliability) {
	if rts.opts.Backend == RealBackend {
		// Fault injection and recovery model unreliable fabrics; the real
		// backend's shared-memory transport does not drop messages.
		panic("charm: reliability protocol is sim-only (real backend transport is reliable)")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.AckBytes <= 0 {
		cfg.AckBytes = 16
	}
	rts.rel = &reliableState{cfg: cfg}
}

// ReliabilityEnabled reports whether the protocol is active.
func (rts *RTS) ReliabilityEnabled() bool { return rts.rel != nil }

// reliableState is the protocol engine: a sequence counter for flow ids
// plus the configuration. Per-message state lives in closures — the
// simulation is single-threaded, so no locking anywhere.
type reliableState struct {
	cfg     Reliability
	nextSeq int
}

// send moves one message through the reliable protocol. deliver is the
// idempotent delivery continuation built by RTS.transport (it dedups
// replays itself and settles the quiescence count on first delivery).
//
// Protocol: each attempt is a full Transfer tagged KindCharmMsg with the
// message's sequence number as flow id. The receiver acks every copy it
// sees (acks are small Transfers tagged KindCharmAck; re-acking replays
// covers the ack-lost case). The sender arms a timeout per attempt; an
// ack cancels it, expiry retransmits with doubled timeout until
// MaxRetries is exhausted, at which point the failure is reported through
// RTS.ReportError and the quiescence counter is released so the
// simulation can settle instead of hanging.
func (st *reliableState) send(rts *RTS, src, dst int, cost netmodel.PathCost, deliver func()) {
	seq := st.nextSeq
	st.nextSeq++
	ackCost := rts.plat.CharmMsg.Resolve(st.cfg.AckBytes + rts.plat.HeaderBytes)
	rto := st.cfg.RTO
	if rto == 0 {
		// Four unloaded round trips plus fixed slack: loose enough that
		// scheduler queueing rarely triggers spurious retransmissions
		// (which would be correct — the receiver dedups — but noisy).
		rto = 4*(cost.OneWay()+ackCost.OneWay()) + sim.Microseconds(20)
	}

	acked := false
	delivered := false
	failed := false
	var timer *sim.Event
	var attempt func(try int, rto sim.Time)

	onAck := func() {
		if acked {
			return
		}
		acked = true
		if timer != nil {
			timer.Cancel()
		}
		if rts.rec != nil {
			rts.rec.Incr(trace.CntAcks, 1)
		}
	}

	received := func() {
		if failed {
			// A severely delayed copy landing after the sender declared the
			// message dead: the flight's quiescence count is already
			// released, so delivering now would corrupt it. Discard.
			if rts.rec != nil {
				rts.rec.Incr(trace.CntDupDiscards, 1)
			}
			return
		}
		delivered = true
		deliver() // idempotent: replays are discarded and counted inside
		rts.net.Transfer(dst, src, ackCost, netmodel.TransferHooks{
			Kind:     netmodel.KindCharmAck,
			Flow:     seq,
			OnArrive: onAck,
		})
	}

	attempt = func(try int, rto sim.Time) {
		rts.net.Transfer(src, dst, cost, netmodel.TransferHooks{
			Kind:     netmodel.KindCharmMsg,
			Flow:     seq,
			OnArrive: received,
		})
		timer = rts.eng.Schedule(rto, func() {
			if acked {
				return
			}
			if try >= st.cfg.MaxRetries {
				if delivered {
					// The payload landed; only acks kept dying. Nothing to
					// report — the message did its job and the quiescence
					// count was settled by delivery.
					return
				}
				failed = true
				if rts.rec != nil {
					rts.rec.Incr(trace.CntFailedMsgs, 1)
				}
				rts.ReportError(fmt.Errorf(
					"charm: message seq %d (%d→%d) lost after %d retransmissions",
					seq, src, dst, st.cfg.MaxRetries))
				rts.qdDec() // give up the flight so quiescence can settle
				return
			}
			if rts.rec != nil {
				rts.rec.Incr(trace.CntRetransmits, 1)
			}
			attempt(try+1, 2*rto)
		})
	}
	attempt(0, rto)
}
