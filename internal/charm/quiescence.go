package charm

// Quiescence detection: a Charm++ runtime service that reports when no
// entry method is executing, none is queued, and no message is in flight
// anywhere — the global condition under which a phase (or program) is
// complete without an explicit barrier.
//
// The simulation tracks one activity counter: each message send (or local
// enqueue) increments it, and each completed handler dispatch decrements
// it. Because a handler's own sends increment the counter *before* its
// dispatch decrements, the counter reaches zero only when the transitive
// closure of all message activity has drained — the standard
// counting-based CQD argument, made exact by the single-threaded engine.
//
// CkDirect traffic is deliberately outside quiescence: the paper's whole
// premise is that CkDirect channels are synchronized by the application's
// own phase structure, not by the runtime.

// OnQuiescence registers fn to run once the system next becomes quiescent
// (immediately, at the current virtual time, if it already is). Each
// registration fires at most once.
func (rts *RTS) OnQuiescence(fn func()) {
	if fn == nil {
		panic("charm: OnQuiescence with nil callback")
	}
	if rts.opts.Backend != SimBackend {
		// The real and net backends' own termination detection (the work
		// counter, and its distributed four-counter lift) subsumes CQD;
		// per-callback quiescence is a simulator service.
		panic("charm: OnQuiescence is only supported on the sim backend")
	}
	if rts.qdCounter == 0 {
		fn()
		return
	}
	rts.qdWaiters = append(rts.qdWaiters, fn)
}

// QuiescenceCounter exposes the current activity count (tests).
func (rts *RTS) QuiescenceCounter() int64 { return rts.qdCounter }

func (rts *RTS) qdInc() { rts.qdCounter++ }

func (rts *RTS) qdDec() {
	rts.qdCounter--
	if rts.qdCounter < 0 {
		panic("charm: quiescence counter went negative")
	}
	if rts.qdCounter == 0 && len(rts.qdWaiters) > 0 {
		waiters := rts.qdWaiters
		rts.qdWaiters = nil
		for _, fn := range waiters {
			fn()
		}
	}
}
