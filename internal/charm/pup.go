package charm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Puper is the pack/unpack visitor of the pup (pack-unpack) contract:
// one Pup method describes an element's state once, and the same code
// path serializes (packing) and deserializes (unpacking) it — mirroring
// Charm++'s PUP framework, scoped to what checkpointing needs. Calls
// must happen in the same order on both sides; the wire format is the
// field sequence itself, so there is no per-field tagging.
type Puper interface {
	// Packing reports the direction: true while serializing.
	Packing() bool
	Int(v *int)
	Int64(v *int64)
	Float64(v *float64)
	Bool(v *bool)
	// Bytes pups a byte slice, length-prefixed. Unpacking fills the
	// existing slice in place when its length already matches (so
	// buffers aliased by registered regions keep their identity) and
	// reallocates otherwise.
	Bytes(v *[]byte)
	// Float64s pups a []float64 with the same in-place rule as Bytes.
	Float64s(v *[]float64)
	// Err returns the first error encountered (truncated or oversized
	// input while unpacking). After an error every further call is a
	// no-op that leaves targets untouched.
	Err() error
}

// Pupable is implemented by chare objects that can checkpoint their
// state.
type Pupable interface {
	Pup(p Puper)
}

// maxPupSlice bounds a decoded slice length so corrupt input cannot
// force an unbounded allocation (1 << 31 elements is far beyond any
// element state in this repository).
const maxPupSlice = 1 << 31

// Packer is the serializing Puper: every visited field appends to Buf.
type Packer struct {
	Buf []byte
}

func (p *Packer) Packing() bool { return true }
func (p *Packer) Err() error    { return nil }

func (p *Packer) Int(v *int)     { p.Buf = binary.LittleEndian.AppendUint64(p.Buf, uint64(int64(*v))) }
func (p *Packer) Int64(v *int64) { p.Buf = binary.LittleEndian.AppendUint64(p.Buf, uint64(*v)) }
func (p *Packer) Float64(v *float64) {
	p.Buf = binary.LittleEndian.AppendUint64(p.Buf, math.Float64bits(*v))
}
func (p *Packer) Bool(v *bool) {
	b := byte(0)
	if *v {
		b = 1
	}
	p.Buf = append(p.Buf, b)
}
func (p *Packer) Bytes(v *[]byte) {
	p.Buf = binary.LittleEndian.AppendUint64(p.Buf, uint64(len(*v)))
	p.Buf = append(p.Buf, *v...)
}
func (p *Packer) Float64s(v *[]float64) {
	p.Buf = binary.LittleEndian.AppendUint64(p.Buf, uint64(len(*v)))
	for _, f := range *v {
		p.Buf = binary.LittleEndian.AppendUint64(p.Buf, math.Float64bits(f))
	}
}

// Unpacker is the deserializing Puper: every visited field reads from
// Buf in order. Errors are sticky.
type Unpacker struct {
	Buf []byte
	off int
	err error
}

func (u *Unpacker) Packing() bool { return false }
func (u *Unpacker) Err() error    { return u.err }

// Rest returns how many input bytes remain unconsumed — a restore that
// finishes with bytes left over read a layout it did not expect.
func (u *Unpacker) Rest() int { return len(u.Buf) - u.off }

func (u *Unpacker) take(n int) []byte {
	if u.err != nil {
		return nil
	}
	if n < 0 || len(u.Buf)-u.off < n {
		u.err = fmt.Errorf("charm: pup underflow: need %d bytes, have %d", n, len(u.Buf)-u.off)
		return nil
	}
	b := u.Buf[u.off : u.off+n]
	u.off += n
	return b
}

func (u *Unpacker) u64() uint64 {
	b := u.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (u *Unpacker) Int(v *int) {
	x := int64(u.u64())
	if u.err == nil {
		*v = int(x)
	}
}
func (u *Unpacker) Int64(v *int64) {
	x := int64(u.u64())
	if u.err == nil {
		*v = x
	}
}
func (u *Unpacker) Float64(v *float64) {
	x := math.Float64frombits(u.u64())
	if u.err == nil {
		*v = x
	}
}
func (u *Unpacker) Bool(v *bool) {
	b := u.take(1)
	if b != nil {
		*v = b[0] != 0
	}
}

func (u *Unpacker) sliceLen() (int, bool) {
	n := u.u64()
	if u.err != nil {
		return 0, false
	}
	if n > maxPupSlice {
		u.err = fmt.Errorf("charm: pup slice length %d exceeds cap", n)
		return 0, false
	}
	return int(n), true
}

func (u *Unpacker) Bytes(v *[]byte) {
	n, ok := u.sliceLen()
	if !ok {
		return
	}
	b := u.take(n)
	if b == nil {
		return
	}
	if len(*v) == n {
		copy(*v, b)
		return
	}
	*v = append([]byte(nil), b...)
}

func (u *Unpacker) Float64s(v *[]float64) {
	n, ok := u.sliceLen()
	if !ok {
		return
	}
	b := u.take(8 * n)
	if b == nil {
		return
	}
	dst := *v
	if len(dst) != n {
		dst = make([]float64, n)
		*v = dst
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// pupHosted pups the locally hosted elements of the array in the
// deterministic perPE insertion order — identical on every rank under
// the SPMD setup, so pack and unpack walk the same sequence. Elements
// with a nil chare object (state held elsewhere) are skipped; a non-nil
// object that does not implement Pupable is a contract violation.
func (a *Array) pupHosted(p Puper) error {
	for pe, els := range a.perPE {
		if !a.rts.HostsPE(pe) {
			continue
		}
		for _, el := range els {
			if el.obj == nil {
				continue
			}
			pb, ok := el.obj.(Pupable)
			if !ok {
				return fmt.Errorf("charm: %s[%s] chare (%T) does not implement Pupable", a.name, el.idx, el.obj)
			}
			pb.Pup(p)
			if err := p.Err(); err != nil {
				return fmt.Errorf("charm: pup %s[%s]: %w", a.name, el.idx, err)
			}
		}
	}
	return nil
}

// hostedPupables counts the locally hosted elements pupHosted would
// visit.
func (a *Array) hostedPupables() int {
	n := 0
	for pe, els := range a.perPE {
		if !a.rts.HostsPE(pe) {
			continue
		}
		for _, el := range els {
			if el.obj != nil {
				n++
			}
		}
	}
	return n
}

// hostedElements counts all locally hosted elements (pupable or not) —
// the contribution count a whole-array checkpoint barrier waits for.
func (a *Array) hostedElements() int {
	n := 0
	for pe, els := range a.perPE {
		if a.rts.HostsPE(pe) {
			n += len(els)
		}
	}
	return n
}
