package charm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// runReduction builds an array of n elements over pes PEs, has every
// element contribute its value, and returns the reduced result.
func runReduction(t *testing.T, pes, n int, op ReduceOp, valOf func(i int) float64) []float64 {
	t.Helper()
	eng, rts := newTestRTS(pes)
	a := rts.NewArray("red", RRMap(pes))
	for i := 0; i < n; i++ {
		a.Insert(Idx1(i), &counterChare{})
	}
	var result []float64
	a.SetReductionClient(op, func(ctx *Ctx, vals []float64) {
		result = append([]float64(nil), vals...)
	})
	ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		ctx.Contribute(valOf(ctx.Index()[0]))
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
	eng.Run()
	if result == nil {
		t.Fatalf("pes=%d n=%d: reduction never completed", pes, n)
	}
	return result
}

func TestReductionSum(t *testing.T) {
	for _, pes := range []int{1, 2, 3, 5, 16} {
		got := runReduction(t, pes, 40, Sum, func(i int) float64 { return float64(i) })
		if got[0] != 780 { // sum 0..39
			t.Fatalf("pes=%d: sum = %v, want 780", pes, got[0])
		}
	}
}

func TestReductionMinMaxProd(t *testing.T) {
	if got := runReduction(t, 4, 10, Min, func(i int) float64 { return float64(10 - i) }); got[0] != 1 {
		t.Fatalf("min = %v", got[0])
	}
	if got := runReduction(t, 4, 10, Max, func(i int) float64 { return float64(10 - i) }); got[0] != 10 {
		t.Fatalf("max = %v", got[0])
	}
	if got := runReduction(t, 3, 5, Prod, func(i int) float64 { return 2 }); got[0] != 32 {
		t.Fatalf("prod = %v, want 2^5", got[0])
	}
}

func TestVectorReduction(t *testing.T) {
	eng, rts := newTestRTS(4)
	a := rts.NewArray("vec", RRMap(4))
	const n = 12
	for i := 0; i < n; i++ {
		a.Insert(Idx1(i), nil)
	}
	var result []float64
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) { result = vals })
	ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		i := float64(ctx.Index()[0])
		ctx.Contribute(1, i, i*i)
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
	eng.Run()
	if len(result) != 3 || result[0] != n || result[1] != 66 || result[2] != 506 {
		t.Fatalf("vector reduction = %v", result)
	}
}

// TestSuccessiveReductionsStayOrderedPerGeneration: elements racing ahead
// into the next iteration must not corrupt the previous reduction.
func TestSuccessiveReductions(t *testing.T) {
	eng, rts := newTestRTS(3)
	a := rts.NewArray("iter", RRMap(3))
	const n, iters = 9, 5
	for i := 0; i < n; i++ {
		a.Insert(Idx1(i), nil)
	}
	var results []float64
	var ep EP
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) {
		results = append(results, vals[0])
		if len(results) < iters {
			ctx.Broadcast(a, ep, &Message{Size: 8, Tag: len(results)})
		}
	})
	ep = a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		ctx.Contribute(float64(msg.Tag + 1))
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8, Tag: 0}) })
	eng.Run()
	if len(results) != iters {
		t.Fatalf("%d reductions completed, want %d", len(results), iters)
	}
	for k, r := range results {
		if r != float64(n*(k+1)) {
			t.Fatalf("reduction %d = %v, want %d", k, r, n*(k+1))
		}
	}
}

// TestReductionPropertySumMatchesSequential: for random element counts, PE
// counts and values, the tree reduction equals the sequential sum.
func TestReductionPropertySumMatchesSequential(t *testing.T) {
	prop := func(pesRaw, nRaw uint8, vals []float64) bool {
		pes := int(pesRaw)%8 + 1
		n := int(nRaw)%30 + 1
		clean := make([]float64, n)
		for i := range clean {
			if i < len(vals) && !math.IsNaN(vals[i]) && !math.IsInf(vals[i], 0) && math.Abs(vals[i]) < 1e12 {
				clean[i] = vals[i]
			} else {
				clean[i] = float64(i)
			}
		}
		eng, rts := newTestRTS(pes)
		a := rts.NewArray("p", RRMap(pes))
		for i := 0; i < n; i++ {
			a.Insert(Idx1(i), nil)
		}
		var got float64
		done := false
		a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) {
			got = vals[0]
			done = true
		})
		ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
			ctx.Contribute(clean[ctx.Index()[0]])
		})
		rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
		eng.Run()
		want := 0.0
		for _, v := range clean {
			want += v
		}
		return done && math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionWidthMismatchChecked(t *testing.T) {
	eng, rts := newTestRTS(1)
	rts.opts.Checked = true
	a := rts.NewArray("w", RRMap(1))
	a.Insert(Idx1(0), nil)
	a.Insert(Idx1(1), nil)
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) {})
	ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		if ctx.Index()[0] == 0 {
			ctx.Contribute(1)
		} else {
			ctx.Contribute(1, 2)
		}
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
	eng.Run()
	if len(rts.Errors()) == 0 {
		t.Fatal("width mismatch not reported in checked mode")
	}
}

func TestContributeOutsideEntryPanics(t *testing.T) {
	_, rts := newTestRTS(1)
	rts.NewArray("x", RRMap(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Contribute outside entry method did not panic")
		}
	}()
	ctx := &Ctx{rts: rts, pe: 0}
	ctx.Contribute(1)
}

// TestBarrierOrdering: a contribute/broadcast barrier must strictly
// separate iterations — no element starts iteration k+1 before every
// element finished iteration k.
func TestBarrierOrdering(t *testing.T) {
	eng, rts := newBGPTestRTS(8)
	a := rts.NewArray("b", RRMap(8))
	const n, iters = 32, 4
	for i := 0; i < n; i++ {
		a.Insert(Idx1(i), nil)
	}
	finishTimes := make([]sim.Time, iters+1)
	var startNext sim.Time
	var work EP
	round := 0
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) {
		finishTimes[round] = ctx.Now()
		round++
		if round < iters {
			startNext = ctx.Now()
			ctx.Broadcast(a, work, &Message{Size: 8})
		}
	})
	var earliestWork sim.Time = sim.MaxTime
	work = a.EntryMethod("w", func(ctx *Ctx, msg *Message) {
		if round > 0 && ctx.Now() < startNext {
			t.Errorf("element worked at %v before barrier released at %v", ctx.Now(), startNext)
		}
		if ctx.Now() < earliestWork {
			earliestWork = ctx.Now()
		}
		ctx.Charge(10 * sim.Microsecond)
		ctx.Contribute(1)
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, work, &Message{Size: 8}) })
	eng.Run()
	if round != iters {
		t.Fatalf("completed %d rounds, want %d", round, iters)
	}
	for k := 1; k < iters; k++ {
		if finishTimes[k] <= finishTimes[k-1] {
			t.Fatalf("barrier times not increasing: %v", finishTimes[:iters])
		}
	}
}
