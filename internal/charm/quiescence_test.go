package charm

import (
	"testing"

	"repro/internal/sim"
)

func TestQuiescenceImmediateWhenIdle(t *testing.T) {
	_, rts := newTestRTS(2)
	fired := false
	rts.OnQuiescence(func() { fired = true })
	if !fired {
		t.Fatal("idle system not immediately quiescent")
	}
}

func TestQuiescenceAfterMessageCascade(t *testing.T) {
	eng, rts := newTestRTS(4)
	var qdAt sim.Time = -1
	var lastHandler sim.Time
	hops := 0
	var ep EP
	ep = rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		lastHandler = ctx.Now()
		hops++
		if hops < 10 {
			ctx.SendPE((ctx.PE()+1)%4, ep, &Message{Size: 64})
		}
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.SendPE(1, ep, &Message{Size: 64})
		rts.OnQuiescence(func() { qdAt = eng.Now() })
	})
	eng.Run()
	if hops != 10 {
		t.Fatalf("cascade ran %d hops", hops)
	}
	if qdAt < 0 {
		t.Fatal("quiescence never detected")
	}
	if qdAt < lastHandler {
		t.Fatalf("quiescence at %v before last handler at %v", qdAt, lastHandler)
	}
	if rts.QuiescenceCounter() != 0 {
		t.Fatalf("counter = %d after drain", rts.QuiescenceCounter())
	}
}

// TestQuiescenceNotPremature: the counter must not hit zero in the
// window between a handler finishing and its sent message arriving.
func TestQuiescenceNotPremature(t *testing.T) {
	eng, rts := newTestRTS(2)
	delivered := false
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { delivered = true })
	premature := false
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.SendPE(1, ep, &Message{Size: 500000}) // slow message
		rts.OnQuiescence(func() {
			if !delivered {
				premature = true
			}
		})
	})
	eng.Run()
	if premature {
		t.Fatal("quiescence fired while a message was in flight")
	}
	if !delivered {
		t.Fatal("message never delivered")
	}
}

func TestQuiescenceWithReductionsAndBroadcasts(t *testing.T) {
	eng, rts := newTestRTS(4)
	a := rts.NewArray("q", RRMap(4))
	for i := 0; i < 12; i++ {
		a.Insert(Idx1(i), nil)
	}
	rounds := 0
	var work EP
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) {
		rounds++
		if rounds < 3 {
			ctx.Broadcast(a, work, &Message{Size: 8})
		}
	})
	work = a.EntryMethod("w", func(ctx *Ctx, msg *Message) {
		ctx.Charge(5 * sim.Microsecond)
		ctx.Contribute(1)
	})
	qdFired := false
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.Broadcast(a, work, &Message{Size: 8})
		rts.OnQuiescence(func() { qdFired = true })
	})
	eng.Run()
	if rounds != 3 {
		t.Fatalf("%d rounds", rounds)
	}
	if !qdFired {
		t.Fatal("quiescence not reached after reduction rounds")
	}
	if rts.QuiescenceCounter() != 0 {
		t.Fatalf("counter = %d", rts.QuiescenceCounter())
	}
}

func TestQuiescenceMultipleWaiters(t *testing.T) {
	eng, rts := newTestRTS(2)
	count := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.SendPE(1, ep, &Message{Size: 8})
		for i := 0; i < 3; i++ {
			rts.OnQuiescence(func() { count++ })
		}
	})
	eng.Run()
	if count != 3 {
		t.Fatalf("%d waiters fired, want 3", count)
	}
}

func TestQuiescenceNilWaiterPanics(t *testing.T) {
	_, rts := newTestRTS(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil waiter accepted")
		}
	}()
	rts.OnQuiescence(nil)
}
