package charm

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

type counterChare struct {
	got  int
	sum  float64
	tags []int
}

func TestArrayInsertAndPlacement(t *testing.T) {
	_, rts := newTestRTS(4)
	a := rts.NewArray("grid", BlockMap1D(8, 4))
	for i := 0; i < 8; i++ {
		a.Insert(Idx1(i), &counterChare{})
	}
	if a.NumElements() != 8 {
		t.Fatalf("NumElements = %d", a.NumElements())
	}
	for pe := 0; pe < 4; pe++ {
		if a.ElementsOn(pe) != 2 {
			t.Fatalf("PE %d hosts %d elements, want 2", pe, a.ElementsOn(pe))
		}
	}
	if a.PEOf(Idx1(0)) != 0 || a.PEOf(Idx1(7)) != 3 {
		t.Fatal("block map misplaced boundary elements")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	_, rts := newTestRTS(2)
	a := rts.NewArray("dup", BlockMap1D(4, 2))
	a.Insert(Idx1(0), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	a.Insert(Idx1(0), nil)
}

func TestSendInvokesEntryMethodWithObj(t *testing.T) {
	eng, rts := newTestRTS(2)
	a := rts.NewArray("grid", BlockMap1D(2, 2))
	a.Insert(Idx1(0), &counterChare{})
	a.Insert(Idx1(1), &counterChare{})
	ep := a.EntryMethod("recv", func(ctx *Ctx, msg *Message) {
		obj := ctx.Obj().(*counterChare)
		obj.got++
		obj.tags = append(obj.tags, msg.Tag)
		if ctx.Index() != Idx1(1) {
			t.Errorf("handler saw index %v", ctx.Index())
		}
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.Send(a, Idx1(1), ep, &Message{Size: 32, Tag: 5})
	})
	eng.Run()
	obj := a.Obj(Idx1(1)).(*counterChare)
	if obj.got != 1 || obj.tags[0] != 5 {
		t.Fatalf("element state %+v", obj)
	}
}

func TestSendToMissingElementCheckedMode(t *testing.T) {
	eng := sim.NewEngine()
	_, rts := newTestRTS(2)
	_ = eng
	rts.opts.Checked = true
	a := rts.NewArray("sparse", BlockMap1D(4, 2))
	a.Insert(Idx1(0), nil)
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.Send(a, Idx1(3), 0, &Message{})
	})
	rts.Run()
	if len(rts.Errors()) != 1 {
		t.Fatalf("checked mode recorded %d errors, want 1", len(rts.Errors()))
	}
}

func TestSendToMissingElementUncheckedPanics(t *testing.T) {
	_, rts := newTestRTS(2)
	a := rts.NewArray("sparse", BlockMap1D(4, 2))
	a.Insert(Idx1(0), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("send to missing element did not panic")
		}
	}()
	a.Send(0, Idx1(3), 0, &Message{})
}

func TestBroadcastReachesAllElements(t *testing.T) {
	for _, pes := range []int{1, 2, 3, 7, 16} {
		eng, rts := newTestRTS(pes)
		a := rts.NewArray("grid", RRMap(pes))
		const n = 23
		for i := 0; i < n; i++ {
			a.Insert(Idx1(i), &counterChare{})
		}
		ep := a.EntryMethod("ping", func(ctx *Ctx, msg *Message) {
			ctx.Obj().(*counterChare).got++
		})
		rts.StartAt(0, func(ctx *Ctx) {
			ctx.Broadcast(a, ep, &Message{Size: 16})
		})
		eng.Run()
		for i := 0; i < n; i++ {
			if got := a.Obj(Idx1(i)).(*counterChare).got; got != 1 {
				t.Fatalf("pes=%d: element %d received %d broadcasts, want 1", pes, i, got)
			}
		}
	}
}

func TestBroadcastFromNonZeroRoot(t *testing.T) {
	eng, rts := newTestRTS(5)
	a := rts.NewArray("grid", RRMap(5))
	for i := 0; i < 11; i++ {
		a.Insert(Idx1(i), &counterChare{})
	}
	ep := a.EntryMethod("ping", func(ctx *Ctx, msg *Message) {
		ctx.Obj().(*counterChare).got++
	})
	rts.StartAt(3, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
	eng.Run()
	for i := 0; i < 11; i++ {
		if got := a.Obj(Idx1(i)).(*counterChare).got; got != 1 {
			t.Fatalf("element %d received %d, want 1", i, got)
		}
	}
}

// TestBroadcastScalesLogarithmically: tree distribution means the time to
// reach the last PE grows like log2(P), not P.
func TestBroadcastScalesLogarithmically(t *testing.T) {
	timeFor := func(pes int) sim.Time {
		eng, rts := newTestRTS(pes)
		a := rts.NewArray("g", func(ix Index) int { return ix[0] })
		for i := 0; i < pes; i++ {
			a.Insert(Idx1(i), &counterChare{})
		}
		var last sim.Time
		ep := a.EntryMethod("p", func(ctx *Ctx, msg *Message) {
			if ctx.Now() > last {
				last = ctx.Now()
			}
		})
		rts.StartAt(0, func(ctx *Ctx) { ctx.Broadcast(a, ep, &Message{Size: 8}) })
		eng.Run()
		return last
	}
	t64, t256 := timeFor(64), timeFor(256)
	// log2(256)/log2(64) = 8/6; allow up to 2x, but rule out linear (4x).
	if float64(t256) > 2.2*float64(t64) {
		t.Fatalf("broadcast not tree-shaped: 64 PEs %v, 256 PEs %v", t64, t256)
	}
}

func TestBinomialChildrenPartition(t *testing.T) {
	// For any P, following children links from 0 must visit every rank
	// exactly once.
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13, 64, 100} {
		seen := make([]bool, p)
		var walk func(r int)
		var visits int
		walk = func(r int) {
			if seen[r] {
				t.Fatalf("P=%d: rank %d visited twice", p, r)
			}
			seen[r] = true
			visits++
			for _, c := range binomialChildren(r, p) {
				walk(c)
			}
		}
		walk(0)
		if visits != p {
			t.Fatalf("P=%d: visited %d ranks", p, visits)
		}
	}
}

// TestBinomialParentChildInverse: parent(child) == node for every edge.
func TestBinomialParentChildInverse(t *testing.T) {
	prop := func(pRaw uint8, rRaw uint16) bool {
		p := int(pRaw)%200 + 1
		r := int(rRaw) % p
		for _, c := range binomialChildren(r, p) {
			if binomialParent(c) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRRMapDeterministicAndInRange(t *testing.T) {
	m := RRMap(7)
	prop := func(i, j, k, l int16) bool {
		ix := Idx4(int(i), int(j), int(k), int(l))
		pe := m(ix)
		return pe >= 0 && pe < 7 && pe == m(ix)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockMap1DCoversAllPEs(t *testing.T) {
	for _, tc := range []struct{ n, pes int }{{8, 4}, {7, 4}, {4, 4}, {100, 7}, {5, 8}} {
		m := BlockMap1D(tc.n, tc.pes)
		used := map[int]bool{}
		for i := 0; i < tc.n; i++ {
			pe := m(Idx1(i))
			if pe < 0 || pe >= tc.pes {
				t.Fatalf("n=%d pes=%d: element %d mapped to %d", tc.n, tc.pes, i, pe)
			}
			used[pe] = true
		}
		// Monotone non-decreasing mapping.
		for i := 1; i < tc.n; i++ {
			if m(Idx1(i)) < m(Idx1(i-1)) {
				t.Fatalf("block map not monotone at %d", i)
			}
		}
	}
}
