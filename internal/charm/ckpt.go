package charm

import (
	"fmt"
	"sync"

	"repro/internal/ckpt"
)

// CkptOptions configures coordinated checkpointing for an app run.
type CkptOptions struct {
	// Dir is the checkpoint directory, shared by every rank (the net
	// backend runs all ranks on one host).
	Dir string
	// Every checkpoints after every Every-th reduction barrier
	// (0 disables).
	Every int
}

// Enabled reports whether checkpointing is on.
func (o *CkptOptions) Enabled() bool { return o != nil && o.Every > 0 && o.Dir != "" }

// RegionHooks is the seam to the CkDirect manager: verify all one-sided
// traffic is drained at the cut, and pup the registered receive-buffer
// contents. Declared here (not in ckdirect) so charm does not import
// ckdirect; *ckdirect.Manager implements it.
type RegionHooks interface {
	Quiescent() error
	PupRegions(p Puper) error
}

// keepSnapshots is how many snapshot generations each rank retains: the
// current one plus the previous, so a crash between a new snapshot and
// its commit record leaves the committed generation restorable.
const keepSnapshots = 2

// Checkpointer drives coordinated checkpoints for one run. The protocol
// rides the app's reduction barriers, so it needs no new wire frames:
//
//  1. The root reduction client, at a step where Due(step) is true,
//     broadcasts the app's checkpoint entry method instead of the next
//     iterate.
//  2. Every element's checkpoint handler calls ElementSave(step) and
//     contributes to an extra barrier round. The LAST local element to
//     arrive — by which point every other local element has already
//     saved and gone idle, with the collector mutex providing the
//     happens-before — walks the arrays in registration order and the
//     elements in deterministic per-PE insertion order, pups each, pups
//     the registered-buffer contents, and writes this rank's snapshot
//     file.
//  3. The extra barrier completing at the root proves (by the
//     contribution happens-before chain) that every rank's snapshot is
//     on disk; the root writes the commit record and resumes iterating.
//
// The cut is consistent because a barrier is a quiesced boundary: every
// put of the step has been consumed, every channel re-armed (Quiescent
// verifies it), and the next step's puts cannot issue until the root
// broadcasts the next iterate — which it withholds until the commit.
type Checkpointer struct {
	rts   *RTS
	dir   string
	every int
	rank  int
	world int

	arrays []*Array
	hooks  RegionHooks

	mu       sync.Mutex
	saveStep int // step currently being collected
	saved    int // local elements that reached ElementSave for saveStep

	// Root-side barrier state: which step's checkpoint barrier is in
	// flight. Only the root reduction client touches it.
	pending     bool
	pendingStep int
}

// NewCheckpointer builds the checkpoint driver for one run.
func NewCheckpointer(rts *RTS, opts *CkptOptions) *Checkpointer {
	rank, world := 0, 1
	if n := rts.opts.Net; n != nil {
		rank, world = n.Rank(), n.World()
	}
	return &Checkpointer{
		rts:      rts,
		dir:      opts.Dir,
		every:    opts.Every,
		rank:     rank,
		world:    world,
		saveStep: -1,
	}
}

// Attach registers the arrays whose elements checkpoint. Call after all
// inserts; registration order must be SPMD-identical (it defines the
// snapshot layout).
func (ck *Checkpointer) Attach(arrays ...*Array) {
	ck.arrays = append(ck.arrays, arrays...)
}

// need counts the local elements a checkpoint barrier waits for. It is
// computed live, not cached at Attach: migration changes which elements
// a rank hosts mid-run.
func (ck *Checkpointer) need() int {
	n := 0
	for _, a := range ck.arrays {
		n += a.hostedElements()
	}
	return n
}

// SetRegionHooks installs the CkDirect drain/region seam (nil when the
// run has no CkDirect channels).
func (ck *Checkpointer) SetRegionHooks(h RegionHooks) { ck.hooks = h }

// Due reports whether a checkpoint should be cut after completed
// barrier step (1-based).
func (ck *Checkpointer) Due(step int) bool {
	return ck.every > 0 && step > 0 && step%ck.every == 0
}

// Begin marks the root's checkpoint barrier for step as in flight; the
// root client broadcasts the app's checkpoint EP right after.
func (ck *Checkpointer) Begin(step int) {
	ck.pending = true
	ck.pendingStep = step
}

// InCheckpoint reports whether the barrier that just completed at the
// root was a checkpoint barrier (true) or an ordinary iterate barrier.
func (ck *Checkpointer) InCheckpoint() bool { return ck.pending }

// ElementSave records one local element reaching the checkpoint cut for
// step. The last local element to arrive performs this rank's snapshot;
// every earlier element has already saved its contribution flag and
// gone idle, so walking all local state from this goroutine is race-
// free (the collector mutex carries the happens-before). Errors surface
// through the runtime's error channel — a failed snapshot must not
// silently commit.
func (ck *Checkpointer) ElementSave(step int) {
	ck.mu.Lock()
	if ck.saveStep != step {
		ck.saveStep = step
		ck.saved = 0
	}
	ck.saved++
	last := ck.saved == ck.need()
	ck.mu.Unlock()
	if !last {
		return
	}
	if err := ck.snapshot(step); err != nil {
		ck.rts.ReportError(fmt.Errorf("checkpoint step %d: %w", step, err))
	}
}

// snapshot packs this rank's cut — element state in deterministic
// order, then registered-buffer contents — and persists it.
func (ck *Checkpointer) snapshot(step int) error {
	if ck.hooks != nil {
		if err := ck.hooks.Quiescent(); err != nil {
			return err
		}
	}
	p := &Packer{}
	if err := ck.pupAll(p); err != nil {
		return err
	}
	return ckpt.WriteSnapshot(ck.dir, &ckpt.Snapshot{
		Rank:    ck.rank,
		World:   ck.world,
		Step:    step,
		Payload: p.Buf,
	}, keepSnapshots)
}

// pupAll walks the checkpointed state in its canonical order.
func (ck *Checkpointer) pupAll(p Puper) error {
	n := len(ck.arrays)
	p.Int(&n)
	if n != len(ck.arrays) {
		return fmt.Errorf("checkpoint has %d arrays, this setup has %d", n, len(ck.arrays))
	}
	for _, a := range ck.arrays {
		c := a.hostedPupables()
		p.Int(&c)
		if c != a.hostedPupables() {
			return fmt.Errorf("checkpoint has %d elements of %s, this rank hosts %d", c, a.name, a.hostedPupables())
		}
		if err := a.pupHosted(p); err != nil {
			return err
		}
	}
	if ck.hooks != nil {
		if err := ck.hooks.PupRegions(p); err != nil {
			return err
		}
	}
	return nil
}

// Commit finishes the checkpoint whose barrier just completed at the
// root: every rank's snapshot is durable (the barrier proved it), so
// the commit record may name the step.
func (ck *Checkpointer) Commit() (int, error) {
	step := ck.pendingStep
	ck.pending = false
	if ck.rank != 0 {
		return step, nil
	}
	return step, ckpt.WriteCommit(ck.dir, ck.world, step)
}

// Restore rolls this rank back to the newest committed checkpoint.
// Call after the run's SPMD setup is fully rebuilt (arrays inserted,
// channels registered, Attach/SetRegionHooks done) and before the run
// starts: element state and registered-buffer bytes are overwritten in
// place. It returns the restored step, or 0 when no checkpoint exists
// (fresh start).
func (ck *Checkpointer) Restore() (int, error) {
	step, ok, err := ckpt.ReadCommit(ck.dir, ck.world)
	if err != nil || !ok {
		return 0, err
	}
	if ck.need() == 0 && !ckpt.HasSnapshot(ck.dir, ck.rank, step) {
		// A rank hosting no elements never writes a snapshot — there is
		// nothing to restore either.
		return step, nil
	}
	s, err := ckpt.ReadSnapshot(ck.dir, ck.rank, step)
	if err != nil {
		return 0, err
	}
	u := &Unpacker{Buf: s.Payload}
	if err := ck.pupAll(u); err != nil {
		return 0, err
	}
	if rest := u.Rest(); rest != 0 {
		return 0, fmt.Errorf("checkpoint step %d: %d trailing bytes", step, rest)
	}
	return step, nil
}
