package charm

import "testing"

// TestBackendRoundTrip pins the -backend flag vocabulary: every backend's
// String form parses back to itself, and unknown values are rejected with
// the exact error the cmd drivers print.
func TestBackendRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
	}{
		{"sim", SimBackend},
		{"real", RealBackend},
		{"net", NetBackend},
	}
	for _, tc := range cases {
		got, err := ParseBackend(tc.in)
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if s := got.String(); s != tc.in {
			t.Errorf("Backend(%v).String() = %q, want %q", got, s, tc.in)
		}
		back, err := ParseBackend(got.String())
		if err != nil || back != got {
			t.Errorf("String/Parse round trip broke for %q: %v, %v", tc.in, back, err)
		}
	}

	for _, bad := range []string{"", "SIM", "tcp", "bogus"} {
		if _, err := ParseBackend(bad); err == nil {
			t.Errorf("ParseBackend(%q) accepted an unknown backend", bad)
		}
	}
	_, err := ParseBackend("bogus")
	const want = `charm: unknown backend "bogus" (want sim, real or net)`
	if err == nil || err.Error() != want {
		t.Errorf("ParseBackend error = %q, want %q", err, want)
	}

	if s := Backend(99).String(); s != "Backend(99)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}
