package charm

import (
	"fmt"

	"repro/internal/netrt"
)

// DefaultRecoveryAttempts bounds how many times a run is retried after
// rank deaths before the failure surfaces as today's clean typed abort.
const DefaultRecoveryAttempts = 2

// RunWithRecovery executes run() with bounded rank-failure recovery.
// run must be the complete SPMD run closure: build the runtime and
// arrays from scratch, restore from the newest committed checkpoint
// (Checkpointer.Restore), execute, and return the run's errors. When a
// run fails purely with recoverable peer-loss NetErrors, the mesh is
// rebuilt via node.Rejoin — which respawns the dead rank — and run()
// re-executes; every rank's driver does the same, so the whole world
// rolls back to the checkpoint together. Any other failure (or attempts
// running out, or a rejoin that itself fails) returns the errors
// unchanged: the caller sees exactly the abort it would have seen
// without recovery.
func RunWithRecovery(node *netrt.Node, attempts int, run func() []error) []error {
	errs := run()
	for try := 0; try < attempts; try++ {
		if len(errs) == 0 || node == nil || !netrt.Recoverable(errs) {
			return errs
		}
		if err := node.Rejoin(); err != nil {
			return append(errs, fmt.Errorf("recovery attempt %d: %w", try+1, err))
		}
		errs = run()
	}
	return errs
}
