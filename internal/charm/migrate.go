package charm

import "fmt"

// Element migration primitives. The load balancer (internal/lb) drives
// them at a quiescent barrier cut; none of this is safe while entry
// methods or puts are in flight.
//
// Under the SPMD setup every process holds every element (only a
// hosted element's object carries live state), so migration splits
// into two halves:
//
//   - MoveElement is pure location bookkeeping — placement, delivery
//     context, per-PE dispatch lists, reduction generation shards —
//     and every rank applies the identical move, keeping the ordinal
//     identities that cross the wire meaningful everywhere.
//   - PackElement/UnpackElement ship the element's live state (its
//     reduction generation counters and pupped chare fields) from the
//     old hosting rank to the new one; in a single-process world the
//     object pointer never moved and no state transfer is needed.
//
// Reduction trees are frozen against birth placement; a migrated
// element keeps its frozen slot and forwards contributions to its home
// PE (see reducer.home), so MoveElement never re-shapes a tree.

// resolveElement looks up an array by registration ordinal and its
// element by index.
func (rts *RTS) resolveElement(array int, idx Index) (*Array, *element, error) {
	if array < 0 || array >= len(rts.arrays) {
		return nil, nil, fmt.Errorf("charm: migrate: unknown array ordinal %d", array)
	}
	a := rts.arrays[array]
	el, ok := a.elems[idx]
	if !ok {
		return nil, nil, fmt.Errorf("charm: migrate: missing element %s[%s]", a.name, idx)
	}
	return a, el, nil
}

// MoveElement rehomes element idx of the array with registration
// ordinal array onto PE to, updating location bookkeeping only. The
// element keeps its position-independent identity: it is removed from
// its old PE's dispatch list preserving order and appended to the new
// PE's — every rank applying the same move sequence therefore keeps
// SPMD-identical per-PE orderings.
func (rts *RTS) MoveElement(array int, idx Index, to int) error {
	a, el, err := rts.resolveElement(array, idx)
	if err != nil {
		return err
	}
	if to < 0 || to >= rts.mach.NumPEs() {
		return fmt.Errorf("charm: migrate: %s[%s] to invalid PE %d", a.name, idx, to)
	}
	from := el.pe
	if from == to {
		return nil
	}
	list := a.perPE[from]
	pos := -1
	for i, e := range list {
		if e == el {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("charm: migrate: %s[%s] missing from PE %d list", a.name, idx, from)
	}
	a.perPE[from] = append(list[:pos], list[pos+1:]...)
	a.perPE[to] = append(a.perPE[to], el)
	el.pe = to
	el.ctx = &Ctx{rts: rts, pe: to, arr: a, idx: idx, obj: el.obj, elem: el}
	for _, r := range rts.reducers {
		r.migrateSeq(el, from, to)
	}
	return nil
}

// PackElement serializes a migrating element's live state: one
// reduction generation counter per registered reducer (registration
// order), then the pupped chare fields. Call on the rank that hosted
// the element, after MoveElement applied (the generation shard moved
// with it).
func (rts *RTS) PackElement(array int, idx Index) ([]byte, error) {
	a, el, err := rts.resolveElement(array, idx)
	if err != nil {
		return nil, err
	}
	p := &Packer{}
	n := len(rts.reducers)
	p.Int(&n)
	for _, r := range rts.reducers {
		g := r.elementGen(el)
		p.Int(&g)
	}
	if el.obj != nil {
		pb, ok := el.obj.(Pupable)
		if !ok {
			return nil, fmt.Errorf("charm: migrate: %s[%s] chare (%T) does not implement Pupable", a.name, idx, el.obj)
		}
		pb.Pup(p)
	}
	return p.Buf, nil
}

// UnpackElement installs a migrated element's packed state on the rank
// that now hosts it. Run it on (or before handing work to) the
// element's new PE: it seeds the reduction generation shards and
// overwrites the chare object's pupped fields in place.
func (rts *RTS) UnpackElement(array int, idx Index, data []byte) error {
	a, el, err := rts.resolveElement(array, idx)
	if err != nil {
		return err
	}
	u := &Unpacker{Buf: data}
	var n int
	u.Int(&n)
	if err := u.Err(); err != nil {
		return err
	}
	if n != len(rts.reducers) {
		return fmt.Errorf("charm: migrate: %s[%s] packed with %d reducers, this setup has %d",
			a.name, idx, n, len(rts.reducers))
	}
	for _, r := range rts.reducers {
		var g int
		u.Int(&g)
		if g != 0 {
			r.setElementGen(el, g)
		}
	}
	if el.obj != nil {
		pb, ok := el.obj.(Pupable)
		if !ok {
			return fmt.Errorf("charm: migrate: %s[%s] chare (%T) does not implement Pupable", a.name, idx, el.obj)
		}
		pb.Pup(u)
	}
	if err := u.Err(); err != nil {
		return fmt.Errorf("charm: migrate: unpack %s[%s]: %w", a.name, idx, err)
	}
	if rest := u.Rest(); rest != 0 {
		return fmt.Errorf("charm: migrate: unpack %s[%s]: %d trailing bytes", a.name, idx, rest)
	}
	return nil
}
