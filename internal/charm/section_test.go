package charm

import (
	"testing"

	"repro/internal/sim"
)

func buildSectionRig(t *testing.T, pes, elems int) (*sim.Engine, *RTS, *Array) {
	t.Helper()
	eng, rts := newTestRTS(pes)
	a := rts.NewArray("grid", RRMap(pes))
	for i := 0; i < elems; i++ {
		a.Insert(Idx1(i), &counterChare{})
	}
	return eng, rts, a
}

func TestSectionMulticastReachesOnlyMembers(t *testing.T) {
	eng, rts, a := buildSectionRig(t, 4, 20)
	// Even-index elements form the section.
	var members []Index
	for i := 0; i < 20; i += 2 {
		members = append(members, Idx1(i))
	}
	sec := a.NewSection("even", members)
	if sec.NumElements() != 10 {
		t.Fatalf("section size %d", sec.NumElements())
	}
	ep := a.EntryMethod("ping", func(ctx *Ctx, msg *Message) {
		ctx.Obj().(*counterChare).got++
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.MulticastSection(sec, ep, &Message{Size: 64, Tag: 9})
	})
	eng.Run()
	for i := 0; i < 20; i++ {
		want := 0
		if i%2 == 0 {
			want = 1
		}
		if got := a.Obj(Idx1(i)).(*counterChare).got; got != want {
			t.Fatalf("element %d received %d, want %d", i, got, want)
		}
	}
}

func TestSectionMulticastFromMemberPE(t *testing.T) {
	eng, rts, a := buildSectionRig(t, 4, 8)
	sec := a.NewSection("all", []Index{Idx1(0), Idx1(1), Idx1(2)})
	ep := a.EntryMethod("p", func(ctx *Ctx, msg *Message) {
		ctx.Obj().(*counterChare).got++
	})
	root := sec.PEs()[0]
	rts.StartAt(root, func(ctx *Ctx) {
		ctx.MulticastSection(sec, ep, &Message{Size: 8})
	})
	eng.Run()
	total := 0
	for i := 0; i < 3; i++ {
		total += a.Obj(Idx1(i)).(*counterChare).got
	}
	if total != 3 {
		t.Fatalf("section delivered %d, want 3", total)
	}
}

func TestSectionReduction(t *testing.T) {
	eng, rts, a := buildSectionRig(t, 4, 16)
	var members []Index
	for i := 0; i < 16; i += 4 { // elements 0, 4, 8, 12
		members = append(members, Idx1(i))
	}
	sec := a.NewSection("quarters", members)
	var result float64
	sec.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) { result = vals[0] })
	ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		sec.ContributeFrom(ctx.Index(), float64(ctx.Index()[0]))
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.MulticastSection(sec, ep, &Message{Size: 8})
	})
	eng.Run()
	if result != 24 { // 0+4+8+12
		t.Fatalf("section reduction = %v, want 24", result)
	}
}

// TestSectionAndArrayReductionsIndependent: an element contributing to
// both its array's reduction and a section reduction must not mix
// generations.
func TestSectionAndArrayReductionsIndependent(t *testing.T) {
	eng, rts, a := buildSectionRig(t, 2, 4)
	sec := a.NewSection("pair", []Index{Idx1(0), Idx1(1)})
	var arrTotal, secTotal float64
	a.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) { arrTotal = vals[0] })
	sec.SetReductionClient(Sum, func(ctx *Ctx, vals []float64) { secTotal = vals[0] })
	ep := a.EntryMethod("go", func(ctx *Ctx, msg *Message) {
		i := ctx.Index()[0]
		ctx.Contribute(1) // array-wide barrier-ish
		if i < 2 {
			sec.ContributeFrom(ctx.Index(), 10)
		}
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.Broadcast(a, ep, &Message{Size: 8})
	})
	eng.Run()
	if arrTotal != 4 {
		t.Fatalf("array reduction = %v, want 4", arrTotal)
	}
	if secTotal != 20 {
		t.Fatalf("section reduction = %v, want 20", secTotal)
	}
}

func TestSectionValidation(t *testing.T) {
	_, _, a := buildSectionRig(t, 2, 4)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty section", func() { a.NewSection("e", nil) })
	mustPanic("missing element", func() { a.NewSection("m", []Index{Idx1(99)}) })
	mustPanic("duplicate", func() { a.NewSection("d", []Index{Idx1(0), Idx1(0)}) })
	sec := a.NewSection("ok", []Index{Idx1(0)})
	mustPanic("non-member contribute", func() { sec.ContributeFrom(Idx1(3), 1) })
}

func TestSectionRepeatedMulticasts(t *testing.T) {
	eng, rts, a := buildSectionRig(t, 3, 9)
	sec := a.NewSection("s", []Index{Idx1(1), Idx1(5), Idx1(7)})
	ep := a.EntryMethod("p", func(ctx *Ctx, msg *Message) {
		ctx.Obj().(*counterChare).tags = append(ctx.Obj().(*counterChare).tags, msg.Tag)
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.MulticastSection(sec, ep, &Message{Size: 8, Tag: 1})
		ctx.MulticastSection(sec, ep, &Message{Size: 8, Tag: 2})
	})
	eng.Run()
	for _, i := range []int{1, 5, 7} {
		tags := a.Obj(Idx1(i)).(*counterChare).tags
		if len(tags) != 2 {
			t.Fatalf("element %d saw %d multicasts", i, len(tags))
		}
	}
}
