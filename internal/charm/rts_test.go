package charm

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// newTestRTS builds a runtime on the Abe platform model with the given
// number of PEs.
func newTestRTS(pes int) (*sim.Engine, *RTS) {
	eng := sim.NewEngine()
	mach, net := netmodel.AbeIB.BuildMachine(eng, pes)
	rts := NewRTS(eng, mach, net, netmodel.AbeIB, trace.NewRecorder(), Options{Checked: false})
	return eng, rts
}

func newBGPTestRTS(pes int) (*sim.Engine, *RTS) {
	eng := sim.NewEngine()
	mach, net := netmodel.SurveyorBGP.BuildMachine(eng, pes)
	rts := NewRTS(eng, mach, net, netmodel.SurveyorBGP, trace.NewRecorder(), Options{})
	return eng, rts
}

func TestStartAtRunsOnRequestedPE(t *testing.T) {
	_, rts := newTestRTS(4)
	ran := -1
	rts.StartAt(2, func(ctx *Ctx) { ran = ctx.PE() })
	rts.Run()
	if ran != 2 {
		t.Fatalf("ran on PE %d, want 2", ran)
	}
}

func TestSendPEDeliversMessage(t *testing.T) {
	eng, rts := newTestRTS(2)
	var got *Message
	var at sim.Time
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		got = msg
		at = ctx.Now()
	})
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.SendPE(1, ep, &Message{Size: 100, Tag: 7})
	})
	end := eng.Run()
	if got == nil || got.Tag != 7 {
		t.Fatalf("message not delivered: %+v", got)
	}
	if at == 0 || end < at {
		t.Fatalf("delivery time bogus: %v end %v", at, end)
	}
}

// TestMessageLatencyMatchesModel: an idle-system PE-to-PE message should
// take exactly SendCPU+Wire+RecvCPU+Sched (plus the startup scheduler pass
// that launches the sender).
func TestMessageLatencyMatchesModel(t *testing.T) {
	eng, rts := newTestRTS(16)
	plat := rts.Platform()
	size := 100
	cost := plat.CharmMsg.Resolve(size + plat.HeaderBytes)
	// PEs 0 and 8 are on different nodes (8 cores/node on Abe).
	var sendStart, recvAt sim.Time
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { recvAt = ctx.Now() })
	rts.StartAt(0, func(ctx *Ctx) {
		sendStart = ctx.Now()
		ctx.SendPE(8, ep, &Message{Size: size})
	})
	eng.Run()
	want := sendStart + cost.OneWay() + sim.Microseconds(plat.SchedUS)
	if recvAt != want {
		t.Fatalf("delivery at %v, want %v (start %v + model %v)", recvAt, want, sendStart, cost.OneWay())
	}
}

// TestIntraNodeFasterThanInterNode: messages between PEs on one node get
// the shared-memory wire discount.
func TestIntraNodeFasterThanInterNode(t *testing.T) {
	measure := func(dst int) sim.Time {
		eng, rts := newTestRTS(16)
		var recvAt sim.Time
		ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { recvAt = ctx.Now() })
		rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(dst, ep, &Message{Size: 1000}) })
		eng.Run()
		return recvAt
	}
	intra := measure(1) // same node (cores/node = 8)
	inter := measure(8) // next node
	if intra >= inter {
		t.Fatalf("intra-node %v not faster than inter-node %v", intra, inter)
	}
}

func TestChargeExtendsBusyTime(t *testing.T) {
	eng, rts := newTestRTS(1)
	var afterCharge sim.Time
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.Charge(100 * sim.Microsecond)
		afterCharge = rts.Machine().PE(0).FreeAt()
	})
	eng.Run()
	if afterCharge < 100*sim.Microsecond {
		t.Fatalf("FreeAt %v, want >= 100us", afterCharge)
	}
}

// TestSchedulerSerializesHandlers: two messages to one PE must not
// overlap; the second handler starts only after the first one's charged
// compute finishes.
func TestSchedulerSerializesHandlers(t *testing.T) {
	eng, rts := newTestRTS(3)
	var starts []sim.Time
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		starts = append(starts, ctx.Now())
		ctx.Charge(500 * sim.Microsecond)
	})
	rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(2, ep, &Message{Size: 8}) })
	rts.StartAt(1, func(ctx *Ctx) { ctx.SendPE(2, ep, &Message{Size: 8}) })
	eng.Run()
	if len(starts) != 2 {
		t.Fatalf("%d handler invocations, want 2", len(starts))
	}
	if starts[1]-starts[0] < 500*sim.Microsecond {
		t.Fatalf("second handler at %v only %v after first — handlers overlapped",
			starts[1], starts[1]-starts[0])
	}
}

// TestQueueOccupancyGrowsLatency: with many messages queued on a PE, each
// pays scheduling overhead — the effect the stencil study attributes
// fine-grained slowdowns to.
func TestQueueOccupancyGrowsLatency(t *testing.T) {
	eng, rts := newTestRTS(2)
	const n = 50
	var last sim.Time
	count := 0
	ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) {
		count++
		last = ctx.Now()
	})
	rts.StartAt(0, func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			ctx.SendPE(1, ep, &Message{Size: 8})
		}
	})
	eng.Run()
	if count != n {
		t.Fatalf("delivered %d, want %d", count, n)
	}
	// The last delivery must be at least (n-1)*SchedUS after the first
	// could have arrived: scheduling serializes.
	minSched := sim.Microseconds(float64(n-1) * rts.Platform().SchedUS)
	if last < minSched {
		t.Fatalf("last delivery %v, want >= %v of accumulated scheduling", last, minSched)
	}
	if got := rts.Recorder().Count("charm.msgs"); got != n {
		t.Fatalf("charm.msgs = %d, want %d", got, n)
	}
}

func TestPollTaxChargedPerSchedulerPass(t *testing.T) {
	tax := 10 * sim.Microsecond
	deliveryAt := func(withTax bool) sim.Time {
		eng, rts := newTestRTS(2)
		if withTax {
			rts.SetPollTax(func(pe int) sim.Time {
				if pe == 1 {
					return tax
				}
				return 0
			})
		}
		var at sim.Time
		ep := rts.RegisterPEHandler(func(ctx *Ctx, msg *Message) { at = ctx.Now() })
		rts.StartAt(0, func(ctx *Ctx) { ctx.SendPE(1, ep, &Message{Size: 64}) })
		eng.Run()
		if withTax && rts.Recorder().Time("ckd.polltax") < tax {
			t.Fatal("poll tax not recorded")
		}
		return at
	}
	base, taxed := deliveryAt(false), deliveryAt(true)
	// Exactly one scheduler pass on PE 1 dispatches the message, so the
	// delivery is delayed by exactly one tax.
	if taxed-base != tax {
		t.Fatalf("tax skew %v, want exactly %v", taxed-base, tax)
	}
}

func TestEnqueueLocalPaysSchedOverhead(t *testing.T) {
	eng, rts := newTestRTS(1)
	var enq, ran sim.Time
	rts.StartAt(0, func(ctx *Ctx) {
		enq = ctx.Now()
		ctx.EnqueueLocal(func(ctx *Ctx) { ran = ctx.Now() })
	})
	eng.Run()
	if ran-enq < sim.Microseconds(rts.Platform().SchedUS) {
		t.Fatalf("local enqueue ran after %v, want >= sched overhead", ran-enq)
	}
}

func TestAfterSchedulesWithoutCPU(t *testing.T) {
	eng, rts := newTestRTS(1)
	var at sim.Time
	rts.StartAt(0, func(ctx *Ctx) {
		ctx.After(50*sim.Microsecond, func(ctx *Ctx) { at = ctx.Now() })
	})
	eng.Run()
	if at < 50*sim.Microsecond {
		t.Fatalf("After fired at %v", at)
	}
	// No CPU beyond the startup scheduler pass should be consumed.
	busy := rts.Machine().PE(0).BusyTotal()
	if busy > 10*sim.Microsecond {
		t.Fatalf("After consumed %v CPU", busy)
	}
}

func TestReportErrorAccumulates(t *testing.T) {
	_, rts := newTestRTS(1)
	rts.ReportError(errFor("a"))
	rts.ReportError(errFor("b"))
	if len(rts.Errors()) != 2 {
		t.Fatalf("%d errors, want 2", len(rts.Errors()))
	}
}

func errFor(s string) error { return &strErr{s} }

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }
