package charm

import (
	"bytes"
	"math/rand"
	"testing"
)

type migChare struct {
	vals []float64
	n    int
	flag bool
}

func (c *migChare) Pup(p Puper) {
	p.Float64s(&c.vals)
	p.Int(&c.n)
	p.Bool(&c.flag)
}

func TestMoveElementRelocates(t *testing.T) {
	_, rts := newTestRTS(4)
	a := rts.NewArray("grid", BlockMap1D(8, 4))
	for i := 0; i < 8; i++ {
		a.Insert(Idx1(i), &migChare{})
	}
	if err := rts.MoveElement(a.Ord(), Idx1(0), 3); err != nil {
		t.Fatal(err)
	}
	if got := a.CurrentPE(Idx1(0)); got != 3 {
		t.Fatalf("CurrentPE = %d, want 3", got)
	}
	// The old PE's dispatch list keeps its order minus the migrant; the
	// new PE's gains it at the tail.
	if len(a.perPE[0]) != 1 || a.perPE[0][0] != a.elems[Idx1(1)] {
		t.Fatalf("PE 0 list broken after move: %d entries", len(a.perPE[0]))
	}
	last := a.perPE[3][len(a.perPE[3])-1]
	if last != a.elems[Idx1(0)] {
		t.Fatal("migrant not appended to PE 3's list")
	}
	// Moving to the current PE is a no-op.
	if err := rts.MoveElement(a.Ord(), Idx1(0), 3); err != nil {
		t.Fatal(err)
	}
	hosted := 0
	a.EachHosted(func(Index, int) { hosted++ })
	if hosted != 8 {
		t.Fatalf("EachHosted sees %d elements, want 8", hosted)
	}
}

func TestMoveElementValidation(t *testing.T) {
	_, rts := newTestRTS(2)
	a := rts.NewArray("grid", BlockMap1D(4, 2))
	a.Insert(Idx1(0), &migChare{})
	if err := rts.MoveElement(99, Idx1(0), 1); err == nil {
		t.Error("unknown array ordinal accepted")
	}
	if err := rts.MoveElement(a.Ord(), Idx1(3), 1); err == nil {
		t.Error("missing element accepted")
	}
	if err := rts.MoveElement(a.Ord(), Idx1(0), 7); err == nil {
		t.Error("out-of-range PE accepted")
	}
}

// TestMigrateStateRoundTrip is the migrated-state property test: for
// arbitrary chare contents and reduction generations, PackElement's
// bytes must rebuild the element exactly — same pupped fields, same
// generation counter — and a repack must reproduce the bytes.
func TestMigrateStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		_, rts := newTestRTS(4)
		a := rts.NewArray("grid", BlockMap1D(8, 4))
		objs := make([]*migChare, 8)
		for i := 0; i < 8; i++ {
			objs[i] = &migChare{
				vals: make([]float64, rng.Intn(32)),
				n:    rng.Intn(1000),
				flag: rng.Intn(2) == 0,
			}
			for j := range objs[i].vals {
				objs[i].vals[j] = rng.NormFloat64()
			}
			a.Insert(Idx1(i), objs[i])
		}
		a.SetReductionClient(Sum, func(*Ctx, []float64) {})
		idx := Idx1(rng.Intn(8))
		el := a.elems[idx]
		gen := 1 + rng.Intn(50)
		rts.reducers[0].setElementGen(el, gen)

		if err := rts.MoveElement(a.Ord(), idx, rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
		data, err := rts.PackElement(a.Ord(), idx)
		if err != nil {
			t.Fatal(err)
		}
		// Scramble the live object and the generation shard — the unpack
		// must restore every packed byte's worth of state.
		obj := a.Obj(idx).(*migChare)
		want := &migChare{vals: append([]float64(nil), obj.vals...), n: obj.n, flag: obj.flag}
		obj.vals = make([]float64, rng.Intn(16))
		obj.n = -1
		obj.flag = !obj.flag
		rts.reducers[0].setElementGen(el, gen+7)

		if err := rts.UnpackElement(a.Ord(), idx, data); err != nil {
			t.Fatal(err)
		}
		if got := rts.reducers[0].elementGen(el); got != gen {
			t.Fatalf("trial %d: generation %d after unpack, want %d", trial, got, gen)
		}
		if len(obj.vals) != len(want.vals) || obj.n != want.n || obj.flag != want.flag {
			t.Fatalf("trial %d: state not restored: %+v vs %+v", trial, obj, want)
		}
		for j := range want.vals {
			if obj.vals[j] != want.vals[j] {
				t.Fatalf("trial %d: vals[%d] = %v, want %v", trial, j, obj.vals[j], want.vals[j])
			}
		}
		data2, err := rts.PackElement(a.Ord(), idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("trial %d: repack differs", trial)
		}
	}
}

// TestUnpackElementRejectsGarbage pins the failure modes: truncated
// payloads and reducer-count mismatches must error, not corrupt.
func TestUnpackElementRejectsGarbage(t *testing.T) {
	_, rts := newTestRTS(2)
	a := rts.NewArray("grid", BlockMap1D(2, 2))
	a.Insert(Idx1(0), &migChare{vals: []float64{1, 2, 3}})
	data, err := rts.PackElement(a.Ord(), Idx1(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := rts.UnpackElement(a.Ord(), Idx1(0), data[:len(data)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
	if err := rts.UnpackElement(a.Ord(), Idx1(0), append(append([]byte(nil), data...), 0, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A second array registers a second reducer; state packed under the
	// one-reducer setup must now be rejected.
	rts.NewArray("other", BlockMap1D(2, 2))
	if err := rts.UnpackElement(a.Ord(), Idx1(0), data); err == nil {
		t.Error("reducer-count mismatch accepted")
	}
}
