//go:build linux && !amd64 && !arm64

package netrt

// Unknown arch: 0 routes createShmFd to the unlinked-temp-file
// fallback, which needs no syscall table.
const sysMemfdCreate = 0
