package netrt

import (
	"fmt"
	"os"
	"os/exec"
	"time"
)

// spawnedWorker is one self-spawned worker process. A single waiter
// goroutine, started at spawn, collects the exit status exactly once
// (exec.Cmd.Wait cannot be called twice): exited, reap-style probes and
// the final wait all observe the done latch instead.
type spawnedWorker struct {
	rank int
	cmd  *exec.Cmd
	err  error         // exit error; written before done closes
	done chan struct{} // closed when the process has been reaped
}

// checkSpawnFDBudget pre-checks RLIMIT_NOFILE before a self-spawn
// bootstrap: the coordinator holds a socket per worker (its star), its
// listener, pipes to the children, shm handshake fds and stdio — a
// 256-rank world under the classic 1024-fd default dies as a raw
// EMFILE somewhere mid-dial, long after the spawn wave started. The
// typed error names the limit to raise instead.
func checkSpawnFDBudget(rank, world int) error {
	need := uint64(2*world + 64)
	if cur, ok := nofileLimit(); ok && cur < need {
		return &NetError{Rank: rank, Peer: -1, Op: "spawn",
			Err: fmt.Errorf("RLIMIT_NOFILE is %d but a %d-rank self-spawned world needs about %d fds on the coordinator; raise it (e.g. ulimit -n %d)",
				cur, world, need, need)}
	}
	return nil
}

// spawnOne launches one worker rank as a copy of this process's command
// line, pointing it at the coordinator address. The worker re-parses
// the same flags plus the injected -net.rank/-net.world/-net.coord
// overrides (later flag occurrences win).
func spawnOne(cfg Config, rank, world int, coordAddr string) (*spawnedWorker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("resolve own executable: %w", err)
	}
	args := append([]string(nil), os.Args[1:]...)
	args = append(args,
		fmt.Sprintf("-net.rank=%d", rank),
		fmt.Sprintf("-net.world=%d", world),
		fmt.Sprintf("-net.coord=%s", coordAddr),
	)
	args = append(args, cfg.ExtraArgs...)
	cmd := exec.Command(exe, args...)
	// Workers share the parent's stderr so their diagnostics surface;
	// stdout stays the parent's report channel alone.
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), cfg.ExtraEnv...)
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn rank %d: %w", rank, err)
	}
	w := &spawnedWorker{rank: rank, cmd: cmd, done: make(chan struct{})}
	go func() {
		w.err = cmd.Wait()
		close(w.done)
	}()
	return w, nil
}

// spawnWorkers launches ranks 1..world-1 as copies of this process's
// command line, so a single command — `pingpong -backend=net
// -net.world=2` — runs a whole world.
func spawnWorkers(cfg Config, world int, coordAddr string) ([]*spawnedWorker, error) {
	var workers []*spawnedWorker
	for r := 1; r < world; r++ {
		w, err := spawnOne(cfg, r, world, coordAddr)
		if err != nil {
			for _, w := range workers {
				w.cmd.Process.Kill()
			}
			return nil, err
		}
		workers = append(workers, w)
	}
	return workers, nil
}

// wait reaps the worker, killing it if it outlives the grace period (a
// worker wedged after the parent finished must not hang the launcher).
func (w *spawnedWorker) wait() error {
	select {
	case <-w.done:
	case <-time.After(30 * time.Second):
		w.cmd.Process.Kill()
		<-w.done
		return fmt.Errorf("netrt: worker rank %d did not exit; killed", w.rank)
	}
	if w.err != nil {
		return fmt.Errorf("netrt: worker rank %d: %w", w.rank, w.err)
	}
	return nil
}

// exited reports whether the worker process has exited (and been
// reaped) within the grace period. A kill -9'd child trips the done
// latch immediately — the waiter goroutine has been running since
// spawn — so even a zero grace sees an already-dead child; the grace
// only covers a death racing the reap itself.
func (w *spawnedWorker) exited(grace time.Duration) bool {
	select {
	case <-w.done:
		return true
	case <-time.After(grace):
		return false
	}
}

// KillWorker SIGKILLs a self-spawned worker rank — the chaos tier's
// process-level fault injection. The mesh observes the death exactly as
// it would any crashed rank: sockets break, the run aborts with a typed
// NetError, and recovery (when enabled) respawns the rank.
func (n *Node) KillWorker(rank int) error {
	if n == nil {
		return fmt.Errorf("netrt: no node to kill rank %d on", rank)
	}
	for _, w := range n.children {
		if w.rank == rank {
			return w.cmd.Process.Kill()
		}
	}
	return fmt.Errorf("netrt: rank %d is not a spawned child of this process", rank)
}
