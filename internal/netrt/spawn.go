package netrt

import (
	"fmt"
	"os"
	"os/exec"
	"time"
)

// spawnedWorker is one self-spawned worker process.
type spawnedWorker struct {
	rank int
	cmd  *exec.Cmd
}

// spawnWorkers launches ranks 1..world-1 as copies of this process's
// command line, pointing them at the coordinator address. Each worker
// re-parses the same flags plus the injected -net.rank/-net.world/
// -net.coord overrides (later flag occurrences win), so a single
// command — `pingpong -backend=net -net.world=2` — runs a whole world.
func spawnWorkers(cfg Config, world int, coordAddr string) ([]*spawnedWorker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("resolve own executable: %w", err)
	}
	var workers []*spawnedWorker
	for r := 1; r < world; r++ {
		args := append([]string(nil), os.Args[1:]...)
		args = append(args,
			fmt.Sprintf("-net.rank=%d", r),
			fmt.Sprintf("-net.world=%d", world),
			fmt.Sprintf("-net.coord=%s", coordAddr),
		)
		args = append(args, cfg.ExtraArgs...)
		cmd := exec.Command(exe, args...)
		// Workers share the parent's stderr so their diagnostics surface;
		// stdout stays the parent's report channel alone.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), cfg.ExtraEnv...)
		if err := cmd.Start(); err != nil {
			for _, w := range workers {
				w.cmd.Process.Kill()
			}
			return nil, fmt.Errorf("spawn rank %d: %w", r, err)
		}
		workers = append(workers, &spawnedWorker{rank: r, cmd: cmd})
	}
	return workers, nil
}

// wait reaps the worker, killing it if it outlives the grace period (a
// worker wedged after the parent finished must not hang the launcher).
func (w *spawnedWorker) wait() error {
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("netrt: worker rank %d: %w", w.rank, err)
		}
		return nil
	case <-time.After(30 * time.Second):
		w.cmd.Process.Kill()
		<-done
		return fmt.Errorf("netrt: worker rank %d did not exit; killed", w.rank)
	}
}
