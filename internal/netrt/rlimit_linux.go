//go:build linux

package netrt

import "syscall"

// nofileLimit reports the soft RLIMIT_NOFILE, or ok=false when it
// cannot be read (the caller then skips the budget check).
func nofileLimit() (uint64, bool) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, false
	}
	return uint64(rl.Cur), true
}
