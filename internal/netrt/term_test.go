package netrt

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
)

// TestTermTreeShape pins the k-ary layout the termination protocol
// derives locally on every rank: across fanouts and world sizes
// (including the world == fanout+1 boundary where the tree degenerates
// to the flat star, and off-by-one neighbours on both sides), every
// non-root rank appears in exactly one parent's child set, parent and
// children invert each other, and no rank's fan-out exceeds the
// configured fanout.
func TestTermTreeShape(t *testing.T) {
	for _, fanout := range []int{1, 2, 3, 8} {
		for world := 1; world <= 257; world++ {
			seen := make(map[int]int, world)
			for r := 0; r < world; r++ {
				kids := termChildren(r, fanout, world)
				if len(kids) > fanout {
					t.Fatalf("fanout=%d world=%d: rank %d has %d children", fanout, world, r, len(kids))
				}
				for _, c := range kids {
					if c <= r || c >= world {
						t.Fatalf("fanout=%d world=%d: rank %d has impossible child %d", fanout, world, r, c)
					}
					if p := termParent(c, fanout); p != r {
						t.Fatalf("fanout=%d world=%d: child %d of %d says parent %d", fanout, world, c, r, p)
					}
					seen[c]++
				}
			}
			for r := 1; r < world; r++ {
				if seen[r] != 1 {
					t.Fatalf("fanout=%d world=%d: rank %d claimed by %d parents", fanout, world, r, seen[r])
				}
			}
			// The boundary worlds must degenerate to the flat protocol:
			// everyone reports straight to rank 0.
			if world <= fanout+1 {
				for r := 1; r < world; r++ {
					if p := termParent(r, fanout); p != 0 {
						t.Fatalf("fanout=%d world=%d: flat-degenerate rank %d has parent %d", fanout, world, r, p)
					}
				}
			}
		}
	}
}

// termChain runs one message chain PE 0 -> PE world-1 -> PE 0 -> ...
// across a world with one PE per rank, so every hop crosses the longest
// mesh edge while the termination tree is probing, then checks all
// runtimes quiesced cleanly with the full chain delivered.
func termChain(t *testing.T, nodes []*Node, hops int) {
	t.Helper()
	world := len(nodes)
	rts := make([]*Runtime, world)
	for i, n := range nodes {
		rt, err := n.NewRuntime(world)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}
	var delivered sync.WaitGroup
	delivered.Add(hops + 1)
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			env := e
			bufpool.Put(pooled)
			rt.Enqueue(env.DstPE, func() {
				delivered.Done()
				if env.Tag > 0 {
					rt.SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: env.DstPE,
						DstPE: env.SrcPE, Tag: env.Tag - 1})
				}
			})
		})
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: world - 1, Tag: hops})
	})
	runAll(rts)
	for i, rt := range rts {
		if errs := rt.Errors(); len(errs) > 0 {
			t.Fatalf("rank %d errors: %v", i, errs)
		}
	}
	delivered.Wait()
}

// TestTermNarrowTreeQuiesces runs real traffic through worlds whose
// termination tree has interior aggregating ranks — world 5 at fanout 2
// (rank 1 folds ranks 3 and 4) and world 9 (two full interior levels) —
// and checks the root's observed probe fan-in respects the fanout bound
// while quiescence still completes with every hop delivered.
func TestTermNarrowTreeQuiesces(t *testing.T) {
	for _, world := range []int{5, 9} {
		nodes := startWorldConfig(t, world, Config{TermFanout: 2})
		termChain(t, nodes, 20)
		root := nodes[0].Stats()
		if root.TermProbeRounds == 0 {
			t.Fatalf("world %d: root drove no probe rounds", world)
		}
		if root.TermProbeReports > root.TermProbeRounds*2 {
			t.Fatalf("world %d: root saw %d reports over %d rounds, fan-in bound is 2",
				world, root.TermProbeReports, root.TermProbeRounds)
		}
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestTermFanoutOneChain degenerates the tree to a linked list (every
// probe traverses the full world depth, every report folds through
// every interior rank) while ping-pong traffic keeps flipping ranks
// between idle and active mid-round. Run under -race this pins the
// aggregation window against the localReport sampling races; the
// correctness claim is that the deep tree neither deadlocks nor
// declares termination early (the chain must finish first).
func TestTermFanoutOneChain(t *testing.T) {
	nodes := startWorldConfig(t, 4, Config{TermFanout: 1})
	termChain(t, nodes, 40)
	root := nodes[0].Stats()
	if root.TermProbeRounds == 0 {
		t.Fatal("root drove no probe rounds")
	}
	if root.TermProbeReports > root.TermProbeRounds {
		t.Fatalf("fanout 1: root saw %d reports over %d rounds (more than one child?)",
			root.TermProbeReports, root.TermProbeRounds)
	}
}

// TestTermInteriorKillRecovery kills an INTERIOR tree rank mid-run:
// world 6 at fanout 2 makes rank 1 the aggregator for ranks 3 and 4, so
// its death orphans a whole subtree's reports. Every survivor must
// unwind with an error instead of hanging in a probe round that can
// never complete, and after Rejoin (which resets the aggregation
// windows along with the mesh epoch) a rerun over the same tree must
// quiesce cleanly.
func TestTermInteriorKillRecovery(t *testing.T) {
	const world, fanout = 6, 2
	var mu sync.Mutex
	nodes := make([]*Node, world)
	respawn := func(r int) {
		n, err := Start(Config{Rank: r, World: world, Coord: nodes[0].Addr(),
			Recover: true, TermFanout: fanout})
		if err != nil {
			t.Errorf("respawn rank %d: %v", r, err)
			return
		}
		mu.Lock()
		nodes[r] = n
		mu.Unlock()
	}
	ns, err := StartLocalConfig(world, Config{Recover: true, TermFanout: fanout, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	copy(nodes, ns)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	if kids := termChildren(1, fanout, world); len(kids) != 2 {
		t.Fatalf("rank 1 is not interior at world %d fanout %d: children %v", world, fanout, kids)
	}

	// An endless chain that cannot finish before the kill lands.
	rts := make([]*Runtime, world)
	for i, n := range nodes {
		rt, err := n.NewRuntime(world)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			env := e
			bufpool.Put(pooled)
			rt.Enqueue(env.DstPE, func() {
				if env.Tag > 0 {
					rt.SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: env.DstPE,
						DstPE: env.SrcPE, Tag: env.Tag - 1})
				}
			})
		})
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: world - 1, Tag: 1 << 30})
	})
	go func() {
		time.Sleep(50 * time.Millisecond)
		nodes[1].Die()
	}()
	done := make(chan struct{})
	go func() {
		runAll(rts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runs hung after the interior-rank kill")
	}
	for i, rt := range rts {
		if i != 1 && len(rt.Errors()) == 0 {
			t.Errorf("rank %d survived the kill without an error", i)
		}
	}

	// Rebuild the mesh: rank 0 waits to observe the death, then every
	// survivor rejoins concurrently while the hook respawns rank 1.
	deadline := time.Now().Add(5 * time.Second)
	for len(nodes[0].DeadRanks()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never observed the death")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		if r == 1 {
			continue
		}
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := nodes[r].Rejoin(); err != nil {
				t.Errorf("rank %d rejoin: %v", r, err)
			}
		}()
	}
	wg.Wait()
	// The respawn hook installs the replacement node after its Start
	// returns, which can trail rank 0's Rejoin by a beat.
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := nodes[1] != nil
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("respawn did not install a replacement node")
		}
		time.Sleep(time.Millisecond)
	}
	if t.Failed() {
		t.Fatal("mesh did not rebuild")
	}
	termChain(t, nodes, 20)
}
