package netrt

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bufpool"
)

// rejoinAcceptWindow bounds how long the coordinator waits for every
// rank (survivors plus respawned replacements) to dial back in during
// Rejoin, and how long a worker waits for the coordinator's FPeers.
const rejoinAcceptWindow = 60 * time.Second

// reapGrace is how long Rejoin waits for a reportedly dead child
// process to be collectable. A kill -9'd child exits immediately; a
// child that outlives the grace is alive after all (a spurious dead
// observation — e.g. a goodbye lost in a hard teardown) and must not be
// respawned on top of.
const reapGrace = 10 * time.Second

// probeGrace is the exit probe applied to children NOT reported dead by
// a broken socket. A rank's death can reach the coordinator only as a
// relayed FBye cascade — the abort fires before the coordinator's own
// connection to the victim breaks — leaving the dead snapshot empty. An
// already-exited child trips its done latch instantly regardless of the
// grace (the waiter goroutine runs from spawn), so this only needs to
// cover a death racing the probe itself; a live child costs the full
// grace, which bounds added rejoin latency at world × probeGrace.
const probeGrace = 200 * time.Millisecond

// Rejoin rebuilds the mesh after a rank death, under Config.Recover.
// Every surviving rank calls it (the recovery driver does) between the
// aborted run and the retry:
//
//   - The old mesh is invalidated wholesale: the epoch bump makes every
//     old connection's failure report stale, generations reset to zero
//     (the respawned process starts at zero, and generations must match
//     across ranks — resetting everyone keeps them in lockstep), and
//     buffered frames and the dead-peer latch are cleared.
//   - The coordinator reaps and respawns dead child ranks (self-spawn
//     mode) or hands them to Config.OnRespawn (in-process tests), then
//     re-runs the dial-in bootstrap on its retained listener: world-1
//     FJoins, each carrying the rank's stable identity and fresh listen
//     address, answered by a broadcast FPeers table.
//   - Workers re-dial the coordinator (with the capped, jittered retry)
//     and rebuild their mesh edges exactly as at bootstrap.
//
// The protocol is the bootstrap handshake verbatim — rejoin needs no
// new frame types, only listeners that outlive bootstrap. A respawned
// worker needs no special handling here: it re-runs its own Start,
// which dials into the same accept loop.
func (n *Node) Rejoin() error {
	if !n.cfg.Recover {
		return errors.New("netrt: Rejoin needs Config.Recover")
	}
	if n.world <= 1 || n.ln == nil {
		return errors.New("netrt: nothing to rejoin")
	}

	// Snapshot who died before the reset clears the record. Only direct
	// socket observations land in n.dead, so in a full mesh this names
	// the crashed rank(s), not the messengers of the abort cascade.
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return errors.New("netrt: node is closing")
	}
	dead := make(map[int]bool, len(n.dead))
	for r := range n.dead {
		dead[r] = true
	}
	completed := n.completedGen

	// Invalidate the old mesh. The epoch bump must happen under the
	// same lock acquisition as the state reset: from here on, any
	// failure report from an old connection is stale and ignored.
	n.epoch.Add(1)
	oldPeers := n.peers
	n.peers = make([]*peerConn, n.world)
	n.buffered = nil
	n.deadErr = nil
	n.dead = make(map[int]bool)
	n.nextGen = 0
	n.completedGen = -1
	n.mu.Unlock()
	// Termination-tree windows and stashed first-contact frames belong
	// to the dead epoch: the aborted run's frames are gone either way.
	n.termMu.Lock()
	n.termAggs = make(map[termKey]*probeAgg)
	n.termMu.Unlock()
	n.drainLazyStashes()

	// Tear the old connections down gracefully: the FLeave flushes
	// ahead of the FIN, so a peer that has not entered its own Rejoin
	// yet reads a planned goodbye, not a second rank death.
	for _, p := range oldPeers {
		if p == nil {
			continue
		}
		b, err := encodeFramePooled(&Frame{Type: FLeave, A: completed})
		if err == nil && !p.send(b) {
			bufpool.Put(b)
		}
		p.close()
	}
	// Unmap the old epoch's shm segments off the critical path: the
	// teardown waits for each ring reader to drain out, which needs the
	// down latches just closed above to propagate. The new mesh maps
	// fresh segments; nothing here is reused.
	go teardownShmLinks(oldPeers)

	if n.rank == 0 {
		return n.rejoinCoordinator(dead)
	}
	return n.rejoinWorker()
}

// rejoinCoordinator is rank 0's side: respawn the dead, re-accept
// everyone, broadcast the fresh address table.
func (n *Node) rejoinCoordinator(dead map[int]bool) error {
	if len(n.children) > 0 {
		// Self-spawn mode: probe every child for exit — not just the
		// socket-observed dead — and launch replacements with the
		// identical command line. The dead snapshot can miss the victim
		// entirely when its death reached us only as a relayed FBye
		// cascade, so the exit probe is the authority here; the socket
		// observation merely buys the victim a longer reap grace. A
		// replacement re-runs its whole program; the shared checkpoint
		// directory tells it where to resume.
		for i, w := range n.children {
			grace := probeGrace
			if dead[w.rank] {
				grace = reapGrace
			}
			if !w.exited(grace) {
				// Still alive: either healthy, or the death report was
				// spurious (its connection broke, the process did not).
				// It will re-dial on its own.
				continue
			}
			nw, err := spawnOne(n.cfg, w.rank, n.world, n.ln.Addr().String())
			if err != nil {
				return fmt.Errorf("netrt: respawn rank %d: %w", w.rank, err)
			}
			n.children[i] = nw
		}
	} else if n.cfg.OnRespawn != nil {
		for r := range dead {
			// Off this goroutine: the hook typically calls Start, which
			// blocks until the accept loop below answers it.
			go n.cfg.OnRespawn(r)
		}
	}
	// No spawn machinery and no hook: an externally launched world. The
	// accept window below still gives an operator-restarted rank time
	// to dial back in.

	deadline := time.Now().Add(rejoinAcceptWindow)
	addrs := make([]string, n.world)
	addrs[0] = n.ln.Addr().String()
	if n.lazy {
		// The accept loop owns the retained listener; rejoining ranks'
		// FJoins park on joinC. Some may predate this Rejoin — a fast
		// respawn can dial back in before the coordinator noticed the
		// death — and those connections are perfectly good: the rank on
		// the other end is blocked reading FPeers. Bad or duplicate
		// joins are dropped, not fatal (a stale parked join must not
		// kill a fresh rejoin).
		epoch := n.epoch.Load()
		for joined := 0; joined < n.world-1; {
			var ij inboundJoin
			select {
			case ij = <-n.joinC:
			case <-time.After(time.Until(deadline)):
				return fmt.Errorf("netrt: rejoin waiting for ranks (%d/%d rejoined): timeout", joined, n.world-1)
			}
			r := int(ij.f.A)
			n.mu.Lock()
			bad := r <= 0 || r >= n.world || n.peers[r] != nil
			if !bad {
				ij.p.rank = r
				ij.p.epoch = epoch
				n.peers[r] = ij.p
			}
			n.mu.Unlock()
			if bad {
				ij.p.conn.Close()
				continue
			}
			addrs[r] = string(ij.f.Payload)
			n.connsAccepted.Add(1)
			joined++
		}
	} else {
		for joined := 0; joined < n.world-1; joined++ {
			if tl, ok := n.ln.(interface{ SetDeadline(time.Time) error }); ok {
				tl.SetDeadline(deadline)
			}
			conn, err := n.ln.Accept()
			if err != nil {
				return fmt.Errorf("netrt: rejoin waiting for ranks (%d/%d rejoined): %w", joined, n.world-1, err)
			}
			conn.SetReadDeadline(deadline)
			p := newPeerConn(n, -1, conn)
			f, err := readFrame(p.br)
			if err != nil || f.Type != FJoin {
				conn.Close()
				return fmt.Errorf("netrt: expected JOIN on rejoin connection: %v", err)
			}
			conn.SetReadDeadline(time.Time{})
			r := int(f.A)
			if r <= 0 || r >= n.world || n.peers[r] != nil {
				conn.Close()
				return fmt.Errorf("netrt: bad rejoin JOIN rank %d", r)
			}
			p.rank = r
			n.peers[r] = p
			addrs[r] = string(f.Payload)
			n.connsAccepted.Add(1)
		}
	}
	n.mu.Lock()
	n.addrs = addrs
	star := append([]*peerConn(nil), n.peers...)
	n.mu.Unlock()
	table := strings.Join(addrs, "\n")
	for r := 1; r < n.world; r++ {
		if err := writeFrame(star[r].conn, &Frame{Type: FPeers, Payload: []byte(table)}); err != nil {
			return err
		}
	}
	return n.startPeers()
}

// rejoinWorker is a surviving worker's side: re-dial the coordinator
// with the stretched retry budget (the coordinator may be reaping and
// respawning for a while before it accepts), then rebuild the mesh
// edges exactly as at bootstrap.
func (n *Node) rejoinWorker() error {
	conn, err := n.dialRetryN(n.cfg.Coord, rejoinDialAttempts)
	if err != nil {
		return fmt.Errorf("netrt: rejoin dial coordinator at %s: %w", n.cfg.Coord, err)
	}
	p := newPeerConn(n, 0, conn)
	n.connsDialed.Add(1)
	if err := writeFrame(conn, &Frame{Type: FJoin, A: int64(n.rank), Payload: []byte(n.ln.Addr().String())}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(rejoinAcceptWindow))
	f, err := readFrame(p.br)
	if err != nil || f.Type != FPeers {
		conn.Close()
		return fmt.Errorf("netrt: expected PEERS from coordinator on rejoin: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	addrs := strings.Split(string(f.Payload), "\n")
	if len(addrs) != n.world {
		return fmt.Errorf("netrt: coordinator sent %d peer addresses on rejoin, world is %d", len(addrs), n.world)
	}
	n.mu.Lock()
	n.peers[0] = p
	n.addrs = addrs
	n.mu.Unlock()
	if n.lazy {
		// Worker-to-worker edges reopen on demand, exactly as at
		// bootstrap: the fresh address table above is all they need.
		return n.startPeers()
	}
	for s := 1; s < n.rank; s++ {
		conn, err := n.dialRetry(addrs[s])
		if err != nil {
			return fmt.Errorf("netrt: rejoin dial rank %d at %s: %w", s, addrs[s], err)
		}
		if err := writeFrame(conn, &Frame{Type: FHello, A: int64(n.rank)}); err != nil {
			return err
		}
		n.peers[s] = newPeerConn(n, s, conn)
		n.connsDialed.Add(1)
	}
	if err := n.acceptHigher(); err != nil {
		return err
	}
	return n.startPeers()
}

// startPeers runs the shm handshakes over the fresh sockets, publishes
// the rebuilt connection table, and launches the connection goroutines
// of every mesh edge. The handshake must precede start(): it speaks
// synchronously on the raw sockets, which only works while no reader
// goroutine is competing for them.
func (n *Node) startPeers() error {
	// Snapshot under the lock: in lazy mode the accept loop may install
	// first-contact edges (under mu) while this rejoin tail runs, and
	// those arrive already handshaken and started — they are not ours
	// to touch.
	n.mu.Lock()
	peers := append([]*peerConn(nil), n.peers...)
	n.mu.Unlock()
	err := n.setupShm(peers)
	n.mu.Lock()
	n.publishPeers()
	n.mu.Unlock()
	if err != nil {
		return err
	}
	for _, p := range peers {
		if p != nil && !p.started {
			p.start()
		}
	}
	return nil
}

// Die abruptly destroys this node — the in-process analogue of kill -9
// for recovery tests: every connection and the listener close with no
// goodbye (peers observe an unplanned EOF, exactly as for a crashed
// process), and any attached run aborts locally without a Bye cascade
// (a killed process cannot announce its own death).
func (n *Node) Die() {
	ne := &NetError{Rank: n.rank, Peer: n.rank, Op: "killed",
		Err: errors.New("rank killed by fault injection")}
	n.mu.Lock()
	n.closing = true
	if n.deadErr == nil {
		n.deadErr = ne
	}
	rt := n.attached
	n.mu.Unlock()
	if rt != nil {
		rt.abort(ne)
	}
	if n.ln != nil {
		n.ln.Close()
	}
	// The fd-passing server dies with the process; the shm mappings are
	// deliberately NOT unmapped — an in-process "killed" rank may still
	// have pollers touching arena memory, and a mapping (unlike an fd)
	// is reclaimed wholesale when the real process exits.
	n.shmMu.Lock()
	srv := n.shmSrv
	n.shmSrv = nil
	n.shmMu.Unlock()
	srv.close()
	for _, p := range n.peerTable() {
		if p != nil {
			p.shutdown()
		}
	}
	n.drainLazyStashes()
}

// DeadRanks lists the peers whose connections broke in the current mesh
// epoch, in rank order.
func (n *Node) DeadRanks() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]int, 0, len(n.dead))
	for r := range n.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
