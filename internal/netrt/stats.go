package netrt

// NetStats is a snapshot of the node's scale counters: cumulative over
// the node's lifetime (bootstrap included), monotonic, and cheap to
// read — each field is one atomic load. The bench harness and the CI
// scale-smoke job read them to prove the O(N) claims: a sparse
// communication pattern under lazy dialing must open far fewer than
// N·(N−1) connections, and the root of the termination tree must see at
// most TermFanout reports per probe round.
type NetStats struct {
	// ConnsDialed and ConnsAccepted count this node's TCP mesh edges by
	// which side initiated; their sum is the node's total sockets
	// opened (each edge counts once per endpoint, so summing across a
	// world counts every edge twice).
	ConnsDialed   int64
	ConnsAccepted int64
	// DialReqs counts FDialReq frames this node originated (a higher
	// rank asking, via rank 0, to be dialed).
	DialReqs int64
	// TermProbeRounds counts probe rounds driven by this node as
	// termination-tree root; TermProbeReports counts reports arriving
	// at it as root. Their ratio is the root's per-round fan-in, which
	// the tree bounds by TermFanout.
	TermProbeRounds  int64
	TermProbeReports int64
	// ShmFramesCoalesced counts frames that piggybacked on another
	// producer's ring write instead of taking the combining lock.
	ShmFramesCoalesced int64
	// BatchGrows/BatchShrinks count per-peer writev window moves;
	// EagerShrinks counts adaptive eager-threshold halvings on
	// congested edges.
	BatchGrows   int64
	BatchShrinks int64
	EagerShrinks int64
	// TermFanout echoes the configured termination-tree fanout.
	TermFanout int
}

// Stats snapshots the node's scale counters.
func (n *Node) Stats() NetStats {
	return NetStats{
		ConnsDialed:        n.connsDialed.Load(),
		ConnsAccepted:      n.connsAccepted.Load(),
		DialReqs:           n.dialReqs.Load(),
		TermProbeRounds:    n.probeRounds.Load(),
		TermProbeReports:   n.probeReports.Load(),
		ShmFramesCoalesced: n.shmCoalesced.Load(),
		BatchGrows:         n.batchGrows.Load(),
		BatchShrinks:       n.batchShrinks.Load(),
		EagerShrinks:       n.eagerShrinks.Load(),
		TermFanout:         n.termFanout,
	}
}

// ConnsOpened is the node's total TCP sockets opened to peers, either
// direction, over its lifetime.
func (n *Node) ConnsOpened() int64 {
	return n.connsDialed.Load() + n.connsAccepted.Load()
}

// NetStats exposes the owning node's counters on the runtime, for
// callers (the charm backend's trace recording) that hold only the
// run-generation handle.
func (rt *Runtime) NetStats() NetStats { return rt.node.Stats() }
