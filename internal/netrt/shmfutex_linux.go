//go:build linux

package netrt

import (
	"syscall"
	"unsafe"
)

// Futex doorbell for the shm rings: waiters park in the kernel on a
// 32-bit word inside the shared mapping and the peer process wakes them
// after publishing, replacing the sleep-backoff ladder's 50–500µs
// wakeup latency on oversubscribed hosts. Plain FUTEX_WAIT/FUTEX_WAKE —
// no FUTEX_PRIVATE_FLAG, because the word is shared across processes.
// The in-process test rings work identically: heap words are futexable
// too (Go's heap does not move objects).
const (
	futexOpWait = 0
	futexOpWake = 1
)

// futexWait parks until *addr != val, a wake arrives, or the timeout
// expires — whichever is first. Spurious returns are fine: every caller
// re-checks its condition in a loop.
func futexWait(addr *uint32, val uint32, timeoutNS int64) {
	ts := syscall.NsecToTimespec(timeoutNS)
	syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)), futexOpWait, uintptr(val),
		uintptr(unsafe.Pointer(&ts)), 0, 0)
}

// futexWake wakes every waiter parked on addr.
func futexWake(addr *uint32) {
	syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)), futexOpWake, uintptr(1<<30),
		0, 0, 0)
}
